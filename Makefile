# Developer entry points. `make check` is the tier-1 verification gate;
# `make race` additionally proves the concurrent data path (piece fan-out,
# parallel 2PC, buffer pooling) and the harness hot path (wire codec,
# sharded timer wheel, per-link fabric state) clean under the race detector.

RACE_PKGS := ./internal/core ./internal/segstore ./internal/provider ./internal/cluster ./internal/wire ./internal/simtime ./internal/simnet ./internal/proxy

.PHONY: check build test vet race bench scrub-chaos bench-scrub

check: build vet test race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race $(RACE_PKGS)

# Parallel data-path microbenchmarks (modeled MB/s per stripe width).
bench:
	go test -run XXX -bench 'BenchmarkParallelStriped' -benchtime 3x .

# Codec and fabric microbenchmarks (binary-vs-gob, parallel-pair scaling).
bench-harness:
	go test -run XXX -bench 'BenchmarkCodec' ./internal/wire
	go test -run XXX -bench 'BenchmarkFabricParallelPairs' ./internal/simnet

# Harness scaling sweep: CPU per modeled second, heartbeat keep-up, and
# per-node control bytes at 128/256/512 providers → BENCH_harness.json.
scale:
	go run ./cmd/sorrento-bench -exp harness -metrics-out ''

# Gateway open-loop sweep: 100k thin connections through 4 proxies, offered
# load vs p50/p99 latency and proxy CPU → BENCH_proxy.json.
bench-proxy:
	go run ./cmd/sorrento-bench -exp proxy -metrics-out ''

# Storage-corruption chaos: bit rot, torn and lost writes layered over the
# network/process storm, asserting no acked commit is ever served with wrong
# bytes and every injected corruption is scrubbed and repaired.
scrub-chaos:
	go test ./internal/cluster -run TestChaosCorruptionSeeded -race -count=1 -v

# Integrity scrub sweep: detection latency and repair time vs scrub pace
# with a batch of corrupted replicas → BENCH_integrity.json.
bench-scrub:
	go run ./cmd/sorrento-bench -exp scrub -metrics-out ''
