# Developer entry points. `make check` is the tier-1 verification gate;
# `make race` additionally proves the concurrent data path (piece fan-out,
# parallel 2PC, buffer pooling) clean under the race detector.

RACE_PKGS := ./internal/core ./internal/segstore ./internal/provider ./internal/cluster

.PHONY: check build test vet race bench

check: build vet test race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race $(RACE_PKGS)

# Parallel data-path microbenchmarks (modeled MB/s per stripe width).
bench:
	go test -run XXX -bench 'BenchmarkParallelStriped' -benchtime 3x .
