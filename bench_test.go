package repro_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 4). Each benchmark runs the corresponding experiment at reduced
// parameters and reports its headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. cmd/sorrento-bench runs the full-size
// versions and prints the complete tables/series.

import (
	"io"
	"testing"
	"time"

	"repro/internal/bench"
)

func reportTo(b *testing.B) io.Writer { return io.Discard }

// BenchmarkFig9SmallFileLatency regenerates the Figure 9 table: small-file
// create/write/read/unlink response times on NFS, PVFS and Sorrento.
func BenchmarkFig9SmallFileLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig9(bench.Fig9Params{
			Scale:   bench.Scale{Time: 0.1, Data: 1},
			Ops:     10,
			Systems: []string{"nfs", "pvfs-8", "sorrento-(8,1)", "sorrento-(8,2)"},
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for _, row := range res.Rows {
			b.ReportMetric(row.CreateMs, row.System+"-create-ms")
			b.ReportMetric(row.WriteMs, row.System+"-write-ms")
		}
	}
}

// BenchmarkFig10SmallFileThroughput regenerates Figure 10: sustained
// small-file session throughput vs client count.
func BenchmarkFig10SmallFileThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig10(bench.Fig10Params{
			Scale:             bench.Scale{Time: 0.04, Data: 1},
			Clients:           []int{1, 4, 8},
			SessionsPerClient: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for sys, curve := range res.Curves {
			b.ReportMetric(curve[len(curve)-1].SessionsPS, sys+"-sessions/s")
		}
	}
}

// BenchmarkFig11BulkIO regenerates Figure 11: large-file read/write rates
// vs client count, including the eager-vs-lazy replica propagation
// comparison.
func BenchmarkFig11BulkIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig11(bench.Fig11Params{
			Scale:          bench.Scale{Time: 0.01, Data: 1024},
			Clients:        []int{1, 8},
			Files:          16,
			BytesPerClient: 64 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for sys, curve := range res.Curves {
			last := curve[len(curve)-1]
			b.ReportMetric(last.ReadMBs, sys+"-read-MB/s")
			b.ReportMetric(last.WrMBs, sys+"-write-MB/s")
		}
	}
}

// BenchmarkFig12TraceReplay regenerates Figure 12: BTIO and PSM application
// trace replay across the three systems.
func BenchmarkFig12TraceReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig12(bench.Fig12Params{
			Scale:      bench.Scale{Time: 0.01, Data: 1024},
			BTIOSteps:  10,
			PSMQueries: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for _, row := range res.Rows {
			b.ReportMetric(row.AvgSec, row.App+"-"+row.System+"-sec")
		}
	}
}

// BenchmarkFig13FailureRecovery regenerates Figure 13: transfer-rate
// timeline across a provider failure and a node addition, plus the time to
// restore full replication.
func BenchmarkFig13FailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig13(bench.Fig13Params{
			Scale:        bench.Scale{Time: 0.02, Data: 1024},
			Files:        24,
			RunFor:       90 * time.Second,
			RecoveryWait: 40 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		b.ReportMetric(res.BaselineMBs, "baseline-MB/s")
		b.ReportMetric(res.RecoveredMBs, "recovered-MB/s")
		b.ReportMetric(res.RecoverySec, "replication-restored-sec")
	}
}

// BenchmarkFig14CrawlerPlacement regenerates the Figure 14 table: storage
// usage unevenness for random vs space-based vs space+migration placement
// under the skewed crawler workload.
func BenchmarkFig14CrawlerPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig14(bench.Fig14Params{
			Scale:             bench.Scale{Time: 0.001, Data: 2048},
			Crawlers:          20,
			DomainsPerCrawler: 10,
			TotalBytes:        97 << 30,
			DiskCapacity:      51 << 30,
			Duration:          4 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for _, row := range res.Rows {
			b.ReportMetric(row.Unevenness, row.Variant+"-unevenness")
		}
	}
}

// BenchmarkFig15LocalityMigration regenerates Figure 15: per-query I/O time
// as locality-driven migration co-locates PSM partitions with their service
// processes.
func BenchmarkFig15LocalityMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig15(bench.Fig15Params{
			Scale:  bench.Scale{Time: 0.002, Data: 2048},
			RunFor: 15 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		b.ReportMetric(res.InitialMs, "initial-ms/query")
		b.ReportMetric(res.FinalMs, "final-ms/query")
		b.ReportMetric(float64(res.LocalAfter), "partitions-colocated")
	}
}
