package repro_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 4). Each benchmark runs the corresponding experiment at reduced
// parameters and reports its headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. cmd/sorrento-bench runs the full-size
// versions and prints the complete tables/series.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func reportTo(b *testing.B) io.Writer { return io.Discard }

// BenchmarkFig9SmallFileLatency regenerates the Figure 9 table: small-file
// create/write/read/unlink response times on NFS, PVFS and Sorrento.
func BenchmarkFig9SmallFileLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig9(bench.Fig9Params{
			Scale:   bench.Scale{Time: 0.1, Data: 1},
			Ops:     10,
			Systems: []string{"nfs", "pvfs-8", "sorrento-(8,1)", "sorrento-(8,2)"},
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for _, row := range res.Rows {
			b.ReportMetric(row.CreateMs, row.System+"-create-ms")
			b.ReportMetric(row.WriteMs, row.System+"-write-ms")
		}
	}
}

// BenchmarkFig10SmallFileThroughput regenerates Figure 10: sustained
// small-file session throughput vs client count.
func BenchmarkFig10SmallFileThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig10(bench.Fig10Params{
			Scale:             bench.Scale{Time: 0.04, Data: 1},
			Clients:           []int{1, 4, 8},
			SessionsPerClient: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for sys, curve := range res.Curves {
			b.ReportMetric(curve[len(curve)-1].SessionsPS, sys+"-sessions/s")
		}
	}
}

// BenchmarkFig11BulkIO regenerates Figure 11: large-file read/write rates
// vs client count, including the eager-vs-lazy replica propagation
// comparison.
func BenchmarkFig11BulkIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig11(bench.Fig11Params{
			Scale:          bench.Scale{Time: 0.01, Data: 1024},
			Clients:        []int{1, 8},
			Files:          16,
			BytesPerClient: 64 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for sys, curve := range res.Curves {
			last := curve[len(curve)-1]
			b.ReportMetric(last.ReadMBs, sys+"-read-MB/s")
			b.ReportMetric(last.WrMBs, sys+"-write-MB/s")
		}
	}
}

// Parallel striped I/O microbenchmarks: modeled bulk bandwidth of a single
// client against an 8-provider cluster as the stripe width grows. The
// "w8-seq" case keeps the width-8 layout but pins the client's MaxParallelIO
// knob to 1, isolating the data-path fan-out win from the layout itself.
const (
	stripedBenchUnit = 16 << 10 // small units keep the op-cost share high
	stripedBenchSize = 2 << 20
)

type stripedBenchCase struct {
	name   string
	stripe int  // StripeCount of the file layout
	maxPar int  // core.Config.MaxParallelIO (0 = default)
	obs    bool // attach a live metrics/tracing registry
}

var stripedBenchCases = []stripedBenchCase{
	{name: "w1", stripe: 1},
	{name: "w4", stripe: 4},
	{name: "w8", stripe: 8},
	{name: "w8-seq", stripe: 8, maxPar: 1},
}

func newStripedBenchCluster(b *testing.B, maxPar int, withObs bool) (*cluster.Cluster, *core.Client) {
	b.Helper()
	opts := cluster.Options{Providers: 8, Scale: 0.01}
	if withObs {
		opts.Obs = obs.New(simtime.Real())
	}
	c, err := cluster.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	if err := c.AwaitStable(8, 2*time.Minute); err != nil {
		b.Fatal(err)
	}
	// Reads must pay the modeled disk every time, not hit the provider cache.
	for _, p := range c.Providers() {
		p.Store().SetCacheBytes(0)
	}
	cl, err := c.NewClientCfg("bench", func(cfg *core.Config) {
		if maxPar > 0 {
			cfg.MaxParallelIO = maxPar
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	if err := cl.WaitForProviders(8, 2*time.Minute); err != nil {
		b.Fatal(err)
	}
	return c, cl
}

func stripedBenchAttrs(stripe int) wire.FileAttrs {
	return wire.FileAttrs{
		Mode:         wire.Striped,
		StripeCount:  stripe,
		StripeUnit:   stripedBenchUnit,
		DeclaredSize: stripedBenchSize,
		ReplDeg:      1,
		Alpha:        0.5,
	}
}

// BenchmarkParallelStripedRead reads a committed striped file end to end and
// reports the modeled bandwidth per stripe width. The "-obs" cases run the
// identical workload with the full metrics/tracing registry attached, so the
// instrumentation overhead is directly visible in the wall ns/op delta.
func BenchmarkParallelStripedRead(b *testing.B) {
	cases := append(stripedBenchCases, stripedBenchCase{"w8-obs", 8, 0, true})
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c, cl := newStripedBenchCluster(b, tc.maxPar, tc.obs)
			f, err := cl.Create("/bench", stripedBenchAttrs(tc.stripe))
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, stripedBenchSize)
			for i := range data {
				data[i] = byte(i)
			}
			if _, err := f.WriteAt(data, 0); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			f, err = cl.Open("/bench")
			if err != nil {
				b.Fatal(err)
			}
			defer f.Drop()
			buf := make([]byte, stripedBenchSize)
			var modeled time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := c.Clock.Now()
				if _, err := f.ReadAt(buf, 0); err != nil {
					b.Fatal(err)
				}
				modeled += c.Clock.Now() - t0
			}
			b.StopTimer()
			mbs := float64(stripedBenchSize) * float64(b.N) / modeled.Seconds() / (1 << 20)
			b.ReportMetric(mbs, "modeled-MB/s")
		})
	}
}

// BenchmarkParallelStripedWrite creates, writes and commits a striped file
// per iteration (write fan-out plus the parallel 2PC commit round).
func BenchmarkParallelStripedWrite(b *testing.B) {
	cases := append(stripedBenchCases, stripedBenchCase{"w8-obs", 8, 0, true})
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c, cl := newStripedBenchCluster(b, tc.maxPar, tc.obs)
			data := make([]byte, stripedBenchSize)
			for i := range data {
				data[i] = byte(i)
			}
			var modeled time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := c.Clock.Now()
				f, err := cl.Create(fmt.Sprintf("/bench-%d", i), stripedBenchAttrs(tc.stripe))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.WriteAt(data, 0); err != nil {
					b.Fatal(err)
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
				modeled += c.Clock.Now() - t0
			}
			b.StopTimer()
			mbs := float64(stripedBenchSize) * float64(b.N) / modeled.Seconds() / (1 << 20)
			b.ReportMetric(mbs, "modeled-MB/s")
		})
	}
}

// BenchmarkFig12TraceReplay regenerates Figure 12: BTIO and PSM application
// trace replay across the three systems.
func BenchmarkFig12TraceReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig12(bench.Fig12Params{
			Scale:      bench.Scale{Time: 0.01, Data: 1024},
			BTIOSteps:  10,
			PSMQueries: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for _, row := range res.Rows {
			b.ReportMetric(row.AvgSec, row.App+"-"+row.System+"-sec")
		}
	}
}

// BenchmarkFig13FailureRecovery regenerates Figure 13: transfer-rate
// timeline across a provider failure and a node addition, plus the time to
// restore full replication.
func BenchmarkFig13FailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig13(bench.Fig13Params{
			Scale:        bench.Scale{Time: 0.02, Data: 1024},
			Files:        24,
			RunFor:       90 * time.Second,
			RecoveryWait: 40 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		b.ReportMetric(res.BaselineMBs, "baseline-MB/s")
		b.ReportMetric(res.RecoveredMBs, "recovered-MB/s")
		b.ReportMetric(res.RecoverySec, "replication-restored-sec")
	}
}

// BenchmarkFig14CrawlerPlacement regenerates the Figure 14 table: storage
// usage unevenness for random vs space-based vs space+migration placement
// under the skewed crawler workload.
func BenchmarkFig14CrawlerPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig14(bench.Fig14Params{
			Scale:             bench.Scale{Time: 0.001, Data: 2048},
			Crawlers:          20,
			DomainsPerCrawler: 10,
			TotalBytes:        97 << 30,
			DiskCapacity:      51 << 30,
			Duration:          4 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		for _, row := range res.Rows {
			b.ReportMetric(row.Unevenness, row.Variant+"-unevenness")
		}
	}
}

// BenchmarkFig15LocalityMigration regenerates Figure 15: per-query I/O time
// as locality-driven migration co-locates PSM partitions with their service
// processes.
func BenchmarkFig15LocalityMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig15(bench.Fig15Params{
			Scale:  bench.Scale{Time: 0.002, Data: 2048},
			RunFor: 15 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Report(reportTo(b))
		b.ReportMetric(res.InitialMs, "initial-ms/query")
		b.ReportMetric(res.FinalMs, "final-ms/query")
		b.ReportMetric(float64(res.LocalAfter), "partitions-colocated")
	}
}
