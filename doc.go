// Package repro is a from-scratch Go reproduction of "Sorrento: A
// Self-Organizing Storage Cluster for Parallel Data-Intensive Applications"
// (Tang, Gulbeden, Zhou, Chu, Yang — SC 2004).
//
// The implementation lives under internal/: the client library (core), the
// storage provider and namespace server daemons, the membership/location/
// placement/migration protocols, the NFS-like and PVFS-like baselines, and
// the benchmark harness that regenerates every table and figure of the
// paper's evaluation. See README.md for the tour and DESIGN.md for the
// system inventory.
package repro
