// Command sorrentod runs a Sorrento storage provider over real TCP/UDP:
// it exports local storage into the volume, announces heartbeats, serves
// segment I/O, maintains its share of the location tables, and runs the
// replication-repair and migration loops (paper §3).
//
// A minimal two-node volume on one machine:
//
//	namespaced -listen 127.0.0.1:7000 &
//	sorrentod -listen 127.0.0.1:7001 -capacity 1073741824 &
//	sorrentod -listen 127.0.0.1:7002 -capacity 1073741824 -seeds 127.0.0.1:7001 &
//	sorrento -ns 127.0.0.1:7000 -seeds 127.0.0.1:7001 put /hello ./README.md
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/disk"
	"repro/internal/provider"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7001", "TCP/UDP address to listen on")
	advertise := flag.String("advertise", "", "address peers use to reach this provider (default: listen address)")
	seeds := flag.String("seeds", "", "comma-separated peer addresses for heartbeat fan-out")
	capacity := flag.Int64("capacity", 8<<30, "exported storage capacity in bytes")
	flag.Parse()

	clock := simtime.Real()
	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	network := &transport.TCPNetwork{Bind: *listen, Seeds: seedList}
	adv := *advertise
	if adv == "" {
		adv = *listen
	}

	d := disk.New(clock, adv, disk.SCSI10K(), *capacity)
	cfg := provider.DefaultConfig()
	cfg.OpCost = provider.NoOpCost // a real daemon pays its real execution time
	p, err := provider.New(wire.NodeID(adv), clock, cfg, network, d)
	if err != nil {
		log.Fatalf("sorrentod: %v", err)
	}
	p.Start()
	defer p.Stop()
	log.Printf("sorrentod: provider %s exporting %d bytes", p.ID(), *capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sorrentod: shutting down")
}
