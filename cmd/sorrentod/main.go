// Command sorrentod runs a Sorrento storage provider over real TCP/UDP:
// it exports local storage into the volume, announces heartbeats, serves
// segment I/O, maintains its share of the location tables, and runs the
// replication-repair and migration loops (paper §3).
//
// A minimal two-node volume on one machine:
//
//	namespaced -listen 127.0.0.1:7000 &
//	sorrentod -listen 127.0.0.1:7001 -capacity 1073741824 &
//	sorrentod -listen 127.0.0.1:7002 -capacity 1073741824 -seeds 127.0.0.1:7001 &
//	sorrento -ns 127.0.0.1:7000 -seeds 127.0.0.1:7001 put /hello ./README.md
//
// Each daemon also serves its metrics and recent traces over HTTP:
//
//	curl http://127.0.0.1:9321/metrics       # prometheus text
//	curl http://127.0.0.1:9321/debug/trace   # recent spans, JSON
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7001", "TCP/UDP address to listen on")
	advertise := flag.String("advertise", "", "address peers use to reach this provider (default: listen address)")
	seeds := flag.String("seeds", "", "comma-separated peer addresses for heartbeat fan-out")
	capacity := flag.Int64("capacity", 8<<30, "exported storage capacity in bytes")
	metrics := flag.String("metrics", ":9321", "HTTP address for /metrics, /metrics.json and /debug/trace")
	obsOn := flag.Bool("obs", true, "collect metrics and traces (off = zero observability overhead)")
	flag.Parse()

	clock := simtime.Real()
	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	network := &transport.TCPNetwork{Bind: *listen, Seeds: seedList}
	adv := *advertise
	if adv == "" {
		adv = *listen
	}

	var o *obs.Obs
	if *obsOn {
		o = obs.New(clock)
		network.Obs = o
	}

	d := disk.New(clock, adv, disk.SCSI10K(), *capacity)
	cfg := provider.DefaultConfig()
	cfg.OpCost = provider.NoOpCost // a real daemon pays its real execution time
	cfg.Obs = o
	p, err := provider.New(wire.NodeID(adv), clock, cfg, network, d)
	if err != nil {
		log.Fatalf("sorrentod: %v", err)
	}
	p.Start()
	defer p.Stop()
	log.Printf("sorrentod: provider %s exporting %d bytes", p.ID(), *capacity)

	if o != nil && *metrics != "" {
		// Pre-register the hot RPC families so a freshly started daemon's
		// /metrics already lists them at zero.
		if node, ok := p.Endpoint().(*transport.TCPNode); ok {
			node.WarmRPC(wire.SegRead{}, wire.SegWrite{}, wire.Prepare2PC{}, wire.Commit2PC{}, wire.Heartbeat{})
		}
		srv := o.ServeMetrics(*metrics, func(err error) { log.Printf("sorrentod: metrics server: %v", err) })
		defer srv.Close()
		log.Printf("sorrentod: metrics on http://%s/metrics", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sorrentod: shutting down")
}
