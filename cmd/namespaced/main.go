// Command namespaced runs a Sorrento namespace server over real TCP: the
// per-volume service that maps pathnames to location-independent FileIDs,
// arbitrates version commits, and persists the directory tree with a
// write-ahead log and checkpoints (paper §3.1).
//
// Usage:
//
//	namespaced -listen :7000 -data /var/lib/sorrento-ns
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/namespace"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7000", "TCP address to listen on")
	advertise := flag.String("advertise", "", "address peers use to reach this server (default: listen address)")
	data := flag.String("data", "sorrento-ns", "directory for the WAL and checkpoints")
	flag.Parse()

	wal, err := namespace.NewFileWAL(*data)
	if err != nil {
		log.Fatalf("namespaced: %v", err)
	}
	defer wal.Close()

	srv, err := namespace.NewServer(simtime.Real(), namespace.Config{}, wal)
	if err != nil {
		log.Fatalf("namespaced: %v", err)
	}
	node, err := transport.ListenTCP(*listen, *advertise, nil, nsHandler{srv})
	if err != nil {
		log.Fatalf("namespaced: %v", err)
	}
	defer node.Close()
	log.Printf("namespaced: serving volume namespace on %s (data in %s)", node.ID(), *data)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("namespaced: shutting down")
}

type nsHandler struct{ s *namespace.Server }

func (h nsHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	return h.s.Handle(req)
}

func (h nsHandler) HandleCast(wire.NodeID, any) {}
