// Command namespaced runs a Sorrento namespace server over real TCP: the
// per-volume service that maps pathnames to location-independent FileIDs,
// arbitrates version commits, and persists the directory tree with a
// write-ahead log and checkpoints (paper §3.1).
//
// Usage:
//
//	namespaced -listen :7000 -data /var/lib/sorrento-ns
//
// Metrics (per-op latencies, commit conflicts) and recent traces are served
// over HTTP on -metrics (default :9320).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7000", "TCP address to listen on")
	advertise := flag.String("advertise", "", "address peers use to reach this server (default: listen address)")
	data := flag.String("data", "sorrento-ns", "directory for the WAL and checkpoints")
	metrics := flag.String("metrics", ":9320", "HTTP address for /metrics, /metrics.json and /debug/trace")
	obsOn := flag.Bool("obs", true, "collect metrics and traces (off = zero observability overhead)")
	flag.Parse()

	wal, err := namespace.NewFileWAL(*data)
	if err != nil {
		log.Fatalf("namespaced: %v", err)
	}
	defer wal.Close()

	clock := simtime.Real()
	srv, err := namespace.NewServer(clock, namespace.Config{}, wal)
	if err != nil {
		log.Fatalf("namespaced: %v", err)
	}
	var o *obs.Obs
	if *obsOn {
		o = obs.New(clock)
		srv.Instrument(o)
	}
	node, err := transport.ListenTCPObs(*listen, *advertise, nil, nsHandler{srv}, o)
	if err != nil {
		log.Fatalf("namespaced: %v", err)
	}
	defer node.Close()
	log.Printf("namespaced: serving volume namespace on %s (data in %s)", node.ID(), *data)

	if o != nil && *metrics != "" {
		msrv := o.ServeMetrics(*metrics, func(err error) { log.Printf("namespaced: metrics server: %v", err) })
		defer msrv.Close()
		log.Printf("namespaced: metrics on http://%s/metrics", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("namespaced: shutting down")
}

type nsHandler struct{ s *namespace.Server }

func (h nsHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	return h.s.Handle(req)
}

func (h nsHandler) HandleCast(wire.NodeID, any) {}
