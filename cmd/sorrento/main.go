// Command sorrento is the volume utility: it mounts a Sorrento volume over
// TCP and performs namespace and file operations.
//
// Usage:
//
//	sorrento -ns 127.0.0.1:7000 -seeds 127.0.0.1:7001 mkdir /data
//	sorrento -ns ... put /data/blob ./local-file
//	sorrento -ns ... get /data/blob ./copy
//	sorrento -ns ... ls /data
//	sorrento -ns ... stat /data/blob
//	sorrento -ns ... rm /data/blob
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	ns := flag.String("ns", "127.0.0.1:7000", "namespace server address")
	seeds := flag.String("seeds", "", "comma-separated provider addresses (membership bootstrap)")
	repl := flag.Int("repl", 1, "replication degree for created files")
	alpha := flag.Float64("alpha", 0.5, "placement favoritism α for created files")
	maxPar := flag.Int("maxparallel", 0, "max concurrent piece RPCs per call (0 = default)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	// Instrument the client so its commits open trace roots that propagate
	// to the daemons' /debug/trace endpoints.
	o := obs.New(simtime.Real())
	network := &transport.TCPNetwork{Bind: "127.0.0.1:0", Seeds: seedList, Obs: o}
	client, err := core.NewClient("127.0.0.1:0", simtime.Real(), network, core.Config{
		Namespace:     wire.NodeID(*ns),
		MaxParallelIO: *maxPar,
		Obs:           o,
	})
	if err != nil {
		log.Fatalf("sorrento: %v", err)
	}
	defer client.Close()
	// Give the heartbeat listener a moment to learn the providers.
	if err := client.WaitForProviders(1, 5*time.Second); err != nil {
		log.Fatalf("sorrento: no providers visible: %v", err)
	}

	switch args[0] {
	case "mkdir":
		need(args, 2)
		check(client.Mkdir(args[1]))
	case "rmdir":
		need(args, 2)
		check(client.Rmdir(args[1]))
	case "ls":
		need(args, 2)
		entries, err := client.ReadDir(args[1])
		check(err)
		for _, e := range entries {
			if e.IsDir {
				fmt.Printf("%-30s dir\n", e.Name)
			} else {
				fmt.Printf("%-30s v%d %d bytes\n", e.Name, e.Entry.Version, e.Entry.Size)
			}
		}
	case "stat":
		need(args, 2)
		entry, err := client.Stat(args[1])
		check(err)
		fmt.Printf("path:    %s\nfileid:  %s\nversion: %d\nsize:    %d\nrepl:    %d\nmode:    %s\n",
			entry.Path, entry.FileID, entry.Version, entry.Size, entry.Attrs.ReplDeg, entry.Attrs.Mode)
	case "put":
		need(args, 3)
		data, err := os.ReadFile(args[2])
		check(err)
		attrs := wire.DefaultAttrs()
		attrs.ReplDeg = *repl
		attrs.Alpha = *alpha
		f, err := client.Create(args[1], attrs)
		check(err)
		_, err = f.WriteAt(data, 0)
		check(err)
		check(f.Close())
		fmt.Printf("wrote %d bytes to %s\n", len(data), args[1])
	case "get":
		need(args, 3)
		f, err := client.Open(args[1])
		check(err)
		buf := make([]byte, f.Size())
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			check(err)
		}
		check(os.WriteFile(args[2], buf, 0o644))
		fmt.Printf("read %d bytes from %s\n", len(buf), args[1])
	case "rm":
		need(args, 2)
		check(client.Remove(args[1]))
	case "append":
		need(args, 3)
		check(client.AtomicAppend(args[1], []byte(args[2])))
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func check(err error) {
	if err != nil {
		log.Fatalf("sorrento: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sorrento [-ns addr] [-seeds a,b] <mkdir|rmdir|ls|stat|put|get|rm|append> args...")
	os.Exit(2)
}
