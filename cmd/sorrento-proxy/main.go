// Command sorrento-proxy runs a stateless Sorrento gateway over real
// TCP/UDP: it terminates the thin client protocol (path-and-offset reads,
// writes, commits — no membership or placement knowledge on the client) and
// speaks the full Sorrento protocol to the providers through an embedded
// core client. Proxies keep only soft state, so any number of them can run
// behind a load balancer and a crashed proxy loses nothing a client cannot
// redo by reconnecting.
//
// Fronting the two-node volume from the sorrentod example:
//
//	sorrento-proxy -listen 127.0.0.1:7100 -ns 127.0.0.1:7000 -seeds 127.0.0.1:7001
//
// Thin clients then need only the proxy address; sorrento-admin inspects
// the gateway with `sorrento-admin proxy-status 127.0.0.1:7100`.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7100", "TCP/UDP address to listen on")
	advertise := flag.String("advertise", "", "address peers use to reach this proxy (default: listen address)")
	ns := flag.String("ns", "127.0.0.1:7000", "namespace server address")
	seeds := flag.String("seeds", "", "comma-separated provider addresses (membership bootstrap)")
	sessTTL := flag.Duration("session-ttl", 5*time.Minute, "idle write sessions expire after this long")
	readTTL := flag.Duration("read-ttl", 2*time.Second, "cached read handles re-resolve after this long")
	metrics := flag.String("metrics", ":9331", "HTTP address for /metrics, /metrics.json and /debug/trace")
	obsOn := flag.Bool("obs", true, "collect metrics and traces (off = zero observability overhead)")
	flag.Parse()

	clock := simtime.Real()
	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	network := &transport.TCPNetwork{Bind: *listen, Seeds: seedList}
	adv := *advertise
	if adv == "" {
		adv = *listen
	}

	var o *obs.Obs
	if *obsOn {
		o = obs.New(clock)
		network.Obs = o
	}

	cfg := proxy.Config{
		Client: core.Config{
			Namespace: wire.NodeID(*ns),
			Obs:       o,
		},
		SessionTTL: *sessTTL,
		ReadTTL:    *readTTL,
	}
	p, err := proxy.New(adv, clock, network, cfg)
	if err != nil {
		log.Fatalf("sorrento-proxy: %v", err)
	}
	defer p.Close()
	if err := p.Client().WaitForProviders(1, 10*time.Second); err != nil {
		log.Printf("sorrento-proxy: no providers visible yet: %v", err)
	}
	log.Printf("sorrento-proxy: gateway %s serving (ns %s)", p.ID(), *ns)

	if o != nil && *metrics != "" {
		srv := o.ServeMetrics(*metrics, func(err error) { log.Printf("sorrento-proxy: metrics server: %v", err) })
		defer srv.Close()
		log.Printf("sorrento-proxy: metrics on http://%s/metrics", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sorrento-proxy: shutting down")
}
