// Command sorrento-bench regenerates the tables and figures of the
// Sorrento paper's evaluation (Section 4) on the simulated cluster.
//
// Usage:
//
//	sorrento-bench -exp fig9            # one experiment
//	sorrento-bench -exp all             # every experiment
//	sorrento-bench -exp fig11 -quick    # reduced parameters (CI-sized)
//	sorrento-bench -exp harness -providers 128,256,512
//
// Results print in the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison. The harness experiment measures
// the simulation substrate itself (CPU per modeled second, heartbeat
// keep-up, per-node control bytes) across cluster sizes and writes
// BENCH_harness.json; it is not part of -exp all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/simtime"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to run: fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablations|harness|proxy|scrub|all (harness, proxy and scrub are substrate/robustness benchmarks, not part of 'all')")
	quick := flag.Bool("quick", false, "reduced parameters (faster, noisier)")
	obsOn := flag.Bool("obs", true, "instrument each run and write a metrics snapshot")
	metricsOut := flag.String("metrics-out", ".", "directory for per-run <exp>-metrics.{json,prom} snapshots (empty disables)")
	maxPar := flag.Int("maxparallel", 0, "override clients' MaxParallelIO fan-out width (0 = default)")
	faults := flag.Bool("faults", false, "fig13: partition the victim instead of killing it (exercises retry/failover + resync)")
	providers := flag.String("providers", "", "harness: comma-separated cluster sizes (default 128,256,512)")
	benchOut := flag.String("bench-out", "", "harness/proxy/scrub: output path for the sweep JSON (default BENCH_<exp>.json, BENCH_integrity.json for scrub; '-' disables)")
	conns := flag.Int("conns", 0, "proxy: simulated client connection population (default 100000)")
	proxies := flag.Int("proxies", 0, "proxy: gateway count the load funnels through (default 4)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Parse()

	bench.MaxParallelIO = *maxPar
	fig13Faults = *faults
	benchOutPath = *benchOut
	proxyConns = *conns
	proxyCount = *proxies
	if *providers != "" {
		sizes, err := parseSizes(*providers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-providers: %v\n", err)
			return 2
		}
		harnessProviders = sizes
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	runners := map[string]func(bool) error{
		"fig9":      runFig9,
		"fig10":     runFig10,
		"fig11":     runFig11,
		"fig12":     runFig12,
		"fig13":     runFig13,
		"fig14":     runFig14,
		"fig15":     runFig15,
		"ablations": runAblations,
		"harness":   runHarness,
		"proxy":     runProxy,
		"scrub":     runScrub,
	}
	order := []string{"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablations"}

	runOne := func(name string, run func(bool) error) error {
		if *obsOn {
			// A fresh registry per experiment so snapshots don't bleed into
			// each other. The wall clock only timestamps trace spans; every
			// duration metric is measured on the run's modeled clock.
			bench.Obs = obs.New(simtime.Real())
		}
		err := run(*quick)
		if *obsOn && *metricsOut != "" && err == nil {
			if derr := dumpMetrics(*metricsOut, name, bench.Obs); derr != nil {
				fmt.Fprintf(os.Stderr, "%s: metrics snapshot: %v\n", name, derr)
			}
		}
		bench.Obs = nil
		return err
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("=== %s ===\n", name)
			if err := runOne(name, runners[name]); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				return 1
			}
			fmt.Println()
		}
		return 0
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	if err := runOne(*exp, run); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *exp, err)
		return 1
	}
	return 0
}

// parseSizes parses a comma-separated list of positive cluster sizes.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad cluster size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// dumpMetrics writes the run's metrics snapshot next to the figure output,
// in both JSON (metrics + spans) and Prometheus text form.
func dumpMetrics(dir, name string, o *obs.Obs) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, name+"-metrics.json"))
	if err != nil {
		return err
	}
	if err := obs.WriteJSON(jf, o.Reg(), o.Tr()); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(dir, name+"-metrics.prom"))
	if err != nil {
		return err
	}
	if err := obs.WritePrometheus(pf, o.Reg()); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

func runFig9(quick bool) error {
	p := bench.Fig9Params{Scale: bench.Scale{Time: 0.1, Data: 1}}
	if quick {
		p.Ops = 10
	}
	res, err := bench.RunFig9(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

func runFig10(quick bool) error {
	p := bench.Fig10Params{Scale: bench.Scale{Time: 0.04, Data: 1}}
	if quick {
		p.Clients = []int{1, 4, 8}
		p.SessionsPerClient = 12
	}
	res, err := bench.RunFig10(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

func runFig11(quick bool) error {
	p := bench.Fig11Params{Scale: bench.Scale{Time: 0.01, Data: 1024}}
	if quick {
		p.Clients = []int{1, 4, 8}
		p.Files = 16
		p.BytesPerClient = 64 << 20
	}
	res, err := bench.RunFig11(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

func runFig12(quick bool) error {
	p := bench.Fig12Params{Scale: bench.Scale{Time: 0.01, Data: 1024}}
	if quick {
		p.BTIOSteps = 10
		p.PSMQueries = 8
	}
	res, err := bench.RunFig12(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

// fig13Faults is set by the -faults flag: run fig13 in partition mode.
var fig13Faults bool

func runFig13(quick bool) error {
	p := bench.Fig13Params{Scale: bench.Scale{Time: 0.02, Data: 1024}}
	if fig13Faults {
		p.FaultMode = "partition"
	}
	if quick {
		p.Files = 24
		p.RunFor = 90 * time.Second
		p.RecoveryWait = 40 * time.Minute
	}
	res, err := bench.RunFig13(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

func runFig14(quick bool) error {
	p := bench.Fig14Params{Scale: bench.Scale{Time: 0.001, Data: 2048}}
	if quick {
		p.Crawlers = 20
		p.DomainsPerCrawler = 6
		p.Duration = 4 * time.Hour
	}
	res, err := bench.RunFig14(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

func runFig15(quick bool) error {
	p := bench.Fig15Params{Scale: bench.Scale{Time: 0.002, Data: 2048}}
	if quick {
		p.RunFor = 15 * time.Minute
	}
	res, err := bench.RunFig15(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	return nil
}

// harnessProviders, benchOutPath, proxyConns and proxyCount are set by the
// -providers, -bench-out, -conns and -proxies flags.
var (
	harnessProviders []int
	benchOutPath     string
	proxyConns       int
	proxyCount       int
)

// benchOutFor resolves -bench-out for a substrate sweep: empty means the
// conventional BENCH_<exp>.json, "-" disables the file.
func benchOutFor(exp string) string {
	switch benchOutPath {
	case "":
		return "BENCH_" + exp + ".json"
	case "-":
		return ""
	default:
		return benchOutPath
	}
}

func runHarness(quick bool) error {
	p := bench.HarnessParams{Providers: harnessProviders}
	if quick {
		if harnessProviders == nil {
			p.Providers = []int{32, 64, 128}
		}
		p.Scale.Time = 0.1
		p.RunFor = 15 * time.Second
	}
	res, err := bench.RunHarness(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	if out := benchOutFor("harness"); out != "" {
		if err := res.WriteJSON(out); err != nil {
			return fmt.Errorf("write %s: %w", out, err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func runProxy(quick bool) error {
	p := bench.ProxyParams{Conns: proxyConns, Proxies: proxyCount}
	if quick {
		if p.Conns <= 0 {
			p.Conns = 20_000
		}
		if p.Proxies <= 0 {
			p.Proxies = 2
		}
		p.Edges = 4
		p.Providers = 8
		p.Rates = []float64{2_000, 8_000, 16_000}
		p.Scale.Time = 0.5
		p.Warmup = 500 * time.Millisecond
		p.Window = 2 * time.Second
		p.Files = 16
	}
	res, err := bench.RunProxy(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	if out := benchOutFor("proxy"); out != "" {
		if err := res.WriteJSON(out); err != nil {
			return fmt.Errorf("write %s: %w", out, err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func runScrub(quick bool) error {
	var p bench.ScrubParams
	if quick {
		p.Providers = 8
		p.Corruptions = 8
		p.Files = 8
		p.FileSize = 1 << 20
		p.Paces = []time.Duration{2 * time.Second, 10 * time.Second}
		p.Scale.Time = 0.002
	}
	res, err := bench.RunScrub(p)
	if err != nil {
		return err
	}
	res.Report(os.Stdout)
	out := benchOutPath
	switch out {
	case "":
		out = "BENCH_integrity.json" // the integrity artifact, not BENCH_scrub.json
	case "-":
		out = ""
	}
	if out != "" {
		if err := res.WriteJSON(out); err != nil {
			return fmt.Errorf("write %s: %w", out, err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func runAblations(quick bool) error {
	delta, err := bench.RunDeltaSyncAblation()
	if err != nil {
		return err
	}
	delta.Report(os.Stdout)
	repl, err := bench.RunReplicationAblation(bench.Scale{Time: 0.1})
	if err != nil {
		return err
	}
	repl.Report(os.Stdout)
	alpha, err := bench.RunAlphaAblation(bench.Scale{Time: 0.001, Data: 2048})
	if err != nil {
		return err
	}
	alpha.Report(os.Stdout)
	_ = quick
	return nil
}
