// Command sorrento-admin drives online maintenance against a live volume:
// it drains and retires providers (zero acked-commit loss — placement stops
// choosing a draining node while a background worker migrates its segments
// away) and inspects gateway proxies.
//
// Usage:
//
//	sorrento-admin drain 127.0.0.1:7001        # start draining a provider
//	sorrento-admin drain-abort 127.0.0.1:7001  # cancel an in-progress drain
//	sorrento-admin status 127.0.0.1:7001       # drain/storage state
//	sorrento-admin retire 127.0.0.1:7001       # remove a fully drained node
//	sorrento-admin proxy-status 127.0.0.1:7100 # gateway soft state + traffic
//
// Every subcommand is a single RPC to the target node; retire fails unless
// the provider is draining and holds no segments or shadow sessions, so the
// safe sequence is drain, poll status until segments=0 shadows=0, retire.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	timeout := flag.Duration("timeout", 10*time.Second, "RPC timeout")
	bind := flag.String("bind", "127.0.0.1:0", "local address to issue the RPC from")
	flag.Parse()
	args := flag.Args()
	if len(args) != 2 {
		usage()
	}
	verb, target := args[0], wire.NodeID(args[1])

	var req any
	switch verb {
	case "drain":
		req = wire.AdminDrain{Node: target}
	case "drain-abort":
		req = wire.AdminDrain{Node: target, Abort: true}
	case "status":
		req = wire.AdminStatus{Node: target}
	case "retire":
		req = wire.AdminRetire{Node: target}
	case "proxy-status":
		req = wire.ProxyStatus{Node: target}
	default:
		usage()
	}

	network := &transport.TCPNetwork{Bind: *bind}
	ep, err := network.Join(wire.NodeID(*bind), silentHandler{})
	if err != nil {
		log.Fatalf("sorrento-admin: %v", err)
	}
	defer ep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := ep.Call(ctx, target, req)
	if err != nil {
		log.Fatalf("sorrento-admin: %s %s: %v", verb, target, err)
	}

	switch r := resp.(type) {
	case wire.GenericResp:
		if !r.OK {
			log.Fatalf("sorrento-admin: %s %s: %s", verb, target, r.Err)
		}
		fmt.Printf("%s %s: ok\n", verb, target)
	case wire.AdminStatusResp:
		if !r.OK {
			log.Fatalf("sorrento-admin: %s %s: %s", verb, target, r.Err)
		}
		state := "serving"
		if r.Draining {
			state = "draining"
		}
		fmt.Printf("node:      %s\nstate:     %s\nsegments:  %d\nshadows:   %d\nfree:      %d bytes\ntotal:     %d bytes\n",
			r.Node, state, r.Segments, r.Shadows, r.FreeBytes, r.TotalBytes)
	case wire.ProxyStatusResp:
		if !r.OK {
			log.Fatalf("sorrento-admin: %s %s: %s", verb, target, r.Err)
		}
		fmt.Printf("node:      %s\nsessions:  %d\nreads:     %d\nrequests:  %d\nerrors:    %d\nproviders: %d\n",
			r.Node, r.Sessions, r.Reads, r.Requests, r.Errors, r.Providers)
	default:
		log.Fatalf("sorrento-admin: unexpected response %T", resp)
	}
}

// silentHandler drops inbound traffic: the admin tool only issues requests.
type silentHandler struct{}

func (silentHandler) HandleCall(context.Context, wire.NodeID, any) (any, error) {
	return nil, transport.ErrNoHandler
}
func (silentHandler) HandleCast(wire.NodeID, any) {}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sorrento-admin [-timeout d] <drain|drain-abort|status|retire|proxy-status> <node-address>")
	os.Exit(2)
}
