// Command sorrento-trace generates the paper's application workload traces
// and replays saved traces against a live TCP volume — the trace-replay
// methodology of §4 as a standalone utility.
//
//	sorrento-trace gen -workload smallfile -out sf.trace -count 100
//	sorrento-trace gen -workload bulk -out bulk.trace -files 4 -filesize 8388608
//	sorrento-trace gen -workload btio -out btio.trace -rank 0 -procs 4
//	sorrento-trace gen -workload psm -out psm.trace
//	sorrento-trace gen -workload crawler -out crawl.trace
//	sorrento-trace replay -in sf.trace -ns 127.0.0.1:7000 -seeds 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sorrento-trace gen    -workload smallfile|bulk|btio|psm|crawler -out FILE [options]
  sorrento-trace replay -in FILE -ns ADDR -seeds a,b [-repl N]`)
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("workload", "smallfile", "smallfile|bulk|btio|psm|crawler")
	out := fs.String("out", "", "output trace file")
	count := fs.Int("count", 100, "smallfile: sessions")
	size := fs.Int64("size", 12<<10, "smallfile: write size")
	files := fs.Int("files", 4, "bulk: file count")
	fileSize := fs.Int64("filesize", 64<<20, "bulk: file size")
	reqSize := fs.Int64("reqsize", 4<<20, "bulk: request size")
	requests := fs.Int("requests", 64, "bulk: request count")
	write := fs.Bool("write", false, "bulk: write instead of read")
	rank := fs.Int("rank", 0, "btio: this process's rank")
	procs := fs.Int("procs", 4, "btio: process count")
	steps := fs.Int("steps", 40, "btio: solution dumps")
	seed := fs.Int64("seed", 1, "randomness seed")
	fs.Parse(args)
	if *out == "" {
		usage()
	}

	var tr *trace.Trace
	switch *kind {
	case "smallfile":
		tr = workload.SmallFileSessions("/trace", *count, *size)
	case "bulk":
		names := make([]string, *files)
		for i := range names {
			names[i] = fmt.Sprintf("/bulk-%03d", i)
		}
		tr = workload.Bulk(workload.BulkParams{
			Files: names, FileSize: *fileSize, ReqSize: *reqSize,
			Requests: *requests, Write: *write, Seed: *seed,
		})
	case "btio":
		tr = workload.BTIO(workload.BTIOParams{
			Path: "/btio", Processes: *procs, Rank: *rank,
			BlockSize: 1 << 20, BlocksPerStep: 1, Steps: *steps, ReadFraction: 0.63,
		})
	case "psm":
		tr = workload.PSM(workload.PSMParams{
			Partitions:    []string{"/psm/part-00", "/psm/part-01", "/psm/part-02"},
			PartitionSize: 64 << 20, Queries: 50, ScanBytes: 3 << 20,
			ReadSize: 256 << 10, Think: 500 * time.Millisecond, Seed: *seed,
		})
	case "crawler":
		tr = workload.Crawler(workload.CrawlerParams{
			Index: 0, Domains: 8, PageSize: 16 << 10, MeanPages: 100,
			MaxPages: 2000, PagesPerSecond: 10, Duration: 10 * time.Minute, Seed: *seed,
		})
	default:
		usage()
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("sorrento-trace: %v", err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		log.Fatalf("sorrento-trace: %v", err)
	}
	fmt.Printf("wrote %d records to %s\n", len(tr.Records), *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	ns := fs.String("ns", "127.0.0.1:7000", "namespace server address")
	seeds := fs.String("seeds", "", "comma-separated provider addresses")
	repl := fs.Int("repl", 1, "replication degree for created files")
	fs.Parse(args)
	if *in == "" {
		usage()
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("sorrento-trace: %v", err)
	}
	tr, err := trace.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("sorrento-trace: %v", err)
	}

	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	network := &transport.TCPNetwork{Bind: "127.0.0.1:0", Seeds: seedList}
	clock := simtime.Real()
	client, err := core.NewClient("127.0.0.1:0", clock, network, core.Config{
		Namespace: wire.NodeID(*ns),
	})
	if err != nil {
		log.Fatalf("sorrento-trace: %v", err)
	}
	defer client.Close()
	if err := client.WaitForProviders(1, 5*time.Second); err != nil {
		log.Fatalf("sorrento-trace: %v", err)
	}

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = *repl
	mount := core.NewFS(client, attrs, "replay")
	r := trace.NewReplayer(clock, mount)
	errCount := 0
	r.OnError = func(rec trace.Record, err error) {
		if errCount < 5 {
			log.Printf("op error: %s %s: %v", rec.Kind, rec.Path, err)
		}
		errCount++
	}
	st := r.Run(tr)
	fmt.Printf("replayed %d ops in %.2fs: read %.2f MB (%.2f MB/s), wrote %.2f MB (%.2f MB/s), %d errors\n",
		st.Ops, st.Elapsed.Seconds(),
		float64(st.BytesRead)/1e6, st.ReadRate(),
		float64(st.BytesWritten)/1e6, st.WriteRate(), st.Errors)
}
