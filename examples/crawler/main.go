// Crawler: the load-aware placement scenario of paper §4.4 in miniature.
// Crawler processes co-located with the storage providers store pages into
// per-domain files whose sizes are heavily skewed; space-based placement
// (α = 0) plus online migration keeps storage usage balanced without any
// administrator involvement.
//
//	go run ./examples/crawler
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	pcfg := provider.DefaultConfig()
	pcfg.Migration.Interval = 30 * time.Second
	pcfg.Migration.LocalityEnabled = false
	c, err := cluster.New(cluster.Options{
		Providers:    6,
		Scale:        0.002,
		DiskCapacity: 8 << 20, // small disks make the imbalance visible
		Provider:     pcfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	if err := c.AwaitStable(6, 2*time.Minute); err != nil {
		log.Fatal(err)
	}

	// Space-based placement: α = 0 favors space-rich providers (the
	// paper's choice for the light-I/O crawler workload).
	attrs := wire.DefaultAttrs()
	attrs.Alpha = 0

	seed, err := c.NewClient("seed")
	if err != nil {
		log.Fatal(err)
	}
	seed.WaitForProviders(6, time.Minute)
	if err := seed.Mkdir("/crawl"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("crawling: 6 co-located crawlers, heavy-tailed domain sizes, >4x speed spread")
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		client, err := c.NewClientAt(fmt.Sprintf("crawler-%d", i), cluster.ProviderID(i))
		if err != nil {
			log.Fatal(err)
		}
		client.WaitForProviders(6, time.Minute)
		fs := core.NewFS(client, attrs, "crawler")
		tr := workload.Crawler(workload.CrawlerParams{
			Index:          i,
			Domains:        4,
			PageSize:       8 << 10,
			MeanPages:      40,
			MaxPages:       600,
			PagesPerSecond: 4 * float64(i+1),
			Duration:       10 * time.Minute,
			Seed:           int64(i + 1),
		})
		wg.Add(1)
		go func(fs *core.FS, tr *trace.Trace) {
			defer wg.Done()
			st := trace.NewReplayer(c.Clock, fs).Run(tr)
			if st.Errors > 0 {
				log.Printf("crawler finished with %d op errors", st.Errors)
			}
		}(fs, tr)
	}
	wg.Wait()

	report := func(tag string) float64 {
		fracs := c.StorageUsedFracs()
		keys := make([]string, 0, len(fracs))
		vals := make([]float64, 0, len(fracs))
		for k := range fracs {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		fmt.Printf("%s:\n", tag)
		for _, k := range keys {
			pct := fracs[wire.NodeID(k)] * 100
			vals = append(vals, pct)
			fmt.Printf("  %-5s %5.1f%%\n", k, pct)
		}
		u := stats.UnevennessRatio(vals)
		fmt.Printf("  unevenness (max/min): %.2f\n", u)
		return u
	}
	before := report("storage usage right after the crawl")

	// Let the once-a-minute migration cycles settle the residual imbalance.
	c.Clock.Sleep(5 * time.Minute)
	after := report("after online migration settles")
	fmt.Printf("unevenness %.2f -> %.2f with zero administrator involvement\n", before, after)
}
