// Quickstart: bring up an in-process Sorrento volume (4 storage providers
// + a namespace server over the simulated fabric), write a file, read it
// back, and show versioned commits and the atomic-append primitive.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/wire"
)

func main() {
	// A 4-provider volume at 1000× time compression.
	c, err := cluster.New(cluster.Options{Providers: 4, Scale: 0.001})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	if err := c.AwaitStable(4, 2*time.Minute); err != nil {
		log.Fatal(err)
	}

	client, err := c.NewClient("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.WaitForProviders(4, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("volume up: 4 storage providers visible")

	// Create a replicated file and write to it. Nothing is visible to other
	// processes until the handle commits (close = implicit commit).
	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, err := client.Create("/hello.txt", attrs)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello, sorrento!\n"), 0); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote /hello.txt (version 1, replicated 2×, lazily propagated)")

	// Read it back.
	r, err := client.Open("/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("read back v%d: %q\n", r.Version(), buf)

	// A second commit advances the version; readers of the old handle keep
	// their snapshot.
	w, err := client.OpenWrite("/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	w.WriteAt([]byte("HELLO"), 0)
	if err := w.Commit(core.CommitOptions{}); err != nil {
		log.Fatal(err)
	}
	entry, _ := client.Stat("/hello.txt")
	fmt.Printf("after second commit: version %d, size %d\n", entry.Version, entry.Size)

	// Atomic append (paper Figure 4): optimistic concurrency with
	// retry-on-conflict.
	logf, _ := client.Create("/app.log", wire.DefaultAttrs())
	logf.Close()
	for i := 0; i < 3; i++ {
		if err := client.AtomicAppend("/app.log", []byte(fmt.Sprintf("record %d;", i))); err != nil {
			log.Fatal(err)
		}
	}
	lf, _ := client.Open("/app.log")
	lbuf := make([]byte, lf.Size())
	lf.ReadAt(lbuf, 0)
	fmt.Printf("appended log: %q\n", lbuf)
}
