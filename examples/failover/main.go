// Failover: demonstrate Sorrento's self-organization (paper §4.3). A
// 5-provider volume holds a 3×-replicated file; one provider crashes, the
// survivors detect it through missed heartbeats, data stays readable, and
// the home hosts re-create the lost replicas in the background. A fresh
// provider then joins and is absorbed without interrupting anything.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

func main() {
	c, err := cluster.New(cluster.Options{Providers: 5, Scale: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	if err := c.AwaitStable(5, 2*time.Minute); err != nil {
		log.Fatal(err)
	}
	client, err := c.NewClient("app")
	if err != nil {
		log.Fatal(err)
	}
	client.WaitForProviders(5, time.Minute)

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 3
	f, err := client.Create("/vital.dat", attrs)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 256<<10)
	f.WriteAt(payload, 0)
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	entry, _ := client.Stat("/vital.dat")

	replicas := func() int {
		n := 0
		for _, p := range c.Providers() {
			if p.Store().Stat(entry.FileID).Present {
				n++
			}
		}
		return n
	}
	waitReplicas := func(want int) {
		for replicas() < want {
			c.Clock.Sleep(2 * time.Second)
		}
	}
	waitReplicas(3)
	fmt.Printf("file fully replicated: %d/3 index replicas\n", replicas())

	// Find a replica holder and crash it.
	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			victim = id
			break
		}
	}
	fmt.Printf("crashing provider %s ...\n", victim)
	if err := c.KillProvider(victim); err != nil {
		log.Fatal(err)
	}

	// The file stays readable throughout.
	r, err := client.Open("/vital.dat")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := r.ReadAt(buf, 0); err != nil {
		log.Fatalf("read during failure: %v", err)
	}
	fmt.Println("file still readable while the failure is being detected")

	// Survivors detect the failure (5 missed heartbeats) and restore the
	// replication degree.
	for client.Members().IsLive(victim) {
		c.Clock.Sleep(time.Second)
	}
	fmt.Printf("failure detected: live providers = %v\n", client.Members().Live())
	waitReplicas(3)
	fmt.Printf("replication degree restored: %d/3 replicas on the survivors\n", replicas())

	// Incremental expansion: plug in a new node; it joins the ring and
	// starts receiving placements with no reconfiguration.
	if _, err := c.AddProvider("pnew"); err != nil {
		log.Fatal(err)
	}
	for !client.Members().IsLive("pnew") {
		c.Clock.Sleep(time.Second)
	}
	fmt.Printf("new provider absorbed: live providers = %v\n", client.Members().Live())
}
