// PSM: the locality-driven migration scenario of paper §4.5 in miniature.
// A parallel Protein Sequence Matching service's partitions are imported
// onto the volume with no placement knowledge; the co-located service
// processes then query their statically assigned partitions, and Sorrento
// detects the access locality from the traffic and migrates each partition
// next to its process — cutting the per-query I/O time with no service
// interruption.
//
//	go run ./examples/psm
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

const (
	providers = 4
	partSize  = 1 << 20
)

func main() {
	pcfg := provider.DefaultConfig()
	pcfg.Migration.Enabled = false // isolate the locality policy
	pcfg.Migration.LocalityEnabled = true
	pcfg.Migration.Interval = 30 * time.Second
	pcfg.Migration.MinTraffic = 10
	c, err := cluster.New(cluster.Options{Providers: providers, Scale: 0.002, Provider: pcfg})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	if err := c.AwaitStable(providers, 2*time.Minute); err != nil {
		log.Fatal(err)
	}

	// Import the partitions blindly: uniform random placement, locality
	// policy armed with a 70% traffic threshold.
	attrs := wire.DefaultAttrs()
	attrs.Policy = wire.PlaceRandom
	attrs.LocalityThreshold = 0.7
	importer, err := c.NewClient("importer")
	if err != nil {
		log.Fatal(err)
	}
	importer.WaitForProviders(providers, time.Minute)
	if err := importer.Mkdir("/psm"); err != nil {
		log.Fatal(err)
	}
	parts := make([]string, providers) // one partition per service process
	payload := make([]byte, 64<<10)
	for i := range parts {
		parts[i] = fmt.Sprintf("/psm/part-%02d", i)
		f, err := importer.Create(parts[i], attrs)
		if err != nil {
			log.Fatal(err)
		}
		for off := int64(0); off < partSize; off += int64(len(payload)) {
			f.WriteAt(payload, off)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	localCount := func() int {
		n := 0
		for i := range parts {
			segs, err := importer.SegmentsOf(parts[i])
			if err != nil || len(segs) == 0 {
				continue
			}
			prov := c.Provider(cluster.ProviderID(i))
			local := true
			for _, seg := range segs {
				if !prov.Store().Stat(seg).Present {
					local = false
					break
				}
			}
			if local {
				n++
			}
		}
		return n
	}
	fmt.Printf("imported %d partitions; %d already co-located with their process\n",
		len(parts), localCount())

	// Each service process queries its partition from its own node.
	var series stats.TimeSeries
	var wg sync.WaitGroup
	for i := 0; i < providers; i++ {
		client, err := c.NewClientAt(fmt.Sprintf("psm-%d", i), cluster.ProviderID(i))
		if err != nil {
			log.Fatal(err)
		}
		client.WaitForProviders(providers, time.Minute)
		fs := core.NewFS(client, attrs, "psm")
		tr := workload.PSM(workload.PSMParams{
			Partitions:    parts[i : i+1],
			PartitionSize: partSize,
			Queries:       60,
			ScanBytes:     96 << 10,
			ReadSize:      32 << 10,
			Think:         5 * time.Second,
			Seed:          int64(i + 1),
		})
		wg.Add(1)
		go func(fs *core.FS, tr *trace.Trace) {
			defer wg.Done()
			r := trace.NewReplayer(c.Clock, fs)
			r.QuerySeries = &series
			r.Run(tr)
		}(fs, tr)
	}
	wg.Wait()

	buckets := series.Bucketed(time.Minute)
	fmt.Println("per-query I/O time over the run (1-minute buckets):")
	for _, pt := range buckets {
		fmt.Printf("  t=%4.0fs  %6.1f ms/query\n", pt.T.Seconds(), pt.V)
	}
	fmt.Printf("partitions co-located with their process after the run: %d/%d\n",
		localCount(), len(parts))
}
