package simnet

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the fabric's deterministic fault-injection surface. Faults
// are expressed at the host level (co-located endpoints share their host's
// fate) and drive every failure mode of the paper's §4.3/§4.4 recovery
// story plus the gray failures real clusters add on top:
//
//   - Partitions: a blocked link loses messages; callers observe the same
//     CallTimeout a dead node produces. Blocks are unidirectional so
//     asymmetric partitions (a node that can send heartbeats but not
//     receive them) are expressible; Partition blocks both directions.
//   - Message loss and latency spikes: per-link (or fabric-default) drop
//     probability and added one-way delay, driven by a seeded RNG so a
//     pinned seed replays the same loss pattern.
//   - Pause/Resume: a paused host models a GC-stall-like gray failure. Its
//     inbound and outbound messages wait for Resume up to CallTimeout and
//     are lost past that, so short stalls only add latency while long
//     stalls look like a crash until the node comes back on its own.
//
// Every injection and every fault-induced message loss is counted in the
// instrumented registry (sorrento_net_faults_total), so experiments can
// report exactly how much abuse a run absorbed.
//
// Scaling: every message crosses this layer twice (request and response),
// so its cost must not grow with cluster size. Two atomic counters make the
// healthy case free — linkVerdict and awaitResume return after one atomic
// load when no fault of their kind is injected, so a 512-node run with a
// few dead nodes never takes a fault lock. When link faults ARE active,
// per-link state (blocks, loss, latency) lives in hash-sharded maps with
// per-shard RNGs, so chaos on one link doesn't serialize verdicts on
// disjoint links. Host-level state (isolation, pauses, the default fault)
// is a handful of entries and stays under one mutex.

// LinkFault degrades one direction of a host pair's link.
type LinkFault struct {
	// DropProb is the probability in [0,1] that a message is lost.
	DropProb float64
	// ExtraLatency is added to the modeled one-way propagation delay.
	ExtraLatency time.Duration
}

func (lf LinkFault) zero() bool { return lf.DropProb == 0 && lf.ExtraLatency == 0 }

type linkKey struct{ from, to wire.NodeID }

// faultShards is the number of per-link state shards. Links hash to shards,
// so concurrent verdicts on distinct faulted links rarely share a lock.
const faultShards = 32

type faultShard struct {
	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[linkKey]bool
	links   map[linkKey]LinkFault
}

// faults holds the fabric's injected-fault state.
type faults struct {
	// linkActive counts injected link-level fault entries (blocks, link
	// faults, isolation flags, a non-zero default); pausedN counts paused
	// hosts. Zero means the respective data path is a single atomic load.
	linkActive atomic.Int64
	pausedN    atomic.Int64

	shards [faultShards]faultShard

	mu       sync.Mutex // host-level state; also serializes injections
	def      LinkFault
	blockIn  map[wire.NodeID]bool
	blockOut map[wire.NodeID]bool
	paused   map[wire.NodeID]chan struct{}
}

func newFaults(seed int64) *faults {
	f := &faults{
		blockIn:  make(map[wire.NodeID]bool),
		blockOut: make(map[wire.NodeID]bool),
		paused:   make(map[wire.NodeID]chan struct{}),
	}
	f.reseed(seed)
	for i := range f.shards {
		f.shards[i].blocked = make(map[linkKey]bool)
		f.shards[i].links = make(map[linkKey]LinkFault)
	}
	return f
}

// quiet reports that no fault of any kind is currently injected, so the
// data path may skip per-receiver verdicts entirely.
func (ff *faults) quiet() bool {
	return ff.linkActive.Load() == 0 && ff.pausedN.Load() == 0
}

// reseed derives one RNG per shard from the base seed. A link always hashes
// to the same shard within a fabric, so a pinned seed replays the same drop
// pattern for the same traffic.
func (ff *faults) reseed(seed int64) {
	if seed == 0 {
		seed = 1
	}
	for i := range ff.shards {
		ff.shards[i].rng = rand.New(rand.NewSource(seed + int64(i)))
	}
}

// shard maps a link to its state shard with FNV-1a. The hash is
// deterministic across processes so a pinned fault seed replays the same
// shard assignment, and therefore the same per-shard RNG drop pattern.
func (ff *faults) shard(k linkKey) *faultShard {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for i := 0; i < len(k.from); i++ {
		h = (h ^ uint64(k.from[i])) * prime64
	}
	h *= prime64 // separator between the two names
	for i := 0; i < len(k.to); i++ {
		h = (h ^ uint64(k.to[i])) * prime64
	}
	return &ff.shards[h%faultShards]
}

// SetFaultSeed reseeds the drop-decision RNGs (deterministic replay).
func (f *Fabric) SetFaultSeed(seed int64) {
	f.flt.mu.Lock()
	defer f.flt.mu.Unlock()
	for i := range f.flt.shards {
		f.flt.shards[i].mu.Lock()
	}
	f.flt.reseed(seed)
	for i := range f.flt.shards {
		f.flt.shards[i].mu.Unlock()
	}
}

// BlockLink drops every message from -> to until HealLink.
func (f *Fabric) BlockLink(from, to wire.NodeID) {
	k := linkKey{from, to}
	sh := f.flt.shard(k)
	sh.mu.Lock()
	if !sh.blocked[k] {
		sh.blocked[k] = true
		f.flt.linkActive.Add(1)
	}
	sh.mu.Unlock()
	f.countFault("inject_block")
}

// HealLink restores the from -> to direction.
func (f *Fabric) HealLink(from, to wire.NodeID) {
	k := linkKey{from, to}
	sh := f.flt.shard(k)
	sh.mu.Lock()
	if sh.blocked[k] {
		delete(sh.blocked, k)
		f.flt.linkActive.Add(-1)
	}
	sh.mu.Unlock()
	f.countFault("inject_heal")
}

// Partition blocks both directions between two hosts.
func (f *Fabric) Partition(a, b wire.NodeID) {
	f.BlockLink(a, b)
	f.BlockLink(b, a)
}

// Heal restores both directions between two hosts.
func (f *Fabric) Heal(a, b wire.NodeID) {
	f.HealLink(a, b)
	f.HealLink(b, a)
}

// IsolateNode cuts a host off in both directions from every other host,
// present and future (fig13's partition fault uses it).
func (f *Fabric) IsolateNode(id wire.NodeID) {
	f.flt.mu.Lock()
	if !f.flt.blockIn[id] {
		f.flt.blockIn[id] = true
		f.flt.linkActive.Add(1)
	}
	if !f.flt.blockOut[id] {
		f.flt.blockOut[id] = true
		f.flt.linkActive.Add(1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_isolate")
}

// IsolateInbound makes a host deaf: it can still send (its heartbeats keep
// flowing) but receives nothing — the asymmetric-partition case.
func (f *Fabric) IsolateInbound(id wire.NodeID) {
	f.flt.mu.Lock()
	if !f.flt.blockIn[id] {
		f.flt.blockIn[id] = true
		f.flt.linkActive.Add(1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_isolate_in")
}

// IsolateOutbound makes a host mute: it receives but nothing it sends
// arrives (the complementary asymmetric case).
func (f *Fabric) IsolateOutbound(id wire.NodeID) {
	f.flt.mu.Lock()
	if !f.flt.blockOut[id] {
		f.flt.blockOut[id] = true
		f.flt.linkActive.Add(1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_isolate_out")
}

// HealNode clears a host's isolation flags.
func (f *Fabric) HealNode(id wire.NodeID) {
	f.flt.mu.Lock()
	if f.flt.blockIn[id] {
		delete(f.flt.blockIn, id)
		f.flt.linkActive.Add(-1)
	}
	if f.flt.blockOut[id] {
		delete(f.flt.blockOut, id)
		f.flt.linkActive.Add(-1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_heal")
}

// SetLinkFault applies loss/latency degradation to both directions between
// two hosts; a zero LinkFault clears it.
func (f *Fabric) SetLinkFault(a, b wire.NodeID, lf LinkFault) {
	f.SetLinkFaultOneWay(a, b, lf)
	f.SetLinkFaultOneWay(b, a, lf)
}

// SetLinkFaultOneWay degrades a single direction.
func (f *Fabric) SetLinkFaultOneWay(from, to wire.NodeID, lf LinkFault) {
	k := linkKey{from, to}
	sh := f.flt.shard(k)
	sh.mu.Lock()
	_, had := sh.links[k]
	if lf.zero() {
		if had {
			delete(sh.links, k)
			f.flt.linkActive.Add(-1)
		}
	} else {
		if !had {
			f.flt.linkActive.Add(1)
		}
		sh.links[k] = lf
	}
	sh.mu.Unlock()
	f.countFault("inject_link_fault")
}

// SetDefaultLinkFault degrades every link without an explicit override —
// a uniformly lossy or slow network.
func (f *Fabric) SetDefaultLinkFault(lf LinkFault) {
	f.flt.mu.Lock()
	was, now := !f.flt.def.zero(), !lf.zero()
	f.flt.def = lf
	if now && !was {
		f.flt.linkActive.Add(1)
	} else if was && !now {
		f.flt.linkActive.Add(-1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_default_fault")
}

// Pause stalls a host: its inbound and outbound messages wait for Resume
// (up to CallTimeout, past which they are lost). Pausing a paused host is a
// no-op.
func (f *Fabric) Pause(id wire.NodeID) {
	f.flt.mu.Lock()
	if _, ok := f.flt.paused[id]; !ok {
		f.flt.paused[id] = make(chan struct{})
		f.flt.pausedN.Add(1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_pause")
}

// Resume releases a paused host; messages waiting on the stall proceed.
func (f *Fabric) Resume(id wire.NodeID) {
	f.flt.mu.Lock()
	if ch, ok := f.flt.paused[id]; ok {
		close(ch)
		delete(f.flt.paused, id)
		f.flt.pausedN.Add(-1)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_resume")
}

// Paused reports whether a host is currently stalled.
func (f *Fabric) Paused(id wire.NodeID) bool {
	f.flt.mu.Lock()
	defer f.flt.mu.Unlock()
	_, ok := f.flt.paused[id]
	return ok
}

// HealAllFaults clears partitions, isolation, link degradation, and resumes
// every paused host — the end-of-schedule cleanup chaos tests rely on.
func (f *Fabric) HealAllFaults() {
	flt := f.flt
	flt.mu.Lock()
	for i := range flt.shards {
		flt.shards[i].mu.Lock()
		flt.shards[i].blocked = make(map[linkKey]bool)
		flt.shards[i].links = make(map[linkKey]LinkFault)
		flt.shards[i].mu.Unlock()
	}
	flt.def = LinkFault{}
	flt.blockIn = make(map[wire.NodeID]bool)
	flt.blockOut = make(map[wire.NodeID]bool)
	for id, ch := range flt.paused {
		close(ch)
		delete(flt.paused, id)
	}
	flt.linkActive.Store(0)
	flt.pausedN.Store(0)
	flt.mu.Unlock()
	f.countFault("inject_heal_all")
}

// linkVerdict decides the fate of one message crossing from -> to: dropped
// (partition or random loss) and/or delayed. Fault-induced drops are
// counted by cause. With no link fault injected anywhere it is a single
// atomic load — the common case on the hot path.
func (f *Fabric) linkVerdict(from, to wire.NodeID) (drop bool, extra time.Duration) {
	flt := f.flt
	if flt.linkActive.Load() == 0 {
		return false, 0
	}
	flt.mu.Lock()
	hostBlocked := flt.blockOut[from] || flt.blockIn[to]
	def := flt.def
	flt.mu.Unlock()
	if hostBlocked {
		f.countFault("drop_partition")
		return true, 0
	}
	k := linkKey{from, to}
	sh := flt.shard(k)
	sh.mu.Lock()
	if sh.blocked[k] {
		sh.mu.Unlock()
		f.countFault("drop_partition")
		return true, 0
	}
	lf, ok := sh.links[k]
	if !ok {
		lf = def
	}
	lost := lf.DropProb > 0 && sh.rng.Float64() < lf.DropProb
	sh.mu.Unlock()
	if lost {
		f.countFault("drop_loss")
		return true, 0
	}
	if lf.ExtraLatency > 0 {
		f.countFault("latency_spike")
	}
	return false, lf.ExtraLatency
}

// awaitResume blocks while host is paused: until Resume, the caller's ctx
// deadline, or CallTimeout — whichever comes first. Messages of a stall
// longer than CallTimeout are lost, modeling overflowing queues in front of
// a wedged process. With no host paused it is a single atomic load.
func (f *Fabric) awaitResume(ctx context.Context, host wire.NodeID) error {
	flt := f.flt
	if flt.pausedN.Load() == 0 {
		return nil
	}
	flt.mu.Lock()
	ch, ok := flt.paused[host]
	flt.mu.Unlock()
	if !ok {
		return nil
	}
	f.countFault("pause_wait")
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-f.clock.After(f.cfg.CallTimeout):
		return transport.ErrTimeout
	}
}

// countFault increments the instrumented fault counter; a no-op on an
// uninstrumented fabric. Fault events are rare relative to data traffic, so
// the registry lookup per event is fine.
func (f *Fabric) countFault(kind string) {
	if o := f.obs.Load(); o != nil {
		o.Reg().Counter("sorrento_net_faults_total", obs.L("kind", kind)).Inc()
	}
}

// sleepExtra applies a latency spike, honoring the caller's deadline.
func (f *Fabric) sleepExtra(ctx context.Context, extra time.Duration) error {
	if extra <= 0 {
		return nil
	}
	return simtime.WaitUntilCtx(ctx, time.Now().Add(f.clock.Wall(extra)))
}
