package simnet

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the fabric's deterministic fault-injection surface. Faults
// are expressed at the host level (co-located endpoints share their host's
// fate) and drive every failure mode of the paper's §4.3/§4.4 recovery
// story plus the gray failures real clusters add on top:
//
//   - Partitions: a blocked link loses messages; callers observe the same
//     CallTimeout a dead node produces. Blocks are unidirectional so
//     asymmetric partitions (a node that can send heartbeats but not
//     receive them) are expressible; Partition blocks both directions.
//   - Message loss and latency spikes: per-link (or fabric-default) drop
//     probability and added one-way delay, driven by a seeded RNG so a
//     pinned seed replays the same loss pattern.
//   - Pause/Resume: a paused host models a GC-stall-like gray failure. Its
//     inbound and outbound messages wait for Resume up to CallTimeout and
//     are lost past that, so short stalls only add latency while long
//     stalls look like a crash until the node comes back on its own.
//
// Every injection and every fault-induced message loss is counted in the
// instrumented registry (sorrento_net_faults_total), so experiments can
// report exactly how much abuse a run absorbed.

// LinkFault degrades one direction of a host pair's link.
type LinkFault struct {
	// DropProb is the probability in [0,1] that a message is lost.
	DropProb float64
	// ExtraLatency is added to the modeled one-way propagation delay.
	ExtraLatency time.Duration
}

func (lf LinkFault) zero() bool { return lf.DropProb == 0 && lf.ExtraLatency == 0 }

type linkKey struct{ from, to wire.NodeID }

// faults holds the fabric's injected-fault state, guarded by its own mutex
// so the data path never contends with topology (join/lookup) locking.
type faults struct {
	mu       sync.Mutex
	rng      *rand.Rand
	blocked  map[linkKey]bool
	links    map[linkKey]LinkFault
	def      LinkFault
	blockIn  map[wire.NodeID]bool
	blockOut map[wire.NodeID]bool
	paused   map[wire.NodeID]chan struct{}
}

func newFaults(seed int64) *faults {
	if seed == 0 {
		seed = 1
	}
	return &faults{
		rng:      rand.New(rand.NewSource(seed)),
		blocked:  make(map[linkKey]bool),
		links:    make(map[linkKey]LinkFault),
		blockIn:  make(map[wire.NodeID]bool),
		blockOut: make(map[wire.NodeID]bool),
		paused:   make(map[wire.NodeID]chan struct{}),
	}
}

// SetFaultSeed reseeds the drop-decision RNG (deterministic replay).
func (f *Fabric) SetFaultSeed(seed int64) {
	f.flt.mu.Lock()
	defer f.flt.mu.Unlock()
	if seed == 0 {
		seed = 1
	}
	f.flt.rng = rand.New(rand.NewSource(seed))
}

// BlockLink drops every message from -> to until HealLink.
func (f *Fabric) BlockLink(from, to wire.NodeID) {
	f.flt.mu.Lock()
	f.flt.blocked[linkKey{from, to}] = true
	f.flt.mu.Unlock()
	f.countFault("inject_block")
}

// HealLink restores the from -> to direction.
func (f *Fabric) HealLink(from, to wire.NodeID) {
	f.flt.mu.Lock()
	delete(f.flt.blocked, linkKey{from, to})
	f.flt.mu.Unlock()
	f.countFault("inject_heal")
}

// Partition blocks both directions between two hosts.
func (f *Fabric) Partition(a, b wire.NodeID) {
	f.BlockLink(a, b)
	f.BlockLink(b, a)
}

// Heal restores both directions between two hosts.
func (f *Fabric) Heal(a, b wire.NodeID) {
	f.HealLink(a, b)
	f.HealLink(b, a)
}

// IsolateNode cuts a host off in both directions from every other host,
// present and future (fig13's partition fault uses it).
func (f *Fabric) IsolateNode(id wire.NodeID) {
	f.flt.mu.Lock()
	f.flt.blockIn[id] = true
	f.flt.blockOut[id] = true
	f.flt.mu.Unlock()
	f.countFault("inject_isolate")
}

// IsolateInbound makes a host deaf: it can still send (its heartbeats keep
// flowing) but receives nothing — the asymmetric-partition case.
func (f *Fabric) IsolateInbound(id wire.NodeID) {
	f.flt.mu.Lock()
	f.flt.blockIn[id] = true
	f.flt.mu.Unlock()
	f.countFault("inject_isolate_in")
}

// IsolateOutbound makes a host mute: it receives but nothing it sends
// arrives (the complementary asymmetric case).
func (f *Fabric) IsolateOutbound(id wire.NodeID) {
	f.flt.mu.Lock()
	f.flt.blockOut[id] = true
	f.flt.mu.Unlock()
	f.countFault("inject_isolate_out")
}

// HealNode clears a host's isolation flags.
func (f *Fabric) HealNode(id wire.NodeID) {
	f.flt.mu.Lock()
	delete(f.flt.blockIn, id)
	delete(f.flt.blockOut, id)
	f.flt.mu.Unlock()
	f.countFault("inject_heal")
}

// SetLinkFault applies loss/latency degradation to both directions between
// two hosts; a zero LinkFault clears it.
func (f *Fabric) SetLinkFault(a, b wire.NodeID, lf LinkFault) {
	f.SetLinkFaultOneWay(a, b, lf)
	f.SetLinkFaultOneWay(b, a, lf)
}

// SetLinkFaultOneWay degrades a single direction.
func (f *Fabric) SetLinkFaultOneWay(from, to wire.NodeID, lf LinkFault) {
	f.flt.mu.Lock()
	if lf.zero() {
		delete(f.flt.links, linkKey{from, to})
	} else {
		f.flt.links[linkKey{from, to}] = lf
	}
	f.flt.mu.Unlock()
	f.countFault("inject_link_fault")
}

// SetDefaultLinkFault degrades every link without an explicit override —
// a uniformly lossy or slow network.
func (f *Fabric) SetDefaultLinkFault(lf LinkFault) {
	f.flt.mu.Lock()
	f.flt.def = lf
	f.flt.mu.Unlock()
	f.countFault("inject_default_fault")
}

// Pause stalls a host: its inbound and outbound messages wait for Resume
// (up to CallTimeout, past which they are lost). Pausing a paused host is a
// no-op.
func (f *Fabric) Pause(id wire.NodeID) {
	f.flt.mu.Lock()
	if _, ok := f.flt.paused[id]; !ok {
		f.flt.paused[id] = make(chan struct{})
	}
	f.flt.mu.Unlock()
	f.countFault("inject_pause")
}

// Resume releases a paused host; messages waiting on the stall proceed.
func (f *Fabric) Resume(id wire.NodeID) {
	f.flt.mu.Lock()
	if ch, ok := f.flt.paused[id]; ok {
		close(ch)
		delete(f.flt.paused, id)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_resume")
}

// Paused reports whether a host is currently stalled.
func (f *Fabric) Paused(id wire.NodeID) bool {
	f.flt.mu.Lock()
	defer f.flt.mu.Unlock()
	_, ok := f.flt.paused[id]
	return ok
}

// HealAllFaults clears partitions, isolation, link degradation, and resumes
// every paused host — the end-of-schedule cleanup chaos tests rely on.
func (f *Fabric) HealAllFaults() {
	f.flt.mu.Lock()
	f.flt.blocked = make(map[linkKey]bool)
	f.flt.links = make(map[linkKey]LinkFault)
	f.flt.def = LinkFault{}
	f.flt.blockIn = make(map[wire.NodeID]bool)
	f.flt.blockOut = make(map[wire.NodeID]bool)
	for id, ch := range f.flt.paused {
		close(ch)
		delete(f.flt.paused, id)
	}
	f.flt.mu.Unlock()
	f.countFault("inject_heal_all")
}

// linkVerdict decides the fate of one message crossing from -> to: dropped
// (partition or random loss) and/or delayed. Fault-induced drops are
// counted by cause.
func (f *Fabric) linkVerdict(from, to wire.NodeID) (drop bool, extra time.Duration) {
	f.flt.mu.Lock()
	if f.flt.blocked[linkKey{from, to}] || f.flt.blockOut[from] || f.flt.blockIn[to] {
		f.flt.mu.Unlock()
		f.countFault("drop_partition")
		return true, 0
	}
	lf, ok := f.flt.links[linkKey{from, to}]
	if !ok {
		lf = f.flt.def
	}
	if lf.DropProb > 0 && f.flt.rng.Float64() < lf.DropProb {
		f.flt.mu.Unlock()
		f.countFault("drop_loss")
		return true, 0
	}
	f.flt.mu.Unlock()
	if lf.ExtraLatency > 0 {
		f.countFault("latency_spike")
	}
	return false, lf.ExtraLatency
}

// awaitResume blocks while host is paused: until Resume, the caller's ctx
// deadline, or CallTimeout — whichever comes first. Messages of a stall
// longer than CallTimeout are lost, modeling overflowing queues in front of
// a wedged process.
func (f *Fabric) awaitResume(ctx context.Context, host wire.NodeID) error {
	f.flt.mu.Lock()
	ch, ok := f.flt.paused[host]
	f.flt.mu.Unlock()
	if !ok {
		return nil
	}
	f.countFault("pause_wait")
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-f.clock.After(f.cfg.CallTimeout):
		return transport.ErrTimeout
	}
}

// countFault increments the instrumented fault counter; a no-op on an
// uninstrumented fabric. Fault events are rare relative to data traffic, so
// the registry lookup per event is fine.
func (f *Fabric) countFault(kind string) {
	if o := f.obs.Load(); o != nil {
		o.Reg().Counter("sorrento_net_faults_total", obs.L("kind", kind)).Inc()
	}
}

// sleepExtra applies a latency spike, honoring the caller's deadline.
func (f *Fabric) sleepExtra(ctx context.Context, extra time.Duration) error {
	if extra <= 0 {
		return nil
	}
	return simtime.WaitUntilCtx(ctx, time.Now().Add(f.clock.Wall(extra)))
}
