package simnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

type echoHandler struct {
	mu    sync.Mutex
	casts []any
}

func (h *echoHandler) HandleCall(_ context.Context, from wire.NodeID, req any) (any, error) {
	return req, nil
}

func (h *echoHandler) HandleCast(from wire.NodeID, msg any) {
	h.mu.Lock()
	h.casts = append(h.casts, msg)
	h.mu.Unlock()
}

func (h *echoHandler) castCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.casts)
}

func newFabric(t *testing.T, scale float64) *Fabric {
	t.Helper()
	return New(simtime.NewClock(scale), FastEthernet())
}

func TestCallRoundTrip(t *testing.T) {
	f := newFabric(t, 0.001)
	h := &echoHandler{}
	a, err := f.Join("a", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join("b", h); err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call(context.Background(), "b", wire.SegRead{Offset: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.SegRead); got.Offset != 7 {
		t.Errorf("echoed %+v", got)
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	f := newFabric(t, 0.001)
	if _, err := f.Join("a", &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join("a", &echoHandler{}); err == nil {
		t.Fatal("duplicate join succeeded")
	}
}

func TestCallToDeadNodeTimesOut(t *testing.T) {
	f := newFabric(t, 0.0001)
	a, _ := f.Join("a", &echoHandler{})
	b, _ := f.Join("b", &echoHandler{})
	b.Close()
	_, err := a.Call(context.Background(), "b", wire.SegRead{})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestCallToUnknownNodeTimesOut(t *testing.T) {
	f := newFabric(t, 0.0001)
	a, _ := f.Join("a", &echoHandler{})
	if _, err := a.Call(context.Background(), "ghost", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestCallRespectsContextCancel(t *testing.T) {
	f := New(simtime.NewClock(1), Config{Bandwidth: 12.5e6, CallTimeout: time.Hour})
	a, _ := f.Join("a", &echoHandler{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := a.Call(ctx, "ghost", wire.SegRead{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancel did not interrupt timeout wait")
	}
}

func TestClosedEndpointCannotCall(t *testing.T) {
	f := newFabric(t, 0.001)
	a, _ := f.Join("a", &echoHandler{})
	a.Close()
	if _, err := a.Call(context.Background(), "a", wire.SegRead{}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestBandwidthChargesTransferTime(t *testing.T) {
	// A 1.25 MB payload over a 12.5 MB/s link should take ~0.1s modeled in
	// each direction; the echo response doubles it.
	f := newFabric(t, 0.01)
	a, _ := f.Join("a", &echoHandler{})
	f.Join("b", &echoHandler{})
	payload := wire.SegWrite{Data: make([]byte, 1250*1000)}
	sw := f.Clock().Start()
	if _, err := a.Call(context.Background(), "b", payload); err != nil {
		t.Fatal(err)
	}
	elapsed := sw.Elapsed()
	if elapsed < 150*time.Millisecond {
		t.Errorf("1.25MB echo took %v modeled, want >= 150ms", elapsed)
	}
}

func TestContentionQueuesTransfers(t *testing.T) {
	// Four concurrent 1.25MB sends to the same receiver must queue on the
	// receiver's NIC: total time ≥ 4 × single-transfer time.
	f := newFabric(t, 0.01)
	h := &echoHandler{}
	f.Join("sink", h)
	clients := make([]transport.Endpoint, 4)
	for i := range clients {
		ep, _ := f.Join(wire.NodeID(string(rune('a'+i))), &echoHandler{})
		clients[i] = ep
	}
	sw := f.Clock().Start()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c transport.Endpoint) {
			defer wg.Done()
			c.Call(context.Background(), "sink", wire.SegWrite{Data: make([]byte, 1250*1000)})
		}(c)
	}
	wg.Wait()
	if elapsed := sw.Elapsed(); elapsed < 350*time.Millisecond {
		t.Errorf("4 concurrent 1.25MB sends finished in %v modeled; receiver NIC not serializing", elapsed)
	}
}

func TestMulticastReachesAllButSender(t *testing.T) {
	f := newFabric(t, 0.001)
	sender, _ := f.Join("s", &echoHandler{})
	receivers := make([]*echoHandler, 5)
	for i := range receivers {
		receivers[i] = &echoHandler{}
		f.Join(wire.NodeID(string(rune('a'+i))), receivers[i])
	}
	sender.Multicast(wire.Heartbeat{From: "s", Seq: 1})
	deadline := time.After(2 * time.Second)
	for i, r := range receivers {
		for r.castCount() == 0 {
			select {
			case <-deadline:
				t.Fatalf("receiver %d never got the multicast", i)
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
}

func TestMulticastSkipsClosedReceivers(t *testing.T) {
	f := newFabric(t, 0.001)
	sender, _ := f.Join("s", &echoHandler{})
	dead := &echoHandler{}
	ep, _ := f.Join("dead", dead)
	ep.Close()
	alive := &echoHandler{}
	f.Join("alive", alive)
	sender.Multicast(wire.Heartbeat{From: "s"})
	time.Sleep(50 * time.Millisecond)
	if dead.castCount() != 0 {
		t.Error("closed endpoint received multicast")
	}
	if alive.castCount() != 1 {
		t.Errorf("alive endpoint got %d casts, want 1", alive.castCount())
	}
}

func TestJoinAtSharesNICAndIsLocal(t *testing.T) {
	f := newFabric(t, 0.01)
	provider := &echoHandler{}
	f.Join("p1", provider)
	client, err := f.JoinAt("c1", "p1", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if client.Host() != "p1" {
		t.Errorf("Host = %q, want p1", client.Host())
	}
	// A large local transfer should be effectively free. The payload is
	// allocated outside the timed region: at this compressed scale a few
	// wall-milliseconds of allocator noise would read as hundreds of
	// modeled milliseconds.
	data := make([]byte, 10<<20)
	sw := f.Clock().Start()
	if _, err := client.Call(context.Background(), "p1", wire.SegWrite{Data: data}); err != nil {
		t.Fatal(err)
	}
	if elapsed := sw.Elapsed(); elapsed > 200*time.Millisecond {
		t.Errorf("local 10MB call took %v modeled, want ~0 (a non-local call would cost ~800ms)", elapsed)
	}
}

func TestJoinAtUnknownHost(t *testing.T) {
	f := newFabric(t, 0.001)
	if _, err := f.JoinAt("c1", "ghost", &echoHandler{}); err == nil {
		t.Fatal("JoinAt unknown host succeeded")
	}
}

func TestCoLocatedCallReportsHostAsFrom(t *testing.T) {
	f := newFabric(t, 0.001)
	var gotFrom wire.NodeID
	h := transport.CallFunc(func(_ context.Context, from wire.NodeID, req any) (any, error) {
		gotFrom = from
		return wire.GenericResp{OK: true}, nil
	})
	f.Join("p1", h)
	f.Join("p2", h)
	client, _ := f.JoinAt("c1", "p1", &echoHandler{})
	if _, err := client.Call(context.Background(), "p2", wire.SegRead{}); err != nil {
		t.Fatal(err)
	}
	if gotFrom != "p1" {
		t.Errorf("handler saw from=%q, want host p1", gotFrom)
	}
}

func TestNICResources(t *testing.T) {
	f := newFabric(t, 0.001)
	f.Join("a", &echoHandler{})
	if got := f.NICResources("a"); len(got) != 2 {
		t.Errorf("NICResources = %d resources, want 2", len(got))
	}
	if got := f.NICResources("ghost"); got != nil {
		t.Errorf("NICResources(ghost) = %v", got)
	}
}

func TestRemoveFreesID(t *testing.T) {
	f := newFabric(t, 0.001)
	f.Join("a", &echoHandler{})
	f.Remove("a")
	if _, err := f.Join("a", &echoHandler{}); err != nil {
		t.Fatalf("rejoin after Remove failed: %v", err)
	}
}

func TestSmallMessagesBypassBulkBacklog(t *testing.T) {
	// A control RPC issued while a huge transfer occupies the NIC must
	// complete in roughly its own transmission time (the priority lane),
	// not after the bulk transfer drains.
	f := newFabric(t, 0.01)
	f.Join("sink", &echoHandler{})
	bulk, _ := f.Join("bulk", &echoHandler{})
	ctl, _ := f.Join("ctl", &echoHandler{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		// 12.5 MB ≈ 1 modeled second on the receiver's NIC.
		bulk.Call(context.Background(), "sink", wire.SegWrite{Data: make([]byte, 12500*1000)})
	}()
	time.Sleep(2 * time.Millisecond) // let the bulk transfer book the link

	sw := f.Clock().Start()
	if _, err := ctl.Call(context.Background(), "sink", wire.SegRead{}); err != nil {
		t.Fatal(err)
	}
	if got := sw.Elapsed(); got > 200*time.Millisecond {
		t.Errorf("control RPC waited %v modeled behind a bulk transfer", got)
	}
	<-done
}

// ackHandler replies with a tiny acknowledgment, so only the request
// payload consumes modeled bandwidth.
type ackHandler struct{}

func (ackHandler) HandleCall(_ context.Context, _ wire.NodeID, _ any) (any, error) {
	return wire.GenericResp{OK: true}, nil
}
func (ackHandler) HandleCast(wire.NodeID, any) {}

func TestBulkTransfersShareFairly(t *testing.T) {
	// Two equal bulk transfers to one sink should each take ~2× the solo
	// time (round-robin quanta), not one finishing at 1× and the other 2×.
	f := newFabric(t, 0.01)
	f.Join("sink", ackHandler{})
	a, _ := f.Join("a", &echoHandler{})
	b, _ := f.Join("b", &echoHandler{})

	payload := func() wire.SegWrite { return wire.SegWrite{Data: make([]byte, 6250*1000)} } // 0.5s solo
	times := make(chan time.Duration, 2)
	var wg sync.WaitGroup
	for _, ep := range []transport.Endpoint{a, b} {
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			sw := f.Clock().Start()
			ep.Call(context.Background(), "sink", payload())
			times <- sw.Elapsed()
		}(ep)
	}
	wg.Wait()
	close(times)
	var all []time.Duration
	for d := range times {
		all = append(all, d)
	}
	// Both finish near 1s (shared), within a generous band.
	for _, d := range all {
		if d < 700*time.Millisecond || d > 1800*time.Millisecond {
			t.Errorf("transfer took %v, want ~1s under fair sharing (times=%v)", d, all)
		}
	}

}
