// Package simnet implements transport.Network over in-process message
// passing with a calibrated cost model. Every endpoint gets a full-duplex
// NIC modeled as two FIFO simtime.Resources (send and receive directions);
// transferring a message charges size/bandwidth on both ends plus a
// propagation latency. Saturating a node's link therefore queues subsequent
// transfers exactly as the paper's Fast Ethernet links do.
//
// Co-located endpoints (JoinAt) share the host's NIC and talk to their host
// for free, which models applications running directly on storage nodes
// (the crawler and PSM experiments).
package simnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config describes the modeled network hardware.
type Config struct {
	// Bandwidth is each NIC direction's throughput in bytes/second.
	// Fast Ethernet ≈ 12.5 MB/s.
	Bandwidth float64
	// Latency is the one-way propagation + protocol-stack delay per message.
	Latency time.Duration
	// CallTimeout is how long a call to a dead node blocks before failing.
	CallTimeout time.Duration
	// FaultSeed seeds the fault layer's drop decisions (0 = 1), so a
	// pinned seed replays the same loss pattern. See faults.go.
	FaultSeed int64
}

// FastEthernet returns the paper's network: 100 Mb/s links, ~100 µs one-way
// latency, 3 s request timeout.
func FastEthernet() Config {
	return Config{
		Bandwidth:   12.5e6,
		Latency:     100 * time.Microsecond,
		CallTimeout: 3 * time.Second,
	}
}

// Fabric is the simulated network. It implements transport.Network.
//
// Node state is per-link by construction: lookups on the data path go
// through a lock-free sync.Map, each node pair's transfers meet only at
// their own NICs' simtime.Resources, and the fault layer answers "no fault
// injected" with one atomic load (see faults.go). Nothing on the hot path
// takes a fabric-wide lock, so concurrent transfers between disjoint node
// pairs scale with cores instead of serializing — the property
// BenchmarkFabricParallelPairs pins.
type Fabric struct {
	clock *simtime.Clock
	cfg   Config
	obs   atomic.Pointer[obs.Obs]
	flt   *faults

	nodes  sync.Map // wire.NodeID -> *endpoint
	nodeN  atomic.Int64
	joinMu sync.Mutex // serializes Join/Remove/Instrument (cold path)
}

// New creates an empty fabric on the given clock.
func New(clock *simtime.Clock, cfg Config) *Fabric {
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = FastEthernet().Bandwidth
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = FastEthernet().CallTimeout
	}
	return &Fabric{clock: clock, cfg: cfg, flt: newFaults(cfg.FaultSeed)}
}

// Clock returns the fabric's clock.
func (f *Fabric) Clock() *simtime.Clock { return f.clock }

// Instrument enables observability: every endpoint records per-message-type
// RPC latency/bytes (client side — handlers run inline, so the round trip
// covers service time), NICs export utilization/queue gauges, and calls
// arriving with a span context in ctx get a child RPC span. Endpoints joined
// before Instrument are wired up retroactively; call it before traffic
// starts (cluster.New does) so recorders are never set mid-call.
func (f *Fabric) Instrument(o *obs.Obs) {
	if o == nil {
		return
	}
	f.obs.Store(o)
	f.joinMu.Lock()
	defer f.joinMu.Unlock()
	f.nodes.Range(func(_, v any) bool {
		f.instrumentLocked(v.(*endpoint))
		return true
	})
}

func (f *Fabric) instrumentLocked(ep *endpoint) {
	o := f.obs.Load()
	if o == nil {
		return
	}
	ep.rec.Store(obs.NewRPCRecorder(o.Reg(), "client", string(ep.id)))
	if ep.host == ep.id { // owns its NIC; co-located endpoints share it
		obs.RegisterResource(o.Reg(), f.clock, ep.nic.send)
		obs.RegisterResource(o.Reg(), f.clock, ep.nic.recv)
	}
}

type nic struct {
	send *simtime.Resource
	recv *simtime.Resource
}

type endpoint struct {
	fabric  *Fabric
	id      wire.NodeID
	host    wire.NodeID
	nic     *nic // shared among co-located endpoints
	handler transport.Handler
	rec     atomic.Pointer[obs.RPCRecorder]

	mu     sync.Mutex
	closed bool
}

var _ transport.Endpoint = (*endpoint)(nil)

// Join implements transport.Network.
func (f *Fabric) Join(id wire.NodeID, h transport.Handler) (transport.Endpoint, error) {
	return f.join(id, id, h, nil)
}

// JoinAt implements transport.Network: the endpoint shares host's NIC.
func (f *Fabric) JoinAt(id, host wire.NodeID, h transport.Handler) (transport.Endpoint, error) {
	he := f.lookup(host)
	if he == nil {
		return nil, fmt.Errorf("simnet: JoinAt: host %q not joined", host)
	}
	return f.join(id, host, h, he.nic)
}

func (f *Fabric) join(id, host wire.NodeID, h transport.Handler, sharedNIC *nic) (transport.Endpoint, error) {
	f.joinMu.Lock()
	defer f.joinMu.Unlock()
	n := sharedNIC
	if n == nil {
		n = &nic{
			send: simtime.NewResource(f.clock, string(id)+"/nic-send"),
			recv: simtime.NewResource(f.clock, string(id)+"/nic-recv"),
		}
	}
	ep := &endpoint{fabric: f, id: id, host: host, nic: n, handler: h}
	if _, exists := f.nodes.LoadOrStore(id, ep); exists {
		return nil, fmt.Errorf("simnet: node %q already joined", id)
	}
	f.nodeN.Add(1)
	f.instrumentLocked(ep)
	return ep, nil
}

// NICResources returns the send/receive resources of a node's NIC so load
// samplers can include network I/O wait. It returns nil for unknown nodes.
func (f *Fabric) NICResources(id wire.NodeID) []*simtime.Resource {
	ep := f.lookup(id)
	if ep == nil {
		return nil
	}
	return []*simtime.Resource{ep.nic.send, ep.nic.recv}
}

func (f *Fabric) lookup(id wire.NodeID) *endpoint {
	if v, ok := f.nodes.Load(id); ok {
		return v.(*endpoint)
	}
	return nil
}

// transferTime is the modeled NIC occupancy for a message of size bytes.
func (f *Fabric) transferTime(size int) time.Duration {
	return time.Duration(float64(size) / f.cfg.Bandwidth * float64(time.Second))
}

func (e *endpoint) ID() wire.NodeID   { return e.id }
func (e *endpoint) Host() wire.NodeID { return e.host }

func (e *endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Call implements transport.Endpoint. The request charges the sender's send
// direction and the receiver's receive direction plus latency; the response
// does the reverse. Calls between co-located endpoints are free.
//
// On an instrumented fabric every call lands in the caller's per-type
// latency/bytes series; a span is opened only when ctx already carries a
// trace (the domain layer decides what is worth tracing), so an idle
// registry costs one atomic load per call.
func (e *endpoint) Call(ctx context.Context, to wire.NodeID, req any) (any, error) {
	rec := e.rec.Load()
	if rec == nil {
		return e.call(ctx, to, req)
	}
	var sp *obs.Span
	if _, traced := obs.FromContext(ctx); traced {
		ctx, sp = e.fabric.obs.Load().Tr().Start(ctx, string(e.id), "rpc:"+obs.MsgTypeName(req))
	}
	start := e.fabric.clock.Now()
	resp, err := e.call(ctx, to, req)
	sp.SetError(err)
	sp.End()
	rec.Observe(req, wire.SizeOf(req), wire.SizeOf(resp), e.fabric.clock.Now()-start, err)
	return resp, err
}

func (e *endpoint) call(ctx context.Context, to wire.NodeID, req any) (any, error) {
	if e.isClosed() {
		return nil, transport.ErrClosed
	}
	f := e.fabric
	// A paused (stalled) sender holds its outbound traffic until Resume.
	if err := f.awaitResume(ctx, e.host); err != nil {
		return nil, err
	}
	dst := f.lookup(to)
	local := dst != nil && dst.nic == e.nic
	if !local {
		dstHost := to
		if dst != nil {
			dstHost = dst.host
		}
		// Request-direction faults: a partitioned or lossy link loses the
		// message, which the caller observes exactly as a dead node.
		drop, extra := f.linkVerdict(e.host, dstHost)
		if drop {
			return e.lostRequest(ctx)
		}
		if err := e.transfer(ctx, dst, req); err != nil {
			return nil, err
		}
		if err := f.sleepExtra(ctx, extra); err != nil {
			return nil, err
		}
	}
	if dst == nil || dst.isClosed() {
		// The destination is down: the request times out (paper §4.3:
		// "requests issued to the failed node are all timed out").
		return e.lostRequest(ctx)
	}
	// A paused destination sits on the request until it resumes; past
	// CallTimeout the request is lost in its overflowing queues.
	if err := f.awaitResume(ctx, dst.host); err != nil {
		return nil, err
	}
	if dst.handler == nil {
		return nil, transport.ErrNoHandler
	}
	// Mirror the TCP transport's server-side span so a trace shows where the
	// handler ran, not just who called it (the ctx already carries the
	// caller's span, so this parents correctly for free).
	sctx := ctx
	var ssp *obs.Span
	if o := f.obs.Load(); o != nil {
		if _, traced := obs.FromContext(ctx); traced {
			sctx, ssp = o.Tr().Start(ctx, string(dst.id), "serve:"+obs.MsgTypeName(req))
		}
	}
	resp, err := dst.handler.HandleCall(sctx, e.host, req)
	ssp.SetError(err)
	ssp.End()
	if err != nil {
		return nil, err
	}
	// The destination may have died while serving; its response is lost.
	if dst.isClosed() {
		return e.lostRequest(ctx)
	}
	if !local {
		// Response-direction faults, checked independently so asymmetric
		// partitions that opened mid-call still lose the answer.
		drop, extra := f.linkVerdict(dst.host, e.host)
		if drop {
			return e.lostRequest(ctx)
		}
		if err := dst.transfer(ctx, e, resp); err != nil {
			return nil, err
		}
		if err := f.sleepExtra(ctx, extra); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// lostRequest models a message that will never be answered: the caller
// blocks until its own deadline or the transport's CallTimeout. The wait
// rides the shared timer wheel rather than a runtime timer — with a few
// dead nodes in a large cluster, every retry against a grave would
// otherwise allocate a timer that lingers for the full timeout.
func (e *endpoint) lostRequest(ctx context.Context) (any, error) {
	deadline := time.Now().Add(e.fabric.clock.Wall(e.fabric.cfg.CallTimeout))
	if err := simtime.WaitUntilCtx(ctx, deadline); err != nil {
		return nil, err
	}
	return nil, transport.ErrTimeout
}

// transferQuantum bounds one NIC reservation. Real links multiplex flows
// per packet, so a small control message never waits behind a whole bulk
// transfer; reserving link time in quanta lets concurrent messages
// interleave, approximating TCP's fair sharing while keeping the aggregate
// occupancy exact. 5 ms ≈ a 64 KB TCP window at Fast Ethernet speed.
const transferQuantum = 5 * time.Millisecond

// quantum returns the effective interleaving quantum: at highly compressed
// time scales it grows so that one quantum is at least ~1 ms of wall time,
// keeping per-quantum scheduling overhead negligible relative to the
// modeled cost. Control messages bypass the bulk queue entirely (priority
// lane), so the quantum only governs fairness among bulk flows.
func (f *Fabric) quantum() time.Duration {
	q := f.clock.Modeled(time.Millisecond)
	if q < transferQuantum {
		q = transferQuantum
	}
	return q
}

// smallMsgTime is the modeled transfer time below which a message travels
// in the NIC's priority lane, as small packets interleave with bulk flows
// on real links. 10 ms ≈ 128 KB at Fast Ethernet speed. The threshold is in
// modeled time (not bytes) so it stays meaningful under data scaling.
const smallMsgTime = 10 * time.Millisecond

// transfer moves msg from e to dst: the sender's send direction and the
// receiver's receive direction are both occupied for the transfer time, and
// the transfer is pipelined (the caller blocks on the later of the two
// reservations per quantum, not their sum). Each quantum is reserved only
// after the previous one completes, so concurrent flows round-robin the
// links: a huge replica transfer delays a small control message by at most
// (flows × quantum), as TCP's per-packet sharing would, instead of
// head-of-line-blocking it for the whole transfer.
//
// Queue waits honor ctx: a caller whose deadline passes while queued behind
// a saturated NIC unblocks immediately with ctx.Err(). Quanta already
// reserved stand — the bytes were (partially) transmitted — so aggregate
// link occupancy stays conserved.
func (e *endpoint) transfer(ctx context.Context, dst *endpoint, msg any) error {
	total := e.fabric.transferTime(wire.SizeOf(msg))
	if total <= smallMsgTime {
		end := e.nic.send.ReservePriority(total)
		if dst != nil {
			if endRecv := dst.nic.recv.ReservePriority(total); endRecv.After(end) {
				end = endRecv
			}
		}
		if err := simtime.WaitUntilCtx(ctx, end); err != nil {
			return err
		}
		e.fabric.clock.Sleep(e.fabric.cfg.Latency)
		return nil
	}
	quantum := e.fabric.quantum()
	for total > 0 {
		q := total
		if q > quantum {
			q = quantum
		}
		total -= q
		end := e.nic.send.Reserve(q)
		if dst != nil {
			if endRecv := dst.nic.recv.Reserve(q); endRecv.After(end) {
				end = endRecv
			}
		}
		if err := simtime.WaitUntilCtx(ctx, end); err != nil {
			return err
		}
	}
	e.fabric.clock.Sleep(e.fabric.cfg.Latency)
	return nil
}

// Multicast implements transport.Endpoint. One transmission charges the
// sender once (Ethernet multicast is a single frame) and each live receiver
// once; delivery is asynchronous.
func (e *endpoint) Multicast(msg any) {
	if e.isClosed() {
		return
	}
	// A paused sender's frames wait for Resume; a stall past CallTimeout
	// loses them entirely — which is how a wedged provider misses its
	// heartbeat deadlines and gets evicted.
	if err := e.fabric.awaitResume(context.Background(), e.host); err != nil {
		return
	}
	size := wire.SizeOf(msg)
	if rec := e.rec.Load(); rec != nil {
		rec.ObserveCast(msg, size)
	}
	// Multicast frames are small control traffic (heartbeats, location
	// probes): they ride the priority lane so they are never starved by
	// bulk transfers — losing heartbeats under load would fake failures.
	f := e.fabric
	simtime.WaitUntil(e.nic.send.ReservePriority(f.transferTime(size)))
	targets := make([]*endpoint, 0, int(f.nodeN.Load()))
	f.nodes.Range(func(_, v any) bool {
		if ep := v.(*endpoint); ep.id != e.id {
			targets = append(targets, ep)
		}
		return true
	})
	// Healthy-fabric fast path: with no faults injected, delivery needs no
	// per-receiver drop/pause checks, so receivers are served in chunks by a
	// few goroutines instead of one goroutine per receiver — at 512 providers
	// each heartbeat would otherwise spawn 511 goroutines. Receivers within a
	// chunk are delivered in sequence; their per-receiver reservations are
	// tiny (a control frame), so the added skew is microseconds — real
	// multicast delivery isn't instantaneous either.
	if f.flt.quiet() {
		const chunk = 64
		for len(targets) > 0 {
			part := targets
			if len(part) > chunk {
				part = part[:chunk]
			}
			targets = targets[len(part):]
			go func(part []*endpoint) {
				f.clock.Sleep(f.cfg.Latency)
				for _, ep := range part {
					if ep.isClosed() || ep.handler == nil {
						continue
					}
					if ep.nic != e.nic {
						simtime.WaitUntil(ep.nic.recv.ReservePriority(f.transferTime(size)))
					}
					ep.handler.HandleCast(e.host, msg)
				}
			}(part)
		}
		return
	}
	for _, ep := range targets {
		go func(ep *endpoint) {
			// Per-receiver fault check: partitions and loss apply to each
			// delivery of the frame independently.
			if ep.nic != e.nic {
				drop, extra := f.linkVerdict(e.host, ep.host)
				if drop {
					return
				}
				f.clock.Sleep(f.cfg.Latency + extra)
			} else {
				f.clock.Sleep(f.cfg.Latency)
			}
			if ep.isClosed() || ep.handler == nil {
				return
			}
			if ep.nic != e.nic {
				simtime.WaitUntil(ep.nic.recv.ReservePriority(f.transferTime(size)))
			}
			// A paused receiver processes queued frames only after Resume.
			if err := f.awaitResume(context.Background(), ep.host); err != nil {
				return
			}
			ep.handler.HandleCast(e.host, msg)
		}(ep)
	}
}

// Close implements transport.Endpoint. A closed endpoint models a crashed
// node: it stops answering but stays registered so calls to it time out.
func (e *endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Remove detaches a node entirely (used when a node's ID should become
// reusable, e.g. re-adding a repaired machine).
func (f *Fabric) Remove(id wire.NodeID) {
	f.joinMu.Lock()
	defer f.joinMu.Unlock()
	if v, ok := f.nodes.Load(id); ok {
		ep := v.(*endpoint)
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
		f.nodes.Delete(id)
		f.nodeN.Add(-1)
	}
}
