package simnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// faultFabric builds a fast fabric with a short CallTimeout so lost
// messages fail quickly.
func faultFabric(t *testing.T) *Fabric {
	t.Helper()
	cfg := FastEthernet()
	cfg.CallTimeout = 200 * time.Millisecond
	return New(simtime.NewClock(0.01), cfg)
}

func TestPartitionAndHeal(t *testing.T) {
	f := faultFabric(t)
	a, err := f.Join("a", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Join("b", &echoHandler{})
	if err != nil {
		t.Fatal(err)
	}

	f.Partition("a", "b")
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("partitioned call err = %v, want timeout", err)
	}
	if _, err := b.Call(context.Background(), "a", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("reverse partitioned call err = %v, want timeout", err)
	}

	f.Heal("a", "b")
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); err != nil {
		t.Fatalf("healed call err = %v", err)
	}
}

func TestAsymmetricBlockLosesOnlyOneDirection(t *testing.T) {
	f := faultFabric(t)
	a, _ := f.Join("a", &echoHandler{})
	b, _ := f.Join("b", &echoHandler{})

	// a -> b blocked; b -> a still works.
	f.BlockLink("a", "b")
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("blocked direction err = %v, want timeout", err)
	}
	// b's request reaches a, but a's *response* crosses a->b and is lost.
	if _, err := b.Call(context.Background(), "a", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("response over blocked link err = %v, want timeout", err)
	}
	f.HealLink("a", "b")
	if _, err := b.Call(context.Background(), "a", wire.SegRead{}); err != nil {
		t.Fatalf("healed err = %v", err)
	}
}

func TestIsolateInboundKeepsMulticastFlowing(t *testing.T) {
	f := faultFabric(t)
	deaf := &echoHandler{}
	other := &echoHandler{}
	a, _ := f.Join("a", deaf)
	b, _ := f.Join("b", other)
	_ = b

	f.IsolateInbound("a")
	// a can still send: its multicast reaches b.
	a.Multicast(wire.Heartbeat{From: "a"})
	deadline := time.Now().Add(2 * time.Second)
	for other.castCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deaf node's outbound multicast never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// ...but nothing reaches a.
	b.Multicast(wire.Heartbeat{From: "b"})
	time.Sleep(50 * time.Millisecond)
	if n := deaf.castCount(); n != 0 {
		t.Fatalf("deaf node received %d casts, want 0", n)
	}
	if _, err := b.Call(context.Background(), "a", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("call to deaf node err = %v, want timeout", err)
	}
}

func TestDropProbabilityIsSeededAndHealable(t *testing.T) {
	f := faultFabric(t)
	a, _ := f.Join("a", &echoHandler{})
	if _, err := f.Join("b", &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	f.SetFaultSeed(42)
	f.SetLinkFault("a", "b", LinkFault{DropProb: 1.0})
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("lossy call err = %v, want timeout", err)
	}
	f.SetLinkFault("a", "b", LinkFault{}) // zero value clears
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); err != nil {
		t.Fatalf("after clearing err = %v", err)
	}
}

func TestLatencySpikeDelaysCall(t *testing.T) {
	cfg := FastEthernet()
	cfg.CallTimeout = 10 * time.Second
	clock := simtime.NewClock(0.01)
	f := New(clock, cfg)
	a, _ := f.Join("a", &echoHandler{})
	if _, err := f.Join("b", &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	base := clock.Now()
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); err != nil {
		t.Fatal(err)
	}
	fastRTT := clock.Now() - base

	f.SetLinkFault("a", "b", LinkFault{ExtraLatency: time.Second})
	base = clock.Now()
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); err != nil {
		t.Fatal(err)
	}
	slowRTT := clock.Now() - base
	// Request + response each gain ~1 s of modeled delay.
	if slowRTT < fastRTT+1500*time.Millisecond {
		t.Fatalf("spiked RTT %v not ≫ base RTT %v", slowRTT, fastRTT)
	}
}

func TestPauseResume(t *testing.T) {
	cfg := FastEthernet()
	cfg.CallTimeout = 30 * time.Second
	clock := simtime.NewClock(0.01)
	f := New(clock, cfg)
	a, _ := f.Join("a", &echoHandler{})
	if _, err := f.Join("b", &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	f.Pause("b")
	if !f.Paused("b") {
		t.Fatal("b not paused")
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(context.Background(), "b", wire.SegRead{})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("call to paused node returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	f.Resume("b")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call after resume err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed after resume")
	}
}

func TestPausePastCallTimeoutLosesRequest(t *testing.T) {
	f := faultFabric(t) // CallTimeout 200 ms modeled = 2 ms wall
	a, _ := f.Join("a", &echoHandler{})
	if _, err := f.Join("b", &echoHandler{}); err != nil {
		t.Fatal(err)
	}
	f.Pause("b")
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("stalled call err = %v, want timeout", err)
	}
	f.HealAllFaults()
	if f.Paused("b") {
		t.Fatal("HealAllFaults left b paused")
	}
	if _, err := a.Call(context.Background(), "b", wire.SegRead{}); err != nil {
		t.Fatalf("after heal err = %v", err)
	}
}

func TestCtxDeadlineBoundsQueueWait(t *testing.T) {
	// A huge message from a saturated sender must not pin a caller whose
	// ctx deadline has passed: the wait is bounded by ctx, not by the
	// transfer's modeled duration.
	cfg := FastEthernet()
	cfg.Bandwidth = 1e4 // 10 KB/s: a 1 MB payload takes ~100 s modeled
	cfg.CallTimeout = 10 * time.Minute
	clock := simtime.NewClock(1) // no compression: modeled = wall
	f := New(clock, cfg)
	a, _ := f.Join("a", &echoHandler{})
	if _, err := f.Join("b", &echoHandler{}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Call(ctx, "b", wire.SegWrite{Data: make([]byte, 1<<20)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("ctx-bounded wait took %v", took)
	}
}
