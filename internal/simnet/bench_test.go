package simnet

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// BenchmarkFabricParallelPairs drives concurrent small calls between
// disjoint node pairs. With per-link fabric state (lock-free lookups,
// atomic fault fast path, per-NIC resources) ns/op should hold roughly
// flat as pairs grow; a fabric-wide lock would make it climb. The clock
// scale is microscopic so modeled time costs no wall time and the
// measurement isolates harness CPU overhead per call.
func BenchmarkFabricParallelPairs(b *testing.B) {
	for _, pairs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("pairs=%d", pairs), func(b *testing.B) {
			f := New(simtime.NewClock(1e-7), FastEthernet())
			callers := make([]transport.Endpoint, pairs)
			for i := 0; i < pairs; i++ {
				a, err := f.Join(wire.NodeID(fmt.Sprintf("a%d", i)), &echoHandler{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Join(wire.NodeID(fmt.Sprintf("b%d", i)), &echoHandler{}); err != nil {
					b.Fatal(err)
				}
				callers[i] = a
			}
			ctx := context.Background()
			per := b.N/pairs + 1
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < pairs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					to := wire.NodeID(fmt.Sprintf("b%d", i))
					req := wire.SegRead{Offset: 1, Length: 4096}
					for j := 0; j < per; j++ {
						if _, err := callers[i].Call(ctx, to, req); err != nil {
							b.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
		})
	}
}
