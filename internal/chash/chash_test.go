package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%02d", i)
	}
	return out
}

func keys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	return out
}

func TestLookupEmptyRing(t *testing.T) {
	r := New(nil)
	if got := r.Lookup([]byte("x")); got != "" {
		t.Errorf("Lookup on empty ring = %q", got)
	}
	if got := r.LookupN([]byte("x"), 3); got != nil {
		t.Errorf("LookupN on empty ring = %v", got)
	}
}

func TestLookupDeterministic(t *testing.T) {
	r := New(nodes(8))
	for _, k := range keys(100) {
		a, b := r.Lookup(k), r.Lookup(k)
		if a != b {
			t.Fatalf("Lookup(%q) nondeterministic: %q vs %q", k, a, b)
		}
	}
}

func TestLookupIndependentOfInsertionOrder(t *testing.T) {
	fwd := nodes(8)
	rev := make([]string, len(fwd))
	for i, n := range fwd {
		rev[len(fwd)-1-i] = n
	}
	a, b := New(fwd), New(rev)
	for _, k := range keys(200) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("order-dependent mapping for %q", k)
		}
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	r := New(nodes(8))
	counts := make(map[string]int)
	const total = 8000
	for i := 0; i < total; i++ {
		counts[r.Lookup([]byte(fmt.Sprintf("seg-%d", i)))]++
	}
	want := total / 8
	for n, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("node %s got %d keys, want within [%d,%d]", n, c, want/3, want*3)
		}
	}
	if len(counts) != 8 {
		t.Errorf("only %d nodes received keys", len(counts))
	}
}

func TestMinimalDisruptionOnNodeRemoval(t *testing.T) {
	// Consistent hashing's defining property: removing one node only remaps
	// the keys that lived on it.
	all := nodes(10)
	before := New(all)
	after := New(all[:9]) // drop node-09
	moved := 0
	const total = 5000
	for i := 0; i < total; i++ {
		k := []byte(fmt.Sprintf("seg-%d", i))
		b, a := before.Lookup(k), after.Lookup(k)
		if b != a {
			moved++
			if b != "node-09" {
				t.Fatalf("key %q moved from surviving node %q to %q", k, b, a)
			}
		}
	}
	// Expect ~10% of keys to move; tolerate wide slack.
	if moved < total/30 || moved > total/3 {
		t.Errorf("moved %d/%d keys on single-node removal", moved, total)
	}
}

func TestMinimalDisruptionOnNodeAddition(t *testing.T) {
	before := New(nodes(9))
	after := New(nodes(10))
	const total = 5000
	for i := 0; i < total; i++ {
		k := []byte(fmt.Sprintf("seg-%d", i))
		b, a := before.Lookup(k), after.Lookup(k)
		if b != a && a != "node-09" {
			t.Fatalf("key %q moved to %q (not the new node) on addition", k, a)
		}
	}
}

func TestLookupNDistinct(t *testing.T) {
	r := New(nodes(6))
	f := func(key []byte) bool {
		got := r.LookupN(key, 3)
		if len(got) != 3 {
			return false
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				return false
			}
			seen[n] = true
		}
		return got[0] == r.Lookup(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupNClamped(t *testing.T) {
	r := New(nodes(3))
	if got := r.LookupN([]byte("k"), 10); len(got) != 3 {
		t.Errorf("LookupN(10) on 3 nodes returned %d", len(got))
	}
	if got := r.LookupN([]byte("k"), 0); got != nil {
		t.Errorf("LookupN(0) = %v", got)
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := New([]string{"only"})
	for _, k := range keys(20) {
		if got := r.Lookup(k); got != "only" {
			t.Fatalf("Lookup = %q", got)
		}
	}
}

func TestNodesAccessors(t *testing.T) {
	r := New([]string{"b", "a", "c"})
	got := r.Nodes()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Nodes() = %v, want sorted [a b c]", got)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func BenchmarkLookup(b *testing.B) {
	r := New(nodes(38))
	ks := keys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Lookup(ks[i%len(ks)])
	}
}
