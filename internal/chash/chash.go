// Package chash implements the consistent hashing ring Sorrento uses to map
// SegIDs to home hosts (paper §3.4.1). Unlike Chord, every Sorrento client
// has the complete membership view, so lookups are a local ring walk rather
// than log N network hops. Virtual nodes smooth the key distribution.
package chash

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per physical node. 64 keeps the
// per-node key share within a few percent of uniform for small clusters.
const DefaultVnodes = 64

type ringEntry struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Build a new Ring whenever membership changes; construction is cheap
// relative to membership-change frequency and immutability makes concurrent
// lookups free of locks.
type Ring struct {
	entries []ringEntry
	nodes   []string
	vnodes  int
}

// New builds a ring over nodes with DefaultVnodes virtual nodes each.
func New(nodes []string) *Ring { return NewWithVnodes(nodes, DefaultVnodes) }

// NewWithVnodes builds a ring with an explicit virtual-node count.
func NewWithVnodes(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{
		entries: make([]ringEntry, 0, len(nodes)*vnodes),
		nodes:   append([]string(nil), nodes...),
		vnodes:  vnodes,
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for _, h := range vnodeHashes(n, vnodes) {
			r.entries = append(r.entries, ringEntry{hash: h, node: n})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool {
		a, b := r.entries[i], r.entries[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node
	})
	return r
}

// Nodes returns the sorted node set the ring was built over.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the home host for key, or "" when the ring is empty.
func (r *Ring) Lookup(key []byte) string {
	if len(r.entries) == 0 {
		return ""
	}
	return r.entries[r.search(keyHash(key))].node
}

// LookupN returns up to n distinct nodes encountered walking clockwise from
// key's position: the home host first, then natural fallbacks. It is used to
// pick distinct replica sites deterministically in tests.
func (r *Ring) LookupN(key []byte, n int) []string {
	if len(r.entries) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	i := r.search(keyHash(key))
	for len(out) < n {
		e := r.entries[i%len(r.entries)]
		if !seen[e.node] {
			seen[e.node] = true
			out = append(out, e.node)
		}
		i++
	}
	return out
}

// search returns the index of the first entry with hash >= h, wrapping.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	if i == len(r.entries) {
		return 0
	}
	return i
}

func keyHash(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return mix64(h.Sum64())
}

func vnodeHash(node string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	h.Write(b[:])
	return mix64(h.Sum64())
}

// vnodeCache memoizes per-node vnode hash runs. Ring construction happens on
// every membership change on every node — at cluster scale that's the same
// few hundred node names hashed over and over; the hashes are deterministic,
// so computing each node's run once makes a rebuild append+sort only.
var vnodeCache sync.Map // node string -> []uint64 (len ≥ vnodes used so far)

func vnodeHashes(node string, vnodes int) []uint64 {
	if c, ok := vnodeCache.Load(node); ok {
		if hs := c.([]uint64); len(hs) >= vnodes {
			return hs[:vnodes]
		}
	}
	hs := make([]uint64, vnodes)
	for v := range hs {
		hs[v] = vnodeHash(node, v)
	}
	vnodeCache.Store(node, hs)
	return hs
}

// mix64 is the murmur3 finalizer. FNV alone has poor high-bit avalanche on
// short inputs, which clusters a node's virtual nodes into contiguous ring
// arcs; the finalizer restores a uniform spread.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
