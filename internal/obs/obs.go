package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension. Values land verbatim in label values, so
// keep them low-cardinality (node IDs, message types — not segment IDs).
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds a process's metrics. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is valid and turns every
// method into a cheap no-op returning nil handles (whose methods are also
// no-ops) — that nil check is the obs on/off switch.
type Registry struct {
	metrics sync.Map // series key (name{k="v",...}) -> metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// metric is what the encoder iterates over.
type metric interface {
	name() string
	labels() []Label
	kind() string // "counter" | "gauge" | "histogram"
}

type meta struct {
	nm  string
	lbl []Label
}

func (m *meta) name() string    { return m.nm }
func (m *meta) labels() []Label { return m.lbl }

// seriesKey builds the canonical identity of a series: the name plus its
// labels sorted by key. Called only on the registration (slow) path.
func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	lbl := append([]Label(nil), labels...)
	sort.Slice(lbl, func(i, j int) bool { return lbl[i].Key < lbl[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range lbl {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), lbl
}

// Counter is a monotonically increasing count. Updates are one atomic add.
type Counter struct {
	meta
	v atomic.Int64
}

// Add increments the counter. No-op on a nil handle or negative delta.
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) kind() string { return "counter" }

// Gauge is a settable instantaneous value, stored as atomic float64 bits.
type Gauge struct {
	meta
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) kind() string { return "gauge" }

// funcGauge evaluates a callback at snapshot time — used to export values
// the owning subsystem already tracks (resource busy time, disk usage)
// without a write on every change.
type funcGauge struct {
	meta
	fn func() float64
}

func (g *funcGauge) kind() string { return "gauge" }

// Histogram is a fixed-bucket distribution recorder. Observations are two
// atomic adds plus a CAS-loop float add for the sum; bucket bounds are
// immutable after construction. Percentiles are interpolated from the
// cumulative bucket counts at snapshot time.
type Histogram struct {
	meta
	bounds []float64      // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe folds one sample into the distribution. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search beats linear scan only past ~30 buckets; our ladders
	// are ~20 wide and latencies cluster low, so scan from the bottom.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile interpolates the q-th quantile (q in [0,1]) from the bucket
// cumulative counts. Within a bucket it interpolates linearly from the
// previous bound; the overflow bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			if i < len(h.bounds) {
				lower = h.bounds[i]
			}
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // overflow bucket: no upper bound
				return lower
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

func (h *Histogram) kind() string { return "histogram" }

// LatencyBuckets is the default ladder for modeled-seconds histograms:
// 100µs to ~100s, roughly ×2.5 per step.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// SizeBuckets is the default ladder for byte-size histograms: 256B to 1GB,
// ×4 per step.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Counter returns (creating on first use) the counter for name+labels.
// Returns nil on a nil registry. Safe for concurrent use; after the first
// call for a series this is one sync.Map load.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key, lbl := seriesKey(name, labels)
	if m, ok := r.metrics.Load(key); ok {
		c, _ := m.(*Counter)
		return c
	}
	c := &Counter{meta: meta{nm: name, lbl: lbl}}
	if prev, loaded := r.metrics.LoadOrStore(key, c); loaded {
		c, _ := prev.(*Counter)
		return c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key, lbl := seriesKey(name, labels)
	if m, ok := r.metrics.Load(key); ok {
		g, _ := m.(*Gauge)
		return g
	}
	g := &Gauge{meta: meta{nm: name, lbl: lbl}}
	if prev, loaded := r.metrics.LoadOrStore(key, g); loaded {
		g, _ := prev.(*Gauge)
		return g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. Re-registering the same series replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	key, lbl := seriesKey(name, labels)
	r.metrics.Store(key, &funcGauge{meta: meta{nm: name, lbl: lbl}, fn: fn})
}

// Histogram returns (creating on first use) the histogram for name+labels.
// bounds must be ascending; nil means LatencyBuckets. Bounds are fixed at
// first registration — later calls with different bounds get the original.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key, lbl := seriesKey(name, labels)
	if m, ok := r.metrics.Load(key); ok {
		h, _ := m.(*Histogram)
		return h
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	h := &Histogram{
		meta:   meta{nm: name, lbl: lbl},
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	if prev, loaded := r.metrics.LoadOrStore(key, h); loaded {
		h, _ := prev.(*Histogram)
		return h
	}
	return h
}

// each iterates the registered metrics in deterministic (series key) order.
func (r *Registry) each(f func(key string, m metric)) {
	if r == nil {
		return
	}
	var keys []string
	byKey := make(map[string]metric)
	r.metrics.Range(func(k, v any) bool {
		ks, _ := k.(string)
		m, _ := v.(metric)
		if m != nil {
			keys = append(keys, ks)
			byKey[ks] = m
		}
		return true
	})
	sort.Strings(keys)
	for _, k := range keys {
		f(k, byKey[k])
	}
}
