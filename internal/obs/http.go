package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an http.Handler serving the observability endpoints:
//
//	/metrics       prometheus text exposition
//	/metrics.json  JSON snapshot (metrics + recent spans)
//	/debug/trace   recent completed spans as JSON, oldest first
//
// Mount it on its own listener (see cmd/sorrentod -metrics) so scrapes
// never contend with the data path's accept loop.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, o.Reg())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, o.Reg(), o.Tr())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Tr().Spans())
	})
	return mux
}

// ServeMetrics starts an HTTP server for the obs endpoints on addr and
// returns immediately; errors after startup are reported via errFn (may be
// nil). Returns the server so callers can Close it.
func (o *Obs) ServeMetrics(addr string, errFn func(error)) *http.Server {
	srv := &http.Server{Addr: addr, Handler: o.Handler()}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errFn != nil {
			errFn(err)
		}
	}()
	return srv
}
