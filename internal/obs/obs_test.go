package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	var o *Obs
	var tr *Tracer
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	g := r.Gauge("y")
	g.Set(1)
	g.Add(2)
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.GaugeFunc("f", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if o.Reg() != nil || o.Tr() != nil {
		t.Fatal("nil Obs accessors must return nil")
	}
	ctx, sp := tr.Start(context.Background(), "n", "op")
	if sp != nil || ctx != context.Background() {
		t.Fatal("nil tracer Start must pass ctx through")
	}
	sp.SetError(errors.New("e"))
	sp.End()
	if s := tr.Spans(); s == nil || len(s) != 0 {
		t.Fatalf("nil tracer Spans = %v, want empty non-nil (JSON renders [])", s)
	}
	var rec *RPCRecorder
	rec.Observe(struct{}{}, 1, 1, time.Second, nil)
	rec.ObserveCast(struct{}{}, 1)
	rec.Warm(struct{}{})
}

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("node", "p0"), L("type", "read"))
	b := r.Counter("hits", L("type", "read"), L("node", "p0")) // label order irrelevant
	if a != b {
		t.Fatal("same series must return the same handle")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("got %d, want 3", a.Value())
	}
	if other := r.Counter("hits", L("node", "p1"), L("type", "read")); other == a {
		t.Fatal("different labels must be a different series")
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge got %v, want 2.5", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count %d, want 8", h.Count())
	}
	if want := 0.5 + 1.5 + 1.5 + 3 + 3 + 3 + 6 + 20; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum %v, want %v", h.Sum(), want)
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 4 {
		t.Fatalf("p50 %v out of plausible [1,4]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8 {
		t.Fatalf("p99 %v should land in the overflow bucket (>=8)", p99)
	}
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 %v should fall in the first bucket", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("sum %v, want 8", h.Sum())
	}
}

func TestPrometheusAndJSONEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("sorrento_test_total", L("node", "p0")).Add(3)
	r.Gauge("sorrento_test_depth").Set(1.5)
	r.GaugeFunc("sorrento_test_func", func() float64 { return 7 })
	h := r.Histogram("sorrento_test_seconds", []float64{0.1, 1}, L("node", "p0"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE sorrento_test_total counter",
		`sorrento_test_total{node="p0"} 3`,
		"sorrento_test_depth 1.5",
		"sorrento_test_func 7",
		"# TYPE sorrento_test_seconds histogram",
		`sorrento_test_seconds_bucket{node="p0",le="0.1"} 1`,
		`sorrento_test_seconds_bucket{node="p0",le="1"} 2`,
		`sorrento_test_seconds_bucket{node="p0",le="+Inf"} 3`,
		`sorrento_test_seconds_count{node="p0"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	buf.Reset()
	if err := WriteJSON(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if len(doc.Metrics) != 4 {
		t.Fatalf("got %d metrics, want 4", len(doc.Metrics))
	}
}

func TestTracerSpansAndPropagation(t *testing.T) {
	clock := simtime.NewClock(0.001)
	tr := NewTracer(clock, 8)
	ctx, root := tr.Start(context.Background(), "client", "commit")
	if !root.Context().Valid() {
		t.Fatal("root span must have a trace ID")
	}
	_, child := tr.Start(ctx, "p0", "rpc:Prepare2PC")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child must share the root's trace")
	}
	clock.Sleep(10 * time.Millisecond)
	child.SetError(errors.New("boom"))
	child.End()
	child.End() // idempotent
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "rpc:Prepare2PC" || spans[0].Parent != root.Context().SpanID {
		t.Fatalf("child span mis-recorded: %+v", spans[0])
	}
	if spans[0].Err != "boom" {
		t.Fatalf("child error lost: %+v", spans[0])
	}
	if spans[0].Dur < 10*time.Millisecond {
		t.Fatalf("child modeled duration %v, want >= 10ms", spans[0].Dur)
	}
	if spans[1].Name != "commit" || spans[1].Parent != 0 {
		t.Fatalf("root span mis-recorded: %+v", spans[1])
	}

	// Ring wrap: capacity 8, add 10 more spans → oldest dropped.
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "n", "filler")
		s.End()
	}
	spans = tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("ring should cap at 8, got %d", len(spans))
	}
	for _, s := range spans {
		if s.Name != "filler" {
			t.Fatalf("oldest spans should have been evicted, found %q", s.Name)
		}
	}
}

func TestRPCRecorder(t *testing.T) {
	r := NewRegistry()
	rec := NewRPCRecorder(r, "client", "c0")
	type segRead struct{}
	rec.Observe(segRead{}, 100, 4096, 5*time.Millisecond, nil)
	rec.Observe(&segRead{}, 100, 0, time.Millisecond, errors.New("timeout"))
	rec.ObserveCast(segRead{}, 96)
	h := r.Histogram("sorrento_rpc_client_seconds", nil, L("node", "c0"), L("type", "segRead"))
	if h.Count() != 2 {
		t.Fatalf("latency count %d, want 2 (pointer and value must share a family)", h.Count())
	}
	if got := r.Counter("sorrento_rpc_bytes_total", L("node", "c0"), L("type", "segRead"), L("dir", "sent")).Value(); got != 296 {
		t.Fatalf("sent bytes %d, want 296", got)
	}
	if got := r.Counter("sorrento_rpc_errors_total", L("node", "c0"), L("type", "segRead")).Value(); got != 1 {
		t.Fatalf("errors %d, want 1", got)
	}
	if got := r.Counter("sorrento_rpc_casts_total", L("node", "c0"), L("type", "segRead")).Value(); got != 1 {
		t.Fatalf("casts %d, want 1", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	o := New(simtime.Real())
	o.Reg().Counter("sorrento_test_total").Inc()
	_, s := o.Tr().Start(context.Background(), "n", "op")
	s.End()
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "sorrento_test_total 1",
		"/metrics.json": `"sorrento_test_total"`,
		"/debug/trace":  `"name": "op"`,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("%s missing %q:\n%s", path, want, buf.String())
		}
	}
}

func TestRegisterResource(t *testing.T) {
	clock := simtime.NewClock(0.001)
	res := simtime.NewResource(clock, "p0/disk")
	r := NewRegistry()
	RegisterResource(r, clock, res, L("node", "p0"))
	res.Use(50 * time.Millisecond)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `sorrento_resource_busy_seconds_total{node="p0",resource="p0/disk"} 0.05`) {
		t.Fatalf("busy seconds not exported:\n%s", text)
	}
	if !strings.Contains(text, `sorrento_resource_requests_total{node="p0",resource="p0/disk"} 1`) {
		t.Fatalf("requests not exported:\n%s", text)
	}
}

func TestPrometheusQuantileFamily(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sorrento_q_seconds", []float64{0.1, 1, 10}, L("op", "read"))
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the first bucket
	}
	h2 := r.Histogram("sorrento_q_seconds", []float64{0.1, 1, 10}, L("op", "write"))
	h2.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// The pre-computed quantiles ride in a sibling gauge family, emitted
	// after the histogram family so both stay contiguous under their own
	// # TYPE lines.
	for _, want := range []string{
		"# TYPE sorrento_q_seconds histogram",
		"# TYPE sorrento_q_seconds_quantile gauge",
		`sorrento_q_seconds_quantile{op="read",quantile="0.5"}`,
		`sorrento_q_seconds_quantile{op="read",quantile="0.95"}`,
		`sorrento_q_seconds_quantile{op="read",quantile="0.99"}`,
		`sorrento_q_seconds_quantile{op="write",quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	if strings.Index(text, "# TYPE sorrento_q_seconds_quantile gauge") <
		strings.Index(text, `sorrento_q_seconds_count{op="write"}`) {
		t.Fatalf("quantile family interleaves the histogram family:\n%s", text)
	}
	// All of op=read landed below 0.1, so every exported quantile must too.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `sorrento_q_seconds_quantile{op="read"`) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
				t.Fatalf("bad quantile line %q: %v", line, err)
			}
			if v <= 0 || v > 0.1 {
				t.Fatalf("read quantile %v outside (0, 0.1]: %q", v, line)
			}
		}
	}
}

func TestSnapshotQuantileKeys(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sorrento_snap_seconds", nil)
	h.ObserveDuration(3 * time.Millisecond)
	var snap *MetricSnapshot
	for _, m := range r.Snapshot() {
		if m.Name == "sorrento_snap_seconds" {
			m := m
			snap = &m
		}
	}
	if snap == nil {
		t.Fatal("histogram missing from snapshot")
	}
	for _, q := range []string{"0.5", "0.9", "0.95", "0.99"} {
		v, ok := snap.Quantiles[q]
		if !ok {
			t.Fatalf("snapshot quantiles missing %q: %v", q, snap.Quantiles)
		}
		if v <= 0 {
			t.Fatalf("quantile %q is %v, want > 0", q, v)
		}
	}
	if snap.Quantiles["0.5"] > snap.Quantiles["0.99"] {
		t.Fatalf("quantiles not monotone: %v", snap.Quantiles)
	}
}
