package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Counters and gauges use Value. Histograms use Count/Sum/Quantiles.
	Value     float64            `json:"value,omitempty"`
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot freezes every registered series, sorted by series key.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	r.each(func(_ string, m metric) {
		snap := MetricSnapshot{Name: m.name(), Kind: m.kind()}
		if lbl := m.labels(); len(lbl) > 0 {
			snap.Labels = make(map[string]string, len(lbl))
			for _, l := range lbl {
				snap.Labels[l.Key] = l.Value
			}
		}
		switch v := m.(type) {
		case *Counter:
			snap.Value = float64(v.Value())
		case *Gauge:
			snap.Value = v.Value()
		case *funcGauge:
			snap.Value = v.fn()
		case *Histogram:
			snap.Count = v.Count()
			snap.Sum = v.Sum()
			snap.Quantiles = map[string]float64{
				"0.5":  v.Quantile(0.5),
				"0.9":  v.Quantile(0.9),
				"0.95": v.Quantile(0.95),
				"0.99": v.Quantile(0.99),
			}
		}
		out = append(out, snap)
	})
	return out
}

// WriteJSON writes the snapshot (plus any trace spans) as indented JSON.
func WriteJSON(w io.Writer, reg *Registry, tr *Tracer) error {
	doc := struct {
		Metrics []MetricSnapshot `json:"metrics"`
		Spans   []SpanRecord     `json:"spans,omitempty"`
	}{Metrics: reg.Snapshot(), Spans: tr.Spans()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// promLabels renders a sorted prometheus label set, with extra appended
// (used for the histogram "le" label).
func promLabels(lbl []Label, extra ...Label) string {
	all := append(append([]Label(nil), lbl...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the prometheus text exposition
// format (v0.0.4): one # TYPE line per metric family, histogram series
// expanded into _bucket/_sum/_count.
func WritePrometheus(w io.Writer, reg *Registry) error {
	// Group series by family so each # TYPE line appears once, with all of
	// the family's series contiguous (the format requires this).
	type series struct {
		key string
		m   metric
	}
	families := map[string][]series{}
	var names []string
	reg.each(func(key string, m metric) {
		if _, ok := families[m.name()]; !ok {
			names = append(names, m.name())
		}
		families[m.name()] = append(families[m.name()], series{key, m})
	})
	sort.Strings(names)
	for _, name := range names {
		fam := families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].m.kind()); err != nil {
			return err
		}
		histograms := false
		for _, s := range fam {
			switch v := s.m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", name, promLabels(v.labels()), v.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", name, promLabels(v.labels()), promFloat(v.Value()))
			case *funcGauge:
				fmt.Fprintf(w, "%s%s %s\n", name, promLabels(v.labels()), promFloat(v.fn()))
			case *Histogram:
				histograms = true
				var cum int64
				for i, bound := range v.bounds {
					cum += v.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(v.labels(), L("le", promFloat(bound))), cum)
				}
				cum += v.counts[len(v.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(v.labels(), L("le", "+Inf")), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(v.labels()), promFloat(v.Sum()))
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(v.labels()), v.Count()); err != nil {
					return err
				}
			}
		}
		// Pre-computed quantiles ride in a sibling gauge family (prometheus
		// histogram families admit only _bucket/_sum/_count series, and the
		// text format keeps each family contiguous under one # TYPE line).
		if histograms {
			qname := name + "_quantile"
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", qname); err != nil {
				return err
			}
			for _, s := range fam {
				v, ok := s.m.(*Histogram)
				if !ok {
					continue
				}
				for _, q := range [...]float64{0.5, 0.95, 0.99} {
					if _, err := fmt.Fprintf(w, "%s%s %s\n", qname,
						promLabels(v.labels(), L("quantile", promFloat(q))), promFloat(v.Quantile(q))); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
