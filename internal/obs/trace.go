package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
)

// SpanContext identifies a span for cross-process propagation: TraceID ties
// all spans of one logical operation together, SpanID names this span so
// children can parent on it. The zero value means "no active span".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

type ctxKey struct{}

// ContextWith returns ctx carrying sc, for transports re-injecting a
// remote span context on the server side.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the active span context, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// SpanRecord is one completed span as stored in the tracer ring.
type SpanRecord struct {
	Trace  uint64        `json:"trace"`
	Span   uint64        `json:"span"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Node   string        `json:"node,omitempty"`
	Start  time.Duration `json:"start_ns"` // modeled time since clock start
	Dur    time.Duration `json:"dur_ns"`   // modeled duration
	Err    string        `json:"err,omitempty"`
}

// Tracer records spans into a bounded ring. Construct with NewTracer; a nil
// *Tracer is valid and disables tracing. Span timestamps use the modeled
// clock so traces line up with histogram latencies.
type Tracer struct {
	clock *simtime.Clock
	seq   atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// DefaultSpanCapacity bounds the completed-span ring when NewTracer is
// given capacity <= 0.
const DefaultSpanCapacity = 4096

// NewTracer returns a tracer stamping spans from clock (nil clock = real
// time) keeping the last capacity completed spans.
func NewTracer(clock *simtime.Clock, capacity int) *Tracer {
	if clock == nil {
		clock = simtime.Real()
	}
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	t := &Tracer{clock: clock, ring: make([]SpanRecord, capacity)}
	// Seed the ID sequence with the wall clock so IDs from distinct
	// processes in one trace dump don't collide on small integers.
	t.seq.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// nextID returns a process-unique non-zero ID (splitmix64 over a counter).
func (t *Tracer) nextID() uint64 {
	z := t.seq.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Span is an in-flight span. End completes it; all methods are nil-safe.
type Span struct {
	t     *Tracer
	rec   SpanRecord
	ended atomic.Bool
}

// Start opens a span named name on node, parented on ctx's span context if
// one is present (else it begins a new trace), and returns a derived
// context carrying the new span. On a nil tracer it returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, node, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t}
	s.rec.Name = name
	s.rec.Node = node
	s.rec.Span = t.nextID()
	if parent, ok := FromContext(ctx); ok && parent.Valid() {
		s.rec.Trace = parent.TraceID
		s.rec.Parent = parent.SpanID
	} else {
		s.rec.Trace = t.nextID()
	}
	s.rec.Start = t.clock.Now()
	return ContextWith(ctx, s.Context()), s
}

// Context returns the span's propagation context (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.Trace, SpanID: s.rec.Span}
}

// SetError attaches err to the span (kept on End). No-op on nil span/err.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.rec.Err = err.Error()
}

// End completes the span and commits it to the ring. Idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.rec.Dur = s.t.clock.Now() - s.rec.Start
	t := s.t
	t.mu.Lock()
	t.ring[t.next] = s.rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the completed spans, oldest first. Always non-nil (so JSON
// dumps render "[]" rather than "null"), empty on a nil tracer.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return []SpanRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord{}, t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Obs bundles the registry and tracer so one pointer plumbs both through
// configs. A nil *Obs (and nil fields) disables everything.
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
}

// New returns a fully enabled Obs stamping spans from clock.
func New(clock *simtime.Clock) *Obs {
	return &Obs{Registry: NewRegistry(), Tracer: NewTracer(clock, 0)}
}

// Reg returns the registry, nil-safely.
func (o *Obs) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Tr returns the tracer, nil-safely.
func (o *Obs) Tr() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
