package obs

import (
	"reflect"
	"sync"
	"time"
)

// rpcSeries caches the metric handles for one message type so the hot path
// never formats a type name or re-resolves a series.
type rpcSeries struct {
	lat       *Histogram
	sentBytes *Counter
	recvBytes *Counter
	errs      *Counter
	casts     *Counter
}

// RPCRecorder records per-message-type RPC metrics for one endpoint. Handles
// are cached per concrete request type in a sync.Map, so after warm-up an
// observation is one map load plus a few atomic adds. A nil *RPCRecorder is
// valid and records nothing.
type RPCRecorder struct {
	reg    *Registry
	node   string
	role   string   // metric name segment: "client" or "server"
	series sync.Map // reflect.Type -> *rpcSeries
}

// NewRPCRecorder returns a recorder tagging series with node, on the given
// role's metric names. Returns nil when reg is nil.
func NewRPCRecorder(reg *Registry, role, node string) *RPCRecorder {
	if reg == nil {
		return nil
	}
	return &RPCRecorder{reg: reg, node: node, role: role}
}

// MsgTypeName names a wire message's concrete type ("SegRead", ...).
func MsgTypeName(msg any) string {
	t := reflect.TypeOf(msg)
	if t == nil {
		return "nil"
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if n := t.Name(); n != "" {
		return n
	}
	return t.String()
}

func (r *RPCRecorder) lookup(msg any) *rpcSeries {
	t := reflect.TypeOf(msg)
	if s, ok := r.series.Load(t); ok {
		return s.(*rpcSeries)
	}
	typ := MsgTypeName(msg)
	node := L("node", r.node)
	tl := L("type", typ)
	s := &rpcSeries{
		lat:       r.reg.Histogram("sorrento_rpc_"+r.role+"_seconds", nil, node, tl),
		sentBytes: r.reg.Counter("sorrento_rpc_bytes_total", node, tl, L("dir", "sent")),
		recvBytes: r.reg.Counter("sorrento_rpc_bytes_total", node, tl, L("dir", "recv")),
		errs:      r.reg.Counter("sorrento_rpc_errors_total", node, tl),
		casts:     r.reg.Counter("sorrento_rpc_casts_total", node, tl),
	}
	if prev, loaded := r.series.LoadOrStore(t, s); loaded {
		return prev.(*rpcSeries)
	}
	return s
}

// Observe records one completed call of type msg: modeled round-trip d,
// estimated bytes in each direction, and whether it failed.
func (r *RPCRecorder) Observe(msg any, sent, recv int, d time.Duration, err error) {
	if r == nil {
		return
	}
	s := r.lookup(msg)
	s.lat.ObserveDuration(d)
	s.sentBytes.Add(int64(sent))
	s.recvBytes.Add(int64(recv))
	if err != nil {
		s.errs.Inc()
	}
}

// ObserveCast records one fire-and-forget message (multicast/cast) of sent
// bytes.
func (r *RPCRecorder) ObserveCast(msg any, sent int) {
	if r == nil {
		return
	}
	s := r.lookup(msg)
	s.casts.Inc()
	s.sentBytes.Add(int64(sent))
}

// Warm pre-registers the series for the given message values so a freshly
// started daemon's /metrics already lists the hot RPC families at zero.
func (r *RPCRecorder) Warm(msgs ...any) {
	if r == nil {
		return
	}
	for _, m := range msgs {
		r.lookup(m)
	}
}
