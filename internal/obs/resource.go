package obs

import "repro/internal/simtime"

// RegisterResource exports a simtime.Resource (a NIC direction, a disk arm,
// a CPU) as four gauges keyed by the resource's name: a windowed busy
// fraction (sampled between scrapes), the instantaneous queue depth in
// modeled seconds of backlogged service, and the cumulative service
// time/request count. All reads happen at snapshot time — nothing is
// charged on the resource's own hot path.
func RegisterResource(reg *Registry, clock *simtime.Clock, res *simtime.Resource, labels ...Label) {
	if reg == nil || res == nil {
		return
	}
	lbl := append([]Label{L("resource", res.Name())}, labels...)
	sampler := simtime.NewUtilizationSampler(clock, res)
	reg.GaugeFunc("sorrento_resource_utilization", sampler.Sample, lbl...)
	reg.GaugeFunc("sorrento_resource_queue_seconds", func() float64 {
		return res.Backlog().Seconds()
	}, lbl...)
	reg.GaugeFunc("sorrento_resource_busy_seconds_total", func() float64 {
		busy, _ := res.BusyTime()
		return busy.Seconds()
	}, lbl...)
	reg.GaugeFunc("sorrento_resource_requests_total", func() float64 {
		_, n := res.BusyTime()
		return float64(n)
	}, lbl...)
}
