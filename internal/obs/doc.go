// Package obs is the repo's observability substrate: a dependency-free
// metrics registry (counters, gauges, histograms over modeled time) plus a
// lightweight span tracer, wired through every protocol layer (client →
// transport → provider → disk). It answers the questions Sorrento's
// self-organizing claims hinge on — which NIC is saturated, which disk queue
// is backing up, where a 2PC commit spent its time — from a live process or
// from a benchmark run's artifact dump.
//
// # Metric name schema
//
// All metric names are prometheus-style snake_case with the "sorrento_"
// prefix, a subsystem segment, and a unit suffix:
//
//	sorrento_<subsystem>_<what>_<unit>[_total]
//
// Dimensions ride in labels, never in the name. The wired families are:
//
//	sorrento_rpc_client_seconds{node,type}        histogram: per-message-type RPC round trip (transport client side)
//	sorrento_rpc_server_seconds{node,type}        histogram: per-message-type handler service time (TCP transport)
//	sorrento_rpc_bytes_total{node,type,dir}       counter: estimated wire bytes, dir="sent"|"recv"
//	sorrento_rpc_errors_total{node,type}          counter: failed calls
//	sorrento_rpc_casts_total{node,type}           counter: multicast/cast messages sent
//	sorrento_resource_utilization{resource}       gauge: busy fraction since last scrape (simtime.UtilizationSampler)
//	sorrento_resource_queue_seconds{resource}     gauge: backlogged service time queued behind new arrivals
//	sorrento_resource_busy_seconds_total{resource} gauge(cumulative): modeled service time delivered
//	sorrento_resource_requests_total{resource}    gauge(cumulative): requests serviced
//	sorrento_disk_used_bytes{node}                gauge: committed bytes on the provider's disk
//	sorrento_disk_used_frac{node}                 gauge: f_s, the space input to migration decisions
//	sorrento_provider_2pc_total{node,phase}       counter: prepare/commit/abort rounds handled (phase label)
//	sorrento_provider_2pc_seconds{node,phase}     histogram: per-phase handler latency
//	sorrento_provider_shadows_open{node}          gauge: shadow segments currently open
//	sorrento_provider_loc_queries_total{node,result} counter: home-host lookups, result="hit"|"miss"
//	sorrento_provider_pulls_total{node,kind}      counter: replica syncs, kind="delta"|"full"
//	sorrento_provider_migrations_total{node,trigger} counter: migration decisions by trigger (ioload/space/locality)
//	sorrento_provider_load_fl{node}               gauge: f_l, the EWMA I/O load input to migration decisions
//	sorrento_provider_segments{node}              gauge: committed segments resident in the store
//	sorrento_namespace_commit_conflicts_total{kind} counter: CommitBegin rejections, kind="conflict"|"blocked"
//	sorrento_client_commit_seconds{node}          histogram: whole-commit latency (client side)
//	sorrento_client_commits_total{node}           counter: commits completed
//	sorrento_client_commit_conflicts_total{node}  counter: commit retries forced by the commit window
//	sorrento_client_probes_total{node}            counter: location probe rounds issued
//	sorrento_membership_heartbeat_gap_seconds{node} histogram: observed inter-heartbeat gaps per observer
//	sorrento_membership_evictions_total{node}     counter: providers declared dead by this observer
//
// Namespace per-op counts and latencies ride the generic RPC families with
// node="ns" (e.g. sorrento_rpc_server_seconds{node="ns",type="Lookup"}) —
// the transport layer owns request accounting, and the namespace server only
// adds what the transport cannot see (commit-window rejections above).
//
// Histograms record modeled seconds (simtime), so a run at Scale 0.01 and a
// run at Scale 1 produce comparable distributions. On the real-clock daemons
// (sorrentod, namespaced) modeled time is wall time.
//
// # Trace/span ID propagation
//
// Tracer.Start opens a span and stashes its SpanContext — a (TraceID,
// SpanID) pair of random-ish uint64s — in the context.Context. In-process
// transports (simnet) propagate the context directly to the handler, so
// child spans parent correctly for free. The TCP transport serializes the
// pair into the gob call envelope (callEnvelope.Trace/Span) and the server
// side re-injects it into the handler context, so a trace crosses machine
// boundaries. Completed spans land in a bounded in-memory ring readable at
// /debug/trace; when the ring wraps, oldest spans are dropped (tracing is a
// diagnostic aid, not an audit log).
//
// # Cost model
//
// Everything is nil-safe: a nil *Registry, *Obs, *Tracer, or metric handle
// makes every method a no-op, so "obs off" is a nil check per event and the
// data path allocates nothing. Metric handles are resolved once (at
// construction or via a sync.Map keyed by reflect.Type for per-message-type
// RPC metrics) and updates are a single atomic add — no locks on the hot
// paths PR 2 parallelized.
package obs
