package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestClockConversions(t *testing.T) {
	c := NewClock(0.01)
	if got := c.Wall(time.Second); got != 10*time.Millisecond {
		t.Errorf("Wall(1s) = %v, want 10ms", got)
	}
	if got := c.Modeled(10 * time.Millisecond); got != time.Second {
		t.Errorf("Modeled(10ms) = %v, want 1s", got)
	}
}

func TestNewClockPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestSleepScaled(t *testing.T) {
	c := NewClock(0.001)
	start := time.Now()
	c.Sleep(time.Second) // should be ~1ms wall
	if wall := time.Since(start); wall > 200*time.Millisecond {
		t.Errorf("Sleep(1s) at scale 0.001 took %v wall", wall)
	}
}

func TestStopwatchReportsModeledTime(t *testing.T) {
	c := NewClock(0.001)
	sw := c.Start()
	time.Sleep(5 * time.Millisecond)
	got := sw.Elapsed()
	if got < 2*time.Second || got > 60*time.Second {
		t.Errorf("Elapsed = %v, want around 5s modeled", got)
	}
}

func TestResourceSerializes(t *testing.T) {
	// 10 concurrent requests of 100ms modeled on one resource must take
	// about 1s modeled in total, demonstrating FIFO queueing.
	c := NewClock(0.002)
	r := NewResource(c, "disk")
	var wg sync.WaitGroup
	sw := c.Start()
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Use(100 * time.Millisecond)
		}()
	}
	wg.Wait()
	elapsed := sw.Elapsed()
	if elapsed < 900*time.Millisecond {
		t.Errorf("10 serialized 100ms uses finished in %v modeled, want >=0.9s", elapsed)
	}
	busy, n := r.BusyTime()
	if busy != time.Second || n != 10 {
		t.Errorf("BusyTime = %v, %d; want 1s, 10", busy, n)
	}
}

func TestResourcesRunInParallel(t *testing.T) {
	// Two independent resources serve concurrently: total modeled time for
	// 100ms on each should be well under 200ms.
	c := NewClock(0.01)
	a := NewResource(c, "a")
	b := NewResource(c, "b")
	sw := c.Start()
	var wg sync.WaitGroup
	for _, r := range []*Resource{a, b} {
		wg.Add(1)
		go func(r *Resource) {
			defer wg.Done()
			r.Use(100 * time.Millisecond)
		}(r)
	}
	wg.Wait()
	if elapsed := sw.Elapsed(); elapsed > 180*time.Millisecond {
		t.Errorf("parallel resources took %v modeled, want < 180ms", elapsed)
	}
}

func TestUseZeroIsNoop(t *testing.T) {
	c := NewClock(1)
	r := NewResource(c, "x")
	r.Use(0)
	r.Use(-time.Second)
	if busy, n := r.BusyTime(); busy != 0 || n != 0 {
		t.Errorf("BusyTime after no-op uses = %v, %d", busy, n)
	}
}

func TestBacklogGrowsUnderLoad(t *testing.T) {
	c := NewClock(0.0001)
	r := NewResource(c, "disk")
	for i := 0; i < 20; i++ {
		go r.Use(time.Second)
	}
	deadline := time.After(2 * time.Second)
	for r.Backlog() <= 0 {
		select {
		case <-deadline:
			t.Fatal("Backlog stayed 0 while 20 one-second requests queued")
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestUtilizationSampler(t *testing.T) {
	c := NewClock(0.001)
	r := NewResource(c, "disk")
	s := NewUtilizationSampler(c, r)
	s.Sample() // baseline

	// Saturate the resource for ~20ms wall (= 20s modeled).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			r.Use(time.Second)
		}
	}()
	<-done
	u := s.Sample()
	if u < 0.5 {
		t.Errorf("utilization after saturation = %v, want >= 0.5", u)
	}

	// Idle window: utilization should fall.
	time.Sleep(20 * time.Millisecond)
	if u := s.Sample(); u > 0.2 {
		t.Errorf("utilization after idle window = %v, want <= 0.2", u)
	}
}

func TestTickerFiresAtScaledRate(t *testing.T) {
	c := NewClock(0.001)
	tk := c.NewTicker(time.Second) // 1ms wall
	defer tk.Stop()
	deadline := time.After(500 * time.Millisecond)
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C:
		case <-deadline:
			t.Fatalf("ticker fired only %d times in 500ms wall", i)
		}
	}
}
