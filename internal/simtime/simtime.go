// Package simtime provides the scaled clock and FIFO resources that turn the
// real Sorrento protocol implementation into a calibrated performance model.
//
// The reproduction runs the actual protocol code (goroutines exchanging real
// messages), but hardware costs — disk service times, NIC transmission,
// per-request server overheads — are charged against Resources. Charging a
// modeled duration d blocks the caller until the resource has served it, with
// wall-clock time compressed by the clock's Scale. Measurements taken through
// Stopwatch convert wall time back into modeled time, so reported numbers are
// directly comparable with the paper's (e.g. a modeled 12-hour crawler run
// completes in seconds of wall time).
//
// A Scale of 1 gives real time, which is what the cmd/ daemons use.
package simtime

import (
	"context"
	"sync"
	"time"
)

// Clock converts between modeled time and wall time. Scale is the wall
// seconds slept per modeled second; Scale < 1 compresses time.
type Clock struct {
	scale float64
	start time.Time
}

// NewClock returns a clock with the given compression factor. scale must be
// positive; NewClock panics otherwise because a zero scale would collapse all
// queueing behaviour.
func NewClock(scale float64) *Clock {
	if scale <= 0 {
		panic("simtime: scale must be positive")
	}
	return &Clock{scale: scale, start: time.Now()}
}

// Real returns a pass-through clock (Scale 1) for production daemons.
func Real() *Clock { return NewClock(1) }

// Scale returns the wall-per-modeled compression factor.
func (c *Clock) Scale() float64 { return c.scale }

// Wall converts a modeled duration to the wall duration to sleep.
func (c *Clock) Wall(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.scale)
}

// Modeled converts a wall duration back to modeled time.
func (c *Clock) Modeled(wall time.Duration) time.Duration {
	return time.Duration(float64(wall) / c.scale)
}

// sleepWall blocks for a wall duration with sub-granularity accuracy via
// the shared timer wheel (see wheel.go). time.Sleep alone overshoots by up
// to a millisecond, which would distort modeled latencies at small Scales;
// per-goroutine busy-waiting would serialize concurrent waits on few-core
// machines. The wheel gives both precision and overlap.
func sleepWall(d time.Duration) {
	if d <= 0 {
		return
	}
	wheelWait(time.Now().Add(d))
}

// sleepUntil blocks until the wall instant t.
func sleepUntil(t time.Time) {
	if !time.Now().Before(t) {
		return
	}
	wheelWait(t)
}

// Sleep blocks for the modeled duration d (compressed by Scale).
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	sleepWall(c.Wall(d))
}

// Now returns the modeled time elapsed since the clock was created. It is
// the simulation's timeline; experiment time series are keyed by it.
func (c *Clock) Now() time.Duration {
	return c.Modeled(time.Since(c.start))
}

// After returns a channel that fires after the modeled duration d.
func (c *Clock) After(d time.Duration) <-chan time.Time {
	return time.After(c.Wall(d))
}

// NewTicker returns a ticker firing every modeled duration d.
func (c *Clock) NewTicker(d time.Duration) *time.Ticker {
	return time.NewTicker(c.Wall(d))
}

// NewTimer returns a timer firing after the modeled duration d.
func (c *Clock) NewTimer(d time.Duration) *time.Timer {
	return time.NewTimer(c.Wall(d))
}

// Stopwatch measures modeled elapsed time.
type Stopwatch struct {
	clock *Clock
	start time.Time
}

// Start returns a running stopwatch.
func (c *Clock) Start() Stopwatch {
	return Stopwatch{clock: c, start: time.Now()}
}

// Elapsed returns the modeled time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock.Modeled(time.Since(s.start))
}

// Resource models a serially-shared hardware component (a disk arm, one
// direction of a NIC, a server CPU) as a FIFO queue: each Use reserves the
// next available service slot and blocks until that slot completes. Queueing
// delay therefore emerges naturally under contention, which is what drives
// the saturation shapes in the paper's figures.
type Resource struct {
	clock *Clock
	name  string

	mu       sync.Mutex
	free     time.Time     // wall time at which the server becomes idle
	prioFree time.Time     // tail of the priority lane
	busy     time.Duration // accumulated modeled busy time
	requests int64
}

// NewResource returns an idle resource charged against clock. The name is
// used only for diagnostics.
func NewResource(clock *Clock, name string) *Resource {
	return &Resource{clock: clock, name: name, free: time.Now()}
}

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Use charges a modeled service time d and blocks the caller until the
// resource has served it (FIFO behind earlier requests).
func (r *Resource) Use(d time.Duration) {
	if d <= 0 {
		return
	}
	end := r.reserve(d)
	sleepUntil(end)
}

// Reserve books d of modeled service time without blocking and returns the
// wall instant at which the reservation completes. Callers that occupy two
// resources concurrently (e.g. sender and receiver NICs of one pipelined
// transfer) reserve both and WaitUntil the later end.
func (r *Resource) Reserve(d time.Duration) time.Time {
	if d <= 0 {
		return time.Now()
	}
	return r.reserve(d)
}

// ReservePriority books d of service time in the resource's priority lane:
// the request is served after earlier priority requests but ahead of the
// queued bulk backlog, which is pushed back by d to conserve capacity. It
// models small control packets interleaving with bulk transfers on a link —
// their latency is their own transmission time, not the queue's.
func (r *Resource) ReservePriority(d time.Duration) time.Time {
	if d <= 0 {
		return time.Now()
	}
	wall := r.clock.Wall(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	start := r.prioFree
	if start.Before(now) {
		start = now
	}
	r.prioFree = start.Add(wall)
	// Push the bulk tail back so total occupancy is conserved.
	if r.free.After(now) {
		r.free = r.free.Add(wall)
	}
	r.busy += d
	r.requests++
	return r.prioFree
}

// WaitUntil blocks until the wall instant t with the wheel's precision.
func WaitUntil(t time.Time) { sleepUntil(t) }

// WaitUntilCtx blocks until the wall instant t or until ctx is done,
// whichever comes first, returning ctx.Err() in the latter case. Queue waits
// on saturated resources use it so a caller's deadline bounds the time spent
// queued, not just the time spent being served.
func WaitUntilCtx(ctx context.Context, t time.Time) error {
	if !time.Now().Before(t) {
		return nil
	}
	if ctx.Done() == nil {
		sleepUntil(t)
		return nil
	}
	ch := wheelRegister(t)
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// reserve books d of service time and returns the wall time at which this
// request completes.
func (r *Resource) reserve(d time.Duration) time.Time {
	wall := r.clock.Wall(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	start := r.free
	if start.Before(now) {
		start = now
	}
	r.free = start.Add(wall)
	r.busy += d
	r.requests++
	return r.free
}

// Backlog returns the modeled time a request arriving now would wait before
// service begins. A saturated resource has a growing backlog.
func (r *Resource) Backlog() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := time.Until(r.free)
	if w <= 0 {
		return 0
	}
	return r.clock.Modeled(w)
}

// BusyTime returns the total modeled busy time accumulated so far, and the
// number of requests served. Samplers difference successive readings to
// compute a utilization fraction (the paper's "CPU and I/O wait load" l).
func (r *Resource) BusyTime() (time.Duration, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy, r.requests
}

// UtilizationSampler converts successive BusyTime readings into a
// utilization fraction in [0,1].
type UtilizationSampler struct {
	res      []*Resource
	clock    *Clock
	mu       sync.Mutex
	lastBusy time.Duration
	lastAt   time.Time
}

// NewUtilizationSampler samples the combined utilization of the given
// resources (e.g. a node's disk plus its NIC directions).
func NewUtilizationSampler(clock *Clock, res ...*Resource) *UtilizationSampler {
	return &UtilizationSampler{res: res, clock: clock, lastAt: time.Now()}
}

// Add folds more resources into the sampler (e.g. NIC directions known
// only after a node joins the network). The baseline resets so the next
// Sample is unbiased.
func (s *UtilizationSampler) Add(res ...*Resource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res = append(s.res, res...)
	var busy time.Duration
	for _, r := range s.res {
		b, _ := r.BusyTime()
		busy += b
	}
	s.lastBusy = busy
	s.lastAt = time.Now()
}

// Sample returns the fraction of modeled time the resources were busy since
// the previous Sample, averaged across resources and clamped to [0,1].
func (s *UtilizationSampler) Sample() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var busy time.Duration
	for _, r := range s.res {
		b, _ := r.BusyTime()
		busy += b
	}
	now := time.Now()
	window := s.clock.Modeled(now.Sub(s.lastAt))
	delta := busy - s.lastBusy
	s.lastBusy = busy
	s.lastAt = now
	if window <= 0 || len(s.res) == 0 {
		return 0
	}
	u := float64(delta) / float64(window) / float64(len(s.res))
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}
