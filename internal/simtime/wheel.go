package simtime

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// wheel implements precise wall-clock waits. Waiters park on channels (no
// CPU) while a single pacer goroutine watches the earliest deadline: it
// sleeps coarsely while deadlines are far and spins (yielding) when one is
// near, then closes the waiter's channel. One pacer serves every waiter, so
// concurrent waits overlap correctly even at GOMAXPROCS=1 — unlike
// per-goroutine spinning — while precision stays in the microseconds,
// unlike raw time.Sleep whose overshoot can reach a millisecond.
//
// A waiter whose deadline precedes the pacer's current sleep target nudges
// the wake channel so the pacer re-evaluates immediately; without that, one
// long coarse sleep would stall every later-registered short wait.
type wheel struct {
	mu      sync.Mutex
	q       waiterHeap
	running bool
	target  time.Time // pacer's coarse-sleep destination (zero when spinning)
	wake    chan struct{}
}

// slack is how far ahead of a deadline the pacer switches from sleeping to
// yielding; it must exceed the platform's time.Sleep overshoot.
const slack = 2 * time.Millisecond

// The process-wide wheel is sharded so 10k+ outstanding timers (512
// providers' heartbeats, scan deadlines, RPC timeouts) don't serialize on
// one mutex and one pacer goroutine. Registrations spread round-robin —
// deadline ordering is a per-waiter contract (each channel closes at its
// own deadline), so waiters need no cross-shard coordination. Shard count
// is a power of two near GOMAXPROCS, capped: each shard costs one pacer
// goroutine while it has waiters.
var (
	wheelShards []*wheel
	wheelMask   uint64
	wheelCtr    atomic.Uint64
)

func init() {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	wheelShards = make([]*wheel, n)
	for i := range wheelShards {
		wheelShards[i] = &wheel{wake: make(chan struct{}, 1)}
	}
	wheelMask = uint64(n - 1)
}

// wheelWait blocks until the wall instant t.
func wheelWait(t time.Time) {
	wheelShards[wheelCtr.Add(1)&wheelMask].wait(t)
}

// wheelRegister enrolls a waiter for the wall instant t on some shard and
// returns the channel closed when t passes.
func wheelRegister(t time.Time) <-chan struct{} {
	return wheelShards[wheelCtr.Add(1)&wheelMask].register(t)
}

type waiter struct {
	deadline time.Time
	ch       chan struct{}
}

type waiterHeap []waiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)        { *h = append(*h, x.(waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// wait blocks until the wall instant t.
func (w *wheel) wait(t time.Time) {
	if !time.Now().Before(t) {
		return
	}
	<-w.register(t)
}

// register enrolls a waiter for the wall instant t and returns the channel
// the pacer closes when t passes. Callers that need to abandon the wait
// (context cancellation) simply stop listening; the pacer still closes the
// channel on schedule, which is free.
func (w *wheel) register(t time.Time) <-chan struct{} {
	ch := make(chan struct{})
	w.mu.Lock()
	heap.Push(&w.q, waiter{deadline: t, ch: ch})
	nudge := false
	if !w.running {
		w.running = true
		go w.pace()
	} else if !w.target.IsZero() && t.Before(w.target) {
		nudge = true
	}
	w.mu.Unlock()
	if nudge {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return ch
}

// pace wakes waiters as their deadlines pass, exiting when none remain.
func (w *wheel) pace() {
	for {
		now := time.Now()
		w.mu.Lock()
		for w.q.Len() > 0 && !now.Before(w.q[0].deadline) {
			close(heap.Pop(&w.q).(waiter).ch)
		}
		if w.q.Len() == 0 {
			w.running = false
			w.mu.Unlock()
			return
		}
		next := w.q[0].deadline
		d := time.Until(next)
		if d > slack {
			w.target = next
			w.mu.Unlock()
			t := time.NewTimer(d - slack)
			select {
			case <-t.C:
			case <-w.wake:
				t.Stop()
			}
			w.mu.Lock()
			w.target = time.Time{}
			w.mu.Unlock()
			continue
		}
		w.mu.Unlock()
		// Near a deadline: yield so freshly woken goroutines run, then
		// re-check.
		runtime.Gosched()
	}
}
