package simtime

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestWheelWaitAccuracy(t *testing.T) {
	for _, d := range []time.Duration{100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		start := time.Now()
		wheelWait(start.Add(d))
		got := time.Since(start)
		if got < d {
			t.Errorf("wait(%v) returned early after %v", d, got)
		}
		if got > d+3*time.Millisecond {
			t.Errorf("wait(%v) overshot to %v", d, got)
		}
	}
}

func TestWheelPastDeadlineReturnsImmediately(t *testing.T) {
	start := time.Now()
	wheelWait(start.Add(-time.Second))
	if time.Since(start) > time.Millisecond {
		t.Error("past deadline blocked")
	}
}

// TestWheelShortWaitNotBlockedByLongSleep pins the regression where a
// waiter with a near deadline registered while the pacer was in a long
// coarse sleep toward a far deadline, and stalled until that sleep ended.
// It drives one shard directly so the long and short waits share a pacer.
func TestWheelShortWaitNotBlockedByLongSleep(t *testing.T) {
	w := wheelShards[0]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.wait(time.Now().Add(300 * time.Millisecond))
	}()
	time.Sleep(10 * time.Millisecond) // let the pacer start its long sleep

	start := time.Now()
	w.wait(start.Add(5 * time.Millisecond))
	if got := time.Since(start); got > 50*time.Millisecond {
		t.Errorf("short wait stalled %v behind a long sleep", got)
	}
	wg.Wait()
}

func TestWheelConcurrentWaitsOverlap(t *testing.T) {
	// 20 concurrent 20ms waits must finish in ~20ms, not 400ms.
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wheelWait(time.Now().Add(20 * time.Millisecond))
		}()
	}
	wg.Wait()
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("concurrent waits serialized: %v", got)
	}
}

func TestWheelPacersExitWhenIdle(t *testing.T) {
	// Touch every shard, then require all pacers to wind down.
	for i := 0; i < len(wheelShards)*2; i++ {
		wheelWait(time.Now().Add(2 * time.Millisecond))
	}
	deadline := time.Now().Add(time.Second)
	for {
		idle := true
		queued := 0
		for _, w := range wheelShards {
			w.mu.Lock()
			if w.running || w.q.Len() > 0 {
				idle = false
				queued += w.q.Len()
			}
			w.mu.Unlock()
		}
		if idle {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pacers still running with %d queued after idle", queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWheelCrossShardOrdering registers interleaved near and far deadlines
// (round-robin spreads them across shards) and asserts every wait completes
// at or after its own deadline, and that a far deadline never resolves
// before a near one by more than scheduling noise.
func TestWheelCrossShardOrdering(t *testing.T) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := make(map[int]time.Time)
	base := time.Now()
	deadlines := make([]time.Duration, 24)
	for i := range deadlines {
		if i%2 == 0 {
			deadlines[i] = 10 * time.Millisecond
		} else {
			deadlines[i] = 120 * time.Millisecond
		}
	}
	for i, d := range deadlines {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			wheelWait(base.Add(d))
			mu.Lock()
			done[i] = time.Now()
			mu.Unlock()
		}(i, d)
	}
	wg.Wait()
	for i, d := range deadlines {
		if done[i].Before(base.Add(d)) {
			t.Errorf("waiter %d woke %v early", i, base.Add(d).Sub(done[i]))
		}
	}
	// Every near waiter must resolve well before every far waiter's deadline.
	for i := 0; i < len(deadlines); i += 2 {
		if got := done[i].Sub(base); got > 100*time.Millisecond {
			t.Errorf("near waiter %d took %v, stalled behind a far deadline on another shard", i, got)
		}
	}
}

// TestWheelCancellation abandons waits via context cancellation mid-flight;
// the pacer must still drain the orphaned registrations without leaking
// (closing an unlistened channel is free).
func TestWheelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- WaitUntilCtx(ctx, time.Now().Add(500*time.Millisecond))
		}()
	}
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	cancel()
	wg.Wait()
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("cancelled waits took %v to unwind", got)
	}
	close(errs)
	for err := range errs {
		if err != context.Canceled {
			t.Errorf("cancelled wait returned %v", err)
		}
	}
	// The orphaned registrations must still drain from every shard.
	deadline := time.Now().Add(2 * time.Second)
	for {
		queued := 0
		for _, w := range wheelShards {
			w.mu.Lock()
			queued += w.q.Len()
			w.mu.Unlock()
		}
		if queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d orphaned waiters never drained", queued)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWheelStress10k drives 10k concurrent timers with random deadlines —
// the 512-provider load shape (heartbeats, scan deadlines, RPC timeouts) —
// and asserts nothing wakes early and the whole batch completes promptly.
func TestWheelStress10k(t *testing.T) {
	const n = 10000
	rng := rand.New(rand.NewSource(42))
	durations := make([]time.Duration, n)
	for i := range durations {
		durations[i] = time.Duration(1+rng.Intn(50)) * time.Millisecond
	}
	var wg sync.WaitGroup
	var early sync.Map
	base := time.Now()
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deadline := base.Add(durations[i])
			wheelWait(deadline)
			if time.Now().Before(deadline) {
				early.Store(i, deadline.Sub(time.Now()))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	early.Range(func(k, v any) bool {
		t.Errorf("timer %v woke %v early", k, v)
		return true
	})
	// 10k timers ending by 50ms should all resolve within a generous bound
	// even on a loaded CI machine.
	if elapsed > 2*time.Second {
		t.Errorf("10k timers took %v", elapsed)
	}
}
