package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestWheelWaitAccuracy(t *testing.T) {
	for _, d := range []time.Duration{100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		start := time.Now()
		globalWheel.wait(start.Add(d))
		got := time.Since(start)
		if got < d {
			t.Errorf("wait(%v) returned early after %v", d, got)
		}
		if got > d+3*time.Millisecond {
			t.Errorf("wait(%v) overshot to %v", d, got)
		}
	}
}

func TestWheelPastDeadlineReturnsImmediately(t *testing.T) {
	start := time.Now()
	globalWheel.wait(start.Add(-time.Second))
	if time.Since(start) > time.Millisecond {
		t.Error("past deadline blocked")
	}
}

// TestWheelShortWaitNotBlockedByLongSleep pins the regression where a
// waiter with a near deadline registered while the pacer was in a long
// coarse sleep toward a far deadline, and stalled until that sleep ended.
func TestWheelShortWaitNotBlockedByLongSleep(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		globalWheel.wait(time.Now().Add(300 * time.Millisecond))
	}()
	time.Sleep(10 * time.Millisecond) // let the pacer start its long sleep

	start := time.Now()
	globalWheel.wait(start.Add(5 * time.Millisecond))
	if got := time.Since(start); got > 50*time.Millisecond {
		t.Errorf("short wait stalled %v behind a long sleep", got)
	}
	wg.Wait()
}

func TestWheelConcurrentWaitsOverlap(t *testing.T) {
	// 20 concurrent 20ms waits must finish in ~20ms, not 400ms.
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			globalWheel.wait(time.Now().Add(20 * time.Millisecond))
		}()
	}
	wg.Wait()
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("concurrent waits serialized: %v", got)
	}
}

func TestWheelPacerExitsWhenIdle(t *testing.T) {
	globalWheel.wait(time.Now().Add(2 * time.Millisecond))
	deadline := time.Now().Add(time.Second)
	for {
		globalWheel.mu.Lock()
		running := globalWheel.running
		queued := globalWheel.q.Len()
		globalWheel.mu.Unlock()
		if !running && queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pacer still running with %d queued after idle", queued)
		}
		time.Sleep(time.Millisecond)
	}
}
