// Package proxy implements Sorrento's stateless gateway tier. A Proxy
// terminates the thin client protocol (wire.PRead/PWrite/PCommit/...:
// path-and-offset requests with no membership, placement, or 2PC knowledge)
// and speaks the full Sorrento protocol to providers through an embedded
// core.Client — so every retry, read-failover, and two-phase-commit
// hardening in core is reused unchanged. The paper's clients cap deployment
// at thousands of protocol-aware machines; a gateway tier lets millions of
// dumb connections share a handful of protocol-aware nodes.
//
// A proxy keeps only soft state: open write sessions (an uncommitted shadow
// handle per client session) and a small TTL cache of read handles that
// coalesces concurrent reads of the same file. Nothing a proxy holds is
// needed to recover acked data — a commit is acked only after the 2PC
// pipeline made it durable on providers — so N proxies run behind any load
// balancer and a killed proxy loses nothing a client cannot redo by
// reconnecting and rewriting its uncommitted session.
package proxy

import (
	"context"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes a proxy.
type Config struct {
	// Client configures the embedded full-protocol client (namespace node,
	// retry policy, membership tuning, observability). Required:
	// Client.Namespace.
	Client core.Config
	// SessionTTL expires write sessions idle this long (modeled time); the
	// uncommitted shadow state is dropped and the thin client must rewrite.
	// Default 5 minutes.
	SessionTTL time.Duration
	// ReadTTL bounds how long a cached read handle serves reads before the
	// proxy re-resolves the file (close-to-open staleness through other
	// proxies). Default 2 seconds.
	ReadTTL time.Duration
	// DefaultAttrs are the attributes for files created through the thin
	// protocol (PWrite.ReplDeg > 0 overrides the replication degree).
	// Zero value means wire.DefaultAttrs.
	DefaultAttrs wire.FileAttrs
}

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.ReadTTL <= 0 {
		c.ReadTTL = 2 * time.Second
	}
	if c.DefaultAttrs.ReplDeg == 0 {
		c.DefaultAttrs = wire.DefaultAttrs()
	}
	return c
}

// Proxy is one stateless gateway node.
type Proxy struct {
	name  string
	clock *simtime.Clock
	cfg   Config
	cl    *core.Client

	mu       sync.Mutex
	sessions map[sessKey]*session
	reads    map[string]*readHandle
	closed   bool

	requests atomic.Uint64
	errors   atomic.Uint64

	m proxyMetrics

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type sessKey struct{ sess, path string }

// session is one thin client's open write session: soft state only.
type session struct {
	mu   sync.Mutex // serializes this session's writes; sessions are parallel
	f    *core.File
	last atomic.Int64 // modeled nanos of last use
}

// readHandle is a cached read-only file handle shared by concurrent PReads
// of the same path (read coalescing: one open, one index fetch, shared
// owner cache). ready gates waiters on the singleflight open.
type readHandle struct {
	ready  chan struct{}
	f      *core.File
	err    error
	opened time.Duration // modeled time of open, for ReadTTL
}

// proxyMetrics holds the per-RPC latency histograms and counters of the
// thin-protocol hot path. Nil handles no-op when observability is off.
type proxyMetrics struct {
	read, write, commit, stat, admin *obs.Histogram
	coalesced                        *obs.Counter
}

// New joins the network as node `name` and starts serving the thin
// protocol on that endpoint. The embedded core client owns the endpoint;
// the proxy installs itself as its request handler, so one proxy occupies
// exactly one node identity.
func New(name string, clock *simtime.Clock, network transport.Network, cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	cl, err := core.NewClient(name, clock, network, cfg.Client)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		name:     name,
		clock:    clock,
		cfg:      cfg,
		cl:       cl,
		sessions: make(map[sessKey]*session),
		reads:    make(map[string]*readHandle),
		stop:     make(chan struct{}),
	}
	if reg := cfg.Client.Obs.Reg(); reg != nil {
		node := obs.L("node", name)
		h := func(op string) *obs.Histogram {
			return reg.Histogram("sorrento_proxy_request_seconds", nil, node, obs.L("op", op))
		}
		p.m = proxyMetrics{
			read:      h("read"),
			write:     h("write"),
			commit:    h("commit"),
			stat:      h("stat"),
			admin:     h("admin"),
			coalesced: reg.Counter("sorrento_proxy_reads_coalesced_total", node),
		}
		reg.GaugeFunc("sorrento_proxy_sessions", func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.sessions))
		}, node)
	}
	cl.SetRequestHandler(pxHandler{p})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sweep()
	}()
	return p, nil
}

// ID returns the proxy's node identity.
func (p *Proxy) ID() wire.NodeID { return wire.NodeID(p.name) }

// Client exposes the embedded full-protocol client (tests, harness).
func (p *Proxy) Client() *core.Client { return p.cl }

// Close shuts the proxy down gracefully: open sessions are aborted (their
// provider-side shadows dropped) and the endpoint leaves the network.
func (p *Proxy) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.mu.Lock()
	p.closed = true
	sessions := p.sessions
	p.sessions = map[sessKey]*session{}
	p.reads = map[string]*readHandle{}
	p.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.f != nil {
			s.f.Drop()
		}
		s.mu.Unlock()
	}
	p.cl.Close()
}

// Kill simulates a crash: the endpoint goes silent immediately and all
// soft state is abandoned in place. Provider-side shadows of open sessions
// are left to expire via their TTL; acked commits are unaffected.
func (p *Proxy) Kill() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cl.Close()
	p.wg.Wait()
}

// sweep expires idle write sessions and stale read handles.
func (p *Proxy) sweep() {
	interval := p.cfg.SessionTTL / 4
	if interval <= 0 {
		interval = time.Minute
	}
	if floor := p.clock.Modeled(10 * time.Millisecond); floor > interval {
		interval = floor
	}
	t := p.clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		now := p.clock.Now()
		var drop []*session
		p.mu.Lock()
		for k, s := range p.sessions {
			if now-time.Duration(s.last.Load()) > p.cfg.SessionTTL {
				delete(p.sessions, k)
				drop = append(drop, s)
			}
		}
		for path, rh := range p.reads {
			select {
			case <-rh.ready:
				if now-rh.opened > p.cfg.ReadTTL {
					delete(p.reads, path)
				}
			default: // open still in flight
			}
		}
		p.mu.Unlock()
		for _, s := range drop {
			s.mu.Lock()
			if s.f != nil {
				s.f.Drop()
			}
			s.mu.Unlock()
		}
	}
}

// pxHandler dispatches the thin protocol plus the proxy's admin surface on
// the embedded client's endpoint (installed via SetRequestHandler).
type pxHandler struct{ p *Proxy }

func (h pxHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	p := h.p
	switch m := req.(type) {
	case wire.PRead:
		return p.timed(p.m.read, func() any { return p.handleRead(m) }), nil
	case wire.PWrite:
		return p.timed(p.m.write, func() any { return p.handleWrite(m) }), nil
	case wire.PCommit:
		return p.timed(p.m.commit, func() any { return p.handleCommit(m) }), nil
	case wire.PAbort:
		return p.timed(p.m.commit, func() any { return p.handleAbort(m) }), nil
	case wire.PStat:
		return p.timed(p.m.stat, func() any { return p.handleStat(m) }), nil
	case wire.PMkdir:
		return p.timed(p.m.stat, func() any { return p.genResp(p.cl.Mkdir(m.Path)) }), nil
	case wire.PRemove:
		return p.timed(p.m.stat, func() any { return p.handleRemove(m) }), nil
	case wire.ProxyStatus:
		return p.timed(p.m.admin, func() any { return p.status() }), nil
	default:
		return nil, transport.ErrNoHandler
	}
}

func (pxHandler) HandleCast(wire.NodeID, any) {}

// timed wraps one request with the per-op latency histogram and the
// request counter.
func (p *Proxy) timed(h *obs.Histogram, fn func() any) any {
	p.requests.Add(1)
	start := p.clock.Now()
	resp := fn()
	h.ObserveDuration(p.clock.Now() - start)
	return resp
}

func (p *Proxy) genResp(err error) wire.GenericResp {
	if err != nil {
		p.errors.Add(1)
		return wire.GenericResp{Err: err.Error()}
	}
	return wire.GenericResp{OK: true}
}

func (p *Proxy) status() wire.ProxyStatusResp {
	p.mu.Lock()
	sessions, reads := len(p.sessions), len(p.reads)
	p.mu.Unlock()
	return wire.ProxyStatusResp{
		OK:        true,
		Node:      wire.NodeID(p.name),
		Sessions:  sessions,
		Reads:     reads,
		Requests:  p.requests.Load(),
		Errors:    p.errors.Load(),
		Providers: p.cl.Members().Len(),
	}
}

// ---------------------------------------------------------------------------
// Reads

func (p *Proxy) handleRead(m wire.PRead) wire.PReadResp {
	if m.Length < 0 || m.Length > 16<<20 {
		p.errors.Add(1)
		return wire.PReadResp{Err: "proxy: read length out of range"}
	}
	if m.Version != 0 {
		// Pinned-version reads are rare; serve them uncached.
		f, err := p.cl.OpenVersion(m.Path, m.Version)
		if err != nil {
			p.errors.Add(1)
			return wire.PReadResp{Err: err.Error()}
		}
		defer f.Drop()
		return p.readFrom(f, m)
	}
	f, err := p.readHandleFor(m.Path)
	if err != nil {
		p.errors.Add(1)
		return wire.PReadResp{Err: err.Error()}
	}
	resp := p.readFrom(f, m)
	if !resp.OK {
		// The cached handle may be stale (file rewritten, old version
		// reclaimed, owner moved by a drain). Re-resolve once and retry.
		p.invalidate(m.Path)
		f, err = p.readHandleFor(m.Path)
		if err != nil {
			p.errors.Add(1)
			return wire.PReadResp{Err: err.Error()}
		}
		resp = p.readFrom(f, m)
		if !resp.OK {
			p.errors.Add(1)
		}
	}
	return resp
}

func (p *Proxy) readFrom(f *core.File, m wire.PRead) wire.PReadResp {
	buf := make([]byte, m.Length)
	n, err := f.ReadAt(buf, m.Offset)
	if err != nil && err != io.EOF {
		return wire.PReadResp{Err: err.Error()}
	}
	return wire.PReadResp{OK: true, Version: f.Version(), Data: buf[:n], EOF: err == io.EOF}
}

// readHandleFor returns the path's cached read handle, opening it once for
// all concurrent requesters (read coalescing).
func (p *Proxy) readHandleFor(path string) (*core.File, error) {
	p.mu.Lock()
	rh, ok := p.reads[path]
	if ok {
		select {
		case <-rh.ready:
			if rh.err == nil && p.clock.Now()-rh.opened <= p.cfg.ReadTTL {
				p.mu.Unlock()
				p.m.coalesced.Inc()
				return rh.f, nil
			}
			delete(p.reads, path) // expired or failed; reopen below
			ok = false
		default:
			// Open in flight: wait for it outside the lock.
		}
	}
	if !ok {
		rh = &readHandle{ready: make(chan struct{})}
		p.reads[path] = rh
		p.mu.Unlock()
		rh.f, rh.err = p.cl.Open(path)
		rh.opened = p.clock.Now()
		close(rh.ready)
		if rh.err != nil {
			p.invalidate(path)
		}
		return rh.f, rh.err
	}
	p.mu.Unlock()
	<-rh.ready
	if rh.err != nil {
		return nil, rh.err
	}
	p.m.coalesced.Inc()
	return rh.f, nil
}

// invalidate drops the cached read handle for path (after commits and
// removes through this proxy, and on read failures).
func (p *Proxy) invalidate(path string) {
	p.mu.Lock()
	delete(p.reads, path)
	p.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Writes

func (p *Proxy) handleWrite(m wire.PWrite) wire.PWriteResp {
	s, err := p.sessionFor(m)
	if err != nil {
		p.errors.Add(1)
		return wire.PWriteResp{Err: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		p.errors.Add(1)
		return wire.PWriteResp{Err: "proxy: session closed"}
	}
	n, err := s.f.WriteAt(m.Data, m.Offset)
	s.last.Store(int64(p.clock.Now()))
	if err != nil {
		p.errors.Add(1)
		return wire.PWriteResp{Err: err.Error()}
	}
	return wire.PWriteResp{OK: true, N: n}
}

// sessionFor returns the write session for (sess, path), lazily opening it
// on first use. The open happens under the session's own lock so racing
// first writes of one session cannot double-create the file.
func (p *Proxy) sessionFor(m wire.PWrite) (*session, error) {
	k := sessKey{m.Sess, m.Path}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, core.ErrClosed
	}
	s, ok := p.sessions[k]
	if !ok {
		s = &session{}
		s.last.Store(int64(p.clock.Now()))
		p.sessions[k] = s
	}
	p.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		return s, nil
	}
	var (
		f   *core.File
		err error
	)
	if m.Create {
		attrs := p.cfg.DefaultAttrs
		if m.ReplDeg > 0 {
			attrs.ReplDeg = m.ReplDeg
		}
		f, err = p.cl.Create(m.Path, attrs)
		if err != nil && strings.Contains(err.Error(), "exists") {
			// Another session (possibly through another proxy) created it
			// first; fall back to a write session on the existing file.
			f, err = p.cl.OpenWrite(m.Path)
		}
	} else {
		f, err = p.cl.OpenWrite(m.Path)
	}
	if err != nil {
		p.mu.Lock()
		delete(p.sessions, k)
		p.mu.Unlock()
		return nil, err
	}
	s.f = f
	return s, nil
}

func (p *Proxy) takeSession(sess, path string) *session {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := sessKey{sess, path}
	s := p.sessions[k]
	delete(p.sessions, k)
	return s
}

func (p *Proxy) handleCommit(m wire.PCommit) wire.PCommitResp {
	s := p.takeSession(m.Sess, m.Path)
	if s == nil {
		p.errors.Add(1)
		return wire.PCommitResp{Err: "proxy: unknown session " + m.Sess + " for " + m.Path}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		p.errors.Add(1)
		return wire.PCommitResp{Err: "proxy: session closed"}
	}
	err := s.f.Commit(core.CommitOptions{})
	if err != nil {
		// The session is not reusable after a failed commit: drop the
		// shadows so the thin client can start a fresh session and rewrite.
		s.f.Drop()
		s.f = nil
		p.errors.Add(1)
		return wire.PCommitResp{Err: err.Error()}
	}
	resp := wire.PCommitResp{OK: true, Version: s.f.Version(), Size: s.f.Size()}
	s.f.Drop() // committed; release the handle without a second commit
	s.f = nil
	p.invalidate(m.Path)
	return resp
}

func (p *Proxy) handleAbort(m wire.PAbort) wire.GenericResp {
	s := p.takeSession(m.Sess, m.Path)
	if s == nil {
		return wire.GenericResp{OK: true} // nothing to abort
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		s.f.Drop()
		s.f = nil
	}
	return wire.GenericResp{OK: true}
}

// ---------------------------------------------------------------------------
// Namespace passthrough

func (p *Proxy) handleStat(m wire.PStat) wire.PStatResp {
	entry, err := p.cl.Stat(m.Path)
	if err != nil {
		p.errors.Add(1)
		return wire.PStatResp{Err: err.Error()}
	}
	return wire.PStatResp{OK: true, Entry: entry}
}

func (p *Proxy) handleRemove(m wire.PRemove) wire.GenericResp {
	err := p.cl.Remove(m.Path)
	if err == nil {
		p.invalidate(m.Path)
	}
	return p.genResp(err)
}
