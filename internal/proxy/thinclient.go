package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ThinClient speaks the thin request protocol to one or more proxies. It
// holds no membership view, no location cache, and no commit machinery —
// just a transport endpoint and the proxy addresses. A transport failure is
// retried with backoff against the next proxy in the list, which is exactly
// what "the client reconnects through the load balancer" means over the
// simulated fabric.
type ThinClient struct {
	clock   *simtime.Clock
	ep      transport.Endpoint
	proxies []wire.NodeID
	rr      atomic.Uint64

	// Timeout bounds one request attempt; Attempts caps transport-level
	// retries (each moving to the next proxy); Backoff spaces them.
	Timeout  time.Duration
	Attempts int
	Backoff  time.Duration
}

// NewThinClient wraps an existing endpoint. Most callers want Dial.
func NewThinClient(clock *simtime.Clock, ep transport.Endpoint, proxies ...wire.NodeID) *ThinClient {
	return &ThinClient{
		clock:    clock,
		ep:       ep,
		proxies:  proxies,
		Timeout:  5 * time.Second,
		Attempts: 4,
		Backoff:  100 * time.Millisecond,
	}
}

// inertHandler ignores all inbound traffic: thin clients only ever issue
// requests. In particular, membership heartbeats multicast on the fabric
// are dropped here — that is the point of the tier.
type inertHandler struct{}

func (inertHandler) HandleCall(context.Context, wire.NodeID, any) (any, error) {
	return nil, transport.ErrNoHandler
}
func (inertHandler) HandleCast(wire.NodeID, any) {}

// Dial joins the network as node `name` and returns a thin client bound to
// the given proxies.
func Dial(clock *simtime.Clock, network transport.Network, name string, proxies ...wire.NodeID) (*ThinClient, error) {
	if len(proxies) == 0 {
		return nil, fmt.Errorf("proxy: Dial %s: no proxies given", name)
	}
	ep, err := network.Join(wire.NodeID(name), inertHandler{})
	if err != nil {
		return nil, err
	}
	return NewThinClient(clock, ep, proxies...), nil
}

// Close leaves the network.
func (t *ThinClient) Close() { t.ep.Close() }

// call sends one request. The client is sticky: it keeps talking to the
// same proxy (so a write session's requests all land where the session
// lives) and fails over to the next proxy only on a transport error —
// reconnecting through the load balancer. Protocol-level errors (resp.Err
// set) are returned to the caller as-is; only the transport layer is
// retried, so non-idempotent requests are never silently replayed after a
// definitive answer.
func (t *ThinClient) call(req any) (any, error) {
	attempts := t.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	timeout := t.Timeout
	if floor := t.clock.Modeled(50 * time.Millisecond); floor > timeout {
		timeout = floor
	}
	cur := t.rr.Load()
	var lastErr error
	for i := 0; i < attempts; i++ {
		target := t.proxies[int(cur+uint64(i))%len(t.proxies)]
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		resp, err := t.ep.Call(ctx, target, req)
		cancel()
		if err == nil {
			if i > 0 {
				t.rr.Store(cur + uint64(i)) // stick to the proxy that answered
			}
			return resp, nil
		}
		lastErr = err
		if i+1 < attempts && t.Backoff > 0 {
			t.clock.Sleep(t.Backoff << uint(i))
		}
	}
	return nil, lastErr
}

// Read reads up to length bytes at off, returning the data, the version it
// came from, and whether the read hit end of file.
func (t *ThinClient) Read(path string, off, length int64) ([]byte, uint64, bool, error) {
	resp, err := t.call(wire.PRead{Path: path, Offset: off, Length: length})
	if err != nil {
		return nil, 0, false, err
	}
	r, ok := resp.(wire.PReadResp)
	if !ok {
		return nil, 0, false, fmt.Errorf("proxy: unexpected read response %T", resp)
	}
	if !r.OK {
		return nil, 0, false, errors.New(r.Err)
	}
	return r.Data, r.Version, r.EOF, nil
}

// ReadVersion reads from a pinned committed version instead of the latest;
// the proxy bypasses its read cache for pinned reads.
func (t *ThinClient) ReadVersion(path string, off, length int64, version uint64) ([]byte, error) {
	resp, err := t.call(wire.PRead{Path: path, Offset: off, Length: length, Version: version})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(wire.PReadResp)
	if !ok {
		return nil, fmt.Errorf("proxy: unexpected read response %T", resp)
	}
	if !r.OK {
		return nil, errors.New(r.Err)
	}
	return r.Data, nil
}

// Write writes data at off within the session sess on path. The first
// write of a session opens it; create makes the file when absent.
func (t *ThinClient) Write(sess, path string, off int64, data []byte, create bool, replDeg int) error {
	resp, err := t.call(wire.PWrite{Sess: sess, Path: path, Offset: off, Data: data, Create: create, ReplDeg: replDeg})
	if err != nil {
		return err
	}
	r, ok := resp.(wire.PWriteResp)
	if !ok {
		return fmt.Errorf("proxy: unexpected write response %T", resp)
	}
	if !r.OK {
		return errors.New(r.Err)
	}
	if r.N != len(data) {
		return fmt.Errorf("proxy: short write %d/%d", r.N, len(data))
	}
	return nil
}

// Commit publishes the session's writes; data is durable only after Commit
// returns the new version. A lost-response commit surfaces as an error
// ("unknown session"): the caller must treat the write as not acked and
// redo it under a fresh session name.
func (t *ThinClient) Commit(sess, path string) (uint64, int64, error) {
	resp, err := t.call(wire.PCommit{Sess: sess, Path: path})
	if err != nil {
		return 0, 0, err
	}
	r, ok := resp.(wire.PCommitResp)
	if !ok {
		return 0, 0, fmt.Errorf("proxy: unexpected commit response %T", resp)
	}
	if !r.OK {
		return 0, 0, errors.New(r.Err)
	}
	return r.Version, r.Size, nil
}

// Abort discards the session's uncommitted writes.
func (t *ThinClient) Abort(sess, path string) error {
	resp, err := t.call(wire.PAbort{Sess: sess, Path: path})
	if err != nil {
		return err
	}
	if r, ok := resp.(wire.GenericResp); ok && !r.OK {
		return errors.New(r.Err)
	}
	return nil
}

// Stat resolves path to its file entry.
func (t *ThinClient) Stat(path string) (wire.FileEntry, error) {
	resp, err := t.call(wire.PStat{Path: path})
	if err != nil {
		return wire.FileEntry{}, err
	}
	r, ok := resp.(wire.PStatResp)
	if !ok {
		return wire.FileEntry{}, fmt.Errorf("proxy: unexpected stat response %T", resp)
	}
	if !r.OK {
		return wire.FileEntry{}, errors.New(r.Err)
	}
	return r.Entry, nil
}

// Mkdir creates a directory.
func (t *ThinClient) Mkdir(path string) error {
	return t.generic(wire.PMkdir{Path: path})
}

// Remove unlinks a file.
func (t *ThinClient) Remove(path string) error {
	return t.generic(wire.PRemove{Path: path})
}

func (t *ThinClient) generic(req any) error {
	resp, err := t.call(req)
	if err != nil {
		return err
	}
	r, ok := resp.(wire.GenericResp)
	if !ok {
		return fmt.Errorf("proxy: unexpected response %T", resp)
	}
	if !r.OK {
		return errors.New(r.Err)
	}
	return nil
}

// PutFile writes data as one commit under a fresh session, chunking large
// payloads, and returns the committed version.
func (t *ThinClient) PutFile(path string, data []byte, replDeg int) (uint64, error) {
	sess := fmt.Sprintf("%s#%d", t.ep.ID(), t.rr.Add(1))
	const chunk = 256 << 10
	if len(data) == 0 {
		if err := t.Write(sess, path, 0, nil, true, replDeg); err != nil {
			return 0, err
		}
	}
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := t.Write(sess, path, int64(off), data[off:end], off == 0, replDeg); err != nil {
			t.Abort(sess, path)
			return 0, err
		}
	}
	ver, _, err := t.Commit(sess, path)
	return ver, err
}

// GetFile reads the whole file.
func (t *ThinClient) GetFile(path string) ([]byte, error) {
	const chunk = 256 << 10
	var out []byte
	for off := int64(0); ; {
		data, _, eof, err := t.Read(path, off, chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		off += int64(len(data))
		if eof || len(data) == 0 {
			return out, nil
		}
	}
}
