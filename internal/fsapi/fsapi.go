// Package fsapi defines the minimal file-system interface the benchmark
// harness drives identically against Sorrento, the NFS-like baseline, and
// the PVFS-like baseline, so every experiment compares the systems on the
// same operations.
package fsapi

import "io"

// File is an open file handle.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Close releases the handle, committing pending changes where the
	// system versions them.
	Close() error
	// Size returns the current logical size.
	Size() int64
}

// System is a mountable file system.
type System interface {
	// Name identifies the system in reports ("sorrento-(8,2)", "nfs", …).
	Name() string
	// Mkdir creates a directory.
	Mkdir(path string) error
	// Create creates a new file open for writing.
	Create(path string) (File, error)
	// Open opens an existing file read-only.
	Open(path string) (File, error)
	// OpenWrite opens an existing file for writing.
	OpenWrite(path string) (File, error)
	// Remove unlinks a file.
	Remove(path string) error
}
