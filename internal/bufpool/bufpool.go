// Package bufpool provides process-wide power-of-two size-class byte-buffer
// pools. It began life as segstore's shadow-extent recycler (PR 1) and is
// shared by every allocation-sensitive layer since: segstore shadow extents,
// the wire codec's marshal buffers, and the TCP transport's frame buffers.
//
// Ownership invariant: every pooled slice handed out by Get is an
// array-prefix slice of its backing array, and exactly one live slice may
// reference that array when it is Put back. Callers that subslice a pooled
// buffer must either keep the prefix (which inherits the array) or copy.
package bufpool

import "sync"

const (
	// MinClass is the smallest pooled class (512 B).
	MinClass = 9
	// MaxClass is the largest pooled class (64 MB); larger buffers fall
	// through to the GC.
	MaxClass = 26
)

var pools [MaxClass - MinClass + 1]sync.Pool

// class returns the smallest class whose size holds n bytes.
func class(n int) int {
	c := MinClass
	for n > 1<<c {
		c++
	}
	return c
}

// Get returns a length-n buffer backed by a pooled array. The contents are
// NOT zeroed; callers must overwrite all n bytes.
func Get(n int) []byte {
	if n == 0 {
		return nil
	}
	if n > 1<<MaxClass {
		return make([]byte, n)
	}
	c := class(n)
	if p, _ := pools[c-MinClass].Get().(*[]byte); p != nil {
		return (*p)[:n]
	}
	return make([]byte, n, 1<<c)
}

// Put recycles a buffer obtained from Get once no live slice references its
// array. Buffers whose capacity is not an exact class size (e.g. grown by
// append past the class) are left to the GC.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<MinClass || c > 1<<MaxClass {
		return
	}
	cls := class(c)
	if 1<<cls != c {
		return
	}
	b = b[:c]
	pools[cls-MinClass].Put(&b)
}
