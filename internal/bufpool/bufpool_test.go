package bufpool

import "testing"

func TestGetSizesAndClasses(t *testing.T) {
	for _, tc := range []struct{ n, wantCap int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096}, {5000, 8192},
	} {
		b := Get(tc.n)
		if len(b) != tc.n || cap(b) != tc.wantCap {
			t.Errorf("Get(%d): len %d cap %d, want len %d cap %d",
				tc.n, len(b), cap(b), tc.n, tc.wantCap)
		}
		Put(b)
	}
	if b := Get(0); b != nil {
		t.Errorf("Get(0) = %v", b)
	}
}

func TestOversizeAndOddCapsAreDropped(t *testing.T) {
	huge := Get(1<<MaxClass + 1)
	if len(huge) != 1<<MaxClass+1 {
		t.Error("oversize Get wrong length")
	}
	Put(huge)              // dropped, not recycled — must not panic
	Put(make([]byte, 700)) // odd capacity — dropped
	Put(nil)
}

func TestRecycleRoundTrip(t *testing.T) {
	b := Get(1024)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(100)
	if cap(c) != 1024 && cap(c) != 512 {
		// Either the recycled array (same P) or a fresh one; both are legal.
		t.Logf("Get after Put returned cap %d", cap(c))
	}
	Put(c)
}
