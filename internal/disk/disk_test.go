package disk

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestServiceTimeSmallRequest(t *testing.T) {
	m := SCSI10K()
	// A 4KB read is dominated by positioning: ~8ms.
	st := m.ServiceTime(4096)
	if st < 7*time.Millisecond || st > 10*time.Millisecond {
		t.Errorf("ServiceTime(4KB) = %v", st)
	}
}

func TestServiceTimeLargeTransferDominatedByBandwidth(t *testing.T) {
	m := SCSI10K()
	st := m.ServiceTime(50 << 20) // 50MB at 50MB/s ≈ 1s + modest reseeks
	if st < time.Second || st > 1300*time.Millisecond {
		t.Errorf("ServiceTime(50MB) = %v", st)
	}
}

func TestServiceTimeMonotonic(t *testing.T) {
	m := SCSI10K()
	prev := time.Duration(0)
	for _, n := range []int64{0, 1 << 10, 1 << 16, 1 << 20, 1 << 24, 1 << 28} {
		st := m.ServiceTime(n)
		if st < prev {
			t.Errorf("ServiceTime(%d) = %v < previous %v", n, st, prev)
		}
		prev = st
	}
}

func TestServiceTimeNegativeClamped(t *testing.T) {
	m := SCSI10K()
	if m.ServiceTime(-5) != m.ServiceTime(0) {
		t.Error("negative size not clamped")
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	d := New(simtime.NewClock(1), "n1", SCSI10K(), 1000)
	if err := d.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 600 || d.FreeBytes() != 400 {
		t.Errorf("used=%d free=%d", d.Used(), d.FreeBytes())
	}
	if err := d.Alloc(500); err == nil {
		t.Error("over-capacity Alloc succeeded")
	}
	d.Free(200)
	if d.Used() != 400 {
		t.Errorf("used after free = %d", d.Used())
	}
	if got := d.UsedFrac(); got != 0.4 {
		t.Errorf("UsedFrac = %v", got)
	}
	d.Free(10000)
	if d.Used() != 0 {
		t.Errorf("Free past zero left used=%d", d.Used())
	}
}

func TestCapacity(t *testing.T) {
	d := New(simtime.NewClock(1), "n1", SCSI10K(), 12345)
	if d.Capacity() != 12345 {
		t.Errorf("Capacity = %d", d.Capacity())
	}
}

func TestReadWriteChargeArm(t *testing.T) {
	clock := simtime.NewClock(0.001)
	d := New(clock, "n1", SCSI10K(), 1<<30)
	d.Read(1 << 20)
	d.Write(1 << 20)
	busy, n := d.Resource().BusyTime()
	if n != 2 || busy <= 0 {
		t.Errorf("arm busy=%v n=%d", busy, n)
	}
}

func TestZeroCapacityUsedFrac(t *testing.T) {
	d := New(simtime.NewClock(1), "n1", SCSI10K(), 0)
	if d.UsedFrac() != 0 {
		t.Error("zero-capacity UsedFrac != 0")
	}
}
