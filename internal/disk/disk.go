// Package disk models a storage node's locally attached disk: a FIFO
// device charging seek + rotational + transfer time per request, plus
// capacity accounting. The paper's clusters use 10K rpm SCSI drives
// (~5 ms seek) behind software RAID-0; Model captures those parameters.
//
// Actual segment bytes are held by internal/segstore; this package only
// prices the I/O and tracks space.
package disk

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simtime"
)

// Model describes drive hardware.
type Model struct {
	// SeekTime is the average positioning time per request.
	SeekTime time.Duration
	// RotationalLatency is the average rotational delay (half a revolution).
	RotationalLatency time.Duration
	// TransferRate is the sustained media rate in bytes/second.
	TransferRate float64
	// SequentialThreshold is the request size above which positioning costs
	// are charged once per chunk of this size rather than once per request,
	// approximating mostly-sequential large transfers.
	SequentialThreshold int64
}

// SCSI10K returns the paper-era drive: 10K rpm (3 ms rotational average),
// ~5 ms seek, ~50 MB/s sustained.
func SCSI10K() Model {
	return Model{
		SeekTime:            5 * time.Millisecond,
		RotationalLatency:   3 * time.Millisecond,
		TransferRate:        50e6,
		SequentialThreshold: 8 << 20,
	}
}

// ServiceTime returns the modeled device time for one request of n bytes.
func (m Model) ServiceTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	pos := m.SeekTime + m.RotationalLatency
	if m.SequentialThreshold > 0 && n > m.SequentialThreshold {
		// Large transfers re-seek occasionally (track/cylinder switches).
		chunks := (n + m.SequentialThreshold - 1) / m.SequentialThreshold
		pos = time.Duration(chunks) * (m.SeekTime + m.RotationalLatency) / 2
	}
	xfer := time.Duration(0)
	if m.TransferRate > 0 {
		xfer = time.Duration(float64(n) / m.TransferRate * float64(time.Second))
	}
	return pos + xfer
}

// Disk is one node's disk: a cost model, a FIFO arm, and a space ledger.
type Disk struct {
	model Model
	arm   *simtime.Resource

	mu       sync.Mutex
	capacity int64
	used     int64
}

// New returns a disk of the given capacity charged against clock.
func New(clock *simtime.Clock, name string, model Model, capacity int64) *Disk {
	return &Disk{
		model:    model,
		arm:      simtime.NewResource(clock, name+"/disk"),
		capacity: capacity,
	}
}

// Resource exposes the disk arm so load samplers can include disk I/O wait.
func (d *Disk) Resource() *simtime.Resource { return d.arm }

// Read charges a read of n bytes synchronously (a cache miss).
func (d *Disk) Read(n int64) { d.arm.Use(d.model.ServiceTime(n)) }

// Write charges a write of n bytes synchronously.
func (d *Disk) Write(n int64) { d.arm.Use(d.model.ServiceTime(n)) }

// WriteAsync books a write-back flush of n bytes: the disk arm is occupied
// (it shows up in utilization and delays subsequent synchronous reads) but
// the caller does not wait, modeling the native file system's page cache
// absorbing writes off the request path.
func (d *Disk) WriteAsync(n int64) { d.arm.Reserve(d.model.ServiceTime(n)) }

// Alloc reserves n bytes of capacity. It fails when the disk would
// overflow; Sorrento's placement keeps providers from reaching that point,
// so hitting this error indicates imbalance.
func (d *Disk) Alloc(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+n > d.capacity {
		return fmt.Errorf("disk: out of space: used %d + %d > capacity %d", d.used, n, d.capacity)
	}
	d.used += n
	return nil
}

// Free releases n bytes of capacity.
func (d *Disk) Free(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.used -= n
	if d.used < 0 {
		d.used = 0
	}
}

// Used returns the bytes currently allocated.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Capacity returns the disk's total capacity.
func (d *Disk) Capacity() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity
}

// FreeBytes returns remaining capacity.
func (d *Disk) FreeBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity - d.used
}

// UsedFrac returns the consumed fraction in [0,1].
func (d *Disk) UsedFrac() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.capacity <= 0 {
		return 0
	}
	return float64(d.used) / float64(d.capacity)
}
