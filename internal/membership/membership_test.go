package membership

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

func newMgr(scale float64) (*Manager, *simtime.Clock) {
	clock := simtime.NewClock(scale)
	return NewManager(clock, Config{HeartbeatInterval: time.Second, FailureFactor: 5}), clock
}

func TestObserveHeartbeatAddsMember(t *testing.T) {
	m, _ := newMgr(0.001)
	m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: 1, Load: wire.LoadInfo{Load: 0.3}})
	if !m.IsLive("p1") || m.Len() != 1 {
		t.Fatal("p1 not live after heartbeat")
	}
	load, ok := m.Load("p1")
	if !ok || load.Load != 0.3 {
		t.Errorf("Load = %+v %v", load, ok)
	}
}

func TestStaleSeqDoesNotRegressLoad(t *testing.T) {
	m, _ := newMgr(0.001)
	m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: 5, Load: wire.LoadInfo{Load: 0.9}})
	m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: 3, Load: wire.LoadInfo{Load: 0.1}})
	load, _ := m.Load("p1")
	if load.Load != 0.9 {
		t.Errorf("stale heartbeat overwrote load: %v", load.Load)
	}
}

func TestEvictionAfterSilence(t *testing.T) {
	m, clock := newMgr(0.0005)
	m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: 1})
	m.Start()
	defer m.Stop()
	// 5×1s failure window; sleep well past it (modeled).
	clock.Sleep(10 * time.Second)
	deadline := time.After(2 * time.Second)
	for m.IsLive("p1") {
		select {
		case <-deadline:
			t.Fatal("p1 not evicted after silence")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestHeartbeatsKeepMemberAlive(t *testing.T) {
	m, clock := newMgr(0.001)
	m.Start()
	defer m.Stop()
	for i := 0; i < 10; i++ {
		m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: uint64(i)})
		clock.Sleep(time.Second)
	}
	if !m.IsLive("p1") {
		t.Fatal("p1 evicted despite heartbeats")
	}
}

func TestSubscribeEvents(t *testing.T) {
	m, clock := newMgr(0.0005)
	var mu sync.Mutex
	var events []Event
	m.Subscribe(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: 1})
	m.Start()
	defer m.Stop()
	clock.Sleep(10 * time.Second)
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("got %d events, want join+departure", n)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !events[0].Joined || events[0].Node != "p1" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Joined || events[1].Node != "p1" {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestMarkDead(t *testing.T) {
	m, _ := newMgr(0.001)
	m.ObserveHeartbeat(wire.Heartbeat{From: "p1", Seq: 1})
	m.MarkDead("p1")
	if m.IsLive("p1") {
		t.Fatal("p1 live after MarkDead")
	}
	// Idempotent.
	m.MarkDead("p1")
}

func TestHomeOfTracksRing(t *testing.T) {
	m, _ := newMgr(0.001)
	seg := ids.New()
	if m.HomeOf(seg) != "" {
		t.Error("HomeOf on empty view")
	}
	for _, p := range []wire.NodeID{"p1", "p2", "p3"} {
		m.ObserveHeartbeat(wire.Heartbeat{From: p, Seq: 1})
	}
	home := m.HomeOf(seg)
	if home == "" {
		t.Fatal("no home host")
	}
	// Removing a different node must not move this segment's home.
	var other wire.NodeID
	for _, p := range m.Live() {
		if p != home {
			other = p
			break
		}
	}
	m.MarkDead(other)
	if got := m.HomeOf(seg); got != home {
		t.Errorf("home moved from %v to %v when %v died", home, got, other)
	}
}

func TestLiveSorted(t *testing.T) {
	m, _ := newMgr(0.001)
	for _, p := range []wire.NodeID{"p3", "p1", "p2"} {
		m.ObserveHeartbeat(wire.Heartbeat{From: p, Seq: 1})
	}
	live := m.Live()
	if len(live) != 3 || live[0] != "p1" || live[2] != "p3" {
		t.Errorf("Live = %v", live)
	}
	loads := m.Loads()
	if len(loads) != 3 {
		t.Errorf("Loads len = %d", len(loads))
	}
}

func TestAnnouncerOverSimnet(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fabric := simnet.New(clock, simnet.FastEthernet())

	mgr := NewManager(clock, Config{HeartbeatInterval: time.Second, FailureFactor: 5})
	obsEp, err := fabric.Join("observer", heartbeatSink{mgr})
	if err != nil {
		t.Fatal(err)
	}
	_ = obsEp

	provEp, err := fabric.Join("p1", heartbeatSink{nil})
	if err != nil {
		t.Fatal(err)
	}
	ann := NewAnnouncer(clock, Config{HeartbeatInterval: time.Second}, provEp, func() wire.LoadInfo {
		return wire.LoadInfo{Load: 0.42, FreeBytes: 7, TotalBytes: 10}
	})
	ann.Start()
	defer ann.Stop()

	deadline := time.After(2 * time.Second)
	for !mgr.IsLive("p1") {
		select {
		case <-deadline:
			t.Fatal("observer never saw p1's heartbeat")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	load, _ := mgr.Load("p1")
	if load.Load != 0.42 || load.FreeBytes != 7 {
		t.Errorf("gossiped load = %+v", load)
	}
}

// heartbeatSink adapts a Manager to transport.Handler for tests.
type heartbeatSink struct{ m *Manager }

func (h heartbeatSink) HandleCall(_ context.Context, _ wire.NodeID, _ any) (any, error) {
	return nil, transport.ErrNoHandler
}

func (h heartbeatSink) HandleCast(from wire.NodeID, msg any) {
	if h.m == nil {
		return
	}
	if hb, ok := msg.(wire.Heartbeat); ok {
		h.m.ObserveHeartbeat(hb)
	}
}
