// Package membership implements Sorrento's soft-state membership manager
// (paper §3.3, modeled on Neptune): storage providers periodically announce
// heartbeats on the multicast channel carrying their load and storage
// availability; every node constructs the live provider set by listening to
// the same channel and evicts providers silent for FailureFactor×interval.
// The manager also maintains the consistent-hash ring over the live set for
// home-host lookups (§3.4.1).
package membership

import (
	"sort"
	"sync"
	"time"

	"repro/internal/chash"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes heartbeat cadence and failure detection.
type Config struct {
	// HeartbeatInterval is the announcement period.
	HeartbeatInterval time.Duration
	// FailureFactor × HeartbeatInterval of silence marks a provider dead
	// (paper: five times the announcement interval).
	FailureFactor int
}

// DefaultConfig matches the paper's test environment.
func DefaultConfig() Config {
	return Config{HeartbeatInterval: time.Second, FailureFactor: 5}
}

// Event reports a membership change.
type Event struct {
	Node   wire.NodeID
	Joined bool // false = departed
}

type member struct {
	lastSeen time.Duration // modeled clock time
	load     wire.LoadInfo
	seq      uint64
}

// Manager tracks the live provider set. One Manager runs on every node;
// providers additionally run an Announcer.
type Manager struct {
	clock *simtime.Clock
	cfg   Config

	// Metric handles (nil when uninstrumented; all methods no-op on nil).
	hbGap     *obs.Histogram
	evictions *obs.Counter

	mu      sync.Mutex
	live    map[wire.NodeID]*member
	ring    *chash.Ring
	ringOld bool // ring is stale w.r.t. live; rebuilt on next read
	subs    []func(Event)
	stop    chan struct{}
	stopped bool
}

// NewManager returns a manager with an empty view.
func NewManager(clock *simtime.Clock, cfg Config) *Manager {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultConfig().HeartbeatInterval
	}
	if cfg.FailureFactor <= 0 {
		cfg.FailureFactor = DefaultConfig().FailureFactor
	}
	return &Manager{
		clock: clock,
		cfg:   cfg,
		live:  make(map[wire.NodeID]*member),
		ring:  chash.New(nil),
		stop:  make(chan struct{}),
	}
}

// Instrument exports this observer's failure-detection signals: a histogram
// of observed inter-heartbeat gaps (the raw input to the FailureFactor
// window) and an eviction counter, both labeled with the observing node.
// Call before Start — handles are written without locking.
func (m *Manager) Instrument(reg *obs.Registry, node string) {
	if reg == nil {
		return
	}
	lbl := obs.L("node", node)
	m.hbGap = reg.Histogram("sorrento_membership_heartbeat_gap_seconds", nil, lbl)
	m.evictions = reg.Counter("sorrento_membership_evictions_total", lbl)
}

// Start launches the eviction loop. Stop it with Stop.
func (m *Manager) Start() {
	go m.evictLoop()
}

// Stop halts the eviction loop.
func (m *Manager) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.stopped {
		m.stopped = true
		close(m.stop)
	}
}

func (m *Manager) evictLoop() {
	t := m.clock.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.evictStale()
		}
	}
}

func (m *Manager) evictStale() {
	// At heavy time compression the modeled silence window (5 heartbeats)
	// shrinks below real goroutine scheduling noise — especially under the
	// race detector — and live nodes flap as dead. Floor the window at a
	// few wall milliseconds so departures only reflect modeled silence.
	window := time.Duration(m.cfg.FailureFactor) * m.cfg.HeartbeatInterval
	if floor := m.clock.Modeled(50 * time.Millisecond); floor > window {
		window = floor
	}
	deadline := m.clock.Now() - window
	var departed []wire.NodeID
	m.mu.Lock()
	for id, mb := range m.live {
		if mb.lastSeen < deadline {
			delete(m.live, id)
			departed = append(departed, id)
		}
	}
	if len(departed) > 0 {
		m.rebuildRingLocked()
	}
	subs := append([]func(Event){}, m.subs...)
	m.mu.Unlock()
	m.evictions.Add(int64(len(departed)))
	for _, id := range departed {
		for _, s := range subs {
			s(Event{Node: id, Joined: false})
		}
	}
}

// ObserveHeartbeat folds a heartbeat into the view; transports route
// multicast wire.Heartbeat messages here.
func (m *Manager) ObserveHeartbeat(hb wire.Heartbeat) {
	m.mu.Lock()
	mb, known := m.live[hb.From]
	if !known {
		mb = &member{}
		m.live[hb.From] = mb
		m.rebuildRingLocked()
	}
	if hb.Seq >= mb.seq {
		mb.seq = hb.Seq
		mb.load = hb.Load
	}
	now := m.clock.Now()
	if known {
		m.hbGap.Observe((now - mb.lastSeen).Seconds())
	}
	mb.lastSeen = now
	subs := append([]func(Event){}, m.subs...)
	m.mu.Unlock()
	if !known {
		for _, s := range subs {
			s(Event{Node: hb.From, Joined: true})
		}
	}
}

// MarkDead removes a provider immediately (e.g. after repeated request
// timeouts), without waiting for heartbeat expiry.
func (m *Manager) MarkDead(id wire.NodeID) {
	m.mu.Lock()
	_, known := m.live[id]
	if known {
		delete(m.live, id)
		m.rebuildRingLocked()
	}
	subs := append([]func(Event){}, m.subs...)
	m.mu.Unlock()
	if known {
		m.evictions.Inc()
		for _, s := range subs {
			s(Event{Node: id, Joined: false})
		}
	}
}

// rebuildRingLocked only marks the ring stale: rebuilding is O(n·vnodes·log)
// and during cluster formation every node observes up to n-1 membership
// changes nearly at once — rebuilding eagerly per change is O(n²·vnodes·log)
// per node. The next ring read folds all accumulated changes into one build.
func (m *Manager) rebuildRingLocked() {
	m.ringOld = true
}

// ringLocked returns the ring, rebuilding it first if membership changed.
func (m *Manager) ringLocked() *chash.Ring {
	if m.ringOld {
		nodes := make([]string, 0, len(m.live))
		for id := range m.live {
			nodes = append(nodes, string(id))
		}
		m.ring = chash.New(nodes)
		m.ringOld = false
	}
	return m.ring
}

// Live returns the sorted live provider set.
func (m *Manager) Live() []wire.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wire.NodeID, 0, len(m.live))
	for id := range m.live {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsLive reports whether a provider is in the live set.
func (m *Manager) IsLive(id wire.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.live[id]
	return ok
}

// Len returns the live provider count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

// Load returns the last gossiped load of a provider.
func (m *Manager) Load(id wire.NodeID) (wire.LoadInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb, ok := m.live[id]
	if !ok {
		return wire.LoadInfo{}, false
	}
	return mb.load, true
}

// Loads returns a snapshot of every live provider's load.
func (m *Manager) Loads() map[wire.NodeID]wire.LoadInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[wire.NodeID]wire.LoadInfo, len(m.live))
	for id, mb := range m.live {
		out[id] = mb.load
	}
	return out
}

// HomeOf returns the home host responsible for tracking seg's owners, per
// consistent hashing over the live set ("" when no providers are live).
func (m *Manager) HomeOf(seg ids.SegID) wire.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return wire.NodeID(m.ringLocked().Lookup(seg[:]))
}

// Ring returns the current consistent-hash ring (immutable snapshot).
func (m *Manager) Ring() *chash.Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ringLocked()
}

// Subscribe registers a callback invoked on every join/departure. The
// callback runs synchronously with the detecting code path and must be
// quick; slow reactions should hand off to their own goroutine.
func (m *Manager) Subscribe(f func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, f)
}

// Announcer periodically multicasts this provider's heartbeat. Because the
// multicast channel does not loop back to the sender, the announcer also
// delivers each heartbeat to the local observers so a provider's own
// membership view includes itself (required for ring agreement).
type Announcer struct {
	clock    *simtime.Clock
	cfg      Config
	ep       transport.Endpoint
	loadFn   func() wire.LoadInfo
	local    []func(wire.Heartbeat)
	stopOnce sync.Once
	stop     chan struct{}
	seq      uint64
}

// NewAnnouncer returns an announcer broadcasting loadFn's snapshots from
// ep; each heartbeat is also handed to the local observers.
func NewAnnouncer(clock *simtime.Clock, cfg Config, ep transport.Endpoint, loadFn func() wire.LoadInfo, local ...func(wire.Heartbeat)) *Announcer {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultConfig().HeartbeatInterval
	}
	return &Announcer{clock: clock, cfg: cfg, ep: ep, loadFn: loadFn, local: local, stop: make(chan struct{})}
}

// Start announces immediately and then on every interval.
func (a *Announcer) Start() {
	a.announce()
	go func() {
		t := a.clock.NewTicker(a.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.announce()
			}
		}
	}()
}

// Stop halts announcements (the node will be declared dead by peers).
func (a *Announcer) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
}

func (a *Announcer) announce() {
	a.seq++
	hb := wire.Heartbeat{From: a.ep.ID(), Seq: a.seq, Load: a.loadFn()}
	a.ep.Multicast(hb)
	for _, f := range a.local {
		f(hb)
	}
}
