package provider

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/placement"
	"repro/internal/wire"
)

// Drain state machine (admin plane):
//
//	serving --AdminDrain--> draining --AdminRetire--> retired (daemon exits)
//	   ^                       |
//	   +----AdminDrain{Abort}--+
//
// A draining provider keeps serving reads, open shadows, and its home-host
// role, and it keeps heartbeating — but its heartbeats carry Draining=true,
// so every placement decision in the cluster (client writes, repair targets,
// migration destinations) stops choosing it. A background worker migrates
// the local segments to the remaining providers through the same
// replicate-then-erase path as load migration (§3.7.1), which only deletes
// the local copy after the destination confirms it holds the bytes — so a
// drain can never lose an acked commit. Retire succeeds only once the store
// is empty and no write sessions remain.

// Drain marks the provider draining and starts (or, with abort, cancels)
// the background segment evacuation.
func (p *Provider) Drain(abort bool) error {
	p.mu.Lock()
	if abort {
		if p.draining.Load() {
			p.draining.Store(false)
			if p.drainStop != nil {
				close(p.drainStop)
				p.drainStop = nil
			}
		}
		p.mu.Unlock()
		return nil
	}
	if p.draining.Load() {
		p.mu.Unlock()
		return nil // already draining; the worker is running
	}
	p.draining.Store(true)
	stop := make(chan struct{})
	p.drainStop = stop
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.drainWorker(stop)
	}()
	return nil
}

// Draining reports whether a drain is in progress.
func (p *Provider) Draining() bool { return p.draining.Load() }

// AdminState snapshots the provider's admin-visible state.
func (p *Provider) AdminState() wire.AdminStatusResp {
	d := p.store.Disk()
	return wire.AdminStatusResp{
		OK:         true,
		Node:       p.id,
		Draining:   p.draining.Load(),
		Segments:   p.store.Len(),
		Shadows:    p.store.ShadowCount(),
		FreeBytes:  d.FreeBytes(),
		TotalBytes: d.Capacity(),
	}
}

// Retire shuts the daemon down once a drain has fully evacuated it. The
// endpoint closes shortly after the acknowledgment is sent; peers then
// declare the node dead via the usual heartbeat silence window.
func (p *Provider) Retire() error {
	if !p.draining.Load() {
		return fmt.Errorf("provider %s: retire: not draining", p.id)
	}
	if n := p.store.Len(); n > 0 {
		return fmt.Errorf("provider %s: retire: %d segments still held", p.id, n)
	}
	if n := p.store.ShadowCount(); n > 0 {
		return fmt.Errorf("provider %s: retire: %d write sessions still open", p.id, n)
	}
	go func() {
		// Let the acknowledgment drain out before the endpoint goes away.
		p.clock.Sleep(100 * time.Millisecond)
		p.Kill()
	}()
	return nil
}

// drainWorker repeatedly sweeps the local store, migrating every committed
// segment away, until the drain is aborted or the daemon stops. It keeps
// running even once the store is empty: stragglers can still land here
// (write sessions opened before the Draining heartbeat propagated commit
// locally first) and are evacuated on a later sweep.
func (p *Provider) drainWorker(stop chan struct{}) {
	interval := 200 * time.Millisecond
	if floor := p.clock.Modeled(2 * time.Millisecond); floor > interval {
		interval = floor
	}
	t := p.clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-stop:
			return
		case <-t.C:
		}
		for _, seg := range p.store.Segments() {
			select {
			case <-p.stop:
				return
			case <-stop:
				return
			default:
			}
			// Best effort: segments with open shadows or mid-transfer
			// version races are retried on the next sweep.
			p.drainSegment(seg)
		}
	}
}

// drainSegment evacuates one committed segment. The destination is chosen
// like a migration destination — live, not draining, not already a replica
// site. When every eligible node already holds the segment (small cluster,
// high replication degree) it "migrates" to an existing owner: the owner
// confirms it has the current version through the same replicate path, and
// only then is the surplus local copy erased — repair restores the
// replication degree later if capacity allows.
func (p *Provider) drainSegment(seg ids.SegID) error {
	st := p.store.Stat(seg)
	if !st.Present || st.HasShadow {
		return fmt.Errorf("provider %s: drain %s: busy or gone", p.id, seg.Short())
	}
	exclude := map[wire.NodeID]bool{p.id: true}
	var owners []wire.OwnerInfo
	if home := p.homeOf(seg); home != "" {
		if resp, err := p.call(home, wire.LocQuery{Seg: seg}); err == nil {
			if q, ok := resp.(wire.LocQueryResp); ok {
				owners = q.Owners
				for _, o := range q.Owners {
					exclude[o.Node] = true
				}
			}
		}
	}
	dest, err := p.selector.Choose(p.candidates(), placement.Options{
		Alpha:   0.5,
		SegSize: st.Size,
		Exclude: exclude,
	})
	if err != nil {
		// No fresh site available; hand the copy to an existing owner.
		dest = ""
		for _, o := range owners {
			if o.Node != p.id && o.Node != "" && p.members.IsLive(o.Node) {
				dest = o.Node
				break
			}
		}
		if dest == "" {
			return fmt.Errorf("provider %s: drain %s: no destination", p.id, seg.Short())
		}
	}
	return p.migrateSegment(seg, dest)
}
