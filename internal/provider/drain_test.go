package provider_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/segstore"
	"repro/internal/wire"
)

func TestDrainAbortRacesEvacuation(t *testing.T) {
	c := startCluster(t, fastOpts(5))
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	var entries []wire.FileEntry
	for i := 0; i < 6; i++ {
		f, err := cl.Create(fmt.Sprintf("/d%d", i), attrs)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(make([]byte, 64<<10), 0)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		e, _ := cl.Stat(fmt.Sprintf("/d%d", i))
		entries = append(entries, e)
	}
	waitFor(t, 30*time.Second, "replication", func() bool {
		for _, e := range entries {
			if replicaCount(c, e) < 2 {
				return false
			}
		}
		return true
	})

	// Pick a loaded provider, start draining, and abort while the background
	// evacuation worker is mid-sweep.
	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Len() > 0 {
			victim = id
			break
		}
	}
	vp := c.Provider(victim)
	if err := vp.Drain(false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the worker start a sweep
	if err := vp.Drain(true); err != nil {
		t.Fatal(err)
	}
	if vp.Draining() {
		t.Fatal("abort left the provider draining")
	}

	// The abort must leave the node fully functional: everything remains
	// readable, and a second drain later runs the evacuation to completion.
	for i := range entries {
		g, err := cl.Open(fmt.Sprintf("/d%d", i))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1024)
		if _, err := g.ReadAt(buf, 0); err != nil {
			t.Fatalf("read /d%d after abort: %v", i, err)
		}
	}
	if err := vp.Drain(false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 60*time.Second, "re-drain evacuation", func() bool {
		return vp.Store().Len() == 0
	})
}

// A migration/drain hand-off erases the source copy on ack. When the
// destination's media silently drops the install (lost write), the
// destination must refuse the ack — read-back verification — or the last
// clean replica of a ReplDeg-1 segment would be destroyed.
func TestHandoffRefusesLyingDestinationMedia(t *testing.T) {
	c := startCluster(t, fastOpts(3))
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 1
	payload := bytes.Repeat([]byte("handoff"), 8<<10)
	f, err := cl.Create("/handoff", attrs)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(payload, 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entry, _ := cl.Stat("/handoff")
	if err := c.AwaitQuiesce(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	var src wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			src = id
			break
		}
	}
	// Every other node's media silently loses background installs: a
	// migration destination installs stale bytes yet would ack OK without
	// the hand-off read-back.
	for id, p := range c.Providers() {
		if id != src {
			p.Store().InjectFaults(segstore.FaultConfig{Seed: 42, LostWrite: 1})
		}
	}
	sp := c.Provider(src)
	if err := sp.Drain(false); err != nil {
		t.Fatal(err)
	}

	// Give the drain worker several evacuation attempts (wall sleep spans
	// minutes of modeled time at this scale). Every attempt must fail the
	// hand-off verification and leave the sole clean copy in place.
	time.Sleep(200 * time.Millisecond)
	if !sp.Store().Stat(entry.FileID).Present {
		t.Fatal("source erased its copy despite failed hand-off verification")
	}
	if !sp.Store().VerifyVersion(entry.FileID, 0) {
		t.Fatal("source copy no longer verifies clean")
	}
	got := make([]byte, len(payload))
	g, err := cl.Open("/handoff")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatalf("read during refused drain: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read during refused drain returned wrong bytes")
	}

	// Healed media: the drain completes and the data survives intact.
	for id, p := range c.Providers() {
		if id != src {
			p.Store().ClearFaults()
		}
	}
	waitFor(t, 60*time.Second, "evacuation after heal", func() bool {
		return sp.Store().Len() == 0
	})
	g, err = cl.Open("/handoff")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatalf("read after evacuation: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload damaged by evacuation onto healed media")
	}
}

func TestRetireRefusedWhileRepairInFlight(t *testing.T) {
	opts := fastOpts(4)
	opts.Provider.ScrubInterval = 2 * time.Second
	opts.Provider.ScrubBatch = 128
	opts.Provider.QuarantineThreshold = -1
	c := startCluster(t, opts)
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, err := cl.Create("/held", attrs)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 128<<10), 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entry, _ := cl.Stat("/held")
	waitFor(t, 20*time.Second, "replication", func() bool {
		return replicaCount(c, entry) >= 2
	})

	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			victim = id
			break
		}
	}
	vp := c.Provider(victim)

	// Kick a scrub-repair cycle into flight on the draining node: the rotted
	// copy is dropped and re-pulled while the drain worker is evacuating.
	vp.Store().Corrupt(entry.FileID)
	if err := vp.Drain(false); err != nil {
		t.Fatal(err)
	}

	// Retire before evacuation finishes must be refused, not tear the node
	// down under in-flight transfers.
	if vp.Store().Len() > 0 {
		if err := vp.Retire(); err == nil {
			t.Fatal("Retire succeeded with segments still held")
		}
	}

	// Once the store fully empties, retire goes through and the node exits.
	waitFor(t, 60*time.Second, "evacuation", func() bool {
		return vp.Store().Len() == 0 && vp.Store().ShadowCount() == 0
	})
	waitFor(t, 30*time.Second, "retire accepted", func() bool {
		return vp.Retire() == nil
	})

	// The data survives the retirement with full integrity.
	g, err := cl.Open("/held")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after retire: %v", err)
	}
}
