package provider

import (
	"bytes"
	"sort"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Background scrub-and-repair: the provider walks its committed segments at
// a paced rate (each scan is charged to the disk arm by the store, so scrub
// competes with foreground I/O the way a real scrubber does), verifying
// stored bytes against their commit-time checksums. A version that fails is
// dropped and the latest is re-pulled from a healthy replica through the
// ordinary replicate path — which itself verifies on receive, so repair can
// never launder corruption back in. A provider whose cumulative detections
// cross QuarantineThreshold concludes its media is failing and
// self-quarantines by entering the admin drain state: it keeps serving
// (verified) reads while the cluster stops placing new data on it and its
// segments evacuate.

// scrubTick verifies the next ScrubBatch segments past the scrub cursor
// (sorted segment-ID order, wrapping) and repairs whatever it dropped.
func (p *Provider) scrubTick() {
	segs := p.store.Segments()
	if len(segs) > 0 {
		sort.Slice(segs, func(i, j int) bool {
			return bytes.Compare(segs[i][:], segs[j][:]) < 0
		})
		batch := p.cfg.ScrubBatch
		if batch > len(segs) {
			batch = len(segs)
		}
		p.mu.Lock()
		cur := p.scrubCursor
		p.mu.Unlock()
		start := sort.Search(len(segs), func(i int) bool {
			return bytes.Compare(segs[i][:], cur[:]) > 0
		})
		t0 := p.clock.Now()
		var scanned int64
		for i := 0; i < batch; i++ {
			select {
			case <-p.stop:
				return
			default:
			}
			scanned += p.scrubOne(segs[(start+i)%len(segs)])
		}
		// One mostly-sequential media scan per batch: charging the arm per
		// segment would bill a random seek each and saturate the disk on
		// small-segment stores.
		if scanned > 0 {
			p.store.Disk().Read(scanned)
		}
		p.mu.Lock()
		p.scrubCursor = segs[(start+batch-1)%len(segs)]
		p.mu.Unlock()
		p.pm.scrubLat.ObserveDuration(p.clock.Now() - t0)
	}
	p.maybeQuarantine()
}

// scrubOne verifies one segment and, when the latest committed version was
// dropped as corrupt, re-pulls it from a healthy replica. It returns the
// bytes scanned so the tick can charge the disk arm once per batch.
func (p *Provider) scrubOne(seg ids.SegID) int64 {
	scanned, dropped, intact := p.store.ScrubSegment(seg)
	if dropped == 0 || intact {
		// Clean, or only a superseded old version was corrupt — the latest
		// still serves, nothing to repair.
		return scanned
	}
	p.repairScrubbed(seg)
	return scanned
}

// repairScrubbed restores a segment whose latest version the scrubber
// dropped: ask the home host who else owns it and pull from the newest live
// replica. When no healthy replica is known the periodic repair scan remains
// the backstop (the home host sees our stale/missing registration).
func (p *Provider) repairScrubbed(seg ids.SegID) {
	home := p.homeOf(seg)
	if home == "" {
		return
	}
	var owners []wire.OwnerInfo
	if home == p.id {
		owners = p.table.Owners(seg)
	} else if resp, err := p.call(home, wire.LocQuery{Seg: seg}); err == nil {
		if q, ok := resp.(wire.LocQueryResp); ok {
			owners = q.Owners
		}
	}
	var source wire.NodeID
	var ver uint64
	for _, o := range owners {
		if o.Node != p.id && o.Node != "" && p.members.IsLive(o.Node) && o.Version >= ver {
			source, ver = o.Node, o.Version
		}
	}
	if source == "" {
		return
	}
	if g := p.pullSegment(seg, ver, source, 0, 0); g.OK && p.store.VerifyVersion(seg, 0) {
		p.pm.integrityRepaired.Inc()
	}
}

// maybeQuarantine enters the draining state once cumulative corruption
// detections cross the configured threshold. It fires at most once per
// daemon lifetime; an operator who aborts the drain keeps the node serving
// until a restart resets the latch.
func (p *Provider) maybeQuarantine() {
	thr := p.cfg.QuarantineThreshold
	if thr <= 0 {
		return
	}
	if p.store.IntegrityStats().Detected < int64(thr) {
		return
	}
	p.mu.Lock()
	if p.quarantined {
		p.mu.Unlock()
		return
	}
	p.quarantined = true
	p.mu.Unlock()
	p.pm.quarantines.Inc()
	p.Drain(false)
}

// Quarantined reports whether the corruption threshold ever tripped.
func (p *Provider) Quarantined() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quarantined
}
