package provider_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// scrubOpts is fastOpts with an aggressive scrub cycle so detection and
// repair are observable within a short modeled run.
func scrubOpts(providers int, quarantineAt int) cluster.Options {
	opts := fastOpts(providers)
	opts.Provider.ScrubInterval = 2 * time.Second
	opts.Provider.ScrubBatch = 128
	opts.Provider.QuarantineThreshold = quarantineAt
	return opts
}

func TestScrubDetectsAndRepairsCorruption(t *testing.T) {
	c := startCluster(t, scrubOpts(4, -1))
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 3
	payload := bytes.Repeat([]byte("integrity"), 8<<10)
	f, err := cl.Create("/scrubbed", attrs)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(payload, 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entry, _ := cl.Stat("/scrubbed")
	waitFor(t, 20*time.Second, "initial replication", func() bool {
		return replicaCount(c, entry) >= 3
	})

	// Rot one replica in place.
	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			victim = id
			break
		}
	}
	vs := c.Provider(victim).Store()
	if !vs.Corrupt(entry.FileID) {
		t.Fatalf("could not corrupt %s on %s", entry.FileID.Short(), victim)
	}
	if vs.VerifyAll() == 0 {
		t.Fatal("corruption oracle reports clean store")
	}

	// The scrubber must detect the rot, drop the bad version, and re-pull a
	// clean copy from a healthy replica.
	waitFor(t, 60*time.Second, "scrub repair", func() bool {
		return vs.VerifyAll() == 0 && vs.Stat(entry.FileID).Present
	})
	if vs.IntegrityStats().Detected == 0 {
		t.Fatal("scrub repaired without recording a detection")
	}

	// The file never serves wrong bytes, before or after repair.
	g, err := cl.Open("/scrubbed")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch after scrub repair")
	}
}

func TestScrubQuarantinesFailingMedia(t *testing.T) {
	c := startCluster(t, scrubOpts(4, 1))
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, err := cl.Create("/fragile", attrs)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 64<<10), 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entry, _ := cl.Stat("/fragile")
	waitFor(t, 20*time.Second, "initial replication", func() bool {
		return replicaCount(c, entry) >= 2
	})

	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			victim = id
			break
		}
	}
	vp := c.Provider(victim)
	if !vp.Store().Corrupt(entry.FileID) {
		t.Fatal("could not corrupt replica")
	}

	// One detection crosses the threshold: the provider self-quarantines by
	// entering the admin draining state, observable cluster-wide.
	waitFor(t, 60*time.Second, "self-quarantine", func() bool {
		return vp.Quarantined() && vp.Draining()
	})
	if !vp.AdminState().Draining {
		t.Fatal("admin state does not show draining")
	}

	// The drain evacuates its data; the file stays fully readable.
	waitFor(t, 60*time.Second, "evacuation", func() bool {
		return vp.Store().Len() == 0
	})
	g, err := cl.Open("/fragile")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after quarantine: %v", err)
	}
}
