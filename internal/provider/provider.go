// Package provider implements the Sorrento storage provider daemon: the
// process that exports a node's locally attached disk into a volume. It
// ties together the versioned segment store (segment I/O, shadows, 2PC),
// the location table (this node's home-host role), membership announcement
// and monitoring, lazy replica synchronization and repair (§3.6), and hosts
// the data migration engine (§3.7).
package provider

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/locate"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/segstore"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes a provider.
type Config struct {
	// OpCost is the modeled user-level request-processing overhead charged
	// per segment RPC (kernel crossings, user-level daemon work). The
	// paper's Figure 9 latencies imply several milliseconds per RPC.
	OpCost time.Duration
	// RefreshInterval is the periodic content-refresh cycle (paper: 15 min).
	RefreshInterval time.Duration
	// JoinDelayMax is the random delay before refreshing a newly joined
	// provider (paper: within 20 s).
	JoinDelayMax time.Duration
	// GarbageAge is the location-table entry age beyond which entries are
	// purged (should exceed RefreshInterval).
	GarbageAge time.Duration
	// RepairInterval is how often the home-host role scans for stale or
	// under-replicated segments.
	RepairInterval time.Duration
	// RepairBatch caps sync/replicate notifications per scan, shaping the
	// background recovery rate.
	RepairBatch int
	// MaxPulls caps concurrent replica pulls on this node so background
	// synchronization cannot starve foreground traffic (the paper limits
	// migration to one active process per node for the same reason).
	MaxPulls int
	// Membership tunes heartbeats and failure detection.
	Membership membership.Config
	// Rack labels this node's failure domain; repair places new replicas
	// on other racks when possible (rack-aware placement, §3.7.2).
	Rack string
	// Seed seeds placement decisions and jitter.
	Seed int64
	// HeartbeatLoadEWMA smooths the utilization samples gossiped in
	// heartbeats.
	HeartbeatLoadEWMA float64
	// Migration tunes the migration engine; see Migration type.
	Migration MigrationConfig
	// ScrubInterval is the background integrity scrubber's cadence: every
	// interval it verifies ScrubBatch committed segments against their
	// commit-time checksums, dropping and re-pulling corrupt versions. The
	// scan is charged to the disk arm, so interval × batch sets the scrub
	// bandwidth taken from foreground I/O. Zero defaults; negative disables.
	ScrubInterval time.Duration
	// ScrubBatch is how many segments each scrub pass verifies.
	ScrubBatch int
	// QuarantineThreshold is the cumulative corruption-detection count at
	// which the provider concludes its media is failing and self-quarantines
	// by entering the draining state. Zero defaults; negative disables.
	QuarantineThreshold int
	// Obs enables the provider's domain metrics (2PC rounds, location-table
	// hit/miss, replica pulls, migration decisions with their f_l/f_s
	// inputs) plus disk/CPU resource gauges. Nil disables all of it.
	Obs *obs.Obs
}

// NoOpCost disables the modeled per-RPC processing charge — real daemons
// (simtime scale 1) pay their actual execution time instead.
const NoOpCost = -1 * time.Millisecond

// DefaultConfig returns the paper's settings (with a shorter refresh cycle
// left to experiments that need it).
func DefaultConfig() Config {
	return Config{
		OpCost:            5 * time.Millisecond,
		RefreshInterval:   15 * time.Minute,
		JoinDelayMax:      20 * time.Second,
		GarbageAge:        38 * time.Minute, // 2.5 × refresh
		RepairInterval:    5 * time.Second,
		RepairBatch:       4,
		MaxPulls:          2,
		Membership:        membership.DefaultConfig(),
		Seed:              1,
		HeartbeatLoadEWMA: 0.3,
		Migration:         DefaultMigrationConfig(),
		// A gentle default: a full pass over a few hundred segments takes
		// tens of minutes, matching real scrubbers' weeks-per-pass posture
		// scaled to modeled runs. Chaos tests crank it way down.
		ScrubInterval:       5 * time.Minute,
		ScrubBatch:          16,
		QuarantineThreshold: 64,
	}
}

// Provider is one storage provider daemon.
type Provider struct {
	id    wire.NodeID
	clock *simtime.Clock
	cfg   Config

	ep       transport.Endpoint
	store    *segstore.Store
	table    *locate.Table
	members  *membership.Manager
	ann      *membership.Announcer
	selector *placement.Selector
	cpu      *simtime.Resource
	util     *simtime.UtilizationSampler
	loadEWMA *stats.EWMA
	ioEWMA   *stats.EWMA

	pullSem chan struct{} // bounds concurrent replica pulls
	pm      providerMetrics

	mu          sync.Mutex
	lastHome    map[ids.SegID]wire.NodeID // where each local segment was last registered
	pulling     map[ids.SegID]bool        // replica pulls in flight (coalesced)
	migrBusy    bool                      // one active migration per node (§3.7.1)
	rng         *rand.Rand
	scrubCursor ids.SegID // scrub resume point (sorted-ID order)
	quarantined bool      // corruption threshold tripped (latched)

	// Drain state (admin plane): draining is gossiped in heartbeats so the
	// whole cluster stops placing new data here; drainStop cancels the
	// background drain worker on abort.
	draining  atomic.Bool
	drainStop chan struct{} // under mu

	// Membership events are coalesced into a single worker goroutine: at a
	// 512-node mass join a goroutine-per-event design parks tens of
	// thousands of goroutines per process on join-delay timers.
	memberMu    sync.Mutex
	pendingJoin map[wire.NodeID]struct{} // newcomers awaiting a refresh pass
	departed    []wire.NodeID            // departures awaiting table cleanup
	memberKick  chan struct{}            // cap 1; wakes membershipWorker

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// providerMetrics holds the provider's domain metric handles, resolved once
// at construction. All handles are nil when obs is off; every method on a
// nil handle is a no-op, so call sites stay unconditional.
type providerMetrics struct {
	prepare2PC        *obs.Counter
	commit2PC         *obs.Counter
	abort2PC          *obs.Counter
	prepareLat        *obs.Histogram
	commitLat         *obs.Histogram
	locHits           *obs.Counter
	locMisses         *obs.Counter
	pullsDelta        *obs.Counter
	pullsFull         *obs.Counter
	pullRetries       *obs.Counter
	pullRejects       *obs.Counter // fetched payloads rejected by checksum verify
	integrityRepaired *obs.Counter
	quarantines       *obs.Counter
	scrubLat          *obs.Histogram
	migrIOLoad        *obs.Counter
	migrSpace         *obs.Counter
	migrLocality      *obs.Counter
	loadFL            *obs.Gauge // f_l: the smoothed I/O load input to migration
}

// instrument registers the provider's observability surface: domain metric
// handles, disk/CPU resource gauges, space gauges, and the membership
// failure-detection metrics. Runs before Start so no locks are needed.
func (p *Provider) instrument(d *disk.Disk) {
	reg := p.cfg.Obs.Reg()
	if reg == nil {
		return
	}
	node := obs.L("node", string(p.id))
	p.pm = providerMetrics{
		prepare2PC:        reg.Counter("sorrento_provider_2pc_total", node, obs.L("phase", "prepare")),
		commit2PC:         reg.Counter("sorrento_provider_2pc_total", node, obs.L("phase", "commit")),
		abort2PC:          reg.Counter("sorrento_provider_2pc_total", node, obs.L("phase", "abort")),
		prepareLat:        reg.Histogram("sorrento_provider_2pc_seconds", nil, node, obs.L("phase", "prepare")),
		commitLat:         reg.Histogram("sorrento_provider_2pc_seconds", nil, node, obs.L("phase", "commit")),
		locHits:           reg.Counter("sorrento_provider_loc_queries_total", node, obs.L("result", "hit")),
		locMisses:         reg.Counter("sorrento_provider_loc_queries_total", node, obs.L("result", "miss")),
		pullsDelta:        reg.Counter("sorrento_provider_pulls_total", node, obs.L("kind", "delta")),
		pullsFull:         reg.Counter("sorrento_provider_pulls_total", node, obs.L("kind", "full")),
		pullRetries:       reg.Counter("sorrento_provider_pull_retries_total", node),
		pullRejects:       reg.Counter("sorrento_integrity_pull_rejects_total", node),
		integrityRepaired: reg.Counter("sorrento_integrity_repaired_total", node),
		quarantines:       reg.Counter("sorrento_integrity_quarantines_total", node),
		scrubLat:          reg.Histogram("sorrento_integrity_scrub_seconds", nil, node),
		migrIOLoad:        reg.Counter("sorrento_provider_migrations_total", node, obs.L("trigger", "ioload")),
		migrSpace:         reg.Counter("sorrento_provider_migrations_total", node, obs.L("trigger", "space")),
		migrLocality:      reg.Counter("sorrento_provider_migrations_total", node, obs.L("trigger", "locality")),
		loadFL:            reg.Gauge("sorrento_provider_load_fl", node),
	}
	obs.RegisterResource(reg, p.clock, d.Resource(), node)
	obs.RegisterResource(reg, p.clock, p.cpu, node)
	reg.GaugeFunc("sorrento_disk_used_bytes", func() float64 { return float64(d.Used()) }, node)
	reg.GaugeFunc("sorrento_disk_used_frac", d.UsedFrac, node)
	reg.GaugeFunc("sorrento_provider_shadows_open", func() float64 { return float64(p.store.ShadowCount()) }, node)
	reg.GaugeFunc("sorrento_provider_segments", func() float64 { return float64(p.store.Len()) }, node)
	// Integrity counters live in the store as atomics (hot read path); the
	// registry polls them as gauges with the counter-style names the rest of
	// the sorrento_integrity_* family uses.
	reg.GaugeFunc("sorrento_integrity_verified_total", func() float64 {
		return float64(p.store.IntegrityStats().VerifiedBlocks)
	}, node)
	reg.GaugeFunc("sorrento_integrity_corrupt_total", func() float64 {
		return float64(p.store.IntegrityStats().Detected)
	}, node)
	reg.GaugeFunc("sorrento_integrity_injected_total", func() float64 {
		s := p.store.IntegrityStats()
		return float64(s.InjectedWrite + s.InjectedRead)
	}, node)
	p.members.Instrument(reg, string(p.id))
}

// New constructs a provider on the given network. extraResources (e.g. the
// node's NIC directions) are folded into the utilization it gossips.
func New(id wire.NodeID, clock *simtime.Clock, cfg Config, network transport.Network, d *disk.Disk, extraResources ...*simtime.Resource) (*Provider, error) {
	return NewWithStore(id, clock, cfg, network, segstore.New(clock, d), extraResources...)
}

// NewWithStore constructs a provider over an existing segment store — the
// crash-restart path: the store (the node's disk contents) survives the
// crash, and the restarted daemon re-announces, re-registers its segments,
// and resyncs whatever it missed. Callers restarting over a store should
// run store.CrashRecover() first to shed volatile shadow/2PC state.
func NewWithStore(id wire.NodeID, clock *simtime.Clock, cfg Config, network transport.Network, store *segstore.Store, extraResources ...*simtime.Resource) (*Provider, error) {
	d := store.Disk()
	def := DefaultConfig()
	if cfg.OpCost == 0 {
		cfg.OpCost = def.OpCost
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = def.RefreshInterval
	}
	if cfg.JoinDelayMax <= 0 {
		cfg.JoinDelayMax = def.JoinDelayMax
	}
	if cfg.GarbageAge <= 0 {
		cfg.GarbageAge = cfg.RefreshInterval*2 + cfg.RefreshInterval/2
	}
	if cfg.RepairInterval <= 0 {
		cfg.RepairInterval = def.RepairInterval
	}
	if cfg.RepairBatch <= 0 {
		cfg.RepairBatch = def.RepairBatch
	}
	if cfg.MaxPulls <= 0 {
		cfg.MaxPulls = def.MaxPulls
	}
	if cfg.HeartbeatLoadEWMA <= 0 {
		cfg.HeartbeatLoadEWMA = def.HeartbeatLoadEWMA
	}
	if cfg.ScrubInterval == 0 {
		cfg.ScrubInterval = def.ScrubInterval
	}
	if cfg.ScrubBatch <= 0 {
		cfg.ScrubBatch = def.ScrubBatch
	}
	if cfg.QuarantineThreshold == 0 {
		cfg.QuarantineThreshold = def.QuarantineThreshold
	}
	if cfg.Membership.HeartbeatInterval <= 0 {
		cfg.Membership.HeartbeatInterval = membership.DefaultConfig().HeartbeatInterval
	}
	if cfg.Membership.FailureFactor <= 0 {
		cfg.Membership.FailureFactor = membership.DefaultConfig().FailureFactor
	}
	cfg.Migration = cfg.Migration.withDefaults()

	p := &Provider{
		id:         id,
		clock:      clock,
		cfg:        cfg,
		store:      store,
		table:      locate.NewTable(clock),
		members:    membership.NewManager(clock, cfg.Membership),
		selector:   placement.NewSelector(cfg.Seed),
		cpu:        simtime.NewResource(clock, string(id)+"/cpu"),
		loadEWMA:   stats.NewEWMA(cfg.HeartbeatLoadEWMA),
		ioEWMA:     stats.NewEWMA(cfg.HeartbeatLoadEWMA),
		pullSem:    make(chan struct{}, cfg.MaxPulls),
		lastHome:   make(map[ids.SegID]wire.NodeID),
		pulling:    make(map[ids.SegID]bool),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		memberKick: make(chan struct{}, 1),
		stop:       make(chan struct{}),
	}
	res := append([]*simtime.Resource{d.Resource(), p.cpu}, extraResources...)
	p.util = simtime.NewUtilizationSampler(clock, res...)
	p.instrument(d)
	ep, err := network.Join(id, (*handler)(p))
	if err != nil {
		return nil, err
	}
	p.ep = ep
	p.ann = membership.NewAnnouncer(clock, cfg.Membership, ep, p.loadInfo, p.members.ObserveHeartbeat)
	p.members.Subscribe(p.onMembershipEvent)
	return p, nil
}

// ID returns the provider's node ID.
func (p *Provider) ID() wire.NodeID { return p.id }

// Store exposes the segment store (tests, experiment harness).
func (p *Provider) Store() *segstore.Store { return p.store }

// Table exposes the location table (tests).
func (p *Provider) Table() *locate.Table { return p.table }

// Members exposes the membership view.
func (p *Provider) Members() *membership.Manager { return p.members }

// Endpoint exposes the transport endpoint.
func (p *Provider) Endpoint() transport.Endpoint { return p.ep }

// Start launches the daemon's background loops.
func (p *Provider) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.membershipWorker()
	}()
	p.members.Start()
	p.ann.Start()
	p.loop(p.cfg.RefreshInterval, p.refreshAll)
	p.loop(p.cfg.RefreshInterval, func() { p.table.PurgeGarbage(p.cfg.GarbageAge) })
	p.loop(p.cfg.RepairInterval, p.repairScan)
	p.loop(p.cfg.Membership.HeartbeatInterval, p.sampleLoad)
	expireEvery := 30 * time.Second
	if floor := p.clock.Modeled(time.Second); floor > expireEvery {
		expireEvery = floor
	}
	p.loop(expireEvery, func() { p.store.ExpireShadows() })
	p.loop(p.cfg.Migration.Interval, p.migrationTick)
	if p.cfg.ScrubInterval > 0 {
		p.loop(p.cfg.ScrubInterval, p.scrubTick)
	}
}

// Stop halts the daemon. The endpoint stays open unless Kill is used.
func (p *Provider) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.ann.Stop()
	p.members.Stop()
	p.wg.Wait()
}

// Kill simulates a crash: all loops stop and the endpoint goes silent.
func (p *Provider) Kill() {
	p.Stop()
	p.ep.Close()
}

// loop runs fn every interval until Stop.
func (p *Provider) loop(interval time.Duration, fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := p.clock.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// sampleLoad folds a fresh utilization sample into the gossiped EWMAs.
func (p *Provider) sampleLoad() {
	u := p.util.Sample()
	p.loadEWMA.Add(u)
	p.ioEWMA.Add(u)
	p.pm.loadFL.Set(p.ioEWMA.Value())
}

// loadInfo snapshots the load/space state for heartbeats.
func (p *Provider) loadInfo() wire.LoadInfo {
	d := p.store.Disk()
	return wire.LoadInfo{
		Rack:       p.cfg.Rack,
		Load:       p.loadEWMA.Value(),
		IOWaitEWMA: p.ioEWMA.Value(),
		FreeBytes:  d.FreeBytes(),
		TotalBytes: d.Capacity(),
		Draining:   p.draining.Load(),
	}
}

// charge models per-RPC server processing cost (disabled via NoOpCost).
func (p *Provider) charge() {
	if p.cfg.OpCost > 0 {
		p.cpu.Use(p.cfg.OpCost)
	}
}

// homeOf computes the current home host for a segment.
func (p *Provider) homeOf(seg ids.SegID) wire.NodeID { return p.members.HomeOf(seg) }

// notifyHomeSync registers a local segment with its home host and waits
// for the acknowledgment. Replica pulls use it before confirming success,
// so a migration source cannot erase its copy while the destination is
// still unregistered (the location table would transiently go empty).
func (p *Provider) notifyHomeSync(seg ids.SegID) {
	st := p.store.Stat(seg)
	home := p.homeOf(seg)
	if home == "" {
		return
	}
	e := wire.LocEntry{
		Seg:               seg,
		Version:           st.Version,
		Size:              st.Size,
		ReplDeg:           st.ReplDeg,
		LocalityThreshold: p.store.LocalityThreshold(seg),
	}
	p.mu.Lock()
	p.lastHome[seg] = home
	p.mu.Unlock()
	if home == p.id {
		p.table.Update(p.id, e, false)
		return
	}
	p.call(home, wire.LocUpdate{From: p.id, Entry: e})
}

// notifyHome sends a fast-path location update for one local segment.
func (p *Provider) notifyHome(seg ids.SegID, removed bool) {
	st := p.store.Stat(seg)
	home := p.homeOf(seg)
	if home == "" {
		return
	}
	e := wire.LocEntry{
		Seg:               seg,
		Version:           st.Version,
		Size:              st.Size,
		ReplDeg:           st.ReplDeg,
		LocalityThreshold: p.store.LocalityThreshold(seg),
	}
	p.mu.Lock()
	if removed {
		delete(p.lastHome, seg)
	} else {
		p.lastHome[seg] = home
	}
	p.mu.Unlock()
	if home == p.id {
		p.table.Update(p.id, e, removed)
		if !removed {
			p.propagateSeg(seg)
		}
		return
	}
	go p.call(home, wire.LocUpdate{From: p.id, Entry: e, Removed: removed})
}

// call is a fire-and-check RPC helper for background traffic.
func (p *Provider) call(to wire.NodeID, req any) (any, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return p.ep.Call(ctx, to, req)
}

// onMembershipEvent records a provider join or departure (paper §3.4.1
// events 2 and 3) and wakes the membership worker. It runs synchronously on
// the heartbeat path, so it only enqueues: at cluster formation every node
// sees N-1 joins nearly at once, and spawning a delayed goroutine per event
// (the old design) parked O(N) goroutines per process — O(N²) per cluster —
// on join-delay timers.
func (p *Provider) onMembershipEvent(e membership.Event) {
	if e.Node == p.id {
		return
	}
	p.memberMu.Lock()
	if e.Joined {
		if p.pendingJoin == nil {
			p.pendingJoin = make(map[wire.NodeID]struct{})
		}
		p.pendingJoin[e.Node] = struct{}{}
	} else {
		p.departed = append(p.departed, e.Node)
	}
	p.memberMu.Unlock()
	select {
	case p.memberKick <- struct{}{}:
	default:
	}
}

// membershipWorker is the single goroutine that services membership events.
// Departures are handled immediately: the departed node's entries leave our
// location table and our segments re-home right away, as repair depends on
// it. Joins are batched behind one random delay (≤ JoinDelayMax) so the
// cluster's refresh traffic toward a newcomer is staggered across senders
// without stampeding it (paper §3.4.1 event 2); every join that lands while
// the delay runs joins the same refresh pass.
func (p *Provider) membershipWorker() {
	var joinTimer <-chan time.Time // armed while a join batch is pending
	for {
		select {
		case <-p.stop:
			return
		case <-p.memberKick:
		case <-joinTimer:
			joinTimer = nil
			p.memberMu.Lock()
			joins := p.pendingJoin
			p.pendingJoin = nil
			p.memberMu.Unlock()
			for n := range joins {
				// A newcomer that already departed again gets dropped;
				// its re-join, if any, raises a fresh event.
				if p.members.IsLive(n) {
					p.refreshTo(n)
				}
			}
			if len(joins) > 0 {
				p.rehome()
			}
		}
		p.memberMu.Lock()
		dep := p.departed
		p.departed = nil
		havePendingJoins := len(p.pendingJoin) > 0
		p.memberMu.Unlock()
		if len(dep) > 0 {
			for _, n := range dep {
				p.table.RemoveOwner(n)
			}
			p.rehome()
		}
		if havePendingJoins && joinTimer == nil {
			p.mu.Lock()
			delay := time.Duration(p.rng.Int63n(int64(p.cfg.JoinDelayMax)))
			p.mu.Unlock()
			joinTimer = p.clock.After(delay)
		}
	}
}

// refreshTo sends node every local entry it is currently the home host
// for, regardless of registration history.
func (p *Provider) refreshTo(node wire.NodeID) {
	var list []wire.LocEntry
	for _, e := range p.storeEntries() {
		if p.homeOf(e.Seg) == node {
			list = append(list, e)
		}
	}
	if len(list) == 0 {
		return
	}
	p.mu.Lock()
	for _, e := range list {
		p.lastHome[e.Seg] = node
	}
	p.mu.Unlock()
	if node == p.id {
		p.table.Refresh(p.id, list)
		return
	}
	p.call(node, wire.LocRefresh{From: p.id, Entries: list})
}

// rehome re-registers local segments whose home host changed since their
// last registration (covers both node joins and departures).
func (p *Provider) rehome() {
	entries := p.storeEntries()
	byHome := locate.GroupByHome(entries, p.homeOf)
	p.mu.Lock()
	changed := make(map[wire.NodeID][]wire.LocEntry)
	for home, list := range byHome {
		for _, e := range list {
			if p.lastHome[e.Seg] != home {
				changed[home] = append(changed[home], e)
				p.lastHome[e.Seg] = home
			}
		}
	}
	p.mu.Unlock()
	for home, list := range changed {
		if home == p.id {
			p.table.Refresh(p.id, list)
			continue
		}
		home, list := home, list
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.call(home, wire.LocRefresh{From: p.id, Entries: list})
		}()
	}
}

// refreshAll performs the periodic content refresh to every home host.
func (p *Provider) refreshAll() {
	entries := p.storeEntries()
	byHome := locate.GroupByHome(entries, p.homeOf)
	p.mu.Lock()
	for _, list := range byHome {
		for _, e := range list {
			p.lastHome[e.Seg] = p.homeOf(e.Seg)
		}
	}
	p.mu.Unlock()
	for home, list := range byHome {
		if home == p.id {
			p.table.Refresh(p.id, list)
			continue
		}
		home, list := home, list
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.call(home, wire.LocRefresh{From: p.id, Entries: list})
		}()
	}
}

func (p *Provider) storeEntries() []wire.LocEntry {
	return p.store.List()
}

// propagateSeg notifies a segment's stale replicas to pull the new version
// immediately after a location update reports a version advance.
func (p *Provider) propagateSeg(seg ids.SegID) {
	act, ok := p.table.ScanSeg(seg, p.members.IsLive)
	if !ok || len(act.Stale) == 0 {
		return
	}
	for _, stale := range act.Stale {
		stale := stale
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.call(stale, wire.SyncNotify{Seg: act.Seg, Version: act.Latest, Source: act.Source})
		}()
	}
}

// repairScan is the home-host maintenance pass: notify stale replicas to
// sync and create new replicas for under-replicated segments (paper §3.6).
// RepairNeeds returns the sync/repair actions this node is responsible for
// as home host under its current membership view. Table records for
// segments whose home role lies elsewhere are excluded: a node that
// rejoined from a crash with a momentarily tiny view registers its segments
// with itself, and repair-scanning those stale records livelocks — every
// replica site already announces to the rightful home, never to us. The
// rightful home repairs them; GarbageAge purges the stale records.
func (p *Provider) RepairNeeds() []locate.SyncAction {
	actions := p.table.Scan(p.members.IsLive)
	out := actions[:0]
	for _, act := range actions {
		if p.homeOf(act.Seg) == p.id {
			out = append(out, act)
		}
	}
	return out
}

func (p *Provider) repairScan() {
	actions := p.RepairNeeds()
	budget := p.cfg.RepairBatch
	for _, act := range actions {
		if budget <= 0 {
			return
		}
		// Stale replicas: tell them to pull the latest version.
		for _, stale := range act.Stale {
			if budget <= 0 {
				return
			}
			budget--
			stale := stale
			act := act
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.call(stale, wire.SyncNotify{Seg: act.Seg, Version: act.Latest, Source: act.Source})
			}()
		}
		// Replication deficit: choose fresh sites, spreading replicas
		// across racks when the labels allow it.
		if act.Deficit > 0 {
			exclude := make(map[wire.NodeID]bool, len(act.CurrentOwners))
			for _, o := range act.CurrentOwners {
				exclude[o] = true
			}
			racks := p.rackMap()
			excludeRacks := make(map[string]bool)
			for _, o := range act.CurrentOwners {
				if r := racks[o]; r != "" {
					excludeRacks[r] = true
				}
			}
			cands := p.candidates()
			for i := 0; i < act.Deficit && budget > 0; i++ {
				dest, err := p.selector.Choose(cands, placement.Options{
					Alpha:        0.5,
					SegSize:      act.Size,
					Exclude:      exclude,
					Racks:        racks,
					ExcludeRacks: excludeRacks,
				})
				if err != nil {
					break
				}
				exclude[dest] = true
				if r := racks[dest]; r != "" {
					excludeRacks[r] = true
				}
				budget--
				dest, act := dest, act
				p.wg.Add(1)
				go func() {
					defer p.wg.Done()
					p.call(dest, wire.ReplicateNotify{
						Seg:               act.Seg,
						Version:           act.Latest,
						Source:            act.Source,
						ReplDeg:           act.ReplDeg,
						LocalityThreshold: act.LocalityThreshold,
					})
				}()
			}
		}
	}
}

// rackMap snapshots the gossiped rack labels of the live providers.
func (p *Provider) rackMap() map[wire.NodeID]string {
	loads := p.members.Loads()
	out := make(map[wire.NodeID]string, len(loads))
	for node, l := range loads {
		if l.Rack != "" {
			out[node] = l.Rack
		}
	}
	return out
}

// candidates snapshots the live providers with their gossiped loads.
func (p *Provider) candidates() []placement.Candidate {
	loads := p.members.Loads()
	out := make([]placement.Candidate, 0, len(loads))
	var all []placement.Candidate // fallback when every live node is draining
	for node, l := range loads {
		c := placement.Candidate{Node: node, Load: l.Load, FreeBytes: l.FreeBytes}
		all = append(all, c)
		if l.Draining {
			continue
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return all
	}
	return out
}
