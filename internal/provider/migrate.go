package provider

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/migration"
	"repro/internal/placement"
	"repro/internal/wire"
)

// MigrationConfig tunes the provider's migration engine (paper §3.7).
type MigrationConfig struct {
	// Enabled turns migration on (Figure 14's Sorrento-space variant runs
	// with it off).
	Enabled bool
	// Interval is the decision cadence (paper: once per minute).
	Interval time.Duration
	// LocalityEnabled turns on locality-driven migration for segments with
	// a locality threshold (paper §3.7.2).
	LocalityEnabled bool
	// MinTraffic is the minimum access-history depth before a locality
	// decision is trusted.
	MinTraffic int
}

// DefaultMigrationConfig matches the paper.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		Enabled:         true,
		Interval:        time.Minute,
		LocalityEnabled: true,
		MinTraffic:      20,
	}
}

func (c MigrationConfig) withDefaults() MigrationConfig {
	def := DefaultMigrationConfig()
	if c.Interval <= 0 {
		c.Interval = def.Interval
	}
	if c.MinTraffic <= 0 {
		c.MinTraffic = def.MinTraffic
	}
	return c
}

// migrationTick runs one migration decision (at most one active migration
// per node, §3.7.1).
func (p *Provider) migrationTick() {
	if !p.cfg.Migration.Enabled && !p.cfg.Migration.LocalityEnabled {
		return
	}
	// A draining node is already moving everything it has; the balance
	// triggers would only fight the drain worker over the same segments.
	if p.draining.Load() {
		return
	}
	p.mu.Lock()
	if p.migrBusy {
		p.mu.Unlock()
		return
	}
	p.migrBusy = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.migrBusy = false
		p.mu.Unlock()
	}()

	if p.cfg.Migration.LocalityEnabled && p.localityMigrate() {
		return
	}
	if p.cfg.Migration.Enabled {
		p.loadMigrate()
	}
}

// localityMigrate scans locality-managed segments for one whose traffic is
// dominated by a remote provider and moves it there. It returns true when a
// migration was performed.
func (p *Provider) localityMigrate() bool {
	for _, seg := range p.store.Segments() {
		node, share, samples, ok := p.store.TrafficShare(seg)
		if !ok || samples < p.cfg.Migration.MinTraffic {
			continue
		}
		threshold := p.store.LocalityThreshold(seg)
		if !migration.LocalityMove(p.id, node, share, threshold, p.members.IsLive) {
			continue
		}
		if err := p.migrateSegment(seg, node); err == nil {
			p.pm.migrLocality.Inc()
			return true
		}
	}
	return false
}

// loadMigrate evaluates the imbalance trigger and migrates one segment.
func (p *Provider) loadMigrate() {
	cluster := p.clusterStats()
	self := migration.NodeStat{
		ID:       p.id,
		IOLoad:   p.ioEWMA.Value(),
		UsedFrac: p.store.Disk().UsedFrac(),
	}
	trigger := migration.Decide(self, cluster)
	if trigger == migration.None {
		return
	}
	seg, ok := migration.PickSegment(trigger, p.segmentInfos())
	if !ok {
		return
	}
	exclude := map[wire.NodeID]bool{p.id: true}
	// Exclude the segment's other replica holders (known to its home host)
	// so migration keeps replicas on distinct providers.
	if home := p.homeOf(seg.ID); home != "" {
		if resp, err := p.call(home, wire.LocQuery{Seg: seg.ID}); err == nil {
			if q, ok := resp.(wire.LocQueryResp); ok {
				for _, o := range q.Owners {
					exclude[o.Node] = true
				}
			}
		}
	}
	dest, err := p.selector.Choose(p.candidates(), placement.Options{
		Alpha:   migration.DestAlpha(trigger),
		SegSize: seg.Size,
		Exclude: exclude,
	})
	if err != nil {
		return
	}
	if p.migrateSegment(seg.ID, dest) == nil {
		switch trigger {
		case migration.IOLoad:
			p.pm.migrIOLoad.Inc()
		case migration.Space:
			p.pm.migrSpace.Inc()
		}
	}
}

// migrateSegment moves one segment: the destination pulls a replica, then
// the local copy is erased (migration = replicate elsewhere + erase local,
// §3.7.1). Segments with open shadows are never migrated, and the local
// erase is skipped if the segment's version advanced while the destination
// was pulling — deleting then would destroy a newer committed version the
// destination never received.
func (p *Provider) migrateSegment(seg ids.SegID, dest wire.NodeID) error {
	st := p.store.Stat(seg)
	if !st.Present {
		return fmt.Errorf("provider %s: migrate %s: not present", p.id, seg.Short())
	}
	if st.HasShadow {
		return fmt.Errorf("provider %s: migrate %s: write session open", p.id, seg.Short())
	}
	if dest == p.id {
		return fmt.Errorf("provider %s: migrate %s to self", p.id, seg.Short())
	}
	resp, err := p.call(dest, wire.ReplicateNotify{
		Seg:               seg,
		Version:           st.Version,
		Source:            p.id,
		ReplDeg:           st.ReplDeg,
		LocalityThreshold: p.store.LocalityThreshold(seg),
		// The local copy is erased on OK: make the destination read-back-
		// verify before acking, so a lying media write cannot destroy the
		// last clean replica.
		Handoff: true,
	})
	if err != nil {
		return err
	}
	if g, ok := resp.(wire.GenericResp); !ok || !g.OK {
		return fmt.Errorf("provider %s: migrate %s to %s: %s", p.id, seg.Short(), dest, g.Err)
	}
	if after := p.store.Stat(seg); after.Version != st.Version || after.HasShadow {
		return fmt.Errorf("provider %s: migrate %s: version advanced during transfer", p.id, seg.Short())
	}
	if err := p.store.Delete(seg); err != nil {
		return err
	}
	p.notifyHome(seg, true)
	return nil
}

// clusterStats snapshots cluster-wide I/O and space statistics (self
// included) from the gossiped heartbeats.
func (p *Provider) clusterStats() []migration.NodeStat {
	loads := p.members.Loads()
	out := make([]migration.NodeStat, 0, len(loads)+1)
	seenSelf := false
	for node, l := range loads {
		if node == p.id {
			seenSelf = true
		}
		out = append(out, migration.NodeStat{ID: node, IOLoad: l.IOWaitEWMA, UsedFrac: l.UsedFrac()})
	}
	if !seenSelf {
		out = append(out, migration.NodeStat{ID: p.id, IOLoad: p.ioEWMA.Value(), UsedFrac: p.store.Disk().UsedFrac()})
	}
	return out
}

// segmentInfos snapshots local segments with their temperatures.
func (p *Provider) segmentInfos() []migration.SegmentInfo {
	segs := p.store.Segments()
	out := make([]migration.SegmentInfo, 0, len(segs))
	for _, seg := range segs {
		st := p.store.Stat(seg)
		lat, _ := p.store.LastAccess(seg)
		out = append(out, migration.SegmentInfo{ID: seg, Size: st.Size, LastAccess: lat})
	}
	return out
}
