package provider_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/provider"
	"repro/internal/wire"
)

// fastOpts builds cluster options with short maintenance cycles so
// self-organization is observable quickly in modeled time.
func fastOpts(providers int) cluster.Options {
	pcfg := provider.DefaultConfig()
	pcfg.RefreshInterval = 10 * time.Second
	pcfg.GarbageAge = 25 * time.Second
	pcfg.RepairInterval = 2 * time.Second
	pcfg.RepairBatch = 8
	pcfg.Migration.Interval = 5 * time.Second
	return cluster.Options{
		Providers: providers,
		Scale:     0.0005,
		Provider:  pcfg,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
	}
}

func startCluster(t *testing.T, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(opts.Providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

func mkClient(t *testing.T, c *cluster.Cluster, name string) *core.Client {
	t.Helper()
	cl, err := c.NewClient(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitForProviders(1, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return cl
}

// replicaCount counts providers holding a committed copy of seg.
func replicaCount(c *cluster.Cluster, seg wire.FileEntry) int {
	n := 0
	for _, p := range c.Providers() {
		if p.Store().Stat(seg.FileID).Present {
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, wallTimeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(wallTimeout)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timeout waiting for %s", what)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestFailureDetectionAndDataRecovery(t *testing.T) {
	c := startCluster(t, fastOpts(5))
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 3
	f, err := cl.Create("/vital", attrs)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 100<<10), 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entry, _ := cl.Stat("/vital")

	// Wait for full replication.
	waitFor(t, 20*time.Second, "initial replication", func() bool {
		return replicaCount(c, entry) >= 3
	})

	// Kill a provider holding a replica.
	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			victim = id
			break
		}
	}
	if err := c.KillProvider(victim); err != nil {
		t.Fatal(err)
	}

	// Failure detection: survivors drop the victim from their live sets.
	waitFor(t, 30*time.Second, "failure detection", func() bool {
		for _, p := range c.Providers() {
			if p.Members().IsLive(victim) {
				return false
			}
		}
		return true
	})

	// Data recovery: the replication degree is restored on the survivors.
	waitFor(t, 60*time.Second, "re-replication", func() bool {
		return replicaCount(c, entry) >= 3
	})

	// The file remains fully readable throughout.
	g, err := cl.Open("/vital")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after failure: %v", err)
	}
}

func TestNodeAdditionJoinsRing(t *testing.T) {
	c := startCluster(t, fastOpts(3))
	cl := mkClient(t, c, "c1")
	f, _ := cl.Create("/f", wire.DefaultAttrs())
	f.WriteAt(make([]byte, 50<<10), 0)
	f.Close()

	// Add a provider; everyone must learn about it.
	if _, err := c.AddProvider(cluster.ProviderID(9)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "join detection", func() bool {
		for _, p := range c.Providers() {
			if !p.Members().IsLive(cluster.ProviderID(9)) {
				return false
			}
		}
		return cl.Members().IsLive(cluster.ProviderID(9))
	})

	// Existing data stays reachable after re-homing (some segments' home
	// hosts moved to the new node, which owners must refresh).
	waitFor(t, 60*time.Second, "post-join readability", func() bool {
		g, err := cl.Open("/f")
		if err != nil {
			return false
		}
		buf := make([]byte, 512)
		_, rerr := g.ReadAt(buf, 0)
		return rerr == nil
	})
}

func TestRepairedNodeRejoinsAndContentSurvives(t *testing.T) {
	// Paper §2.2: a repaired machine reconnects without reformatting; the
	// system determines what is current. Here a new provider with the same
	// ID joins (simnet frees the ID) and the cluster keeps working.
	c := startCluster(t, fastOpts(4))
	cl := mkClient(t, c, "c1")
	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, _ := cl.Create("/f", attrs)
	f.WriteAt(make([]byte, 30<<10), 0)
	f.Close()
	entry, _ := cl.Stat("/f")
	waitFor(t, 20*time.Second, "replication", func() bool { return replicaCount(c, entry) >= 2 })

	victim := cluster.ProviderID(2)
	c.KillProvider(victim)
	c.Fabric.Remove(victim)
	waitFor(t, 30*time.Second, "failure detection", func() bool {
		return !cl.Members().IsLive(victim)
	})
	if _, err := c.AddProvider(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "rejoin", func() bool { return cl.Members().IsLive(victim) })
	g, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after rejoin: %v", err)
	}
}

func TestSpaceTriggeredMigration(t *testing.T) {
	// Load one provider's disk far beyond its peers and verify segments
	// migrate off it.
	opts := fastOpts(5)
	opts.DiskCapacity = 4 << 20 // 4 MB per provider
	c := startCluster(t, opts)
	cl := mkClient(t, c, "c1")

	// Fill one provider directly through its store to create the imbalance.
	var fat *provider.Provider
	for _, p := range c.Providers() {
		fat = p
		break
	}
	for i := 0; i < 12; i++ {
		seg := newSeg()
		if err := fat.Store().Create(seg, make([]byte, 256<<10), 1, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	_ = cl // the client only anchors the cluster's client view

	// Migration should shed cold segments to space-rich peers: the fat
	// provider drains while the shed segments appear elsewhere.
	waitFor(t, 90*time.Second, "space-triggered migration", func() bool {
		others := 0
		for id, p := range c.Providers() {
			if p == fat {
				_ = id
				continue
			}
			others += p.Store().Len()
		}
		return fat.Store().Disk().UsedFrac() < 0.55 && others >= 3
	})
}

func TestLocalityDrivenMigration(t *testing.T) {
	opts := fastOpts(4)
	c := startCluster(t, opts)

	// A co-located client on p00 hammers a locality-managed segment that
	// lives on another provider; the segment should migrate to p00.
	cl, err := c.NewClientAt("c1", cluster.ProviderID(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitForProviders(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	attrs := wire.DefaultAttrs()
	attrs.LocalityThreshold = 0.6
	attrs.Policy = wire.PlaceRandom
	f, err := cl.Create("/hot", attrs)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 100<<10), 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Hammer reads from p00's co-located client until the data lands on
	// p00 itself.
	waitFor(t, 120*time.Second, "locality migration", func() bool {
		g, err := cl.Open("/hot")
		if err != nil {
			return false
		}
		buf := make([]byte, 64<<10)
		for off := int64(0); off < 100<<10; off += 64 << 10 {
			g.ReadAt(buf, off)
		}
		// Are all data segments now on p00?
		p0 := c.Provider(cluster.ProviderID(0))
		entry, _ := cl.Stat("/hot")
		_ = entry
		return p0.Store().Len() >= 2 // index may stay; data segments arrive
	})
}

var segCounter int

func newSeg() (id [16]byte) {
	segCounter++
	id[0] = byte(segCounter)
	id[1] = byte(segCounter >> 8)
	id[15] = 0xAB
	return id
}

func TestLocationRefreshAfterGarbagePurge(t *testing.T) {
	// Periodic refresh must keep entries alive past the garbage age.
	c := startCluster(t, fastOpts(3))
	cl := mkClient(t, c, "c1")
	f, _ := cl.Create("/f", wire.DefaultAttrs())
	f.WriteAt(make([]byte, 30<<10), 0)
	f.Close()

	// Sleep well past GarbageAge (25 s) in modeled time; refresh cycles
	// (10 s) must keep the file locatable.
	c.Clock.Sleep(60 * time.Second)
	g, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after refresh cycles: %v", err)
	}
}

func TestRackAwareReplicaPlacement(t *testing.T) {
	// Four providers across two racks; a 2×-replicated file's replicas
	// must land on distinct racks (paper §3.7.2's GoogleFS-style goal).
	opts := fastOpts(-1)
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	racks := map[wire.NodeID]string{
		cluster.ProviderID(0): "rackA",
		cluster.ProviderID(1): "rackA",
		cluster.ProviderID(2): "rackB",
		cluster.ProviderID(3): "rackB",
	}
	for i := 0; i < 4; i++ {
		id := cluster.ProviderID(i)
		if _, err := c.AddProviderCfg(id, func(cfg *provider.Config) {
			cfg.Rack = racks[id]
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitStable(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	cl := mkClient(t, c, "c1")

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	// Several files, so at least one's two index replicas are checkable.
	for i := 0; i < 6; i++ {
		f, err := cl.Create("/rack"+string(rune('0'+i)), attrs)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(make([]byte, 30<<10), 0)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for replication, then check every fully replicated segment
	// spans both racks.
	waitFor(t, 30*time.Second, "replication", func() bool {
		return c.PendingRepairs() == 0
	})
	checked, crossRack := 0, 0
	for i := 0; i < 6; i++ {
		entry, _ := cl.Stat("/rack" + string(rune('0'+i)))
		holders := map[string]bool{}
		for id, p := range c.Providers() {
			if p.Store().Stat(entry.FileID).Present {
				holders[racks[id]] = true
			}
		}
		if len(holders) > 0 {
			checked++
			if len(holders) == 2 {
				crossRack++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no replicated files to check")
	}
	if crossRack < checked {
		t.Errorf("only %d/%d files span both racks", crossRack, checked)
	}
}
