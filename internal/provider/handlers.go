package provider

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/segstore"
	"repro/internal/wire"
)

// handler adapts a Provider to transport.Handler without exporting the
// methods on Provider itself.
type handler Provider

func (h *handler) p() *Provider { return (*Provider)(h) }

// HandleCall implements transport.Handler.
func (h *handler) HandleCall(ctx context.Context, from wire.NodeID, req any) (any, error) {
	p := h.p()
	switch m := req.(type) {
	case wire.SegRead:
		return p.handleRead(from, m), nil
	case wire.SegCreate:
		return p.handleCreate(from, m), nil
	case wire.SegShadow:
		return p.handleShadow(m), nil
	case wire.SegWrite:
		return p.handleWrite(from, m), nil
	case wire.SegShadowRead:
		return p.handleShadowRead(m), nil
	case wire.SegTruncate:
		p.charge()
		return genResp(p.store.TruncateShadow(m.Owner, m.Seg, m.Size)), nil
	case wire.SegRenew:
		p.charge()
		return genResp(p.store.Renew(m.Owner, m.Seg, time.Duration(m.TTLSec*float64(time.Second)))), nil
	case wire.SegDrop:
		p.charge()
		return genResp(p.store.Drop(m.Owner, m.Seg)), nil
	case wire.SegDelete:
		p.charge()
		err := p.store.Delete(m.Seg)
		if err == nil {
			p.notifyHome(m.Seg, true)
		}
		return genResp(err), nil
	case wire.SegPin:
		p.charge()
		if m.Unpin {
			return genResp(p.store.UnpinVersion(m.Seg, m.Version)), nil
		}
		return genResp(p.store.PinVersion(m.Seg, m.Version)), nil
	case wire.SegStat:
		p.charge()
		st := p.store.Stat(m.Seg)
		return wire.SegStatResp{OK: st.Present, Version: st.Version, Size: st.Size, Shadow: st.HasShadow}, nil
	case wire.SegFetch:
		return p.handleFetch(m), nil
	case wire.SegFetchDelta:
		return p.handleFetchDelta(m), nil
	case wire.Prepare2PC:
		return p.handlePrepare(m), nil
	case wire.Commit2PC:
		return p.handleCommit(m), nil
	case wire.Abort2PC:
		return p.handleAbort(m), nil
	case wire.LocRefresh:
		p.charge()
		p.table.Refresh(m.From, m.Entries)
		return wire.GenericResp{OK: true}, nil
	case wire.LocUpdate:
		p.charge()
		p.table.Update(m.From, m.Entry, m.Removed)
		if !m.Removed {
			// Version advance: start update propagation to stale replicas
			// right away (Figure 6 steps 10–12); the periodic repair scan
			// remains the backstop.
			p.propagateSeg(m.Entry.Seg)
		}
		return wire.GenericResp{OK: true}, nil
	case wire.LocQuery:
		p.charge()
		owners := p.table.Owners(m.Seg)
		if len(owners) > 0 {
			p.pm.locHits.Inc()
		} else {
			p.pm.locMisses.Inc()
		}
		return wire.LocQueryResp{OK: len(owners) > 0, Owners: owners}, nil
	case wire.SyncNotify:
		return p.handleSync(m), nil
	case wire.ReplicateNotify:
		return p.handleReplicate(m), nil
	case wire.MigrateRequest:
		return genResp(p.migrateSegment(m.Seg, m.Dest)), nil
	case wire.AdminDrain:
		if m.Node != "" && m.Node != p.id {
			return wire.GenericResp{Err: fmt.Sprintf("provider %s: drain addressed to %s", p.id, m.Node)}, nil
		}
		return genResp(p.Drain(m.Abort)), nil
	case wire.AdminStatus:
		if m.Node != "" && m.Node != p.id {
			return wire.AdminStatusResp{Err: fmt.Sprintf("provider %s: status addressed to %s", p.id, m.Node)}, nil
		}
		return p.AdminState(), nil
	case wire.AdminRetire:
		if m.Node != "" && m.Node != p.id {
			return wire.GenericResp{Err: fmt.Sprintf("provider %s: retire addressed to %s", p.id, m.Node)}, nil
		}
		return genResp(p.Retire()), nil
	default:
		return nil, fmt.Errorf("provider %s: unknown request %T", p.id, req)
	}
}

// HandleCast implements transport.Handler: heartbeats feed membership, and
// multicast location probes (the backup scheme, §3.4.2) are answered with a
// unicast response when this node owns the segment.
func (h *handler) HandleCast(from wire.NodeID, msg any) {
	p := h.p()
	switch m := msg.(type) {
	case wire.Heartbeat:
		p.members.ObserveHeartbeat(m)
	case wire.LocProbe:
		st := p.store.Stat(m.Seg)
		if !st.Present {
			return
		}
		resp := wire.LocProbeResp{Seg: m.Seg, Nonce: m.Nonce, Owner: p.id, Version: st.Version}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.call(m.Asker, resp)
		}()
	}
}

func genResp(err error) wire.GenericResp {
	if err != nil {
		return wire.GenericResp{Err: err.Error()}
	}
	return wire.GenericResp{OK: true}
}

// handleRead serves segment data when this node owns the segment; when it
// is only the home host it redirects to the owners; otherwise it reports
// failure so the client can fall back to the multicast probe.
func (p *Provider) handleRead(from wire.NodeID, m wire.SegRead) wire.SegReadResp {
	p.charge()
	data, ver, err := p.store.Read(m.Seg, m.Version, m.Offset, m.Length)
	switch {
	case err == nil:
		p.store.RecordAccess(m.Seg, from, int64(len(data)))
		// Sum covers the served slice (already verified against commit-time
		// block sums by the store) so the client can verify end to end.
		return wire.SegReadResp{OK: true, Version: ver, Data: data, EOF: int64(len(data)) < m.Length, Sum: wire.SumOf(data)}
	case errors.Is(err, segstore.ErrNotFound), errors.Is(err, segstore.ErrNoVersion):
		owners := p.table.Owners(m.Seg)
		if len(owners) > 0 {
			return wire.SegReadResp{OK: true, Redirect: true, Owners: owners}
		}
		return wire.SegReadResp{Err: err.Error()}
	default:
		return wire.SegReadResp{Err: err.Error()}
	}
}

// handleCreate materializes a new segment placed on this node.
func (p *Provider) handleCreate(from wire.NodeID, m wire.SegCreate) wire.SegCreateResp {
	p.charge()
	ver := m.Version
	if ver == 0 {
		ver = 1
	}
	var err error
	if ver == 1 {
		err = p.store.Create(m.Seg, m.Data, m.ReplDeg, m.LocalityThreshold, m.Direct)
	} else {
		err = p.store.Install(m.Seg, ver, m.Data, m.ReplDeg, m.LocalityThreshold)
	}
	if err != nil {
		return wire.SegCreateResp{Err: err.Error()}
	}
	p.store.RecordAccess(m.Seg, from, int64(len(m.Data)))
	p.notifyHome(m.Seg, false)
	return wire.SegCreateResp{OK: true}
}

func (p *Provider) handleShadow(m wire.SegShadow) wire.SegShadowResp {
	p.charge()
	replDeg := m.ReplDeg
	if replDeg <= 0 {
		replDeg = 1
	}
	created, size, err := p.store.Shadow(m.Owner, m.Seg, m.BaseVer, time.Duration(m.TTLSec*float64(time.Second)), replDeg, m.LocalityThreshold)
	if err != nil {
		return wire.SegShadowResp{Err: err.Error()}
	}
	return wire.SegShadowResp{OK: true, Size: size, Created: created}
}

func (p *Provider) handleWrite(from wire.NodeID, m wire.SegWrite) wire.SegWriteResp {
	p.charge()
	if m.Direct {
		if err := p.store.WriteDirect(m.Seg, m.Offset, m.Data); err != nil {
			return wire.SegWriteResp{Err: err.Error()}
		}
		p.store.RecordAccess(m.Seg, from, int64(len(m.Data)))
		return wire.SegWriteResp{OK: true, N: len(m.Data)}
	}
	n, err := p.store.WriteShadow(m.Owner, m.Seg, m.Offset, m.Data)
	if err != nil {
		return wire.SegWriteResp{Err: err.Error()}
	}
	p.store.RecordAccess(m.Seg, from, int64(n))
	return wire.SegWriteResp{OK: true, N: n}
}

func (p *Provider) handleShadowRead(m wire.SegShadowRead) wire.SegReadResp {
	p.charge()
	data, err := p.store.ReadShadow(m.Owner, m.Seg, m.Offset, m.Length)
	if err != nil {
		return wire.SegReadResp{Err: err.Error()}
	}
	return wire.SegReadResp{OK: true, Data: data, EOF: int64(len(data)) < m.Length}
}

func (p *Provider) handleFetch(m wire.SegFetch) wire.SegFetchResp {
	p.charge()
	data, ver, replDeg, locThresh, sums, err := p.store.Fetch(m.Seg, m.Version)
	if err != nil {
		return wire.SegFetchResp{Err: err.Error()}
	}
	return wire.SegFetchResp{OK: true, Version: ver, Data: data, ReplDeg: replDeg, LocalityThreshold: locThresh, Sums: sums}
}

func (p *Provider) handleFetchDelta(m wire.SegFetchDelta) wire.SegFetchDeltaResp {
	p.charge()
	ranges, size, ver, replDeg, locThresh, full, sums, err := p.store.FetchDelta(m.Seg, m.HaveVer)
	if err != nil {
		return wire.SegFetchDeltaResp{Err: err.Error()}
	}
	return wire.SegFetchDeltaResp{
		OK: true, Version: ver, Size: size, Ranges: ranges,
		FullFallback: full != nil, Full: full,
		ReplDeg: replDeg, LocalityThreshold: locThresh, Sums: sums,
	}
}

func (p *Provider) handlePrepare(m wire.Prepare2PC) wire.Prepare2PCResp {
	p.charge()
	p.pm.prepare2PC.Inc()
	start := p.clock.Now()
	defer func() { p.pm.prepareLat.ObserveDuration(p.clock.Now() - start) }()
	resp := wire.Prepare2PCResp{OK: true}
	for i, seg := range m.Segs {
		ver, size, err := p.store.Prepare(m.Owner, seg)
		if err != nil {
			// Roll back the segments prepared so far in this request.
			for _, done := range m.Segs[:i] {
				p.store.AbortPrepared(m.Owner, done)
			}
			return wire.Prepare2PCResp{Err: err.Error()}
		}
		resp.PlannedVers = append(resp.PlannedVers, ver)
		resp.Sizes = append(resp.Sizes, size)
	}
	return resp
}

func (p *Provider) handleCommit(m wire.Commit2PC) wire.GenericResp {
	p.charge()
	p.pm.commit2PC.Inc()
	start := p.clock.Now()
	defer func() { p.pm.commitLat.ObserveDuration(p.clock.Now() - start) }()
	for i, seg := range m.Segs {
		if _, _, err := p.store.CommitPrepared(m.Owner, seg); err != nil {
			// Idempotent retry: when the shadow is gone but the segment has
			// already reached the planned version, an earlier attempt's
			// commit landed and only its response was lost — acknowledge.
			if i < len(m.Planned) && m.Planned[i] != 0 &&
				(errors.Is(err, segstore.ErrNoShadow) || errors.Is(err, segstore.ErrNotFound) || errors.Is(err, segstore.ErrUnprepared)) &&
				p.store.Stat(seg).Version >= m.Planned[i] {
				continue
			}
			return wire.GenericResp{Err: fmt.Sprintf("commit %s: %v", seg.Short(), err)}
		}
		// Fast-path location update: the segment's version advanced
		// (paper §3.4.1 event 4, Figure 6 step 10).
		p.notifyHome(seg, false)
	}
	return wire.GenericResp{OK: true}
}

func (p *Provider) handleAbort(m wire.Abort2PC) wire.GenericResp {
	p.charge()
	p.pm.abort2PC.Inc()
	for _, seg := range m.Segs {
		p.store.AbortPrepared(m.Owner, seg)
	}
	return wire.GenericResp{OK: true}
}

// handleSync pulls the latest version of a stale local replica from source
// (lazy update propagation, §3.6).
func (p *Provider) handleSync(m wire.SyncNotify) wire.GenericResp {
	p.charge()
	st := p.store.Stat(m.Seg)
	if !st.Present || st.Version >= m.Version {
		if st.Present {
			// Already current yet the home still thinks we're stale: our
			// last location announcement was lost (e.g. to a partition).
			// Re-announce, or the home re-notifies every repair scan until
			// the next full refresh — a 15-minute livelock.
			p.notifyHomeSync(m.Seg)
		}
		return wire.GenericResp{OK: true} // nothing to do
	}
	return p.pullSegment(m.Seg, m.Version, m.Source, 0, 0)
}

// handleReplicate makes this node a new replica site by pulling from source.
func (p *Provider) handleReplicate(m wire.ReplicateNotify) wire.GenericResp {
	p.charge()
	if st := p.store.Stat(m.Seg); st.Present && st.Version >= m.Version {
		// The home chose us as a new replica site because it does not know
		// we already hold the segment; re-announce so the deficit clears.
		p.notifyHomeSync(m.Seg)
		if m.Handoff {
			return p.verifyHandoff(m)
		}
		return wire.GenericResp{OK: true}
	}
	g := p.pullSegment(m.Seg, m.Version, m.Source, m.ReplDeg, m.LocalityThreshold)
	if g.OK && m.Handoff {
		return p.verifyHandoff(m)
	}
	return g
}

// verifyHandoff read-back-verifies a migration-class install before the OK
// that licenses the source to erase its copy. A coalesced pull (another
// transfer in flight) or a media write fault both fail the check here, so
// the source keeps the segment and the migration retries later; a corrupt
// install is dropped on the spot rather than left for the scrubber.
func (p *Provider) verifyHandoff(m wire.ReplicateNotify) wire.GenericResp {
	if st := p.store.Stat(m.Seg); !st.Present || st.Version < m.Version {
		return wire.GenericResp{Err: "handoff: replica not yet installed"}
	}
	if !p.store.VerifyVersion(m.Seg, 0) {
		p.store.ScrubSegment(m.Seg)
		return wire.GenericResp{Err: "handoff: installed bytes failed verification"}
	}
	return wire.GenericResp{OK: true}
}

// maxPullAttempts bounds how many times a replica pull is retried across
// alternate sources before giving up and leaving the segment to the next
// repair scan.
const maxPullAttempts = 3

// pullSegment brings the local replica up to the source's latest version:
// delta sync when a local base version exists (paper §3.6: replicas
// "retrieve the updates"), full fetch otherwise. Concurrent pulls of the
// same segment are coalesced — repair scans re-notify long before a big
// transfer finishes, and duplicate fetches would melt the links. A failed
// pull is retried with backoff, rotating across the other live replica
// sites the location table knows about, so a source that crashed between
// notify and fetch does not wedge recovery.
func (p *Provider) pullSegment(seg [16]byte, ver uint64, source wire.NodeID, replDeg int, locThresh float64) wire.GenericResp {
	p.mu.Lock()
	if p.pulling[seg] {
		p.mu.Unlock()
		return wire.GenericResp{OK: true} // already in progress
	}
	p.pulling[seg] = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.pulling, seg)
		p.mu.Unlock()
	}()
	// Bound concurrent pulls so background sync cannot starve foreground
	// traffic.
	p.pullSem <- struct{}{}
	defer func() { <-p.pullSem }()

	sources := p.pullSources(seg, source)
	var last wire.GenericResp
	for attempt := 0; attempt < maxPullAttempts; attempt++ {
		last = p.pullFrom(seg, sources[attempt%len(sources)], replDeg, locThresh)
		if last.OK {
			return last
		}
		if attempt+1 < maxPullAttempts {
			p.pm.pullRetries.Inc()
			if !p.sleepBackoff(attempt) {
				return last // stopping
			}
		}
	}
	return last
}

// pullSources orders candidate fetch sources: the notified source first,
// then any other live owners the location table knows for the segment.
func (p *Provider) pullSources(seg ids.SegID, primary wire.NodeID) []wire.NodeID {
	sources := []wire.NodeID{primary}
	for _, o := range p.table.Owners(seg) {
		if o.Node != primary && o.Node != p.id && p.members.IsLive(o.Node) {
			sources = append(sources, o.Node)
		}
	}
	return sources
}

// sleepBackoff sleeps an exponentially growing, seeded-jittered modeled
// delay between pull attempts. Returns false when the provider is stopping.
func (p *Provider) sleepBackoff(attempt int) bool {
	base := 250 * time.Millisecond << uint(attempt)
	p.mu.Lock()
	d := base/2 + time.Duration(p.rng.Int63n(int64(base)))
	p.mu.Unlock()
	select {
	case <-p.stop:
		return false
	case <-p.clock.After(d):
		return true
	}
}

// pullFrom is one pull attempt against one source.
func (p *Provider) pullFrom(seg ids.SegID, source wire.NodeID, replDeg int, locThresh float64) wire.GenericResp {
	local := p.store.Stat(seg)
	if local.Present && local.Version > 0 {
		resp, err := p.call(source, wire.SegFetchDelta{Seg: seg, HaveVer: local.Version})
		if err != nil {
			return wire.GenericResp{Err: err.Error()}
		}
		d, ok := resp.(wire.SegFetchDeltaResp)
		if ok && d.OK {
			if d.Version <= local.Version {
				return wire.GenericResp{OK: true} // already current
			}
			if !d.FullFallback {
				// ApplyDelta verifies the reconstructed buffer against the
				// sender's commit-time sums before committing it (ErrCorrupt
				// falls through to a full fetch like any local mismatch).
				if err := p.store.ApplyDelta(seg, local.Version, d.Version, d.Ranges, d.Size, replDeg, locThresh, d.Sums); err == nil {
					p.pm.pullsDelta.Inc()
					p.notifyHomeSync(seg)
					return wire.GenericResp{OK: true}
				}
				// Local state moved underneath us; fall through to a full
				// fetch.
			} else {
				if !verifyPayload(d.Full, d.Sums) {
					// Verify-on-replicate: never install bytes that fail the
					// sender's commit-time sums — corruption must not
					// propagate. Fail the attempt so the retry loop rotates
					// to another source.
					p.pm.pullRejects.Inc()
					return wire.GenericResp{Err: "pull: payload failed checksum"}
				}
				if err := p.store.Install(seg, d.Version, d.Full, orDefault(replDeg, d.ReplDeg), orDefaultF(locThresh, d.LocalityThreshold)); err != nil {
					return wire.GenericResp{Err: err.Error()}
				}
				p.pm.pullsFull.Inc()
				p.notifyHomeSync(seg)
				return wire.GenericResp{OK: true}
			}
		}
	}
	resp, err := p.call(source, wire.SegFetch{Seg: seg, Version: 0})
	if err != nil {
		return wire.GenericResp{Err: err.Error()}
	}
	f, ok := resp.(wire.SegFetchResp)
	if !ok || !f.OK {
		return wire.GenericResp{Err: "fetch failed: " + f.Err}
	}
	if !verifyPayload(f.Data, f.Sums) {
		p.pm.pullRejects.Inc()
		return wire.GenericResp{Err: "pull: payload failed checksum"}
	}
	if err := p.store.Install(seg, f.Version, f.Data, orDefault(replDeg, f.ReplDeg), orDefaultF(locThresh, f.LocalityThreshold)); err != nil {
		return wire.GenericResp{Err: err.Error()}
	}
	p.pm.pullsFull.Inc()
	p.notifyHomeSync(seg)
	return wire.GenericResp{OK: true}
}

// verifyPayload checks a fetched payload against the sender's commit-time
// sums. Nil sums means the payload carries no integrity metadata (direct
// segments, which replication skips anyway) and is accepted as-is.
func verifyPayload(data []byte, sums []uint32) bool {
	if sums == nil {
		return true
	}
	return wire.VerifySums(data, sums) < 0
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func orDefaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
