// Package cluster assembles a complete in-process Sorrento deployment over
// the simulated fabric: a namespace server, N storage providers, and any
// number of clients. It is the harness every integration test, example, and
// benchmark experiment builds on, and it provides the fault-injection hooks
// (kill/add provider) that the self-organization experiments need.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/layout"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/proxy"
	"repro/internal/segstore"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// NamespaceNode is the namespace server's node ID in every cluster.
const NamespaceNode wire.NodeID = "ns"

// Options configure a cluster.
type Options struct {
	// Providers is the initial storage provider count.
	Providers int
	// Scale is the simtime compression (wall seconds per modeled second).
	Scale float64
	// Net is the fabric model (zero value = Fast Ethernet).
	Net simnet.Config
	// DiskModel is the drive model (zero value = 10K rpm SCSI).
	DiskModel disk.Model
	// DiskCapacity is each provider's exported capacity in bytes.
	DiskCapacity int64
	// Provider tunes the provider daemons.
	Provider provider.Config
	// Namespace tunes the namespace server.
	Namespace namespace.Config
	// NamespaceWAL backs the namespace server's metadata log. Nil runs
	// without one; pass a namespace.MemWAL (or any WAL) to exercise
	// crash-recovery of the metadata service.
	NamespaceWAL namespace.WAL
	// Sizing is the segment sizing used by clients (zero = paper default).
	Sizing layout.Sizing
	// Heartbeat overrides the membership heartbeat interval for all nodes.
	Heartbeat time.Duration
	// Obs instruments the whole deployment (fabric NICs, providers,
	// namespace server, clients) into one registry. Nil disables it.
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.Providers == 0 {
		o.Providers = 4
	}
	if o.Providers < 0 {
		o.Providers = 0 // caller adds providers explicitly
	}
	if o.Scale <= 0 {
		o.Scale = 0.001
	}
	if o.DiskModel.TransferRate == 0 {
		o.DiskModel = disk.SCSI10K()
	}
	if o.DiskCapacity <= 0 {
		o.DiskCapacity = 8 << 30
	}
	if o.Heartbeat > 0 {
		o.Provider.Membership.HeartbeatInterval = o.Heartbeat
	}
	return o
}

// Cluster is a running deployment.
type Cluster struct {
	opts   Options
	Clock  *simtime.Clock
	Fabric *simnet.Fabric
	NS     *namespace.Server

	mu        sync.Mutex
	providers map[wire.NodeID]*provider.Provider
	clients   []*core.Client
	proxies   []*proxy.Proxy
	adminEP   transport.Endpoint
	cfgs      map[wire.NodeID]provider.Config
	// graves keeps the segment store of each crashed provider — the modeled
	// equivalent of data surviving on disk across a machine crash — so
	// RestartProvider can bring the node back with its contents intact.
	graves map[wire.NodeID]*segstore.Store
}

// nsHandler adapts the namespace server to the transport.
type nsHandler struct{ s *namespace.Server }

func (h nsHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	return h.s.Handle(req)
}
func (h nsHandler) HandleCast(wire.NodeID, any) {}

// New builds and starts a cluster.
func New(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	clock := simtime.NewClock(opts.Scale)
	fabric := simnet.New(clock, opts.Net)
	if opts.Obs != nil {
		fabric.Instrument(opts.Obs)
	}
	ns, err := namespace.NewServer(clock, opts.Namespace, opts.NamespaceWAL)
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		ns.Instrument(opts.Obs)
	}
	if _, err := fabric.Join(NamespaceNode, nsHandler{ns}); err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:      opts,
		Clock:     clock,
		Fabric:    fabric,
		NS:        ns,
		providers: make(map[wire.NodeID]*provider.Provider),
		cfgs:      make(map[wire.NodeID]provider.Config),
		graves:    make(map[wire.NodeID]*segstore.Store),
	}
	for i := 0; i < opts.Providers; i++ {
		if _, err := c.AddProvider(ProviderID(i)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ProviderID names the i-th provider.
func ProviderID(i int) wire.NodeID { return wire.NodeID(fmt.Sprintf("p%02d", i)) }

// AddProvider joins a new storage provider (incremental expansion, §2.2).
func (c *Cluster) AddProvider(id wire.NodeID) (*provider.Provider, error) {
	return c.AddProviderCfg(id, nil)
}

// AddProviderCfg joins a provider with a per-node configuration tweak
// (e.g. a rack label).
func (c *Cluster) AddProviderCfg(id wire.NodeID, mutate func(*provider.Config)) (*provider.Provider, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.providers[id]; exists {
		return nil, fmt.Errorf("cluster: provider %s exists", id)
	}
	cfg := c.opts.Provider
	cfg.Seed = int64(len(c.providers) + 1)
	cfg.Obs = c.opts.Obs
	if mutate != nil {
		mutate(&cfg)
	}
	d := disk.New(c.Clock, string(id), c.opts.DiskModel, c.opts.DiskCapacity)
	p, err := provider.New(id, c.Clock, cfg, c.Fabric, d)
	if err != nil {
		return nil, err
	}
	p.Start()
	c.providers[id] = p
	c.cfgs[id] = cfg
	return p, nil
}

// Provider returns a running provider by ID (nil when absent or killed).
func (c *Cluster) Provider(id wire.NodeID) *provider.Provider {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.providers[id]
}

// Providers returns the running providers.
func (c *Cluster) Providers() map[wire.NodeID]*provider.Provider {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[wire.NodeID]*provider.Provider, len(c.providers))
	for id, p := range c.providers {
		out[id] = p
	}
	return out
}

// KillProvider crashes a provider: it stops answering and its peers detect
// the failure via missed heartbeats. The node's segment store survives (as
// data on disk would) and RestartProvider can bring it back.
func (c *Cluster) KillProvider(id wire.NodeID) error {
	c.mu.Lock()
	p, ok := c.providers[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no provider %s", id)
	}
	delete(c.providers, id)
	c.graves[id] = p.Store()
	c.mu.Unlock()
	p.Kill()
	return nil
}

// RestartProvider reboots a crashed provider with its on-disk contents
// intact: committed segments survive, uncommitted shadows are discarded
// (segstore.CrashRecover), and the fresh daemon re-announces itself so the
// location layer resyncs any writes it missed while down.
func (c *Cluster) RestartProvider(id wire.NodeID) (*provider.Provider, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	store, ok := c.graves[id]
	if !ok {
		return nil, fmt.Errorf("cluster: provider %s was not crashed", id)
	}
	cfg, ok := c.cfgs[id]
	if !ok {
		cfg = c.opts.Provider
		cfg.Obs = c.opts.Obs
	}
	store.CrashRecover()
	c.Fabric.Remove(id) // free the node ID left closed by Kill
	p, err := provider.NewWithStore(id, c.Clock, cfg, c.Fabric, store)
	if err != nil {
		return nil, err
	}
	p.Start()
	delete(c.graves, id)
	c.providers[id] = p
	return p, nil
}

// NewClient attaches a client running on its own machine.
func (c *Cluster) NewClient(name string) (*core.Client, error) {
	return c.newClient(name, "")
}

// NewClientAt attaches a client co-located with a provider (shares its
// NIC; local reads are free).
func (c *Cluster) NewClientAt(name string, host wire.NodeID) (*core.Client, error) {
	return c.newClient(name, host)
}

// NewClientCfg attaches a client with a per-client configuration tweak
// (e.g. MaxParallelIO for fan-out experiments). The mutate hook runs after
// the harness fills in its defaults.
func (c *Cluster) NewClientCfg(name string, mutate func(*core.Config)) (*core.Client, error) {
	return c.newClientCfg(name, "", mutate)
}

// NewClientAtCfg attaches a co-located client with a configuration tweak.
func (c *Cluster) NewClientAtCfg(name string, host wire.NodeID, mutate func(*core.Config)) (*core.Client, error) {
	return c.newClientCfg(name, host, mutate)
}

func (c *Cluster) newClient(name string, host wire.NodeID) (*core.Client, error) {
	return c.newClientCfg(name, host, nil)
}

func (c *Cluster) newClientCfg(name string, host wire.NodeID, mutate func(*core.Config)) (*core.Client, error) {
	c.mu.Lock()
	nclients := len(c.clients)
	c.mu.Unlock()
	cfg := core.Config{
		Namespace:  NamespaceNode,
		Host:       host,
		Sizing:     c.opts.Sizing,
		Membership: c.opts.Provider.Membership,
		Seed:       int64(nclients + 101),
		Obs:        c.opts.Obs,
	}
	// At heavy time compression, a "5 modeled minutes" shadow lease is only
	// milliseconds of wall time — shorter than real scheduling noise. Floor
	// the lease at a few wall seconds so leases only expire for modeled
	// reasons.
	if floor := c.Clock.Modeled(5 * time.Second); floor > 5*time.Minute {
		cfg.ShadowTTL = floor
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cl, err := core.NewClient(name, c.Clock, c.Fabric, cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl, nil
}

// AwaitStable blocks until every provider and client sees n live providers
// (or the modeled timeout passes).
func (c *Cluster) AwaitStable(n int, timeout time.Duration) error {
	deadline := c.Clock.Now() + timeout
	for {
		ok := true
		for _, p := range c.Providers() {
			if p.Members().Len() < n {
				ok = false
				break
			}
		}
		if ok {
			for _, cl := range c.Clients() {
				if cl.Members().Len() < n {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if c.Clock.Now() > deadline {
			return fmt.Errorf("cluster: not stable at %d providers within %v", n, timeout)
		}
		c.Clock.Sleep(200 * time.Millisecond)
	}
}

// Clients returns the attached clients.
func (c *Cluster) Clients() []*core.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*core.Client, len(c.clients))
	copy(out, c.clients)
	return out
}

// Stop shuts everything down.
func (c *Cluster) Stop() {
	for _, cl := range c.Clients() {
		cl.Close()
	}
	for _, px := range c.Proxies() {
		px.Close()
	}
	for _, p := range c.Providers() {
		p.Stop()
	}
}

// PendingRepairs sums the sync/repair actions outstanding across all
// running providers' home-host roles.
func (c *Cluster) PendingRepairs() int {
	n := 0
	for _, p := range c.Providers() {
		n += len(p.RepairNeeds())
	}
	return n
}

// AwaitQuiesce waits until no sync/repair work is outstanding (replicas
// caught up) or the modeled timeout passes.
func (c *Cluster) AwaitQuiesce(timeout time.Duration) error {
	deadline := c.Clock.Now() + timeout
	for c.PendingRepairs() > 0 {
		if c.Clock.Now() > deadline {
			return fmt.Errorf("cluster: %d repairs still pending after %v", c.PendingRepairs(), timeout)
		}
		c.Clock.Sleep(2 * time.Second)
	}
	return nil
}

// TotalReplicaCount sums the committed segment replicas across providers —
// used to observe recovery progress in the failure experiment.
func (c *Cluster) TotalReplicaCount() int {
	n := 0
	for _, p := range c.Providers() {
		n += p.Store().Len()
	}
	return n
}

// StorageUsedFracs returns each running provider's storage utilization —
// the metric of Figure 14.
func (c *Cluster) StorageUsedFracs() map[wire.NodeID]float64 {
	ps := c.Providers()
	out := make(map[wire.NodeID]float64, len(ps))
	for id, p := range ps {
		out[id] = p.Store().Disk().UsedFrac()
	}
	return out
}

var _ transport.Handler = nsHandler{}
