package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/segstore"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// FaultKind enumerates the chaos actions a schedule can inject.
type FaultKind string

const (
	// FaultPartition cuts a provider pair's link in both directions.
	FaultPartition FaultKind = "partition"
	// FaultLossy makes a link drop messages probabilistically and adds a
	// latency spike to the ones that survive.
	FaultLossy FaultKind = "lossy"
	// FaultPause freezes a provider process (gray failure): it stops
	// answering but never declares itself dead.
	FaultPause FaultKind = "pause"
	// FaultCrash kills a provider and later restarts it with its disk
	// contents intact.
	FaultCrash FaultKind = "crash"
	// FaultBitFlip rots one committed replica in place (silent media
	// corruption). A point event: there is no repair step — detection and
	// repair are the scrubber's job.
	FaultBitFlip FaultKind = "bitflip"
	// FaultTornWrite arms the victim's store so commits during the window
	// persist only a prefix of the new bytes (power-loss torn write).
	FaultTornWrite FaultKind = "tornwrite"
	// FaultLostWrite arms the victim's store so commits during the window
	// are acknowledged but the old contents stay on disk.
	FaultLostWrite FaultKind = "lostwrite"
)

// DefaultFaultKinds is the classic network/process chaos mix.
var DefaultFaultKinds = []FaultKind{FaultPartition, FaultLossy, FaultPause, FaultCrash}

// StorageFaultKinds are the storage-corruption injections (this file's
// bitflip/torn/lost kinds) layered on top of the classic mix by the
// corruption chaos suite.
var StorageFaultKinds = []FaultKind{FaultBitFlip, FaultTornWrite, FaultLostWrite}

// FaultEvent is one scheduled injection paired with its repair: the fault
// activates at At (modeled time from schedule start) and is repaired at
// At+For.
type FaultEvent struct {
	At   time.Duration
	For  time.Duration
	Kind FaultKind
	// A is the victim node; B is the far end for link faults.
	A, B wire.NodeID
	// Drop and Extra parameterize FaultLossy.
	Drop  float64
	Extra time.Duration
}

func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultPartition:
		return fmt.Sprintf("%v+%v partition %s<->%s", e.At, e.For, e.A, e.B)
	case FaultLossy:
		return fmt.Sprintf("%v+%v lossy %s<->%s drop=%.2f extra=%v", e.At, e.For, e.A, e.B, e.Drop, e.Extra)
	case FaultPause:
		return fmt.Sprintf("%v+%v pause %s", e.At, e.For, e.A)
	case FaultBitFlip:
		return fmt.Sprintf("%v bitflip %s", e.At, e.A)
	case FaultTornWrite, FaultLostWrite:
		return fmt.Sprintf("%v+%v %s %s p=%.2f", e.At, e.For, e.Kind, e.A, e.Drop)
	default:
		return fmt.Sprintf("%v+%v %s %s", e.At, e.For, e.Kind, e.A)
	}
}

// FaultSchedule is a deterministic chaos plan: the same seed and victim set
// always produce the same schedule, so a failing run replays exactly.
type FaultSchedule struct {
	Seed   int64
	Events []FaultEvent
}

// RandomFaultSchedule draws n fault events over the given modeled horizon
// against the victim nodes. Crash and pause windows never overlap on the
// same node, so every injection has a well-defined repair. Victims should
// be storage providers only — partitioning or crashing the namespace server
// is a different experiment.
func RandomFaultSchedule(seed int64, victims []wire.NodeID, horizon time.Duration, n int) FaultSchedule {
	return RandomFaultScheduleKinds(seed, victims, horizon, n, DefaultFaultKinds)
}

// RandomFaultScheduleKinds is RandomFaultSchedule drawing from an explicit
// fault-kind mix. Write-fault windows (torn/lost) never overlap each other
// anywhere in the cluster: a commit strikes its replicas on distinct nodes,
// so with at most one armed node at a time every acked version retains at
// least one clean replica — the corruption is always detectable via checksum
// failover and repairable from the clean copy.
func RandomFaultScheduleKinds(seed int64, victims []wire.NodeID, horizon time.Duration, n int, kinds []FaultKind) FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	// busy tracks per-node [start, end) windows during which the node is
	// crashed, paused, or armed with a write fault; wfBusy tracks write-fault
	// windows globally.
	busy := make(map[wire.NodeID][][2]time.Duration)
	var wfBusy [][2]time.Duration
	overlaps := func(ws [][2]time.Duration, at, until time.Duration) bool {
		for _, w := range ws {
			if at < w[1] && w[0] < until {
				return true
			}
		}
		return false
	}
	sched := FaultSchedule{Seed: seed}
	for len(sched.Events) < n {
		e := FaultEvent{
			Kind: kinds[rng.Intn(len(kinds))],
			At:   time.Duration(rng.Int63n(int64(horizon))),
			For:  2*time.Second + time.Duration(rng.Int63n(int64(8*time.Second))),
			A:    victims[rng.Intn(len(victims))],
		}
		switch e.Kind {
		case FaultPartition, FaultLossy:
			if len(victims) < 2 {
				continue
			}
			for e.B == "" || e.B == e.A {
				e.B = victims[rng.Intn(len(victims))]
			}
			if e.Kind == FaultLossy {
				e.Drop = 0.2 + 0.6*rng.Float64()
				e.Extra = time.Duration(rng.Int63n(int64(500 * time.Millisecond)))
			}
		case FaultPause, FaultCrash:
			if overlaps(busy[e.A], e.At, e.At+e.For) {
				continue // re-roll instead of double-crashing a node
			}
			busy[e.A] = append(busy[e.A], [2]time.Duration{e.At, e.At + e.For})
		case FaultBitFlip:
			e.For = 0 // point event; the scrubber is the repair
		case FaultTornWrite, FaultLostWrite:
			if overlaps(busy[e.A], e.At, e.At+e.For) || overlaps(wfBusy, e.At, e.At+e.For) {
				continue
			}
			e.Drop = 0.5 + 0.5*rng.Float64() // per-commit fault probability
			w := [2]time.Duration{e.At, e.At + e.For}
			busy[e.A] = append(busy[e.A], w)
			wfBusy = append(wfBusy, w)
		}
		sched.Events = append(sched.Events, e)
	}
	sort.Slice(sched.Events, func(i, j int) bool { return sched.Events[i].At < sched.Events[j].At })
	return sched
}

// faultAction is one step of the flattened schedule timeline.
type faultAction struct {
	at     time.Duration
	repair bool
	ev     FaultEvent
}

// RunFaultSchedule injects the schedule against the cluster on the modeled
// clock and repairs every fault it injected, returning once the timeline is
// drained (or ctx is cancelled, in which case it still repairs everything
// before returning). Crashed providers are restarted with their segment
// stores intact via RestartProvider.
func (c *Cluster) RunFaultSchedule(ctx context.Context, sched FaultSchedule) error {
	timeline := make([]faultAction, 0, 2*len(sched.Events))
	for _, e := range sched.Events {
		timeline = append(timeline,
			faultAction{at: e.At, ev: e},
			faultAction{at: e.At + e.For, repair: true, ev: e})
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	start := c.Clock.Now()
	crashed := make(map[wire.NodeID]bool)
	var firstErr error
	for _, a := range timeline {
		if wait := start + a.at - c.Clock.Now(); wait > 0 && ctx.Err() == nil {
			select {
			case <-ctx.Done():
			case <-c.Clock.After(wait):
			}
		}
		if ctx.Err() != nil && !a.repair {
			continue // cancelled: stop injecting, but keep draining repairs
		}
		if err := c.applyFault(a, crashed); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (c *Cluster) applyFault(a faultAction, crashed map[wire.NodeID]bool) error {
	e := a.ev
	switch e.Kind {
	case FaultPartition:
		if a.repair {
			c.Fabric.Heal(e.A, e.B)
		} else {
			c.Fabric.Partition(e.A, e.B)
		}
	case FaultLossy:
		if a.repair {
			c.Fabric.SetLinkFault(e.A, e.B, simnet.LinkFault{})
		} else {
			c.Fabric.SetLinkFault(e.A, e.B, simnet.LinkFault{DropProb: e.Drop, ExtraLatency: e.Extra})
		}
	case FaultPause:
		if a.repair {
			c.Fabric.Resume(e.A)
		} else {
			c.Fabric.Pause(e.A)
		}
	case FaultCrash:
		if a.repair {
			if !crashed[e.A] {
				return nil
			}
			crashed[e.A] = false
			if _, err := c.RestartProvider(e.A); err != nil {
				return err
			}
		} else {
			if err := c.KillProvider(e.A); err != nil {
				return err
			}
			crashed[e.A] = true
		}
	case FaultBitFlip:
		if !a.repair {
			// Best effort: early in a run the node may hold nothing with a
			// clean replica elsewhere yet.
			c.CorruptProvider(e.A)
		}
	case FaultTornWrite, FaultLostWrite:
		st := c.storeOf(e.A)
		if st == nil {
			return nil
		}
		if a.repair {
			st.ClearFaults()
		} else {
			fc := segstore.FaultConfig{Seed: int64(e.At) ^ int64(len(e.A))}
			if e.Kind == FaultTornWrite {
				fc.TornWrite = e.Drop
			} else {
				fc.LostWrite = e.Drop
			}
			st.InjectFaults(fc)
		}
	}
	return nil
}
