package cluster

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/proxy"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// This file covers the gateway tier end to end: the seeded chaos suite
// rerun with every byte of traffic routed through stateless proxies, an
// online drain/retire of a provider while proxied writes are in flight,
// and a proxy crash/replace showing the tier keeps no durable state.

const (
	proxyChaosProxies = 2
	proxyChaosRounds  = 8
)

// tunedProxy configures a proxy's embedded client like the chaos-tuned
// direct clients: shorter call timeout, bounded exponential retry.
func tunedProxy(cfg *proxy.Config) {
	cfg.Client.CallTimeout = 5 * time.Second
	cfg.Client.Retry = core.RetryPolicy{MaxAttempts: 4, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
}

// tuneThin bounds thin-client attempts so one write+commit round converges
// well inside chaosOpDeadline even when every attempt rides out the
// proxy-side retry budget first.
func tuneThin(tc *proxy.ThinClient) {
	tc.Timeout = 30 * time.Second
	tc.Attempts = 3
	tc.Backoff = 200 * time.Millisecond
}

func TestProxyChaosSeeded(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("proxy chaos seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
			runProxyChaos(t, seed)
		})
	}
}

// runProxyChaos is the chaos suite with the gateway tier in the data path:
// thin clients that know nothing about membership or placement talk to two
// proxies, providers get the same seed-pinned fault schedule, and the same
// durability contract must hold — every commit acked through a proxy reads
// back intact after the faults heal.
func runProxyChaos(t *testing.T, seed int64) {
	c, err := New(Options{
		Providers: chaosProviders,
		Scale:     0.001,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
		Net:       simnet.Config{CallTimeout: 2 * time.Second, FaultSeed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(chaosProviders, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	proxyIDs := make([]wire.NodeID, proxyChaosProxies)
	for i := range proxyIDs {
		px, err := c.NewProxy(fmt.Sprintf("gw%d", i), tunedProxy)
		if err != nil {
			t.Fatal(err)
		}
		if err := px.Client().WaitForProviders(chaosProviders, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		proxyIDs[i] = px.ID()
	}

	writers := make([]*proxy.ThinClient, chaosWriters)
	for i := range writers {
		tc, err := proxy.Dial(c.Clock, c.Fabric, fmt.Sprintf("tw%d", i), proxyIDs...)
		if err != nil {
			t.Fatal(err)
		}
		tuneThin(tc)
		t.Cleanup(tc.Close)
		if err := tc.Mkdir(fmt.Sprintf("/w%d", i)); err != nil {
			t.Fatal(err)
		}
		writers[i] = tc
	}
	reader, err := proxy.Dial(c.Clock, c.Fabric, "tr0", proxyIDs...)
	if err != nil {
		t.Fatal(err)
	}
	tuneThin(reader)
	t.Cleanup(reader.Close)

	var (
		ackMu sync.Mutex
		acked []chaosAck
	)

	var wg sync.WaitGroup
	for i := 0; i < chaosWriters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := writers[i]
			for r := 0; r < proxyChaosRounds; r++ {
				start := c.Clock.Now()
				path := fmt.Sprintf("/w%d/f%02d", i, r)
				sess := fmt.Sprintf("w%d-r%d", i, r)
				payload := chaosPayload(seed, i, r)
				if err := tc.Write(sess, path, 0, payload, true, 2); err != nil {
					tc.Abort(sess, path)
					continue // faults may win; only acked data is promised
				}
				if _, _, err := tc.Commit(sess, path); err != nil {
					// A lost commit reply surfaces as an error (e.g. the
					// retry landed on a proxy without the session): NOT
					// acked, so the contract makes no promise about it.
					continue
				}
				if took := c.Clock.Now() - start; took > chaosOpDeadline {
					t.Errorf("writer %d round %d wedged for %v (deadline %v)", i, r, took, chaosOpDeadline)
				}
				ackMu.Lock()
				acked = append(acked, chaosAck{path: path, sum: sha256.Sum256(payload)})
				ackMu.Unlock()
			}
		}()
	}

	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		rng := rand.New(rand.NewSource(seed + 7))
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			ackMu.Lock()
			var pick chaosAck
			if len(acked) > 0 {
				pick = acked[rng.Intn(len(acked))]
			}
			ackMu.Unlock()
			if pick.path == "" {
				c.Clock.Sleep(500 * time.Millisecond)
				continue
			}
			data, err := reader.GetFile(pick.path)
			if err != nil {
				continue // transient failures are allowed mid-fault
			}
			if len(data) == chaosPayloadSize && sha256.Sum256(data) != pick.sum {
				t.Errorf("mid-chaos proxied read of %s returned wrong content", pick.path)
			}
		}
	}()

	// Same seed-pinned schedule as the direct chaos suite — providers only;
	// the gateways stay up (a proxy crash is its own test below).
	victims := make([]wire.NodeID, chaosProviders)
	for i := range victims {
		victims[i] = ProviderID(i)
	}
	sched := RandomFaultSchedule(seed, victims, chaosHorizon, chaosEvents)
	for _, e := range sched.Events {
		t.Logf("fault: %v", e)
	}
	if err := c.RunFaultSchedule(t.Context(), sched); err != nil {
		t.Fatalf("fault schedule: %v", err)
	}

	wg.Wait()
	close(stopRead)
	readWG.Wait()

	c.Fabric.HealAllFaults()
	if err := c.AwaitStable(chaosProviders, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitQuiesce(10 * time.Minute); err != nil {
		for id, p := range c.Providers() {
			for _, act := range p.RepairNeeds() {
				t.Logf("%s stuck: seg=%v latest=%d owners=%v stale=%v deficit=%d source=%v",
					id, act.Seg, act.Latest, act.CurrentOwners, act.Stale, act.Deficit, act.Source)
			}
		}
		t.Fatalf("replication not restored after heal: %v", err)
	}

	// The durability contract, through the gateway: every commit a proxy
	// acknowledged reads back intact via the thin protocol.
	ackMu.Lock()
	final := append([]chaosAck(nil), acked...)
	ackMu.Unlock()
	if len(final) == 0 {
		t.Fatal("no commit was ever acknowledged; chaos starved the proxied workload")
	}
	for _, a := range final {
		data, err := reader.GetFile(a.path)
		if err != nil {
			t.Errorf("acked file %s unreadable through proxy after heal: %v", a.path, err)
			continue
		}
		if len(data) != chaosPayloadSize || sha256.Sum256(data) != a.sum {
			t.Errorf("acked file %s content lost (got %d bytes)", a.path, len(data))
		}
	}
	for _, id := range proxyIDs {
		st, err := c.ProxyStatus(id)
		if err != nil {
			t.Errorf("proxy status %s: %v", id, err)
			continue
		}
		t.Logf("proxy %s: %d requests, %d errors, %d live sessions, %d cached reads",
			id, st.Requests, st.Errors, st.Sessions, st.Reads)
	}
	t.Logf("proxy chaos seed %d: %d/%d rounds acked and verified", seed, len(final), chaosWriters*proxyChaosRounds)
}

// TestProxyDrainRetireOnline drains a provider while proxied writes are in
// flight, waits for its store to evacuate, retires it, and proves zero
// acked-commit loss with replication fully healed on the survivors.
func TestProxyDrainRetireOnline(t *testing.T) {
	const providers = 6
	c, err := New(Options{
		Providers: providers,
		Scale:     0.001,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	px, err := c.NewProxy("gw0", tunedProxy)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Client().WaitForProviders(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	tc, err := proxy.Dial(c.Clock, c.Fabric, "tc0", px.ID())
	if err != nil {
		t.Fatal(err)
	}
	tuneThin(tc)
	t.Cleanup(tc.Close)
	if err := tc.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}

	victim := ProviderID(providers - 1)
	const rounds = 16
	payloadFor := func(r int) []byte {
		rng := rand.New(rand.NewSource(41 + int64(r)))
		b := make([]byte, 32<<10)
		rng.Read(b)
		return b
	}

	type ack struct {
		path string
		sum  [sha256.Size]byte
	}
	var acked []ack
	for r := 0; r < rounds; r++ {
		if r == rounds/3 {
			// Kick off the drain mid-stream: from here on the victim's
			// heartbeats carry Draining and its drain worker evacuates
			// while commits keep flowing through the proxy.
			if err := c.DrainProvider(victim); err != nil {
				t.Fatalf("drain %s: %v", victim, err)
			}
			st, err := c.AdminStatus(victim)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Draining {
				t.Fatalf("victim %s not draining after AdminDrain", victim)
			}
		}
		path := fmt.Sprintf("/d/f%02d", r)
		payload := payloadFor(r)
		if _, err := tc.PutFile(path, payload, 2); err != nil {
			t.Fatalf("proxied put %s during drain: %v", path, err)
		}
		acked = append(acked, ack{path: path, sum: sha256.Sum256(payload)})
	}

	if err := c.AwaitDrained(victim, 10*time.Minute); err != nil {
		st, serr := c.AdminStatus(victim)
		t.Fatalf("%v (status %+v, err %v)", err, st, serr)
	}
	st, err := c.AdminStatus(victim)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || st.Shadows != 0 {
		t.Fatalf("drained victim still holds %d segments, %d shadows", st.Segments, st.Shadows)
	}
	if got := c.Provider(victim).Store().Len(); got != 0 {
		t.Fatalf("victim store reports %d segments after drain", got)
	}

	if err := c.RetireProvider(victim); err != nil {
		t.Fatalf("retire %s: %v", victim, err)
	}
	if err := c.AwaitStable(providers-1, 5*time.Minute); err != nil {
		t.Fatalf("membership did not shrink to %d after retire: %v", providers-1, err)
	}
	if err := c.AwaitQuiesce(10 * time.Minute); err != nil {
		t.Fatalf("replication not healed on survivors: %v", err)
	}

	// Zero acked-commit loss, read back through the gateway.
	for _, a := range acked {
		data, err := tc.GetFile(a.path)
		if err != nil {
			t.Errorf("acked file %s unreadable after retire: %v", a.path, err)
			continue
		}
		if sha256.Sum256(data) != a.sum {
			t.Errorf("acked file %s content lost after retire", a.path)
		}
	}
	t.Logf("drained and retired %s online: %d acked commits intact on %d survivors",
		victim, len(acked), providers-1)
}

// TestProxyRestartLosesNoAckedCommits kills a proxy mid-use and replaces it
// under the same name: every acked commit survives (durable state lives on
// providers and the namespace, never on the gateway), uncommitted sessions
// die with the proxy, and thin clients recover by reconnecting.
func TestProxyRestartLosesNoAckedCommits(t *testing.T) {
	const providers = 4
	c, err := New(Options{
		Providers: providers,
		Scale:     0.0005,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	px, err := c.NewProxy("gw0", tunedProxy)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Client().WaitForProviders(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	tc, err := proxy.Dial(c.Clock, c.Fabric, "tc0", px.ID())
	if err != nil {
		t.Fatal(err)
	}
	tuneThin(tc)
	t.Cleanup(tc.Close)
	if err := tc.Mkdir("/k"); err != nil {
		t.Fatal(err)
	}

	type ack struct {
		path string
		sum  [sha256.Size]byte
	}
	var acked []ack
	for r := 0; r < 6; r++ {
		rng := rand.New(rand.NewSource(91 + int64(r)))
		payload := make([]byte, 16<<10)
		rng.Read(payload)
		path := fmt.Sprintf("/k/f%d", r)
		if _, err := tc.PutFile(path, payload, 2); err != nil {
			t.Fatalf("put %s: %v", path, err)
		}
		acked = append(acked, ack{path: path, sum: sha256.Sum256(payload)})
	}

	// Leave an in-flight (never committed) session on the proxy, then
	// crash it. The session is soft state and must die with the process.
	if err := tc.Write("pending", "/k/pending", 0, bytes.Repeat([]byte{7}, 4096), true, 2); err != nil {
		t.Fatalf("open pending session: %v", err)
	}
	c.KillProxy(px)

	// Replace it under the same node ID — the LB story: clients reconnect
	// and land on a fresh instance with empty soft state.
	px2, err := c.NewProxy("gw0", tunedProxy)
	if err != nil {
		t.Fatalf("restart proxy: %v", err)
	}
	if err := px2.Client().WaitForProviders(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	st, err := c.ProxyStatus(px2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 0 {
		t.Fatalf("restarted proxy reports %d sessions; soft state should be empty", st.Sessions)
	}

	// The uncommitted session was never acked: committing it now must fail
	// (the replacement has no such session), not silently succeed.
	if _, _, err := tc.Commit("pending", "/k/pending"); err == nil {
		t.Fatal("commit of a session lost in the proxy crash unexpectedly succeeded")
	} else if !strings.Contains(err.Error(), "session") {
		t.Logf("commit after crash failed as expected: %v", err)
	}

	// Every acked commit is still there, and the client can write again
	// under a fresh session without any recovery protocol.
	for _, a := range acked {
		data, err := tc.GetFile(a.path)
		if err != nil {
			t.Fatalf("acked file %s unreadable after proxy restart: %v", a.path, err)
		}
		if sha256.Sum256(data) != a.sum {
			t.Fatalf("acked file %s content lost after proxy restart", a.path)
		}
	}
	payload := bytes.Repeat([]byte{9}, 8192)
	if _, err := tc.PutFile("/k/after", payload, 2); err != nil {
		t.Fatalf("write through restarted proxy: %v", err)
	}
	data, err := tc.GetFile("/k/after")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("read-after-write through restarted proxy failed: %v", err)
	}
}

// TestProxyBasicOps exercises the thin protocol's everyday surface through
// a live cluster: put/get/stat/remove, EOF signalling, pinned-version
// reads, read-handle caching, and TTL expiry of idle write sessions.
func TestProxyBasicOps(t *testing.T) {
	const providers = 4
	c, err := New(Options{
		Providers: providers,
		Scale:     0.0005,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	px, err := c.NewProxy("gw0", func(cfg *proxy.Config) {
		tunedProxy(cfg)
		cfg.SessionTTL = 10 * time.Second
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := px.Client().WaitForProviders(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	tc, err := proxy.Dial(c.Clock, c.Fabric, "tc0", px.ID())
	if err != nil {
		t.Fatal(err)
	}
	tuneThin(tc)
	t.Cleanup(tc.Close)

	if err := tc.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("sorrento"), 1024) // 8 KiB
	ver, err := tc.PutFile("/b/a", payload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ver == 0 {
		t.Fatal("commit returned version 0")
	}
	ent, err := tc.Stat("/b/a")
	if err != nil {
		t.Fatal(err)
	}
	if ent.Size != int64(len(payload)) || ent.Version != ver {
		t.Fatalf("stat = size %d version %d, want %d/%d", ent.Size, ent.Version, len(payload), ver)
	}

	// Plain read and a second read that must hit the cached handle.
	got, err := tc.GetFile("/b/a")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get /b/a: %v", err)
	}
	if _, _, _, err := tc.Read("/b/a", 0, 512); err != nil {
		t.Fatal(err)
	}
	st, err := c.ProxyStatus(px.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads == 0 {
		t.Fatal("no cached read handle after back-to-back reads")
	}

	// Read at EOF signals EOF with no data; pinned-version read works.
	if data, _, eof, err := tc.Read("/b/a", int64(len(payload)), 64); err != nil || !eof || len(data) != 0 {
		t.Fatalf("read at EOF = %d bytes eof=%v err=%v", len(data), eof, err)
	}
	resp, err := tc.ReadVersion("/b/a", 0, 64, ver)
	if err != nil || len(resp) != 64 {
		t.Fatalf("pinned-version read: %d bytes, %v", len(resp), err)
	}

	// An idle uncommitted session is swept after SessionTTL.
	if err := tc.Write("idle", "/b/idle", 0, payload[:4096], true, 2); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.ProxyStatus(px.ID()); st.Sessions != 1 {
		t.Fatalf("expected 1 live session, got %d", st.Sessions)
	}
	deadline := c.Clock.Now() + 5*time.Minute
	for {
		st, err = c.ProxyStatus(px.ID())
		if err == nil && st.Sessions == 0 {
			break
		}
		if c.Clock.Now() > deadline {
			t.Fatalf("idle session not swept after TTL (still %d)", st.Sessions)
		}
		c.Clock.Sleep(5 * time.Second)
	}
	if _, _, err := tc.Commit("idle", "/b/idle"); err == nil {
		t.Fatal("commit of an expired session unexpectedly succeeded")
	}

	// Remove unlinks; stat must now fail.
	if err := tc.Remove("/b/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Stat("/b/a"); err == nil {
		t.Fatal("stat after remove unexpectedly succeeded")
	}
}
