package cluster

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/namespace"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// The chaos suite drives concurrent writers and readers through a
// seed-pinned randomized fault schedule (partitions, lossy links, gray
// pauses, crash-restarts) and asserts the paper's durability story: no
// acknowledged commit is ever lost, replication is restored after faults
// heal, and no operation wedges past its deadline.

const (
	chaosProviders   = 6
	chaosWriters     = 2
	chaosRounds      = 10
	chaosPayloadSize = 64 << 10
	chaosHorizon     = 45 * time.Second
	chaosEvents      = 10
	// chaosOpDeadline bounds one create+write+commit round in modeled time;
	// retries and failovers must converge well inside it.
	chaosOpDeadline = 5 * time.Minute
)

// chaosAck is one acknowledged commit: the path and the payload checksum
// the cluster promised to keep.
type chaosAck struct {
	path string
	sum  [sha256.Size]byte
}

func chaosPayload(seed int64, writer, round int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(writer)<<32 ^ int64(round)<<16))
	b := make([]byte, chaosPayloadSize)
	rng.Read(b)
	return b
}

func TestChaosSeeded(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("chaos seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	c, err := New(Options{
		Providers: chaosProviders,
		Scale:     0.001,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
		Net:       simnet.Config{CallTimeout: 2 * time.Second, FaultSeed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(chaosProviders, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	tuned := func(cfg *core.Config) {
		cfg.CallTimeout = 5 * time.Second
		cfg.Retry = core.RetryPolicy{MaxAttempts: 4, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	}
	writers := make([]*core.Client, chaosWriters)
	for i := range writers {
		cl, err := c.NewClientCfg(fmt.Sprintf("w%d", i), tuned)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WaitForProviders(chaosProviders, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := cl.Mkdir(fmt.Sprintf("/w%d", i)); err != nil {
			t.Fatal(err)
		}
		writers[i] = cl
	}
	reader, err := c.NewClientCfg("r0", tuned)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.WaitForProviders(chaosProviders, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	var (
		ackMu sync.Mutex
		acked []chaosAck
	)

	var wg sync.WaitGroup
	for i := 0; i < chaosWriters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := writers[i]
			for r := 0; r < chaosRounds; r++ {
				start := c.Clock.Now()
				path := fmt.Sprintf("/w%d/f%02d", i, r)
				payload := chaosPayload(seed, i, r)
				attrs := wire.DefaultAttrs()
				attrs.ReplDeg = 2
				f, err := cl.Create(path, attrs)
				if err != nil {
					continue // faults may win; only acked data is promised
				}
				if _, err := f.WriteAt(payload, 0); err != nil {
					f.Drop()
					continue
				}
				if err := f.Close(); err != nil {
					f.Drop()
					continue
				}
				if took := c.Clock.Now() - start; took > chaosOpDeadline {
					t.Errorf("writer %d round %d wedged for %v (deadline %v)", i, r, took, chaosOpDeadline)
				}
				ackMu.Lock()
				acked = append(acked, chaosAck{path: path, sum: sha256.Sum256(payload)})
				ackMu.Unlock()
			}
		}()
	}

	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		rng := rand.New(rand.NewSource(seed + 7))
		buf := make([]byte, chaosPayloadSize)
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			ackMu.Lock()
			var pick chaosAck
			if len(acked) > 0 {
				pick = acked[rng.Intn(len(acked))]
			}
			ackMu.Unlock()
			if pick.path == "" {
				c.Clock.Sleep(500 * time.Millisecond)
				continue
			}
			g, err := reader.Open(pick.path)
			if err != nil {
				continue // transient failures are allowed mid-fault
			}
			if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
				continue
			}
			if sha256.Sum256(buf) != pick.sum {
				t.Errorf("mid-chaos read of %s returned wrong content", pick.path)
			}
		}
	}()

	// Inject the seed-pinned schedule against the providers while the
	// workload runs.
	victims := make([]wire.NodeID, chaosProviders)
	for i := range victims {
		victims[i] = ProviderID(i)
	}
	sched := RandomFaultSchedule(seed, victims, chaosHorizon, chaosEvents)
	for _, e := range sched.Events {
		t.Logf("fault: %v", e)
	}
	if err := c.RunFaultSchedule(t.Context(), sched); err != nil {
		t.Fatalf("fault schedule: %v", err)
	}

	wg.Wait()
	close(stopRead)
	readWG.Wait()

	// Everything is repaired by the schedule runner; belt and braces.
	c.Fabric.HealAllFaults()
	if err := c.AwaitStable(chaosProviders, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitQuiesce(10 * time.Minute); err != nil {
		for id, p := range c.Providers() {
			for _, act := range p.RepairNeeds() {
				t.Logf("%s stuck: seg=%v latest=%d owners=%v stale=%v deficit=%d source=%v",
					id, act.Seg, act.Latest, act.CurrentOwners, act.Stale, act.Deficit, act.Source)
			}
		}
		t.Fatalf("replication not restored after heal: %v", err)
	}

	// The durability contract: every acknowledged commit reads back intact.
	ackMu.Lock()
	final := append([]chaosAck(nil), acked...)
	ackMu.Unlock()
	if len(final) == 0 {
		t.Fatal("no commit was ever acknowledged; chaos starved the workload")
	}
	buf := make([]byte, chaosPayloadSize)
	for _, a := range final {
		g, err := reader.Open(a.path)
		if err != nil {
			t.Errorf("acked file %s unreadable after heal: %v", a.path, err)
			continue
		}
		if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Errorf("acked file %s read failed after heal: %v", a.path, err)
			continue
		}
		if sha256.Sum256(buf) != a.sum {
			t.Errorf("acked file %s content lost", a.path)
		}
	}
	t.Logf("chaos seed %d: %d/%d rounds acked and verified", seed, len(final), chaosWriters*chaosRounds)
}

// TestNamespaceWALRecoversAfterMidCommitCrash drives a commit whose 2PC
// participant is killed mid-session, lets the retry/failover machinery land
// the commit anyway, then rebuilds a namespace server from the same WAL and
// checks the recovered tree agrees with the live one (satellite: WAL
// crash-recovery round-trip).
func TestNamespaceWALRecoversAfterMidCommitCrash(t *testing.T) {
	wal := &namespace.MemWAL{}
	c, err := New(Options{
		Providers:    4,
		Scale:        0.0005,
		Sizing:       layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
		NamespaceWAL: wal,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClientCfg("c1", func(cfg *core.Config) {
		cfg.CallTimeout = 5 * time.Second
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitForProviders(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, err := cl.Create("/a", attrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("version one"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitQuiesce(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Open a second version and locate the replica holding the shadow, then
	// crash that provider mid-commit.
	w, err := cl.OpenWrite("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte("version two!"), 0); err != nil {
		t.Fatal(err)
	}
	entry, err := cl.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	var victim wire.NodeID
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatal("no provider holds the index segment")
	}
	if err := c.KillProvider(victim); err != nil {
		t.Fatal(err)
	}
	// The commit must survive the participant's death via retry + replica
	// failover + journal replay.
	if err := w.Close(); err != nil {
		t.Fatalf("commit did not survive mid-commit crash: %v", err)
	}

	// Rebuild a namespace server from the same WAL — the crash-recovery
	// round-trip — and compare the recovered entry with the live one.
	ns2, err := namespace.NewServer(c.Clock, namespace.Config{}, wal)
	if err != nil {
		t.Fatalf("namespace recovery: %v", err)
	}
	live := c.NS.Lookup("/a")
	rec := ns2.Lookup("/a")
	if !live.OK || !rec.OK {
		t.Fatalf("lookup: live ok=%v recovered ok=%v", live.OK, rec.OK)
	}
	if rec.Entry.Version != live.Entry.Version || rec.Entry.Size != live.Entry.Size ||
		rec.Entry.FileID != live.Entry.FileID {
		t.Fatalf("recovered entry %+v != live %+v", rec.Entry, live.Entry)
	}
	if live.Entry.Version != 2 {
		t.Fatalf("live version = %d, want 2", live.Entry.Version)
	}

	// Bring the crashed provider back: it rejoins, resyncs, and the latest
	// version stays readable.
	if _, err := c.RestartProvider(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitStable(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	g, err := cl.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("version two!")) {
		t.Fatalf("content after recovery = %q", buf)
	}
}

// TestAsymmetricPartitionMembership isolates a provider's inbound traffic
// only: its own heartbeats still reach the cluster, so peers keep it live,
// while the victim hears nobody and evicts every peer from its own view.
// Healing the partition un-evicts them (satellite: membership under
// asymmetric partition).
func TestAsymmetricPartitionMembership(t *testing.T) {
	c := testCluster(t, 4)
	victim := ProviderID(0)
	peer := c.Provider(ProviderID(1))
	vp := c.Provider(victim)

	c.Fabric.IsolateInbound(victim)

	// Heartbeats expire after FailureFactor (5) × interval (1 s) of silence.
	deadline := c.Clock.Now() + 2*time.Minute
	for vp.Members().Len() > 1 {
		if c.Clock.Now() > deadline {
			t.Fatalf("victim still sees %d members; inbound isolation inert", vp.Members().Len())
		}
		c.Clock.Sleep(time.Second)
	}
	// The deaf node evicted its peers, but its outbound heartbeats kept
	// flowing: the rest of the cluster never evicts it.
	if n := peer.Members().Len(); n < 4 {
		t.Fatalf("peer sees %d members; victim's outbound heartbeats were lost", n)
	}

	c.Fabric.HealNode(victim)
	if err := c.AwaitStable(4, 2*time.Minute); err != nil {
		t.Fatalf("membership did not recover after heal: %v", err)
	}
}
