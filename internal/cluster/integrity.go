package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/segstore"
	"repro/internal/wire"
)

// Storage-corruption harness: deterministic in-place damage to committed
// replicas, paired with cluster-wide oracles the chaos suite uses to assert
// that every injected fault is detected and repaired, and that no store ever
// holds silently rotten bytes at the end of a run.

// storeOf returns a node's segment store whether the daemon is running or
// crashed (a crashed node's disk contents survive in the grave).
func (c *Cluster) storeOf(id wire.NodeID) *segstore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.providers[id]; ok {
		return p.Store()
	}
	return c.graves[id]
}

// CorruptProvider flips one bit in a committed replica on id — but only in a
// segment for which some RUNNING provider holds a clean copy at the same or
// a newer version. That oracle keeps injected rot repairable by
// construction: the scrubber (or crash recovery) can always restore the
// segment from the clean replica, so a chaos run can demand full cleanup.
// Segments are considered in sorted ID order, making the choice
// deterministic for a given cluster state. Returns the damaged segment.
func (c *Cluster) CorruptProvider(id wire.NodeID) (ids.SegID, bool) {
	st := c.storeOf(id)
	if st == nil {
		return ids.SegID{}, false
	}
	segs := st.Segments()
	sort.Slice(segs, func(i, j int) bool { return bytes.Compare(segs[i][:], segs[j][:]) < 0 })
	others := c.Providers()
	for _, seg := range segs {
		stat := st.Stat(seg)
		if !stat.Present || stat.Direct || stat.Size == 0 {
			continue
		}
		clean := false
		for oid, op := range others {
			if oid == id {
				continue
			}
			os := op.Store()
			if ost := os.Stat(seg); ost.Present && !ost.Direct && ost.Version >= stat.Version && os.VerifyVersion(seg, 0) {
				clean = true
				break
			}
		}
		if clean && st.Corrupt(seg) {
			return seg, true
		}
	}
	return ids.SegID{}, false
}

// ClearAllStorageFaults disarms the write/read fault injectors on every
// store, running or crashed.
func (c *Cluster) ClearAllStorageFaults() {
	c.mu.Lock()
	stores := make([]*segstore.Store, 0, len(c.providers)+len(c.graves))
	for _, p := range c.providers {
		stores = append(stores, p.Store())
	}
	for _, st := range c.graves {
		stores = append(stores, st)
	}
	c.mu.Unlock()
	for _, st := range stores {
		st.ClearFaults()
	}
}

// IntegrityViolations counts committed versions, cluster-wide, whose stored
// bytes no longer match their commit-time checksums. Zero means no store is
// silently holding rot.
func (c *Cluster) IntegrityViolations() int {
	c.mu.Lock()
	stores := make([]*segstore.Store, 0, len(c.providers)+len(c.graves))
	for _, p := range c.providers {
		stores = append(stores, p.Store())
	}
	for _, st := range c.graves {
		stores = append(stores, st)
	}
	c.mu.Unlock()
	n := 0
	for _, st := range stores {
		n += st.VerifyAll()
	}
	return n
}

// IntegrityDetections sums every store's corruption-detection counter.
func (c *Cluster) IntegrityDetections() int64 {
	var n int64
	for _, p := range c.Providers() {
		n += p.Store().IntegrityStats().Detected
	}
	return n
}

// AwaitScrubbed blocks until no store holds a corrupt committed version
// (modeled time), i.e. every injected corruption has been detected and
// dropped; pair with AwaitQuiesce to also wait for re-replication.
func (c *Cluster) AwaitScrubbed(timeout time.Duration) error {
	deadline := c.Clock.Now() + timeout
	for {
		if n := c.IntegrityViolations(); n == 0 {
			return nil
		}
		if c.Clock.Now() > deadline {
			detail := ""
			c.mu.Lock()
			for id, p := range c.providers {
				if n := p.Store().VerifyAll(); n > 0 {
					detail += fmt.Sprintf(" %s=%d", id, n)
				}
			}
			for id, st := range c.graves {
				if n := st.VerifyAll(); n > 0 {
					detail += fmt.Sprintf(" %s(crashed)=%d", id, n)
				}
			}
			c.mu.Unlock()
			return fmt.Errorf("cluster: corrupt versions still held after %v:%s", timeout, detail)
		}
		c.Clock.Sleep(500 * time.Millisecond)
	}
}
