package cluster

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/layout"
	"repro/internal/provider"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// The corruption chaos suite layers storage faults — silent bit rot, torn
// writes, lost writes — over the classic network/process mix and asserts the
// end-to-end integrity contract: no acknowledged commit is EVER served with
// wrong bytes (a checksum-failing replica must fail over, not decode), every
// injected corruption is detected and dropped by the end of the run, and the
// cluster converges back to full, clean replication.

func TestChaosCorruptionSeeded(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("corruption chaos seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
			runCorruptionChaos(t, seed)
		})
	}
}

func runCorruptionChaos(t *testing.T, seed int64) {
	c, err := New(Options{
		Providers: chaosProviders,
		Scale:     0.001,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
		Net:       simnet.Config{CallTimeout: 2 * time.Second, FaultSeed: seed},
		Provider:  corruptionChaosProviderCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(chaosProviders, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	tuned := func(cfg *core.Config) {
		cfg.CallTimeout = 5 * time.Second
		cfg.Retry = core.RetryPolicy{MaxAttempts: 4, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	}
	writers := make([]*core.Client, chaosWriters)
	for i := range writers {
		cl, err := c.NewClientCfg(fmt.Sprintf("w%d", i), tuned)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WaitForProviders(chaosProviders, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := cl.Mkdir(fmt.Sprintf("/w%d", i)); err != nil {
			t.Fatal(err)
		}
		writers[i] = cl
	}
	reader, err := c.NewClientCfg("r0", tuned)
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.WaitForProviders(chaosProviders, 2*time.Minute); err != nil {
		t.Fatal(err)
	}

	var (
		ackMu sync.Mutex
		acked []chaosAck
	)
	var wg sync.WaitGroup
	for i := 0; i < chaosWriters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := writers[i]
			for r := 0; r < chaosRounds; r++ {
				start := c.Clock.Now()
				path := fmt.Sprintf("/w%d/f%02d", i, r)
				payload := chaosPayload(seed+1000, i, r)
				attrs := wire.DefaultAttrs()
				attrs.ReplDeg = 2
				f, err := cl.Create(path, attrs)
				if err != nil {
					continue // faults may win; only acked data is promised
				}
				if _, err := f.WriteAt(payload, 0); err != nil {
					f.Drop()
					continue
				}
				if err := f.Close(); err != nil {
					f.Drop()
					continue
				}
				// A looser wedge bound than the network chaos suite: this
				// test layers storage faults on top of the usual storm and
				// its contract is integrity, not tail latency. Under -race
				// at this clock scale a brief wall stall alone costs modeled
				// minutes, so the tight bound would flake on scheduler noise.
				if took := c.Clock.Now() - start; took > 4*chaosOpDeadline {
					t.Errorf("writer %d round %d wedged for %v (deadline %v)", i, r, took, 4*chaosOpDeadline)
				}
				ackMu.Lock()
				acked = append(acked, chaosAck{path: path, sum: sha256.Sum256(payload)})
				ackMu.Unlock()
			}
		}()
	}

	// The concurrent reader is the wrong-bytes detector: a read that SUCCEEDS
	// must return exactly the acked payload. Corrupt replicas may only ever
	// surface as failover (handled below the read API) — never as content.
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		rng := rand.New(rand.NewSource(seed + 7))
		buf := make([]byte, chaosPayloadSize)
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			ackMu.Lock()
			var pick chaosAck
			if len(acked) > 0 {
				pick = acked[rng.Intn(len(acked))]
			}
			ackMu.Unlock()
			if pick.path == "" {
				c.Clock.Sleep(500 * time.Millisecond)
				continue
			}
			g, err := reader.Open(pick.path)
			if err != nil {
				continue // transient failures are allowed mid-fault
			}
			if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
				continue
			}
			if sha256.Sum256(buf) != pick.sum {
				t.Errorf("mid-chaos read of %s returned wrong content", pick.path)
			}
		}
	}()

	victims := make([]wire.NodeID, chaosProviders)
	for i := range victims {
		victims[i] = ProviderID(i)
	}
	kinds := append(append([]FaultKind{}, StorageFaultKinds...), FaultCrash, FaultLossy)
	sched := RandomFaultScheduleKinds(seed, victims, chaosHorizon, chaosEvents, kinds)
	for _, e := range sched.Events {
		t.Logf("fault: %v", e)
	}
	if err := c.RunFaultSchedule(t.Context(), sched); err != nil {
		t.Fatalf("fault schedule: %v", err)
	}

	wg.Wait()
	close(stopRead)
	readWG.Wait()

	c.Fabric.HealAllFaults()
	c.ClearAllStorageFaults()
	if err := c.AwaitStable(chaosProviders, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitQuiesce(10 * time.Minute); err != nil {
		for id, p := range c.Providers() {
			for _, act := range p.RepairNeeds() {
				t.Logf("%s stuck: seg=%v latest=%d owners=%v stale=%v deficit=%d source=%v",
					id, act.Seg, act.Latest, act.CurrentOwners, act.Stale, act.Deficit, act.Source)
			}
		}
		t.Fatalf("replication not restored after heal: %v", err)
	}

	// One deterministic injection after the storm: whatever the random
	// schedule did, the detect-then-repair path is exercised every run.
	injected := false
	var rotSeg ids.SegID
	var rotNode wire.NodeID
	for _, id := range victims {
		if seg, ok := c.CorruptProvider(id); ok {
			t.Logf("deterministic rot: %s on %s", seg.Short(), id)
			injected = true
			rotSeg, rotNode = seg, id
			break
		}
	}
	if !injected {
		t.Fatal("no provider held a corruptible segment after quiesce")
	}
	if err := c.AwaitScrubbed(10 * time.Minute); err != nil {
		if p := c.Provider(rotNode); p != nil {
			st := p.Store()
			t.Logf("DEBUG %s: stat=%+v verify0=%v stats=%+v segs=%d",
				rotNode, st.Stat(rotSeg), st.VerifyVersion(rotSeg, 0), st.IntegrityStats(), st.Len())
		}
		t.Fatal(err)
	}
	if err := c.AwaitQuiesce(10 * time.Minute); err != nil {
		t.Fatalf("replication not restored after scrub repair: %v", err)
	}

	// All injected corruption was detected; nothing rotten remains anywhere.
	if n := c.IntegrityViolations(); n != 0 {
		t.Fatalf("%d corrupt versions survived the run", n)
	}
	if c.IntegrityDetections() == 0 {
		t.Fatal("run finished without a single corruption detection")
	}

	// The integrity contract: every acknowledged commit reads back intact.
	ackMu.Lock()
	final := append([]chaosAck(nil), acked...)
	ackMu.Unlock()
	if len(final) == 0 {
		t.Fatal("no commit was ever acknowledged; chaos starved the workload")
	}
	buf := make([]byte, chaosPayloadSize)
	for _, a := range final {
		g, err := reader.Open(a.path)
		if err != nil {
			t.Errorf("acked file %s unreadable after heal: %v", a.path, err)
			continue
		}
		if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Errorf("acked file %s read failed after heal: %v", a.path, err)
			continue
		}
		if sha256.Sum256(buf) != a.sum {
			t.Errorf("acked file %s content lost", a.path)
		}
	}
	t.Logf("corruption chaos seed %d: %d/%d rounds acked and verified, %d detections",
		seed, len(final), chaosWriters*chaosRounds, c.IntegrityDetections())
}

// corruptionChaosProviderCfg cranks the scrubber to chaos pace: every
// couple of modeled seconds it sweeps the whole store, so injected rot is
// found well inside the run. Quarantine is disabled — this suite measures
// detect-and-repair, not the admin response (TestScrubQuarantinesFailingMedia
// covers that).
func corruptionChaosProviderCfg() (cfg provider.Config) {
	cfg = provider.DefaultConfig()
	cfg.ScrubInterval = 2 * time.Second
	cfg.ScrubBatch = 256
	cfg.QuarantineThreshold = -1
	return cfg
}
