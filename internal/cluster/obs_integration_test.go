package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// TestObsWiredThroughCluster drives one write/commit/read session on an
// instrumented cluster and asserts the key metric families the observability
// layer promises actually accumulate: transport RPC histograms, provider 2PC
// counters, client commit accounting, disk gauges, and a commit trace with
// spans from more than one node. This is the in-proc equivalent of curling
// a daemon's /metrics.
func TestObsWiredThroughCluster(t *testing.T) {
	o := obs.New(simtime.Real())
	c, err := New(Options{
		Providers: 4,
		Scale:     0.0005,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
		Obs:       o,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(4, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, c, "obsc")

	f, err := cl.Create("/obs", wire.DefaultAttrs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := cl.Open("/obs")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	g.Drop()

	// Sum each family across labels; presence with zero value is not enough.
	sums := map[string]float64{}
	for _, m := range o.Reg().Snapshot() {
		if m.Kind == "histogram" {
			sums[m.Name] += float64(m.Count)
		} else {
			sums[m.Name] += m.Value
		}
	}
	for _, want := range []string{
		"sorrento_rpc_client_seconds",          // transport RPC latency histogram
		"sorrento_provider_2pc_total",          // commit round participants
		"sorrento_client_commits_total",        // the session's Close committed
		"sorrento_client_commit_seconds",       // ...and was timed
		"sorrento_disk_used_bytes",             // provider disk gauges registered
		"sorrento_resource_busy_seconds_total", // simtime resources exported
	} {
		if sums[want] <= 0 {
			t.Errorf("metric %s = %v, want > 0 (families seen: %d)", want, sums[want], len(sums))
		}
	}

	// The commit opened a root span on the client; transport propagation must
	// have produced child spans on at least one other node.
	spans := o.Tr().Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	nodes := map[string]bool{}
	for _, s := range spans {
		nodes[s.Node] = true
	}
	if len(nodes) < 2 {
		t.Errorf("spans only from %v, want client and at least one server node", nodes)
	}

	// The Prometheus encoding must carry the same series end to end.
	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, o.Reg()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sorrento_rpc_client_seconds_count", "sorrento_provider_2pc_total", "sorrento_disk_used_frac"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}
}
