package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/proxy"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the harness side of the admin plane: attaching proxy
// gateways to a cluster and driving online drain/retire of providers over
// the same admin RPC surface sorrento-admin uses.

// AdminNode is the node ID of the cluster's built-in admin endpoint.
const AdminNode wire.NodeID = "adm"

// NewProxy attaches a stateless proxy gateway to the cluster. Its embedded
// client is configured like a regular cluster client (namespace, membership
// cadence, shadow-TTL floor, observability); mutate tweaks the final config.
func (c *Cluster) NewProxy(name string, mutate func(*proxy.Config)) (*proxy.Proxy, error) {
	cfg := proxy.Config{Client: core.Config{
		Namespace:  NamespaceNode,
		Sizing:     c.opts.Sizing,
		Membership: c.opts.Provider.Membership,
		Seed:       int64(len(c.Proxies()) + 501),
		Obs:        c.opts.Obs,
	}}
	if floor := c.Clock.Modeled(5 * time.Second); floor > 5*time.Minute {
		cfg.Client.ShadowTTL = floor
	}
	if mutate != nil {
		mutate(&cfg)
	}
	px, err := proxy.New(name, c.Clock, c.Fabric, cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.proxies = append(c.proxies, px)
	c.mu.Unlock()
	return px, nil
}

// Proxies returns the attached proxies.
func (c *Cluster) Proxies() []*proxy.Proxy {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*proxy.Proxy, len(c.proxies))
	copy(out, c.proxies)
	return out
}

// KillProxy crashes a proxy abruptly (soft state lost, endpoint silent) and
// forgets it. Thin clients recover by failing over to another proxy or by
// reconnecting once a replacement joins under the same name.
func (c *Cluster) KillProxy(px *proxy.Proxy) {
	c.mu.Lock()
	for i, q := range c.proxies {
		if q == px {
			c.proxies = append(c.proxies[:i], c.proxies[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	px.Kill()
	c.Fabric.Remove(px.ID()) // free the node ID for a restarted replacement
}

// adminHandler ignores inbound traffic; the admin endpoint only issues
// requests.
type adminHandler struct{}

func (adminHandler) HandleCall(context.Context, wire.NodeID, any) (any, error) {
	return nil, transport.ErrNoHandler
}
func (adminHandler) HandleCast(wire.NodeID, any) {}

// adminEndpoint lazily joins the fabric as the admin node.
func (c *Cluster) adminEndpoint() (transport.Endpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adminEP != nil {
		return c.adminEP, nil
	}
	ep, err := c.Fabric.Join(AdminNode, adminHandler{})
	if err != nil {
		return nil, err
	}
	c.adminEP = ep
	return ep, nil
}

// adminCall issues one admin RPC with a wall-floored modeled timeout.
func (c *Cluster) adminCall(to wire.NodeID, req any) (any, error) {
	ep, err := c.adminEndpoint()
	if err != nil {
		return nil, err
	}
	timeout := 10 * time.Second
	if floor := c.Clock.Modeled(100 * time.Millisecond); floor > timeout {
		timeout = floor
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return ep.Call(ctx, to, req)
}

// DrainProvider marks a provider draining over the admin RPC surface: its
// heartbeats start carrying Draining=true and its drain worker begins
// evacuating segments.
func (c *Cluster) DrainProvider(id wire.NodeID) error {
	resp, err := c.adminCall(id, wire.AdminDrain{Node: id})
	if err != nil {
		return err
	}
	if g, ok := resp.(wire.GenericResp); !ok || !g.OK {
		return fmt.Errorf("cluster: drain %s: %s", id, g.Err)
	}
	return nil
}

// AdminStatus fetches a provider's drain/storage state.
func (c *Cluster) AdminStatus(id wire.NodeID) (wire.AdminStatusResp, error) {
	resp, err := c.adminCall(id, wire.AdminStatus{Node: id})
	if err != nil {
		return wire.AdminStatusResp{}, err
	}
	st, ok := resp.(wire.AdminStatusResp)
	if !ok {
		return wire.AdminStatusResp{}, fmt.Errorf("cluster: unexpected status response %T", resp)
	}
	if !st.OK {
		return st, fmt.Errorf("cluster: status %s: %s", id, st.Err)
	}
	return st, nil
}

// AwaitDrained polls a draining provider until its store is fully
// evacuated (no committed segments, no open shadows) or the modeled
// timeout passes.
func (c *Cluster) AwaitDrained(id wire.NodeID, timeout time.Duration) error {
	deadline := c.Clock.Now() + timeout
	for {
		st, err := c.AdminStatus(id)
		if err == nil && st.Draining && st.Segments == 0 && st.Shadows == 0 {
			return nil
		}
		if c.Clock.Now() > deadline {
			if err != nil {
				return fmt.Errorf("cluster: drain of %s not finished after %v: %v", id, timeout, err)
			}
			return fmt.Errorf("cluster: drain of %s not finished after %v: %d segments, %d shadows",
				id, timeout, st.Segments, st.Shadows)
		}
		c.Clock.Sleep(200 * time.Millisecond)
	}
}

// RetireProvider retires a fully drained provider: the daemon acknowledges,
// shuts itself down, and the cluster forgets it (it is not parked in the
// crash graves — retirement is permanent). Peers age it out of membership
// through the usual heartbeat silence window.
func (c *Cluster) RetireProvider(id wire.NodeID) error {
	resp, err := c.adminCall(id, wire.AdminRetire{Node: id})
	if err != nil {
		return err
	}
	if g, ok := resp.(wire.GenericResp); !ok || !g.OK {
		return fmt.Errorf("cluster: retire %s: %s", id, g.Err)
	}
	c.mu.Lock()
	delete(c.providers, id)
	delete(c.cfgs, id)
	c.mu.Unlock()
	return nil
}

// ProxyStatus fetches a proxy's serving statistics over the admin surface.
func (c *Cluster) ProxyStatus(id wire.NodeID) (wire.ProxyStatusResp, error) {
	resp, err := c.adminCall(id, wire.ProxyStatus{Node: id})
	if err != nil {
		return wire.ProxyStatusResp{}, err
	}
	st, ok := resp.(wire.ProxyStatusResp)
	if !ok {
		return wire.ProxyStatusResp{}, fmt.Errorf("cluster: unexpected proxy status response %T", resp)
	}
	return st, nil
}
