package cluster

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/wire"
)

// testCluster brings up a small fast cluster and waits for stability.
func testCluster(t *testing.T, providers int) *Cluster {
	t.Helper()
	c, err := New(Options{
		Providers: providers,
		Scale:     0.0005,
		Sizing:    layout.Sizing{Unit: 4096, Max: 512, Base: 8, Period: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if err := c.AwaitStable(providers, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

func newClient(t *testing.T, c *Cluster, name string) *core.Client {
	t.Helper()
	cl, err := c.NewClient(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitForProviders(1, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestWriteCommitRead(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")

	f, err := cl.Create("/hello", wire.DefaultAttrs())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello sorrento")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := cl.Open("/hello")
	if err != nil {
		t.Fatal(err)
	}
	if g.Version() != 1 {
		t.Errorf("version = %d, want 1", g.Version())
	}
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read %q, want %q", buf, payload)
	}
	entry, err := cl.Stat("/hello")
	if err != nil || entry.Size != int64(len(payload)) {
		t.Fatalf("stat = %+v err %v", entry, err)
	}
}

func TestLargeFileSpillsToSegments(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")

	f, err := cl.Create("/big", wire.DefaultAttrs())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	payload := make([]byte, 200<<10) // 200 KB > 60 KB attach limit
	rng.Read(payload)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := cl.Open("/big")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(payload)) {
		t.Fatalf("size = %d, want %d", g.Size(), len(payload))
	}
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("large file content mismatch")
	}
	// Random-offset read.
	chunk := make([]byte, 1000)
	if _, err := g.ReadAt(chunk, 100000); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, payload[100000:101000]) {
		t.Fatal("random-offset read mismatch")
	}
}

func TestUncommittedInvisibleToOthers(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/f", wire.DefaultAttrs())
	f.WriteAt([]byte("v1"), 0)
	f.Close()

	w, err := cl.OpenWrite("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte("v2"), 0); err != nil {
		t.Fatal(err)
	}
	// A concurrent reader still sees v1.
	r, _ := cl.Open("/f")
	buf := make([]byte, 2)
	r.ReadAt(buf, 0)
	if string(buf) != "v1" {
		t.Fatalf("reader saw %q before commit", buf)
	}
	// The writer sees its own change.
	wbuf := make([]byte, 2)
	w.ReadAt(wbuf, 0)
	if string(wbuf) != "v2" {
		t.Fatalf("writer saw %q of own shadow", wbuf)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, _ := cl.Open("/f")
	r2.ReadAt(buf, 0)
	if string(buf) != "v2" {
		t.Fatalf("after commit read %q", buf)
	}
	if r2.Version() != 2 {
		t.Errorf("version = %d", r2.Version())
	}
}

func TestCommitConflictDetected(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/f", wire.DefaultAttrs())
	f.WriteAt([]byte("base"), 0)
	f.Close()

	w1, _ := cl.OpenWrite("/f")
	w2, _ := cl.OpenWrite("/f")
	w1.WriteAt([]byte("AAAA"), 0)
	w2.WriteAt([]byte("BBBB"), 0)
	if err := w1.Commit(core.CommitOptions{}); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	err := w2.Commit(core.CommitOptions{})
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("second commit err = %v, want ErrConflict", err)
	}
	w2.Drop()
	// The committed state is w1's.
	r, _ := cl.Open("/f")
	buf := make([]byte, 4)
	r.ReadAt(buf, 0)
	if string(buf) != "AAAA" {
		t.Fatalf("content = %q", buf)
	}
}

func TestAtomicAppend(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/log", wire.DefaultAttrs())
	f.Close()

	for i := 0; i < 5; i++ {
		if err := cl.AtomicAppend("/log", []byte("rec;")); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := cl.Open("/log")
	if r.Size() != 20 {
		t.Fatalf("size = %d, want 20", r.Size())
	}
	buf := make([]byte, 20)
	r.ReadAt(buf, 0)
	if string(buf) != "rec;rec;rec;rec;rec;" {
		t.Fatalf("content = %q", buf)
	}
}

func TestAtomicAppendConcurrent(t *testing.T) {
	c := testCluster(t, 4)
	cl1 := newClient(t, c, "c1")
	cl2 := newClient(t, c, "c2")
	f, _ := cl1.Create("/log", wire.DefaultAttrs())
	f.Close()

	done := make(chan error, 2)
	go func() {
		var err error
		for i := 0; i < 3 && err == nil; i++ {
			err = cl1.AtomicAppend("/log", []byte("A"))
		}
		done <- err
	}()
	go func() {
		var err error
		for i := 0; i < 3 && err == nil; i++ {
			err = cl2.AtomicAppend("/log", []byte("B"))
		}
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r, _ := cl1.Open("/log")
	if r.Size() != 6 {
		t.Fatalf("size = %d, want 6 (no lost appends)", r.Size())
	}
	buf := make([]byte, 6)
	r.ReadAt(buf, 0)
	as, bs := 0, 0
	for _, ch := range buf {
		switch ch {
		case 'A':
			as++
		case 'B':
			bs++
		}
	}
	if as != 3 || bs != 3 {
		t.Fatalf("content %q: %d A, %d B", buf, as, bs)
	}
}

func TestReplicationReachesDegree(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 3
	f, _ := cl.Create("/replicated", attrs)
	payload := make([]byte, 100<<10) // spill to a data segment
	f.WriteAt(payload, 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Lazy propagation: repair scans create the extra replicas in the
	// background. Index + 2 data segments on tiny sizing... count copies.
	entry, _ := cl.Stat("/replicated")
	deadline := time.After(20 * time.Second)
	for {
		copies := 0
		for _, p := range c.Providers() {
			if p.Store().Stat(entry.FileID).Present {
				copies++
			}
		}
		if copies >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("index segment reached only %d/3 replicas", copies)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestSyncCommitPropagatesImmediately(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, _ := cl.Create("/syncfile", attrs)
	f.WriteAt(make([]byte, 100<<10), 0)
	if err := f.Commit(core.CommitOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDeletesReplicas(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/doomed", wire.DefaultAttrs())
	f.WriteAt(make([]byte, 100<<10), 0)
	f.Close()
	entry, _ := cl.Stat("/doomed")

	if err := cl.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/doomed"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("stat after remove: %v", err)
	}
	for id, p := range c.Providers() {
		if p.Store().Stat(entry.FileID).Present {
			t.Errorf("index segment survives on %s", id)
		}
	}
}

func TestDirectoryOperations(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	if err := cl.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	f, _ := cl.Create("/docs/a", wire.DefaultAttrs())
	f.Close()
	entries, err := cl.ReadDir("/docs")
	if err != nil || len(entries) != 1 || entries[0].Name != "a" {
		t.Fatalf("readdir = %+v err %v", entries, err)
	}
	if err := cl.Rmdir("/docs"); err == nil {
		t.Error("rmdir non-empty succeeded")
	}
	cl.Remove("/docs/a")
	if err := cl.Rmdir("/docs"); err != nil {
		t.Fatal(err)
	}
}

func TestStripedMode(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	attrs := wire.FileAttrs{
		Mode: wire.Striped, StripeCount: 4, StripeUnit: 4096,
		DeclaredSize: 256 << 10, ReplDeg: 1, Alpha: 0.5,
	}
	f, err := cl.Create("/striped", attrs)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(9)).Read(payload)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, _ := cl.Open("/striped")
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("striped content mismatch")
	}
}

func TestHybridMode(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	attrs := wire.FileAttrs{Mode: wire.Hybrid, StripeCount: 2, StripeUnit: 4096, ReplDeg: 1, Alpha: 0.5}
	f, err := cl.Create("/hybrid", attrs)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(11)).Read(payload)
	f.WriteAt(payload, 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, _ := cl.Open("/hybrid")
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("hybrid content mismatch")
	}
}

func TestVersioningOffDirectIO(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	attrs := wire.FileAttrs{
		Mode: wire.Striped, StripeCount: 4, StripeUnit: 4096,
		DeclaredSize: 64 << 10, ReplDeg: 1, Alpha: 0.5, VersioningOff: true,
	}
	f, err := cl.Create("/direct", attrs)
	if err != nil {
		t.Fatal(err)
	}
	// Two "processes" write disjoint byte ranges without commits.
	g, err := cl.Open("/direct")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{'x'}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(bytes.Repeat([]byte{'y'}, 1000), 32<<10); err != nil {
		t.Fatal(err)
	}
	// Both writes are immediately visible to a third reader.
	r, _ := cl.Open("/direct")
	buf := make([]byte, 1000)
	r.ReadAt(buf, 0)
	if buf[0] != 'x' || buf[999] != 'x' {
		t.Fatalf("direct write 1 invisible: %q…", buf[:4])
	}
	r.ReadAt(buf, 32<<10)
	if buf[0] != 'y' {
		t.Fatalf("direct write 2 invisible")
	}
}

func TestGrowingFileAcrossManySegments(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/grow", wire.DefaultAttrs())
	// With 4 KB units, segments are 4 KB × 8 then 32 KB…; write 100 KB in
	// 10 KB chunks across multiple commits.
	payload := make([]byte, 100<<10)
	rand.New(rand.NewSource(5)).Read(payload)
	for off := 0; off < len(payload); off += 10 << 10 {
		end := off + 10<<10
		if end > len(payload) {
			end = len(payload)
		}
		if _, err := f.WriteAt(payload[off:end], int64(off)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	g, _ := cl.Open("/grow")
	if g.Version() == 0 || g.Size() != int64(len(payload)) {
		t.Fatalf("v%d size %d", g.Version(), g.Size())
	}
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("content mismatch after incremental growth")
	}
}

func TestReadAtEOF(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/small", wire.DefaultAttrs())
	f.WriteAt([]byte("abc"), 0)
	f.Close()
	g, _ := cl.Open("/small")
	buf := make([]byte, 10)
	n, err := g.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if _, err := g.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("past-EOF read err = %v", err)
	}
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/ro", wire.DefaultAttrs())
	f.WriteAt([]byte("x"), 0)
	f.Close()
	r, _ := cl.Open("/ro")
	if _, err := r.WriteAt([]byte("y"), 0); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	if _, err := cl.Open("/ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteLockLeases(t *testing.T) {
	c := testCluster(t, 2)
	cl1 := newClient(t, c, "c1")
	cl2 := newClient(t, c, "c2")
	f, _ := cl1.Create("/shared", wire.DefaultAttrs())
	f.Close()

	// Cooperative processes serialize through leases (paper §3.5).
	if err := cl1.AcquireLease("/shared", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := cl2.AcquireLease("/shared", time.Minute); err == nil {
		t.Fatal("second client acquired a held lease")
	}
	if err := cl1.ReleaseLease("/shared"); err != nil {
		t.Fatal(err)
	}
	if err := cl2.AcquireLease("/shared", time.Minute); err != nil {
		t.Fatalf("lease not acquirable after release: %v", err)
	}
}

func TestDropDiscardsChanges(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/keep", wire.DefaultAttrs())
	f.WriteAt([]byte("original"), 0)
	f.Close()

	w, _ := cl.OpenWrite("/keep")
	w.WriteAt([]byte("SCRATCH!"), 0)
	w.Drop() // Figure 4's conflict path: delete the shadow copy

	r, _ := cl.Open("/keep")
	buf := make([]byte, 8)
	r.ReadAt(buf, 0)
	if string(buf) != "original" {
		t.Fatalf("dropped changes leaked: %q", buf)
	}
	if r.Version() != 1 {
		t.Fatalf("version advanced by dropped session: %d", r.Version())
	}
}

func TestSyncCreatesFreshShadowSession(t *testing.T) {
	// Paper §3.5: a sync call commits and the session continues on a fresh
	// shadow based on the new version.
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/s", wire.DefaultAttrs())
	f.WriteAt([]byte("one"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	v1 := f.Version()
	f.WriteAt([]byte("two"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.Version() != v1+1 {
		t.Fatalf("version after two syncs = %d, want %d", f.Version(), v1+1)
	}
	r, _ := cl.Open("/s")
	buf := make([]byte, 3)
	r.ReadAt(buf, 0)
	if string(buf) != "two" {
		t.Fatalf("content = %q", buf)
	}
}

func TestReadSnapshotIsolationAcrossCommit(t *testing.T) {
	// A reader opened at version N keeps reading version N even after
	// another process commits N+1 (versions are immutable).
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/snap", wire.DefaultAttrs())
	f.WriteAt(bytes.Repeat([]byte{'1'}, 100<<10), 0) // beyond attach limit
	f.Close()

	r, _ := cl.Open("/snap") // snapshot at v1
	w, _ := cl.OpenWrite("/snap")
	w.WriteAt(bytes.Repeat([]byte{'2'}, 100<<10), 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if buf[0] != '1' {
		t.Fatalf("snapshot reader saw new version: %q", buf[:4])
	}
}

func TestMilestoneVersionsSurviveConsolidation(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/versioned", wire.DefaultAttrs())
	f.WriteAt(bytes.Repeat([]byte{'1'}, 100<<10), 0) // v1 (spilled)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Pin v1 as a milestone, then commit several more versions — enough
	// that consolidation would normally reclaim v1 (KeepVersions=2).
	if err := cl.PinMilestone("/versioned", 1); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 5; i++ {
		w, _ := cl.OpenWrite("/versioned")
		w.WriteAt(bytes.Repeat([]byte{byte('0' + i)}, 100<<10), 0)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The milestone is still fully readable...
	old, err := cl.OpenVersion("/versioned", 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := old.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if buf[0] != '1' {
		t.Fatalf("milestone content = %q", buf[:4])
	}
	// ...while an unpinned intermediate version was consolidated away.
	if mid, err := cl.OpenVersion("/versioned", 2); err == nil {
		mbuf := make([]byte, 4)
		if _, rerr := mid.ReadAt(mbuf, 0); rerr == nil && mbuf[0] == '2' {
			t.Fatal("unpinned version 2 still fully readable; consolidation inert")
		}
	}
	// Latest still reads correctly.
	cur, _ := cl.Open("/versioned")
	cur.ReadAt(buf, 0)
	if buf[0] != '5' {
		t.Fatalf("latest content = %q", buf[:4])
	}
}

func TestUnpinMilestoneAllowsReclaim(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/m", wire.DefaultAttrs())
	f.WriteAt([]byte("one"), 0)
	f.Close()
	if err := cl.PinMilestone("/m", 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.UnpinMilestone("/m", 1); err != nil {
		t.Fatal(err)
	}
	// No assertion beyond success: reclaim happens at future commits.
}

func TestOpenVersionValidation(t *testing.T) {
	c := testCluster(t, 2)
	cl := newClient(t, c, "c1")
	f, _ := cl.Create("/v", wire.DefaultAttrs())
	f.WriteAt([]byte("x"), 0)
	f.Close()
	if _, err := cl.OpenVersion("/v", 9); err == nil {
		t.Fatal("opened a future version")
	}
}

func TestNFSStyleHandleAPI(t *testing.T) {
	c := testCluster(t, 4)
	cl := newClient(t, c, "c1")

	root := cl.RootHandle()
	if !root.IsDir() {
		t.Fatal("root not a directory")
	}
	dir, err := cl.MkdirHandle(root, "data")
	if err != nil {
		t.Fatal(err)
	}
	fh, err := cl.CreateHandle(dir, "blob", wire.DefaultAttrs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WriteHandle(fh, []byte("handle payload"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 14)
	if _, err := cl.ReadHandle(fh, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "handle payload" {
		t.Fatalf("read %q", buf)
	}

	// LOOKUP resolves the same object.
	got, err := cl.LookupHandle(dir, "blob")
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := cl.GetAttr(got)
	if err != nil || attrs.Size != 14 {
		t.Fatalf("GetAttr = %+v, %v", attrs, err)
	}

	// READDIR lists it.
	entries, err := cl.ReadDirHandle(dir)
	if err != nil || len(entries) != 1 || entries[0].Name != "blob" {
		t.Fatalf("readdir = %+v, %v", entries, err)
	}

	// Remove + recreate: the old handle must go stale (NFS semantics).
	if err := cl.RemoveHandle(dir, "blob"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateHandle(dir, "blob", wire.DefaultAttrs()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadHandle(fh, buf, 0); !errors.Is(err, core.ErrStaleHandle) {
		t.Fatalf("stale handle read err = %v", err)
	}

	// Misuse guards.
	if _, err := cl.LookupHandle(fh, "x"); err == nil {
		t.Error("lookup in file handle succeeded")
	}
	if _, err := cl.LookupHandle(dir, "a/b"); err == nil {
		t.Error("multi-component lookup succeeded")
	}
	if _, err := cl.ReadHandle(dir, buf, 0); err == nil {
		t.Error("read on directory handle succeeded")
	}
}
