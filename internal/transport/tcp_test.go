package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

type tcpEcho struct {
	mu    sync.Mutex
	casts []any
}

func (h *tcpEcho) HandleCall(_ context.Context, from wire.NodeID, req any) (any, error) {
	return req, nil
}

func (h *tcpEcho) HandleCast(from wire.NodeID, msg any) {
	h.mu.Lock()
	h.casts = append(h.casts, msg)
	h.mu.Unlock()
}

func (h *tcpEcho) castCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.casts)
}

func TestTCPCallRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", "", nil, &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Rebind with the actual port as the advertised ID.
	b, err := ListenTCP("127.0.0.1:0", "", nil, &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	bAddr := wire.NodeID(b.ln.Addr().String())
	resp, err := a.Call(context.Background(), bAddr, wire.SegRead{Offset: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(wire.SegRead); got.Offset != 99 {
		t.Errorf("echo = %+v", got)
	}
}

func TestTCPCallConnectionRefused(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", "", nil, &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.Call(ctx, "127.0.0.1:1", wire.SegRead{}); err == nil {
		t.Fatal("call to dead address succeeded")
	}
}

func TestTCPMulticastFanOut(t *testing.T) {
	recv := &tcpEcho{}
	b, err := ListenTCP("127.0.0.1:0", "", nil, recv)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bAddr := b.ln.Addr().String()

	a, err := ListenTCP("127.0.0.1:0", "", []string{bAddr}, &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.Multicast(wire.Heartbeat{From: a.ID(), Seq: 1})
	deadline := time.After(3 * time.Second)
	for recv.castCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("multicast never arrived")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestTCPPeerLearning(t *testing.T) {
	recv := &tcpEcho{}
	b, err := ListenTCP("127.0.0.1:0", "", nil, recv)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bAddr := wire.NodeID(b.ln.Addr().String())

	a, err := ListenTCP("127.0.0.1:0", "", nil, &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// a calls b: b should learn a as a peer and reach it via multicast.
	// a's advertised ID defaults to its bind (resolved at runtime), so set
	// it via a fresh node instead: here we simply assert b recorded a peer.
	if _, err := a.Call(context.Background(), bAddr, wire.SegRead{}); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	peers := len(b.peers)
	b.mu.Unlock()
	if peers == 0 {
		t.Error("callee did not learn the caller as a peer")
	}
}

func TestTCPClosedNodeRejectsCalls(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", "", nil, &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := a.Call(context.Background(), "127.0.0.1:1", wire.SegRead{}); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Idempotent close.
	a.Close()
}

func TestTCPNetworkJoin(t *testing.T) {
	net := &TCPNetwork{Bind: "127.0.0.1:0"}
	ep, err := net.Join("127.0.0.1:0", &tcpEcho{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if ep.Host() != ep.ID() {
		t.Error("TCP node host != id")
	}
}
