package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Wire format: a request is a 4-byte big-endian length prefix followed by a
// wire.AppendEnvelope body (sender, trace/span context, tagged message); the
// reply is a prefixed wire.AppendReply body (error string plus optional
// tagged message). UDP multicast datagrams are the envelope body without the
// prefix — the datagram boundary already frames it. Frame buffers come from
// bufpool and are recycled as soon as the body is decoded (the codec copies
// all payloads out of the input).

// maxFrame bounds a single request or reply body. The largest legitimate
// message is a SegWrite near the 64 MB segment ceiling; 256 MB leaves
// headroom while keeping a corrupt length prefix from allocating the moon.
const maxFrame = 256 << 20

// TCPNode is a real-network endpoint for the cmd/ daemons: requests travel
// over TCP (length-prefixed binary codec frames), and the multicast channel
// is emulated by UDP fan-out to the known peer set (seed addresses plus
// every sender ever heard from — heartbeats make the set converge). A
// node's ID is its advertised host:port.
type TCPNode struct {
	id      wire.NodeID
	handler Handler
	ln      net.Listener
	udp     *net.UDPConn

	obs *obs.Obs
	cli *obs.RPCRecorder // per-type client-side call metrics
	srv *obs.RPCRecorder // per-type server-side service metrics

	mu     sync.Mutex
	peers  map[string]bool
	closed bool
	wg     sync.WaitGroup
}

var _ Endpoint = (*TCPNode)(nil)

// ListenTCP starts serving on bind (TCP and UDP on the same port).
// advertise is the address peers use to reach this node (defaults to bind);
// seeds are initial peer addresses for the multicast emulation.
func ListenTCP(bind, advertise string, seeds []string, h Handler) (*TCPNode, error) {
	return ListenTCPObs(bind, advertise, seeds, h, nil)
}

// ListenTCPObs is ListenTCP with observability: every call/serve lands in
// per-message-type latency and byte series (actual framed wire bytes, not
// estimates), and span contexts ride the call envelope so traces cross
// machines. A nil o disables all of it.
func ListenTCPObs(bind, advertise string, seeds []string, h Handler, o *obs.Obs) (*TCPNode, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp %s: %w", bind, err)
	}
	// The UDP socket shares the TCP listener's resolved port so one
	// advertised address reaches both; the advertised ID defaults to the
	// resolved address (":0" binds pick their port at listen time).
	resolved := ln.Addr().String()
	if advertise == "" {
		advertise = resolved
	}
	uaddr, err := net.ResolveUDPAddr("udp", resolved)
	if err != nil {
		ln.Close()
		return nil, err
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("transport: listen udp %s: %w", resolved, err)
	}
	n := &TCPNode{
		id:      wire.NodeID(advertise),
		handler: h,
		ln:      ln,
		udp:     udp,
		obs:     o,
		cli:     obs.NewRPCRecorder(o.Reg(), "client", advertise),
		srv:     obs.NewRPCRecorder(o.Reg(), "server", advertise),
		peers:   make(map[string]bool),
	}
	for _, s := range seeds {
		if s != "" && s != advertise {
			n.peers[s] = true
		}
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.udpLoop()
	// Announce ourselves to the seeds so their multicast fan-out includes
	// this node (pure listeners — clients — would otherwise never hear
	// heartbeats).
	n.Multicast(wire.Hello{From: n.id})
	return n, nil
}

// ID implements Endpoint.
func (n *TCPNode) ID() wire.NodeID { return n.id }

// Host implements Endpoint (a TCP node is its own host).
func (n *TCPNode) Host() wire.NodeID { return n.id }

// countingConn tallies the bytes crossing a net.Conn so RPC byte metrics
// report real framed traffic, not estimates.
type countingConn struct {
	net.Conn
	rd, wr int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rd += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wr += int64(n)
	return n, err
}

// envelopeFrame builds a length-prefixed request frame in a pooled buffer.
// The caller owns the returned buffer and must bufpool.Put it after writing.
func envelopeFrame(from wire.NodeID, trace, span uint64, msg any) ([]byte, error) {
	sz, ok := wire.EnvelopeSize(from, msg)
	if !ok || sz > maxFrame {
		return nil, fmt.Errorf("transport: cannot frame %T (encodable=%v)", msg, ok)
	}
	buf := bufpool.Get(4 + sz)[:4]
	binary.BigEndian.PutUint32(buf, uint32(sz))
	buf, err := wire.AppendEnvelope(buf, from, trace, span, msg)
	if err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// readFrame reads one length-prefixed frame body into a pooled buffer. The
// caller must bufpool.Put the result once decoded.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	sz := binary.BigEndian.Uint32(hdr[:])
	if sz > maxFrame {
		return nil, fmt.Errorf("transport: %d-byte frame exceeds %d limit", sz, maxFrame)
	}
	buf := bufpool.Get(int(sz))
	if _, err := io.ReadFull(r, buf); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// Call implements Endpoint.
func (n *TCPNode) Call(ctx context.Context, to wire.NodeID, req any) (any, error) {
	if n.cli == nil {
		return n.call(ctx, to, req)
	}
	var sp *obs.Span
	if _, traced := obs.FromContext(ctx); traced {
		ctx, sp = n.obs.Tr().Start(ctx, string(n.id), "rpc:"+obs.MsgTypeName(req))
	}
	start := time.Now()
	resp, sent, recv, err := n.doCall(ctx, to, req)
	sp.SetError(err)
	sp.End()
	n.cli.Observe(req, sent, recv, time.Since(start), err)
	return resp, err
}

func (n *TCPNode) call(ctx context.Context, to wire.NodeID, req any) (any, error) {
	resp, _, _, err := n.doCall(ctx, to, req)
	return resp, err
}

func (n *TCPNode) doCall(ctx context.Context, to wire.NodeID, req any) (resp any, sent, recv int, err error) {
	if n.isClosed() {
		return nil, 0, 0, ErrClosed
	}
	var trace, span uint64
	if sc, ok := obs.FromContext(ctx); ok {
		trace, span = sc.TraceID, sc.SpanID
	}
	frame, err := envelopeFrame(n.id, trace, span, req)
	if err != nil {
		return nil, 0, 0, err
	}
	d := net.Dialer{}
	raw, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		bufpool.Put(frame)
		return nil, 0, 0, fmt.Errorf("%w: dial %s: %v", ErrTimeout, to, err)
	}
	conn := &countingConn{Conn: raw}
	defer func() {
		conn.Close()
		sent, recv = int(conn.wr), int(conn.rd)
	}()
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	} else {
		conn.SetDeadline(time.Now().Add(60 * time.Second))
	}
	_, werr := conn.Write(frame)
	bufpool.Put(frame)
	if werr != nil {
		return nil, 0, 0, fmt.Errorf("transport: send to %s: %w", to, werr)
	}
	rbuf, err := readFrame(conn)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: reply from %s: %v", ErrTimeout, to, err)
	}
	msg, errStr, derr := wire.DecodeReply(rbuf)
	bufpool.Put(rbuf)
	if derr != nil {
		return nil, 0, 0, fmt.Errorf("transport: reply from %s: %w", to, derr)
	}
	if errStr != "" {
		return nil, 0, 0, fmt.Errorf("transport: remote %s: %s", to, errStr)
	}
	return msg, 0, 0, nil
}

// Multicast implements Endpoint via UDP fan-out to the known peers. The
// datagram is an unprefixed envelope body.
func (n *TCPNode) Multicast(msg any) {
	if n.isClosed() {
		return
	}
	sz, ok := wire.EnvelopeSize(n.id, msg)
	if !ok || sz > 64<<10 {
		return // not encodable, or would not fit a datagram
	}
	buf := bufpool.Get(sz)[:0]
	buf, err := wire.AppendEnvelope(buf, n.id, 0, 0, msg)
	if err != nil {
		bufpool.Put(buf)
		return
	}
	n.mu.Lock()
	peers := make([]string, 0, len(n.peers))
	for p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	sent := 0
	for _, p := range peers {
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			continue
		}
		if _, err := n.udp.WriteToUDP(buf, addr); err == nil {
			sent += len(buf)
		}
	}
	bufpool.Put(buf)
	if n.cli != nil {
		n.cli.ObserveCast(msg, sent)
	}
}

// WarmRPC pre-registers the RPC metric families for the given message
// values so a freshly started daemon's /metrics already lists them at zero.
func (n *TCPNode) WarmRPC(msgs ...any) {
	n.cli.Warm(msgs...)
	n.srv.Warm(msgs...)
}

// AddPeer adds an address to the multicast peer set.
func (n *TCPNode) AddPeer(addr string) {
	if addr == "" || addr == string(n.id) {
		return
	}
	n.mu.Lock()
	n.peers[addr] = true
	n.mu.Unlock()
}

// Close implements Endpoint.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.ln.Close()
	n.udp.Close()
	n.wg.Wait()
	return nil
}

func (n *TCPNode) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		go n.serve(conn)
	}
}

func (n *TCPNode) serve(raw net.Conn) {
	conn := &countingConn{Conn: raw}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Minute))
	fbuf, err := readFrame(conn)
	if err != nil {
		return
	}
	from, trace, span, req, err := wire.DecodeEnvelope(fbuf)
	bufpool.Put(fbuf)
	if err != nil {
		return
	}
	n.AddPeer(string(from))
	ctx := context.Background()
	var sp *obs.Span
	if trace != 0 {
		ctx = obs.ContextWith(ctx, obs.SpanContext{TraceID: trace, SpanID: span})
		ctx, sp = n.obs.Tr().Start(ctx, string(n.id), "serve:"+obs.MsgTypeName(req))
	}
	start := time.Now()
	resp, herr := n.handler.HandleCall(ctx, from, req)
	sp.SetError(herr)
	sp.End()
	errStr := ""
	if herr != nil {
		errStr = herr.Error()
	}
	if resp != nil && !wire.Encodable(resp) {
		errStr = fmt.Sprintf("transport: unencodable response %T", resp)
		resp = nil
	}
	sz, _ := wire.ReplySize(resp, errStr)
	if sz > maxFrame {
		resp, errStr = nil, "transport: oversized response"
		sz, _ = wire.ReplySize(resp, errStr)
	}
	rbuf := bufpool.Get(4 + sz)[:4]
	binary.BigEndian.PutUint32(rbuf, uint32(sz))
	if rbuf, err = wire.AppendReply(rbuf, resp, errStr); err == nil {
		conn.Write(rbuf)
	}
	bufpool.Put(rbuf)
	n.srv.Observe(req, int(conn.wr), int(conn.rd), time.Since(start), herr)
}

func (n *TCPNode) udpLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		sz, _, err := n.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		from, _, _, msg, err := wire.DecodeEnvelope(buf[:sz])
		if err != nil {
			continue
		}
		n.AddPeer(string(from))
		n.handler.HandleCast(from, msg)
	}
}

// TCPNetwork adapts ListenTCP to the Network interface so provider/client
// constructors can run unchanged over real sockets. Join's id must be the
// node's advertised host:port; bind defaults to the same address.
type TCPNetwork struct {
	// Bind optionally overrides the listen address (e.g. ":0" behind NAT).
	Bind string
	// Seeds are the initial multicast peers for every joined node.
	Seeds []string
	// Obs, when set, instruments every joined node (see ListenTCPObs).
	Obs *obs.Obs
}

// Join implements Network.
func (t *TCPNetwork) Join(id wire.NodeID, h Handler) (Endpoint, error) {
	bind := t.Bind
	if bind == "" {
		bind = string(id)
	}
	advertise := string(id)
	// A ":0" id means "pick a port": let ListenTCP advertise the resolved
	// address instead of the unusable port-zero one.
	if _, port, err := net.SplitHostPort(advertise); err == nil && port == "0" {
		advertise = ""
	}
	return ListenTCPObs(bind, advertise, t.Seeds, h, t.Obs)
}

// JoinAt implements Network; co-location has no special meaning over real
// sockets, so it behaves like Join.
func (t *TCPNetwork) JoinAt(id, _ wire.NodeID, h Handler) (Endpoint, error) {
	return t.Join(id, h)
}
