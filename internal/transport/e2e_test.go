package transport_test

// End-to-end test of the real-network path: a namespace server, two
// storage providers, and a client run over TCP/UDP sockets on loopback —
// the same protocol code the simulated experiments exercise, without the
// cost model (simtime scale 1).

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/membership"
	"repro/internal/namespace"
	"repro/internal/provider"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// freePort reserves and returns a free loopback TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type nsHandler struct{ s *namespace.Server }

func (h nsHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	return h.s.Handle(req)
}
func (h nsHandler) HandleCast(wire.NodeID, any) {}

func TestTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time sockets test")
	}
	clock := simtime.Real()

	// Namespace server.
	nsAddr := freePort(t)
	srv, err := namespace.NewServer(clock, namespace.Config{OpCost: time.Microsecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nsNode, err := transport.ListenTCP(nsAddr, "", nil, nsHandler{srv})
	if err != nil {
		t.Fatal(err)
	}
	defer nsNode.Close()

	// Two providers with fast heartbeats so membership converges quickly.
	mcfg := membership.Config{HeartbeatInterval: 50 * time.Millisecond, FailureFactor: 10}
	pcfg := provider.DefaultConfig()
	pcfg.OpCost = provider.NoOpCost
	pcfg.Membership = mcfg
	addr1, addr2 := freePort(t), freePort(t)

	mk := func(addr string, seeds []string) *provider.Provider {
		net := &transport.TCPNetwork{Bind: addr, Seeds: seeds}
		d := disk.New(clock, addr, disk.Model{SeekTime: 0, RotationalLatency: 0, TransferRate: 1e12}, 1<<30)
		p, err := provider.New(wire.NodeID(addr), clock, pcfg, net, d)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		return p
	}
	p1 := mk(addr1, []string{addr2})
	defer p1.Stop()
	p2 := mk(addr2, []string{addr1})
	defer p2.Stop()

	// Client over its own TCP node.
	clientNet := &transport.TCPNetwork{Bind: "127.0.0.1:0", Seeds: []string{addr1, addr2}}
	client, err := core.NewClient("127.0.0.1:0", clock, clientNet, core.Config{
		Namespace:  wire.NodeID(nsAddr),
		Membership: mcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The client's node announced itself to its seeds at startup (the
	// transport's hello message), so the providers fan heartbeats out to it
	// and the membership view converges without manual bootstrapping.
	if err := client.WaitForProviders(2, 15*time.Second); err != nil {
		t.Fatalf("providers not visible: %v", err)
	}

	// Full file lifecycle over real sockets.
	attrs := wire.DefaultAttrs()
	attrs.ReplDeg = 2
	f, err := client.Create("/tcp-file", attrs)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("sorrento-over-tcp "), 1000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := client.Open("/tcp-file")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("content mismatch over TCP")
	}

	// Namespace listing and removal work too.
	entries, err := client.ReadDir("/")
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := client.Remove("/tcp-file"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stat("/tcp-file"); err == nil {
		t.Fatal("file survives removal")
	}
}

func TestTCPProviderHeartbeatDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time sockets test")
	}
	clock := simtime.Real()
	mcfg := membership.Config{HeartbeatInterval: 50 * time.Millisecond, FailureFactor: 10}
	pcfg := provider.DefaultConfig()
	pcfg.OpCost = provider.NoOpCost
	pcfg.Membership = mcfg

	a, b := freePort(t), freePort(t)
	mk := func(addr string, seeds []string) *provider.Provider {
		net := &transport.TCPNetwork{Bind: addr, Seeds: seeds}
		d := disk.New(clock, addr, disk.Model{TransferRate: 1e12}, 1<<30)
		p, err := provider.New(wire.NodeID(addr), clock, pcfg, net, d)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		return p
	}
	p1 := mk(a, nil) // knows nobody
	defer p1.Stop()
	p2 := mk(b, []string{a}) // seeds p1; p1 learns p2 from its heartbeats
	defer p2.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if p1.Members().IsLive(wire.NodeID(b)) && p2.Members().IsLive(wire.NodeID(a)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mutual discovery failed: p1 sees %v, p2 sees %v",
				p1.Members().Live(), p2.Members().Live())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
