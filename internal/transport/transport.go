// Package transport defines how Sorrento nodes talk to each other: a
// request/response Call primitive plus the multicast channel used for
// heartbeats and the backup location scheme. Two implementations exist —
// the simulated fabric in internal/simnet (cost-charged, in-process, used by
// tests and the benchmark harness) and the TCP/UDP transport in this package
// (used by the cmd/ daemons). Protocol code is written against these
// interfaces only.
package transport

import (
	"context"
	"errors"

	"repro/internal/wire"
)

// Common transport errors.
var (
	// ErrTimeout reports that the destination did not answer in time —
	// typically because the node is down.
	ErrTimeout = errors.New("transport: request timed out")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrNoHandler reports a message the receiver does not understand.
	ErrNoHandler = errors.New("transport: no handler for message")
)

// Handler receives traffic addressed to an endpoint.
type Handler interface {
	// HandleCall services a request and returns the response. from is the
	// host node the request originated on (co-located clients report their
	// host provider, which is what locality-driven migration needs).
	HandleCall(ctx context.Context, from wire.NodeID, req any) (any, error)
	// HandleCast receives a multicast message. It must not block for long;
	// implementations fan out to goroutines for slow work.
	HandleCast(from wire.NodeID, msg any)
}

// CallFunc adapts a function to a call-only Handler.
type CallFunc func(ctx context.Context, from wire.NodeID, req any) (any, error)

// HandleCall implements Handler.
func (f CallFunc) HandleCall(ctx context.Context, from wire.NodeID, req any) (any, error) {
	return f(ctx, from, req)
}

// HandleCast implements Handler by dropping the message.
func (f CallFunc) HandleCast(wire.NodeID, any) {}

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns this endpoint's own node ID.
	ID() wire.NodeID
	// Host returns the physical node this endpoint lives on. For provider
	// and namespace endpoints Host == ID; for co-located client endpoints
	// Host is the provider node whose NIC they share.
	Host() wire.NodeID
	// Call sends req to the node named to and waits for its response.
	Call(ctx context.Context, to wire.NodeID, req any) (any, error)
	// Multicast sends msg to every endpoint on the multicast channel
	// (including providers only; see Network implementations). Delivery is
	// best-effort and asynchronous.
	Multicast(msg any)
	// Close detaches the endpoint; subsequent calls to it time out.
	Close() error
}

// Network creates endpoints.
type Network interface {
	// Join attaches a new endpoint with its own network interface.
	Join(id wire.NodeID, h Handler) (Endpoint, error)
	// JoinAt attaches an endpoint co-located with (sharing the NIC of) an
	// existing host endpoint. Calls between co-located endpoints are local
	// and free. Implementations without a cost model may treat it as Join.
	JoinAt(id, host wire.NodeID, h Handler) (Endpoint, error)
}
