package trace

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// memFS is a trivial in-memory fsapi.System for replayer tests.
type memFS struct {
	mu    sync.Mutex
	files map[string][]byte
	// readDelay injects modeled I/O latency.
	readDelay time.Duration
	clock     *simtime.Clock
}

func newMemFS(clock *simtime.Clock) *memFS {
	return &memFS{files: make(map[string][]byte), clock: clock}
}

func (m *memFS) Name() string       { return "mem" }
func (m *memFS) Mkdir(string) error { return nil }

func (m *memFS) Create(path string) (fsapi.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok {
		return nil, errors.New("exists")
	}
	m.files[path] = nil
	return &memFile{fs: m, path: path}, nil
}

func (m *memFS) Open(path string) (fsapi.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return nil, errors.New("not found")
	}
	return &memFile{fs: m, path: path}, nil
}

func (m *memFS) OpenWrite(path string) (fsapi.File, error) { return m.Open(path) }

func (m *memFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return errors.New("not found")
	}
	delete(m.files, path)
	return nil
}

type memFile struct {
	fs   *memFS
	path string
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.fs.readDelay > 0 {
		f.fs.clock.Sleep(f.fs.readDelay)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data := f.fs.files[f.path]
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data := f.fs.files[f.path]
	end := off + int64(len(p))
	if end > int64(len(data)) {
		nb := make([]byte, end)
		copy(nb, data)
		data = nb
	}
	copy(data[off:end], p)
	f.fs.files[f.path] = data
	return len(p), nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.fs.files[f.path]))
}

func TestReplayBasicSession(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fs := newMemFS(clock)
	r := NewReplayer(clock, fs)
	tr := &Trace{Records: []Record{
		{Kind: OpCreate, Path: "/a"},
		{Kind: OpWrite, Path: "/a", Off: 0, N: 1000},
		{Kind: OpClose, Path: "/a"},
		{Kind: OpOpen, Path: "/a"},
		{Kind: OpRead, Path: "/a", Off: 0, N: 1000},
		{Kind: OpClose, Path: "/a"},
		{Kind: OpRemove, Path: "/a"},
	}}
	st := r.Run(tr)
	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
	if st.BytesWritten != 1000 || st.BytesRead != 1000 {
		t.Errorf("bytes = %d written, %d read", st.BytesWritten, st.BytesRead)
	}
	if st.Ops != 7 {
		t.Errorf("ops = %d", st.Ops)
	}
}

func TestReplayErrorsCounted(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fs := newMemFS(clock)
	r := NewReplayer(clock, fs)
	var seen []Record
	r.OnError = func(rec Record, err error) { seen = append(seen, rec) }
	tr := &Trace{Records: []Record{
		{Kind: OpOpen, Path: "/ghost"},
		{Kind: OpRead, Path: "/ghost", N: 10},
	}}
	st := r.Run(tr)
	if st.Errors != 2 || len(seen) != 2 {
		t.Errorf("errors = %d, callbacks = %d", st.Errors, len(seen))
	}
}

func TestReplayThinkTimePaces(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fs := newMemFS(clock)
	r := NewReplayer(clock, fs)
	tr := &Trace{Records: []Record{
		{Kind: OpThink, Dur: 500 * time.Millisecond},
		{Kind: OpThink, Dur: 500 * time.Millisecond},
	}}
	st := r.Run(tr)
	if st.Elapsed < 900*time.Millisecond {
		t.Errorf("elapsed = %v, want ≥ ~1s of think time", st.Elapsed)
	}
}

// TestReplayTimingFidelity replays an interleaved think/read trace under a
// heavily compressed clock (scale 0.001: one modeled second is one wall
// millisecond) and checks that the replayer's accounting stays coherent on
// the modeled timeline:
//
//   - recorded think gaps are honoured as modeled time, not wall time;
//   - injected device latency lands in IOTime but think time does not;
//   - Elapsed covers think plus I/O, i.e. the replay is paced rather than
//     issued back-to-back;
//   - the wall-clock cost of the run reflects the compression (a ~2.4s
//     modeled replay must finish in far under a second of wall time).
//
// Upper bounds are deliberately loose (~3x) — modeled time is wall/scale, so
// scheduler jitter is amplified by 1/scale — but tight enough to catch the
// failure modes above, each of which is off by an order of magnitude.
func TestReplayTimingFidelity(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fs := newMemFS(clock)
	fs.readDelay = 50 * time.Millisecond
	r := NewReplayer(clock, fs)
	fs.files["/f"] = make([]byte, 1<<20)

	const rounds = 8
	const think = 250 * time.Millisecond
	tr := &Trace{Records: []Record{{Kind: OpOpen, Path: "/f"}}}
	for i := 0; i < rounds; i++ {
		tr.Append(Record{Kind: OpThink, Dur: think})
		tr.Append(Record{Kind: OpRead, Path: "/f", Off: int64(i) * 4096, N: 4096})
	}
	tr.Append(Record{Kind: OpClose, Path: "/f"})

	wallStart := time.Now()
	st := r.Run(tr)
	wall := time.Since(wallStart)

	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
	thinkTotal := time.Duration(rounds) * think     // 2s modeled
	ioFloor := time.Duration(rounds) * fs.readDelay // 400ms modeled
	if st.IOTime < ioFloor || st.IOTime > 3*ioFloor {
		t.Errorf("IOTime = %v, want ~%v (device latency only, no think time)", st.IOTime, ioFloor)
	}
	wantElapsed := thinkTotal + ioFloor
	if st.Elapsed < wantElapsed {
		t.Errorf("Elapsed = %v, want ≥ %v (think + I/O on the modeled timeline)", st.Elapsed, wantElapsed)
	}
	if st.Elapsed > 3*wantElapsed {
		t.Errorf("Elapsed = %v, want ≤ ~%v (pacing overshoot)", st.Elapsed, 3*wantElapsed)
	}
	if wall > time.Second {
		t.Errorf("wall time = %v for a %v modeled replay at scale 0.001; clock compression not applied", wall, st.Elapsed)
	}
}

func TestReplayQueryIOTime(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fs := newMemFS(clock)
	fs.readDelay = 20 * time.Millisecond
	r := NewReplayer(clock, fs)
	var series stats.TimeSeries
	r.QuerySeries = &series
	fs.files["/p"] = make([]byte, 1<<20)
	tr := &Trace{Records: []Record{
		{Kind: OpOpen, Path: "/p"},
		{Kind: OpQueryStart},
		{Kind: OpRead, Path: "/p", Off: 0, N: 4096},
		{Kind: OpRead, Path: "/p", Off: 4096, N: 4096},
		{Kind: OpQueryEnd},
		{Kind: OpQueryStart},
		{Kind: OpRead, Path: "/p", Off: 0, N: 4096},
		{Kind: OpQueryEnd},
		{Kind: OpClose, Path: "/p"},
	}}
	st := r.Run(tr)
	if len(st.Queries) != 2 {
		t.Fatalf("queries = %d", len(st.Queries))
	}
	// First query: 2 reads × 20ms ≈ 40ms; second ≈ 20ms.
	if st.Queries[0].V < 30 || st.Queries[0].V > 120 {
		t.Errorf("query 0 I/O = %v ms", st.Queries[0].V)
	}
	if st.Queries[1].V < 15 || st.Queries[1].V > 80 {
		t.Errorf("query 1 I/O = %v ms", st.Queries[1].V)
	}
	if got := series.Points(); len(got) != 2 {
		t.Errorf("series points = %d", len(got))
	}
}

func TestReplayRatesComputed(t *testing.T) {
	clock := simtime.NewClock(0.001)
	fs := newMemFS(clock)
	fs.readDelay = 100 * time.Millisecond
	r := NewReplayer(clock, fs)
	fs.files["/f"] = make([]byte, 10<<20)
	tr := &Trace{Records: []Record{
		{Kind: OpOpen, Path: "/f"},
		{Kind: OpRead, Path: "/f", Off: 0, N: 1 << 20},
		{Kind: OpClose, Path: "/f"},
	}}
	st := r.Run(tr)
	if st.ReadRate() <= 0 || st.ReadRate() > 50 {
		t.Errorf("ReadRate = %v MB/s", st.ReadRate())
	}
	if (Stats{}).ReadRate() != 0 || (Stats{}).WriteRate() != 0 {
		t.Error("zero stats rates not zero")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Kind: OpCreate, Path: "/x"},
		{Kind: OpWrite, Path: "/x", Off: 42, N: 7},
		{Kind: OpThink, Dur: time.Second},
	}}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 3 || got.Records[1].Off != 42 || got.Records[2].Dur != time.Second {
		t.Errorf("round trip = %+v", got.Records)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage loaded")
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpCreate, OpOpen, OpOpenWrite, OpClose, OpRead, OpWrite, OpRemove, OpThink, OpQueryStart, OpQueryEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d string %q", k, s)
		}
		seen[s] = true
	}
	if OpKind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}
