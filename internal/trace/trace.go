// Package trace implements the application trace-replay methodology of the
// paper's evaluation (§4): workload generators emit timed operation traces
// (standing in for the glibc/PVFS interceptor traces the authors collected),
// and Replayer plays them against any fsapi.System, reproducing the original
// request mix while measuring throughput and per-query I/O time.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// OpKind is a trace record type.
type OpKind uint8

// Trace operation kinds.
const (
	// OpCreate creates (and opens) a file for writing.
	OpCreate OpKind = iota
	// OpOpen opens an existing file read-only.
	OpOpen
	// OpOpenWrite opens an existing file for writing.
	OpOpenWrite
	// OpClose closes the file (committing where applicable).
	OpClose
	// OpRead reads N bytes at Off.
	OpRead
	// OpWrite writes N bytes at Off.
	OpWrite
	// OpRemove unlinks the file.
	OpRemove
	// OpMkdir creates a directory (ignored when it already exists).
	OpMkdir
	// OpThink blocks for Dur — recorded gaps (Internet latency for the
	// crawler, query interarrival for PSM).
	OpThink
	// OpQueryStart/OpQueryEnd bracket one application query; the replayer
	// accumulates the I/O time spent in between (Figure 15's metric).
	OpQueryStart
	OpQueryEnd
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpOpenWrite:
		return "openw"
	case OpClose:
		return "close"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRemove:
		return "remove"
	case OpMkdir:
		return "mkdir"
	case OpThink:
		return "think"
	case OpQueryStart:
		return "qstart"
	case OpQueryEnd:
		return "qend"
	default:
		return "unknown"
	}
}

// Record is one traced operation.
type Record struct {
	Kind OpKind
	Path string
	Off  int64
	N    int64
	Dur  time.Duration // OpThink only
}

// Trace is one process's operation stream.
type Trace struct {
	Records []Record
}

// Append adds a record.
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// Save writes the trace as a gob stream.
func (t *Trace) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// Load reads a trace saved with Save.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	return &t, nil
}

// Stats summarizes a replay.
type Stats struct {
	Ops          int
	BytesRead    int64
	BytesWritten int64
	Errors       int
	Elapsed      time.Duration // modeled wall time of the whole replay
	IOTime       time.Duration // modeled time spent inside I/O calls
	// Queries holds the per-query I/O time samples (OpQueryStart/End).
	Queries []stats.Point
}

// ReadRate returns the replay's aggregate read MB/s (modeled).
func (s Stats) ReadRate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.BytesRead) / s.Elapsed.Seconds() / 1e6
}

// WriteRate returns the replay's aggregate write MB/s (modeled).
func (s Stats) WriteRate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.BytesWritten) / s.Elapsed.Seconds() / 1e6
}

// Replayer plays a trace against a file system "as fast as it can", exactly
// as the paper's trace replayers do, honouring only recorded think time.
type Replayer struct {
	clock *simtime.Clock
	fs    fsapi.System
	// Buf is the scratch buffer reused for reads; grown as needed.
	buf []byte
	// OnError, when set, receives op failures instead of aborting.
	OnError func(rec Record, err error)
	// QuerySeries, when set, receives (time, ioMillis) per completed query.
	QuerySeries *stats.TimeSeries
	// Origin offsets query-series timestamps (experiment start).
	Origin time.Duration
}

// NewReplayer builds a replayer for one process.
func NewReplayer(clock *simtime.Clock, fs fsapi.System) *Replayer {
	return &Replayer{clock: clock, fs: fs}
}

// Run replays the trace and returns its statistics.
func (r *Replayer) Run(t *Trace) Stats {
	var st Stats
	open := make(map[string]fsapi.File)
	sw := r.clock.Start()
	var queryIO time.Duration
	var inQuery bool
	var queryStartIO time.Duration

	chargeIO := func(d time.Duration) {
		st.IOTime += d
	}

	for _, rec := range t.Records {
		st.Ops++
		var err error
		opStart := r.clock.Now()
		switch rec.Kind {
		case OpCreate:
			var f fsapi.File
			f, err = r.fs.Create(rec.Path)
			if err == nil {
				open[rec.Path] = f
			}
		case OpOpen:
			var f fsapi.File
			f, err = r.fs.Open(rec.Path)
			if err == nil {
				open[rec.Path] = f
			}
		case OpOpenWrite:
			var f fsapi.File
			f, err = r.fs.OpenWrite(rec.Path)
			if err == nil {
				open[rec.Path] = f
			}
		case OpClose:
			if f, ok := open[rec.Path]; ok {
				err = f.Close()
				delete(open, rec.Path)
			}
		case OpRead:
			f, ok := open[rec.Path]
			if !ok {
				err = fmt.Errorf("trace: read of unopened %s", rec.Path)
				break
			}
			if int64(len(r.buf)) < rec.N {
				r.buf = make([]byte, rec.N)
			}
			var n int
			n, err = f.ReadAt(r.buf[:rec.N], rec.Off)
			st.BytesRead += int64(n)
			if err == io.EOF {
				err = nil
			}
		case OpWrite:
			f, ok := open[rec.Path]
			if !ok {
				err = fmt.Errorf("trace: write of unopened %s", rec.Path)
				break
			}
			if int64(len(r.buf)) < rec.N {
				r.buf = make([]byte, rec.N)
			}
			var n int
			n, err = f.WriteAt(r.buf[:rec.N], rec.Off)
			st.BytesWritten += int64(n)
		case OpRemove:
			err = r.fs.Remove(rec.Path)
		case OpMkdir:
			// Idempotent: replays against a pre-populated volume must not
			// fail on an existing directory.
			if merr := r.fs.Mkdir(rec.Path); merr != nil {
				err = nil
			}
		case OpThink:
			r.clock.Sleep(rec.Dur)
		case OpQueryStart:
			inQuery = true
			queryStartIO = queryIO
		case OpQueryEnd:
			if inQuery {
				inQuery = false
				ioMs := (queryIO - queryStartIO).Seconds() * 1000
				st.Queries = append(st.Queries, stats.Point{T: r.Origin + r.clock.Now(), V: ioMs})
				if r.QuerySeries != nil {
					r.QuerySeries.Add(r.Origin+r.clock.Now(), ioMs)
				}
			}
		}
		if isIO(rec.Kind) {
			d := r.clock.Now() - opStart
			chargeIO(d)
			if inQuery {
				queryIO += d
			}
		}
		if err != nil {
			st.Errors++
			if r.OnError != nil {
				r.OnError(rec, err)
			}
		}
	}
	for _, f := range open {
		f.Close()
	}
	st.Elapsed = sw.Elapsed()
	return st
}

func isIO(k OpKind) bool {
	switch k {
	case OpThink, OpQueryStart, OpQueryEnd:
		return false
	default:
		return true
	}
}

func init() {
	gob.Register(Trace{})
}
