package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 50; i++ {
		e.Add(10)
	}
	if v := e.Value(); math.Abs(v-10) > 1e-9 {
		t.Errorf("EWMA of constant 10 = %v", v)
	}
}

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := NewEWMA(0.1)
	e.Add(42)
	if v := e.Value(); v != 42 {
		t.Errorf("first sample: Value = %v, want 42", v)
	}
}

func TestEWMAWeighsRecent(t *testing.T) {
	e := NewEWMA(0.9)
	e.Add(0)
	e.Add(100)
	if v := e.Value(); v < 80 {
		t.Errorf("high-alpha EWMA after 0,100 = %v, want >= 80", v)
	}
}

func TestNewEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestSummaryBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min,Max = %v,%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty summary not zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.StdDev() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample summary wrong")
	}
}

func TestSummaryMeanMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return math.Abs(s.Mean()-sum/float64(len(xs))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAboveThreeSigma(t *testing.T) {
	pop := []float64{10, 10, 10, 10, 11, 9, 10, 10}
	if !AboveThreeSigma(50, pop) {
		t.Error("50 not flagged above 3σ of ~10±0.5")
	}
	if AboveThreeSigma(10.5, pop) {
		t.Error("10.5 flagged above 3σ")
	}
}

func TestTopFraction(t *testing.T) {
	pop := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if !TopFraction(10, pop, 0.10) {
		t.Error("10 not in top 10% of 1..10")
	}
	if TopFraction(9, pop, 0.10) {
		t.Error("9 in top 10% of 1..10")
	}
	if !TopFraction(9, pop, 0.20) {
		t.Error("9 not in top 20% of 1..10")
	}
	if TopFraction(1, nil, 0.10) {
		t.Error("empty population matched")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestUnevennessRatio(t *testing.T) {
	if got := UnevennessRatio([]float64{7.1, 35.3}); math.Abs(got-35.3/7.1) > 1e-9 {
		t.Errorf("UnevennessRatio = %v", got)
	}
	if !math.IsInf(UnevennessRatio([]float64{0, 5}), 1) {
		t.Error("zero min did not give +Inf")
	}
	if UnevennessRatio(nil) != 0 {
		t.Error("empty ratio not 0")
	}
	if UnevennessRatio([]float64{0, 0}) != 0 {
		t.Error("all-zero ratio not 0")
	}
}

func TestTimeSeriesBucketed(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(time.Second, 3)
	ts.Add(3*time.Second, 10)
	got := ts.Bucketed(2 * time.Second)
	if len(got) != 2 {
		t.Fatalf("buckets = %v", got)
	}
	if got[0].V != 2 || got[0].T != 0 {
		t.Errorf("bucket 0 = %+v, want mean 2 at 0", got[0])
	}
	if got[1].V != 10 || got[1].T != 2*time.Second {
		t.Errorf("bucket 1 = %+v", got[1])
	}
}

func TestTimeSeriesEmptyBucketed(t *testing.T) {
	var ts TimeSeries
	if got := ts.Bucketed(time.Second); got != nil {
		t.Errorf("empty Bucketed = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	for i := 0; i < 10; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				c.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 10; i++ {
		<-done
	}
	if c.Total() != 1000 {
		t.Errorf("Total = %d, want 1000", c.Total())
	}
}
