// Package stats provides the small statistical toolkit Sorrento relies on:
// exponentially weighted moving averages for load monitoring (paper §3.7.1),
// mean/standard-deviation summaries for the ±3σ migration trigger, and
// histogram / time-series recorders used by the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	mu    sync.Mutex
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0,1]; larger
// alpha weighs recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds a sample into the average. The first sample initializes it.
func (e *EWMA) Add(sample float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.value = sample
		e.init = true
		return
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
}

// Value returns the current average (zero before any sample).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Summary accumulates count/mean/variance online (Welford's algorithm).
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (zero when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (zero when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (zero when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation (zero for n < 2).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Summarize builds a Summary over a slice.
func Summarize(xs []float64) Summary {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// AboveThreeSigma reports whether x exceeds mean+3σ of the population —
// the paper's "significant imbalance" test for triggering migration.
func AboveThreeSigma(x float64, pop []float64) bool {
	s := Summarize(pop)
	return x > s.Mean()+3*s.StdDev()
}

// TopFraction reports whether x ranks within the top frac (e.g. 0.10) of the
// population. Ties count as within the top.
func TopFraction(x float64, pop []float64, frac float64) bool {
	if len(pop) == 0 {
		return false
	}
	sorted := append([]float64(nil), pop...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := int(math.Ceil(frac * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	return x >= sorted[k-1]
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; it returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// UnevennessRatio returns max/min of the samples — the paper's measure of
// storage-usage imbalance in Figure 14. It returns +Inf when min is zero and
// there is a positive max, and 0 for an empty slice.
func UnevennessRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := Summarize(xs)
	if s.Min() == 0 {
		if s.Max() == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.Max() / s.Min()
}

// Point is one sample in a time series.
type Point struct {
	T time.Duration // modeled time since experiment start
	V float64
}

// TimeSeries is a concurrency-safe append-only series used for the
// time-varying figures (13 and 15).
type TimeSeries struct {
	mu     sync.Mutex
	points []Point
}

// Add appends a sample.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Points returns a copy of the samples in insertion order.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]Point(nil), ts.points...)
}

// Bucketed aggregates the series into fixed-width buckets, returning the
// mean of each non-empty bucket keyed by bucket start time. Figures 13/15
// report 3s and 30s bucket means respectively.
func (ts *TimeSeries) Bucketed(width time.Duration) []Point {
	pts := ts.Points()
	if width <= 0 || len(pts) == 0 {
		return nil
	}
	sums := make(map[int64]*Summary)
	for _, p := range pts {
		b := int64(p.T / width)
		s, ok := sums[b]
		if !ok {
			s = &Summary{}
			sums[b] = s
		}
		s.Add(p.V)
	}
	keys := make([]int64, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		out = append(out, Point{T: time.Duration(k) * width, V: sums[k].Mean()})
	}
	return out
}

// Counter is a concurrency-safe monotonically increasing byte/op counter
// with timestamped sampling support.
type Counter struct {
	mu    sync.Mutex
	total int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	c.mu.Lock()
	c.total += n
	c.mu.Unlock()
}

// Total returns the current value.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
