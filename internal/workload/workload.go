// Package workload generates the application workloads of the paper's
// evaluation as replayable traces: the small-file and bulk microbenchmarks
// (§4.1–4.2.1), the NAS BTIO block-tridiagonal I/O pattern and the parallel
// Protein Sequence Matching service (§4.2.2, §4.5), and the Ask Jeeves web
// crawler (§4.4). The real traces are proprietary or need hardware we do
// not have; these generators synthesize the properties the experiments
// depend on (request mix, sizes, skew, timing), as documented in DESIGN.md.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// SmallFileSessions generates `count` create/write/close sessions — the
// unit of Figure 10's throughput metric. Paths are prefixed so concurrent
// replayers stay disjoint.
func SmallFileSessions(prefix string, count int, writeSize int64) *trace.Trace {
	t := &trace.Trace{}
	if prefix != "" && prefix != "/" {
		t.Append(trace.Record{Kind: trace.OpMkdir, Path: prefix})
	}
	for i := 0; i < count; i++ {
		path := fmt.Sprintf("%s/f%06d", prefix, i)
		t.Append(trace.Record{Kind: trace.OpCreate, Path: path})
		t.Append(trace.Record{Kind: trace.OpWrite, Path: path, Off: 0, N: writeSize})
		t.Append(trace.Record{Kind: trace.OpClose, Path: path})
	}
	return t
}

// SmallFileWrites opens each existing file, writes writeSize bytes, and
// closes it (Figure 9's write benchmark).
func SmallFileWrites(prefix string, count int, writeSize int64) *trace.Trace {
	t := &trace.Trace{}
	for i := 0; i < count; i++ {
		path := fmt.Sprintf("%s/f%06d", prefix, i)
		t.Append(trace.Record{Kind: trace.OpOpenWrite, Path: path})
		t.Append(trace.Record{Kind: trace.OpWrite, Path: path, Off: 0, N: writeSize})
		t.Append(trace.Record{Kind: trace.OpClose, Path: path})
	}
	return t
}

// SmallFileReads opens each file, reads readSize bytes, closes (Figure 9's
// read benchmark).
func SmallFileReads(prefix string, count int, readSize int64) *trace.Trace {
	t := &trace.Trace{}
	for i := 0; i < count; i++ {
		path := fmt.Sprintf("%s/f%06d", prefix, i)
		t.Append(trace.Record{Kind: trace.OpOpen, Path: path})
		t.Append(trace.Record{Kind: trace.OpRead, Path: path, Off: 0, N: readSize})
		t.Append(trace.Record{Kind: trace.OpClose, Path: path})
	}
	return t
}

// SmallFileUnlinks removes the files (Figure 9's unlink benchmark).
func SmallFileUnlinks(prefix string, count int) *trace.Trace {
	t := &trace.Trace{}
	for i := 0; i < count; i++ {
		t.Append(trace.Record{Kind: trace.OpRemove, Path: fmt.Sprintf("%s/f%06d", prefix, i)})
	}
	return t
}

// BulkParams describe the large-file microbenchmark (§4.2.1): repeated
// reqSize requests at random aligned offsets within a disjoint set of
// fileSize files.
type BulkParams struct {
	Files    []string
	FileSize int64
	ReqSize  int64
	Requests int
	Align    int64
	Write    bool
	Seed     int64
}

// Bulk generates the bulkread/bulkwrite trace for one client.
func Bulk(p BulkParams) *trace.Trace {
	if p.Align <= 0 {
		p.Align = 4096
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &trace.Trace{}
	kind := trace.OpOpen
	if p.Write {
		kind = trace.OpOpenWrite
	}
	for _, f := range p.Files {
		t.Append(trace.Record{Kind: kind, Path: f})
	}
	slots := (p.FileSize - p.ReqSize) / p.Align
	if slots < 1 {
		slots = 1
	}
	op := trace.OpRead
	if p.Write {
		op = trace.OpWrite
	}
	for i := 0; i < p.Requests; i++ {
		f := p.Files[rng.Intn(len(p.Files))]
		off := rng.Int63n(slots) * p.Align
		t.Append(trace.Record{Kind: op, Path: f, Off: off, N: p.ReqSize})
	}
	for _, f := range p.Files {
		t.Append(trace.Record{Kind: trace.OpClose, Path: f})
	}
	return t
}

// BTIOParams describe the NAS BTIO emulation (§4.2.2): P processes
// cooperatively write a shared solution file in interleaved block-strided
// chunks over repeated timesteps (MPI-IO list-writes, emulated through
// byte-range writes with versioning disabled), then read it back.
type BTIOParams struct {
	Path      string
	Processes int
	Rank      int
	// BlockSize is one process's contiguous chunk per stride.
	BlockSize int64
	// BlocksPerStep is how many strided chunks each process writes per
	// solution dump.
	BlocksPerStep int
	// Steps is the number of solution dumps (class B writes 40).
	Steps int
	// ReadFraction of the written data is read back at the end (class B
	// reads 1.7 GB of the 2.7 GB written ≈ 0.63).
	ReadFraction float64
}

// TotalSize returns the shared file size implied by the parameters.
func (p BTIOParams) TotalSize() int64 {
	return int64(p.Processes) * p.BlockSize * int64(p.BlocksPerStep) * int64(p.Steps)
}

// BTIO generates rank's trace.
func BTIO(p BTIOParams) *trace.Trace {
	t := &trace.Trace{}
	t.Append(trace.Record{Kind: trace.OpOpenWrite, Path: p.Path})
	stride := p.BlockSize * int64(p.Processes)
	stepBytes := stride * int64(p.BlocksPerStep)
	for step := 0; step < p.Steps; step++ {
		base := int64(step) * stepBytes
		for b := 0; b < p.BlocksPerStep; b++ {
			off := base + int64(b)*stride + int64(p.Rank)*p.BlockSize
			t.Append(trace.Record{Kind: trace.OpWrite, Path: p.Path, Off: off, N: p.BlockSize})
		}
	}
	// Read-back phase: each rank re-reads a prefix of its own blocks.
	readSteps := int(float64(p.Steps) * p.ReadFraction)
	for step := 0; step < readSteps; step++ {
		base := int64(step) * stepBytes
		for b := 0; b < p.BlocksPerStep; b++ {
			off := base + int64(b)*stride + int64(p.Rank)*p.BlockSize
			t.Append(trace.Record{Kind: trace.OpRead, Path: p.Path, Off: off, N: p.BlockSize})
		}
	}
	t.Append(trace.Record{Kind: trace.OpClose, Path: p.Path})
	return t
}

// PSMParams describe one Protein Sequence Matching service process (§4.2.2,
// §4.5): it owns three partitions and serves queries, each scanning a few
// MB from its partitions before handing results to the aggregator.
type PSMParams struct {
	// Partitions are the paths of this process's statically assigned
	// partitions (three in the paper).
	Partitions []string
	// PartitionSize is each partition's size.
	PartitionSize int64
	// Queries is how many queries to serve.
	Queries int
	// ScanBytes is the total bytes one query reads across the partitions.
	ScanBytes int64
	// ReadSize is the sequential read granularity.
	ReadSize int64
	// Think is the recorded gap between queries (zero for Figure 12's
	// as-fast-as-possible replay; positive for Figure 15's paced service).
	Think time.Duration
	Seed  int64
}

// PSM generates one service process's trace with query boundary marks.
func PSM(p PSMParams) *trace.Trace {
	if p.ReadSize <= 0 {
		p.ReadSize = 256 << 10
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &trace.Trace{}
	for _, part := range p.Partitions {
		t.Append(trace.Record{Kind: trace.OpOpen, Path: part})
	}
	perPart := p.ScanBytes / int64(len(p.Partitions))
	for q := 0; q < p.Queries; q++ {
		t.Append(trace.Record{Kind: trace.OpQueryStart})
		for _, part := range p.Partitions {
			span := p.PartitionSize - perPart
			if span < 1 {
				span = 1
			}
			start := rng.Int63n(span)
			for done := int64(0); done < perPart; done += p.ReadSize {
				n := p.ReadSize
				if done+n > perPart {
					n = perPart - done
				}
				t.Append(trace.Record{Kind: trace.OpRead, Path: part, Off: start + done, N: n})
			}
		}
		t.Append(trace.Record{Kind: trace.OpQueryEnd})
		if p.Think > 0 {
			t.Append(trace.Record{Kind: trace.OpThink, Dur: p.Think})
		}
	}
	for _, part := range p.Partitions {
		t.Append(trace.Record{Kind: trace.OpClose, Path: part})
	}
	return t
}

// CrawlerParams describe one crawler of the Ask Jeeves workload (§4.4):
// it crawls a confined set of domains, storing each domain's pages in one
// append-only file. Domain sizes are heavy-tailed (hundreds to millions of
// pages) and crawler speeds differ by more than 10×.
type CrawlerParams struct {
	// Index identifies the crawler (seeds its randomness and paths).
	Index int
	// Domains is how many domains this crawler owns.
	Domains int
	// PageSize is one stored page.
	PageSize int64
	// MeanPages is the mean pages per domain; sizes follow a Pareto-like
	// distribution capped at MaxPages.
	MeanPages float64
	MaxPages  int64
	// PagesPerSecond is this crawler's fetch rate (the >10× discrepancy is
	// injected by the caller).
	PagesPerSecond float64
	// Duration bounds the crawl.
	Duration time.Duration
	Seed     int64
}

// Crawler generates one crawler's trace: think-paced appends into its
// domain files, heavy-tailed in size.
func Crawler(p CrawlerParams) *trace.Trace {
	rng := rand.New(rand.NewSource(p.Seed))
	t := &trace.Trace{}
	type domain struct {
		path   string
		pages  int64
		stored int64
	}
	t.Append(trace.Record{Kind: trace.OpMkdir, Path: "/crawl"})
	domains := make([]*domain, p.Domains)
	for i := range domains {
		pages := paretoPages(rng, p.MeanPages, p.MaxPages)
		domains[i] = &domain{
			path:  fmt.Sprintf("/crawl/c%02d-d%03d", p.Index, i),
			pages: pages,
		}
		t.Append(trace.Record{Kind: trace.OpCreate, Path: domains[i].path})
	}
	think := time.Duration(float64(time.Second) / p.PagesPerSecond)
	elapsed := time.Duration(0)
	closed := make(map[string]bool, len(domains))
	for elapsed < p.Duration {
		// Pick the next unfinished domain (crawlers work domain by domain
		// but interleave when pages remain).
		var d *domain
		for _, cand := range domains {
			if cand.stored < cand.pages {
				d = cand
				break
			}
		}
		if d == nil {
			break
		}
		t.Append(trace.Record{Kind: trace.OpThink, Dur: think})
		t.Append(trace.Record{Kind: trace.OpWrite, Path: d.path, Off: d.stored * p.PageSize, N: p.PageSize})
		d.stored++
		if d.stored >= d.pages {
			// The domain is fully crawled: close (and commit) it now so
			// its write session does not sit idle for hours.
			t.Append(trace.Record{Kind: trace.OpClose, Path: d.path})
			closed[d.path] = true
		}
		elapsed += think
	}
	for _, d := range domains {
		if !closed[d.path] {
			t.Append(trace.Record{Kind: trace.OpClose, Path: d.path})
		}
	}
	return t
}

// paretoPages draws a heavy-tailed page count with the given mean, capped.
func paretoPages(rng *rand.Rand, mean float64, max int64) int64 {
	// Pareto with shape α=1.3 (heavy tail, finite mean): mean = x_m·α/(α−1)
	// → x_m = mean·(α−1)/α.
	const alpha = 1.3
	xm := mean * (alpha - 1) / alpha
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	v := int64(xm / math.Pow(u, 1/alpha))
	if v < 1 {
		v = 1
	}
	if max > 0 && v > max {
		v = max
	}
	return v
}
