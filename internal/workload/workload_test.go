package workload

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func countKinds(t *trace.Trace) map[trace.OpKind]int {
	out := map[trace.OpKind]int{}
	for _, r := range t.Records {
		out[r.Kind]++
	}
	return out
}

func TestSmallFileSessions(t *testing.T) {
	tr := SmallFileSessions("/s", 10, 12<<10)
	k := countKinds(tr)
	if k[trace.OpCreate] != 10 || k[trace.OpWrite] != 10 || k[trace.OpClose] != 10 {
		t.Errorf("kinds = %v", k)
	}
	for _, r := range tr.Records {
		if r.Kind == trace.OpWrite && r.N != 12<<10 {
			t.Errorf("write size %d", r.N)
		}
	}
}

func TestSmallFileLifecycleTracesAgree(t *testing.T) {
	// The write/read/unlink traces must reference the files the create
	// trace made.
	c := SmallFileSessions("/s", 5, 100)
	w := SmallFileWrites("/s", 5, 100)
	r := SmallFileReads("/s", 5, 100)
	u := SmallFileUnlinks("/s", 5)
	paths := map[string]bool{}
	for _, rec := range c.Records {
		if rec.Kind == trace.OpCreate {
			paths[rec.Path] = true
		}
	}
	for _, tr := range []*trace.Trace{w, r, u} {
		for _, rec := range tr.Records {
			if rec.Path != "" && !paths[rec.Path] {
				t.Fatalf("trace references unknown path %s", rec.Path)
			}
		}
	}
}

func TestBulkRandomOffsetsAligned(t *testing.T) {
	p := BulkParams{
		Files:    []string{"/a", "/b"},
		FileSize: 1 << 20,
		ReqSize:  64 << 10,
		Requests: 100,
		Align:    4096,
		Seed:     1,
	}
	tr := Bulk(p)
	reads := 0
	for _, r := range tr.Records {
		if r.Kind != trace.OpRead {
			continue
		}
		reads++
		if r.Off%4096 != 0 {
			t.Errorf("unaligned offset %d", r.Off)
		}
		if r.Off+r.N > p.FileSize {
			t.Errorf("request beyond file: off %d", r.Off)
		}
	}
	if reads != 100 {
		t.Errorf("reads = %d", reads)
	}
}

func TestBulkWriteMode(t *testing.T) {
	tr := Bulk(BulkParams{Files: []string{"/a"}, FileSize: 1 << 20, ReqSize: 4096, Requests: 10, Write: true, Seed: 2})
	k := countKinds(tr)
	if k[trace.OpWrite] != 10 || k[trace.OpRead] != 0 || k[trace.OpOpenWrite] != 1 {
		t.Errorf("kinds = %v", k)
	}
}

func TestBTIODisjointRanks(t *testing.T) {
	base := BTIOParams{Path: "/btio", Processes: 4, BlockSize: 4096, BlocksPerStep: 3, Steps: 5, ReadFraction: 0.6}
	covered := map[int64]int{}
	var totalWritten int64
	for rank := 0; rank < 4; rank++ {
		p := base
		p.Rank = rank
		tr := BTIO(p)
		for _, r := range tr.Records {
			if r.Kind == trace.OpWrite {
				covered[r.Off]++
				totalWritten += r.N
			}
		}
	}
	// Ranks write disjoint interleaved blocks covering the file exactly.
	for off, n := range covered {
		if n != 1 {
			t.Errorf("offset %d written %d times", off, n)
		}
	}
	if totalWritten != base.TotalSize() {
		t.Errorf("total written %d, want %d", totalWritten, base.TotalSize())
	}
}

func TestBTIOReadFraction(t *testing.T) {
	p := BTIOParams{Path: "/btio", Processes: 2, BlockSize: 4096, BlocksPerStep: 2, Steps: 10, ReadFraction: 0.6}
	tr := BTIO(p)
	var read, written int64
	for _, r := range tr.Records {
		switch r.Kind {
		case trace.OpRead:
			read += r.N
		case trace.OpWrite:
			written += r.N
		}
	}
	frac := float64(read) / float64(written)
	if frac < 0.55 || frac > 0.65 {
		t.Errorf("read/write fraction = %v", frac)
	}
}

func TestPSMQueriesBounded(t *testing.T) {
	p := PSMParams{
		Partitions:    []string{"/p0", "/p1", "/p2"},
		PartitionSize: 10 << 20,
		Queries:       7,
		ScanBytes:     3 << 20,
		ReadSize:      256 << 10,
		Think:         time.Second,
		Seed:          3,
	}
	tr := PSM(p)
	k := countKinds(tr)
	if k[trace.OpQueryStart] != 7 || k[trace.OpQueryEnd] != 7 || k[trace.OpThink] != 7 {
		t.Errorf("kinds = %v", k)
	}
	var perQuery int64
	inQ := false
	for _, r := range tr.Records {
		switch r.Kind {
		case trace.OpQueryStart:
			inQ, perQuery = true, 0
		case trace.OpQueryEnd:
			inQ = false
			if perQuery < 3<<20-3*256<<10 || perQuery > 3<<20 {
				t.Errorf("query scanned %d bytes, want ≈3MB", perQuery)
			}
		case trace.OpRead:
			if !inQ {
				t.Error("read outside query")
			}
			if r.Off+r.N > p.PartitionSize {
				t.Errorf("read beyond partition: %d+%d", r.Off, r.N)
			}
			perQuery += r.N
		}
	}
}

func TestCrawlerAppendsSequentially(t *testing.T) {
	p := CrawlerParams{
		Index: 1, Domains: 5, PageSize: 1024, MeanPages: 50, MaxPages: 500,
		PagesPerSecond: 10, Duration: time.Minute, Seed: 4,
	}
	tr := Crawler(p)
	next := map[string]int64{}
	writes := 0
	for _, r := range tr.Records {
		if r.Kind != trace.OpWrite {
			continue
		}
		writes++
		if r.Off != next[r.Path] {
			t.Fatalf("non-append write at %d, expected %d for %s", r.Off, next[r.Path], r.Path)
		}
		next[r.Path] += r.N
	}
	// 10 pages/s × 60 s = 600 pages max (fewer if domains exhaust).
	if writes == 0 || writes > 600 {
		t.Errorf("writes = %d", writes)
	}
}

func TestCrawlerHeavyTailedSizes(t *testing.T) {
	// Across many domains the max/mean ratio must be large (the skew the
	// load-aware placement experiment depends on).
	p := CrawlerParams{
		Index: 0, Domains: 200, PageSize: 1, MeanPages: 100, MaxPages: 1 << 20,
		PagesPerSecond: 1e9, Duration: 24 * 365 * time.Hour, Seed: 5,
	}
	tr := Crawler(p)
	sizes := map[string]int64{}
	for _, r := range tr.Records {
		if r.Kind == trace.OpWrite {
			sizes[r.Path] += r.N
		}
	}
	var maxSize, total int64
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
		total += s
	}
	mean := float64(total) / float64(len(sizes))
	if float64(maxSize) < 5*mean {
		t.Errorf("max %d vs mean %.0f: tail not heavy", maxSize, mean)
	}
}

func TestParetoPagesBounds(t *testing.T) {
	p := CrawlerParams{
		Index: 0, Domains: 50, PageSize: 1, MeanPages: 10, MaxPages: 100,
		PagesPerSecond: 1e9, Duration: time.Hour, Seed: 6,
	}
	tr := Crawler(p)
	sizes := map[string]int64{}
	for _, r := range tr.Records {
		if r.Kind == trace.OpWrite {
			sizes[r.Path] += r.N
		}
	}
	for d, s := range sizes {
		if s < 1 || s > 100 {
			t.Errorf("domain %s size %d outside [1,100]", d, s)
		}
	}
}
