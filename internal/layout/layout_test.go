package layout

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/wire"
)

func TestSegmentSizePaperFormula(t *testing.T) {
	s := DefaultSizing()
	mb := int64(1 << 20)
	cases := []struct {
		i    int
		want int64
	}{
		{0, 1 * mb}, {7, 1 * mb}, // 8^0
		{8, 8 * mb}, {15, 8 * mb}, // 8^1
		{16, 64 * mb}, {23, 64 * mb}, // 8^2
		{24, 512 * mb}, // 8^3 = 512, at cap
		{100, 512 * mb},
	}
	for _, c := range cases {
		if got := s.SegmentSize(c.i); got != c.want {
			t.Errorf("SegmentSize(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestGroupSegmentSizePaperFormula(t *testing.T) {
	s := DefaultSizing()
	mb := int64(1 << 20)
	// With group size j=4: group g segment size = min{512, 8^⌊4g/8⌋} MB.
	cases := []struct {
		g    int
		want int64
	}{
		{0, 1 * mb}, {1, 1 * mb}, {2, 8 * mb}, {3, 8 * mb}, {4, 64 * mb}, {6, 512 * mb}, {50, 512 * mb},
	}
	for _, c := range cases {
		if got := s.GroupSegmentSize(c.g, 4); got != c.want {
			t.Errorf("GroupSegmentSize(%d,4) = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestScaledSizingFloor(t *testing.T) {
	s := ScaledSizing(1 << 30)
	if s.Unit < 4096 {
		t.Errorf("scaled unit = %d, want floor 4096", s.Unit)
	}
}

func tinySizing() Sizing {
	// 1 "MB" = 16 bytes, cap 512 units, so segment capacities are
	// 16,16,…(×8),128,… — convenient for tests.
	return Sizing{Unit: 16, Max: 512, Base: 8, Period: 8}
}

func TestNewIndexLinearStartsAttached(t *testing.T) {
	idx, err := NewIndex(wire.DefaultAttrs(), tinySizing(), ids.New)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.IsAttached() {
		t.Error("new linear index not attached")
	}
}

func TestNewIndexStripedRequiresSize(t *testing.T) {
	attrs := wire.DefaultAttrs()
	attrs.Mode = wire.Striped
	attrs.StripeCount = 4
	attrs.StripeUnit = 16
	if _, err := NewIndex(attrs, tinySizing(), ids.New); !errors.Is(err, ErrNeedSize) {
		t.Fatalf("err = %v, want ErrNeedSize", err)
	}
	attrs.DeclaredSize = 1000
	idx, err := NewIndex(attrs, tinySizing(), ids.New)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Segs) != 4 {
		t.Fatalf("striped segs = %d", len(idx.Segs))
	}
	if idx.Segs[0].Size != 250 {
		t.Errorf("per-segment size = %d, want 250", idx.Segs[0].Size)
	}
}

func TestNewIndexHybridRequiresStripeParams(t *testing.T) {
	attrs := wire.DefaultAttrs()
	attrs.Mode = wire.Hybrid
	if _, err := NewIndex(attrs, tinySizing(), ids.New); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("err = %v", err)
	}
}

func TestLinearPlanAndMapRoundTrip(t *testing.T) {
	attrs := wire.DefaultAttrs()
	idx, _ := NewIndex(attrs, tinySizing(), ids.New)
	idx.HasAttached, idx.Attached = false, nil // force segment mode
	// Write 100 bytes: capacities 16×8=128, so needs 7 segments.
	pieces, err := idx.Plan(0, 100, ids.New)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Segs) != 7 {
		t.Fatalf("segments = %d, want 7", len(idx.Segs))
	}
	var total int64
	for _, p := range pieces {
		total += p.N
	}
	if total != 100 || idx.Size != 100 {
		t.Fatalf("planned %d bytes, size %d", total, idx.Size)
	}
	// Map the middle range and check piece continuity.
	got, err := idx.Map(20, 50)
	if err != nil {
		t.Fatal(err)
	}
	cursor := int64(20)
	for _, p := range got {
		wantSeg := int(cursor / 16)
		if p.SegIdx != wantSeg || p.Off != cursor%16 {
			t.Fatalf("piece %+v at logical %d", p, cursor)
		}
		cursor += p.N
	}
	if cursor != 70 {
		t.Fatalf("mapped up to %d, want 70", cursor)
	}
}

func TestMapBeyondEOF(t *testing.T) {
	idx, _ := NewIndex(wire.DefaultAttrs(), tinySizing(), ids.New)
	idx.HasAttached, idx.Attached = false, nil
	idx.Plan(0, 10, ids.New)
	if _, err := idx.Map(5, 10); !errors.Is(err, ErrBeyondEOF) {
		t.Fatalf("err = %v", err)
	}
}

func TestStripedMapping(t *testing.T) {
	attrs := wire.FileAttrs{Mode: wire.Striped, StripeCount: 4, StripeUnit: 16, DeclaredSize: 256, ReplDeg: 1}
	idx, err := NewIndex(attrs, tinySizing(), ids.New)
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := idx.Plan(0, 256, ids.New)
	if err != nil {
		t.Fatal(err)
	}
	// 256 bytes over 4 segs, unit 16: each segment gets 4 units of 16 bytes.
	perSeg := make(map[int]int64)
	for _, p := range pieces {
		perSeg[p.SegIdx] += p.N
	}
	for i := 0; i < 4; i++ {
		if perSeg[i] != 64 {
			t.Errorf("segment %d got %d bytes, want 64", i, perSeg[i])
		}
	}
	// Offset 16 must land in segment 1 at offset 0.
	got, _ := idx.Map(16, 8)
	if len(got) != 1 || got[0].SegIdx != 1 || got[0].Off != 0 || got[0].N != 8 {
		t.Errorf("Map(16,8) = %+v", got)
	}
	// Offset 64 wraps to segment 0, row 1 (segment offset 16).
	got, _ = idx.Map(64, 8)
	if len(got) != 1 || got[0].SegIdx != 0 || got[0].Off != 16 {
		t.Errorf("Map(64,8) = %+v", got)
	}
}

func TestStripedCannotGrowBeyondDeclared(t *testing.T) {
	attrs := wire.FileAttrs{Mode: wire.Striped, StripeCount: 2, StripeUnit: 16, DeclaredSize: 64, ReplDeg: 1}
	idx, _ := NewIndex(attrs, tinySizing(), ids.New)
	if _, err := idx.Plan(0, 100, ids.New); !errors.Is(err, ErrBeyondEOF) {
		t.Fatalf("err = %v", err)
	}
}

func TestHybridGrowsByGroups(t *testing.T) {
	attrs := wire.FileAttrs{Mode: wire.Hybrid, StripeCount: 4, StripeUnit: 16, ReplDeg: 1}
	idx, err := NewIndex(attrs, tinySizing(), ids.New)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0: 4 segs × 16 bytes = 64 byte capacity. Writing 100 bytes
	// needs two groups (group 1 also 16-byte segs → total 128).
	if _, err := idx.Plan(0, 100, ids.New); err != nil {
		t.Fatal(err)
	}
	if len(idx.Segs) != 8 {
		t.Fatalf("segments = %d, want 8 (two groups of 4)", len(idx.Segs))
	}
	// Byte 64 begins group 1: segment 4 offset 0.
	got, _ := idx.Map(64, 8)
	if len(got) != 1 || got[0].SegIdx != 4 || got[0].Off != 0 {
		t.Errorf("Map(64,8) = %+v", got)
	}
}

func TestAttachedSpillsOnGrowth(t *testing.T) {
	idx, _ := NewIndex(wire.DefaultAttrs(), DefaultSizing(), ids.New)
	pieces, err := idx.Plan(0, 100, ids.New)
	if err != nil || pieces != nil {
		t.Fatalf("small write should stay attached: %v %v", pieces, err)
	}
	if !idx.IsAttached() {
		t.Fatal("spilled too early")
	}
	pieces, err = idx.Plan(0, MaxAttach+1, ids.New)
	if err != nil {
		t.Fatal(err)
	}
	if idx.IsAttached() || len(pieces) == 0 {
		t.Error("large write did not spill to segments")
	}
}

func TestPlanNegativeRange(t *testing.T) {
	idx, _ := NewIndex(wire.DefaultAttrs(), tinySizing(), ids.New)
	if _, err := idx.Plan(-1, 5, ids.New); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	attrs := wire.FileAttrs{Mode: wire.Hybrid, StripeCount: 2, StripeUnit: 32, ReplDeg: 2}
	idx, _ := NewIndex(attrs, tinySizing(), ids.New)
	idx.Plan(0, 100, ids.New)
	data, err := idx.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != idx.Size || len(got.Segs) != len(idx.Segs) || got.Mode != idx.Mode {
		t.Errorf("round trip: %+v vs %+v", got, idx)
	}
	for i := range idx.Segs {
		if got.Segs[i] != idx.Segs[i] {
			t.Errorf("seg %d: %+v vs %+v", i, got.Segs[i], idx.Segs[i])
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an index")); err == nil {
		t.Error("garbage decoded")
	}
}

// TestMappingCoversRangeExactly property-tests that for any mode and any
// in-bounds range, the returned pieces cover the range exactly once and in
// order, with every piece inside its segment's capacity.
func TestMappingCoversRangeExactly(t *testing.T) {
	modes := []wire.FileAttrs{
		{Mode: wire.Linear, ReplDeg: 1, Alpha: 0.5},
		{Mode: wire.Striped, StripeCount: 3, StripeUnit: 8, DeclaredSize: 2000, ReplDeg: 1},
		{Mode: wire.Hybrid, StripeCount: 3, StripeUnit: 8, ReplDeg: 1},
	}
	for _, attrs := range modes {
		attrs := attrs
		idx, err := NewIndex(attrs, tinySizing(), ids.New)
		if err != nil {
			t.Fatal(err)
		}
		idx.HasAttached, idx.Attached = false, nil
		if _, err := idx.Plan(0, 2000, ids.New); err != nil {
			t.Fatalf("%v: %v", attrs.Mode, err)
		}
		f := func(offRaw, nRaw uint16) bool {
			off := int64(offRaw) % 2000
			n := int64(nRaw) % (2000 - off)
			pieces, err := idx.Map(off, n)
			if err != nil {
				return false
			}
			var total int64
			for _, p := range pieces {
				if p.SegIdx < 0 || p.SegIdx >= len(idx.Segs) || p.N <= 0 || p.Off < 0 {
					return false
				}
				if p.Off+p.N > idx.segCapacity(p.SegIdx) {
					return false
				}
				total += p.N
			}
			return total == n
		}
		cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("mode %v: %v", attrs.Mode, err)
		}
	}
}

// TestLinearWriteReadSimulation plays random writes through Plan against a
// naive flat file and verifies Map-based reads reconstruct the same bytes.
func TestLinearWriteReadSimulation(t *testing.T) {
	idx, _ := NewIndex(wire.DefaultAttrs(), tinySizing(), ids.New)
	idx.HasAttached, idx.Attached = false, nil
	segData := make(map[int][]byte)
	writePiece := func(p Piece, data []byte) {
		buf := segData[p.SegIdx]
		if int64(len(buf)) < p.Off+p.N {
			nb := make([]byte, p.Off+p.N)
			copy(nb, buf)
			buf = nb
		}
		copy(buf[p.Off:p.Off+p.N], data)
		segData[p.SegIdx] = buf
	}
	rng := rand.New(rand.NewSource(42))
	flat := make([]byte, 0, 4096)
	for step := 0; step < 100; step++ {
		off := int64(rng.Intn(1500))
		n := int64(rng.Intn(200) + 1)
		data := make([]byte, n)
		rng.Read(data)
		pieces, err := idx.Plan(off, n, ids.New)
		if err != nil {
			t.Fatal(err)
		}
		cursor := int64(0)
		for _, p := range pieces {
			writePiece(p, data[cursor:cursor+p.N])
			cursor += p.N
		}
		if end := off + n; int64(len(flat)) < end {
			nb := make([]byte, end)
			copy(nb, flat)
			flat = nb
		}
		copy(flat[off:off+n], data)
	}
	// Read everything back.
	pieces, err := idx.Map(0, idx.Size)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, idx.Size)
	for _, p := range pieces {
		buf := segData[p.SegIdx]
		chunk := make([]byte, p.N)
		if int64(len(buf)) > p.Off {
			copy(chunk, buf[p.Off:min64(p.Off+p.N, int64(len(buf)))])
		}
		got = append(got, chunk...)
	}
	if len(got) != len(flat) {
		t.Fatalf("read %d bytes, want %d", len(got), len(flat))
	}
	for i := range got {
		if got[i] != flat[i] {
			t.Fatalf("byte %d differs: %d vs %d", i, got[i], flat[i])
		}
	}
}
