// Package layout implements Sorrento's file data organization (paper §3.2):
// a logical file is a linear byte array split into variable-length data
// segments arranged in Linear, Striped, or Hybrid mode, described by an
// index segment. The package provides the segment sizing formula, the
// byte-range ↔ segment mapping for reads and growth planning for writes,
// index segment encoding, and small-file attachment.
package layout

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/wire"
)

// MaxAttach is the largest file payload attached directly inside the index
// segment (paper: 60 KB, chosen to fit a UDP packet).
const MaxAttach = 60 << 10

// Sizing parameterizes the segment-size formula. The paper's rule for the
// i-th Linear segment (i from 0) is min{512, 8^⌊i/8⌋} MB; benchmarks scale
// Unit and Max down while keeping the same progression.
type Sizing struct {
	Unit   int64 // bytes per "MB" in the formula (paper: 1 MiB)
	Max    int64 // cap in Units (paper: 512)
	Base   int64 // growth base (paper: 8)
	Period int   // segments per growth step (paper: 8)
}

// DefaultSizing is the paper's formula at full scale.
func DefaultSizing() Sizing {
	return Sizing{Unit: 1 << 20, Max: 512, Base: 8, Period: 8}
}

// ScaledSizing divides the byte sizes by factor while keeping the shape of
// the progression; used by benchmarks that scale data 1/64–1/1024.
func ScaledSizing(factor int64) Sizing {
	s := DefaultSizing()
	s.Unit /= factor
	if s.Unit < 4096 {
		s.Unit = 4096
	}
	return s
}

// SegmentSize returns the capacity in bytes of the i-th Linear segment:
// min{Max, Base^⌊i/Period⌋} × Unit.
func (s Sizing) SegmentSize(i int) int64 {
	return s.clampPow(int64(i) / int64(s.Period))
}

// GroupSegmentSize returns the capacity of each segment in the g-th Hybrid
// segment group of j segments: min{Max, Base^⌊g·j/Period⌋} × Unit.
func (s Sizing) GroupSegmentSize(g, j int) int64 {
	return s.clampPow(int64(g) * int64(j) / int64(s.Period))
}

func (s Sizing) clampPow(exp int64) int64 {
	size := int64(1)
	for k := int64(0); k < exp; k++ {
		size *= s.Base
		if size >= s.Max {
			return s.Max * s.Unit
		}
	}
	if size > s.Max {
		size = s.Max
	}
	return size * s.Unit
}

// SegRef names one data segment within an index.
type SegRef struct {
	ID      ids.SegID
	Version uint64
	Size    int64 // bytes currently stored in this segment
}

// Index is the content of an index segment: how the data segments compose
// the logical byte array. It is versioned and committed like any segment.
type Index struct {
	Mode        wire.LayoutMode
	Size        int64 // logical file size
	Segs        []SegRef
	StripeCount int   // Striped/Hybrid
	StripeUnit  int64 // Striped/Hybrid
	Sizing      Sizing
	// HasAttached marks the payload as attached inside the index (gob drops
	// empty slices, so presence needs an explicit flag).
	HasAttached bool
	// Attached holds the whole file payload for small files (≤ MaxAttach);
	// meaningful only when HasAttached is set, in which case Segs is empty.
	Attached []byte
}

// Piece is one contiguous run of a logical byte range within a single data
// segment.
type Piece struct {
	SegIdx int   // index into Index.Segs
	Off    int64 // offset within the segment
	N      int64 // length
}

// Layout errors.
var (
	ErrBeyondEOF   = errors.New("layout: range beyond end of file")
	ErrNeedSize    = errors.New("layout: striped mode requires a declared size")
	ErrBadStripe   = errors.New("layout: stripe parameters must be positive")
	ErrNotAttached = errors.New("layout: file has no attached payload")
)

// NewIndex builds an empty index for the given attributes. Striped mode
// materializes its fixed segment set immediately (sizes must be declared);
// Linear and Hybrid grow on demand.
func NewIndex(attrs wire.FileAttrs, sizing Sizing, newID func() ids.SegID) (*Index, error) {
	idx := &Index{
		Mode:        attrs.Mode,
		StripeCount: attrs.StripeCount,
		StripeUnit:  attrs.StripeUnit,
		Sizing:      sizing,
	}
	switch attrs.Mode {
	case wire.Linear:
		// Small files start attached.
		idx.HasAttached = true
		idx.Attached = []byte{}
	case wire.Striped:
		if attrs.DeclaredSize <= 0 {
			return nil, ErrNeedSize
		}
		if attrs.StripeCount <= 0 || attrs.StripeUnit <= 0 {
			return nil, ErrBadStripe
		}
		per := (attrs.DeclaredSize + int64(attrs.StripeCount) - 1) / int64(attrs.StripeCount)
		for i := 0; i < attrs.StripeCount; i++ {
			idx.Segs = append(idx.Segs, SegRef{ID: newID(), Size: per})
		}
		idx.Size = 0 // logical size grows as data is written
	case wire.Hybrid:
		if attrs.StripeCount <= 0 || attrs.StripeUnit <= 0 {
			return nil, ErrBadStripe
		}
	default:
		return nil, fmt.Errorf("layout: unknown mode %v", attrs.Mode)
	}
	return idx, nil
}

// IsAttached reports whether the file payload lives inside the index.
func (x *Index) IsAttached() bool { return x.HasAttached }

// segCapacity returns the capacity of segment i under the index's mode.
func (x *Index) segCapacity(i int) int64 {
	switch x.Mode {
	case wire.Linear:
		return x.Sizing.SegmentSize(i)
	case wire.Striped:
		return x.Segs[i].Size
	case wire.Hybrid:
		return x.Sizing.GroupSegmentSize(i/x.StripeCount, x.StripeCount)
	}
	return 0
}

// Map resolves the byte range [off, off+n) of a committed (non-attached)
// file into pieces. It fails when the range extends past the file size.
func (x *Index) Map(off, n int64) ([]Piece, error) {
	if off < 0 || n < 0 || off+n > x.Size {
		return nil, ErrBeyondEOF
	}
	if n == 0 {
		return nil, nil
	}
	if x.IsAttached() {
		return nil, ErrNotAttached
	}
	return x.mapRange(off, n), nil
}

// mapRange computes pieces without bounds checks (callers validate).
func (x *Index) mapRange(off, n int64) []Piece {
	var out []Piece
	switch x.Mode {
	case wire.Linear:
		var cum int64
		for i := range x.Segs {
			cap := x.segCapacity(i)
			lo, hi := cum, cum+cap
			if off+n > lo && off < hi {
				a := max64(off, lo)
				b := min64(off+n, hi)
				out = append(out, Piece{SegIdx: i, Off: a - lo, N: b - a})
			}
			cum = hi
			if cum >= off+n {
				break
			}
		}
	case wire.Striped:
		out = stripePieces(off, n, 0, x.StripeCount, x.StripeUnit, 0)
	case wire.Hybrid:
		var cum int64
		for g := 0; ; g++ {
			segSize := x.Sizing.GroupSegmentSize(g, x.StripeCount)
			gcap := segSize * int64(x.StripeCount)
			lo, hi := cum, cum+gcap
			if off+n > lo && off < hi {
				a := max64(off, lo)
				b := min64(off+n, hi)
				out = append(out, stripePieces(a-lo, b-a, g*x.StripeCount, x.StripeCount, x.StripeUnit, 0)...)
			}
			cum = hi
			if cum >= off+n {
				break
			}
		}
	}
	return out
}

// stripePieces maps a byte range within one stripe group onto its segments.
// segBase is the index of the group's first segment in Index.Segs.
func stripePieces(off, n int64, segBase, count int, unit int64, _ int64) []Piece {
	var out []Piece
	rowBytes := unit * int64(count)
	for n > 0 {
		row := off / rowBytes
		within := off % rowBytes
		seg := int(within / unit)
		segOff := row*unit + within%unit
		run := unit - within%unit
		if run > n {
			run = n
		}
		out = append(out, Piece{SegIdx: segBase + seg, Off: segOff, N: run})
		off += run
		n -= run
	}
	return coalescePieces(out)
}

// coalescePieces merges adjacent pieces that continue in the same segment.
func coalescePieces(ps []Piece) []Piece {
	if len(ps) < 2 {
		return ps
	}
	out := ps[:1]
	for _, p := range ps[1:] {
		last := &out[len(out)-1]
		if last.SegIdx == p.SegIdx && last.Off+last.N == p.Off {
			last.N += p.N
		} else {
			out = append(out, p)
		}
	}
	return out
}

// Plan extends the index (if needed) to cover a write of [off, off+n) and
// returns the pieces to write. New segments get IDs from newID and start at
// Version 0 (uncommitted). Plan mutates the index: logical size, per-segment
// sizes, and appended SegRefs; callers re-fetch the index on failure.
// Attached files spill to a data segment once they outgrow MaxAttach.
func (x *Index) Plan(off, n int64, newID func() ids.SegID) ([]Piece, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("layout: negative range")
	}
	end := off + n
	if x.IsAttached() {
		if x.Mode == wire.Linear && end <= MaxAttach {
			// Stays attached; caller writes into Attached directly.
			return nil, nil
		}
		x.HasAttached = false
		x.Attached = nil
	}
	switch x.Mode {
	case wire.Linear:
		for x.linearCapacity() < end {
			x.Segs = append(x.Segs, SegRef{ID: newID()})
		}
	case wire.Striped:
		if end > x.totalStripedCapacity() {
			return nil, ErrBeyondEOF
		}
	case wire.Hybrid:
		for x.hybridCapacity() < end {
			for k := 0; k < x.StripeCount; k++ {
				x.Segs = append(x.Segs, SegRef{ID: newID()})
			}
		}
	}
	if end > x.Size {
		x.Size = end
	}
	pieces := x.mapRange(off, n)
	for _, p := range pieces {
		if e := p.Off + p.N; e > x.Segs[p.SegIdx].Size {
			x.Segs[p.SegIdx].Size = e
		}
	}
	return pieces, nil
}

func (x *Index) linearCapacity() int64 {
	var cum int64
	for i := range x.Segs {
		cum += x.segCapacity(i)
	}
	return cum
}

func (x *Index) totalStripedCapacity() int64 {
	var cum int64
	for i := range x.Segs {
		cum += x.Segs[i].Size
	}
	return cum
}

func (x *Index) hybridCapacity() int64 {
	groups := len(x.Segs) / x.StripeCount
	var cum int64
	for g := 0; g < groups; g++ {
		cum += x.Sizing.GroupSegmentSize(g, x.StripeCount) * int64(x.StripeCount)
	}
	return cum
}

// Encode serializes the index for storage in the index segment.
func (x *Index) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		return nil, fmt.Errorf("layout: encode index: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses an index segment payload.
func Decode(data []byte) (*Index, error) {
	var x Index
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&x); err != nil {
		return nil, fmt.Errorf("layout: decode index: %w", err)
	}
	return &x, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
