package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fsapi"
	"repro/internal/simtime"
)

// Fig10Params configure the sustained small-file throughput experiment
// (§4.1.2): N concurrent clients each repeatedly create a file, write 12 KB
// into it, and close it; the metric is completed sessions per second.
type Fig10Params struct {
	Scale Scale
	// Clients are the concurrency levels swept (paper: 1–16).
	Clients []int
	// SessionsPerClient bounds each client's work at every level.
	SessionsPerClient int
	// WriteSize is the session payload (paper: 12 KB).
	WriteSize int64
	// Systems filters deployments (nil = NFS, PVFS-8, Sorrento-(8,2)).
	Systems []string
}

func (p Fig10Params) withDefaults() Fig10Params {
	if p.Scale.Time <= 0 {
		p.Scale.Time = 0.05
	}
	p.Scale.Data = 1
	if len(p.Clients) == 0 {
		p.Clients = []int{1, 2, 4, 8, 12, 16}
	}
	if p.SessionsPerClient <= 0 {
		p.SessionsPerClient = 40
	}
	if p.WriteSize <= 0 {
		p.WriteSize = 12 << 10
	}
	if p.Systems == nil {
		p.Systems = []string{"nfs", "pvfs-8", "sorrento-(8,2)"}
	}
	return p
}

// Fig10Point is one (clients, sessions/s) sample.
type Fig10Point struct {
	Clients    int
	SessionsPS float64
}

// Fig10Result is the regenerated figure: one curve per system.
type Fig10Result struct {
	Curves map[string][]Fig10Point
	Order  []string
}

// Report prints the curves.
func (r *Fig10Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: small file throughput (sessions/second)\n")
	fmt.Fprintf(w, "%-16s", "system")
	if len(r.Order) > 0 {
		for _, pt := range r.Curves[r.Order[0]] {
			fmt.Fprintf(w, " %6dc", pt.Clients)
		}
	}
	fmt.Fprintln(w)
	for _, sys := range r.Order {
		fmt.Fprintf(w, "%-16s", sys)
		for _, pt := range r.Curves[sys] {
			fmt.Fprintf(w, " %7.1f", pt.SessionsPS)
		}
		fmt.Fprintln(w)
	}
}

// RunFig10 regenerates Figure 10.
func RunFig10(p Fig10Params) (*Fig10Result, error) {
	p = p.withDefaults()
	res := &Fig10Result{Curves: make(map[string][]Fig10Point)}
	for _, sys := range p.Systems {
		res.Order = append(res.Order, sys)
		// One deployment per system; client counts sweep against it with
		// disjoint path prefixes.
		mounts, clock, cleanup, err := buildMounts(sys, p.Scale, maxInt(p.Clients))
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", sys, err)
		}
		for round, n := range p.Clients {
			rate, err := fig10Round(mounts[:n], clock, p, fmt.Sprintf("r%d", round))
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("fig10 %s %dc: %w", sys, n, err)
			}
			res.Curves[sys] = append(res.Curves[sys], Fig10Point{Clients: n, SessionsPS: rate})
		}
		cleanup()
	}
	return res, nil
}

// deployment is one instantiated system with n client mounts.
type deployment struct {
	mounts  []fsapi.System
	clock   *simtime.Clock
	cluster *cluster.Cluster // nil for the baselines
	close   func()
}

// quiesce waits for background replication to drain (no-op for baselines).
func (d *deployment) quiesce(timeout time.Duration) {
	if d.cluster != nil {
		d.cluster.AwaitQuiesce(timeout)
	}
}

// buildDeployment creates n client mounts of the named system.
func buildDeployment(name string, scale Scale, n int) (*deployment, error) {
	switch name {
	case "nfs":
		env, err := NewNFS(scale)
		if err != nil {
			return nil, err
		}
		out := make([]fsapi.System, n)
		for i := range out {
			if out[i], err = env.NewFS(); err != nil {
				return nil, err
			}
		}
		return &deployment{mounts: out, clock: env.Clock(), close: env.Close}, nil
	case "pvfs-4", "pvfs-8":
		iods := 4
		if name == "pvfs-8" {
			iods = 8
		}
		env, err := NewPVFS(scale, iods)
		if err != nil {
			return nil, err
		}
		out := make([]fsapi.System, n)
		for i := range out {
			if out[i], err = env.NewFS(); err != nil {
				return nil, err
			}
		}
		return &deployment{mounts: out, clock: env.Clock(), close: env.Close}, nil
	default:
		var pn, r int
		if _, err := fmt.Sscanf(name, "sorrento-(%d,%d)", &pn, &r); err != nil {
			return nil, fmt.Errorf("bench: unknown system %q", name)
		}
		env, err := NewSorrento(scale, SorrentoOptions{Providers: pn, ReplDeg: r})
		if err != nil {
			return nil, err
		}
		out := make([]fsapi.System, n)
		for i := range out {
			if out[i], err = env.NewFS(defaultAttrs(r)); err != nil {
				return nil, err
			}
		}
		return &deployment{mounts: out, clock: env.Clock(), cluster: env.Cluster, close: env.Close}, nil
	}
}

// buildMounts is the legacy accessor used by single-shot experiments.
func buildMounts(name string, scale Scale, n int) ([]fsapi.System, *simtime.Clock, func(), error) {
	d, err := buildDeployment(name, scale, n)
	if err != nil {
		return nil, nil, nil, err
	}
	return d.mounts, d.clock, d.close, nil
}

func fig10Round(mounts []fsapi.System, clock *simtime.Clock, p Fig10Params, prefix string) (float64, error) {
	payload := make([]byte, p.WriteSize)
	var wg sync.WaitGroup
	errs := make(chan error, len(mounts))
	sw := clock.Start()
	for ci, fs := range mounts {
		wg.Add(1)
		go func(ci int, fs fsapi.System) {
			defer wg.Done()
			for s := 0; s < p.SessionsPerClient; s++ {
				path := fmt.Sprintf("/fig10-%s-c%02d-%04d", prefix, ci, s)
				f, err := fs.Create(path)
				if err != nil {
					errs <- err
					return
				}
				if _, err := f.WriteAt(payload, 0); err != nil {
					errs <- err
					return
				}
				if err := f.Close(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(ci, fs)
	}
	wg.Wait()
	for range mounts {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	elapsed := sw.Elapsed().Seconds()
	return float64(len(mounts)*p.SessionsPerClient) / elapsed, nil
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
