package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/provider"
	"repro/internal/proxy"
	"repro/internal/wire"
)

// ProxyParams configure the gateway-tier open-loop benchmark: a large
// population of simulated client connections issues small reads through a
// handful of stateless proxies while the offered aggregate load sweeps
// from idle to past the proxies' modeled NIC ceiling, recording the
// latency distribution and the harness CPU cost at each point.
//
// The workload is open-loop per connection: each connection draws Poisson
// arrival times independent of request completions. A connection never
// queues more than one request — an arrival that fires while the previous
// request is still outstanding is counted as a drop instead of queued, so
// past saturation the benchmark reports rising latency AND rising drops
// rather than an unbounded client-side queue.
type ProxyParams struct {
	// Scale follows the harness conventions; Data stays 1 (the 1 KiB reads
	// are already small). Time defaults to 8 wall seconds per modeled
	// second: the top of the sweep offers 60k modeled requests/s, each
	// request costs the host tens of µs of real CPU across the full stack
	// (client, fabric, proxy, provider), and slowing the modeled clock is
	// what keeps a small host ahead of the event rate — otherwise the
	// measured knee is the host's scheduler, not the proxies' modeled NIC.
	Scale Scale
	// Proxies is the gateway count the whole load funnels through (≤4 per
	// the scaling story; default 4).
	Proxies int
	// Conns is the simulated client connection population (default 100k).
	// Connections are multiplexed over Edges fabric endpoints — the fabric
	// node stands in for the LB-facing NIC, each logical connection is its
	// own arrival process and latency series.
	Conns int
	// Edges is the number of fabric endpoints carrying the connections.
	Edges int
	// Providers is the backend size; sized so the provider tier is not the
	// bottleneck (default 16, ~4× the proxies' aggregate NIC bandwidth).
	Providers int
	// Rates is the swept aggregate offered load in requests/second.
	Rates []float64
	// ReadSize is bytes per request (default 1 KiB).
	ReadSize int64
	// Files and FileSize shape the preloaded read-only data set.
	Files    int
	FileSize int64
	// Warmup and Window bound each point in modeled time: Warmup lets the
	// arrival processes and the proxies' read caches settle, Window is the
	// measured interval.
	Warmup time.Duration
	Window time.Duration
}

func (p ProxyParams) withDefaults() ProxyParams {
	if p.Scale.Time <= 0 {
		p.Scale.Time = 8.0
	}
	if p.Scale.Data <= 0 {
		p.Scale.Data = 1
	}
	if p.Proxies <= 0 {
		p.Proxies = 4
	}
	if p.Conns <= 0 {
		p.Conns = 100_000
	}
	if p.Edges <= 0 {
		p.Edges = 8
	}
	if p.Providers <= 0 {
		p.Providers = 16
	}
	if len(p.Rates) == 0 {
		// 4 proxies × 12.5 MB/s Fast Ethernet ≈ 51k 1-KiB responses/s;
		// the sweep crosses that ceiling so the latency knee is visible.
		p.Rates = []float64{5_000, 15_000, 30_000, 45_000, 60_000}
	}
	if p.ReadSize <= 0 {
		p.ReadSize = 1024
	}
	if p.Files <= 0 {
		p.Files = 64
	}
	if p.FileSize <= 0 {
		p.FileSize = 1 << 20
	}
	if p.Warmup <= 0 {
		p.Warmup = time.Second
	}
	if p.Window <= 0 {
		p.Window = 4 * time.Second
	}
	return p
}

// ProxyPoint is one offered-load level's measurements.
type ProxyPoint struct {
	OfferedRPS float64 `json:"offered_rps"`
	// AchievedRPS counts requests completed inside the window (success or
	// protocol error) per modeled second.
	AchievedRPS float64 `json:"achieved_rps"`
	ModeledSec  float64 `json:"modeled_sec"`
	RunWallSec  float64 `json:"run_wall_sec"`
	// Latency quantiles are modeled milliseconds, measured client-side
	// from arrival to response over the whole thin-protocol round trip.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Drops are arrivals that fired while their connection still had a
	// request outstanding; Errors are completed requests that failed.
	Drops  int `json:"drops"`
	Errors int `json:"errors"`
	// CPUSec is process CPU over the window; CPUPerModeledSec is the
	// harness-cost metric, comparable with the harness sweep.
	CPUSec           float64 `json:"cpu_sec"`
	CPUPerModeledSec float64 `json:"cpu_per_modeled_sec"`
	Error            string  `json:"error,omitempty"`
}

// ProxyResult is the recorded sweep (BENCH_proxy.json).
type ProxyResult struct {
	Conns     int          `json:"conns"`
	Proxies   int          `json:"proxies"`
	Edges     int          `json:"edges"`
	Providers int          `json:"providers"`
	ReadSize  int64        `json:"read_size"`
	TimeScale float64      `json:"time_scale"`
	CPUKnown  bool         `json:"cpu_known"`
	Points    []ProxyPoint `json:"points"`
}

// Report prints the sweep as a table.
func (r *ProxyResult) Report(w io.Writer) {
	fmt.Fprintf(w, "Proxy open-loop: %d connections over %d edges through %d proxies (%d providers, %d B reads)\n",
		r.Conns, r.Edges, r.Proxies, r.Providers, r.ReadSize)
	fmt.Fprintf(w, "%12s %12s %9s %9s %9s %8s %8s %12s\n",
		"offered_rps", "achieved", "p50_ms", "p95_ms", "p99_ms", "drops", "errors", "cpu/model_s")
	for _, pt := range r.Points {
		if pt.Error != "" {
			fmt.Fprintf(w, "%12.0f ERROR %s\n", pt.OfferedRPS, pt.Error)
			continue
		}
		fmt.Fprintf(w, "%12.0f %12.0f %9.2f %9.2f %9.2f %8d %8d %12.3f\n",
			pt.OfferedRPS, pt.AchievedRPS, pt.P50Ms, pt.P95Ms, pt.P99Ms,
			pt.Drops, pt.Errors, pt.CPUPerModeledSec)
	}
	if !r.CPUKnown {
		fmt.Fprintf(w, "(process CPU time unavailable on this platform; cpu columns are zero)\n")
	}
}

// WriteJSON writes the sweep to path (BENCH_proxy.json by convention).
func (r *ProxyResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// proxyEdge is one fabric endpoint multiplexing a share of the connection
// population, with its own latency collector.
type proxyEdge struct {
	tc    *proxy.ThinClient
	mu    sync.Mutex
	lats  []time.Duration
	drops int
	errs  int
	done  int
}

// RunProxy runs the open-loop sweep. The deployment (providers, proxies,
// preloaded files, edge endpoints) is built once and reused across load
// points; each point spawns its own connection goroutines.
func RunProxy(p ProxyParams) (*ProxyResult, error) {
	p = p.withDefaults()
	env, err := NewSorrento(p.Scale, SorrentoOptions{
		Providers: p.Providers,
		ReplDeg:   2,
		// The sweep must saturate the gateway tier's NICs, so the backend
		// is modeled as a modern cache-resident serving fleet: microsecond
		// storage access instead of a 10K-rpm seek per read (which would
		// cap the whole backend at ~1k random reads/s), and a 100 µs
		// per-RPC CPU charge instead of the paper-era 5 ms default (which
		// would cap each provider at 200 RPCs/s).
		DiskModel: disk.Model{SeekTime: 20 * time.Microsecond, TransferRate: 2e9},
		Provider:  provider.Config{OpCost: 100 * time.Microsecond},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	c := env.Cluster
	clock := env.Clock()

	proxyIDs := make([]wire.NodeID, p.Proxies)
	for i := range proxyIDs {
		px, err := c.NewProxy(fmt.Sprintf("gw%d", i), nil)
		if err != nil {
			return nil, err
		}
		if err := px.Client().WaitForProviders(p.Providers, 2*time.Minute); err != nil {
			return nil, err
		}
		proxyIDs[i] = px.ID()
	}

	// Preload the read-only data set through a direct client (setup is not
	// part of the measurement; the direct path is the fast one).
	fs, err := env.NewFS(wire.FileAttrs{ReplDeg: 2, Alpha: 0.5})
	if err != nil {
		return nil, err
	}
	paths := make([]string, p.Files)
	payload := make([]byte, p.Scale.Bytes(p.FileSize))
	for i := range paths {
		paths[i] = fmt.Sprintf("/load-%04d", i)
		f, err := fs.Create(paths[i])
		if err != nil {
			return nil, err
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	// Edge endpoints: each pins its sticky proxy by rotating the proxy
	// list, spreading the population evenly across the gateway tier.
	edges := make([]*proxyEdge, p.Edges)
	for i := range edges {
		rotated := make([]wire.NodeID, len(proxyIDs))
		for j := range proxyIDs {
			rotated[j] = proxyIDs[(i+j)%len(proxyIDs)]
		}
		tc, err := proxy.Dial(clock, c.Fabric, fmt.Sprintf("edge%02d", i), rotated...)
		if err != nil {
			return nil, err
		}
		tc.Attempts = 1 // the bench counts errors; it does not retry them
		tc.Timeout = 10 * time.Second
		defer tc.Close()
		edges[i] = &proxyEdge{tc: tc}
	}

	res := &ProxyResult{
		Conns:     p.Conns,
		Proxies:   p.Proxies,
		Edges:     p.Edges,
		Providers: p.Providers,
		ReadSize:  p.ReadSize,
		TimeScale: p.Scale.Time,
		CPUKnown:  true,
	}
	if _, ok := processCPU(); !ok {
		res.CPUKnown = false
	}
	fileLen := int64(len(payload))
	readSize := p.ReadSize
	if readSize > fileLen {
		readSize = fileLen
	}
	for _, rate := range p.Rates {
		fmt.Fprintf(os.Stderr, "proxy: %d conns at %.0f req/s offered...\n", p.Conns, rate)
		pt := runProxyPoint(p, env, edges, paths, readSize, rate)
		fmt.Fprintf(os.Stderr, "proxy: %.0f req/s done (achieved %.0f, p99 %.2f ms, %d drops)\n",
			rate, pt.AchievedRPS, pt.P99Ms, pt.Drops)
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func runProxyPoint(p ProxyParams, env *SorrentoEnv, edges []*proxyEdge, paths []string, readSize int64, rate float64) *ProxyPoint {
	clock := env.Clock()
	for _, e := range edges {
		e.mu.Lock()
		e.lats = e.lats[:0]
		e.drops, e.errs, e.done = 0, 0, 0
		e.mu.Unlock()
	}

	connRate := rate / float64(p.Conns) // per-connection arrivals/sec
	start := clock.Now()
	measureStart := start + p.Warmup
	measureEnd := measureStart + p.Window
	span := p.Scale.Bytes(p.FileSize) - readSize // random-offset range

	var wg sync.WaitGroup
	for i := 0; i < p.Conns; i++ {
		edge := edges[i%len(edges)]
		wg.Add(1)
		go func(connID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(connID)*2654435761 + 17))
			interval := func() time.Duration {
				return time.Duration(rng.ExpFloat64() / connRate * float64(time.Second))
			}
			// Exponential initial phase: by memorylessness this starts the
			// population in the stationary Poisson regime at exactly
			// connRate from t=0 (a uniform phase would overshoot the
			// offered rate for the first mean interval).
			next := start + interval()
			for {
				// Sleep toward the next arrival, but never past the end of
				// the window: an idle connection whose next arrival falls
				// beyond measureEnd would otherwise park for the tail of
				// its exponential interval (minutes of modeled time at low
				// per-connection rates) before noticing the point is over.
				wake := next
				if wake > measureEnd {
					wake = measureEnd
				}
				now := clock.Now()
				if now < wake {
					clock.Sleep(wake - now)
				}
				if next >= measureEnd || clock.Now() >= measureEnd {
					return
				}
				arrival := next
				path := paths[rng.Intn(len(paths))]
				off := int64(0)
				if span > 0 {
					off = rng.Int63n(span + 1)
				}
				_, _, _, err := edge.tc.Read(path, off, readSize)
				done := clock.Now()
				inWindow := arrival >= measureStart && arrival < measureEnd
				if inWindow {
					edge.mu.Lock()
					edge.done++
					if err != nil {
						edge.errs++
					} else {
						edge.lats = append(edge.lats, done-arrival)
					}
					edge.mu.Unlock()
				}
				// Arrivals missed while the request was in flight are
				// drops: open-loop offered load, no client-side queue.
				next += interval()
				for next <= done {
					if next >= measureStart && next < measureEnd {
						edge.mu.Lock()
						edge.drops++
						edge.mu.Unlock()
					}
					next += interval()
				}
			}
		}(i)
	}

	// Measured window: connections classify work by arrival time against
	// [measureStart, measureEnd), so the rate denominator is exactly the
	// window length; CPU is sampled at the window edges (wakeups can lag
	// the modeled instants slightly, which roughly cancels out).
	if now := clock.Now(); now < measureStart {
		clock.Sleep(measureStart - now)
	}
	cpu0, cpuOK := processCPU()
	runStart := time.Now()
	if now := clock.Now(); now < measureEnd {
		clock.Sleep(measureEnd - now)
	}
	cpu1, _ := processCPU()
	modeled := p.Window
	wg.Wait() // let in-flight tails finish before the next point
	runWall := time.Since(runStart)

	var lats []time.Duration
	pt := &ProxyPoint{OfferedRPS: rate, ModeledSec: modeled.Seconds(), RunWallSec: runWall.Seconds()}
	for _, e := range edges {
		e.mu.Lock()
		lats = append(lats, e.lats...)
		pt.Drops += e.drops
		pt.Errors += e.errs
		pt.AchievedRPS += float64(e.done)
		e.mu.Unlock()
	}
	pt.AchievedRPS /= modeled.Seconds()
	if cpuOK {
		pt.CPUSec = cpu1 - cpu0
		pt.CPUPerModeledSec = pt.CPUSec / modeled.Seconds()
	}
	if len(lats) == 0 {
		pt.Error = "no requests completed in the window"
		return pt
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(f float64) float64 {
		idx := int(f * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	pt.P50Ms, pt.P95Ms, pt.P99Ms = q(0.50), q(0.95), q(0.99)
	return pt
}
