// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Figures 9–15). Each figure has a Params
// type carrying the paper's settings, a Run function, and a Result that
// prints the same rows/series the paper reports. EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// # Scaling
//
// Experiments run under a coupled (time, data) scale. Time compression is
// simtime's wall-per-modeled factor. Data scaling divides every byte
// quantity by K — file sizes, request sizes, segment sizing — AND divides
// every bandwidth by K (NIC, disk transfer rate, per-byte CPU costs ×K), so
// all modeled durations and rates×K match the paper's full-size run while
// the real bytes moved (and the memcpy/GC noise they cause) shrink by K.
// Reported MB/s are re-multiplied by K and therefore directly comparable
// with the paper's numbers.
package bench

import (
	"fmt"
	"time"

	"repro/internal/baseline/nfssim"
	"repro/internal/baseline/pvfssim"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fsapi"
	"repro/internal/layout"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Scale couples time compression and data scaling.
type Scale struct {
	// Time is the simtime compression (wall seconds per modeled second).
	Time float64
	// Data divides every byte quantity and bandwidth by this factor.
	Data int64
}

// DefaultScale suits most experiments: 200× time compression, 512× data
// reduction.
func DefaultScale() Scale { return Scale{Time: 0.005, Data: 512} }

func (s Scale) withDefaults() Scale {
	if s.Time <= 0 {
		s.Time = DefaultScale().Time
	}
	if s.Data <= 0 {
		s.Data = DefaultScale().Data
	}
	return s
}

// Bytes scales a paper-sized byte quantity down (at least 1).
func (s Scale) Bytes(paper int64) int64 {
	v := paper / s.Data
	if v < 1 {
		v = 1
	}
	return v
}

// Rate converts a measured modeled MB/s back to paper-comparable MB/s.
func (s Scale) Rate(modeledMBs float64) float64 { return modeledMBs * float64(s.Data) }

// NetConfig returns the Fast Ethernet fabric with scaled bandwidth.
func (s Scale) NetConfig() simnet.Config {
	cfg := simnet.FastEthernet()
	cfg.Bandwidth /= float64(s.Data)
	return cfg
}

// DiskModel returns the SCSI drive with scaled transfer rate.
func (s Scale) DiskModel() disk.Model {
	m := disk.SCSI10K()
	m.TransferRate /= float64(s.Data)
	m.SequentialThreshold = s.Bytes(m.SequentialThreshold)
	return m
}

// Sizing returns the segment sizing formula scaled to the data factor.
func (s Scale) Sizing() layout.Sizing { return layout.ScaledSizing(s.Data) }

// Obs, when non-nil, instruments every Sorrento deployment the harness
// builds (unless the experiment passes its own SorrentoOptions.Obs).
// cmd/sorrento-bench points it at a fresh registry per experiment so each
// run's metrics snapshot lands next to the figure output.
var Obs *obs.Obs

// MaxParallelIO, when positive, overrides core.Config.MaxParallelIO for
// every client the harness attaches (cmd/sorrento-bench -maxparallel).
var MaxParallelIO int

// SorrentoEnv is a Sorrento deployment ready for an experiment.
type SorrentoEnv struct {
	Scale   Scale
	Cluster *cluster.Cluster
	// ReplDeg applies to files created through NewFS.
	ReplDeg int
	nclient int
}

// SorrentoOptions tune the deployment beyond the defaults.
type SorrentoOptions struct {
	Providers    int
	ReplDeg      int
	DiskCapacity int64 // paper-sized; scaled internally
	Provider     provider.Config
	Heartbeat    time.Duration
	// DiskModel overrides the scaled drive model (zero = derived from the
	// scale). The proxy benchmark uses it to model a cache-resident read
	// working set so provider seeks don't mask the gateway tier.
	DiskModel disk.Model
	// Sizing overrides the scaled segment sizing formula (zero = derived
	// from the scale). Experiments sensitive to the segment-to-file ratio
	// set it so that ratio matches the paper despite the scaled sizes.
	Sizing layout.Sizing
	// Obs instruments the deployment (nil = the package-level Obs).
	Obs *obs.Obs
}

// NewSorrento builds Sorrento-(n, r) under the given scale.
func NewSorrento(scale Scale, opts SorrentoOptions) (*SorrentoEnv, error) {
	scale = scale.withDefaults()
	if opts.Providers <= 0 {
		opts.Providers = 8
	}
	if opts.ReplDeg <= 0 {
		opts.ReplDeg = 1
	}
	if opts.DiskCapacity <= 0 {
		opts.DiskCapacity = 512 << 30
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = membership.DefaultConfig().HeartbeatInterval
	}
	sizing := opts.Sizing
	if sizing.Unit == 0 {
		sizing = scale.Sizing()
	}
	if opts.Obs == nil {
		opts.Obs = Obs
	}
	if opts.DiskModel.TransferRate == 0 {
		opts.DiskModel = scale.DiskModel()
	}
	c, err := cluster.New(cluster.Options{
		Providers:    opts.Providers,
		Scale:        scale.Time,
		Net:          scale.NetConfig(),
		DiskModel:    opts.DiskModel,
		DiskCapacity: scale.Bytes(opts.DiskCapacity),
		Provider:     opts.Provider,
		Sizing:       sizing,
		Heartbeat:    opts.Heartbeat,
		Obs:          opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	// Floor the stability timeout at a few wall seconds: at extreme time
	// compression a "5 modeled minutes" window is only milliseconds of wall
	// time, not enough for the heartbeat goroutines to converge.
	stabilize := 5 * time.Minute
	if floor := c.Clock.Modeled(3 * time.Second); floor > stabilize {
		stabilize = floor
	}
	if err := c.AwaitStable(opts.Providers, stabilize); err != nil {
		c.Stop()
		return nil, err
	}
	return &SorrentoEnv{Scale: scale, Cluster: c, ReplDeg: opts.ReplDeg}, nil
}

// Clock returns the environment's clock.
func (e *SorrentoEnv) Clock() *simtime.Clock { return e.Cluster.Clock }

// NewFS attaches a fresh client mount with the environment's replication
// degree and default attributes.
func (e *SorrentoEnv) NewFS(attrs wire.FileAttrs) (fsapi.System, error) {
	e.nclient++
	name := fmt.Sprintf("bc%03d", e.nclient)
	cl, err := e.Cluster.NewClientCfg(name, clientOverrides)
	if err != nil {
		return nil, err
	}
	if err := cl.WaitForProviders(1, 2*time.Minute); err != nil {
		return nil, err
	}
	if attrs.ReplDeg <= 0 {
		attrs.ReplDeg = e.ReplDeg
	}
	if attrs.Alpha == 0 {
		attrs.Alpha = 0.5
	}
	label := fmt.Sprintf("sorrento-(%d,%d)", len(e.Cluster.Providers()), attrs.ReplDeg)
	return core.NewFS(cl, attrs, label), nil
}

// NewFSAt attaches a client co-located with a provider.
func (e *SorrentoEnv) NewFSAt(host wire.NodeID, attrs wire.FileAttrs) (fsapi.System, *core.Client, error) {
	e.nclient++
	name := fmt.Sprintf("bc%03d", e.nclient)
	cl, err := e.Cluster.NewClientAtCfg(name, host, clientOverrides)
	if err != nil {
		return nil, nil, err
	}
	if err := cl.WaitForProviders(1, 2*time.Minute); err != nil {
		return nil, nil, err
	}
	if attrs.ReplDeg <= 0 {
		attrs.ReplDeg = e.ReplDeg
	}
	label := fmt.Sprintf("sorrento-(%d,%d)", len(e.Cluster.Providers()), attrs.ReplDeg)
	return core.NewFS(cl, attrs, label), cl, nil
}

// clientOverrides applies the package-level client knobs.
func clientOverrides(cfg *core.Config) {
	if MaxParallelIO > 0 {
		cfg.MaxParallelIO = MaxParallelIO
	}
}

// Close stops the deployment.
func (e *SorrentoEnv) Close() { e.Cluster.Stop() }

// defaultAttrs returns Sorrento file attributes with the given replication
// degree and the system-wide α default.
func defaultAttrs(replDeg int) wire.FileAttrs {
	a := wire.DefaultAttrs()
	a.ReplDeg = replDeg
	return a
}

// NFSEnv is the NFS baseline deployment.
type NFSEnv struct {
	Scale   Scale
	clock   *simtime.Clock
	fabric  *simnet.Fabric
	Server  *nfssim.Server
	nclient int
}

// NewNFS builds the NFS baseline under the given scale.
func NewNFS(scale Scale) (*NFSEnv, error) {
	scale = scale.withDefaults()
	clock := simtime.NewClock(scale.Time)
	fabric := simnet.New(clock, scale.NetConfig())
	cfg := nfssim.DefaultConfig()
	cfg.ByteCost = time.Duration(int64(cfg.ByteCost) * scale.Data)
	cfg.CacheBytes = scale.Bytes(cfg.CacheBytes)
	d := disk.New(clock, "nfs", scale.DiskModel(), scale.Bytes(2<<40))
	srv, err := nfssim.NewServer(clock, cfg, fabric, d)
	if err != nil {
		return nil, err
	}
	return &NFSEnv{Scale: scale, clock: clock, fabric: fabric, Server: srv}, nil
}

// Clock returns the environment's clock.
func (e *NFSEnv) Clock() *simtime.Clock { return e.clock }

// NewFS attaches a fresh client mount.
func (e *NFSEnv) NewFS() (fsapi.System, error) {
	e.nclient++
	return nfssim.NewFS(fmt.Sprintf("nc%03d", e.nclient), e.fabric)
}

// Close is a no-op (the fabric is garbage collected).
func (e *NFSEnv) Close() {}

// PVFSEnv is the PVFS baseline deployment.
type PVFSEnv struct {
	Scale   Scale
	clock   *simtime.Clock
	fabric  *simnet.Fabric
	Dep     *pvfssim.Deployment
	nclient int
}

// NewPVFS builds PVFS-n under the given scale.
func NewPVFS(scale Scale, iods int) (*PVFSEnv, error) {
	scale = scale.withDefaults()
	clock := simtime.NewClock(scale.Time)
	fabric := simnet.New(clock, scale.NetConfig())
	cfg := pvfssim.DefaultConfig()
	cfg.IODs = iods
	cfg.StripeUnit = scale.Bytes(cfg.StripeUnit)
	cfg.DiskModel = scale.DiskModel()
	cfg.DiskCapacity = scale.Bytes(512 << 30)
	dep, err := pvfssim.New(clock, cfg, fabric)
	if err != nil {
		return nil, err
	}
	return &PVFSEnv{Scale: scale, clock: clock, fabric: fabric, Dep: dep}, nil
}

// Clock returns the environment's clock.
func (e *PVFSEnv) Clock() *simtime.Clock { return e.clock }

// NewFS attaches a fresh client mount.
func (e *PVFSEnv) NewFS() (fsapi.System, error) {
	e.nclient++
	return pvfssim.NewFS(fmt.Sprintf("pc%03d", e.nclient), e.fabric, e.Dep)
}

// Close is a no-op.
func (e *PVFSEnv) Close() {}
