//go:build unix

package bench

import "syscall"

// processCPU returns the process's cumulative user+system CPU time in
// seconds. The harness scaling benchmark reports CPU-seconds per modeled
// second rather than wall-per-modeled: simtime's clock is defined as
// wall×scale, so wall time tracks the scale factor by construction and
// only CPU consumption reveals what the harness actually costs.
func processCPU() (float64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime), true
}
