package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Fig11Params configure the large-file microbenchmark (§4.2.1): bulkread /
// bulkwrite of ReqSize chunks at random aligned offsets within a
// pre-populated set of FileSize files, each client touching a disjoint
// subset, sweeping the client count.
type Fig11Params struct {
	Scale Scale
	// Clients are the concurrency levels (paper: up to 16).
	Clients []int
	// Files is the pre-populated file count (paper: 160 for the cluster
	// systems, 30 for NFS).
	Files int
	// FileSize is each file's size at paper scale (512 MB).
	FileSize int64
	// ReqSize is the request size at paper scale (4 MB).
	ReqSize int64
	// BytesPerClient is each client's total transfer at paper scale (256 MB).
	BytesPerClient int64
	// Systems filters deployments. "sorrento-(8,2)+eager" selects
	// synchronous replica propagation.
	Systems []string
}

func (p Fig11Params) withDefaults() Fig11Params {
	p.Scale = p.Scale.withDefaults()
	if len(p.Clients) == 0 {
		p.Clients = []int{1, 2, 4, 8, 16}
	}
	if p.Files <= 0 {
		p.Files = 32
	}
	if p.FileSize <= 0 {
		p.FileSize = 512 << 20
	}
	if p.ReqSize <= 0 {
		p.ReqSize = 4 << 20
	}
	if p.BytesPerClient <= 0 {
		p.BytesPerClient = 256 << 20
	}
	if p.Systems == nil {
		p.Systems = []string{"nfs", "pvfs-8", "sorrento-(8,2)", "sorrento-(8,2)+eager"}
	}
	return p
}

// Fig11Point is one (clients, MB/s) sample at paper scale.
type Fig11Point struct {
	Clients int
	ReadMBs float64
	WrMBs   float64
}

// Fig11Result holds one curve per system.
type Fig11Result struct {
	Curves map[string][]Fig11Point
	Order  []string
}

// Report prints the read and write curves.
func (r *Fig11Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Figure 11: large file read/write rates (MB/s, paper scale)\n")
	for _, metric := range []string{"read", "write"} {
		fmt.Fprintf(w, "[%s]\n%-22s", metric, "system")
		if len(r.Order) > 0 {
			for _, pt := range r.Curves[r.Order[0]] {
				fmt.Fprintf(w, " %6dc", pt.Clients)
			}
		}
		fmt.Fprintln(w)
		for _, sys := range r.Order {
			fmt.Fprintf(w, "%-22s", sys)
			for _, pt := range r.Curves[sys] {
				v := pt.ReadMBs
				if metric == "write" {
					v = pt.WrMBs
				}
				fmt.Fprintf(w, " %7.1f", v)
			}
			fmt.Fprintln(w)
		}
	}
}

// RunFig11 regenerates Figure 11.
func RunFig11(p Fig11Params) (*Fig11Result, error) {
	p = p.withDefaults()
	res := &Fig11Result{Curves: make(map[string][]Fig11Point)}
	for _, sys := range p.Systems {
		res.Order = append(res.Order, sys)
		base, eager := sys, false
		if base == "sorrento-(8,2)+eager" {
			base, eager = "sorrento-(8,2)", true
		}
		nclients := maxInt(p.Clients)
		dep, err := buildDeployment(base, p.Scale, nclients)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", sys, err)
		}
		mounts, clock, cleanup := dep.mounts, dep.clock, dep.close
		files := make([]string, p.Files)
		for i := range files {
			files[i] = fmt.Sprintf("/bulk-%03d", i)
		}
		if err := prepopulate(mounts, files, p.Scale.Bytes(p.FileSize), p.Scale.Bytes(p.ReqSize)); err != nil {
			cleanup()
			return nil, fmt.Errorf("fig11 %s populate: %w", sys, err)
		}
		for _, n := range p.Clients {
			pt := Fig11Point{Clients: n}
			for _, write := range []bool{false, true} {
				// Let background replica propagation from the previous
				// round drain so each measurement sees steady state.
				dep.quiesce(20 * time.Minute)
				rate, err := fig11Round(mounts[:n], clock, files, p, write, eager)
				if err != nil {
					cleanup()
					return nil, fmt.Errorf("fig11 %s %dc: %w", sys, n, err)
				}
				if write {
					pt.WrMBs = p.Scale.Rate(rate)
				} else {
					pt.ReadMBs = p.Scale.Rate(rate)
				}
			}
			res.Curves[sys] = append(res.Curves[sys], pt)
		}
		cleanup()
	}
	return res, nil
}

// prepopulate writes every file once, spreading the work across the mounts.
func prepopulate(mounts []fsapi.System, files []string, fileSize, chunk int64) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(files))
	sem := make(chan struct{}, len(mounts))
	for i, path := range files {
		fs := mounts[i%len(mounts)]
		wg.Add(1)
		sem <- struct{}{}
		go func(fs fsapi.System, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			f, err := fs.Create(path)
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, chunk)
			for off := int64(0); off < fileSize; off += chunk {
				n := chunk
				if off+n > fileSize {
					n = fileSize - off
				}
				if _, err := f.WriteAt(buf[:n], off); err != nil {
					errs <- err
					return
				}
			}
			errs <- f.Close()
		}(fs, path)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fig11Round measures the aggregate transfer rate (modeled MB/s) for n
// clients issuing random-offset requests over disjoint file subsets.
func fig11Round(mounts []fsapi.System, clock *simtime.Clock, files []string, p Fig11Params, write, eager bool) (float64, error) {
	reqSize := p.Scale.Bytes(p.ReqSize)
	fileSize := p.Scale.Bytes(p.FileSize)
	requests := int(p.BytesPerClient / p.ReqSize)
	var total stats.Counter
	var wg sync.WaitGroup
	errs := make(chan error, len(mounts))
	sw := clock.Start()
	for ci, fs := range mounts {
		// Disjoint subsets.
		subset := files[ci*len(files)/len(mounts) : (ci+1)*len(files)/len(mounts)]
		if len(subset) == 0 {
			subset = files[ci%len(files) : ci%len(files)+1]
		}
		wg.Add(1)
		go func(ci int, fs fsapi.System, subset []string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci + 1)))
			buf := make([]byte, reqSize)
			for r := 0; r < requests; r++ {
				path := subset[rng.Intn(len(subset))]
				off := rng.Int63n(maxI64(fileSize-reqSize, 1))
				off -= off % 4096
				if write {
					f, err := fs.OpenWrite(path)
					if err != nil {
						errs <- err
						return
					}
					if _, err := f.WriteAt(buf, off); err != nil {
						errs <- err
						return
					}
					if err := commitFile(f, eager); err != nil {
						errs <- err
						return
					}
					total.Add(reqSize)
				} else {
					f, err := fs.Open(path)
					if err != nil {
						errs <- err
						return
					}
					if n, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
						errs <- err
						return
					} else {
						total.Add(int64(n))
					}
					f.Close()
				}
			}
			errs <- nil
		}(ci, fs, subset)
	}
	wg.Wait()
	for range mounts {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	elapsed := sw.Elapsed().Seconds()
	return float64(total.Total()) / elapsed / 1e6, nil
}

// commitFile publishes a write: Sorrento handles get a real versioned
// commit (eager = synchronous replica propagation); the baselines' Close is
// enough.
func commitFile(f fsapi.File, eager bool) error {
	if sf, ok := f.(*core.File); ok {
		if err := sf.Commit(core.CommitOptions{Sync: eager}); err != nil {
			return err
		}
	}
	return f.Close()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
