package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/layout"
	"repro/internal/provider"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Fig15Params configure the locality-driven placement experiment (§4.5):
// 24 PSM partitions imported onto an 8-node volume with no knowledge of
// which service process will read them; 8 co-located PSM processes then
// serve paced queries against their statically assigned partitions. The
// locality-driven policy must detect the access locality and migrate
// partitions next to their processes, lowering the per-query I/O time
// without any service interruption.
type Fig15Params struct {
	Scale Scale
	// Providers and service processes (paper: 8 each).
	Providers int
	Procs     int
	// Partitions and their size at paper scale (24 × 1–1.5 GB).
	Partitions    int
	PartitionSize int64
	// LocalityThreshold is the traffic share that triggers migration
	// (must exceed 0.5).
	LocalityThreshold float64
	// QueryScan is the data one query reads, at paper scale; QueryThink
	// the pause between queries; RunFor the experiment length.
	QueryScan  int64
	ReadSize   int64
	QueryThink time.Duration
	RunFor     time.Duration
}

func (p Fig15Params) withDefaults() Fig15Params {
	if p.Scale.Time <= 0 {
		p.Scale.Time = 0.002
	}
	if p.Scale.Data <= 0 {
		p.Scale.Data = 1024
	}
	if p.Providers <= 0 {
		p.Providers = 8
	}
	if p.Procs <= 0 {
		p.Procs = 8
	}
	if p.Partitions <= 0 {
		p.Partitions = 24
	}
	if p.PartitionSize <= 0 {
		p.PartitionSize = 1280 << 20
	}
	if p.LocalityThreshold <= 0 {
		p.LocalityThreshold = 0.7
	}
	if p.QueryScan <= 0 {
		p.QueryScan = 3 << 20
	}
	if p.ReadSize <= 0 {
		p.ReadSize = 512 << 10
	}
	if p.QueryThink <= 0 {
		p.QueryThink = 500 * time.Millisecond
	}
	if p.RunFor <= 0 {
		p.RunFor = 25 * time.Minute
	}
	return p
}

// Fig15Result holds the per-query I/O time series.
type Fig15Result struct {
	// Series is the average I/O time per query (ms) in 30-second buckets.
	Series []stats.Point
	// InitialMs and FinalMs are the first/last stable plateau means.
	InitialMs float64
	FinalMs   float64
	// ImprovementPct is the I/O-time reduction after migration completes.
	ImprovementPct float64
	// LocalBefore/LocalAfter count partitions co-located with their
	// process before and after the run, out of TotalParts.
	LocalBefore int
	LocalAfter  int
	TotalParts  int
}

// Report prints the time series and the summary.
func (r *Fig15Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Figure 15: locality-driven data placement and migration\n")
	fmt.Fprintf(w, "time(s)  io-ms/query\n")
	for _, pt := range r.Series {
		fmt.Fprintf(w, "%7.0f  %10.1f\n", pt.T.Seconds(), pt.V)
	}
	fmt.Fprintf(w, "initial %.1f ms/query → final %.1f ms/query (%.0f%% reduction)\n",
		r.InitialMs, r.FinalMs, r.ImprovementPct)
	fmt.Fprintf(w, "partitions local to their process: %d → %d (of %d)\n",
		r.LocalBefore, r.LocalAfter, r.TotalParts)
}

// RunFig15 regenerates Figure 15.
func RunFig15(p Fig15Params) (*Fig15Result, error) {
	p = p.withDefaults()
	pcfg := provider.DefaultConfig()
	pcfg.Migration.Enabled = false // isolate the locality policy
	pcfg.Migration.LocalityEnabled = true
	pcfg.Migration.Interval = time.Minute // paper: decision once per minute
	pcfg.Migration.MinTraffic = 10
	pcfg.RefreshInterval = 5 * time.Minute
	pcfg.GarbageAge = 13 * time.Minute

	// Match the paper's segment-to-partition ratio (1–1.5 GB partitions of
	// ≤512 MB segments → 2–3 segments each): with the default scaled
	// sizing a partition would shatter into ~17 tiny segments and the
	// one-migration-per-minute policy could never co-locate them within the
	// experiment's horizon.
	partReal := p.Scale.Bytes(p.PartitionSize)
	sizing := layout.Sizing{Unit: maxI64(partReal/2, 4096), Max: 4, Base: 2, Period: 4}
	env, err := NewSorrento(p.Scale, SorrentoOptions{
		Providers: p.Providers,
		ReplDeg:   1,
		Provider:  pcfg,
		Heartbeat: 10 * time.Second, // compressed run; membership static
		Sizing:    sizing,
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	clock := env.Clock()

	// Import the partitions with no placement knowledge (uniform random).
	importAttrs := wire.DefaultAttrs()
	importAttrs.Policy = wire.PlaceRandom
	importAttrs.LocalityThreshold = p.LocalityThreshold
	importFS, err := env.NewFS(importAttrs)
	if err != nil {
		return nil, err
	}
	if err := importFS.Mkdir("/psm"); err != nil {
		return nil, err
	}
	parts := make([]string, p.Partitions)
	for i := range parts {
		parts[i] = fmt.Sprintf("/psm/part-%02d", i)
	}
	partSize := partReal
	if err := prepopulate([]fsapi.System{importFS}, parts, partSize, p.Scale.Bytes(4<<20)); err != nil {
		return nil, err
	}

	// Service processes co-located with providers; process i owns
	// partitions [i·k, (i+1)·k).
	perProc := p.Partitions / p.Procs
	queries := int(p.RunFor / (p.QueryThink + 100*time.Millisecond))
	var series stats.TimeSeries
	var wg sync.WaitGroup
	mounts := make([]fsapi.System, p.Procs)
	clients := make([]*coreClientRef, p.Procs)
	for i := 0; i < p.Procs; i++ {
		fs, _, err := env.NewFSAt(cluster.ProviderID(i), importAttrs)
		if err != nil {
			return nil, err
		}
		mounts[i] = fs
		clients[i] = &coreClientRef{host: cluster.ProviderID(i), parts: parts[i*perProc : (i+1)*perProc]}
	}
	localCount := func() int {
		n := 0
		for _, ref := range clients {
			prov := env.Cluster.Provider(ref.host)
			if prov == nil {
				continue
			}
			for _, path := range ref.parts {
				// The locality policy migrates segment by segment, so
				// predominantly-local (>80%) counts as co-located.
				if localSegmentFrac(env, importFS, path, ref.host) > 0.8 {
					n++
				}
			}
		}
		return n
	}
	res := &Fig15Result{LocalBefore: localCount(), TotalParts: p.Partitions}

	origin := clock.Now()
	for i := 0; i < p.Procs; i++ {
		tr := workload.PSM(workload.PSMParams{
			Partitions:    clients[i].parts,
			PartitionSize: partSize,
			Queries:       queries,
			ScanBytes:     p.Scale.Bytes(p.QueryScan),
			ReadSize:      p.Scale.Bytes(p.ReadSize),
			Think:         p.QueryThink,
			Seed:          int64(i + 1),
		})
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			r := trace.NewReplayer(clock, mounts[i])
			r.QuerySeries = &series
			r.Origin = clock.Now() - origin
			r.Run(tr)
		}(i, tr)
	}
	wg.Wait()

	res.LocalAfter = localCount()
	res.Series = series.Bucketed(30 * time.Second)
	if len(res.Series) >= 4 {
		var head, tail stats.Summary
		for _, pt := range res.Series[:2] {
			head.Add(pt.V)
		}
		for _, pt := range res.Series[len(res.Series)-2:] {
			tail.Add(pt.V)
		}
		res.InitialMs = head.Mean()
		res.FinalMs = tail.Mean()
		if res.InitialMs > 0 {
			res.ImprovementPct = (res.InitialMs - res.FinalMs) / res.InitialMs * 100
		}
	}
	return res, nil
}

type coreClientRef struct {
	host  wire.NodeID
	parts []string
}

// localSegmentFrac returns the fraction of the partition's data segments
// with a committed copy on the given host.
func localSegmentFrac(env *SorrentoEnv, anyFS fsapi.System, path string, host wire.NodeID) float64 {
	prov := env.Cluster.Provider(host)
	if prov == nil {
		return 0
	}
	cfs, ok := anyFS.(*core.FS)
	if !ok {
		return 0
	}
	segs, err := cfs.Client().SegmentsOf(path)
	if err != nil || len(segs) == 0 {
		return 0
	}
	local := 0
	for _, seg := range segs {
		if prov.Store().Stat(seg).Present {
			local++
		}
	}
	return float64(local) / float64(len(segs))
}
