package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/segstore"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// The ablations quantify the design choices DESIGN.md calls out beyond the
// paper's own figures: the placement favoritism α, the replication degree's
// cost under lazy propagation, and delta vs whole-segment replica sync.

// AblationResult is one knob's sweep.
type AblationResult struct {
	Name   string
	Rows   []AblationRow
	Metric string
}

// AblationRow is one setting's measurement.
type AblationRow struct {
	Setting string
	Value   float64
}

// Report prints the sweep.
func (r *AblationResult) Report(w io.Writer) {
	fmt.Fprintf(w, "Ablation: %s (%s)\n", r.Name, r.Metric)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-24s %10.2f\n", row.Setting, row.Value)
	}
}

// RunAlphaAblation sweeps the placement favoritism α on the crawler
// workload: α=0 weighs storage space only, α=1 load only (paper §3.7.1).
// Lower final unevenness is better for this space-skewed workload.
func RunAlphaAblation(scale Scale) (*AblationResult, error) {
	scale = scale.withDefaults()
	res := &AblationResult{Name: "placement favoritism α (crawler workload)", Metric: "storage unevenness, lower=better"}
	for _, alpha := range []float64{0, 0.5, 1} {
		row, err := alphaVariant(scale, alpha)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Setting: fmt.Sprintf("alpha=%.1f", alpha), Value: row})
	}
	return res, nil
}

func alphaVariant(scale Scale, alpha float64) (float64, error) {
	p := Fig14Params{
		Scale:             scale,
		Crawlers:          12,
		DomainsPerCrawler: 8,
		TotalBytes:        58 << 30,
		DiskCapacity:      31 << 30,
		Duration:          2 * time.Hour,
		Variants:          []string{"sorrento-space"},
	}.withDefaults()
	// Reuse the fig14 machinery with a custom α by running the space
	// variant and overriding the attrs through a dedicated variant hook.
	row, err := fig14VariantWithAlpha("sorrento-space", p, alpha)
	if err != nil {
		return 0, err
	}
	return row.Unevenness, nil
}

// RunReplicationAblation measures small-file write latency and unlink
// latency as the replication degree grows: lazy propagation keeps writes
// nearly flat while eager removal makes unlink scale with the degree
// (paper §4.1.1).
func RunReplicationAblation(scale Scale) (*AblationResult, error) {
	if scale.Time <= 0 {
		scale.Time = 0.1
	}
	scale.Data = 1
	res := &AblationResult{Name: "replication degree (small-file ops)", Metric: "ms per op (write / unlink)"}
	for _, repl := range []int{1, 2, 3} {
		sys := fmt.Sprintf("sorrento-(8,%d)", repl)
		out, err := RunFig9(Fig9Params{Scale: scale, Ops: 10, Systems: []string{sys}})
		if err != nil {
			return nil, err
		}
		r := out.Rows[0]
		res.Rows = append(res.Rows,
			AblationRow{Setting: fmt.Sprintf("repl=%d write", repl), Value: r.WriteMs},
			AblationRow{Setting: fmt.Sprintf("repl=%d unlink", repl), Value: r.UnlinkMs},
		)
	}
	return res, nil
}

// RunDeltaSyncAblation compares the bytes a stale replica transfers to
// catch up using delta sync (this implementation's §3.6 "retrieve the
// updates") versus whole-segment transfers, across update patterns.
func RunDeltaSyncAblation() (*AblationResult, error) {
	res := &AblationResult{Name: "replica sync transfer cost", Metric: "bytes moved to sync one stale replica"}
	const segSize = 4 << 20
	for _, pattern := range []struct {
		name   string
		writes int
		wsize  int
	}{
		{"1 x 64KB update", 1, 64 << 10},
		{"8 x 64KB updates", 8, 64 << 10},
		{"1 x 1MB update", 1, 1 << 20},
	} {
		clock := simtime.NewClock(0.0001)
		st := segstore.New(clock, disk.New(clock, "a", disk.SCSI10K(), 1<<30))
		seg := ids.New()
		if err := st.Create(seg, make([]byte, segSize), 1, 0, false); err != nil {
			return nil, err
		}
		for w := 0; w < pattern.writes; w++ {
			if _, _, err := st.Shadow("w", seg, 0, time.Minute, 1, 0); err != nil {
				return nil, err
			}
			off := int64(w*pattern.wsize) % (segSize - int64(pattern.wsize))
			if _, err := st.WriteShadow("w", seg, off, make([]byte, pattern.wsize)); err != nil {
				return nil, err
			}
			if _, _, err := st.Prepare("w", seg); err != nil {
				return nil, err
			}
			if _, _, err := st.CommitPrepared("w", seg); err != nil {
				return nil, err
			}
		}
		ranges, _, _, _, _, full, _, err := st.FetchDelta(seg, 1)
		if err != nil {
			return nil, err
		}
		var deltaBytes int64
		if full != nil {
			deltaBytes = int64(len(full))
		}
		for _, r := range ranges {
			deltaBytes += int64(len(r.Data))
		}
		res.Rows = append(res.Rows,
			AblationRow{Setting: pattern.name + " (delta)", Value: float64(deltaBytes)},
			AblationRow{Setting: pattern.name + " (full)", Value: float64(segSize)},
		)
	}
	return res, nil
}

// fig14VariantWithAlpha is fig14Variant with an explicit α (the ablation
// hook).
func fig14VariantWithAlpha(variant string, p Fig14Params, alpha float64) (Fig14Row, error) {
	row, err := fig14VariantAttrs(variant, p, func(attrs *wire.FileAttrs) {
		attrs.Alpha = alpha
		attrs.Policy = wire.PlaceLoadAware
	})
	if err != nil {
		return Fig14Row{}, err
	}
	return row, nil
}
