package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Fig9Params configure the small-file response-time table (§4.1.1): a
// single client issues sequential create / write-12KB / read / unlink
// requests against an otherwise idle system.
type Fig9Params struct {
	Scale Scale
	// Ops is the number of files per phase.
	Ops int
	// WriteSize is the per-file payload (paper: 12 KB).
	WriteSize int64
	// Systems filters which deployments run (nil = all seven variants).
	Systems []string
}

func (p Fig9Params) withDefaults() Fig9Params {
	if p.Scale.Time <= 0 {
		p.Scale.Time = 0.1
	}
	p.Scale.Data = 1 // small ops are not data-scaled
	if p.Ops <= 0 {
		p.Ops = 30
	}
	if p.WriteSize <= 0 {
		p.WriteSize = 12 << 10
	}
	if p.Systems == nil {
		p.Systems = []string{"nfs", "pvfs-4", "pvfs-8",
			"sorrento-(4,1)", "sorrento-(4,2)", "sorrento-(8,1)", "sorrento-(8,2)"}
	}
	return p
}

// Fig9Row is one system's latencies in milliseconds.
type Fig9Row struct {
	System   string
	CreateMs float64
	WriteMs  float64
	ReadMs   float64
	UnlinkMs float64
}

// Fig9Result is the regenerated table.
type Fig9Result struct {
	Rows []Fig9Row
}

// Report prints the table in the paper's layout.
func (r *Fig9Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Figure 9: small file I/O request response time (ms)\n")
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s\n", "system", "create", "write", "read", "unlink")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %8.2f %8.2f %8.2f %8.2f\n",
			row.System, row.CreateMs, row.WriteMs, row.ReadMs, row.UnlinkMs)
	}
}

// RunFig9 regenerates the Figure 9 table.
func RunFig9(p Fig9Params) (*Fig9Result, error) {
	p = p.withDefaults()
	res := &Fig9Result{}
	for _, sys := range p.Systems {
		fs, clock, cleanup, err := buildSystem(sys, p.Scale)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", sys, err)
		}
		row, err := fig9Phases(fs, clock, p)
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", sys, err)
		}
		row.System = sys
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// buildSystem instantiates one of the named deployments and returns a
// client mount.
func buildSystem(name string, scale Scale) (fsapi.System, *simtime.Clock, func(), error) {
	switch name {
	case "nfs":
		env, err := NewNFS(scale)
		if err != nil {
			return nil, nil, nil, err
		}
		fs, err := env.NewFS()
		return fs, env.Clock(), env.Close, err
	case "pvfs-4", "pvfs-8":
		iods := 4
		if name == "pvfs-8" {
			iods = 8
		}
		env, err := NewPVFS(scale, iods)
		if err != nil {
			return nil, nil, nil, err
		}
		fs, err := env.NewFS()
		return fs, env.Clock(), env.Close, err
	default:
		var n, r int
		if _, err := fmt.Sscanf(name, "sorrento-(%d,%d)", &n, &r); err != nil {
			return nil, nil, nil, fmt.Errorf("bench: unknown system %q", name)
		}
		env, err := NewSorrento(scale, SorrentoOptions{Providers: n, ReplDeg: r})
		if err != nil {
			return nil, nil, nil, err
		}
		fs, err := env.NewFS(wire.FileAttrs{ReplDeg: r, Alpha: 0.5})
		return fs, env.Clock(), env.Close, err
	}
}

func fig9Phases(fs fsapi.System, clock *simtime.Clock, p Fig9Params) (Fig9Row, error) {
	var row Fig9Row
	paths := make([]string, p.Ops)
	for i := range paths {
		paths[i] = fmt.Sprintf("/fig9-%04d", i)
	}
	payload := make([]byte, p.WriteSize)

	meanMs := func(fn func(path string) error) (float64, error) {
		var total time.Duration
		for _, path := range paths {
			sw := clock.Start()
			if err := fn(path); err != nil {
				return 0, err
			}
			total += sw.Elapsed()
		}
		return total.Seconds() * 1000 / float64(len(paths)), nil
	}

	var err error
	if row.CreateMs, err = meanMs(func(path string) error {
		f, cerr := fs.Create(path)
		if cerr != nil {
			return cerr
		}
		return f.Close()
	}); err != nil {
		return row, fmt.Errorf("create: %w", err)
	}
	if row.WriteMs, err = meanMs(func(path string) error {
		f, oerr := fs.OpenWrite(path)
		if oerr != nil {
			return oerr
		}
		if _, werr := f.WriteAt(payload, 0); werr != nil {
			return werr
		}
		return f.Close()
	}); err != nil {
		return row, fmt.Errorf("write: %w", err)
	}
	if row.ReadMs, err = meanMs(func(path string) error {
		f, oerr := fs.Open(path)
		if oerr != nil {
			return oerr
		}
		if _, rerr := f.ReadAt(payload, 0); rerr != nil && rerr != io.EOF {
			return rerr
		}
		return f.Close()
	}); err != nil {
		return row, fmt.Errorf("read: %w", err)
	}
	// Let lazy replication settle so unlink measures eager removal of the
	// full replica set, as in the paper's steady state.
	clock.Sleep(20 * time.Second)
	if row.UnlinkMs, err = meanMs(fs.Remove); err != nil {
		return row, fmt.Errorf("unlink: %w", err)
	}
	return row, nil
}
