package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/provider"
	"repro/internal/wire"
)

// ScrubParams configure the integrity benchmark: corrupt a batch of
// committed replicas across the cluster and measure how the background
// scrubber behaves — how long until every rotted version is detected and
// dropped (detection latency vs scrub pace), how long until replication is
// fully restored from clean replicas (repair bandwidth), and how many bytes
// of reads were served during the storm (all of which must verify: the
// bytes-never-served-bad contract).
type ScrubParams struct {
	Scale Scale
	// Providers is the cluster size (default 64).
	Providers int
	// Corruptions is how many replicas are rotted, spread across distinct
	// providers (default 16).
	Corruptions int
	// Files written before the storm; each is FileSize bytes, ReplDeg 2.
	Files    int
	FileSize int64
	// Paces are the scrub intervals to sweep (default 2s, 10s, 30s): the
	// knob trading scrub I/O against detection latency.
	Paces []time.Duration
	// ScrubBatch is segments verified per pass.
	ScrubBatch int
}

func (p ScrubParams) withDefaults() ScrubParams {
	if p.Providers <= 0 {
		p.Providers = 64
	}
	if p.Corruptions <= 0 {
		p.Corruptions = 16
	}
	if p.Files <= 0 {
		p.Files = 32
	}
	if p.FileSize <= 0 {
		p.FileSize = 4 << 20
	}
	if len(p.Paces) == 0 {
		p.Paces = []time.Duration{2 * time.Second, 10 * time.Second, 30 * time.Second}
	}
	if p.ScrubBatch <= 0 {
		p.ScrubBatch = 32
	}
	if p.Scale.Time <= 0 {
		// Relax time compression with cluster size, like the harness sweep
		// (128 providers at 0.20): past ~32 providers the default 200×
		// compression starves heartbeat tickers on a small host and the
		// cluster never stabilizes.
		p.Scale.Time = float64(p.Providers) / 640
		if p.Scale.Time < DefaultScale().Time {
			p.Scale.Time = DefaultScale().Time
		}
	}
	return p
}

// ScrubPoint is one scrub pace's measurements (modeled time).
type ScrubPoint struct {
	PaceSec     float64 `json:"pace_sec"`
	Providers   int     `json:"providers"`
	Corruptions int     `json:"corruptions"`
	// DetectSec is modeled time from injection until no store holds a
	// corrupt version (every rotted replica detected and dropped).
	DetectSec float64 `json:"detect_sec"`
	// RepairSec is modeled time from injection until replication is fully
	// restored from clean replicas.
	RepairSec float64 `json:"repair_sec"`
	// Detected / Repaired are the cluster-wide integrity counters after the
	// run (also exported as sorrento_integrity_* on /metrics).
	Detected int64 `json:"detected"`
	Repaired int64 `json:"repaired"`
	// VerifiedBlocks is how many checksum blocks consumers and the scrubber
	// verified over the whole run.
	VerifiedBlocks int64 `json:"verified_blocks"`
	// ReadBytesOK counts payload bytes served to the reader during the
	// storm — every one checksum-verified. WrongReads MUST be zero: a
	// corrupt replica may cost a failover, never wrong bytes.
	ReadBytesOK int64  `json:"read_bytes_ok"`
	WrongReads  int    `json:"wrong_reads"`
	Error       string `json:"error,omitempty"`
}

// ScrubResult is the integrity sweep, written to BENCH_integrity.json.
type ScrubResult struct {
	ScaleData int64        `json:"scale_data"`
	Points    []ScrubPoint `json:"points"`
}

// Report prints the sweep as a table.
func (r *ScrubResult) Report(w io.Writer) {
	fmt.Fprintf(w, "Integrity scrub: detection latency and repair time vs scrub pace (modeled seconds)\n")
	fmt.Fprintf(w, "%8s %10s %8s %10s %10s %9s %9s %12s %6s\n",
		"pace_s", "providers", "corrupt", "detect_s", "repair_s", "detected", "repaired", "readMB_ok", "wrong")
	for _, pt := range r.Points {
		if pt.Error != "" {
			fmt.Fprintf(w, "%8.0f %10d %8d  ERROR: %s\n", pt.PaceSec, pt.Providers, pt.Corruptions, pt.Error)
			continue
		}
		fmt.Fprintf(w, "%8.0f %10d %8d %10.2f %10.2f %9d %9d %12.1f %6d\n",
			pt.PaceSec, pt.Providers, pt.Corruptions, pt.DetectSec, pt.RepairSec,
			pt.Detected, pt.Repaired, float64(pt.ReadBytesOK)/(1<<20), pt.WrongReads)
	}
}

// WriteJSON writes the sweep to path.
func (r *ScrubResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunScrub executes the integrity sweep: one fresh deployment per scrub
// pace, a batch of oracle-guided corruptions, and a stopwatch on the
// detect-and-repair pipeline.
func RunScrub(p ScrubParams) (*ScrubResult, error) {
	p = p.withDefaults()
	res := &ScrubResult{ScaleData: p.Scale.withDefaults().Data}
	for _, pace := range p.Paces {
		pt, err := runScrubPoint(p, pace)
		if err != nil {
			pt = ScrubPoint{PaceSec: pace.Seconds(), Providers: p.Providers, Corruptions: p.Corruptions, Error: err.Error()}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runScrubPoint(p ScrubParams, pace time.Duration) (ScrubPoint, error) {
	pt := ScrubPoint{PaceSec: pace.Seconds(), Providers: p.Providers, Corruptions: p.Corruptions}

	pcfg := provider.DefaultConfig()
	pcfg.RepairInterval = 2 * time.Second
	pcfg.RepairBatch = 16
	pcfg.ScrubInterval = pace
	pcfg.ScrubBatch = p.ScrubBatch
	pcfg.QuarantineThreshold = -1 // measuring detect/repair, not the admin response
	env, err := NewSorrento(p.Scale, SorrentoOptions{
		Providers: p.Providers,
		ReplDeg:   2,
		Provider:  pcfg,
	})
	if err != nil {
		return pt, err
	}
	defer env.Close()
	c := env.Cluster

	fs, err := env.NewFS(wire.FileAttrs{})
	if err != nil {
		return pt, err
	}
	size := p.Scale.withDefaults().Bytes(p.FileSize)
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	paths := make([]string, p.Files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/scrub%03d", i)
		f, err := fs.Create(paths[i])
		if err != nil {
			return pt, err
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			return pt, err
		}
		if err := f.Close(); err != nil {
			return pt, err
		}
	}
	if err := c.AwaitQuiesce(10 * time.Minute); err != nil {
		return pt, fmt.Errorf("initial replication: %w", err)
	}

	// Rot Corruptions replicas spread across distinct providers, in sorted
	// node order for determinism; the oracle only damages segments with a
	// clean replica elsewhere, so full recovery is always possible.
	var ids []wire.NodeID
	for id := range c.Providers() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	injected := 0
	for i := 0; injected < p.Corruptions && i < 4*len(ids); i++ {
		if _, ok := c.CorruptProvider(ids[i%len(ids)]); ok {
			injected++
		}
	}
	if injected == 0 {
		return pt, fmt.Errorf("no corruptible replica found")
	}
	pt.Corruptions = injected
	t0 := c.Clock.Now()

	// Read every file back WHILE the rot sits undetected: each read is
	// checksum-verified up the stack, so a corrupt replica costs a failover,
	// never wrong bytes — the bytes-never-served-bad contract the columns
	// record.
	readPass := func() {
		rbuf := make([]byte, size)
		for _, path := range paths {
			f, err := fs.Open(path)
			if err != nil {
				continue
			}
			n, err := f.ReadAt(rbuf, 0)
			if err != nil && err != io.EOF {
				continue
			}
			ok := true
			for j := 0; j < n; j++ {
				if rbuf[j] != byte(j*31) {
					ok = false
					break
				}
			}
			if ok {
				pt.ReadBytesOK += int64(n)
			} else {
				pt.WrongReads++
			}
		}
	}
	// The milestone stopwatches run concurrently with the read pass: the
	// modeled clock advances with wall time, so timing them only after the
	// wall-expensive read sweep returns would charge the sweep to the
	// scrubber and flatten the pace signal.
	detectCh := make(chan time.Duration, 1)
	repairCh := make(chan time.Duration, 1)
	go func() {
		for c.IntegrityViolations() > 0 {
			c.Clock.Sleep(200 * time.Millisecond)
		}
		detectCh <- c.Clock.Now() - t0
		// Two consecutive clean polls: right after a drop there is a window
		// before the home host notices the deficit, during which a single
		// PendingRepairs()==0 reading would be premature.
		for streak := 0; streak < 2; {
			if c.PendingRepairs() == 0 {
				streak++
			} else {
				streak = 0
			}
			c.Clock.Sleep(200 * time.Millisecond)
		}
		repairCh <- c.Clock.Now() - t0
	}()

	readPass()

	if err := c.AwaitScrubbed(2 * time.Hour); err != nil {
		return pt, err
	}
	pt.DetectSec = (<-detectCh).Seconds()
	if err := c.AwaitQuiesce(2 * time.Hour); err != nil {
		return pt, fmt.Errorf("repair: %w", err)
	}
	pt.RepairSec = (<-repairCh).Seconds()
	readPass()

	for _, pr := range c.Providers() {
		is := pr.Store().IntegrityStats()
		pt.Detected += is.Detected
		pt.VerifiedBlocks += is.VerifiedBlocks
		pt.Repaired += is.ScrubDropped
	}
	return pt, nil
}
