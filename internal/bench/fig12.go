package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Fig12Params configure the application trace-replay comparison (§4.2.2):
// NAS BTIO (4 replayers cooperatively writing 2.7 GB / reading 1.7 GB of a
// shared solution file through byte-range writes with versioning disabled)
// and the parallel Protein Sequence Matching service (8 replayers reading
// 3.1 GB from 24 partitions), on NFS, PVFS-8, and Sorrento-(8,1).
type Fig12Params struct {
	Scale Scale
	// BTIO geometry (paper-sized; scaled internally). The slab is one
	// rank's contiguous chunk per solution dump, issued as a single
	// list-write.
	BTIOProcs int
	BTIOSlab  int64
	BTIOSteps int
	BTIORead  float64
	// PSM geometry.
	PSMProcs      int
	PSMPartitions int
	PartitionSize int64
	PSMQueries    int
	PSMScanBytes  int64
	PSMReadSize   int64
	// Systems filters deployments.
	Systems []string
}

func (p Fig12Params) withDefaults() Fig12Params {
	p.Scale = p.Scale.withDefaults()
	if p.BTIOProcs <= 0 {
		p.BTIOProcs = 4
	}
	if p.BTIOSlab <= 0 {
		p.BTIOSlab = 17 << 20 // ≈2.7 GB / (4 ranks × 40 steps)
	}
	if p.BTIOSteps <= 0 {
		p.BTIOSteps = 40
	}
	if p.BTIORead <= 0 {
		p.BTIORead = 0.63 // 1.7 GB of 2.7 GB
	}
	if p.PSMProcs <= 0 {
		p.PSMProcs = 8
	}
	if p.PSMPartitions <= 0 {
		p.PSMPartitions = 24
	}
	if p.PartitionSize <= 0 {
		p.PartitionSize = 1280 << 20 // 1–1.5 GB in the paper
	}
	if p.PSMQueries <= 0 {
		p.PSMQueries = 40
	}
	if p.PSMScanBytes <= 0 {
		// 3.1 GB total / (8 procs × queries)
		p.PSMScanBytes = int64(3.1e9) / int64(p.PSMProcs) / int64(p.PSMQueries)
	}
	if p.PSMReadSize <= 0 {
		p.PSMReadSize = 64 << 10
	}
	if p.Systems == nil {
		p.Systems = []string{"nfs", "pvfs-8", "sorrento-(8,1)"}
	}
	return p
}

// Fig12Row is one (application, system) result.
type Fig12Row struct {
	App     string
	System  string
	MinSec  float64
	MaxSec  float64
	AvgSec  float64
	ReadMBs float64
	WrMBs   float64
}

// Fig12Result is the regenerated table.
type Fig12Result struct {
	Rows []Fig12Row
}

// Report prints the table in the paper's layout.
func (r *Fig12Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Figure 12: BTIO and PSM trace replay (exec time s, rates MB/s at paper scale)\n")
	fmt.Fprintf(w, "%-6s %-16s %8s %8s %8s %8s %8s\n", "app", "system", "min", "max", "avg", "read", "write")
	for _, row := range r.Rows {
		wr := "   (N/A)"
		if row.WrMBs > 0 {
			wr = fmt.Sprintf("%8.2f", row.WrMBs)
		}
		fmt.Fprintf(w, "%-6s %-16s %8.1f %8.1f %8.1f %8.2f %s\n",
			row.App, row.System, row.MinSec, row.MaxSec, row.AvgSec, row.ReadMBs, wr)
	}
}

// RunFig12 regenerates the Figure 12 table.
func RunFig12(p Fig12Params) (*Fig12Result, error) {
	p = p.withDefaults()
	res := &Fig12Result{}
	for _, sys := range p.Systems {
		row, err := fig12BTIO(sys, p)
		if err != nil {
			return nil, fmt.Errorf("fig12 btio %s: %w", sys, err)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, sys := range p.Systems {
		row, err := fig12PSM(sys, p)
		if err != nil {
			return nil, fmt.Errorf("fig12 psm %s: %w", sys, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fig12BTIO(sys string, p Fig12Params) (Fig12Row, error) {
	mounts, clock, cleanup, err := buildMounts(sys, p.Scale, p.BTIOProcs)
	if err != nil {
		return Fig12Row{}, err
	}
	defer cleanup()

	slab := p.Scale.Bytes(p.BTIOSlab)
	total := slab * int64(p.BTIOProcs) * int64(p.BTIOSteps)
	// Create the shared file. On Sorrento the BTIO byte-range sharing
	// pattern uses a Striped, versioning-off file (paper §4.2.2: "we
	// disabled version-based data management to support concurrent writes
	// to different byte ranges").
	if sfs, ok := mounts[0].(*core.FS); ok {
		attrs := wire.FileAttrs{
			Mode:          wire.Striped,
			StripeCount:   8,
			StripeUnit:    p.Scale.Bytes(4 << 20),
			DeclaredSize:  total,
			VersioningOff: true,
			ReplDeg:       1,
			Alpha:         0.5,
		}
		f, cerr := sfs.Client().Create("/btio", attrs)
		if cerr != nil {
			return Fig12Row{}, cerr
		}
		f.Close()
	} else {
		f, cerr := mounts[0].Create("/btio")
		if cerr != nil {
			return Fig12Row{}, cerr
		}
		f.Close()
	}

	traces := make([]*trace.Trace, p.BTIOProcs)
	for rank := range traces {
		traces[rank] = workload.BTIO(workload.BTIOParams{
			Path:          "/btio",
			Processes:     p.BTIOProcs,
			Rank:          rank,
			BlockSize:     slab,
			BlocksPerStep: 1,
			Steps:         p.BTIOSteps,
			ReadFraction:  p.BTIORead,
		})
	}
	stats, err := replayAll(mounts, clock, traces)
	if err != nil {
		return Fig12Row{}, err
	}
	return summarizeReplay("BTIO", sys, p.Scale, stats), nil
}

func fig12PSM(sys string, p Fig12Params) (Fig12Row, error) {
	mounts, clock, cleanup, err := buildMounts(sys, p.Scale, p.PSMProcs)
	if err != nil {
		return Fig12Row{}, err
	}
	defer cleanup()

	partSize := p.Scale.Bytes(p.PartitionSize)
	parts := make([]string, p.PSMPartitions)
	for i := range parts {
		parts[i] = fmt.Sprintf("/psm/part-%02d", i)
	}
	if err := mounts[0].Mkdir("/psm"); err != nil {
		return Fig12Row{}, err
	}
	if err := prepopulate(mounts, parts, partSize, p.Scale.Bytes(4<<20)); err != nil {
		return Fig12Row{}, err
	}

	perProc := p.PSMPartitions / p.PSMProcs
	traces := make([]*trace.Trace, p.PSMProcs)
	for i := range traces {
		traces[i] = workload.PSM(workload.PSMParams{
			Partitions:    parts[i*perProc : (i+1)*perProc],
			PartitionSize: partSize,
			Queries:       p.PSMQueries,
			ScanBytes:     p.Scale.Bytes(p.PSMScanBytes),
			ReadSize:      p.Scale.Bytes(p.PSMReadSize),
			Seed:          int64(i + 1),
		})
	}
	stats, err := replayAll(mounts, clock, traces)
	if err != nil {
		return Fig12Row{}, err
	}
	row := summarizeReplay("PSM", sys, p.Scale, stats)
	row.WrMBs = 0 // PSM has no writes (N/A in the paper)
	return row, nil
}

// replayAll launches one replayer per mount simultaneously, as the paper's
// experiments do.
func replayAll(mounts []fsapi.System, clock *simtime.Clock, traces []*trace.Trace) ([]trace.Stats, error) {
	out := make([]trace.Stats, len(traces))
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := trace.NewReplayer(clock, mounts[i])
			out[i] = r.Run(traces[i])
		}(i)
	}
	wg.Wait()
	for i, st := range out {
		if st.Errors > 0 {
			return out, fmt.Errorf("replayer %d: %d op errors", i, st.Errors)
		}
	}
	return out, nil
}

func summarizeReplay(app, sys string, scale Scale, stats []trace.Stats) Fig12Row {
	row := Fig12Row{App: app, System: sys}
	var minT, maxT, sumT time.Duration
	var bytesRead, bytesWritten int64
	for i, st := range stats {
		if i == 0 || st.Elapsed < minT {
			minT = st.Elapsed
		}
		if st.Elapsed > maxT {
			maxT = st.Elapsed
		}
		sumT += st.Elapsed
		bytesRead += st.BytesRead
		bytesWritten += st.BytesWritten
	}
	row.MinSec = minT.Seconds()
	row.MaxSec = maxT.Seconds()
	row.AvgSec = sumT.Seconds() / float64(len(stats))
	if maxT > 0 {
		row.ReadMBs = scale.Rate(float64(bytesRead) / maxT.Seconds() / 1e6)
		row.WrMBs = scale.Rate(float64(bytesWritten) / maxT.Seconds() / 1e6)
	}
	return row
}
