package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// HarnessParams configure the harness scaling benchmark: not a figure from
// the paper but a measurement of the simulation substrate itself. Each
// point builds a Sorrento deployment at one provider count, runs a steady
// control-plane load (heartbeats, announce traffic from file writes, a
// trickle of reads) with a mid-run provider kill/restart to trigger
// repair, and records what the harness spends per modeled second.
type HarnessParams struct {
	// Scale defaults to Data=1 — unlike the figure experiments, the sweep
	// must not scale data: dividing bandwidth by K inflates the modeled
	// transfer time of fixed-size control messages by K, and at 128+
	// providers the heartbeat fan-in alone would saturate every modeled
	// NIC (127 senders × ~11 ms/frame > the 2 s interval at K=1024). A
	// zero Time picks a per-point compression: 0.2 wall/modeled at ≤128
	// providers, relaxing linearly with size so the n² heartbeat delivery
	// work fits the host CPU budget; set Time explicitly to pin one
	// compression across the sweep.
	Scale Scale
	// Providers lists the cluster sizes to sweep (default 128, 256, 512).
	Providers []int
	// RunFor is the measured window in modeled time per point.
	RunFor time.Duration
	// Heartbeat is the membership heartbeat interval.
	Heartbeat time.Duration
	// Files is the number of replicated files written before the window
	// (their announce/2PC traffic is part of setup; their replicas are what
	// the mid-run kill forces the cluster to repair).
	Files int
	// FileSize is the paper-sized bytes per file (scaled internally).
	FileSize int64
	// NoFaults skips the mid-run kill/restart.
	NoFaults bool
}

func (p HarnessParams) withDefaults() HarnessParams {
	if p.Scale.Data <= 0 {
		p.Scale.Data = 1
	}
	if len(p.Providers) == 0 {
		p.Providers = []int{128, 256, 512}
	}
	if p.RunFor <= 0 {
		p.RunFor = 30 * time.Second
	}
	if p.Heartbeat <= 0 {
		p.Heartbeat = 2 * time.Second
	}
	if p.Files <= 0 {
		p.Files = 32
	}
	if p.FileSize <= 0 {
		p.FileSize = 1 << 20
	}
	return p
}

// HarnessPoint is one cluster size's measurements.
type HarnessPoint struct {
	Providers  int     `json:"providers"`
	ModeledSec float64 `json:"modeled_sec"`
	// SetupWallSec covers cluster construction, stabilization, and the
	// initial file writes; RunWallSec covers the measured window only.
	SetupWallSec float64 `json:"setup_wall_sec"`
	RunWallSec   float64 `json:"run_wall_sec"`
	// CPUSec is process CPU (user+sys) consumed during the window;
	// CPUPerModeledSec is the headline harness-cost metric (wall-per-modeled
	// equals the scale factor by construction, so it reveals nothing).
	CPUSec           float64 `json:"cpu_sec"`
	CPUPerModeledSec float64 `json:"cpu_per_modeled_sec"`
	// HeartbeatKeepUp is observed/expected heartbeat casts over the window.
	// Below ~1.0 the harness is starving the membership tickers and the
	// simulation is no longer faithful at this scale.
	HeartbeatKeepUp float64 `json:"heartbeat_keepup"`
	// CtlBytesPerNodeSec is control-plane bytes (every message type except
	// the SegRead/SegWrite payload carriers) sent per provider per modeled
	// second. O(cluster) growth across the sweep is healthy; O(n²) per node
	// would mean the control plane does not scale.
	CtlBytesPerNodeSec float64 `json:"ctl_bytes_per_node_sec"`
	// TotalBytesPerSec is all wire bytes sent per modeled second.
	TotalBytesPerSec float64 `json:"total_bytes_per_sec"`
	// PendingRepairs is the repair backlog at window end (nonzero mid-drain
	// is fine; it proves the kill generated repair traffic).
	PendingRepairs int  `json:"pending_repairs"`
	Faulted        bool `json:"faulted"`
	// TimeScale is the wall-per-modeled compression this point ran at.
	TimeScale float64 `json:"time_scale"`
	// Error records a point that could not complete (e.g. the cluster never
	// stabilized at this size under this compression); its metrics are zero.
	Error string `json:"error,omitempty"`
}

// HarnessResult is the regenerated sweep.
type HarnessResult struct {
	ScaleData int64          `json:"scale_data"`
	CPUKnown  bool           `json:"cpu_known"`
	Points    []HarnessPoint `json:"points"`
}

// Report prints the sweep as a table.
func (r *HarnessResult) Report(w io.Writer) {
	fmt.Fprintf(w, "Harness scaling: wall-per-modeled is the time scale by construction; cost is CPU-sec per modeled-sec\n")
	fmt.Fprintf(w, "%9s %6s %10s %10s %10s %12s %9s %14s %8s\n",
		"providers", "scale", "modeled_s", "setup_s", "run_s", "cpu/model_s", "hb_keep", "ctlB/node/s", "repairs")
	for _, pt := range r.Points {
		if pt.Error != "" {
			fmt.Fprintf(w, "%9d %6.2f ERROR %s\n", pt.Providers, pt.TimeScale, pt.Error)
			continue
		}
		fmt.Fprintf(w, "%9d %6.2f %10.1f %10.1f %10.1f %12.3f %9.2f %14.0f %8d\n",
			pt.Providers, pt.TimeScale, pt.ModeledSec, pt.SetupWallSec, pt.RunWallSec,
			pt.CPUPerModeledSec, pt.HeartbeatKeepUp, pt.CtlBytesPerNodeSec, pt.PendingRepairs)
	}
	if !r.CPUKnown {
		fmt.Fprintf(w, "(process CPU time unavailable on this platform; cpu columns are zero)\n")
	}
}

// WriteJSON writes the sweep to path (BENCH_harness.json by convention).
func (r *HarnessResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// timeScaleFor picks the wall-per-modeled compression for one point: an
// explicit Scale.Time wins; otherwise 0.2 at ≤128 providers, relaxed
// linearly with cluster size (heartbeat delivery work grows ~n² per
// modeled second, so larger clusters need more wall time per modeled
// second to stay faithful on a fixed CPU budget).
func (p HarnessParams) timeScaleFor(providers int) float64 {
	if p.Scale.Time > 0 {
		return p.Scale.Time
	}
	t := 0.2 * float64(providers) / 128
	if t < 0.2 {
		t = 0.2
	}
	return t
}

// RunHarness runs the harness scaling sweep. A point that fails (e.g. the
// cluster never stabilizes at that size) is recorded with its error and
// the sweep continues.
func RunHarness(p HarnessParams) (*HarnessResult, error) {
	p = p.withDefaults()
	res := &HarnessResult{ScaleData: p.Scale.Data, CPUKnown: true}
	for _, n := range p.Providers {
		ts := p.timeScaleFor(n)
		fmt.Fprintf(os.Stderr, "harness: %d providers at scale %.2f...\n", n, ts)
		pt, err := runHarnessPoint(p, n, ts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harness: %d providers: %v\n", n, err)
			pt = &HarnessPoint{Providers: n, TimeScale: ts, Error: err.Error()}
		} else {
			fmt.Fprintf(os.Stderr, "harness: %d providers done (setup %.0fs, run %.0fs wall)\n",
				n, pt.SetupWallSec, pt.RunWallSec)
		}
		if pt.CPUSec == 0 {
			if _, ok := processCPU(); !ok {
				res.CPUKnown = false
			}
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func runHarnessPoint(p HarnessParams, providers int, timeScale float64) (*HarnessPoint, error) {
	scale := Scale{Time: timeScale, Data: p.Scale.Data}
	o := obs.New(simtime.Real())
	setupStart := time.Now()
	env, err := NewSorrento(scale, SorrentoOptions{
		Providers: providers,
		ReplDeg:   2,
		Heartbeat: p.Heartbeat,
		Obs:       o,
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	clock := env.Clock()

	fs, err := env.NewFS(wire.FileAttrs{ReplDeg: 2, Alpha: 0.5})
	if err != nil {
		return nil, err
	}
	paths := make([]string, p.Files)
	payload := make([]byte, scale.Bytes(p.FileSize))
	for i := range paths {
		paths[i] = fmt.Sprintf("/harness-%04d", i)
		f, err := fs.Create(paths[i])
		if err != nil {
			return nil, err
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	setupWall := time.Since(setupStart)

	// Measured window: snapshot counters and CPU around it so setup noise
	// (cluster construction, file creation 2PC) stays out of the numbers.
	bytes0, casts0 := rpcTotals(o)
	cpu0, cpuOK := processCPU()
	runStart := time.Now()
	sw := clock.Start()

	// Background read trickle: steady client traffic that also exercises
	// failover when the victim holds a replica.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if f, err := fs.Open(paths[i%len(paths)]); err == nil {
				f.ReadAt(buf, 0)
				f.Close()
			}
			clock.Sleep(500 * time.Millisecond)
		}
	}()

	victim := cluster.ProviderID(1)
	third := p.RunFor / 3
	clock.Sleep(third)
	if !p.NoFaults {
		if err := env.Cluster.KillProvider(victim); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
	}
	clock.Sleep(third)
	if !p.NoFaults {
		if _, err := env.Cluster.RestartProvider(victim); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
	}
	clock.Sleep(p.RunFor - 2*third)
	close(stop)
	wg.Wait()

	modeled := sw.Elapsed()
	runWall := time.Since(runStart)
	cpu1, _ := processCPU()
	bytes1, casts1 := rpcTotals(o)

	pt := &HarnessPoint{
		Providers:    providers,
		ModeledSec:   modeled.Seconds(),
		SetupWallSec: setupWall.Seconds(),
		RunWallSec:   runWall.Seconds(),
		Faulted:      !p.NoFaults,
		TimeScale:    timeScale,
	}
	if cpuOK {
		pt.CPUSec = cpu1 - cpu0
		pt.CPUPerModeledSec = pt.CPUSec / modeled.Seconds()
	}
	expected := float64(providers) * modeled.Seconds() / p.Heartbeat.Seconds()
	if expected > 0 {
		pt.HeartbeatKeepUp = (casts1["Heartbeat"] - casts0["Heartbeat"]) / expected
	}
	var total, ctl float64
	for typ, b := range bytes1 {
		d := b - bytes0[typ]
		total += d
		// SegRead/SegWrite carry the data payloads; everything else is
		// control plane (heartbeats, announces, namespace, 2PC, repair
		// coordination).
		if typ != "SegRead" && typ != "SegWrite" {
			ctl += d
		}
	}
	pt.TotalBytesPerSec = total / modeled.Seconds()
	pt.CtlBytesPerNodeSec = ctl / float64(providers) / modeled.Seconds()
	pt.PendingRepairs = env.Cluster.PendingRepairs()
	return pt, nil
}

// rpcTotals sums the registry's per-node RPC series into per-message-type
// totals: sent bytes (both roles) and cast counts.
func rpcTotals(o *obs.Obs) (sentBytes, casts map[string]float64) {
	sentBytes = make(map[string]float64)
	casts = make(map[string]float64)
	for _, m := range o.Reg().Snapshot() {
		typ := m.Labels["type"]
		switch m.Name {
		case "sorrento_rpc_bytes_total":
			if m.Labels["dir"] == "sent" {
				sentBytes[typ] += m.Value
			}
		case "sorrento_rpc_casts_total":
			casts[typ] += m.Value
		}
	}
	return sentBytes, casts
}
