package bench

import (
	"io"
	"os"
	"testing"
	"time"
)

// reportWriter sends experiment reports to stderr under -v, devnull
// otherwise.
func reportWriter(t *testing.T) io.Writer {
	if testing.Verbose() {
		return os.Stderr
	}
	return io.Discard
}

// The experiment smoke tests run every figure end-to-end with reduced
// parameters and assert the paper's qualitative shapes. The full-size runs
// live in cmd/sorrento-bench and the repo-root benchmarks.

func TestFig9Shapes(t *testing.T) {
	res, err := RunFig9(Fig9Params{
		Scale:   Scale{Time: 0.1, Data: 1},
		Ops:     12,
		Systems: []string{"nfs", "pvfs-8", "sorrento-(8,1)", "sorrento-(8,2)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	rows := map[string]Fig9Row{}
	for _, r := range res.Rows {
		rows[r.System] = r
	}
	nfs, pvfs := rows["nfs"], rows["pvfs-8"]
	s1, s2 := rows["sorrento-(8,1)"], rows["sorrento-(8,2)"]

	// NFS is far fastest on small ops.
	if nfs.CreateMs > 3 || nfs.CreateMs >= s1.CreateMs || nfs.WriteMs >= s1.WriteMs {
		t.Errorf("NFS not fastest: %+v vs %+v", nfs, s1)
	}
	// Sorrento beats PVFS on create/write/read.
	if s1.CreateMs >= pvfs.CreateMs || s1.WriteMs >= pvfs.WriteMs || s1.ReadMs >= pvfs.ReadMs {
		t.Errorf("Sorrento did not beat PVFS: %+v vs %+v", s1, pvfs)
	}
	// Replication ≈ free for create/write (lazy propagation)…
	if s2.WriteMs > s1.WriteMs*1.5 {
		t.Errorf("replication slowed writes: %v vs %v", s2.WriteMs, s1.WriteMs)
	}
	// …but unlink gets slower with more replicas to remove eagerly.
	if s2.UnlinkMs < s1.UnlinkMs {
		t.Errorf("unlink with replication faster: %v vs %v", s2.UnlinkMs, s1.UnlinkMs)
	}
}

func TestFig10Shapes(t *testing.T) {
	res, err := RunFig10(Fig10Params{
		Scale:             Scale{Time: 0.04, Data: 1},
		Clients:           []int{1, 4, 8},
		SessionsPerClient: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	nfs := res.Curves["nfs"]
	pvfs := res.Curves["pvfs-8"]
	sor := res.Curves["sorrento-(8,2)"]

	// The margins below are deliberately loose: the reduced run measures a
	// handful of wall-clock seconds per point, so scheduler noise on a busy
	// machine moves individual rates by tens of percent. The assertions pin
	// the paper's qualitative shape, not the exact ratios.
	//
	// PVFS saturates lowest (metadata server bottleneck, ≈64/s).
	last := func(c []Fig10Point) float64 { return c[len(c)-1].SessionsPS }
	if last(pvfs) > 100 {
		t.Errorf("PVFS throughput %v, want ≈64/s saturation", last(pvfs))
	}
	// Sorrento scales with clients: 8-client rate well above 1-client rate
	// (ideal 8×; demand ≥2.5× so only a real scaling failure trips it).
	if last(sor) < sor[0].SessionsPS*2.5 {
		t.Errorf("Sorrento not scaling: %v → %v", sor[0].SessionsPS, last(sor))
	}
	// Sorrento overtakes PVFS by 8 clients; NFS is at least comparable to
	// Sorrento at one client (paper: clearly ahead). Only strict ordering is
	// asserted: when the machine is CPU-starved, both systems converge to
	// the host's real throughput (PVFS's modeled metadata bottleneck stops
	// binding), and the observed gap shrinks to ~1.1×.
	if last(sor) < last(pvfs)*1.05 {
		t.Errorf("Sorrento (%v) not above PVFS (%v)", last(sor), last(pvfs))
	}
	if nfs[0].SessionsPS < sor[0].SessionsPS*0.9 {
		t.Errorf("NFS single-client (%v) below Sorrento (%v)", nfs[0].SessionsPS, sor[0].SessionsPS)
	}
}

func TestFig11Shapes(t *testing.T) {
	res, err := RunFig11(Fig11Params{
		Scale:          Scale{Time: 0.01, Data: 1024},
		Clients:        []int{1, 4, 8},
		Files:          16,
		BytesPerClient: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	last := func(sys string) Fig11Point {
		c := res.Curves[sys]
		return c[len(c)-1]
	}
	nfs, pvfs, sor := last("nfs"), last("pvfs-8"), last("sorrento-(8,2)")

	// NFS saturates around 8 MB/s; the parallel systems scale far past it.
	if nfs.ReadMBs > 14 || nfs.WrMBs > 14 {
		t.Errorf("NFS rates too high: %+v", nfs)
	}
	if pvfs.ReadMBs < nfs.ReadMBs*2 || sor.ReadMBs < nfs.ReadMBs*2 {
		t.Errorf("parallel systems not scaling past NFS: pvfs %+v sor %+v", pvfs, sor)
	}
	// Reads comparable between PVFS and Sorrento; PVFS writes well ahead
	// (Sorrento commits every write to two replicas).
	if sor.ReadMBs < pvfs.ReadMBs/2 {
		t.Errorf("Sorrento reads (%v) far below PVFS (%v)", sor.ReadMBs, pvfs.ReadMBs)
	}
	if pvfs.WrMBs < sor.WrMBs*1.3 {
		t.Errorf("PVFS writes (%v) not ahead of replicated Sorrento (%v)", pvfs.WrMBs, sor.WrMBs)
	}
}

func TestFig12Shapes(t *testing.T) {
	res, err := RunFig12(Fig12Params{
		Scale:      Scale{Time: 0.01, Data: 1024},
		BTIOSteps:  10,
		PSMQueries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	get := func(app, sys string) Fig12Row {
		for _, r := range res.Rows {
			if r.App == app && r.System == sys {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", app, sys)
		return Fig12Row{}
	}
	// NFS is several times slower than both parallel systems on both
	// applications.
	for _, app := range []string{"BTIO", "PSM"} {
		nfs, pvfs, sor := get(app, "nfs"), get(app, "pvfs-8"), get(app, "sorrento-(8,1)")
		if nfs.AvgSec < pvfs.AvgSec*2 || nfs.AvgSec < sor.AvgSec*2 {
			t.Errorf("%s: NFS (%.0fs) not much slower than pvfs %.0fs / sorrento %.0fs",
				app, nfs.AvgSec, pvfs.AvgSec, sor.AvgSec)
		}
		// PVFS and Sorrento are comparable (within 2×).
		ratio := sor.AvgSec / pvfs.AvgSec
		if ratio > 2 || ratio < 0.5 {
			t.Errorf("%s: sorrento/pvfs ratio %.2f out of range", app, ratio)
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	res, err := RunFig13(Fig13Params{
		Scale:        Scale{Time: 0.02, Data: 1024},
		Files:        24,
		RunFor:       90 * time.Second,
		RecoveryWait: 40 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	if res.BaselineMBs <= 0 {
		t.Fatal("no baseline rate measured")
	}
	// The rate recovers to a substantial fraction of baseline after the
	// location tables adjust (paper: ~94%, then ~85% during repair).
	if res.RecoveredMBs < res.BaselineMBs*0.5 {
		t.Errorf("recovered rate %.1f far below baseline %.1f", res.RecoveredMBs, res.BaselineMBs)
	}
	// Lost replicas are eventually restored.
	if res.RecoverySec < 0 {
		t.Errorf("replication not restored (replicas %d → %d)", res.ReplicasBefore, res.ReplicasAfter)
	}
}

func TestFig14Shapes(t *testing.T) {
	// Single runs of the reduced experiment are noisy; average three
	// seeded trials per variant before asserting the paper's ordering.
	sums := map[string]float64{}
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		res, err := RunFig14(Fig14Params{
			Scale:             Scale{Time: 0.001, Data: 2048},
			Crawlers:          20,
			DomainsPerCrawler: 10,
			// Scale the crawl volume and per-node capacity with the
			// reduced crawler count so both the per-domain heavy tail and
			// the ~19% mean storage utilization match the full-size run.
			TotalBytes:   97 << 30,
			DiskCapacity: 51 << 30,
			Duration:     4 * time.Hour,
			SeedBase:     int64(trial * 1000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Report(reportWriter(t))
		for _, r := range res.Rows {
			sums[r.Variant] += r.Unevenness
		}
	}
	random := sums["sorrento-random"] / trials
	space := sums["sorrento-space"] / trials
	migr := sums["sorrento-migration"] / trials
	t.Logf("mean unevenness over %d trials: random %.2f, space %.2f, migration %.2f",
		trials, random, space, migr)
	// The paper's ordering: random worst, space better, migration best. At
	// this reduced scale the three means sit within run-to-run noise of each
	// other (~±15% even idle, seeds fixed but timing-dependent), so the
	// headline claim — migration beats random — is held near-strictly while
	// the middle variant only gets loose pairwise bounds.
	if migr > random*1.05 {
		t.Errorf("migration unevenness (%.2f) not below random (%.2f)", migr, random)
	}
	if !(migr <= space*1.3 && space <= random*1.3) {
		t.Errorf("unevenness ordering violated beyond noise: random %.2f, space %.2f, migration %.2f",
			random, space, migr)
	}
	if migr > 2.5 {
		t.Errorf("migration unevenness %.2f, want ≲2 (paper: 1.81)", migr)
	}
}

func TestFig15Shapes(t *testing.T) {
	res, err := RunFig15(Fig15Params{
		Scale:  Scale{Time: 0.002, Data: 2048},
		RunFor: 15 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	// Locality-driven migration must co-locate more partitions with their
	// processes…
	if res.LocalAfter <= res.LocalBefore {
		t.Errorf("no locality migration: %d → %d local partitions", res.LocalBefore, res.LocalAfter)
	}
	// …and cut the per-query I/O time (paper: 62 → 46 ms, −26%).
	if res.FinalMs >= res.InitialMs {
		t.Errorf("I/O time did not improve: %.1f → %.1f ms", res.InitialMs, res.FinalMs)
	}
}

func TestDeltaSyncAblation(t *testing.T) {
	res, err := RunDeltaSyncAblation()
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	// Delta sync must move far fewer bytes than a full transfer for small
	// updates.
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Setting] = r.Value
	}
	if d := vals["1 x 64KB update (delta)"]; d <= 0 || d > float64(128<<10) {
		t.Errorf("delta for a 64KB update moved %v bytes", d)
	}
	if vals["1 x 64KB update (delta)"]*10 > vals["1 x 64KB update (full)"] {
		t.Errorf("delta not ≫ cheaper than full: %v vs %v",
			vals["1 x 64KB update (delta)"], vals["1 x 64KB update (full)"])
	}
}

func TestReplicationAblation(t *testing.T) {
	res, err := RunReplicationAblation(Scale{Time: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	vals := map[string]float64{}
	for _, r := range res.Rows {
		vals[r.Setting] = r.Value
	}
	// Lazy propagation keeps writes roughly flat across degrees…
	if vals["repl=3 write"] > vals["repl=1 write"]*1.6 {
		t.Errorf("writes scale with replication: %v vs %v", vals["repl=3 write"], vals["repl=1 write"])
	}
	// …while eager removal makes unlink grow.
	if vals["repl=3 unlink"] <= vals["repl=1 unlink"] {
		t.Errorf("unlink did not grow with replication: %v vs %v", vals["repl=3 unlink"], vals["repl=1 unlink"])
	}
}

func TestAlphaAblation(t *testing.T) {
	res, err := RunAlphaAblation(Scale{Time: 0.001, Data: 2048})
	if err != nil {
		t.Fatal(err)
	}
	res.Report(reportWriter(t))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r.Value <= 0 {
			t.Errorf("%s produced unevenness %v", r.Setting, r.Value)
		}
	}
}
