package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fsapi"
	"repro/internal/provider"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Fig13Params configure the node failure/addition experiment (§4.3): 10
// providers hold 200 × 512 MB files at replication degree 3; a constant
// background of 3 bulkread + 2 bulkwrite clients runs at ~50% of capacity;
// one provider is killed at FailAt and a fresh one joins at JoinAt. The
// outputs are the aggregate transfer-rate timeline (3-second buckets) and
// the time to restore full replication.
type Fig13Params struct {
	Scale Scale
	// Providers is the storage node count (paper: 10).
	Providers int
	// Files and FileSize (paper-sized) define the dataset; ReplDeg 3.
	Files    int
	FileSize int64
	ReplDeg  int
	// Readers/Writers are the constant background clients (paper: 3 + 2).
	Readers int
	Writers int
	// ReqSize is the background request size (paper: 4 MB reads, bulk
	// writes).
	ReqSize int64
	// FailAt and JoinAt are event times from measurement start.
	FailAt time.Duration
	JoinAt time.Duration
	// FaultMode selects how the node "fails". "kill" (default) crashes the
	// victim and joins a fresh node at JoinAt — the paper's §4.3 scenario.
	// "partition" cuts the victim off the network at FailAt and heals it at
	// JoinAt: the same workload now exercises the retry/failover data path
	// and post-heal resynchronization instead of fresh-replica recovery.
	FaultMode string
	// RunFor is the measured window.
	RunFor time.Duration
	// RecoveryWait bounds how long to watch for full re-replication after
	// the measured window.
	RecoveryWait time.Duration
}

func (p Fig13Params) withDefaults() Fig13Params {
	if p.Scale.Time <= 0 {
		// Generous compression: the repair/measurement loops are CPU-real,
		// and over-compressing makes modeled time outrun the machine.
		p.Scale.Time = 0.02
	}
	if p.Scale.Data <= 0 {
		p.Scale.Data = 1024
	}
	if p.Providers <= 0 {
		p.Providers = 10
	}
	if p.Files <= 0 {
		p.Files = 48
	}
	if p.FileSize <= 0 {
		p.FileSize = 512 << 20
	}
	if p.ReplDeg <= 0 {
		p.ReplDeg = 3
	}
	if p.Readers <= 0 {
		p.Readers = 3
	}
	if p.Writers <= 0 {
		p.Writers = 2
	}
	if p.ReqSize <= 0 {
		p.ReqSize = 4 << 20
	}
	if p.FailAt <= 0 {
		p.FailAt = 30 * time.Second
	}
	if p.JoinAt <= 0 {
		p.JoinAt = 45 * time.Second
	}
	if p.RunFor <= 0 {
		p.RunFor = 120 * time.Second
	}
	if p.RecoveryWait <= 0 {
		p.RecoveryWait = 30 * time.Minute
	}
	if p.FaultMode == "" {
		p.FaultMode = "kill"
	}
	return p
}

// Fig13Result holds the timeline and recovery observations.
type Fig13Result struct {
	// Mode echoes the fault mode the run used.
	Mode string
	// Series is the aggregate client transfer rate (MB/s at paper scale)
	// in 3-second buckets.
	Series []stats.Point
	// BaselineMBs is the pre-failure mean rate; DipMBs the post-failure
	// minimum; RecoveredMBs the rate after the location tables adjusted.
	BaselineMBs  float64
	DipMBs       float64
	RecoveredMBs float64
	// ReplicasBefore/After count committed segment replicas cluster-wide.
	ReplicasBefore int
	ReplicasAfter  int
	// RecoverySec is when full replication was restored (modeled seconds
	// after the failure), or -1 if not within RecoveryWait.
	RecoverySec float64
}

// Report prints the timeline and summary.
func (r *Fig13Result) Report(w io.Writer) {
	fmt.Fprintf(w, "Figure 13: handling node failures and additions (mode=%s)\n", r.Mode)
	fmt.Fprintf(w, "time(s)  rate(MB/s)\n")
	for _, pt := range r.Series {
		fmt.Fprintf(w, "%7.0f  %9.1f\n", pt.T.Seconds(), pt.V)
	}
	fmt.Fprintf(w, "baseline %.1f MB/s, post-failure dip %.1f, recovered %.1f\n",
		r.BaselineMBs, r.DipMBs, r.RecoveredMBs)
	fmt.Fprintf(w, "replicas before failure %d, after recovery %d; full replication restored after %.0f s\n",
		r.ReplicasBefore, r.ReplicasAfter, r.RecoverySec)
}

// RunFig13 regenerates Figure 13.
func RunFig13(p Fig13Params) (*Fig13Result, error) {
	p = p.withDefaults()
	pcfg := provider.DefaultConfig()
	pcfg.RefreshInterval = 60 * time.Second
	pcfg.GarbageAge = 150 * time.Second
	pcfg.RepairInterval = 3 * time.Second
	pcfg.RepairBatch = 6
	env, err := NewSorrento(p.Scale, SorrentoOptions{
		Providers: p.Providers,
		ReplDeg:   p.ReplDeg,
		Provider:  pcfg,
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	clock := env.Clock()

	// Populate the dataset and wait for full replication.
	files := make([]string, p.Files)
	for i := range files {
		files[i] = fmt.Sprintf("/fig13-%03d", i)
	}
	popMounts := make([]fsapi.System, 8)
	for i := range popMounts {
		if popMounts[i], err = env.NewFS(defaultAttrs(p.ReplDeg)); err != nil {
			return nil, err
		}
	}
	fileSize := p.Scale.Bytes(p.FileSize)
	if err := prepopulate(popMounts, files, fileSize, p.Scale.Bytes(p.ReqSize)); err != nil {
		return nil, err
	}
	segsPerReplica := env.Cluster.TotalReplicaCount
	wantReplicas := expectedReplicaCount(env, files, popMounts[0])
	deadline := clock.Now() + p.RecoveryWait
	for segsPerReplica() < wantReplicas {
		if clock.Now() > deadline {
			return nil, fmt.Errorf("fig13: initial replication stalled at %d/%d", segsPerReplica(), wantReplicas)
		}
		clock.Sleep(5 * time.Second)
	}

	// Background workload.
	var series stats.TimeSeries
	var transferred stats.Counter
	stop := make(chan struct{})
	var wg sync.WaitGroup
	launch := func(id int, write bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs := popMounts[id%len(popMounts)]
			rng := rand.New(rand.NewSource(int64(id + 7)))
			buf := make([]byte, p.Scale.Bytes(p.ReqSize))
			for {
				select {
				case <-stop:
					return
				default:
				}
				path := files[rng.Intn(len(files))]
				off := rng.Int63n(maxI64(fileSize-int64(len(buf)), 1))
				if write {
					f, err := fs.OpenWrite(path)
					if err != nil {
						continue
					}
					if _, err := f.WriteAt(buf, off); err == nil {
						transferred.Add(int64(len(buf)))
					}
					f.Close()
				} else {
					f, err := fs.Open(path)
					if err != nil {
						continue
					}
					if n, err := f.ReadAt(buf, off); err == nil || err == io.EOF {
						transferred.Add(int64(n))
					}
					f.Close()
				}
				// ~50% duty cycle keeps the system at half capacity.
				clock.Sleep(time.Duration(float64(time.Second) * 0.15))
			}
		}()
	}
	for i := 0; i < p.Readers; i++ {
		launch(i, false)
	}
	for i := 0; i < p.Writers; i++ {
		launch(p.Readers+i, true)
	}

	// Sampler: every 3 seconds, log the rate.
	origin := clock.Now()
	samplerStop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := clock.NewTicker(3 * time.Second)
		defer t.Stop()
		last := int64(0)
		lastAt := clock.Now()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				now := clock.Now()
				cur := transferred.Total()
				dt := (now - lastAt).Seconds()
				if dt > 0 {
					series.Add(now-origin, p.Scale.Rate(float64(cur-last)/dt/1e6))
				}
				last, lastAt = cur, now
			}
		}
	}()

	replicasBefore := segsPerReplica()

	// Fault injection.
	clock.Sleep(p.FailAt)
	victim := cluster.ProviderID(1)
	switch p.FaultMode {
	case "partition":
		env.Cluster.Fabric.IsolateNode(victim)
	default: // "kill"
		if err := env.Cluster.KillProvider(victim); err != nil {
			return nil, err
		}
	}
	failTime := clock.Now()
	clock.Sleep(p.JoinAt - p.FailAt)
	switch p.FaultMode {
	case "partition":
		// The victim rejoins with its data intact; replication converges by
		// resync rather than fresh-replica recovery.
		env.Cluster.Fabric.HealNode(victim)
	default:
		if _, err := env.Cluster.AddProvider(wire.NodeID("pnew")); err != nil {
			return nil, err
		}
	}
	clock.Sleep(p.RunFor - p.JoinAt)
	close(stop)
	close(samplerStop)
	wg.Wait()

	// Watch recovery to full replication.
	res := &Fig13Result{Mode: p.FaultMode, Series: series.Bucketed(3 * time.Second), ReplicasBefore: replicasBefore}
	res.RecoverySec = -1
	recoveryDeadline := clock.Now() + p.RecoveryWait
	for {
		if segsPerReplica() >= wantReplicas {
			res.RecoverySec = (clock.Now() - failTime).Seconds()
			break
		}
		if clock.Now() > recoveryDeadline {
			break
		}
		clock.Sleep(10 * time.Second)
	}
	res.ReplicasAfter = segsPerReplica()

	// Summaries from the timeline.
	var pre, dip, post stats.Summary
	for _, pt := range res.Series {
		switch {
		case pt.T < p.FailAt:
			pre.Add(pt.V)
		case pt.T < p.FailAt+9*time.Second:
			dip.Add(pt.V)
		case pt.T > p.JoinAt+15*time.Second:
			post.Add(pt.V)
		}
	}
	res.BaselineMBs = pre.Mean()
	if dip.N() > 0 {
		res.DipMBs = dip.Min()
	}
	res.RecoveredMBs = post.Mean()
	return res, nil
}

// expectedReplicaCount computes how many committed segment replicas full
// replication implies: every segment (index + data) × ReplDeg.
func expectedReplicaCount(env *SorrentoEnv, files []string, anyMount fsapi.System) int {
	// Count distinct committed segments currently in the cluster and scale
	// by the replication degree: after population each segment has ≥1 copy.
	distinct := make(map[string]bool)
	for _, p := range env.Cluster.Providers() {
		for _, seg := range p.Store().Segments() {
			distinct[string(seg[:])] = true
		}
	}
	return len(distinct) * env.ReplDeg
}
