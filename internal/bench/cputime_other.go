//go:build !unix

package bench

// processCPU is unavailable off unix; the harness benchmark falls back to
// wall-clock-only reporting.
func processCPU() (float64, bool) { return 0, false }
