// Package nfssim is the NFS baseline of the paper's evaluation: a single
// kernel-integrated file server. It is modeled as one node with one NIC and
// one disk, a very low per-operation cost (NFS is "highly optimized for
// small I/O operations and tightly integrated with the OS kernel", §4.1.1),
// a per-byte server cost that caps its data throughput around the measured
// ~8 MB/s, and a write-back cache (no synchronous disk writes).
//
// It deliberately has none of Sorrento's distribution: no replication, no
// migration, no failure handling — its single NIC is the bottleneck that
// Figures 10–12 show.
package nfssim

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ServerNode is the NFS server's node ID.
const ServerNode wire.NodeID = "nfs"

// Config tunes the server model.
type Config struct {
	// OpCost is the fixed per-request server cost (paper's sub-ms ops).
	OpCost time.Duration
	// ByteCost is the per-byte server processing cost; 125 ns/B caps the
	// server at ≈8 MB/s as measured in Figure 11.
	ByteCost time.Duration
	// CacheBytes is the write-back cache size; reads beyond it charge the
	// disk. Zero means a large default.
	CacheBytes int64
}

// DefaultConfig matches the paper's measurements.
func DefaultConfig() Config {
	return Config{
		OpCost:     300 * time.Microsecond,
		ByteCost:   125 * time.Nanosecond,
		CacheBytes: 512 << 20,
	}
}

// RPC message types (registered for the TCP transport as well).
type (
	reqCreate struct{ Path string }
	reqMkdir  struct{ Path string }
	reqRemove struct{ Path string }
	reqLookup struct{ Path string }
	reqRead   struct {
		Path string
		Off  int64
		N    int64
	}
	reqWrite struct {
		Path string
		Off  int64
		Data []byte
	}
	respGeneric struct {
		OK   bool
		Err  string
		Size int64
	}
	respRead struct {
		OK   bool
		Err  string
		Data []byte
	}
)

// WireSize implements wire.Sizer so the fabric charges data transfer time.
func (m reqWrite) WireSize() int { return 96 + len(m.Data) }

// WireSize implements wire.Sizer.
func (m respRead) WireSize() int { return 96 + len(m.Data) }

func init() {
	for _, m := range []any{
		reqCreate{}, reqMkdir{}, reqRemove{}, reqLookup{}, reqRead{}, reqWrite{},
		respGeneric{}, respRead{},
	} {
		gob.Register(m)
	}
}

// Server is the NFS server daemon.
type Server struct {
	cfg  Config
	cpu  *simtime.Resource
	disk *disk.Disk

	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewServer joins the fabric as ServerNode.
func NewServer(clock *simtime.Clock, cfg Config, network transport.Network, d *disk.Disk) (*Server, error) {
	def := DefaultConfig()
	if cfg.OpCost <= 0 {
		cfg.OpCost = def.OpCost
	}
	if cfg.ByteCost <= 0 {
		cfg.ByteCost = def.ByteCost
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = def.CacheBytes
	}
	s := &Server{
		cfg:   cfg,
		cpu:   simtime.NewResource(clock, "nfs/cpu"),
		disk:  d,
		files: make(map[string][]byte),
		dirs:  map[string]bool{"/": true},
	}
	if _, err := network.Join(ServerNode, serverHandler{s}); err != nil {
		return nil, err
	}
	return s, nil
}

type serverHandler struct{ s *Server }

func (h serverHandler) HandleCast(wire.NodeID, any) {}

func (h serverHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	s := h.s
	switch m := req.(type) {
	case reqCreate:
		s.charge(0)
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.files[m.Path]; ok {
			return respGeneric{Err: "exists"}, nil
		}
		s.files[m.Path] = nil
		return respGeneric{OK: true}, nil
	case reqMkdir:
		s.charge(0)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.dirs[m.Path] = true
		return respGeneric{OK: true}, nil
	case reqRemove:
		s.charge(0)
		s.mu.Lock()
		defer s.mu.Unlock()
		data, ok := s.files[m.Path]
		if !ok {
			return respGeneric{Err: "not found"}, nil
		}
		delete(s.files, m.Path)
		s.disk.Free(int64(len(data)))
		return respGeneric{OK: true}, nil
	case reqLookup:
		s.charge(0)
		s.mu.Lock()
		defer s.mu.Unlock()
		data, ok := s.files[m.Path]
		if !ok {
			return respGeneric{Err: "not found"}, nil
		}
		return respGeneric{OK: true, Size: int64(len(data))}, nil
	case reqRead:
		s.charge(m.N)
		s.mu.Lock()
		data, ok := s.files[m.Path]
		if !ok {
			s.mu.Unlock()
			return respRead{Err: "not found"}, nil
		}
		if m.Off >= int64(len(data)) {
			s.mu.Unlock()
			return respRead{OK: true}, nil
		}
		end := m.Off + m.N
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		out := append([]byte(nil), data[m.Off:end]...)
		total := int64(len(data))
		s.mu.Unlock()
		// Datasets beyond the cache hit the disk (Figure 11's workloads
		// deliberately exceed memory).
		if s.uncached(total) {
			s.disk.Read(int64(len(out)))
		}
		return respRead{OK: true, Data: out}, nil
	case reqWrite:
		s.charge(int64(len(m.Data)))
		s.mu.Lock()
		data := s.files[m.Path]
		end := m.Off + int64(len(m.Data))
		var grown int64
		if end > int64(len(data)) {
			grown = end - int64(len(data))
			nb := make([]byte, end)
			copy(nb, data)
			data = nb
		}
		copy(data[m.Off:end], m.Data)
		s.files[m.Path] = data
		total := int64(len(data))
		s.mu.Unlock()
		if grown > 0 {
			if err := s.disk.Alloc(grown); err != nil {
				return respGeneric{Err: err.Error()}, nil
			}
		}
		// Write-back: large working sets force synchronous-ish flushes.
		if s.uncached(total) {
			s.disk.Write(int64(len(m.Data)))
		}
		return respGeneric{OK: true, Size: end}, nil
	default:
		return nil, fmt.Errorf("nfssim: unknown request %T", req)
	}
}

// uncached reports whether the server's working set exceeds its cache.
func (s *Server) uncached(fileSize int64) bool {
	return s.disk.Used() > s.cfg.CacheBytes
}

func (s *Server) charge(bytes int64) {
	s.cpu.Use(s.cfg.OpCost + time.Duration(bytes)*s.cfg.ByteCost)
}

// FS is a client mount of the NFS baseline. It implements fsapi.System.
type FS struct {
	ep      transport.Endpoint
	timeout time.Duration
}

// NewFS attaches a client named name to the server.
func NewFS(name string, network transport.Network) (*FS, error) {
	ep, err := network.Join(wire.NodeID(name), nullHandler{})
	if err != nil {
		return nil, err
	}
	return &FS{ep: ep, timeout: 60 * time.Second}, nil
}

type nullHandler struct{}

func (nullHandler) HandleCall(context.Context, wire.NodeID, any) (any, error) {
	return nil, transport.ErrNoHandler
}
func (nullHandler) HandleCast(wire.NodeID, any) {}

func (f *FS) call(req any) (any, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	return f.ep.Call(ctx, ServerNode, req)
}

// Name implements fsapi.System.
func (f *FS) Name() string { return "nfs" }

// Mkdir implements fsapi.System.
func (f *FS) Mkdir(path string) error {
	resp, err := f.call(reqMkdir{Path: path})
	return genErr(resp, err)
}

// Create implements fsapi.System.
func (f *FS) Create(path string) (fsapi.File, error) {
	resp, err := f.call(reqCreate{Path: path})
	if err := genErr(resp, err); err != nil {
		return nil, err
	}
	return &file{fs: f, path: path}, nil
}

// Open implements fsapi.System.
func (f *FS) Open(path string) (fsapi.File, error) { return f.open(path) }

// OpenWrite implements fsapi.System.
func (f *FS) OpenWrite(path string) (fsapi.File, error) { return f.open(path) }

func (f *FS) open(path string) (fsapi.File, error) {
	resp, err := f.call(reqLookup{Path: path})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(respGeneric)
	if !ok || !r.OK {
		return nil, errors.New("nfssim: " + r.Err)
	}
	return &file{fs: f, path: path, size: r.Size}, nil
}

// Remove implements fsapi.System.
func (f *FS) Remove(path string) error {
	resp, err := f.call(reqRemove{Path: path})
	return genErr(resp, err)
}

func genErr(resp any, err error) error {
	if err != nil {
		return err
	}
	r, ok := resp.(respGeneric)
	if !ok {
		return fmt.Errorf("nfssim: unexpected response %T", resp)
	}
	if !r.OK {
		return errors.New("nfssim: " + r.Err)
	}
	return nil
}

type file struct {
	fs   *FS
	path string
	mu   sync.Mutex
	size int64
}

func (h *file) ReadAt(p []byte, off int64) (int, error) {
	resp, err := h.fs.call(reqRead{Path: h.path, Off: off, N: int64(len(p))})
	if err != nil {
		return 0, err
	}
	r, ok := resp.(respRead)
	if !ok || !r.OK {
		return 0, errors.New("nfssim: read: " + r.Err)
	}
	n := copy(p, r.Data)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *file) WriteAt(p []byte, off int64) (int, error) {
	resp, err := h.fs.call(reqWrite{Path: h.path, Off: off, Data: p})
	if err != nil {
		return 0, err
	}
	r, ok := resp.(respGeneric)
	if !ok || !r.OK {
		return 0, errors.New("nfssim: write: " + r.Err)
	}
	h.mu.Lock()
	if r.Size > h.size {
		h.size = r.Size
	}
	h.mu.Unlock()
	return len(p), nil
}

func (h *file) Close() error { return nil }

func (h *file) Size() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.size
}

var _ fsapi.System = (*FS)(nil)
