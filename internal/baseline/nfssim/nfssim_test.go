package nfssim

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

func newDeployment(t *testing.T) (*FS, *simtime.Clock) {
	t.Helper()
	clock := simtime.NewClock(0.001)
	fabric := simnet.New(clock, simnet.FastEthernet())
	d := disk.New(clock, "nfs", disk.SCSI10K(), 32<<30)
	if _, err := NewServer(clock, Config{}, fabric, d); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFS("c1", fabric)
	if err != nil {
		t.Fatal(err)
	}
	return fs, clock
}

func TestCreateWriteReadRemove(t *testing.T) {
	fs, _ := newDeployment(t)
	f, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("nfs payload")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(payload)) {
		t.Errorf("size = %d", g.Size())
	}
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("read %q", buf)
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/a"); err == nil {
		t.Error("open after remove succeeded")
	}
}

func TestDuplicateCreate(t *testing.T) {
	fs, _ := newDeployment(t)
	fs.Create("/a")
	if _, err := fs.Create("/a"); err == nil {
		t.Error("duplicate create succeeded")
	}
}

func TestSparseWriteZeroFills(t *testing.T) {
	fs, _ := newDeployment(t)
	f, _ := fs.Create("/sparse")
	f.WriteAt([]byte("end"), 100)
	buf := make([]byte, 103)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if buf[0] != 0 || string(buf[100:]) != "end" {
		t.Errorf("sparse read = %q", buf)
	}
}

func TestSmallOpLatencyShape(t *testing.T) {
	// NFS small ops must be sub-10ms modeled: the paper measures 0.67–2.9ms.
	fs, clock := newDeployment(t)
	sw := clock.Start()
	const n = 20
	for i := 0; i < n; i++ {
		f, err := fs.Create("/f" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	per := sw.Elapsed() / n
	if per > 15*time.Millisecond {
		t.Errorf("create latency %v modeled, want sub-10ms", per)
	}
}

func TestServerThroughputCap(t *testing.T) {
	// The per-byte cost must cap bulk throughput near 8 MB/s modeled. A
	// coarser time scale keeps modeled costs well above real compute noise
	// (memcpy/GC) for MB-sized payloads.
	clock := simtime.NewClock(0.05)
	fabric := simnet.New(clock, simnet.FastEthernet())
	d := disk.New(clock, "nfs", disk.SCSI10K(), 32<<30)
	if _, err := NewServer(clock, Config{}, fabric, d); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFS("c1", fabric)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create("/bulk")
	payload := make([]byte, 1<<20)
	sw := clock.Start()
	const writes = 8
	for i := 0; i < writes; i++ {
		if _, err := f.WriteAt(payload, int64(i)<<20); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := sw.Elapsed().Seconds()
	rate := float64(writes<<20) / elapsed / 1e6
	if rate > 12 {
		t.Errorf("NFS write rate %.1f MB/s modeled, want ≤ ~8-10", rate)
	}
	if rate < 2 {
		t.Errorf("NFS write rate %.1f MB/s modeled, unexpectedly slow", rate)
	}
}

func TestReadAtEOF(t *testing.T) {
	fs, _ := newDeployment(t)
	f, _ := fs.Create("/x")
	f.WriteAt([]byte("ab"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 2 || err != io.EOF {
		t.Errorf("ReadAt = %d, %v", n, err)
	}
}
