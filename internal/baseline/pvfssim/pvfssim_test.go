package pvfssim

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simtime"
)

func newDeployment(t *testing.T, iods int) (*FS, *simtime.Clock, *simnet.Fabric, *Deployment) {
	t.Helper()
	clock := simtime.NewClock(0.001)
	fabric := simnet.New(clock, simnet.FastEthernet())
	dep, err := New(clock, Config{IODs: iods}, fabric)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFS("c1", fabric, dep)
	if err != nil {
		t.Fatal(err)
	}
	return fs, clock, fabric, dep
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs, _, _, _ := newDeployment(t, 4)
	f, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300<<10) // spans multiple stripes and rows
	rand.New(rand.NewSource(1)).Read(payload)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", g.Size())
	}
	buf := make([]byte, len(payload))
	if _, err := g.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("striped content mismatch")
	}
	// Unaligned mid-file read.
	chunk := make([]byte, 100000)
	if _, err := g.ReadAt(chunk, 12345); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, payload[12345:112345]) {
		t.Fatal("offset read mismatch")
	}
}

func TestStripingDistributesData(t *testing.T) {
	fs, _, _, dep := newDeployment(t, 4)
	f, _ := fs.Create("/spread")
	f.WriteAt(make([]byte, 1<<20), 0)
	f.Close()
	// Every daemon's stripe file should hold ~256 KB.
	for i, n := range dep.IODBytes() {
		if n < 200<<10 || n > 320<<10 {
			t.Errorf("iod %d holds %d bytes, want ~256KB", i, n)
		}
	}
}

func TestRemoveFreesAllStripes(t *testing.T) {
	fs, _, _, dep := newDeployment(t, 4)
	f, _ := fs.Create("/gone")
	f.WriteAt(make([]byte, 1<<20), 0)
	f.Close()
	if err := fs.Remove("/gone"); err != nil {
		t.Fatal(err)
	}
	for i, n := range dep.IODFileCount() {
		if n != 0 {
			t.Errorf("iod %d still holds %d stripe files", i, n)
		}
	}
	if _, err := fs.Open("/gone"); err == nil {
		t.Error("open after remove succeeded")
	}
}

func TestMDSSerializesSmallOps(t *testing.T) {
	// Concurrent creates must queue at the MDS: ~15ms each, so 20 creates
	// from 4 clients take ≥ 250ms modeled.
	fs, clock, fabric, dep := newDeployment(t, 4)
	_ = fs
	clients := make([]*FS, 4)
	for i := range clients {
		c, err := NewFS("cc"+string(rune('0'+i)), fabric, dep)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	sw := clock.Start()
	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *FS) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				f, err := c.Create("/f" + string(rune('0'+ci)) + string(rune('0'+j)))
				if err != nil {
					t.Error(err)
					return
				}
				f.Close()
			}
		}(ci, c)
	}
	wg.Wait()
	if elapsed := sw.Elapsed(); elapsed < 250*time.Millisecond {
		t.Errorf("20 sessions finished in %v modeled; MDS not the bottleneck", elapsed)
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _, _, _ := newDeployment(t, 2)
	f, _ := fs.Create("/e")
	f.WriteAt([]byte("xy"), 0)
	f.Close()
	g, _ := fs.Open("/e")
	buf := make([]byte, 10)
	n, err := g.ReadAt(buf, 0)
	if n != 2 || err != io.EOF {
		t.Errorf("ReadAt = %d %v", n, err)
	}
	if _, err := g.ReadAt(buf, 50); err != io.EOF {
		t.Errorf("far read err = %v", err)
	}
}
