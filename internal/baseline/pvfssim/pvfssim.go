// Package pvfssim is the PVFS baseline of the paper's evaluation: a
// parallel file system with one central metadata server (MDS) and N I/O
// daemons striping file data RAID-0 style. Its characteristic shapes,
// which Figures 9–12 rely on:
//
//   - Bulk I/O scales with I/O nodes and clients (striping across all
//     daemons, no replication) — slightly ahead of Sorrento on writes since
//     Sorrento commits to multiple replicas.
//   - Small-file throughput saturates early (≈64 sessions/s in Figure 10)
//     because every create/open/unlink serializes through the MDS, whose
//     per-op cost is high (each inode is a small file on the MDS).
//   - No replication, no migration, no failure handling.
package pvfssim

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/fsapi"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// MDSNode is the metadata server's node ID.
const MDSNode wire.NodeID = "pvfs-mds"

// IODNode names the i-th I/O daemon.
func IODNode(i int) wire.NodeID { return wire.NodeID(fmt.Sprintf("pvfs-iod%02d", i)) }

// Config tunes the deployment.
type Config struct {
	// IODs is the I/O daemon count (PVFS-n).
	IODs int
	// StripeUnit is the striping block size (PVFS default 64 KB).
	StripeUnit int64
	// MDSOpCost is the metadata server's *serialized* per-op cost — the
	// work that queues concurrent clients. ~7.8 ms reproduces Figure 10's
	// 64 sessions/s saturation (two MDS ops per session).
	MDSOpCost time.Duration
	// MDSPad is the additional per-op client-visible latency that does not
	// serialize (protocol roundtrips, client-side processing). OpCost+Pad
	// ≈ 25 ms reproduces Figure 9's ~50–60 ms two-op latencies.
	MDSPad time.Duration
	// MDSRemovePad is the lighter pad for unlink (Figure 9: ~19 ms).
	MDSRemovePad time.Duration
	// IODOpCost is each I/O daemon's per-request cost.
	IODOpCost time.Duration
	// DiskModel and DiskCapacity describe each I/O daemon's disk.
	DiskModel    disk.Model
	DiskCapacity int64
}

// DefaultConfig returns PVFS-8 with paper-calibrated costs.
func DefaultConfig() Config {
	return Config{
		IODs:         8,
		StripeUnit:   64 << 10,
		MDSOpCost:    7800 * time.Microsecond,
		MDSPad:       17 * time.Millisecond,
		MDSRemovePad: 11 * time.Millisecond,
		IODOpCost:    3 * time.Millisecond,
		DiskModel:    disk.SCSI10K(),
		DiskCapacity: 8 << 30,
	}
}

// Metadata is a file's MDS record.
type Metadata struct {
	FileID     uint64
	Size       int64
	StripeUnit int64
	IODs       int
}

// RPC messages.
type (
	mdsCreate struct{ Path string }
	mdsLookup struct{ Path string }
	mdsRemove struct{ Path string }
	mdsMkdir  struct{ Path string }
	mdsSize   struct {
		Path string
		Size int64
	}
	mdsResp struct {
		OK   bool
		Err  string
		Meta Metadata
	}
	iodRead struct {
		FileID uint64
		Off    int64 // offset within this daemon's stripe file
		N      int64
	}
	iodWrite struct {
		FileID uint64
		Off    int64
		Data   []byte
	}
	iodRemove struct{ FileID uint64 }
	iodResp   struct {
		OK   bool
		Err  string
		Data []byte
	}
)

// WireSize implements wire.Sizer.
func (m iodWrite) WireSize() int { return 96 + len(m.Data) }

// WireSize implements wire.Sizer.
func (m iodResp) WireSize() int { return 96 + len(m.Data) }

func init() {
	for _, m := range []any{
		mdsCreate{}, mdsLookup{}, mdsRemove{}, mdsMkdir{}, mdsSize{}, mdsResp{},
		iodRead{}, iodWrite{}, iodRemove{}, iodResp{},
	} {
		gob.Register(m)
	}
}

// Deployment is a running PVFS instance (MDS + IODs).
type Deployment struct {
	cfg  Config
	mds  *mds
	iods []*iod
}

// IODBytes reports each I/O daemon's stored byte count (diagnostics).
func (d *Deployment) IODBytes() []int64 {
	out := make([]int64, len(d.iods))
	for i, io := range d.iods {
		io.mu.Lock()
		var n int64
		for _, c := range io.chunks {
			n += int64(len(c))
		}
		io.mu.Unlock()
		out[i] = n
	}
	return out
}

// IODFileCount reports how many stripe files each daemon holds.
func (d *Deployment) IODFileCount() []int {
	out := make([]int, len(d.iods))
	for i, io := range d.iods {
		io.mu.Lock()
		out[i] = len(io.chunks)
		io.mu.Unlock()
	}
	return out
}

type mds struct {
	cfg   Config
	cpu   *simtime.Resource
	clock *simtime.Clock

	mu     sync.Mutex
	files  map[string]Metadata
	nextID uint64
}

type iod struct {
	cpu       *simtime.Resource
	disk      *disk.Disk
	cfgOpCost time.Duration

	mu     sync.Mutex
	chunks map[uint64][]byte // fileID → this daemon's stripe file
}

// New starts a deployment on the fabric.
func New(clock *simtime.Clock, cfg Config, network transport.Network) (*Deployment, error) {
	def := DefaultConfig()
	if cfg.IODs <= 0 {
		cfg.IODs = def.IODs
	}
	if cfg.StripeUnit <= 0 {
		cfg.StripeUnit = def.StripeUnit
	}
	if cfg.MDSOpCost <= 0 {
		cfg.MDSOpCost = def.MDSOpCost
	}
	if cfg.MDSPad <= 0 {
		cfg.MDSPad = def.MDSPad
	}
	if cfg.MDSRemovePad <= 0 {
		cfg.MDSRemovePad = def.MDSRemovePad
	}
	if cfg.IODOpCost <= 0 {
		cfg.IODOpCost = def.IODOpCost
	}
	if cfg.DiskModel.TransferRate == 0 {
		cfg.DiskModel = def.DiskModel
	}
	if cfg.DiskCapacity <= 0 {
		cfg.DiskCapacity = def.DiskCapacity
	}
	m := &mds{cfg: cfg, cpu: simtime.NewResource(clock, "pvfs-mds/cpu"), clock: clock, files: make(map[string]Metadata)}
	if _, err := network.Join(MDSNode, mdsHandler{m}); err != nil {
		return nil, err
	}
	dep := &Deployment{cfg: cfg, mds: m}
	for i := 0; i < cfg.IODs; i++ {
		io := &iod{
			cpu:       simtime.NewResource(clock, string(IODNode(i))+"/cpu"),
			disk:      disk.New(clock, string(IODNode(i)), cfg.DiskModel, cfg.DiskCapacity),
			cfgOpCost: cfg.IODOpCost,
			chunks:    make(map[uint64][]byte),
		}
		if _, err := network.Join(IODNode(i), iodHandler{io}); err != nil {
			return nil, err
		}
		dep.iods = append(dep.iods, io)
	}
	return dep, nil
}

type mdsHandler struct{ m *mds }

func (h mdsHandler) HandleCast(wire.NodeID, any) {}

func (h mdsHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	m := h.m
	m.cpu.Use(m.cfg.MDSOpCost)
	// The non-serializing share of the op latency (protocol roundtrips).
	if _, isRemove := req.(mdsRemove); isRemove {
		m.clock.Sleep(m.cfg.MDSRemovePad)
	} else {
		m.clock.Sleep(m.cfg.MDSPad)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch r := req.(type) {
	case mdsCreate:
		if _, ok := m.files[r.Path]; ok {
			return mdsResp{Err: "exists"}, nil
		}
		m.nextID++
		meta := Metadata{FileID: m.nextID, StripeUnit: m.cfg.StripeUnit, IODs: m.cfg.IODs}
		m.files[r.Path] = meta
		return mdsResp{OK: true, Meta: meta}, nil
	case mdsLookup:
		meta, ok := m.files[r.Path]
		if !ok {
			return mdsResp{Err: "not found"}, nil
		}
		return mdsResp{OK: true, Meta: meta}, nil
	case mdsRemove:
		meta, ok := m.files[r.Path]
		if !ok {
			return mdsResp{Err: "not found"}, nil
		}
		delete(m.files, r.Path)
		return mdsResp{OK: true, Meta: meta}, nil
	case mdsMkdir:
		return mdsResp{OK: true}, nil
	case mdsSize:
		meta, ok := m.files[r.Path]
		if !ok {
			return mdsResp{Err: "not found"}, nil
		}
		if r.Size > meta.Size {
			meta.Size = r.Size
			m.files[r.Path] = meta
		}
		return mdsResp{OK: true, Meta: meta}, nil
	default:
		return nil, fmt.Errorf("pvfssim: unknown MDS request %T", req)
	}
}

type iodHandler struct{ io *iod }

func (h iodHandler) HandleCast(wire.NodeID, any) {}

func (h iodHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	d := h.io
	d.cpu.Use(d.cfgOpCost)
	switch r := req.(type) {
	case iodRead:
		d.mu.Lock()
		data := d.chunks[r.FileID]
		var out []byte
		if r.Off < int64(len(data)) {
			end := r.Off + r.N
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			out = append([]byte(nil), data[r.Off:end]...)
		}
		d.mu.Unlock()
		d.disk.Read(r.N)
		return iodResp{OK: true, Data: out}, nil
	case iodWrite:
		d.mu.Lock()
		data := d.chunks[r.FileID]
		end := r.Off + int64(len(r.Data))
		var grown int64
		if end > int64(len(data)) {
			grown = end - int64(len(data))
			nb := make([]byte, end)
			copy(nb, data)
			data = nb
		}
		copy(data[r.Off:end], r.Data)
		d.chunks[r.FileID] = data
		d.mu.Unlock()
		if grown > 0 {
			if err := d.disk.Alloc(grown); err != nil {
				return iodResp{Err: err.Error()}, nil
			}
		}
		d.disk.Write(int64(len(r.Data)))
		return iodResp{OK: true}, nil
	case iodRemove:
		d.mu.Lock()
		freed := int64(len(d.chunks[r.FileID]))
		delete(d.chunks, r.FileID)
		d.mu.Unlock()
		d.disk.Free(freed)
		return iodResp{OK: true}, nil
	default:
		return nil, fmt.Errorf("pvfssim: unknown IOD request %T", req)
	}
}

// FS is a client mount. It implements fsapi.System.
type FS struct {
	dep     *Deployment
	ep      transport.Endpoint
	timeout time.Duration
}

// NewFS attaches a client named name.
func NewFS(name string, network transport.Network, dep *Deployment) (*FS, error) {
	ep, err := network.Join(wire.NodeID(name), nullHandler{})
	if err != nil {
		return nil, err
	}
	return &FS{dep: dep, ep: ep, timeout: 60 * time.Second}, nil
}

type nullHandler struct{}

func (nullHandler) HandleCall(context.Context, wire.NodeID, any) (any, error) {
	return nil, transport.ErrNoHandler
}
func (nullHandler) HandleCast(wire.NodeID, any) {}

func (f *FS) call(to wire.NodeID, req any) (any, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	return f.ep.Call(ctx, to, req)
}

// Name implements fsapi.System.
func (f *FS) Name() string { return fmt.Sprintf("pvfs-%d", f.dep.cfg.IODs) }

// Mkdir implements fsapi.System.
func (f *FS) Mkdir(path string) error {
	_, err := f.call(MDSNode, mdsMkdir{Path: path})
	return err
}

// Create implements fsapi.System.
func (f *FS) Create(path string) (fsapi.File, error) {
	resp, err := f.call(MDSNode, mdsCreate{Path: path})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(mdsResp)
	if !ok || !r.OK {
		return nil, errors.New("pvfssim: create: " + r.Err)
	}
	return &file{fs: f, path: path, meta: r.Meta}, nil
}

// Open implements fsapi.System.
func (f *FS) Open(path string) (fsapi.File, error) { return f.open(path) }

// OpenWrite implements fsapi.System.
func (f *FS) OpenWrite(path string) (fsapi.File, error) { return f.open(path) }

func (f *FS) open(path string) (fsapi.File, error) {
	resp, err := f.call(MDSNode, mdsLookup{Path: path})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(mdsResp)
	if !ok || !r.OK {
		return nil, errors.New("pvfssim: open: " + r.Err)
	}
	return &file{fs: f, path: path, meta: r.Meta}, nil
}

// Remove implements fsapi.System. Every I/O daemon drops its stripe file.
func (f *FS) Remove(path string) error {
	resp, err := f.call(MDSNode, mdsRemove{Path: path})
	if err != nil {
		return err
	}
	r, ok := resp.(mdsResp)
	if !ok || !r.OK {
		return errors.New("pvfssim: remove: " + r.Err)
	}
	var wg sync.WaitGroup
	for i := 0; i < r.Meta.IODs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.call(IODNode(i), iodRemove{FileID: r.Meta.FileID})
		}(i)
	}
	wg.Wait()
	return nil
}

type file struct {
	fs   *FS
	path string
	mu   sync.Mutex
	meta Metadata
}

// piece maps a logical range onto one daemon's stripe file.
type piece struct {
	iod  int
	off  int64
	n    int64
	want int64 // cursor within the logical request
}

func (h *file) pieces(off, n int64) []piece {
	var out []piece
	unit := h.meta.StripeUnit
	count := int64(h.meta.IODs)
	rowBytes := unit * count
	cursor := int64(0)
	for n > 0 {
		row := off / rowBytes
		within := off % rowBytes
		iodIdx := within / unit
		iodOff := row*unit + within%unit
		run := unit - within%unit
		if run > n {
			run = n
		}
		out = append(out, piece{iod: int(iodIdx), off: iodOff, n: run, want: cursor})
		off += run
		n -= run
		cursor += run
	}
	return out
}

// ReadAt stripes the read across the I/O daemons in parallel — the
// aggregated-bandwidth path that makes PVFS scale in Figure 11.
func (h *file) ReadAt(p []byte, off int64) (int, error) {
	h.mu.Lock()
	size := h.meta.Size
	h.mu.Unlock()
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > size {
		n = size - off
		short = true
	}
	ps := h.pieces(off, n)
	errs := make(chan error, len(ps))
	for _, pc := range ps {
		go func(pc piece) {
			resp, err := h.fs.call(IODNode(pc.iod), iodRead{FileID: h.meta.FileID, Off: pc.off, N: pc.n})
			if err != nil {
				errs <- err
				return
			}
			r, ok := resp.(iodResp)
			if !ok || !r.OK {
				errs <- errors.New("pvfssim: read: " + r.Err)
				return
			}
			copy(p[pc.want:pc.want+pc.n], r.Data)
			errs <- nil
		}(pc)
	}
	for range ps {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// WriteAt stripes the write across the I/O daemons in parallel.
func (h *file) WriteAt(p []byte, off int64) (int, error) {
	ps := h.pieces(off, int64(len(p)))
	errs := make(chan error, len(ps))
	for _, pc := range ps {
		go func(pc piece) {
			resp, err := h.fs.call(IODNode(pc.iod), iodWrite{FileID: h.meta.FileID, Off: pc.off, Data: p[pc.want : pc.want+pc.n]})
			if err != nil {
				errs <- err
				return
			}
			r, ok := resp.(iodResp)
			if !ok || !r.OK {
				errs <- errors.New("pvfssim: write: " + r.Err)
				return
			}
			errs <- nil
		}(pc)
	}
	for range ps {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	h.mu.Lock()
	if end := off + int64(len(p)); end > h.meta.Size {
		h.meta.Size = end
	}
	h.mu.Unlock()
	return len(p), nil
}

// Close records the final size at the MDS.
func (h *file) Close() error {
	h.mu.Lock()
	size := h.meta.Size
	h.mu.Unlock()
	resp, err := h.fs.call(MDSNode, mdsSize{Path: h.path, Size: size})
	if err != nil {
		return err
	}
	if r, ok := resp.(mdsResp); !ok || !r.OK {
		return errors.New("pvfssim: close: " + r.Err)
	}
	return nil
}

func (h *file) Size() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meta.Size
}

var _ fsapi.System = (*FS)(nil)
