// Package placement implements Sorrento's load-aware provider selection
// (paper §3.7.1): each candidate provider is weighted by
// w = f_l^α · f_s^(1−α), where the load factor f_l = min{10, 1/l − 1} and
// the storage factor f_s = min{10, log₂(S/s)}, and a provider is drawn at
// random with probability proportional to its weight. α ∈ [0,1] biases the
// choice toward lightly loaded (α→1) or space-rich (α→0) providers.
//
// The same selection is used for placing new segments, choosing new replica
// sites, and picking migration destinations. Home hosts of small segments
// get a 3N weight bias so small-segment reads avoid the extra network hop
// (§3.7.2).
package placement

import (
	"errors"
	"math"
	"math/rand"
	"sync"

	"repro/internal/wire"
)

// factorCap bounds both factors to [0, 10] as in the paper.
const factorCap = 10

// ErrNoCandidates reports that no provider is eligible.
var ErrNoCandidates = errors.New("placement: no eligible candidates")

// LoadFactor computes f_l from a utilization l ∈ [0,1].
func LoadFactor(l float64) float64 {
	if l <= 0 {
		return factorCap
	}
	f := 1/l - 1
	return clamp(f)
}

// StorageFactor computes f_s from available space S and segment size s.
// Unknown segment sizes (s ≤ 0) are treated as one byte, maximizing the
// factor's range; providers lacking space for the segment get 0.
func StorageFactor(S, s int64) float64 {
	if S <= 0 {
		return 0
	}
	if s <= 0 {
		s = 1
	}
	if S < s {
		return 0
	}
	return clamp(math.Log2(float64(S) / float64(s)))
}

// Weight combines the factors: f_l^α · f_s^(1−α).
func Weight(fl, fs, alpha float64) float64 {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	return math.Pow(fl, alpha) * math.Pow(fs, 1-alpha)
}

// Candidate is one provider considered for placement.
type Candidate struct {
	Node wire.NodeID
	// Load is the provider's gossiped CPU/I/O-wait utilization in [0,1].
	Load float64
	// FreeBytes is the provider's available space.
	FreeBytes int64
}

// Options tune one selection.
type Options struct {
	// Alpha is the load/space favoritism (default 0.5 when negative).
	Alpha float64
	// SegSize is the segment's (potential maximum) size; used by f_s.
	SegSize int64
	// Exclude removes nodes from consideration (current replica holders,
	// the migrating source, …).
	Exclude map[wire.NodeID]bool
	// Home, when set together with SmallSegment, multiplies the home
	// host's weight by 3N to keep small segments home-local.
	Home         wire.NodeID
	SmallSegment bool
	// Racks labels candidates' failure domains and ExcludeRacks removes
	// whole racks from consideration (rack-aware replica placement, paper
	// §3.7.2). When the rack filter would leave no candidate, it is
	// dropped — availability beats spread.
	Racks        map[wire.NodeID]string
	ExcludeRacks map[string]bool
}

// Selector draws placement decisions from a seeded source, making tests
// reproducible.
type Selector struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSelector returns a selector seeded with seed.
func NewSelector(seed int64) *Selector {
	return &Selector{rng: rand.New(rand.NewSource(seed))}
}

// Choose picks one provider per the weighted-random scheme.
func (sel *Selector) Choose(cands []Candidate, opts Options) (wire.NodeID, error) {
	weights, eligible := weigh(cands, opts)
	if len(eligible) == 0 && len(opts.ExcludeRacks) > 0 {
		// No candidate outside the excluded racks: drop the rack filter
		// rather than fail the placement.
		relaxed := opts
		relaxed.ExcludeRacks = nil
		weights, eligible = weigh(cands, relaxed)
	}
	if len(eligible) == 0 {
		return "", ErrNoCandidates
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	sel.mu.Lock()
	defer sel.mu.Unlock()
	if total <= 0 {
		// All weights zero (e.g. every provider saturated): uniform draw
		// keeps the system making progress.
		return eligible[sel.rng.Intn(len(eligible))], nil
	}
	x := sel.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return eligible[i], nil
		}
	}
	return eligible[len(eligible)-1], nil
}

// ChooseUniform picks uniformly at random among non-excluded candidates —
// the Sorrento-random baseline of Figure 14.
func (sel *Selector) ChooseUniform(cands []Candidate, exclude map[wire.NodeID]bool) (wire.NodeID, error) {
	var eligible []wire.NodeID
	for _, c := range cands {
		if exclude[c.Node] {
			continue
		}
		eligible = append(eligible, c.Node)
	}
	if len(eligible) == 0 {
		return "", ErrNoCandidates
	}
	sel.mu.Lock()
	defer sel.mu.Unlock()
	return eligible[sel.rng.Intn(len(eligible))], nil
}

// weigh computes the weight of each eligible candidate.
func weigh(cands []Candidate, opts Options) ([]float64, []wire.NodeID) {
	alpha := opts.Alpha
	if alpha < 0 {
		alpha = 0.5
	}
	weights := make([]float64, 0, len(cands))
	eligible := make([]wire.NodeID, 0, len(cands))
	n := len(cands)
	for _, c := range cands {
		if opts.Exclude[c.Node] {
			continue
		}
		if len(opts.ExcludeRacks) > 0 {
			if rack, ok := opts.Racks[c.Node]; ok && opts.ExcludeRacks[rack] {
				continue
			}
		}
		w := Weight(LoadFactor(c.Load), StorageFactor(c.FreeBytes, opts.SegSize), alpha)
		if opts.SmallSegment && opts.Home != "" && c.Node == opts.Home {
			w *= 3 * float64(n)
		}
		weights = append(weights, w)
		eligible = append(eligible, c.Node)
	}
	return weights, eligible
}

// Weights exposes the computed weights for diagnostics and tests.
func Weights(cands []Candidate, opts Options) map[wire.NodeID]float64 {
	weights, eligible := weigh(cands, opts)
	out := make(map[wire.NodeID]float64, len(eligible))
	for i, n := range eligible {
		out[n] = weights[i]
	}
	return out
}

func clamp(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > factorCap {
		return factorCap
	}
	return f
}
