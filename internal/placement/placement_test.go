package placement

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestLoadFactorFormula(t *testing.T) {
	cases := []struct{ l, want float64 }{
		{0, 10},    // idle: capped at 10
		{0.05, 10}, // 1/0.05-1 = 19 → capped
		{0.5, 1},   // 1/0.5-1 = 1
		{0.25, 3},  // 1/0.25-1 = 3
		{1, 0},     // saturated
		{1.5, 0},   // clamped below
	}
	for _, c := range cases {
		if got := LoadFactor(c.l); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LoadFactor(%v) = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestStorageFactorFormula(t *testing.T) {
	cases := []struct {
		S, s int64
		want float64
	}{
		{1024, 1024, 0},  // log2(1) = 0
		{4096, 1024, 2},  // log2(4) = 2
		{1 << 40, 1, 10}, // capped
		{100, 200, 0},    // not enough space
		{0, 100, 0},
	}
	for _, c := range cases {
		if got := StorageFactor(c.S, c.s); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("StorageFactor(%d,%d) = %v, want %v", c.S, c.s, got, c.want)
		}
	}
}

func TestStorageFactorUnknownSize(t *testing.T) {
	if got := StorageFactor(2048, 0); got != 10 {
		t.Errorf("StorageFactor(2048, unknown) = %v, want capped 10", got)
	}
}

func TestWeightEndpoints(t *testing.T) {
	// α=1: pure load factor; α=0: pure storage factor.
	if got := Weight(4, 9, 1); got != 4 {
		t.Errorf("Weight α=1: %v", got)
	}
	if got := Weight(4, 9, 0); got != 9 {
		t.Errorf("Weight α=0: %v", got)
	}
	if got := Weight(4, 9, 0.5); math.Abs(got-6) > 1e-9 {
		t.Errorf("Weight α=0.5: %v, want 6 (geometric mean)", got)
	}
}

func TestWeightClampsAlpha(t *testing.T) {
	if Weight(4, 9, -1) != Weight(4, 9, 0) || Weight(4, 9, 2) != Weight(4, 9, 1) {
		t.Error("alpha not clamped")
	}
}

func TestWeightNonNegative(t *testing.T) {
	f := func(l float64, s int64, alpha float64) bool {
		w := Weight(LoadFactor(math.Abs(l)), StorageFactor(s, 1024), math.Mod(math.Abs(alpha), 1))
		return w >= 0 && !math.IsNaN(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func someCands() []Candidate {
	return []Candidate{
		{Node: "idle", Load: 0.05, FreeBytes: 1 << 30},
		{Node: "busy", Load: 0.95, FreeBytes: 1 << 30},
		{Node: "full", Load: 0.05, FreeBytes: 1 << 10},
	}
}

func TestChoosePrefersIdleRoomyNodes(t *testing.T) {
	sel := NewSelector(1)
	counts := map[wire.NodeID]int{}
	for i := 0; i < 2000; i++ {
		n, err := sel.Choose(someCands(), Options{Alpha: 0.5, SegSize: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	if counts["idle"] < counts["busy"]*3 {
		t.Errorf("idle=%d busy=%d: load-aware selection not favoring idle", counts["idle"], counts["busy"])
	}
	if counts["full"] != 0 {
		// full has less space than the segment → storage factor 0 → weight 0.
		t.Errorf("full node chosen %d times despite zero weight", counts["full"])
	}
}

func TestAlphaBiasesChoice(t *testing.T) {
	sel := NewSelector(2)
	cands := []Candidate{
		{Node: "light-full", Load: 0.1, FreeBytes: 2 << 20}, // light load, little space
		{Node: "heavy-roomy", Load: 0.8, FreeBytes: 1 << 40},
	}
	countAt := func(alpha float64) map[wire.NodeID]int {
		counts := map[wire.NodeID]int{}
		for i := 0; i < 2000; i++ {
			n, _ := sel.Choose(cands, Options{Alpha: alpha, SegSize: 1 << 20})
			counts[n]++
		}
		return counts
	}
	highAlpha := countAt(0.9) // favors load → light-full
	lowAlpha := countAt(0.1)  // favors space → heavy-roomy
	if highAlpha["light-full"] <= highAlpha["heavy-roomy"] {
		t.Errorf("α=0.9 picked light-full %d vs heavy-roomy %d", highAlpha["light-full"], highAlpha["heavy-roomy"])
	}
	if lowAlpha["heavy-roomy"] <= lowAlpha["light-full"] {
		t.Errorf("α=0.1 picked heavy-roomy %d vs light-full %d", lowAlpha["heavy-roomy"], lowAlpha["light-full"])
	}
}

func TestExcludeRespected(t *testing.T) {
	sel := NewSelector(3)
	for i := 0; i < 500; i++ {
		n, err := sel.Choose(someCands(), Options{
			Alpha:   0.5,
			SegSize: 1 << 20,
			Exclude: map[wire.NodeID]bool{"idle": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == "idle" {
			t.Fatal("excluded node chosen")
		}
	}
}

func TestAllExcluded(t *testing.T) {
	sel := NewSelector(4)
	_, err := sel.Choose(someCands(), Options{
		Exclude: map[wire.NodeID]bool{"idle": true, "busy": true, "full": true},
	})
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoCandidates(t *testing.T) {
	sel := NewSelector(5)
	if _, err := sel.Choose(nil, Options{}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestAllSaturatedFallsBackToUniform(t *testing.T) {
	sel := NewSelector(6)
	cands := []Candidate{
		{Node: "a", Load: 1, FreeBytes: 10},
		{Node: "b", Load: 1, FreeBytes: 10},
	}
	counts := map[wire.NodeID]int{}
	for i := 0; i < 1000; i++ {
		n, err := sel.Choose(cands, Options{Alpha: 0.5, SegSize: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Errorf("uniform fallback skewed: %v", counts)
	}
}

func TestHomeBiasForSmallSegments(t *testing.T) {
	sel := NewSelector(7)
	cands := make([]Candidate, 8)
	for i := range cands {
		cands[i] = Candidate{Node: wire.NodeID(string(rune('a' + i))), Load: 0.3, FreeBytes: 1 << 30}
	}
	counts := map[wire.NodeID]int{}
	for i := 0; i < 4000; i++ {
		n, _ := sel.Choose(cands, Options{Alpha: 0.5, SegSize: 4096, Home: "c", SmallSegment: true})
		counts[n]++
	}
	// Home weight ×3N=24: expect c to win ~24/31 of draws.
	if counts["c"] < 2400 {
		t.Errorf("home host chosen only %d/4000 times", counts["c"])
	}
	// Without the small-segment flag, no bias.
	counts = map[wire.NodeID]int{}
	for i := 0; i < 4000; i++ {
		n, _ := sel.Choose(cands, Options{Alpha: 0.5, SegSize: 4096, Home: "c"})
		counts[n]++
	}
	if counts["c"] > 1500 {
		t.Errorf("home bias applied without SmallSegment: %d/4000", counts["c"])
	}
}

func TestChooseUniform(t *testing.T) {
	sel := NewSelector(8)
	counts := map[wire.NodeID]int{}
	for i := 0; i < 3000; i++ {
		n, err := sel.ChooseUniform(someCands(), nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	for node, c := range counts {
		if c < 700 || c > 1400 {
			t.Errorf("uniform draw skewed: %v=%d", node, c)
		}
	}
	if _, err := sel.ChooseUniform(nil, nil); !errors.Is(err, ErrNoCandidates) {
		t.Error("empty uniform choice did not fail")
	}
}

func TestWeightsDiagnostics(t *testing.T) {
	w := Weights(someCands(), Options{Alpha: 0.5, SegSize: 1 << 20})
	if len(w) != 3 {
		t.Fatalf("weights = %v", w)
	}
	if w["full"] != 0 {
		t.Errorf("full weight = %v, want 0", w["full"])
	}
	if w["idle"] <= w["busy"] {
		t.Errorf("idle %v <= busy %v", w["idle"], w["busy"])
	}
}

func TestDefaultAlphaWhenNegative(t *testing.T) {
	w1 := Weights(someCands(), Options{Alpha: -1, SegSize: 1 << 20})
	w2 := Weights(someCands(), Options{Alpha: 0.5, SegSize: 1 << 20})
	for n := range w1 {
		if math.Abs(w1[n]-w2[n]) > 1e-12 {
			t.Errorf("negative alpha did not default to 0.5: %v vs %v", w1, w2)
		}
	}
}

func TestRackExclusion(t *testing.T) {
	sel := NewSelector(11)
	cands := []Candidate{
		{Node: "a1", Load: 0.3, FreeBytes: 1 << 30},
		{Node: "a2", Load: 0.3, FreeBytes: 1 << 30},
		{Node: "b1", Load: 0.3, FreeBytes: 1 << 30},
	}
	racks := map[wire.NodeID]string{"a1": "rackA", "a2": "rackA", "b1": "rackB"}
	for i := 0; i < 200; i++ {
		n, err := sel.Choose(cands, Options{
			Alpha: 0.5, SegSize: 1 << 20,
			Racks: racks, ExcludeRacks: map[string]bool{"rackA": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != "b1" {
			t.Fatalf("picked %v from an excluded rack", n)
		}
	}
}

func TestRackExclusionFallsBackWhenImpossible(t *testing.T) {
	sel := NewSelector(12)
	cands := []Candidate{
		{Node: "a1", Load: 0.3, FreeBytes: 1 << 30},
		{Node: "a2", Load: 0.3, FreeBytes: 1 << 30},
	}
	racks := map[wire.NodeID]string{"a1": "rackA", "a2": "rackA"}
	// Every candidate lives on the excluded rack: availability wins and
	// the filter is dropped.
	n, err := sel.Choose(cands, Options{
		Alpha: 0.5, SegSize: 1 << 20,
		Racks: racks, ExcludeRacks: map[string]bool{"rackA": true},
	})
	if err != nil || (n != "a1" && n != "a2") {
		t.Fatalf("fallback failed: %v %v", n, err)
	}
}

func TestUnlabeledNodesPassRackFilter(t *testing.T) {
	sel := NewSelector(13)
	cands := []Candidate{
		{Node: "labeled", Load: 0.3, FreeBytes: 1 << 30},
		{Node: "unlabeled", Load: 0.3, FreeBytes: 1 << 30},
	}
	racks := map[wire.NodeID]string{"labeled": "rackA"}
	for i := 0; i < 100; i++ {
		n, err := sel.Choose(cands, Options{
			Alpha: 0.5, SegSize: 1 << 20,
			Racks: racks, ExcludeRacks: map[string]bool{"rackA": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != "unlabeled" {
			t.Fatalf("labeled excluded node chosen: %v", n)
		}
	}
}
