package locate

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func newTable() (*Table, *simtime.Clock) {
	clock := simtime.NewClock(0.0001)
	return NewTable(clock), clock
}

func entry(seg ids.SegID, ver uint64, repl int) wire.LocEntry {
	return wire.LocEntry{Seg: seg, Version: ver, Size: 100, ReplDeg: repl}
}

func TestUpdateAndOwners(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 1, 2), false)
	tbl.Update("p2", entry(seg, 2, 2), false)
	owners := tbl.Owners(seg)
	if len(owners) != 2 {
		t.Fatalf("owners = %v", owners)
	}
	if owners[0].Node != "p2" || owners[0].Version != 2 {
		t.Errorf("newest-first ordering broken: %v", owners)
	}
}

func TestUpdateRemove(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 1, 1), false)
	tbl.Update("p1", entry(seg, 1, 1), true)
	if got := tbl.Owners(seg); got != nil {
		t.Errorf("owners after removal = %v", got)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestRefreshBatch(t *testing.T) {
	tbl, _ := newTable()
	a, b := ids.New(), ids.New()
	tbl.Refresh("p1", []wire.LocEntry{entry(a, 1, 1), entry(b, 3, 2)})
	if len(tbl.Owners(a)) != 1 || len(tbl.Owners(b)) != 1 {
		t.Error("refresh did not install entries")
	}
	if tbl.Owners(b)[0].Version != 3 {
		t.Error("version lost in refresh")
	}
}

func TestRemoveOwner(t *testing.T) {
	tbl, _ := newTable()
	a, b := ids.New(), ids.New()
	tbl.Update("p1", entry(a, 1, 2), false)
	tbl.Update("p2", entry(a, 1, 2), false)
	tbl.Update("p1", entry(b, 1, 1), false)
	affected := tbl.RemoveOwner("p1")
	if len(affected) != 2 {
		t.Fatalf("affected = %v", affected)
	}
	if len(tbl.Owners(a)) != 1 || tbl.Owners(a)[0].Node != "p2" {
		t.Errorf("a owners = %v", tbl.Owners(a))
	}
	if tbl.Owners(b) != nil {
		t.Errorf("b owners = %v", tbl.Owners(b))
	}
}

func TestPurgeGarbage(t *testing.T) {
	tbl, clock := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 1, 1), false)
	clock.Sleep(10 * time.Second)
	tbl.Update("p2", entry(seg, 1, 1), false)
	if n := tbl.PurgeGarbage(5 * time.Second); n != 1 {
		t.Fatalf("purged %d, want 1 (p1 stale)", n)
	}
	owners := tbl.Owners(seg)
	if len(owners) != 1 || owners[0].Node != "p2" {
		t.Errorf("owners after purge = %v", owners)
	}
}

func TestScanDetectsStaleReplicas(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 2, 2), false)
	tbl.Update("p2", entry(seg, 1, 2), false)
	acts := tbl.Scan(nil)
	if len(acts) != 1 {
		t.Fatalf("actions = %+v", acts)
	}
	a := acts[0]
	if a.Latest != 2 || a.Source != "p1" || len(a.Stale) != 1 || a.Stale[0] != "p2" {
		t.Errorf("action = %+v", a)
	}
	if a.Deficit != 1 {
		// 2 owners but only 1 up to date: deficit 1 until p2 syncs.
		t.Errorf("deficit = %d, want 1", a.Deficit)
	}
}

func TestScanDetectsUnderReplication(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 1, 3), false)
	acts := tbl.Scan(nil)
	if len(acts) != 1 || acts[0].Deficit != 2 {
		t.Fatalf("actions = %+v", acts)
	}
	if len(acts[0].CurrentOwners) != 1 || acts[0].CurrentOwners[0] != "p1" {
		t.Errorf("owners = %v", acts[0].CurrentOwners)
	}
}

func TestScanHealthySegmentSilent(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 2, 2), false)
	tbl.Update("p2", entry(seg, 2, 2), false)
	if acts := tbl.Scan(nil); len(acts) != 0 {
		t.Errorf("healthy segment produced actions: %+v", acts)
	}
}

func TestScanIgnoresDeadOwners(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 2, 2), false)
	tbl.Update("p2", entry(seg, 2, 2), false)
	live := func(n wire.NodeID) bool { return n != "p2" }
	acts := tbl.Scan(live)
	if len(acts) != 1 || acts[0].Deficit != 1 {
		t.Fatalf("actions with dead p2 = %+v", acts)
	}
}

func TestScanAllOwnersDead(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	tbl.Update("p1", entry(seg, 2, 2), false)
	acts := tbl.Scan(func(wire.NodeID) bool { return false })
	if len(acts) != 0 {
		t.Errorf("actions with no live owner = %+v", acts)
	}
}

func TestGroupByHome(t *testing.T) {
	a, b, c := ids.New(), ids.New(), ids.New()
	homes := map[ids.SegID]wire.NodeID{a: "h1", b: "h2", c: "h1"}
	got := GroupByHome(
		[]wire.LocEntry{entry(a, 1, 1), entry(b, 1, 1), entry(c, 1, 1)},
		func(s ids.SegID) wire.NodeID { return homes[s] },
	)
	if len(got["h1"]) != 2 || len(got["h2"]) != 1 {
		t.Errorf("grouping = %v", got)
	}
}

func TestGroupByHomeSkipsUnhomed(t *testing.T) {
	got := GroupByHome([]wire.LocEntry{entry(ids.New(), 1, 1)}, func(ids.SegID) wire.NodeID { return "" })
	if len(got) != 0 {
		t.Errorf("unhomed entries grouped: %v", got)
	}
}

func TestLocalityThresholdPropagates(t *testing.T) {
	tbl, _ := newTable()
	seg := ids.New()
	e := entry(seg, 1, 1)
	e.LocalityThreshold = 0.7
	tbl.Update("p1", e, false)
	// Make the record need repair so Scan reports it.
	e2 := entry(seg, 1, 3)
	tbl.Update("p1", e2, false)
	acts := tbl.Scan(nil)
	if len(acts) != 1 || acts[0].LocalityThreshold != 0.7 {
		t.Errorf("threshold lost: %+v", acts)
	}
}
