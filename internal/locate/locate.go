// Package locate implements a provider's location table (paper §3.4): the
// soft-state map from SegIDs to their owners that the segment's home host
// maintains. Owners push entries via periodic content refreshing and
// event-driven updates; entries age out when no longer refreshed (garbage
// after a home-host change). The table also surfaces the version
// discrepancies and replication deficits that drive lazy replica
// synchronization and repair (§3.6).
package locate

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/simtime"
	"repro/internal/wire"
)

type ownerRec struct {
	version     uint64
	size        int64
	lastRefresh time.Duration // modeled time
}

type segRec struct {
	owners            map[wire.NodeID]*ownerRec
	replDeg           int
	localityThreshold float64
}

// Table is the location table of one home host.
type Table struct {
	clock *simtime.Clock

	mu   sync.Mutex
	segs map[ids.SegID]*segRec
}

// NewTable returns an empty location table.
func NewTable(clock *simtime.Clock) *Table {
	return &Table{clock: clock, segs: make(map[ids.SegID]*segRec)}
}

// Update applies a single-segment fast-path update (creation, deletion,
// version advance; paper §3.4.1 event 4).
func (t *Table) Update(from wire.NodeID, e wire.LocEntry, removed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if removed {
		if rec, ok := t.segs[e.Seg]; ok {
			delete(rec.owners, from)
			if len(rec.owners) == 0 {
				delete(t.segs, e.Seg)
			}
		}
		return
	}
	t.insertLocked(from, e)
}

// Refresh applies a batch content refresh from one owner (event 1).
func (t *Table) Refresh(from wire.NodeID, entries []wire.LocEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range entries {
		t.insertLocked(from, e)
	}
}

func (t *Table) insertLocked(from wire.NodeID, e wire.LocEntry) {
	rec, ok := t.segs[e.Seg]
	if !ok {
		rec = &segRec{owners: make(map[wire.NodeID]*ownerRec)}
		t.segs[e.Seg] = rec
	}
	if e.ReplDeg > 0 {
		rec.replDeg = e.ReplDeg
	}
	if e.LocalityThreshold > 0 {
		rec.localityThreshold = e.LocalityThreshold
	}
	o, ok := rec.owners[from]
	if !ok {
		o = &ownerRec{}
		rec.owners[from] = o
	}
	o.version = e.Version
	o.size = e.Size
	o.lastRefresh = t.clock.Now()
}

// Owners returns the known owners of a segment, newest version first
// (ties broken by node name for determinism).
func (t *Table) Owners(seg ids.SegID) []wire.OwnerInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.segs[seg]
	if !ok {
		return nil
	}
	out := make([]wire.OwnerInfo, 0, len(rec.owners))
	for n, o := range rec.owners {
		out = append(out, wire.OwnerInfo{Node: n, Version: o.version})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Version != out[j].Version {
			return out[i].Version > out[j].Version
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// RemoveOwner drops every entry contributed by a departed node (event 3)
// and returns the segments that lost an owner.
func (t *Table) RemoveOwner(node wire.NodeID) []ids.SegID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var affected []ids.SegID
	for seg, rec := range t.segs {
		if _, ok := rec.owners[node]; ok {
			delete(rec.owners, node)
			affected = append(affected, seg)
			if len(rec.owners) == 0 {
				delete(t.segs, seg)
			}
		}
	}
	return affected
}

// PurgeGarbage evicts owner entries not refreshed within maxAge — the aging
// scheme that reclaims entries this node is no longer the home host for.
// It returns how many owner entries were purged.
func (t *Table) PurgeGarbage(maxAge time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	cutoff := t.clock.Now() - maxAge
	n := 0
	for seg, rec := range t.segs {
		for node, o := range rec.owners {
			if o.lastRefresh < cutoff {
				delete(rec.owners, node)
				n++
			}
		}
		if len(rec.owners) == 0 {
			delete(t.segs, seg)
		}
	}
	return n
}

// SyncAction describes replica maintenance the home host should trigger.
type SyncAction struct {
	Seg               ids.SegID
	Latest            uint64
	Source            wire.NodeID   // an owner holding the latest version
	Stale             []wire.NodeID // owners behind Latest → send SyncNotify
	Deficit           int           // missing replicas → choose new sites
	CurrentOwners     []wire.NodeID // all owners (exclusion set for placement)
	Size              int64
	ReplDeg           int
	LocalityThreshold float64
}

// Scan inspects every tracked segment and reports the sync/repair work:
// owners with stale versions and segments below their replication degree
// (paper §3.6). liveFn filters owners to currently-live nodes so repair
// does not count dead replicas.
func (t *Table) Scan(liveFn func(wire.NodeID) bool) []SyncAction {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SyncAction
	for seg, rec := range t.segs {
		if act, ok := scanRec(seg, rec, liveFn); ok {
			out = append(out, act)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seg.Less(out[j].Seg) })
	return out
}

// ScanSeg evaluates one segment's sync/repair needs — the fast path run
// right after a location update so replica propagation starts immediately
// (Figure 6 steps 10–12) rather than waiting for the periodic scan.
func (t *Table) ScanSeg(seg ids.SegID, liveFn func(wire.NodeID) bool) (SyncAction, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.segs[seg]
	if !ok {
		return SyncAction{}, false
	}
	return scanRec(seg, rec, liveFn)
}

func scanRec(seg ids.SegID, rec *segRec, liveFn func(wire.NodeID) bool) (SyncAction, bool) {
	var latest uint64
	for node, o := range rec.owners {
		if liveFn != nil && !liveFn(node) {
			continue
		}
		if o.version > latest {
			latest = o.version
		}
	}
	if latest == 0 {
		return SyncAction{}, false
	}
	act := SyncAction{Seg: seg, Latest: latest, ReplDeg: rec.replDeg, LocalityThreshold: rec.localityThreshold}
	liveOwners := 0
	for node, o := range rec.owners {
		if liveFn != nil && !liveFn(node) {
			continue
		}
		liveOwners++
		act.CurrentOwners = append(act.CurrentOwners, node)
		if o.version == latest {
			if act.Source == "" || node < act.Source {
				act.Source = node
				act.Size = o.size
			}
		} else {
			act.Stale = append(act.Stale, node)
		}
	}
	sort.Slice(act.CurrentOwners, func(i, j int) bool { return act.CurrentOwners[i] < act.CurrentOwners[j] })
	sort.Slice(act.Stale, func(i, j int) bool { return act.Stale[i] < act.Stale[j] })
	upToDate := liveOwners - len(act.Stale)
	if rec.replDeg > upToDate {
		act.Deficit = rec.replDeg - upToDate
	}
	return act, len(act.Stale) > 0 || act.Deficit > 0
}

// Len returns the number of tracked segments.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.segs)
}

// GroupByHome buckets entries by their home host, for building the periodic
// refresh batches an owner sends (complexity proportional to the list size,
// as the paper requires).
func GroupByHome(entries []wire.LocEntry, homeOf func(ids.SegID) wire.NodeID) map[wire.NodeID][]wire.LocEntry {
	out := make(map[wire.NodeID][]wire.LocEntry)
	for _, e := range entries {
		h := homeOf(e.Seg)
		if h == "" {
			continue
		}
		out[h] = append(out[h], e)
	}
	return out
}
