package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewUnique(t *testing.T) {
	const n = 100000
	seen := make(map[SegID]bool, n)
	g := NewGenerator()
	for i := 0; i < n; i++ {
		id := g.New()
		if seen[id] {
			t.Fatalf("duplicate SegID after %d draws: %s", i, id)
		}
		seen[id] = true
	}
}

func TestNewUniqueConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 20000
	)
	g := NewGenerator()
	var mu sync.Mutex
	seen := make(map[SegID]bool, workers*perW)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]SegID, 0, perW)
			for i := 0; i < perW; i++ {
				local = append(local, g.New())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate SegID %s", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestDefaultGenerator(t *testing.T) {
	a, b := New(), New()
	if a == b {
		t.Fatalf("default generator returned duplicate: %s", a)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		id := SegID(raw)
		got, err := Parse(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "abc", "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", "0123456789abcdef0123456789abcde"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if New().IsZero() {
		t.Error("fresh SegID reported zero")
	}
}

func TestLessTotalOrder(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := SegID(a), SegID(b)
		switch {
		case x == y:
			return !x.Less(y) && !y.Less(x)
		default:
			return x.Less(y) != y.Less(x)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShort(t *testing.T) {
	id := New()
	if got := id.Short(); len(got) != 8 || id.String()[:8] != got {
		t.Errorf("Short() = %q, want first 8 digits of %q", got, id)
	}
}
