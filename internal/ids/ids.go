// Package ids implements the 128-bit location-independent identifiers used
// throughout Sorrento. Per the paper (§3.2), SegIDs "can be generated locally
// with little chance of collision by combining a machine's MAC address, its
// internal high-resolution timer, and random seeds". A logical file's FileID
// is the SegID of its index segment.
package ids

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// SegID is a 128-bit location-independent segment identifier.
type SegID [16]byte

// FileID identifies a logical file. It equals the SegID of the file's index
// segment (paper §3.2), so the two types are interconvertible.
type FileID = SegID

// Zero is the all-zero SegID, used as the "no segment" sentinel.
var Zero SegID

// Generator produces SegIDs. Each Generator seeds itself from the host MAC
// address (or random bytes when none is available), the high-resolution
// timer, and a random nonce; a per-generator counter guarantees uniqueness
// within a process even when the clock does not advance between calls.
type Generator struct {
	node    [6]byte // MAC address or random
	nonce   uint32
	counter atomic.Uint64
}

var (
	defaultGen     *Generator
	defaultGenOnce sync.Once
)

// NewGenerator returns a Generator seeded from the host's hardware address
// and cryptographic randomness.
func NewGenerator() *Generator {
	g := &Generator{}
	copy(g.node[:], hostNode())
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err == nil {
		g.nonce = binary.BigEndian.Uint32(buf[:])
	}
	return g
}

// New returns a fresh SegID from the process-wide default generator.
func New() SegID {
	defaultGenOnce.Do(func() { defaultGen = NewGenerator() })
	return defaultGen.New()
}

// New returns a fresh SegID. Layout: 6 bytes node | 4 bytes nonce |
// 8 bytes (timer ^ counter). The exact layout is an implementation detail;
// only uniqueness matters.
func (g *Generator) New() SegID {
	var id SegID
	copy(id[0:6], g.node[:])
	binary.BigEndian.PutUint32(id[6:10], g.nonce)
	t := uint64(time.Now().UnixNano())
	c := g.counter.Add(1)
	binary.BigEndian.PutUint64(id[8:16], t<<16^c)
	// Mixing the counter into the low bytes keeps IDs unique even when the
	// timer resolution is coarse; bytes 8..9 overlap the nonce on purpose to
	// spread entropy across the hash input.
	return id
}

// IsZero reports whether id is the zero sentinel.
func (id SegID) IsZero() bool { return id == Zero }

// String renders the SegID as 32 lowercase hex digits.
func (id SegID) String() string { return hex.EncodeToString(id[:]) }

// Short returns the first 8 hex digits, for logs.
func (id SegID) Short() string { return hex.EncodeToString(id[:4]) }

// Parse decodes a 32-hex-digit string produced by String.
func Parse(s string) (SegID, error) {
	var id SegID
	if len(s) != 32 {
		return Zero, fmt.Errorf("ids: bad SegID length %d (want 32 hex digits)", len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("ids: bad SegID %q: %w", s, err)
	}
	copy(id[:], b)
	return id, nil
}

// Less reports whether id sorts before other; SegIDs order lexicographically
// by byte, which gives a stable total order for tables and tests.
func (id SegID) Less(other SegID) bool {
	for i := range id {
		if id[i] != other[i] {
			return id[i] < other[i]
		}
	}
	return false
}

func hostNode() []byte {
	ifs, err := net.Interfaces()
	if err == nil {
		for _, ifc := range ifs {
			if len(ifc.HardwareAddr) >= 6 && ifc.Flags&net.FlagLoopback == 0 {
				return ifc.HardwareAddr[:6]
			}
		}
	}
	b := make([]byte, 6)
	if _, err := rand.Read(b); err != nil {
		binary.BigEndian.PutUint32(b, uint32(time.Now().UnixNano()))
	}
	// Set the locally-administered bit as RFC 4122 does for random node IDs.
	b[0] |= 0x02
	return b
}
