package migration

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/wire"
)

func flatCluster(n int, io, used float64) []NodeStat {
	out := make([]NodeStat, n)
	for i := range out {
		out[i] = NodeStat{ID: wire.NodeID(rune('a' + i)), IOLoad: io, UsedFrac: used}
	}
	return out
}

func TestDecideNoTriggerWhenBalanced(t *testing.T) {
	cluster := flatCluster(10, 0.5, 0.5)
	if got := Decide(cluster[0], cluster); got != None {
		t.Errorf("balanced cluster triggered %v", got)
	}
}

func TestDecideIOTrigger(t *testing.T) {
	cluster := flatCluster(10, 0.2, 0.5)
	cluster[0].IOLoad = 0.95
	if got := Decide(cluster[0], cluster); got != IOLoad {
		t.Errorf("io outlier triggered %v", got)
	}
	// A non-outlier node must not trigger.
	if got := Decide(cluster[1], cluster); got != None {
		t.Errorf("normal node triggered %v", got)
	}
}

func TestDecideSpaceTrigger(t *testing.T) {
	cluster := flatCluster(10, 0.5, 0.2)
	cluster[3].UsedFrac = 0.95
	if got := Decide(cluster[3], cluster); got != Space {
		t.Errorf("space outlier triggered %v", got)
	}
}

func TestDecideIOWinsOverSpace(t *testing.T) {
	cluster := flatCluster(10, 0.2, 0.2)
	cluster[0].IOLoad = 0.95
	cluster[0].UsedFrac = 0.95
	if got := Decide(cluster[0], cluster); got != IOLoad {
		t.Errorf("double outlier triggered %v, want IOLoad priority", got)
	}
}

func TestDecideTopTenPercentRequired(t *testing.T) {
	// Half the cluster is hot: a hot node is above 3σ of nothing — the
	// spread is wide, so no node should be an outlier.
	cluster := flatCluster(10, 0.2, 0.5)
	for i := 0; i < 5; i++ {
		cluster[i].IOLoad = 0.9
	}
	if got := Decide(cluster[0], cluster); got != None {
		t.Errorf("node in wide spread triggered %v", got)
	}
}

func TestDecideSingleNodeCluster(t *testing.T) {
	c := flatCluster(1, 0.9, 0.9)
	if got := Decide(c[0], c); got != None {
		t.Errorf("single node triggered %v", got)
	}
}

func TestPickSegmentHotForIO(t *testing.T) {
	segs := []SegmentInfo{
		{ID: ids.New(), LastAccess: time.Second},
		{ID: ids.New(), LastAccess: time.Hour}, // hottest
		{ID: ids.New(), LastAccess: time.Minute},
	}
	got, ok := PickSegment(IOLoad, segs)
	if !ok || got.LastAccess != time.Hour {
		t.Errorf("PickSegment(IOLoad) = %+v %v", got, ok)
	}
}

func TestPickSegmentColdForSpace(t *testing.T) {
	segs := []SegmentInfo{
		{ID: ids.New(), LastAccess: time.Hour},
		{ID: ids.New(), LastAccess: time.Second}, // coldest
		{ID: ids.New(), LastAccess: time.Minute},
	}
	got, ok := PickSegment(Space, segs)
	if !ok || got.LastAccess != time.Second {
		t.Errorf("PickSegment(Space) = %+v %v", got, ok)
	}
}

func TestPickSegmentEmptyOrNone(t *testing.T) {
	if _, ok := PickSegment(IOLoad, nil); ok {
		t.Error("picked from empty set")
	}
	if _, ok := PickSegment(None, []SegmentInfo{{ID: ids.New()}}); ok {
		t.Error("picked under None trigger")
	}
}

func TestDestAlpha(t *testing.T) {
	if DestAlpha(IOLoad) != AlphaIO || DestAlpha(Space) != AlphaSpace {
		t.Error("alphas wrong")
	}
}

func TestTriggerString(t *testing.T) {
	if None.String() != "none" || IOLoad.String() != "io-load" || Space.String() != "space" {
		t.Error("strings wrong")
	}
}

func TestLocalityMove(t *testing.T) {
	live := func(n wire.NodeID) bool { return n == "p2" || n == "p3" }
	cases := []struct {
		name             string
		self, dom        wire.NodeID
		share, threshold float64
		want             bool
	}{
		{"moves to dominant live provider", "p1", "p2", 0.9, 0.6, true},
		{"threshold not exceeded", "p1", "p2", 0.55, 0.6, false},
		{"threshold at minimum rejected", "p1", "p2", 0.9, 0.5, false},
		{"already local", "p2", "p2", 0.9, 0.6, false},
		{"dominant not a provider", "p1", "client-7", 0.9, 0.6, false},
		{"empty dominant", "p1", "", 0.9, 0.6, false},
	}
	for _, c := range cases {
		if got := LocalityMove(c.self, c.dom, c.share, c.threshold, live); got != c.want {
			t.Errorf("%s: LocalityMove = %v", c.name, got)
		}
	}
}

func TestDecideFloorsSuppressIdleChurn(t *testing.T) {
	// A nearly empty cluster: one node has slightly more data than its
	// peers, which makes it a >3σ outlier, but absolute usage is trivial —
	// no migration should trigger.
	cluster := flatCluster(10, 0.0, 0.001)
	cluster[0].UsedFrac = 0.01
	if got := Decide(cluster[0], cluster); got != None {
		t.Errorf("near-empty cluster triggered %v", got)
	}
	cluster = flatCluster(10, 0.001, 0.5)
	cluster[0].IOLoad = 0.05
	if got := Decide(cluster[0], cluster); got != None {
		t.Errorf("near-idle cluster triggered %v", got)
	}
}
