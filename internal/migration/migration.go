// Package migration implements the decision logic of Sorrento's data
// migration (paper §3.7): when a provider migrates (significant imbalance —
// top-10% and above mean+3σ of cluster I/O load or storage utilization),
// what it migrates (hot segments off I/O-loaded nodes, cold segments off
// space-pressured nodes, by last-access-time temperature), where the data
// goes (α=0.8 favoring lightly loaded nodes vs α=0.3 favoring space), and
// the locality-driven policy that moves a segment to the node generating
// most of its traffic. Execution (the actual transfer) lives in
// internal/provider; this package is pure decision logic so every rule is
// unit-testable.
package migration

import (
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Trigger classifies why a provider should migrate data away.
type Trigger int

// Trigger values.
const (
	None Trigger = iota
	// IOLoad: this node's I/O load is an outlier → shed hot segments to
	// lightly loaded nodes (α = 0.8).
	IOLoad
	// Space: this node's storage utilization is an outlier → shed cold
	// segments to space-rich nodes (α = 0.3).
	Space
)

func (t Trigger) String() string {
	switch t {
	case IOLoad:
		return "io-load"
	case Space:
		return "space"
	default:
		return "none"
	}
}

// Alphas used for migration destinations (paper §3.7.1).
const (
	AlphaIO    = 0.8
	AlphaSpace = 0.3
)

// TopFrac is the "among the highest 10% of all providers" trigger bound.
const TopFrac = 0.10

// Absolute trigger floors. The ±3σ rule alone misfires on a nearly idle or
// nearly empty cluster, where σ≈0 makes any microscopic difference look
// like "significant imbalance" and migration churns pointlessly; a node
// must also carry meaningful load/usage before shedding anything.
const (
	// MinIOLoad is the I/O-wait level below which the load trigger stays off.
	MinIOLoad = 0.2
	// MinUsedFrac is the storage utilization below which the space trigger
	// stays off.
	MinUsedFrac = 0.08
)

// NodeStat is one provider's view of a peer (from heartbeats).
type NodeStat struct {
	ID       wire.NodeID
	IOLoad   float64 // EWMA of I/O wait percentage
	UsedFrac float64 // consumed space fraction
}

// Decide evaluates the migration trigger for self within the cluster
// snapshot (which must include self). Migration activates when the node is
// within the top 10% AND above mean+3σ for either metric; I/O load wins
// ties since shedding load is the more urgent objective.
//
// The mean and σ are computed over the *other* nodes: with self included, a
// lone outlier in an n-node cluster has a z-score of exactly √(n−1), so the
// paper's >3σ rule could never fire on its own 10-node testbed. Excluding
// self preserves the intended "am I an outlier?" semantics at small n.
func Decide(self NodeStat, cluster []NodeStat) Trigger {
	if len(cluster) < 2 {
		return None
	}
	io := make([]float64, 0, len(cluster))
	sp := make([]float64, 0, len(cluster))
	ioOthers := make([]float64, 0, len(cluster))
	spOthers := make([]float64, 0, len(cluster))
	for _, n := range cluster {
		io = append(io, n.IOLoad)
		sp = append(sp, n.UsedFrac)
		if n.ID != self.ID {
			ioOthers = append(ioOthers, n.IOLoad)
			spOthers = append(spOthers, n.UsedFrac)
		}
	}
	if self.IOLoad >= MinIOLoad &&
		stats.TopFraction(self.IOLoad, io, TopFrac) && stats.AboveThreeSigma(self.IOLoad, ioOthers) {
		return IOLoad
	}
	if self.UsedFrac >= MinUsedFrac &&
		stats.TopFraction(self.UsedFrac, sp, TopFrac) && stats.AboveThreeSigma(self.UsedFrac, spOthers) {
		return Space
	}
	return None
}

// SegmentInfo describes one local segment for migration choice.
type SegmentInfo struct {
	ID         ids.SegID
	Size       int64
	LastAccess time.Duration // temperature: recent = hot (paper §3.7.1)
}

// PickSegment chooses what to migrate: the hottest segment under an I/O
// trigger; under a space trigger, the largest segment among the cold
// quartile — migration moves one segment per cycle, so moving a tiny cold
// segment would not relieve space pressure. ok is false when there is
// nothing to move.
func PickSegment(t Trigger, segs []SegmentInfo) (SegmentInfo, bool) {
	if len(segs) == 0 || t == None {
		return SegmentInfo{}, false
	}
	switch t {
	case IOLoad:
		best := segs[0]
		for _, s := range segs[1:] {
			if s.LastAccess > best.LastAccess || (s.LastAccess == best.LastAccess && s.ID.Less(best.ID)) {
				best = s
			}
		}
		return best, true
	default: // Space
		sorted := append([]SegmentInfo(nil), segs...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].LastAccess != sorted[j].LastAccess {
				return sorted[i].LastAccess < sorted[j].LastAccess
			}
			return sorted[i].ID.Less(sorted[j].ID)
		})
		quart := len(sorted) / 4
		if quart < 1 {
			quart = 1
		}
		cold := sorted[:quart]
		best := cold[0]
		for _, s := range cold[1:] {
			if s.Size > best.Size || (s.Size == best.Size && s.ID.Less(best.ID)) {
				best = s
			}
		}
		return best, true
	}
}

// DestAlpha returns the placement α for a trigger.
func DestAlpha(t Trigger) float64 {
	if t == Space {
		return AlphaSpace
	}
	return AlphaIO
}

// MinLocalityThreshold is the lowest admissible locality threshold: below
// a majority share, a segment could oscillate between two readers
// (paper §3.7.2: "the threshold value must be greater than 50%").
const MinLocalityThreshold = 0.5

// LocalityMove decides whether a locality-managed segment should move to
// the node dominating its traffic: the share must exceed the (validated)
// threshold and the dominant node must be a live provider other than self.
func LocalityMove(self, dominant wire.NodeID, share, threshold float64, isLiveProvider func(wire.NodeID) bool) bool {
	if threshold <= MinLocalityThreshold {
		return false
	}
	if dominant == "" || dominant == self || share <= threshold {
		return false
	}
	return isLiveProvider(dominant)
}
