package segstore

import (
	"repro/internal/ids"
	"repro/internal/wire"
)

// DeltaRange aliases the wire type: one changed byte range of a committed
// version.
type DeltaRange = wire.DeltaRange

// FetchDelta returns the changes needed to advance a replica from haveVer
// to the latest committed version (paper §3.6: stale replicas "retrieve
// the updates", not whole segments). When the intermediate change sets
// have been consolidated away, full falls back to the complete payload.
// sums are the latest version's commit-time checksums: the receiver applies
// the delta and verifies the result against them before committing it.
func (st *Store) FetchDelta(seg ids.SegID, haveVer uint64) (ranges []DeltaRange, newSize int64, ver uint64, replDeg int, locThresh float64, full []byte, sums []uint32, err error) {
	st.mu.Lock()
	s, ok := st.segs[seg]
	if !ok || s.latest == 0 {
		st.mu.Unlock()
		return nil, 0, 0, 0, 0, nil, nil, ErrNotFound
	}
	ver = s.latest
	replDeg, locThresh = s.replDeg, s.localityThreshold
	latest := s.versions[s.latest]
	newSize = int64(len(latest))
	sums = s.sums[s.latest]
	if haveVer >= ver {
		st.mu.Unlock()
		return nil, newSize, ver, replDeg, locThresh, nil, sums, nil
	}
	// Collect the union of changed ranges across (haveVer, ver]. If any
	// change set is missing (consolidated), fall back to a full transfer.
	var union []rng
	complete := haveVer > 0
	for v := haveVer + 1; complete && v <= ver; v++ {
		ch, ok := s.changes[v]
		if !ok {
			complete = false
			break
		}
		union = append(union, ch...)
	}
	if !complete {
		// Zero-copy like Read/Fetch: latest is immutable unless direct.
		out := latest[:len(latest):len(latest)]
		if s.direct {
			out = append([]byte(nil), latest...)
		}
		st.mu.Unlock()
		st.chargeRead(int64(len(out)))
		return nil, newSize, ver, replDeg, locThresh, out, sums, nil
	}
	union = mergeRanges(union)
	var total int64
	for _, r := range union {
		lo, hi := r.off, r.end
		if lo >= newSize {
			continue
		}
		if hi > newSize {
			hi = newSize
		}
		// Delta ranges only exist for versioned (immutable) segments, so
		// they alias the latest version safely.
		ranges = append(ranges, DeltaRange{Off: lo, Data: latest[lo:hi:hi]})
		total += hi - lo
	}
	st.mu.Unlock()
	st.chargeRead(total)
	return ranges, newSize, ver, replDeg, locThresh, nil, sums, nil
}

// ApplyDelta advances a local replica from fromVer to toVer by applying
// changed ranges onto the local copy. It fails when the local version does
// not match fromVer (the caller falls back to a full fetch). wantSums are
// the sender's commit-time checksums of the full target version: the
// reconstructed buffer is verified against them BEFORE it is committed, so
// a delta applied over a locally-rotted base (or carrying corrupt ranges)
// is rejected with ErrCorrupt instead of propagating bad bytes. Nil
// wantSums skips the check (the sums are then computed locally).
func (st *Store) ApplyDelta(seg ids.SegID, fromVer, toVer uint64, ranges []DeltaRange, newSize int64, replDeg int, locThresh float64, wantSums []uint32) error {
	st.mu.Lock()
	s, ok := st.segs[seg]
	if !ok || s.latest != fromVer {
		st.mu.Unlock()
		return ErrNoVersion
	}
	base := s.versions[fromVer]
	buf := make([]byte, newSize)
	copy(buf, base)
	var written int64
	for _, r := range ranges {
		if r.Off < 0 || r.Off+int64(len(r.Data)) > newSize {
			st.mu.Unlock()
			return ErrNoVersion
		}
		copy(buf[r.Off:], r.Data)
		written += int64(len(r.Data))
	}
	if wantSums != nil {
		if wire.VerifySums(buf, wantSums) >= 0 {
			st.nDetected.Add(1)
			st.mu.Unlock()
			return ErrCorrupt
		}
		st.nVerifiedBlocks.Add(int64(len(wantSums)))
	}
	st.sealVersionLocked(s, toVer, buf, base)
	s.latest = toVer
	if replDeg > 0 {
		s.replDeg = replDeg
	}
	if locThresh > 0 {
		s.localityThreshold = locThresh
	}
	st.consolidateLocked(s)
	grow := newSize // new version buffer occupies its full size
	st.mu.Unlock()
	if err := st.disk.Alloc(grow); err != nil {
		return err
	}
	st.disk.WriteAsync(written)
	return nil
}

// rng is an offset range used for change tracking.
type rng struct{ off, end int64 }

// mergeRanges sorts and coalesces ranges.
func mergeRanges(in []rng) []rng {
	if len(in) < 2 {
		return in
	}
	// Insertion sort: change sets are tiny.
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].off < in[j-1].off; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
	out := in[:1]
	for _, r := range in[1:] {
		last := &out[len(out)-1]
		if r.off <= last.end {
			if r.end > last.end {
				last.end = r.end
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
