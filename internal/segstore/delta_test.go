package segstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/simtime"
)

// commitWrite runs one shadow-write-commit cycle and returns the version.
func commitWrite(t *testing.T, st *Store, seg ids.SegID, off int64, data []byte) uint64 {
	t.Helper()
	if _, _, err := st.Shadow("w", seg, 0, time.Minute, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteShadow("w", seg, off, data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Prepare("w", seg); err != nil {
		t.Fatal(err)
	}
	ver, _, err := st.CommitPrepared("w", seg)
	if err != nil {
		t.Fatal(err)
	}
	return ver
}

func TestFetchDeltaReturnsChangedRanges(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte{'a'}, 100), 1, 0, false)
	commitWrite(t, st, seg, 10, []byte("XXXX")) // v2

	ranges, size, ver, _, _, full, _, err := st.FetchDelta(seg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != nil {
		t.Fatalf("full fallback for a retained change set")
	}
	if ver != 2 || size != 100 {
		t.Fatalf("ver=%d size=%d", ver, size)
	}
	if len(ranges) != 1 || ranges[0].Off != 10 || string(ranges[0].Data) != "XXXX" {
		t.Fatalf("ranges = %+v", ranges)
	}
}

func TestFetchDeltaAlreadyCurrent(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("abc"), 1, 0, false)
	ranges, _, ver, _, _, full, _, err := st.FetchDelta(seg, 1)
	if err != nil || ranges != nil || full != nil || ver != 1 {
		t.Fatalf("current replica delta: %v %v %v %v", ranges, ver, full, err)
	}
}

func TestFetchDeltaUnionsMultipleVersions(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte{'a'}, 50), 1, 0, false)
	commitWrite(t, st, seg, 0, []byte("11"))  // v2
	commitWrite(t, st, seg, 10, []byte("22")) // v3

	ranges, _, ver, _, _, full, _, err := st.FetchDelta(seg, 1)
	if err != nil || full != nil {
		t.Fatalf("err=%v full=%v", err, full)
	}
	if ver != 3 {
		t.Fatalf("ver=%d", ver)
	}
	var total int64
	for _, r := range ranges {
		total += int64(len(r.Data))
	}
	if total != 4 {
		t.Fatalf("delta bytes = %d, want 4 (two 2-byte changes)", total)
	}
}

func TestFetchDeltaFullFallbackWhenHistoryPruned(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	for i := 0; i < KeepChanges+2; i++ {
		commitWrite(t, st, seg, 0, []byte{byte('A' + i%26)})
	}
	// A replica stuck at v1 is far beyond the retained change history.
	_, _, ver, _, _, full, _, err := st.FetchDelta(seg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full == nil {
		t.Fatal("expected full fallback for pruned history")
	}
	if ver != uint64(KeepChanges+3) {
		t.Fatalf("ver = %d", ver)
	}
}

func TestFetchDeltaFromZeroIsFull(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("payload"), 1, 0, false)
	_, _, _, _, _, full, _, err := st.FetchDelta(seg, 0)
	if err != nil || string(full) != "payload" {
		t.Fatalf("full=%q err=%v", full, err)
	}
}

func TestFetchDeltaMissingSegment(t *testing.T) {
	st := newStore(t)
	if _, _, _, _, _, _, _, err := st.FetchDelta(ids.New(), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyDeltaAdvancesReplica(t *testing.T) {
	src := newStore(t)
	dst := newStore(t)
	seg := ids.New()
	base := bytes.Repeat([]byte{'a'}, 64)
	src.Create(seg, base, 1, 0, false)
	dst.Install(seg, 1, base, 1, 0)
	commitWrite(t, src, seg, 5, []byte("HELLO")) // v2

	ranges, size, ver, rd, lt, full, sums, err := src.FetchDelta(seg, 1)
	if err != nil || full != nil {
		t.Fatal(err)
	}
	if err := dst.ApplyDelta(seg, 1, ver, ranges, size, rd, lt, sums); err != nil {
		t.Fatal(err)
	}
	got, gver, _ := dst.Read(seg, 0, 0, 64)
	want, _, _ := src.Read(seg, 0, 0, 64)
	if gver != 2 || !bytes.Equal(got, want) {
		t.Fatalf("replica v%d = %q, want %q", gver, got, want)
	}
}

func TestApplyDeltaVersionMismatch(t *testing.T) {
	dst := newStore(t)
	seg := ids.New()
	dst.Install(seg, 3, []byte("v3"), 1, 0)
	err := dst.ApplyDelta(seg, 2, 4, nil, 2, 1, 0, nil)
	if !errors.Is(err, ErrNoVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyDeltaOutOfRangeRejected(t *testing.T) {
	dst := newStore(t)
	seg := ids.New()
	dst.Install(seg, 1, []byte("abcd"), 1, 0)
	err := dst.ApplyDelta(seg, 1, 2, []DeltaRange{{Off: 10, Data: []byte("zz")}}, 4, 1, 0, nil)
	if !errors.Is(err, ErrNoVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeltaHandlesShrinkingFile(t *testing.T) {
	src := newStore(t)
	dst := newStore(t)
	seg := ids.New()
	base := bytes.Repeat([]byte{'x'}, 40)
	src.Create(seg, base, 1, 0, false)
	dst.Install(seg, 1, base, 1, 0)

	// Commit a truncation to 10 bytes.
	src.Shadow("w", seg, 0, time.Minute, 1, 0)
	src.TruncateShadow("w", seg, 10)
	src.Prepare("w", seg)
	src.CommitPrepared("w", seg)

	ranges, size, ver, rd, lt, full, sums, err := src.FetchDelta(seg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != nil {
		if err := dst.Install(seg, ver, full, rd, lt); err != nil {
			t.Fatal(err)
		}
	} else if err := dst.ApplyDelta(seg, 1, ver, ranges, size, rd, lt, sums); err != nil {
		t.Fatal(err)
	}
	got, _, _ := dst.Read(seg, 0, 0, 100)
	want, _, _ := src.Read(seg, 0, 0, 100)
	if !bytes.Equal(got, want) {
		t.Fatalf("after shrink: replica %q, source %q", got, want)
	}
}

// TestDeltaSyncEquivalentToFullSync property-tests that a replica advanced
// by deltas always matches one advanced by full copies, under random write
// histories.
func TestDeltaSyncEquivalentToFullSync(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		clock := simtime.NewClock(0.0001)
		src := New(clock, disk.New(clock, "src", disk.SCSI10K(), 1<<30))
		dst := New(clock, disk.New(clock, "dst", disk.SCSI10K(), 1<<30))
		seg := ids.New()
		base := make([]byte, 200)
		rng.Read(base)
		src.Create(seg, base, 1, 0, false)
		dst.Install(seg, 1, base, 1, 0)

		have := uint64(1)
		commits := 2 + rng.Intn(5)
		for k := 0; k < commits; k++ {
			// 1–3 writes per commit at random offsets.
			src.Shadow("w", seg, 0, time.Minute, 1, 0)
			for w := 0; w < 1+rng.Intn(3); w++ {
				off := int64(rng.Intn(250))
				data := make([]byte, 1+rng.Intn(40))
				rng.Read(data)
				src.WriteShadow("w", seg, off, data)
			}
			src.Prepare("w", seg)
			src.CommitPrepared("w", seg)

			// Sync the replica every other commit so deltas span multiple
			// versions sometimes.
			if k%2 == 1 || k == commits-1 {
				ranges, size, ver, rd, lt, full, sums, err := src.FetchDelta(seg, have)
				if err != nil {
					t.Fatal(err)
				}
				if full != nil {
					if err := dst.Install(seg, ver, full, rd, lt); err != nil {
						t.Fatal(err)
					}
				} else if err := dst.ApplyDelta(seg, have, ver, ranges, size, rd, lt, sums); err != nil {
					t.Fatal(err)
				}
				have = ver
			}
		}
		got, gv, _ := dst.Read(seg, 0, 0, 1<<20)
		want, wv, _ := src.Read(seg, 0, 0, 1<<20)
		if gv != wv || !bytes.Equal(got, want) {
			t.Fatalf("trial %d: replica v%d diverged from source v%d", trial, gv, wv)
		}
	}
}

func TestMergeRanges(t *testing.T) {
	got := mergeRanges([]rng{{10, 20}, {0, 5}, {15, 30}, {40, 41}})
	want := []rng{{0, 5}, {10, 30}, {40, 41}}
	if len(got) != len(want) {
		t.Fatalf("merged = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := mergeRanges(nil); len(out) != 0 {
		t.Errorf("empty merge = %v", out)
	}
}
