package segstore

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ids"
)

// commitV2 runs one shadow-write-commit cycle so the segment holds versions
// 1 and 2 (KeepVersions=2 retains both).
func commitV2(t *testing.T, st *Store, seg ids.SegID, p []byte) {
	t.Helper()
	if _, _, err := st.Shadow("s1", seg, 1, time.Minute, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteShadow("s1", seg, 0, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Prepare("s1", seg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.CommitPrepared("s1", seg); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptReadDetected(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("precious bytes"), 1, 0, false)

	if !st.Corrupt(seg) {
		t.Fatal("Corrupt refused an eligible segment")
	}
	if _, _, err := st.Read(seg, 0, 0, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read after corruption: err = %v, want ErrCorrupt", err)
	}
	if _, _, _, _, _, err := st.Fetch(seg, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Fetch after corruption: err = %v, want ErrCorrupt", err)
	}
	is := st.IntegrityStats()
	if is.Detected < 2 || is.InjectedWrite != 1 {
		t.Fatalf("stats = %+v", is)
	}
	if st.VerifyAll() != 1 {
		t.Fatalf("VerifyAll = %d, want 1", st.VerifyAll())
	}
}

func TestCorruptSkipsDirectAndEmpty(t *testing.T) {
	st := newStore(t)
	direct := ids.New()
	st.Create(direct, []byte("raw"), 1, 0, true)
	if st.Corrupt(direct) {
		t.Fatal("Corrupt accepted a direct segment")
	}
	if st.Corrupt(ids.New()) {
		t.Fatal("Corrupt accepted a missing segment")
	}
	if _, ok := st.CorruptAny(); ok {
		t.Fatal("CorruptAny found a target with only direct segments")
	}
}

func TestCorruptAnyDeterministic(t *testing.T) {
	mk := func() (ids.SegID, bool) {
		st := newStore(t)
		st.InjectFaults(FaultConfig{Seed: 42})
		for i := 0; i < 8; i++ {
			seg := ids.SegID{byte(i + 1)}
			st.Create(seg, []byte("payload"), 1, 0, false)
		}
		return st.CorruptAny()
	}
	a, okA := mk()
	b, okB := mk()
	if !okA || !okB || a != b {
		t.Fatalf("CorruptAny not deterministic: %v/%v %v/%v", a, okA, b, okB)
	}
}

func TestWriteFaultBitFlipDetectedOnRead(t *testing.T) {
	st := newStore(t)
	st.InjectFaults(FaultConfig{Seed: 1, BitFlip: 1})
	seg := ids.New()
	// Background replica installs skip the foreground read-back verify, so
	// the armed fault lands silently.
	if err := st.Install(seg, 1, bytes.Repeat([]byte("a"), 4096), 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Read(seg, 0, 0, 4096); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
	if st.IntegrityStats().InjectedWrite == 0 {
		t.Fatal("bit-flip fault not counted")
	}
}

func TestWriteFaultTornWriteCorruptsInstall(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte("a"), 4096), 1, 0, false)

	// Arm torn-write for a background install of v2: it persists as a prefix
	// of the new bytes with the old contents beyond the tear point.
	st.InjectFaults(FaultConfig{Seed: 3, TornWrite: 1})
	if err := st.Install(seg, 2, bytes.Repeat([]byte("b"), 4096), 1, 0); err != nil {
		t.Fatal(err)
	}
	st.ClearFaults()

	if _, _, err := st.Read(seg, 2, 0, 4096); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read(v2) = %v, want ErrCorrupt", err)
	}
	// The prior version was sealed before the fault was armed and still
	// serves — torn writes damage only the version being written.
	if data, _, err := st.Read(seg, 1, 0, 4096); err != nil || data[0] != 'a' {
		t.Fatalf("Read(v1) = %q err %v", data[:1], err)
	}
}

// Foreground commit writes are read-back-verified before the ack (real
// stores verify foreground bursts; background replication relies on the
// scrubber instead), so even a certain write fault cannot silently destroy
// the sole copy of a fresh commit.
func TestCommitWritesImmuneToWriteFaults(t *testing.T) {
	st := newStore(t)
	st.InjectFaults(FaultConfig{Seed: 1, BitFlip: 1})
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte("a"), 4096), 1, 0, false)
	commitV2(t, st, seg, bytes.Repeat([]byte("b"), 4096))
	st.ClearFaults()
	if _, _, err := st.Read(seg, 0, 0, 4096); err != nil {
		t.Fatalf("committed read = %v, want clean", err)
	}
	if st.VerifyAll() != 0 {
		t.Fatalf("VerifyAll = %d, want 0", st.VerifyAll())
	}
}

func TestReadFaultInjection(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("ok"), 1, 0, false)
	st.InjectFaults(FaultConfig{Seed: 5, ReadErr: 1})
	if _, _, err := st.Read(seg, 0, 0, 2); !errors.Is(err, ErrReadFault) {
		t.Fatalf("Read = %v, want ErrReadFault", err)
	}
	st.ClearFaults()
	if _, _, err := st.Read(seg, 0, 0, 2); err != nil {
		t.Fatalf("Read after ClearFaults = %v", err)
	}
	if st.IntegrityStats().InjectedRead == 0 {
		t.Fatal("read fault not counted")
	}
}

func TestScrubSegmentDropsCorruptOldVersion(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte("a"), 1024), 1, 0, false)
	commitV2(t, st, seg, bytes.Repeat([]byte("b"), 1024))

	// Rot the superseded v1 in place (test-only reach into the store).
	st.mu.Lock()
	s := st.segs[seg]
	v1 := append([]byte(nil), s.versions[1]...)
	v1[100] ^= 0x01
	s.versions[1] = v1
	st.mu.Unlock()

	scanned, dropped, intact := st.ScrubSegment(seg)
	if scanned == 0 || dropped != 1 || !intact {
		t.Fatalf("ScrubSegment = (%d, %d, %v), want (>0, 1, true)", scanned, dropped, intact)
	}
	// Latest still serves; the rotted old version is gone.
	if _, ver, err := st.Read(seg, 0, 0, 10); err != nil || ver != 2 {
		t.Fatalf("Read latest: v%d err %v", ver, err)
	}
	if _, _, err := st.Read(seg, 1, 0, 10); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("Read(v1) = %v, want ErrNoVersion", err)
	}
}

func TestScrubSegmentDropsCorruptLatest(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte("a"), 1024), 1, 0, false)
	commitV2(t, st, seg, bytes.Repeat([]byte("b"), 1024))
	st.Corrupt(seg) // hits the latest version

	_, dropped, intact := st.ScrubSegment(seg)
	if dropped != 1 || intact {
		t.Fatalf("ScrubSegment = (_, %d, %v), want (1, false)", dropped, intact)
	}
	// The store fell back to the surviving older version.
	if _, ver, err := st.Read(seg, 0, 0, 10); err != nil || ver != 1 {
		t.Fatalf("Read after drop: v%d err %v", ver, err)
	}
}

func TestScrubCleanPassCountsBlocks(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte("a"), 1024), 1, 0, false)
	scanned, dropped, intact := st.ScrubSegment(seg)
	if scanned != 1024 || dropped != 0 || !intact {
		t.Fatalf("ScrubSegment = (%d, %d, %v)", scanned, dropped, intact)
	}
	if st.IntegrityStats().VerifiedBlocks == 0 {
		t.Fatal("clean scrub verified no blocks")
	}
}

// Regression: CrashRecover must re-validate committed extents, not trust the
// store blindly — a torn write during the crash window leaves a committed
// version whose bytes do not match its checksums.
func TestCrashRecoverDropsTornCommits(t *testing.T) {
	st := newStore(t)
	survivor := ids.New()
	st.Create(survivor, bytes.Repeat([]byte("a"), 2048), 1, 0, false)

	torn := ids.New()
	st.Create(torn, bytes.Repeat([]byte("c"), 2048), 1, 0, false)
	st.InjectFaults(FaultConfig{Seed: 3, TornWrite: 1})
	if err := st.Install(torn, 2, bytes.Repeat([]byte("d"), 2048), 1, 0); err != nil {
		t.Fatal(err)
	}
	st.ClearFaults()

	used := st.Disk().Used()
	shadows, corrupt := st.CrashRecover()
	if shadows != 0 || corrupt != 1 {
		t.Fatalf("CrashRecover = (%d, %d), want (0, 1)", shadows, corrupt)
	}
	if st.Disk().Used() >= used {
		t.Fatal("dropped version freed no space")
	}
	// The torn v2 is gone; the intact v1 serves again.
	if _, ver, err := st.Read(torn, 0, 0, 10); err != nil || ver != 1 {
		t.Fatalf("torn segment after recover: v%d err %v", ver, err)
	}
	if _, ver, err := st.Read(survivor, 0, 0, 10); err != nil || ver != 1 {
		t.Fatalf("survivor after recover: v%d err %v", ver, err)
	}
	if st.VerifyAll() != 0 {
		t.Fatalf("VerifyAll = %d after recovery", st.VerifyAll())
	}
}

// A single-version segment whose only copy is corrupt disappears entirely at
// crash recovery — the repair path re-replicates it from another node.
func TestCrashRecoverRemovesFullyCorruptSegment(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, bytes.Repeat([]byte("x"), 1024), 1, 0, false)
	st.Corrupt(seg)

	if _, corrupt := st.CrashRecover(); corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", corrupt)
	}
	if _, _, err := st.Read(seg, 0, 0, 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read = %v, want ErrNotFound", err)
	}
}

func TestVerifyVersion(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("fine"), 1, 0, false)
	if !st.VerifyVersion(seg, 0) || !st.VerifyVersion(seg, 1) {
		t.Fatal("clean version did not verify")
	}
	st.Corrupt(seg)
	if st.VerifyVersion(seg, 0) {
		t.Fatal("corrupt version verified")
	}
	if st.VerifyVersion(ids.New(), 0) {
		t.Fatal("missing segment verified")
	}
}
