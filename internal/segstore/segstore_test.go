package segstore

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/simtime"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	clock := simtime.NewClock(0.0001)
	d := disk.New(clock, "test", disk.SCSI10K(), 1<<30)
	return New(clock, d)
}

func TestCreateAndRead(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	if err := st.Create(seg, []byte("hello world"), 1, 0, false); err != nil {
		t.Fatal(err)
	}
	data, ver, err := st.Read(seg, 0, 0, 100)
	if err != nil || ver != 1 || string(data) != "hello world" {
		t.Fatalf("Read = %q v%d err %v", data, ver, err)
	}
	data, _, err = st.Read(seg, 0, 6, 5)
	if err != nil || string(data) != "world" {
		t.Fatalf("offset Read = %q err %v", data, err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0, false)
	if err := st.Create(seg, []byte("y"), 1, 0, false); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestReadMissing(t *testing.T) {
	st := newStore(t)
	if _, _, err := st.Read(ids.New(), 0, 0, 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestShadowCommitFlow(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("aaaaaaaaaa"), 1, 0, false)

	created, size, err := st.Shadow("s1", seg, 1, time.Minute, 1, 0)
	if err != nil || !created || size != 10 {
		t.Fatalf("Shadow: created=%v size=%d err=%v", created, size, err)
	}
	if _, err := st.WriteShadow("s1", seg, 2, []byte("XX")); err != nil {
		t.Fatal(err)
	}
	// Committed view unchanged until commit.
	data, ver, _ := st.Read(seg, 0, 0, 10)
	if string(data) != "aaaaaaaaaa" || ver != 1 {
		t.Fatalf("committed view changed early: %q v%d", data, ver)
	}
	// Shadow view shows the write (read-your-writes).
	sdata, err := st.ReadShadow("s1", seg, 0, 10)
	if err != nil || string(sdata) != "aaXXaaaaaa" {
		t.Fatalf("shadow view = %q err %v", sdata, err)
	}

	planned, _, err := st.Prepare("s1", seg)
	if err != nil || planned != 2 {
		t.Fatalf("Prepare: v%d err %v", planned, err)
	}
	ver, size, err = st.CommitPrepared("s1", seg)
	if err != nil || ver != 2 || size != 10 {
		t.Fatalf("Commit: v%d size %d err %v", ver, size, err)
	}
	data, ver, _ = st.Read(seg, 0, 0, 10)
	if string(data) != "aaXXaaaaaa" || ver != 2 {
		t.Fatalf("after commit: %q v%d", data, ver)
	}
	// Old version still readable (KeepVersions=2).
	data, _, err = st.Read(seg, 1, 0, 10)
	if err != nil || string(data) != "aaaaaaaaaa" {
		t.Fatalf("old version: %q err %v", data, err)
	}
}

func TestShadowGrowsFile(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("ab"), 1, 0, false)
	st.Shadow("s1", seg, 0, 0, 1, 0)
	st.WriteShadow("s1", seg, 5, []byte("Z"))
	st.Prepare("s1", seg)
	_, size, err := st.CommitPrepared("s1", seg)
	if err != nil || size != 6 {
		t.Fatalf("size = %d err %v", size, err)
	}
	data, _, _ := st.Read(seg, 0, 0, 10)
	want := []byte{'a', 'b', 0, 0, 0, 'Z'}
	if !bytes.Equal(data, want) {
		t.Fatalf("data = %v, want %v", data, want)
	}
}

func TestShadowOfNewSegment(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	created, size, err := st.Shadow("s1", seg, 0, 0, 2, 0)
	if err != nil || !created || size != 0 {
		t.Fatalf("Shadow new: %v %d %v", created, size, err)
	}
	st.WriteShadow("s1", seg, 0, []byte("fresh"))
	planned, _, _ := st.Prepare("s1", seg)
	if planned != 1 {
		t.Fatalf("planned = %d, want 1", planned)
	}
	st.CommitPrepared("s1", seg)
	data, ver, _ := st.Read(seg, 0, 0, 10)
	if string(data) != "fresh" || ver != 1 {
		t.Fatalf("new segment: %q v%d", data, ver)
	}
	if st.Stat(seg).ReplDeg != 2 {
		t.Errorf("ReplDeg = %d, want 2", st.Stat(seg).ReplDeg)
	}
}

func TestShadowDroppedNewSegmentDisappears(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Shadow("s1", seg, 0, 0, 1, 0)
	st.WriteShadow("s1", seg, 0, []byte("temp"))
	st.Drop("s1", seg)
	if st.Stat(seg).Present || st.Len() != 0 {
		t.Error("dropped new segment still present")
	}
	if st.Disk().Used() != 0 {
		t.Errorf("disk used = %d after drop", st.Disk().Used())
	}
}

func TestConcurrentShadowsIndependent(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("alice", seg, 0, 0, 1, 0)
	st.Shadow("bob", seg, 0, 0, 1, 0)
	st.WriteShadow("alice", seg, 0, []byte("A"))
	st.WriteShadow("bob", seg, 0, []byte("B"))
	a, _ := st.ReadShadow("alice", seg, 0, 4)
	b, _ := st.ReadShadow("bob", seg, 0, 4)
	if string(a) != "Aase" || string(b) != "Base" {
		t.Fatalf("shadow isolation broken: %q %q", a, b)
	}
}

func TestPrepareSerializesCommits(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("alice", seg, 0, 0, 1, 0)
	st.Shadow("bob", seg, 0, 0, 1, 0)
	if _, _, err := st.Prepare("alice", seg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Prepare("bob", seg); !errors.Is(err, ErrPrepared) {
		t.Fatalf("second Prepare err = %v, want ErrPrepared", err)
	}
	st.CommitPrepared("alice", seg)
	// Now bob can prepare; his shadow commits as version 3 on top.
	planned, _, err := st.Prepare("bob", seg)
	if err != nil || planned != 3 {
		t.Fatalf("bob Prepare after alice commit: v%d err %v", planned, err)
	}
}

func TestAbortReleasesCommitSlot(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("alice", seg, 0, 0, 1, 0)
	st.Prepare("alice", seg)
	if err := st.AbortPrepared("alice", seg); err != nil {
		t.Fatal(err)
	}
	st.Shadow("bob", seg, 0, 0, 1, 0)
	if _, _, err := st.Prepare("bob", seg); err != nil {
		t.Fatalf("Prepare after abort: %v", err)
	}
	// Alice's shadow is gone.
	if _, err := st.ReadShadow("alice", seg, 0, 1); !errors.Is(err, ErrNoShadow) {
		t.Fatalf("aborted shadow still readable: %v", err)
	}
}

func TestWriteShadowAfterPrepareRejected(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("s", seg, 0, 0, 1, 0)
	st.Prepare("s", seg)
	if _, err := st.WriteShadow("s", seg, 0, []byte("x")); !errors.Is(err, ErrPrepared) {
		t.Fatalf("write after prepare: %v", err)
	}
}

func TestCommitUnpreparedRejected(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("s", seg, 0, 0, 1, 0)
	if _, _, err := st.CommitPrepared("s", seg); !errors.Is(err, ErrUnprepared) {
		t.Fatalf("commit unprepared: %v", err)
	}
}

func TestVersionConsolidation(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("v1"), 1, 0, false)
	for i := 0; i < 4; i++ {
		st.Shadow("s", seg, 0, 0, 1, 0)
		st.WriteShadow("s", seg, 0, []byte{byte('2' + i)})
		st.Prepare("s", seg)
		st.CommitPrepared("s", seg)
	}
	// Latest is 5; versions 1..3 must be consolidated away.
	if _, _, err := st.Read(seg, 1, 0, 2); !errors.Is(err, ErrNoVersion) {
		t.Errorf("version 1 still present: %v", err)
	}
	if _, _, err := st.Read(seg, 4, 0, 2); err != nil {
		t.Errorf("version 4 missing: %v", err)
	}
	if _, _, err := st.Read(seg, 5, 0, 2); err != nil {
		t.Errorf("version 5 missing: %v", err)
	}
}

func TestShadowExpiration(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	st := New(clock, disk.New(clock, "t", disk.SCSI10K(), 1<<30))
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("s", seg, 0, time.Second, 1, 0)
	clock.Sleep(2 * time.Second)
	if n := st.ExpireShadows(); n != 1 {
		t.Fatalf("ExpireShadows = %d, want 1", n)
	}
	if _, _, err := st.Prepare("s", seg); !errors.Is(err, ErrNoShadow) {
		t.Fatalf("expired shadow preparable: %v", err)
	}
}

func TestExpiredShadowRejectedAtPrepare(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	st := New(clock, disk.New(clock, "t", disk.SCSI10K(), 1<<30))
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("s", seg, 0, time.Second, 1, 0)
	clock.Sleep(2 * time.Second)
	if _, _, err := st.Prepare("s", seg); !errors.Is(err, ErrExpired) {
		t.Fatalf("Prepare on expired shadow: %v", err)
	}
}

func TestRenewExtendsExpiry(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	st := New(clock, disk.New(clock, "t", disk.SCSI10K(), 1<<30))
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("s", seg, 0, time.Second, 1, 0)
	clock.Sleep(700 * time.Millisecond)
	// A generous TTL keeps the test robust against wall-sleep granularity
	// being inflated by the 0.0001 scale.
	if err := st.Renew("s", seg, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Sleep(2 * time.Second)
	if n := st.ExpireShadows(); n != 0 {
		t.Fatalf("renewed shadow expired")
	}
}

func TestInstallAndStaleInstallIgnored(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	if err := st.Install(seg, 3, []byte("v3"), 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Install(seg, 2, []byte("v2"), 2, 0); err != nil {
		t.Fatal(err)
	}
	data, ver, _ := st.Read(seg, 0, 0, 10)
	if ver != 3 || string(data) != "v3" {
		t.Fatalf("after stale install: %q v%d", data, ver)
	}
}

func TestInstallVersionZeroRejected(t *testing.T) {
	st := newStore(t)
	if err := st.Install(ids.New(), 0, []byte("x"), 1, 0); err == nil {
		t.Fatal("Install v0 succeeded")
	}
}

func TestFetch(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("payload"), 3, 0.7, false)
	data, ver, rd, lt, _, err := st.Fetch(seg, 0)
	if err != nil || ver != 1 || string(data) != "payload" || rd != 3 || lt != 0.7 {
		t.Fatalf("Fetch = %q v%d rd%d lt%v err %v", data, ver, rd, lt, err)
	}
}

func TestDirectSegment(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("abc"), 1, 0, true)
	if err := st.WriteDirect(seg, 1, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	data, ver, _ := st.Read(seg, 0, 0, 10)
	if string(data) != "aXYZ" || ver != 1 {
		t.Fatalf("direct write: %q v%d", data, ver)
	}
	if _, _, err := st.Shadow("s", seg, 0, 0, 1, 0); !errors.Is(err, ErrIsDirect) {
		t.Fatalf("shadow on direct segment: %v", err)
	}
}

func TestWriteDirectOnVersionedRejected(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("abc"), 1, 0, false)
	if err := st.WriteDirect(seg, 0, []byte("x")); !errors.Is(err, ErrNotDirect) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, make([]byte, 1000), 1, 0, false)
	used := st.Disk().Used()
	if used != 1000 {
		t.Fatalf("used = %d", used)
	}
	if err := st.Delete(seg); err != nil {
		t.Fatal(err)
	}
	if st.Disk().Used() != 0 {
		t.Errorf("used after delete = %d", st.Disk().Used())
	}
	if err := st.Delete(seg); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestListAndSegments(t *testing.T) {
	st := newStore(t)
	a, b := ids.New(), ids.New()
	st.Create(a, []byte("a"), 2, 0, false)
	st.Create(b, []byte("bb"), 1, 0, false)
	// An uncommitted brand-new shadow must not be listed.
	st.Shadow("s", ids.New(), 0, 0, 1, 0)
	list := st.List()
	if len(list) != 2 {
		t.Fatalf("List len = %d", len(list))
	}
	if st.Len() != 2 || len(st.Segments()) != 2 {
		t.Errorf("Len/Segments mismatch")
	}
	for _, e := range list {
		if e.Seg == a && (e.ReplDeg != 2 || e.Size != 1 || e.Version != 1) {
			t.Errorf("entry a = %+v", e)
		}
	}
}

func TestStat(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("abcd"), 2, 0, false)
	s := st.Stat(seg)
	if !s.Present || s.Version != 1 || s.Size != 4 || s.HasShadow || s.ReplDeg != 2 {
		t.Errorf("Stat = %+v", s)
	}
	st.Shadow("x", seg, 0, 0, 1, 0)
	if !st.Stat(seg).HasShadow {
		t.Error("HasShadow false with open shadow")
	}
	if st.Stat(ids.New()).Present {
		t.Error("missing segment reported present")
	}
}

func TestLastAccessAdvances(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	st := New(clock, disk.New(clock, "t", disk.SCSI10K(), 1<<30))
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0, false)
	t0, ok := st.LastAccess(seg)
	if !ok {
		t.Fatal("LastAccess not found")
	}
	clock.Sleep(time.Second)
	st.Read(seg, 0, 0, 1)
	t1, _ := st.LastAccess(seg)
	if t1 <= t0 {
		t.Errorf("LastAccess did not advance: %v -> %v", t0, t1)
	}
}

func TestDiskAccountingThroughCommitCycle(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, make([]byte, 100), 1, 0, false)
	st.Shadow("s", seg, 0, 0, 1, 0)
	st.WriteShadow("s", seg, 0, make([]byte, 50))
	st.Prepare("s", seg)
	st.CommitPrepared("s", seg)
	// Two committed versions of 100 bytes each.
	if used := st.Disk().Used(); used != 200 {
		t.Errorf("used = %d, want 200", used)
	}
	st.Delete(seg)
	if used := st.Disk().Used(); used != 0 {
		t.Errorf("used after delete = %d", used)
	}
}

func TestPrepareIdempotentForSameOwner(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("base"), 1, 0, false)
	st.Shadow("s1", seg, 1, time.Minute, 1, 0)
	st.WriteShadow("s1", seg, 0, []byte("X"))
	p1, _, err := st.Prepare("s1", seg)
	if err != nil {
		t.Fatal(err)
	}
	// A retried prepare (lost response) must return the same planned version.
	p2, _, err := st.Prepare("s1", seg)
	if err != nil || p2 != p1 {
		t.Fatalf("re-prepare: v%d err %v, want v%d", p2, err, p1)
	}
	if _, _, err := st.CommitPrepared("s1", seg); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoverKeepsCommittedDropsVolatile(t *testing.T) {
	st := newStore(t)
	committed := ids.New()
	st.Create(committed, []byte("durable"), 1, 0, false)

	// An in-flight session: shadow on the committed segment, prepared.
	st.Shadow("s1", committed, 1, time.Minute, 1, 0)
	st.WriteShadow("s1", committed, 0, []byte("WIP"))
	if _, _, err := st.Prepare("s1", committed); err != nil {
		t.Fatal(err)
	}
	// A brand-new segment that exists only as a shadow.
	fresh := ids.New()
	st.Shadow("s1", fresh, 0, time.Minute, 1, 0)
	st.WriteShadow("s1", fresh, 0, []byte("lost"))

	used := st.Disk().Used()
	if n, _ := st.CrashRecover(); n != 2 {
		t.Fatalf("CrashRecover dropped %d shadows, want 2", n)
	}
	if st.Disk().Used() >= used {
		t.Fatalf("crash recovery freed no shadow space: %d -> %d", used, st.Disk().Used())
	}

	// Committed data survives at its committed version.
	data, ver, err := st.Read(committed, 0, 0, 10)
	if err != nil || ver != 1 || string(data) != "durable" {
		t.Fatalf("after recover: %q v%d err %v", data, ver, err)
	}
	// The shadow-only segment is gone entirely.
	if _, _, err := st.Read(fresh, 0, 0, 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fresh segment err = %v, want ErrNotFound", err)
	}
	// The commit slot is free: a new session can prepare and commit.
	st.Shadow("s2", committed, 1, time.Minute, 1, 0)
	st.WriteShadow("s2", committed, 0, []byte("next"))
	if _, _, err := st.Prepare("s2", committed); err != nil {
		t.Fatalf("post-recovery prepare: %v", err)
	}
	if _, _, err := st.CommitPrepared("s2", committed); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}
