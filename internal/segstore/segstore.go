// Package segstore implements a storage provider's versioned segment store
// (paper §3.2, §3.5): committed immutable segment versions, copy-on-write
// shadow copies keyed by writing session, shadow expiration, two-phase
// commit participation, version consolidation, and the per-segment access
// bookkeeping (last access time, traffic history) that data migration needs.
//
// Disk costs and capacity are charged against an internal/disk.Disk; the
// store holds segment bytes in memory, standing in for the provider's
// native file system.
package segstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// KeepVersions is how many committed versions are retained per segment;
// older versions are consolidated away (paper §3.5: "only keeps one or a
// few latest stable versions").
const KeepVersions = 2

// KeepChanges is how many versions of change-range metadata are retained.
// Change sets are just offset ranges (the bytes come from the latest
// version), so keeping a deep history is nearly free and lets replicas
// that fell many versions behind catch up with a delta instead of a full
// segment transfer.
const KeepChanges = 64

// Store errors.
var (
	ErrNotFound   = errors.New("segstore: segment not found")
	ErrNoShadow   = errors.New("segstore: no open shadow for session")
	ErrNoVersion  = errors.New("segstore: version not found")
	ErrPrepared   = errors.New("segstore: another session holds the commit slot")
	ErrNotDirect  = errors.New("segstore: segment is versioned; direct writes forbidden")
	ErrIsDirect   = errors.New("segstore: segment is versioning-off; shadows forbidden")
	ErrExists     = errors.New("segstore: segment already exists")
	ErrExpired    = errors.New("segstore: shadow expired")
	ErrUnprepared = errors.New("segstore: shadow not prepared")
	// ErrCorrupt means stored bytes no longer match their commit-time
	// checksums: the media lied. Readers fail over to another replica; the
	// scrubber drops and re-replicates the version.
	ErrCorrupt = errors.New("segstore: data corruption detected")
	// ErrReadFault is an injected transient media read error (fault layer).
	ErrReadFault = errors.New("segstore: media read error")
)

type shadow struct {
	base     uint64 // base version; 0 for a brand-new segment
	size     int64
	ext      extentMap
	expiry   time.Duration // modeled deadline; zero means no expiry
	prepared bool
	planned  uint64 // version fixed at prepare time
}

type segment struct {
	versions map[uint64][]byte
	latest   uint64
	// sums holds per-version commit-time CRC32C block checksums
	// (wire.SumBlock granularity). They are computed from the bytes the
	// writer intended, before any storage fault can touch the stored copy,
	// and are never recomputed from stored data — so every read can detect
	// silent corruption. Nil for direct (versioning-off) segments.
	sums map[uint64][]uint32
	// changes records, per retained version, the byte ranges that version
	// modified — what stale replicas fetch to catch up (delta sync, §3.6).
	changes map[uint64][]rng
	shadows map[string]*shadow
	// commitOwner holds the session that has prepared a shadow; it
	// serializes commits on the segment.
	commitOwner string

	replDeg           int
	localityThreshold float64
	direct            bool // versioning disabled

	// pinned marks milestone versions that consolidation never reclaims
	// (paper §3.5's planned Elephant-style milestones).
	pinned map[uint64]bool

	lastAccess time.Duration
	history    *accessHistory
}

func (s *segment) latestSize() int64 {
	if s.latest == 0 {
		return 0
	}
	return int64(len(s.versions[s.latest]))
}

// Store is one provider's segment store.
type Store struct {
	clock *simtime.Clock
	disk  *disk.Disk
	// cacheBytes is the provider's memory available for caching segment
	// data: synchronous disk reads are charged only once the stored bytes
	// exceed it; writes always flush asynchronously (write-back).
	cacheBytes int64

	mu   sync.Mutex
	segs map[ids.SegID]*segment
	// trackedHistories caps memory for locality tracking (paper §3.7.2:
	// "the latest one thousand accesses for the most recently accessed one
	// thousand segments").
	trackedHistories int

	// faults is the armed storage fault injector (nil until first use); see
	// faults.go. Guarded by mu.
	faults *faultState

	// Integrity counters (atomics: polled by obs gauges without the lock).
	nVerifiedBlocks atomic.Int64
	nDetected       atomic.Int64
	nScrubDropped   atomic.Int64
	nInjectedWrite  atomic.Int64
	nInjectedRead   atomic.Int64
}

// sealVersionLocked records buf as (seg's) version ver together with its
// commit-time sums, routing the stored bytes through the write-fault
// injector. prev is the content being superseded (torn/lost writes expose
// it). The sums always describe the INTENDED bytes: faults corrupt data on
// its way to media, not the separately-kept checksum metadata.
//
// It models a BACKGROUND write (replica install, delta sync): a bulk fast
// path that is not read back synchronously, so an armed torn/lost/bit-flip
// fault lands silently and waits for a consumer or the scrubber to notice.
func (st *Store) sealVersionLocked(s *segment, ver uint64, buf, prev []byte) {
	if s.sums == nil {
		s.sums = make(map[uint64][]uint32)
	}
	s.sums[ver] = wire.SumsOf(buf)
	s.versions[ver] = st.injectWriteFaultLocked(prev, buf)
}

// sealVerifiedLocked is sealVersionLocked for FOREGROUND commit writes
// (Create, CommitPrepared): the 2PC participant read-back-verifies the burst
// before acknowledging — the write retries until the media took it clean, so
// an acknowledged commit's original copy always matches its sums. Without
// this, a write fault striking the sole not-yet-replicated copy of a fresh
// commit would silently destroy acknowledged data with nothing to repair
// from. (Background replication skips the read-back for throughput; the
// scrubber is its backstop.)
func (st *Store) sealVerifiedLocked(s *segment, ver uint64, buf []byte) {
	if s.sums == nil {
		s.sums = make(map[uint64][]uint32)
	}
	s.sums[ver] = wire.SumsOf(buf)
	s.versions[ver] = buf
}

// MaxTrackedHistories bounds how many segments keep access histories.
const MaxTrackedHistories = 1000

// DefaultCacheBytes approximates a paper-era storage node's memory
// available for file caching.
const DefaultCacheBytes = 512 << 20

// New returns an empty store whose I/O is charged to d.
func New(clock *simtime.Clock, d *disk.Disk) *Store {
	return &Store{clock: clock, disk: d, cacheBytes: DefaultCacheBytes, segs: make(map[ids.SegID]*segment)}
}

// SetCacheBytes overrides the cache threshold (scaled experiments).
func (st *Store) SetCacheBytes(n int64) { st.cacheBytes = n }

// chargeRead charges a synchronous disk read when the working set exceeds
// the cache.
func (st *Store) chargeRead(n int64) {
	if st.disk.Used() > st.cacheBytes {
		st.disk.Read(n)
	}
}

// Disk returns the underlying disk (for load/space reporting).
func (st *Store) Disk() *disk.Disk { return st.disk }

// ShadowCount returns the number of open shadow sessions across all
// segments (observability: each is an uncommitted write session holding a
// commit slot).
func (st *Store) ShadowCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.segs {
		n += len(s.shadows)
	}
	return n
}

// Create materializes a segment at version 1 with the given content. It is
// used for initial creation and for versioning-off segments (direct=true).
func (st *Store) Create(seg ids.SegID, data []byte, replDeg int, locThresh float64, direct bool) error {
	if err := st.disk.Alloc(int64(len(data))); err != nil {
		return err
	}
	st.disk.WriteAsync(int64(len(data)))
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.segs[seg]; ok {
		st.disk.Free(int64(len(data)))
		return ErrExists
	}
	s := &segment{
		versions:          make(map[uint64][]byte),
		latest:            1,
		shadows:           make(map[string]*shadow),
		replDeg:           replDeg,
		localityThreshold: locThresh,
		direct:            direct,
		lastAccess:        st.clock.Now(),
	}
	buf := append([]byte(nil), data...)
	if direct {
		// Direct segments are patched in place and carry no sums.
		s.versions[1] = buf
	} else {
		st.sealVerifiedLocked(s, 1, buf)
	}
	st.segs[seg] = s
	return nil
}

// Install stores (or replaces) a specific committed version of a segment —
// the receive path of replica sync, repair, and migration. Installing an
// older version than the local latest is a no-op.
func (st *Store) Install(seg ids.SegID, ver uint64, data []byte, replDeg int, locThresh float64) error {
	if ver == 0 {
		return fmt.Errorf("segstore: Install version 0")
	}
	if err := st.disk.Alloc(int64(len(data))); err != nil {
		return err
	}
	st.disk.WriteAsync(int64(len(data)))
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		s = &segment{
			versions:          make(map[uint64][]byte),
			shadows:           make(map[string]*shadow),
			replDeg:           replDeg,
			localityThreshold: locThresh,
			lastAccess:        st.clock.Now(),
		}
		st.segs[seg] = s
	}
	if ver <= s.latest {
		st.disk.Free(int64(len(data)))
		return nil
	}
	// Callers verified data against the sender's commit-time sums before
	// installing; summing the verified buffer here reproduces them.
	st.sealVersionLocked(s, ver, append([]byte(nil), data...), s.versions[s.latest])
	s.latest = ver
	st.consolidateLocked(s)
	return nil
}

// Shadow opens (or renews) a copy-on-write shadow of the segment's baseVer
// for the given session. For a new segment (not yet present) the base is
// empty and the segment record is created with the supplied policies.
func (st *Store) Shadow(owner string, seg ids.SegID, baseVer uint64, ttl time.Duration, replDeg int, locThresh float64) (created bool, size int64, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		if baseVer != 0 {
			return false, 0, ErrNotFound
		}
		s = &segment{
			versions:          make(map[uint64][]byte),
			shadows:           make(map[string]*shadow),
			replDeg:           replDeg,
			localityThreshold: locThresh,
			lastAccess:        st.clock.Now(),
		}
		st.segs[seg] = s
	}
	if s.direct {
		return false, 0, ErrIsDirect
	}
	if sh, ok := s.shadows[owner]; ok {
		sh.expiry = st.expiryLocked(ttl)
		return false, sh.size, nil
	}
	if baseVer == 0 {
		baseVer = s.latest
	}
	var baseSize int64
	if baseVer != 0 {
		b, ok := s.versions[baseVer]
		if !ok {
			return false, 0, ErrNoVersion
		}
		baseSize = int64(len(b))
	}
	s.shadows[owner] = &shadow{
		base:   baseVer,
		size:   baseSize,
		expiry: st.expiryLocked(ttl),
	}
	return true, baseSize, nil
}

func (st *Store) expiryLocked(ttl time.Duration) time.Duration {
	if ttl <= 0 {
		return 0
	}
	return st.clock.Now() + ttl
}

func (st *Store) shadowLocked(owner string, seg ids.SegID) (*segment, *shadow, error) {
	s, ok := st.segs[seg]
	if !ok {
		return nil, nil, ErrNotFound
	}
	sh, ok := s.shadows[owner]
	if !ok {
		return nil, nil, ErrNoShadow
	}
	return s, sh, nil
}

// WriteShadow writes into an open shadow, growing it when the write extends
// past the current size.
func (st *Store) WriteShadow(owner string, seg ids.SegID, off int64, data []byte) (int, error) {
	st.mu.Lock()
	s, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		st.mu.Unlock()
		return 0, err
	}
	if sh.prepared {
		st.mu.Unlock()
		return 0, ErrPrepared
	}
	grown := sh.ext.write(off, data)
	if end := off + int64(len(data)); end > sh.size {
		sh.size = end
	}
	s.lastAccess = st.clock.Now()
	st.mu.Unlock()

	if grown > 0 {
		if err := st.disk.Alloc(grown); err != nil {
			return 0, err
		}
	}
	st.disk.WriteAsync(int64(len(data)))
	return len(data), nil
}

// ReadShadow reads the session's shadow view (read-your-writes).
func (st *Store) ReadShadow(owner string, seg ids.SegID, off, n int64) ([]byte, error) {
	st.mu.Lock()
	s, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		st.mu.Unlock()
		return nil, err
	}
	if off >= sh.size {
		st.mu.Unlock()
		return nil, nil
	}
	if off+n > sh.size {
		n = sh.size - off
	}
	dst := make([]byte, n)
	var base []byte
	if sh.base != 0 {
		base = s.versions[sh.base]
	}
	sh.ext.read(off, dst, base)
	s.lastAccess = st.clock.Now()
	st.mu.Unlock()
	st.chargeRead(n)
	return dst, nil
}

// TruncateShadow resizes an open shadow.
func (st *Store) TruncateShadow(owner string, seg ids.SegID, size int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		return err
	}
	if sh.prepared {
		return ErrPrepared
	}
	released := sh.ext.truncate(size)
	sh.size = size
	if released > 0 {
		st.disk.Free(released)
	}
	return nil
}

// Renew resets a shadow's expiration timer (paper §3.5: the application
// must commit or reset the timer before it expires).
func (st *Store) Renew(owner string, seg ids.SegID, ttl time.Duration) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		return err
	}
	sh.expiry = st.expiryLocked(ttl)
	return nil
}

// Drop discards an uncommitted shadow.
func (st *Store) Drop(owner string, seg ids.SegID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		return err
	}
	st.dropShadowLocked(s, owner, sh)
	return nil
}

func (st *Store) dropShadowLocked(s *segment, owner string, sh *shadow) {
	if s.commitOwner == owner {
		s.commitOwner = ""
	}
	st.disk.Free(sh.ext.writtenBytes())
	sh.ext.release()
	delete(s.shadows, owner)
	// A brand-new segment whose only shadow is dropped disappears.
	if s.latest == 0 && len(s.shadows) == 0 {
		for seg, cand := range st.segs {
			if cand == s {
				delete(st.segs, seg)
				break
			}
		}
	}
}

// Prepare is 2PC phase one: it validates the shadow, locks the segment's
// commit slot, and fixes the version the shadow will commit as.
func (st *Store) Prepare(owner string, seg ids.SegID) (plannedVer uint64, size int64, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		return 0, 0, err
	}
	if sh.expiry != 0 && st.clock.Now() > sh.expiry {
		st.dropShadowLocked(s, owner, sh)
		return 0, 0, ErrExpired
	}
	if s.commitOwner != "" && s.commitOwner != owner {
		return 0, 0, ErrPrepared
	}
	// Re-preparing an already-prepared shadow is idempotent (same planned
	// version): a coordinator whose prepare response was lost can safely
	// retry the whole round.
	if sh.prepared {
		return sh.planned, sh.size, nil
	}
	s.commitOwner = owner
	sh.prepared = true
	sh.planned = s.latest + 1
	return sh.planned, sh.size, nil
}

// CommitPrepared is 2PC phase two: the shadow becomes the latest committed
// version. The in-memory index structure is flushed to disk as part of the
// commit (paper §3.5).
func (st *Store) CommitPrepared(owner string, seg ids.SegID) (ver uint64, size int64, err error) {
	st.mu.Lock()
	s, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		st.mu.Unlock()
		return 0, 0, err
	}
	if !sh.prepared {
		st.mu.Unlock()
		return 0, 0, ErrUnprepared
	}
	buf := make([]byte, sh.size)
	var base []byte
	if sh.base != 0 {
		base = s.versions[sh.base]
	}
	sh.ext.read(0, buf, base)
	written := sh.ext.writtenBytes()
	st.sealVerifiedLocked(s, sh.planned, buf)
	if s.changes == nil {
		s.changes = make(map[uint64][]rng)
	}
	var ch []rng
	for _, e := range sh.ext.exts {
		ch = append(ch, rng{off: e.off, end: e.end()})
	}
	// A size change (growth or truncation) invalidates pure range deltas;
	// record the tail as changed so ApplyDelta reproduces the new size.
	if sh.base != 0 && sh.size != int64(len(base)) {
		lo := sh.size
		if int64(len(base)) < lo {
			lo = int64(len(base))
		}
		ch = append(ch, rng{off: lo, end: sh.size})
	}
	s.changes[sh.planned] = mergeRanges(ch)
	s.latest = sh.planned
	s.commitOwner = ""
	sh.ext.release() // the version buffer is a copy; the extents are dead
	delete(s.shadows, owner)
	st.consolidateLocked(s)
	s.lastAccess = st.clock.Now()
	ver, size = sh.planned, sh.size
	st.mu.Unlock()

	// Account: the committed version occupies size; the shadow's extents
	// are released.
	if size > written {
		if err := st.disk.Alloc(size - written); err != nil {
			// Space was validated as the shadow grew; a failure here means
			// concurrent pressure. The commit stands; report it anyway.
			return ver, size, nil
		}
	} else if written > size {
		st.disk.Free(written - size)
	}
	st.disk.WriteAsync(indexFlushBytes)
	return ver, size, nil
}

// indexFlushBytes approximates flushing the shadow's index structure.
const indexFlushBytes = 4096

// AbortPrepared is 2PC rollback: the shadow is discarded.
func (st *Store) AbortPrepared(owner string, seg ids.SegID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, sh, err := st.shadowLocked(owner, seg)
	if err != nil {
		return err
	}
	st.dropShadowLocked(s, owner, sh)
	return nil
}

// consolidateLocked drops versions beyond KeepVersions.
func (st *Store) consolidateLocked(s *segment) {
	for ver, data := range s.versions {
		if ver+KeepVersions <= s.latest && !s.pinned[ver] {
			st.disk.Free(int64(len(data)))
			delete(s.versions, ver)
			delete(s.sums, ver)
		}
	}
	for ver := range s.changes {
		if ver+KeepChanges <= s.latest {
			delete(s.changes, ver)
		}
	}
}

// Read returns up to n bytes of a committed version (0 = latest) starting
// at off, along with the version served.
func (st *Store) Read(seg ids.SegID, ver uint64, off, n int64) ([]byte, uint64, error) {
	st.mu.Lock()
	s, ok := st.segs[seg]
	if !ok || s.latest == 0 {
		st.mu.Unlock()
		return nil, 0, ErrNotFound
	}
	if ver == 0 {
		ver = s.latest
	}
	data, ok := s.versions[ver]
	if !ok {
		st.mu.Unlock()
		return nil, 0, ErrNoVersion
	}
	if st.injectReadFaultLocked() {
		st.mu.Unlock()
		return nil, 0, ErrReadFault
	}
	if off >= int64(len(data)) {
		st.mu.Unlock()
		return nil, ver, nil
	}
	if off+n > int64(len(data)) {
		n = int64(len(data)) - off
	}
	// Verify the checksum blocks covering the requested range before
	// serving. A mismatch fails the read — the client fails over to another
	// replica and the scrubber will drop and re-replicate the version.
	if !s.direct {
		if wire.VerifyRange(data, s.sums[ver], off, n) >= 0 {
			st.nDetected.Add(1)
			st.mu.Unlock()
			return nil, 0, ErrCorrupt
		}
		st.nVerifiedBlocks.Add((off+n-1)/wire.SumBlock - off/wire.SumBlock + 1)
	}
	// Committed versions of versioned segments are immutable once built
	// (CommitPrepared, Install and ApplyDelta all create fresh buffers), so
	// the response aliases the stored bytes instead of copying them —
	// receivers must not mutate message payloads (wire convention). Direct
	// segments are the exception: WriteDirect patches the version in place,
	// so they serve copies.
	var out []byte
	if s.direct {
		out = append([]byte(nil), data[off:off+n]...)
	} else {
		out = data[off : off+n : off+n]
	}
	s.lastAccess = st.clock.Now()
	st.mu.Unlock()
	st.chargeRead(n)
	return out, ver, nil
}

// Fetch returns a full committed version (0 = latest) with the segment's
// policies and commit-time sums, for sync/repair/migration transfers. The
// payload is verified before it leaves so corruption never propagates to
// another replica; sums alias stored metadata and must not be mutated.
func (st *Store) Fetch(seg ids.SegID, ver uint64) (data []byte, v uint64, replDeg int, locThresh float64, sums []uint32, err error) {
	st.mu.Lock()
	s, ok := st.segs[seg]
	if !ok || s.latest == 0 {
		st.mu.Unlock()
		return nil, 0, 0, 0, nil, ErrNotFound
	}
	if ver == 0 {
		ver = s.latest
	}
	d, ok := s.versions[ver]
	if !ok {
		st.mu.Unlock()
		return nil, 0, 0, 0, nil, ErrNoVersion
	}
	if st.injectReadFaultLocked() {
		st.mu.Unlock()
		return nil, 0, 0, 0, nil, ErrReadFault
	}
	if !s.direct {
		if wire.VerifySums(d, s.sums[ver]) >= 0 {
			st.nDetected.Add(1)
			st.mu.Unlock()
			return nil, 0, 0, 0, nil, ErrCorrupt
		}
		st.nVerifiedBlocks.Add(int64(len(s.sums[ver])))
		sums = s.sums[ver]
	}
	// Same zero-copy rule as Read: immutable unless the segment is direct.
	out := d[:len(d):len(d)]
	if s.direct {
		out = append([]byte(nil), d...)
	}
	replDeg, locThresh = s.replDeg, s.localityThreshold
	st.mu.Unlock()
	st.chargeRead(int64(len(out)))
	return out, ver, replDeg, locThresh, sums, nil
}

// WriteDirect applies an in-place write to a versioning-off segment.
func (st *Store) WriteDirect(seg ids.SegID, off int64, data []byte) error {
	st.mu.Lock()
	s, ok := st.segs[seg]
	if !ok {
		st.mu.Unlock()
		return ErrNotFound
	}
	if !s.direct {
		st.mu.Unlock()
		return ErrNotDirect
	}
	buf := s.versions[s.latest]
	end := off + int64(len(data))
	var grown int64
	if end > int64(len(buf)) {
		grown = end - int64(len(buf))
		nb := make([]byte, end)
		copy(nb, buf)
		buf = nb
	}
	copy(buf[off:end], data)
	s.versions[s.latest] = buf
	s.lastAccess = st.clock.Now()
	st.mu.Unlock()
	if grown > 0 {
		if err := st.disk.Alloc(grown); err != nil {
			return err
		}
	}
	st.disk.WriteAsync(int64(len(data)))
	return nil
}

// Delete removes a segment and all versions and shadows.
func (st *Store) Delete(seg ids.SegID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		return ErrNotFound
	}
	var freed int64
	for _, d := range s.versions {
		freed += int64(len(d))
	}
	for _, sh := range s.shadows {
		freed += sh.ext.writtenBytes()
		sh.ext.release()
	}
	st.disk.Free(freed)
	delete(st.segs, seg)
	return nil
}

// Stat describes a segment's local state.
type Stat struct {
	Present   bool
	Version   uint64
	Size      int64
	HasShadow bool
	Direct    bool
	ReplDeg   int
}

// Stat returns the segment's local state.
func (st *Store) Stat(seg ids.SegID) Stat {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		return Stat{}
	}
	return Stat{
		Present:   s.latest != 0,
		Version:   s.latest,
		Size:      s.latestSize(),
		HasShadow: len(s.shadows) > 0,
		Direct:    s.direct,
		ReplDeg:   s.replDeg,
	}
}

// List returns location entries for all committed local segments, for the
// periodic content refresh (paper §3.4.1 event 1).
func (st *Store) List() []wire.LocEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]wire.LocEntry, 0, len(st.segs))
	for seg, s := range st.segs {
		if s.latest == 0 {
			continue
		}
		out = append(out, wire.LocEntry{
			Seg:               seg,
			Version:           s.latest,
			Size:              s.latestSize(),
			ReplDeg:           s.replDeg,
			LocalityThreshold: s.localityThreshold,
		})
	}
	return out
}

// LastAccess returns the segment's last access time on the modeled
// timeline — its "temperature" (paper §3.7.1). ok is false for unknown
// segments.
func (st *Store) LastAccess(seg ids.SegID) (time.Duration, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		return 0, false
	}
	return s.lastAccess, true
}

// ExpireShadows drops shadows whose expiration has passed and that are not
// mid-2PC, returning how many were reclaimed (paper §3.5: garbage left by
// failed clients).
func (st *Store) ExpireShadows() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.clock.Now()
	n := 0
	for _, s := range st.segs {
		for owner, sh := range s.shadows {
			if sh.expiry != 0 && now > sh.expiry && !sh.prepared {
				st.dropShadowLocked(s, owner, sh)
				n++
			}
		}
	}
	return n
}

// CrashRecover models a provider restart over the same disk: committed
// versions are durable and survive, while volatile state — open shadows,
// prepared-but-uncommitted 2PC state, commit-slot locks — is lost. The
// crash window can also tear a committed write that was still in the
// write-back cache, so recovery re-validates every committed version
// against its commit-time sums instead of trusting the store blindly;
// versions that fail are dropped (the repair path re-pulls them from
// healthy replicas). It returns the number of shadow sessions discarded
// and the number of corrupt versions dropped.
func (st *Store) CrashRecover() (shadows, corrupt int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for seg, s := range st.segs {
		for owner, sh := range s.shadows {
			st.dropShadowLocked(s, owner, sh)
			shadows++
		}
		s.commitOwner = ""
		corrupt += st.dropCorruptLocked(seg, s)
	}
	return shadows, corrupt
}

// dropCorruptLocked verifies every committed version of s, dropping those
// whose bytes no longer match their sums and repairing the latest pointer.
// A segment left with no versions (and no shadows) disappears so the repair
// machinery re-pulls it cleanly. Returns the number of versions dropped.
func (st *Store) dropCorruptLocked(seg ids.SegID, s *segment) int {
	if s.direct || s.latest == 0 {
		return 0
	}
	dropped := 0
	var freed int64
	for ver, data := range s.versions {
		if wire.VerifySums(data, s.sums[ver]) < 0 {
			continue
		}
		st.nDetected.Add(1)
		st.nScrubDropped.Add(1)
		freed += int64(len(data))
		delete(s.versions, ver)
		delete(s.sums, ver)
		delete(s.changes, ver)
		dropped++
	}
	if dropped == 0 {
		return 0
	}
	st.disk.Free(freed)
	if _, ok := s.versions[s.latest]; !ok {
		// The latest version was corrupt: fall back to the newest surviving
		// one. Change-set metadata may now reference dropped versions, so
		// wipe it — delta sync falls back to full transfers.
		s.latest = 0
		for ver := range s.versions {
			if ver > s.latest {
				s.latest = ver
			}
		}
		s.changes = nil
	}
	if s.latest == 0 && len(s.shadows) == 0 {
		delete(st.segs, seg)
	}
	return dropped
}

// ScrubSegment verifies all committed versions of one segment against their
// commit-time sums, dropping any that fail. It returns the bytes scanned,
// the number of corrupt versions dropped, and whether the latest committed
// version survived (false tells the scrubber to trigger a repair pull).
//
// The scan is NOT charged to the disk arm here: a scrubber sweeps media
// mostly sequentially, so per-segment charges would bill one random seek
// per segment and saturate the arm on small-segment stores. The caller
// charges one sequential read of the summed scanned bytes per batch
// (see provider.scrubTick).
func (st *Store) ScrubSegment(seg ids.SegID) (scanned int64, dropped int, present bool) {
	st.mu.Lock()
	s, ok := st.segs[seg]
	if !ok || s.latest == 0 {
		st.mu.Unlock()
		return 0, 0, false
	}
	if s.direct {
		st.mu.Unlock()
		return 0, 0, true // no integrity metadata to check
	}
	before := s.latest
	for _, data := range s.versions {
		scanned += int64(len(data))
	}
	dropped = st.dropCorruptLocked(seg, s)
	if dropped == 0 {
		blocks := int64(0)
		for _, sums := range s.sums {
			blocks += int64(len(sums))
		}
		st.nVerifiedBlocks.Add(blocks)
	}
	present = s.latest == before
	st.mu.Unlock()
	return scanned, dropped, present
}

// PinVersion marks a committed version as a milestone: consolidation will
// never reclaim it, so it stays readable forever (paper §3.5 anticipates
// such Elephant-style milestones).
func (st *Store) PinVersion(seg ids.SegID, ver uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		return ErrNotFound
	}
	if ver == 0 {
		ver = s.latest
	}
	if _, ok := s.versions[ver]; !ok {
		return ErrNoVersion
	}
	if s.pinned == nil {
		s.pinned = make(map[uint64]bool)
	}
	s.pinned[ver] = true
	return nil
}

// UnpinVersion releases a milestone; the version becomes reclaimable at the
// next consolidation.
func (st *Store) UnpinVersion(seg ids.SegID, ver uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok {
		return ErrNotFound
	}
	delete(s.pinned, ver)
	return nil
}

// Segments returns the IDs of all committed local segments.
func (st *Store) Segments() []ids.SegID {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ids.SegID, 0, len(st.segs))
	for seg, s := range st.segs {
		if s.latest != 0 {
			out = append(out, seg)
		}
	}
	return out
}

// Len returns the number of committed segments.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.segs {
		if s.latest != 0 {
			n++
		}
	}
	return n
}
