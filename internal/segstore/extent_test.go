package segstore

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtentWriteAndRead(t *testing.T) {
	var m extentMap
	base := []byte("aaaaaaaaaa") // 10 bytes
	if got := m.write(2, []byte("XX")); got != 2 {
		t.Errorf("write covered %d new bytes, want 2", got)
	}
	dst := make([]byte, 10)
	m.read(0, dst, base)
	if string(dst) != "aaXXaaaaaa" {
		t.Errorf("read = %q", dst)
	}
}

func TestExtentOverwriteDoesNotGrow(t *testing.T) {
	var m extentMap
	m.write(0, []byte("abcd"))
	if grown := m.write(1, []byte("ZZ")); grown != 0 {
		t.Errorf("overwrite grew %d bytes", grown)
	}
	dst := make([]byte, 4)
	m.read(0, dst, nil)
	if string(dst) != "aZZd" {
		t.Errorf("read = %q", dst)
	}
	if m.writtenBytes() != 4 {
		t.Errorf("writtenBytes = %d", m.writtenBytes())
	}
}

func TestExtentPartialOverlapSplits(t *testing.T) {
	var m extentMap
	m.write(0, []byte("aaaa"))
	m.write(8, []byte("bbbb"))
	m.write(2, []byte("XXXXXXXX")) // covers 2..10, overlaps both
	dst := make([]byte, 12)
	m.read(0, dst, nil)
	if string(dst) != "aaXXXXXXXXbb" {
		t.Errorf("read = %q", dst)
	}
}

func TestExtentReadBeyondBaseZeros(t *testing.T) {
	var m extentMap
	m.write(5, []byte("Z"))
	dst := make([]byte, 8)
	m.read(0, dst, []byte("ab"))
	want := []byte{'a', 'b', 0, 0, 0, 'Z', 0, 0}
	if !bytes.Equal(dst, want) {
		t.Errorf("read = %v, want %v", dst, want)
	}
}

func TestExtentTruncate(t *testing.T) {
	var m extentMap
	m.write(0, []byte("aaaa"))
	m.write(6, []byte("bbbb"))
	if released := m.truncate(8); released != 2 {
		t.Errorf("truncate released %d, want 2", released)
	}
	if m.maxEnd() != 8 {
		t.Errorf("maxEnd = %d", m.maxEnd())
	}
	if released := m.truncate(2); released != 2+2 {
		t.Errorf("second truncate released %d, want 4", released)
	}
	if m.writtenBytes() != 2 {
		t.Errorf("writtenBytes = %d", m.writtenBytes())
	}
}

func TestExtentCoalesceAdjacent(t *testing.T) {
	var m extentMap
	m.write(0, []byte("aa"))
	m.write(2, []byte("bb"))
	m.write(4, []byte("cc"))
	if len(m.exts) != 1 {
		t.Errorf("adjacent extents not coalesced: %d extents", len(m.exts))
	}
	dst := make([]byte, 6)
	m.read(0, dst, nil)
	if string(dst) != "aabbcc" {
		t.Errorf("read = %q", dst)
	}
}

// TestExtentMatchesFlatModel property-tests the extent map against a naive
// flat-buffer implementation under random write/truncate sequences.
func TestExtentMatchesFlatModel(t *testing.T) {
	type op struct {
		Truncate bool
		Off      uint16
		Len      uint8
		Fill     byte
	}
	f := func(base []byte, ops []op) bool {
		if len(base) > 512 {
			base = base[:512]
		}
		var m extentMap
		flat := append([]byte(nil), base...)
		size := int64(len(base))
		for _, o := range ops {
			off := int64(o.Off % 600)
			if o.Truncate {
				newSize := off
				m.truncate(newSize)
				size = newSize
				if int64(len(flat)) > size {
					flat = flat[:size]
				}
				continue
			}
			n := int64(o.Len%64) + 1
			data := bytes.Repeat([]byte{o.Fill}, int(n))
			m.write(off, data)
			if off+n > size {
				size = off + n
			}
			if int64(len(flat)) < size {
				flat = append(flat, make([]byte, size-int64(len(flat)))...)
			}
			copy(flat[off:off+n], data)
		}
		got := make([]byte, size)
		m.read(0, got, base)
		want := make([]byte, size)
		copy(want, flat)
		return bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExtentEmptyWrite(t *testing.T) {
	var m extentMap
	if m.write(5, nil) != 0 {
		t.Error("empty write grew")
	}
	if len(m.exts) != 0 {
		t.Error("empty write left an extent")
	}
}
