package segstore

import "repro/internal/bufpool"

// Shadow extents are the store's hottest allocation: every SegWrite copies
// its payload into one, and the buffers die in bulk at commit/abort time.
// They are recycled through the process-wide power-of-two size-class pools
// in internal/bufpool (shared with the wire codec and the TCP transport).
//
// Ownership invariant: every pooled slice handed out by poolGet is an
// array-prefix slice of its backing array, and exactly one live slice may
// reference that array. Splitting an extent therefore keeps the head (a
// prefix subslice, which inherits the array) and copies the tail into a
// fresh pooled buffer — returning the head to the pool later returns the
// whole array without freeing bytes someone else still reads.
const (
	minPoolClass = bufpool.MinClass
	maxPoolClass = bufpool.MaxClass
)

// poolGet returns a length-n buffer backed by a pooled array. The contents
// are NOT zeroed; callers must overwrite all n bytes.
func poolGet(n int) []byte { return bufpool.Get(n) }

// poolPut recycles a buffer obtained from poolGet once no live slice
// references its array.
func poolPut(b []byte) { bufpool.Put(b) }
