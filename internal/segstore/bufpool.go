package segstore

import "sync"

// Shadow extents are the store's hottest allocation: every SegWrite copies
// its payload into one, and the buffers die in bulk at commit/abort time.
// They are recycled through power-of-two size-class pools.
//
// Ownership invariant: every pooled slice handed out by poolGet is an
// array-prefix slice of its backing array, and exactly one live slice may
// reference that array. Splitting an extent therefore keeps the head (a
// prefix subslice, which inherits the array) and copies the tail into a
// fresh pooled buffer — returning the head to the pool later returns the
// whole array without freeing bytes someone else still reads.
const (
	minPoolClass = 9  // 512 B
	maxPoolClass = 26 // 64 MB; larger buffers fall through to the GC
)

var bufPools [maxPoolClass - minPoolClass + 1]sync.Pool

// poolClass returns the smallest class whose size holds n bytes.
func poolClass(n int) int {
	c := minPoolClass
	for n > 1<<c {
		c++
	}
	return c
}

// poolGet returns a length-n buffer backed by a pooled array. The contents
// are NOT zeroed; callers must overwrite all n bytes.
func poolGet(n int) []byte {
	if n == 0 {
		return nil
	}
	if n > 1<<maxPoolClass {
		return make([]byte, n)
	}
	c := poolClass(n)
	if p, _ := bufPools[c-minPoolClass].Get().(*[]byte); p != nil {
		return (*p)[:n]
	}
	return make([]byte, n, 1<<c)
}

// poolPut recycles a buffer obtained from poolGet once no live slice
// references its array. Buffers whose capacity is not an exact class size
// (e.g. grown by append past the class) are left to the GC.
func poolPut(b []byte) {
	c := cap(b)
	if c < 1<<minPoolClass || c > 1<<maxPoolClass {
		return
	}
	cls := poolClass(c)
	if 1<<cls != c {
		return
	}
	b = b[:c]
	bufPools[cls-minPoolClass].Put(&b)
}
