package segstore

import (
	"repro/internal/ids"
	"repro/internal/wire"
)

// historyLen is the per-segment access-history depth (paper §3.7.2: "the
// latest one thousand accesses for the most recently accessed one thousand
// segments").
const historyLen = 1000

type accessRec struct {
	from  wire.NodeID
	bytes int64
}

// accessHistory is a ring buffer of recent accesses to one segment.
type accessHistory struct {
	ring []accessRec
	pos  int
	full bool
}

func (h *accessHistory) add(from wire.NodeID, bytes int64) {
	if h.ring == nil {
		h.ring = make([]accessRec, historyLen)
	}
	h.ring[h.pos] = accessRec{from: from, bytes: bytes}
	h.pos++
	if h.pos == len(h.ring) {
		h.pos = 0
		h.full = true
	}
}

func (h *accessHistory) records() []accessRec {
	if !h.full {
		return h.ring[:h.pos]
	}
	return h.ring
}

// share returns the node generating the largest traffic share and that
// share as a fraction of total bytes, plus the number of recorded accesses.
func (h *accessHistory) share() (wire.NodeID, float64, int) {
	recs := h.records()
	if len(recs) == 0 {
		return "", 0, 0
	}
	byNode := make(map[wire.NodeID]int64)
	var total int64
	for _, r := range recs {
		byNode[r.from] += r.bytes
		total += r.bytes
	}
	var best wire.NodeID
	var bestBytes int64
	for n, b := range byNode {
		if b > bestBytes || (b == bestBytes && n < best) {
			best, bestBytes = n, b
		}
	}
	if total == 0 {
		return "", 0, len(recs)
	}
	return best, float64(bestBytes) / float64(total), len(recs)
}

// RecordAccess notes that `from` transferred `bytes` of segment data. Only
// segments under a locality-driven policy keep history; the store caps the
// number of tracked segments by evicting the least recently accessed
// history.
func (st *Store) RecordAccess(seg ids.SegID, from wire.NodeID, bytes int64) {
	if from == "" || bytes <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok || s.localityThreshold <= 0 {
		return
	}
	if s.history == nil {
		if st.trackedHistories >= MaxTrackedHistories {
			st.evictOldestHistoryLocked()
		}
		s.history = &accessHistory{}
		st.trackedHistories++
	}
	s.history.add(from, bytes)
	s.lastAccess = st.clock.Now()
}

func (st *Store) evictOldestHistoryLocked() {
	var victim *segment
	for _, s := range st.segs {
		if s.history == nil {
			continue
		}
		if victim == nil || s.lastAccess < victim.lastAccess {
			victim = s
		}
	}
	if victim != nil {
		victim.history = nil
		st.trackedHistories--
	}
}

// TrafficShare reports the dominant remote traffic source for a
// locality-managed segment: the node, its byte share, and how many accesses
// back the estimate. ok is false when the segment has no history.
func (st *Store) TrafficShare(seg ids.SegID) (node wire.NodeID, frac float64, samples int, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, exists := st.segs[seg]
	if !exists || s.history == nil {
		return "", 0, 0, false
	}
	node, frac, samples = s.history.share()
	return node, frac, samples, samples > 0
}

// LocalityThreshold returns the segment's locality policy threshold
// (0 when not under a locality policy or unknown).
func (st *Store) LocalityThreshold(seg ids.SegID) float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.segs[seg]; ok {
		return s.localityThreshold
	}
	return 0
}
