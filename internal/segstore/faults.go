package segstore

import (
	"bytes"
	"math/rand"
	"sort"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Storage fault injection: the disk-level counterpart of simnet's Fabric
// fault layer. Where the Fabric drops and delays messages, this layer makes
// the store's media lie — seeded bit flips, torn writes, lost writes, and
// transient read errors — so chaos schedules can corrupt data the same way
// they already partition links. Faults corrupt stored DATA only, never the
// commit-time checksum metadata: the whole point is that verification
// catches the divergence.
//
// All randomness is drawn from one seeded rng guarded by the store mutex,
// so a given seed yields the same fault sequence for the same operation
// order.

// FaultConfig arms probabilistic storage faults on a store. Probabilities
// are per committed version write (BitFlip/TornWrite/LostWrite, evaluated
// as disjoint outcomes of a single roll) or per committed read (ReadErr).
type FaultConfig struct {
	Seed      int64
	BitFlip   float64 // flip one random bit of the stored copy
	TornWrite float64 // persist a prefix; the tail reverts to prior contents
	LostWrite float64 // the write never reaches media; prior contents remain
	ReadErr   float64 // transient media read error (ErrReadFault)
}

type faultState struct {
	cfg FaultConfig
	rng *rand.Rand
}

// InjectFaults arms (or re-arms) storage fault injection. A zero-probability
// config still seeds the rng used by Corrupt/CorruptAny.
func (st *Store) InjectFaults(cfg FaultConfig) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.faults = &faultState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed | 1))}
}

// ClearFaults disarms probabilistic injection. Already-corrupted data stays
// corrupted — healing is the scrubber's job, not the injector's.
func (st *Store) ClearFaults() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.faults != nil {
		st.faults.cfg = FaultConfig{Seed: st.faults.cfg.Seed}
	}
}

// faultsLocked returns the fault state, lazily seeding one (probabilities
// all zero) so direct corruption works without prior arming.
func (st *Store) faultsLocked() *faultState {
	if st.faults == nil {
		st.faults = &faultState{rng: rand.New(rand.NewSource(1))}
	}
	return st.faults
}

// injectWriteFaultLocked applies an armed write fault to a freshly built
// version buffer, returning the bytes that actually reach media. prev is the
// superseded version's content (nil for a first write): torn and lost writes
// expose stale bytes from it. The corrupted result is always a new buffer and
// is only counted as an injection when it differs from the intended bytes —
// a "fault" that leaves identical content is not corruption.
func (st *Store) injectWriteFaultLocked(prev, buf []byte) []byte {
	f := st.faults
	if f == nil || len(buf) == 0 {
		return buf
	}
	c := f.cfg
	if c.BitFlip+c.TornWrite+c.LostWrite <= 0 {
		return buf
	}
	roll := f.rng.Float64()
	var bad []byte
	switch {
	case roll < c.BitFlip:
		bad = append([]byte(nil), buf...)
		bit := f.rng.Intn(len(bad) * 8)
		bad[bit/8] ^= 1 << (bit % 8)
	case roll < c.BitFlip+c.TornWrite:
		cut := f.rng.Intn(len(buf))
		bad = make([]byte, len(buf))
		copy(bad, buf[:cut])
		copy(bad[cut:], prevTail(prev, cut, len(buf)))
	case roll < c.BitFlip+c.TornWrite+c.LostWrite:
		bad = make([]byte, len(buf))
		copy(bad, prev)
	default:
		return buf
	}
	if bytes.Equal(bad, buf) {
		return buf
	}
	st.nInjectedWrite.Add(1)
	return bad
}

// prevTail returns the stale bytes a torn write leaves beyond cut: the prior
// version's content where it existed, zeros (never-written media) beyond it.
func prevTail(prev []byte, cut, size int) []byte {
	tail := make([]byte, size-cut)
	if cut < len(prev) {
		end := size
		if end > len(prev) {
			end = len(prev)
		}
		copy(tail, prev[cut:end])
	}
	return tail
}

// injectReadFaultLocked rolls for a transient media read error.
func (st *Store) injectReadFaultLocked() bool {
	f := st.faults
	if f == nil || f.cfg.ReadErr <= 0 {
		return false
	}
	if f.rng.Float64() >= f.cfg.ReadErr {
		return false
	}
	st.nInjectedRead.Add(1)
	return true
}

// Corrupt flips one random bit in the latest committed version of seg,
// modeling silent bit rot at rest. It returns false when the segment is
// absent, direct (no integrity metadata to catch it), or empty. The
// corrupted buffer REPLACES the stored one: committed versions are served
// zero-copy, and in-flight replies aliasing the old buffer must keep the
// bytes they were verified with.
func (st *Store) Corrupt(seg ids.SegID) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok || s.direct || s.latest == 0 {
		return false
	}
	return st.corruptLocked(s)
}

func (st *Store) corruptLocked(s *segment) bool {
	data := s.versions[s.latest]
	if len(data) == 0 {
		return false
	}
	f := st.faultsLocked()
	bad := append([]byte(nil), data...)
	bit := f.rng.Intn(len(bad) * 8)
	bad[bit/8] ^= 1 << (bit % 8)
	s.versions[s.latest] = bad
	st.nInjectedWrite.Add(1)
	return true
}

// CorruptAny bit-flips one committed, non-direct, non-empty segment chosen
// by the seeded rng (over a sorted ID list, for determinism) and returns
// which one. ok is false when no eligible segment exists.
func (st *Store) CorruptAny() (ids.SegID, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var cands []ids.SegID
	for seg, s := range st.segs {
		if !s.direct && s.latest != 0 && len(s.versions[s.latest]) > 0 {
			cands = append(cands, seg)
		}
	}
	if len(cands) == 0 {
		return ids.SegID{}, false
	}
	sort.Slice(cands, func(i, j int) bool {
		return bytes.Compare(cands[i][:], cands[j][:]) < 0
	})
	seg := cands[st.faultsLocked().rng.Intn(len(cands))]
	st.corruptLocked(st.segs[seg])
	return seg, true
}

// IntegrityStats is a snapshot of the store's integrity counters.
type IntegrityStats struct {
	VerifiedBlocks int64 // checksum blocks that verified clean on reads
	Detected       int64 // corrupt-version detections (reads, fetches, scrubs, recovery)
	ScrubDropped   int64 // corrupt versions dropped by scrub/recovery
	InjectedWrite  int64 // injected write faults that changed stored bytes
	InjectedRead   int64 // injected transient read errors
}

// IntegrityStats returns the current counters. Atomics: safe without the
// store lock (obs gauge callbacks poll this).
func (st *Store) IntegrityStats() IntegrityStats {
	return IntegrityStats{
		VerifiedBlocks: st.nVerifiedBlocks.Load(),
		Detected:       st.nDetected.Load(),
		ScrubDropped:   st.nScrubDropped.Load(),
		InjectedWrite:  st.nInjectedWrite.Load(),
		InjectedRead:   st.nInjectedRead.Load(),
	}
}

// VerifyVersion reports whether the stored bytes of (seg, ver; 0 = latest)
// currently match their commit-time sums. Absent segments and versions
// report false; direct segments (no sums) report true. Read-only: no
// counters, no disk charge — a test/oracle hook.
func (st *Store) VerifyVersion(seg ids.SegID, ver uint64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.segs[seg]
	if !ok || s.latest == 0 {
		return false
	}
	if s.direct {
		return true
	}
	if ver == 0 {
		ver = s.latest
	}
	data, ok := s.versions[ver]
	if !ok {
		return false
	}
	return wire.VerifySums(data, s.sums[ver]) < 0
}

// VerifyAll re-checks every committed version of every segment against its
// sums without mutating anything, returning the number of corrupt versions.
// Read-only oracle for tests and admin tooling.
func (st *Store) VerifyAll() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	bad := 0
	for _, s := range st.segs {
		if s.direct {
			continue
		}
		for ver, data := range s.versions {
			if wire.VerifySums(data, s.sums[ver]) >= 0 {
				bad++
			}
		}
	}
	return bad
}
