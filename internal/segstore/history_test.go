package segstore

import (
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/simtime"
)

func TestTrafficShareDominantNode(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0.8, false)
	for i := 0; i < 30; i++ {
		st.RecordAccess(seg, "p1", 100)
	}
	for i := 0; i < 10; i++ {
		st.RecordAccess(seg, "p2", 100)
	}
	node, frac, samples, ok := st.TrafficShare(seg)
	if !ok || node != "p1" || samples != 40 {
		t.Fatalf("TrafficShare = %v %v %d %v", node, frac, samples, ok)
	}
	if frac < 0.74 || frac > 0.76 {
		t.Errorf("frac = %v, want 0.75", frac)
	}
}

func TestNoHistoryWithoutLocalityPolicy(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0, false) // threshold 0: no policy
	st.RecordAccess(seg, "p1", 100)
	if _, _, _, ok := st.TrafficShare(seg); ok {
		t.Error("history recorded for non-locality segment")
	}
}

func TestRecordAccessIgnoresEmptyAndZero(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0.8, false)
	st.RecordAccess(seg, "", 100)
	st.RecordAccess(seg, "p1", 0)
	if _, _, _, ok := st.TrafficShare(seg); ok {
		t.Error("degenerate accesses recorded")
	}
}

func TestHistoryRingWrapsAtLimit(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0.8, false)
	// Old traffic all from p1, then historyLen accesses from p2: p1 must be
	// entirely forgotten.
	for i := 0; i < 500; i++ {
		st.RecordAccess(seg, "p1", 10)
	}
	for i := 0; i < historyLen; i++ {
		st.RecordAccess(seg, "p2", 10)
	}
	node, frac, samples, ok := st.TrafficShare(seg)
	if !ok || node != "p2" || frac != 1.0 || samples != historyLen {
		t.Fatalf("after wrap: %v %v %d %v", node, frac, samples, ok)
	}
}

func TestHistoryEvictionCap(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	st := New(clock, disk.New(clock, "t", disk.SCSI10K(), 1<<30))
	segs := make([]ids.SegID, MaxTrackedHistories+10)
	for i := range segs {
		segs[i] = ids.New()
		st.Create(segs[i], []byte("x"), 1, 0.8, false)
		st.RecordAccess(segs[i], "p1", 10)
	}
	tracked := 0
	for _, seg := range segs {
		if _, _, _, ok := st.TrafficShare(seg); ok {
			tracked++
		}
	}
	if tracked > MaxTrackedHistories {
		t.Errorf("tracked %d histories, cap %d", tracked, MaxTrackedHistories)
	}
	// The newest segments must still be tracked.
	if _, _, _, ok := st.TrafficShare(segs[len(segs)-1]); !ok {
		t.Error("most recent segment evicted")
	}
}

func TestLocalityThresholdAccessor(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0.65, false)
	if got := st.LocalityThreshold(seg); got != 0.65 {
		t.Errorf("LocalityThreshold = %v", got)
	}
	if got := st.LocalityThreshold(ids.New()); got != 0 {
		t.Errorf("unknown segment threshold = %v", got)
	}
}

func TestTrafficShareTieBreaksDeterministically(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0.8, false)
	st.RecordAccess(seg, "p2", 100)
	st.RecordAccess(seg, "p1", 100)
	node, _, _, _ := st.TrafficShare(seg)
	if node != "p1" {
		t.Errorf("tie broke to %v, want p1 (lexicographic)", node)
	}
}

func BenchmarkRecordAccess(b *testing.B) {
	clock := simtime.NewClock(1)
	st := New(clock, disk.New(clock, "t", disk.SCSI10K(), 1<<40))
	seg := ids.New()
	st.Create(seg, []byte("x"), 1, 0.8, false)
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("p%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.RecordAccess(seg, "p1", 4096)
	}
}
