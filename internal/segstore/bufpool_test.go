package segstore

import (
	"bytes"
	"testing"

	"repro/internal/ids"
)

func TestPoolClasses(t *testing.T) {
	for _, tc := range []struct{ n, wantCap int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096}, {5000, 8192},
	} {
		b := poolGet(tc.n)
		if len(b) != tc.n || cap(b) != tc.wantCap {
			t.Errorf("poolGet(%d): len %d cap %d, want len %d cap %d",
				tc.n, len(b), cap(b), tc.n, tc.wantCap)
		}
		poolPut(b)
	}
	if b := poolGet(0); b != nil {
		t.Errorf("poolGet(0) = %v", b)
	}
	// Oversize requests bypass the pool but still work.
	huge := poolGet(1<<maxPoolClass + 1)
	if len(huge) != 1<<maxPoolClass+1 {
		t.Errorf("oversize poolGet wrong length")
	}
	poolPut(huge) // dropped, not recycled — must not panic
	// Non-class capacities (e.g. append-grown) are dropped silently.
	poolPut(make([]byte, 700))
	poolPut(nil)
}

func TestPoolRecycles(t *testing.T) {
	b := poolGet(1024)
	for i := range b {
		b[i] = 0xEE
	}
	poolPut(b)
	// The next same-class Get may return the same array with stale bytes;
	// poolGet documents that callers overwrite, so just verify shape.
	c := poolGet(900)
	if len(c) != 900 || cap(c) != 1024 {
		t.Errorf("recycled buffer: len %d cap %d", len(c), cap(c))
	}
}

// TestExtentSplitOwnership drives the head-keep/tail-copy split and checks
// the shadow still reads back correctly — if the tail aliased the head's
// array, recycling one would corrupt the other.
func TestExtentSplitOwnership(t *testing.T) {
	var m extentMap
	mk := func(n int, v byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = v
		}
		return b
	}
	m.write(0, mk(1000, 1))  // one extent [0,1000)
	m.write(400, mk(100, 2)) // split: head [0,400), new [400,500), tail [500,1000)
	got := make([]byte, 1000)
	m.read(0, got, nil)
	for i, b := range got {
		want := byte(1)
		if i >= 400 && i < 500 {
			want = 2
		}
		if b != want {
			t.Fatalf("byte %d = %d, want %d", i, b, want)
		}
	}
	// Overwrite everything: old extents must be recycled without
	// double-free (the release of an aliased array would show up as
	// corruption on the next pooled write).
	m.write(0, mk(1000, 3))
	m.read(0, got, nil)
	for i, b := range got {
		if b != 3 {
			t.Fatalf("byte %d = %d after full overwrite", i, b)
		}
	}
	if w := m.writtenBytes(); w != 1000 {
		t.Fatalf("writtenBytes = %d", w)
	}
	m.release()
	if m.writtenBytes() != 0 {
		t.Fatal("release left extents behind")
	}
}

// TestZeroCopyReadSurvivesNewCommit pins the zero-copy contract: bytes
// served from a committed version stay stable after later commits replace
// the latest version and consolidation drops old ones.
func TestZeroCopyReadSurvivesNewCommit(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	if err := st.Create(seg, bytes.Repeat([]byte{7}, 256), 1, 0, false); err != nil {
		t.Fatal(err)
	}
	v1, _, err := st.Read(seg, 1, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Commit several new versions so consolidation reclaims version 1.
	for i := 0; i < KeepVersions+2; i++ {
		if _, _, err := st.Shadow("w", seg, 0, 0, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.WriteShadow("w", seg, 0, bytes.Repeat([]byte{byte(10 + i)}, 256)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Prepare("w", seg); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.CommitPrepared("w", seg); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range v1 {
		if b != 7 {
			t.Fatalf("served v1 byte %d mutated to %d after later commits", i, b)
		}
	}
}

// TestDirectReadIsACopy pins the exception: versioning-off segments mutate
// in place, so their reads must never alias the stored buffer.
func TestDirectReadIsACopy(t *testing.T) {
	st := newStore(t)
	seg := ids.New()
	if err := st.Create(seg, bytes.Repeat([]byte{1}, 64), 1, 0, true); err != nil {
		t.Fatal(err)
	}
	before, _, err := st.Read(seg, 0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteDirect(seg, 0, bytes.Repeat([]byte{9}, 64)); err != nil {
		t.Fatal(err)
	}
	for i, b := range before {
		if b != 1 {
			t.Fatalf("direct read aliased storage: byte %d = %d", i, b)
		}
	}
	// And the fetch path too.
	f1, _, _, _, _, err := st.Fetch(seg, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.WriteDirect(seg, 0, bytes.Repeat([]byte{5}, 64))
	for i, b := range f1 {
		if b != 9 {
			t.Fatalf("direct fetch aliased storage: byte %d = %d", i, b)
		}
	}
}
