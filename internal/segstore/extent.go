package segstore

import "sort"

// extent is one contiguous written range of a copy-on-write shadow.
type extent struct {
	off  int64
	data []byte
}

func (e extent) end() int64 { return e.off + int64(len(e.data)) }

// extentMap is the index structure the paper describes for shadow copies
// (§3.5): it maps region ranges to the newly written bytes; regions not
// covered resolve to the base version. Extents are kept sorted and
// non-overlapping. baseLimit remembers the lowest truncation point so base
// bytes cut off by a truncate never resurface when the shadow regrows.
type extentMap struct {
	exts      []extent
	baseLimit int64 // -1 (via limited flag) means no truncation yet
	limited   bool
}

// write inserts data at off, replacing any overlapped ranges. It returns
// the number of newly covered bytes (for space accounting). The payload is
// copied into a pooled buffer, so the caller's data (typically a wire
// message) is never retained.
func (m *extentMap) write(off int64, data []byte) int64 {
	if len(data) == 0 {
		return 0
	}
	newExt := extent{off: off, data: poolGet(len(data))}
	copy(newExt.data, data)
	covered := m.coveredWithin(off, newExt.end())
	out := m.exts[:0:0]
	for _, e := range m.exts {
		switch {
		case e.end() <= newExt.off || e.off >= newExt.end():
			out = append(out, e)
		default:
			// Overlap: keep the non-overlapped head and/or tail. The head
			// stays an array-prefix subslice of e's buffer (inheriting its
			// pool ownership); the tail would alias the middle of the same
			// array, so it moves into its own pooled buffer.
			headKept := false
			if e.off < newExt.off {
				out = append(out, extent{off: e.off, data: e.data[:newExt.off-e.off]})
				headKept = true
			}
			if e.end() > newExt.end() {
				src := e.data[newExt.end()-e.off:]
				tail := extent{off: newExt.end(), data: poolGet(len(src))}
				copy(tail.data, src)
				out = append(out, tail)
			}
			if !headKept {
				poolPut(e.data)
			}
		}
	}
	out = append(out, newExt)
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	m.exts = m.coalesce(out)
	return int64(len(data)) - covered
}

// coalesce merges adjacent extents to bound the index size, recycling the
// buffers the merge empties.
func (m *extentMap) coalesce(exts []extent) []extent {
	if len(exts) < 2 {
		return exts
	}
	out := exts[:1]
	for _, e := range exts[1:] {
		last := &out[len(out)-1]
		if last.end() == e.off {
			if len(last.data)+len(e.data) <= cap(last.data) {
				last.data = append(last.data, e.data...)
			} else {
				merged := poolGet(len(last.data) + len(e.data))
				copy(merged, last.data)
				copy(merged[len(last.data):], e.data)
				poolPut(last.data)
				last.data = merged
			}
			poolPut(e.data)
		} else {
			out = append(out, e)
		}
	}
	return out
}

// coveredWithin returns how many bytes in [lo,hi) existing extents cover.
func (m *extentMap) coveredWithin(lo, hi int64) int64 {
	var n int64
	for _, e := range m.exts {
		a, b := e.off, e.end()
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			n += b - a
		}
	}
	return n
}

// read fills dst with the shadow view of [off, off+len(dst)): written
// extents win, everything else comes from base (which may be nil, meaning
// zeros).
func (m *extentMap) read(off int64, dst []byte, base []byte) {
	// Start from the base (or zeros). Base bytes beyond a past truncation
	// point are dead.
	baseLen := int64(len(base))
	if m.limited && m.baseLimit < baseLen {
		baseLen = m.baseLimit
	}
	for i := range dst {
		p := off + int64(i)
		if base != nil && p < baseLen {
			dst[i] = base[p]
		} else {
			dst[i] = 0
		}
	}
	hi := off + int64(len(dst))
	for _, e := range m.exts {
		if e.end() <= off || e.off >= hi {
			continue
		}
		a := e.off
		if a < off {
			a = off
		}
		b := e.end()
		if b > hi {
			b = hi
		}
		copy(dst[a-off:b-off], e.data[a-e.off:b-e.off])
	}
}

// truncate drops written bytes at or beyond size and returns how many
// covered bytes were released.
func (m *extentMap) truncate(size int64) int64 {
	if !m.limited || size < m.baseLimit {
		m.limited = true
		m.baseLimit = size
	}
	var released int64
	out := m.exts[:0]
	for _, e := range m.exts {
		switch {
		case e.end() <= size:
			out = append(out, e)
		case e.off >= size:
			released += int64(len(e.data))
			poolPut(e.data)
		default:
			released += e.end() - size
			e.data = e.data[:size-e.off]
			out = append(out, e)
		}
	}
	m.exts = out
	return released
}

// release recycles every extent buffer and empties the map. Callers must
// ensure nothing aliases the extents — committed versions and read
// responses are always copies, so a shadow's death is a safe point.
func (m *extentMap) release() {
	for _, e := range m.exts {
		poolPut(e.data)
	}
	m.exts = nil
}

// writtenBytes returns the total bytes the shadow has materialized.
func (m *extentMap) writtenBytes() int64 {
	var n int64
	for _, e := range m.exts {
		n += int64(len(e.data))
	}
	return n
}

// maxEnd returns the highest written offset end (0 when empty).
func (m *extentMap) maxEnd() int64 {
	var n int64
	for _, e := range m.exts {
		if e.end() > n {
			n = e.end()
		}
	}
	return n
}
