package namespace

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Op is one durable namespace mutation appended to the write-ahead log.
// The paper stores the directory tree in Berkeley DB with write-ahead
// logging and checkpointing; this package reproduces that recovery story
// with its own log.
type Op struct {
	Kind   OpKind
	Path   string
	Entry  wire.FileEntry // Create
	NewVer uint64         // Commit
	Size   int64          // Commit
}

// OpKind discriminates log records.
type OpKind uint8

// Log record kinds.
const (
	OpMkdir OpKind = iota
	OpRmdir
	OpCreate
	OpRemove
	OpCommit
)

// WAL persists namespace mutations and periodic checkpoints.
type WAL interface {
	// Append durably logs one op.
	Append(op Op) error
	// Checkpoint replaces the log with a full-state snapshot.
	Checkpoint(snapshot []byte) error
	// Recover returns the latest snapshot (nil if none) and the ops logged
	// after it.
	Recover() (snapshot []byte, ops []Op, err error)
}

// MemWAL is an in-memory WAL for tests and simulations.
type MemWAL struct {
	mu       sync.Mutex
	snapshot []byte
	ops      []Op
}

// Append implements WAL.
func (w *MemWAL) Append(op Op) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ops = append(w.ops, op)
	return nil
}

// Checkpoint implements WAL.
func (w *MemWAL) Checkpoint(snapshot []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.snapshot = append([]byte(nil), snapshot...)
	w.ops = nil
	return nil
}

// Recover implements WAL.
func (w *MemWAL) Recover() ([]byte, []Op, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.snapshot...), append([]Op(nil), w.ops...), nil
}

// OpCount reports the number of unflushed ops (diagnostics/tests).
func (w *MemWAL) OpCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.ops)
}

// FileWAL is a file-backed WAL: a gob stream of ops in <dir>/wal.log and a
// snapshot in <dir>/checkpoint. Used by the cmd/namespaced daemon.
type FileWAL struct {
	mu  sync.Mutex
	dir string
	f   *os.File
	enc *gob.Encoder
}

// NewFileWAL opens (creating if needed) a WAL in dir.
func NewFileWAL(dir string) (*FileWAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("namespace: wal dir: %w", err)
	}
	w := &FileWAL{dir: dir}
	if err := w.openLog(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *FileWAL) logPath() string  { return filepath.Join(w.dir, "wal.log") }
func (w *FileWAL) ckptPath() string { return filepath.Join(w.dir, "checkpoint") }

func (w *FileWAL) openLog() error {
	f, err := os.OpenFile(w.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("namespace: open wal: %w", err)
	}
	w.f = f
	w.enc = gob.NewEncoder(f)
	return nil
}

// Append implements WAL.
func (w *FileWAL) Append(op Op) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(op); err != nil {
		return fmt.Errorf("namespace: wal append: %w", err)
	}
	return w.f.Sync()
}

// Checkpoint implements WAL.
func (w *FileWAL) Checkpoint(snapshot []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp := w.ckptPath() + ".tmp"
	if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
		return fmt.Errorf("namespace: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp, w.ckptPath()); err != nil {
		return fmt.Errorf("namespace: checkpoint rename: %w", err)
	}
	w.f.Close()
	if err := os.Remove(w.logPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("namespace: truncate wal: %w", err)
	}
	return w.openLog()
}

// Recover implements WAL.
func (w *FileWAL) Recover() ([]byte, []Op, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var snapshot []byte
	if b, err := os.ReadFile(w.ckptPath()); err == nil {
		snapshot = b
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("namespace: read checkpoint: %w", err)
	}
	var ops []Op
	b, err := os.ReadFile(w.logPath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return snapshot, nil, nil
		}
		return nil, nil, fmt.Errorf("namespace: read wal: %w", err)
	}
	dec := gob.NewDecoder(bytes.NewReader(b))
	for {
		var op Op
		if err := dec.Decode(&op); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A torn final record after a crash is expected; recover what
			// precedes it.
			break
		}
		ops = append(ops, op)
	}
	return snapshot, ops, nil
}

// Close releases the log file.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// snapshotState is the checkpoint payload: every directory and file.
type snapshotState struct {
	Dirs  []string
	Files []wire.FileEntry
}

func init() {
	gob.Register(Op{})
	gob.Register(snapshotState{})
	gob.Register(ids.SegID{})
}
