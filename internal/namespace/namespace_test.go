package namespace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simtime"
	"repro/internal/wire"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(simtime.NewClock(0.0001), Config{OpCost: time.Microsecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMkdirLookupCreate(t *testing.T) {
	s := newServer(t)
	if r := s.Mkdir("/data"); !r.OK {
		t.Fatalf("mkdir: %v", r.Err)
	}
	fid := ids.New()
	if r := s.Create("/data/f1", fid, wire.DefaultAttrs()); !r.OK {
		t.Fatalf("create: %v", r.Err)
	}
	r := s.Lookup("/data/f1")
	if !r.OK || r.Entry.FileID != fid || r.Entry.Version != 0 {
		t.Fatalf("lookup = %+v", r)
	}
	if s.Lookup("/data/nope").OK {
		t.Error("lookup of missing file succeeded")
	}
	if s.Lookup("/data").OK {
		t.Error("lookup of a directory returned a file entry")
	}
}

func TestCreateRequiresParent(t *testing.T) {
	s := newServer(t)
	if r := s.Create("/no/such/dir/f", ids.New(), wire.DefaultAttrs()); r.OK {
		t.Error("create without parent succeeded")
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := newServer(t)
	s.Create("/f", ids.New(), wire.DefaultAttrs())
	if r := s.Create("/f", ids.New(), wire.DefaultAttrs()); r.OK {
		t.Error("duplicate create succeeded")
	}
}

func TestMkdirNested(t *testing.T) {
	s := newServer(t)
	s.Mkdir("/a")
	s.Mkdir("/a/b")
	if r := s.Mkdir("/a/b"); r.OK {
		t.Error("duplicate mkdir succeeded")
	}
	if r := s.Mkdir("/x/y"); r.OK {
		t.Error("mkdir without parent succeeded")
	}
}

func TestRmdir(t *testing.T) {
	s := newServer(t)
	s.Mkdir("/a")
	s.Mkdir("/a/b")
	if r := s.Rmdir("/a"); r.OK {
		t.Error("rmdir of non-empty dir succeeded")
	}
	if r := s.Rmdir("/a/b"); !r.OK {
		t.Errorf("rmdir: %v", r.Err)
	}
	if r := s.Rmdir("/a"); !r.OK {
		t.Errorf("rmdir now-empty: %v", r.Err)
	}
}

func TestRemoveReturnsEntry(t *testing.T) {
	s := newServer(t)
	fid := ids.New()
	s.Create("/f", fid, wire.DefaultAttrs())
	r := s.Remove("/f")
	if !r.OK || r.Entry.FileID != fid {
		t.Fatalf("remove = %+v", r)
	}
	if s.Lookup("/f").OK {
		t.Error("file present after remove")
	}
	if r := s.Remove("/f"); r.OK {
		t.Error("double remove succeeded")
	}
}

func TestReadDir(t *testing.T) {
	s := newServer(t)
	s.Mkdir("/d")
	s.Mkdir("/d/sub")
	s.Create("/d/b", ids.New(), wire.DefaultAttrs())
	s.Create("/d/a", ids.New(), wire.DefaultAttrs())
	r := s.ReadDir("/d")
	if !r.OK || len(r.Entries) != 3 {
		t.Fatalf("readdir = %+v", r)
	}
	// Sorted: a, b, sub.
	if r.Entries[0].Name != "a" || r.Entries[2].Name != "sub" || !r.Entries[2].IsDir {
		t.Errorf("entries = %+v", r.Entries)
	}
	if r.Entries[0].Entry == nil {
		t.Error("file entry missing in listing")
	}
	if rr := s.ReadDir("/d/a"); rr.OK {
		t.Error("readdir of a file succeeded")
	}
	root := s.ReadDir("/")
	if !root.OK || len(root.Entries) != 1 {
		t.Errorf("root listing = %+v", root)
	}
}

func TestCommitProtocol(t *testing.T) {
	s := newServer(t)
	s.Create("/f", ids.New(), wire.DefaultAttrs())

	// Begin at base 0 succeeds.
	b := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0})
	if !b.OK || b.Ticket == 0 {
		t.Fatalf("begin = %+v", b)
	}
	// A second begin while the window is open blocks.
	if b2 := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0}); !b2.Blocked {
		t.Fatalf("concurrent begin = %+v", b2)
	}
	// Complete advances the version.
	if c := s.CommitComplete(wire.NSCommitComplete{Path: "/f", NewVer: 1, Ticket: b.Ticket, NewSize: 42}); !c.OK {
		t.Fatalf("complete = %+v", c)
	}
	e := s.Lookup("/f").Entry
	if e.Version != 1 || e.Size != 42 {
		t.Fatalf("entry after commit = %+v", e)
	}
	// A stale base now conflicts.
	if b3 := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0}); !b3.Conflict || b3.LatestVer != 1 {
		t.Fatalf("stale begin = %+v", b3)
	}
	// Current base succeeds again.
	if b4 := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 1}); !b4.OK {
		t.Fatalf("fresh begin = %+v", b4)
	}
}

func TestCommitAbortReleasesWindow(t *testing.T) {
	s := newServer(t)
	s.Create("/f", ids.New(), wire.DefaultAttrs())
	b := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0})
	s.CommitAbort(wire.NSCommitAbort{Path: "/f", Ticket: b.Ticket})
	if b2 := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0}); !b2.OK {
		t.Fatalf("begin after abort = %+v", b2)
	}
}

func TestCommitWindowExpires(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	s, _ := NewServer(clock, Config{OpCost: time.Microsecond, CommitWindow: time.Second}, nil)
	s.Create("/f", ids.New(), wire.DefaultAttrs())
	s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0})
	clock.Sleep(5 * time.Second)
	if b := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0}); !b.OK {
		t.Fatalf("begin after window expiry = %+v", b)
	}
}

func TestCommitBadTicket(t *testing.T) {
	s := newServer(t)
	s.Create("/f", ids.New(), wire.DefaultAttrs())
	s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: 0})
	if c := s.CommitComplete(wire.NSCommitComplete{Path: "/f", NewVer: 1, Ticket: 999}); c.OK {
		t.Error("commit with bad ticket succeeded")
	}
}

func TestLeases(t *testing.T) {
	s := newServer(t)
	a := s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "alice", TTLSec: 60})
	if !a.OK {
		t.Fatalf("acquire = %+v", a)
	}
	// Bob is denied while alice holds it.
	b := s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "bob", TTLSec: 60})
	if b.OK || b.Holder != "alice" {
		t.Fatalf("bob acquire = %+v", b)
	}
	// Re-acquire by the holder refreshes.
	if a2 := s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "alice", TTLSec: 60}); !a2.OK {
		t.Fatalf("refresh = %+v", a2)
	}
	s.LeaseRelease(wire.NSLeaseRelease{Path: "/f", Owner: "alice"})
	if b2 := s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "bob", TTLSec: 60}); !b2.OK {
		t.Fatalf("bob after release = %+v", b2)
	}
}

func TestLeaseExpires(t *testing.T) {
	clock := simtime.NewClock(0.0001)
	s, _ := NewServer(clock, Config{OpCost: time.Microsecond}, nil)
	s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "alice", TTLSec: 1})
	clock.Sleep(5 * time.Second)
	if b := s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "bob", TTLSec: 60}); !b.OK {
		t.Fatalf("acquire after expiry = %+v", b)
	}
}

func TestLeaseReleaseWrongOwnerIgnored(t *testing.T) {
	s := newServer(t)
	s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "alice", TTLSec: 60})
	s.LeaseRelease(wire.NSLeaseRelease{Path: "/f", Owner: "bob"})
	if b := s.LeaseAcquire(wire.NSLeaseAcquire{Path: "/f", Owner: "bob", TTLSec: 60}); b.OK {
		t.Error("lease stolen via foreign release")
	}
}

func TestWALRecovery(t *testing.T) {
	wal := &MemWAL{}
	clock := simtime.NewClock(0.0001)
	s, _ := NewServer(clock, Config{OpCost: time.Microsecond}, wal)
	s.Mkdir("/d")
	fid := ids.New()
	s.Create("/d/f", fid, wire.DefaultAttrs())
	b := s.CommitBegin(wire.NSCommitBegin{Path: "/d/f", BaseVer: 0})
	s.CommitComplete(wire.NSCommitComplete{Path: "/d/f", NewVer: 1, Ticket: b.Ticket, NewSize: 10})
	s.Create("/d/g", ids.New(), wire.DefaultAttrs())
	s.Remove("/d/g")

	// "Crash" and recover into a fresh server from the same WAL.
	s2, err := NewServer(clock, Config{OpCost: time.Microsecond}, wal)
	if err != nil {
		t.Fatal(err)
	}
	r := s2.Lookup("/d/f")
	if !r.OK || r.Entry.FileID != fid || r.Entry.Version != 1 || r.Entry.Size != 10 {
		t.Fatalf("recovered entry = %+v", r)
	}
	if s2.Lookup("/d/g").OK {
		t.Error("removed file resurrected")
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	wal := &MemWAL{}
	clock := simtime.NewClock(0.0001)
	s, _ := NewServer(clock, Config{OpCost: time.Microsecond, CheckpointEvery: 5}, wal)
	s.Mkdir("/d")
	for i := 0; i < 10; i++ {
		s.Create("/d/f"+string(rune('0'+i)), ids.New(), wire.DefaultAttrs())
	}
	if wal.OpCount() >= 11 {
		t.Errorf("WAL not compacted: %d ops", wal.OpCount())
	}
	s2, err := NewServer(clock, Config{OpCost: time.Microsecond}, wal)
	if err != nil {
		t.Fatal(err)
	}
	r := s2.ReadDir("/d")
	if !r.OK || len(r.Entries) != 10 {
		t.Fatalf("recovered listing = %d entries", len(r.Entries))
	}
}

func TestFileWALRecovery(t *testing.T) {
	dir := t.TempDir()
	wal, err := NewFileWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewClock(0.0001)
	s, _ := NewServer(clock, Config{OpCost: time.Microsecond, CheckpointEvery: 3}, wal)
	s.Mkdir("/d")
	fid := ids.New()
	s.Create("/d/f", fid, wire.DefaultAttrs())
	s.Create("/d/g", ids.New(), wire.DefaultAttrs())
	s.Remove("/d/g") // 4 ops → one checkpoint happened at op 3
	wal.Close()

	wal2, err := NewFileWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	s2, err := NewServer(clock, Config{OpCost: time.Microsecond}, wal2)
	if err != nil {
		t.Fatal(err)
	}
	if r := s2.Lookup("/d/f"); !r.OK || r.Entry.FileID != fid {
		t.Fatalf("recovered = %+v", r)
	}
	if s2.Lookup("/d/g").OK {
		t.Error("removed file recovered")
	}
}

func TestHandleDispatch(t *testing.T) {
	s := newServer(t)
	resp, err := s.Handle(wire.NSMkdir{Path: "/x"})
	if err != nil || !resp.(wire.NSGenericResp).OK {
		t.Fatalf("Handle mkdir: %v %v", resp, err)
	}
	if _, err := s.Handle(42); err == nil {
		t.Error("unknown request type accepted")
	}
	resp, _ = s.Handle(wire.NSReadDir{Path: "/"})
	if !resp.(wire.NSReadDirResp).OK {
		t.Error("Handle readdir failed")
	}
}

func TestThroughputBound(t *testing.T) {
	// With the paper's 770µs op cost, the server should do ~1300 ops/s of
	// modeled time.
	clock := simtime.NewClock(0.0001)
	s, _ := NewServer(clock, Config{OpCost: 770 * time.Microsecond}, nil)
	s.Mkdir("/d")
	sw := clock.Start()
	const n = 200
	for i := 0; i < n; i++ {
		s.Lookup("/d")
	}
	elapsed := sw.Elapsed().Seconds()
	rate := float64(n) / elapsed
	if rate > 1600 {
		t.Errorf("namespace rate %v ops/s, want ≤ ~1300 modeled", rate)
	}
}

func TestConcurrentNamespaceOps(t *testing.T) {
	// The server must stay consistent under concurrent creates, commits,
	// lookups, and removes from many goroutines (clients hit one shared
	// namespace server in every experiment).
	s := newServer(t)
	s.Mkdir("/d")
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				path := fmt.Sprintf("/d/w%d-%d", w, i)
				if r := s.Create(path, ids.New(), wire.DefaultAttrs()); !r.OK {
					errs <- "create: " + r.Err
					return
				}
				b := s.CommitBegin(wire.NSCommitBegin{Path: path, BaseVer: 0})
				if !b.OK {
					errs <- "begin failed"
					return
				}
				if c := s.CommitComplete(wire.NSCommitComplete{Path: path, NewVer: 1, Ticket: b.Ticket, NewSize: 1}); !c.OK {
					errs <- "complete: " + c.Err
					return
				}
				if l := s.Lookup(path); !l.OK || l.Entry.Version != 1 {
					errs <- "lookup inconsistency"
					return
				}
				if i%3 == 0 {
					if r := s.Remove(path); !r.OK {
						errs <- "remove: " + r.Err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Final listing is consistent: each worker kept 13 of 20 files
	// (removed every third: i=0,3,6,9,12,15,18 → 7 removed).
	r := s.ReadDir("/d")
	if !r.OK || len(r.Entries) != 8*13 {
		t.Fatalf("final listing = %d entries, want %d", len(r.Entries), 8*13)
	}
}

func TestConcurrentCommitWindowsSerialize(t *testing.T) {
	s := newServer(t)
	s.Create("/f", ids.New(), wire.DefaultAttrs())
	// Many goroutines race to commit; exactly the winners in version order
	// may complete, and the final version equals the number of successful
	// completes.
	var mu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tries := 0; tries < 10; tries++ {
				e := s.Lookup("/f").Entry
				b := s.CommitBegin(wire.NSCommitBegin{Path: "/f", BaseVer: e.Version})
				if !b.OK {
					continue
				}
				c := s.CommitComplete(wire.NSCommitComplete{Path: "/f", NewVer: e.Version + 1, Ticket: b.Ticket})
				if c.OK {
					mu.Lock()
					completed++
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	final := s.Lookup("/f").Entry.Version
	if final != uint64(completed) {
		t.Fatalf("final version %d != %d successful commits", final, completed)
	}
	if completed == 0 {
		t.Fatal("no commit ever succeeded")
	}
}
