// Package namespace implements Sorrento's namespace server (paper §3.1):
// the hierarchical directory tree of a volume mapping pathnames to file
// entries (FileID, latest version, timestamps, attributes). The server
// deliberately tracks no physical segment locations — FileIDs are location
// independent — which keeps its services cheap (the paper measures a single
// server at ~1300 ops/s) and off the data path.
//
// The server also arbitrates version commits (§3.5): it grants short
// exclusive commit windows, detects update conflicts by base-version
// comparison, and offers write-lock leases for cooperating processes.
// Durability comes from a write-ahead log with periodic checkpoints.
package namespace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Config tunes the server.
type Config struct {
	// OpCost is the modeled CPU time per namespace operation. The paper's
	// measured 1300 ops/s corresponds to ~770 µs.
	OpCost time.Duration
	// CommitWindow is how long a granted commit window stays exclusive
	// before it is considered abandoned.
	CommitWindow time.Duration
	// CheckpointEvery checkpoints the WAL after this many appended ops.
	CheckpointEvery int
}

// DefaultConfig matches the paper's measurements.
func DefaultConfig() Config {
	return Config{
		OpCost:          770 * time.Microsecond,
		CommitWindow:    30 * time.Second,
		CheckpointEvery: 10000,
	}
}

type dirNode struct {
	children map[string]*dirNode
	entry    *wire.FileEntry // nil for directories
}

func newDir() *dirNode { return &dirNode{children: make(map[string]*dirNode)} }

func (n *dirNode) isDir() bool { return n.entry == nil }

type lease struct {
	owner  string
	expiry time.Duration
}

type commitWindow struct {
	ticket uint64
	expiry time.Duration
}

// Server is one volume's namespace server.
type Server struct {
	clock *simtime.Clock
	cfg   Config
	cpu   *simtime.Resource
	wal   WAL

	// Metric handles (nil when uninstrumented; no-ops on nil).
	rec       *obs.RPCRecorder
	conflicts *obs.Counter
	blocked   *obs.Counter

	mu         sync.Mutex
	root       *dirNode
	leases     map[string]lease
	commits    map[ids.FileID]*commitWindow
	nextTicket uint64
	opsSinceCk int
}

// NewServer builds a server, recovering state from the WAL.
func NewServer(clock *simtime.Clock, cfg Config, wal WAL) (*Server, error) {
	if cfg.OpCost <= 0 {
		cfg.OpCost = DefaultConfig().OpCost
	}
	if cfg.CommitWindow <= 0 {
		cfg.CommitWindow = DefaultConfig().CommitWindow
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultConfig().CheckpointEvery
	}
	if wal == nil {
		wal = &MemWAL{}
	}
	s := &Server{
		clock:   clock,
		cfg:     cfg,
		cpu:     simtime.NewResource(clock, "namespace/cpu"),
		wal:     wal,
		root:    newDir(),
		leases:  make(map[string]lease),
		commits: make(map[ids.FileID]*commitWindow),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// CPU exposes the server's CPU resource for load accounting.
func (s *Server) CPU() *simtime.Resource { return s.cpu }

// Instrument exports the server's observability surface: per-op latency and
// message sizes as sorrento_rpc_server_* series under the logical node "ns",
// the commit arbitration outcomes (update conflicts vs. commit-window
// blocking, §3.5), and the server's CPU resource. Call before serving.
func (s *Server) Instrument(o *obs.Obs) {
	reg := o.Reg()
	if reg == nil {
		return
	}
	s.rec = obs.NewRPCRecorder(reg, "server", "ns")
	s.conflicts = reg.Counter("sorrento_namespace_commit_conflicts_total", obs.L("kind", "conflict"))
	s.blocked = reg.Counter("sorrento_namespace_commit_conflicts_total", obs.L("kind", "blocked"))
	obs.RegisterResource(reg, s.clock, s.cpu)
}

func (s *Server) recover() error {
	snapshot, ops, err := s.wal.Recover()
	if err != nil {
		return err
	}
	if len(snapshot) > 0 {
		var state snapshotState
		if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&state); err != nil {
			return fmt.Errorf("namespace: decode checkpoint: %w", err)
		}
		for _, d := range state.Dirs {
			s.applyOp(Op{Kind: OpMkdir, Path: d})
		}
		for _, f := range state.Files {
			s.applyOp(Op{Kind: OpCreate, Path: f.Path, Entry: f})
		}
	}
	for _, op := range ops {
		s.applyOp(op)
	}
	return nil
}

// applyOp mutates the tree without logging (replay path). Errors during
// replay indicate ops that failed identically at runtime; they are ignored.
func (s *Server) applyOp(op Op) {
	switch op.Kind {
	case OpMkdir:
		s.mkdirLocked(op.Path)
	case OpRmdir:
		s.rmdirLocked(op.Path)
	case OpCreate:
		e := op.Entry
		s.createLocked(op.Path, &e)
	case OpRemove:
		s.removeLocked(op.Path)
	case OpCommit:
		if n, _ := s.lookupNode(op.Path); n != nil && n.entry != nil {
			n.entry.Version = op.NewVer
			n.entry.Size = op.Size
		}
	}
}

// logOp appends to the WAL and checkpoints when due.
func (s *Server) logOp(op Op) {
	if err := s.wal.Append(op); err != nil {
		// Losing the log is fatal for durability but not for the running
		// volume; keep serving and surface the failure loudly.
		panic(fmt.Sprintf("namespace: WAL append failed: %v", err))
	}
	s.opsSinceCk++
	if s.opsSinceCk >= s.cfg.CheckpointEvery {
		s.checkpointLocked()
	}
}

func (s *Server) checkpointLocked() {
	state := snapshotState{}
	var walk func(prefix string, n *dirNode)
	walk = func(prefix string, n *dirNode) {
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			p := prefix + "/" + name
			if c.isDir() {
				state.Dirs = append(state.Dirs, p)
				walk(p, c)
			} else {
				state.Files = append(state.Files, *c.entry)
			}
		}
	}
	walk("", s.root)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		panic(fmt.Sprintf("namespace: encode checkpoint: %v", err))
	}
	if err := s.wal.Checkpoint(buf.Bytes()); err != nil {
		panic(fmt.Sprintf("namespace: checkpoint failed: %v", err))
	}
	s.opsSinceCk = 0
}

// splitPath cleans and splits an absolute path; "" and "/" yield nil.
func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// lookupNode resolves a path to its node and parent.
func (s *Server) lookupNode(path string) (node, parent *dirNode) {
	parts := splitPath(path)
	cur := s.root
	var par *dirNode
	for _, part := range parts {
		if cur == nil || !cur.isDir() {
			return nil2()
		}
		par = cur
		cur = cur.children[part]
		if cur == nil {
			return nil, par
		}
	}
	return cur, par
}

func nil2() (*dirNode, *dirNode) { return nil, nil }

func (s *Server) mkdirLocked(path string) error {
	parts := splitPath(path)
	if len(parts) == 0 {
		return fmt.Errorf("mkdir: bad path %q", path)
	}
	cur := s.root
	for _, part := range parts[:len(parts)-1] {
		next := cur.children[part]
		if next == nil || !next.isDir() {
			return fmt.Errorf("mkdir: missing parent in %q", path)
		}
		cur = next
	}
	name := parts[len(parts)-1]
	if _, exists := cur.children[name]; exists {
		return fmt.Errorf("mkdir: %q exists", path)
	}
	cur.children[name] = newDir()
	return nil
}

func (s *Server) rmdirLocked(path string) error {
	n, par := s.lookupNode(path)
	if n == nil || !n.isDir() || par == nil {
		return fmt.Errorf("rmdir: %q not a directory", path)
	}
	if len(n.children) != 0 {
		return fmt.Errorf("rmdir: %q not empty", path)
	}
	parts := splitPath(path)
	delete(par.children, parts[len(parts)-1])
	return nil
}

func (s *Server) createLocked(path string, e *wire.FileEntry) error {
	parts := splitPath(path)
	if len(parts) == 0 {
		return fmt.Errorf("create: bad path %q", path)
	}
	cur := s.root
	for _, part := range parts[:len(parts)-1] {
		next := cur.children[part]
		if next == nil || !next.isDir() {
			return fmt.Errorf("create: missing parent in %q", path)
		}
		cur = next
	}
	name := parts[len(parts)-1]
	if _, exists := cur.children[name]; exists {
		return fmt.Errorf("create: %q exists", path)
	}
	cur.children[name] = &dirNode{entry: e}
	return nil
}

func (s *Server) removeLocked(path string) (wire.FileEntry, error) {
	n, par := s.lookupNode(path)
	if n == nil || n.isDir() || par == nil {
		return wire.FileEntry{}, fmt.Errorf("remove: %q not a file", path)
	}
	parts := splitPath(path)
	delete(par.children, parts[len(parts)-1])
	return *n.entry, nil
}

// charge models the per-op CPU cost; it must be called outside s.mu.
func (s *Server) charge() { s.cpu.Use(s.cfg.OpCost) }

// Mkdir creates a directory.
func (s *Server) Mkdir(path string) wire.NSGenericResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mkdirLocked(path); err != nil {
		return wire.NSGenericResp{Err: err.Error()}
	}
	s.logOp(Op{Kind: OpMkdir, Path: path})
	return wire.NSGenericResp{OK: true}
}

// Rmdir removes an empty directory.
func (s *Server) Rmdir(path string) wire.NSGenericResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rmdirLocked(path); err != nil {
		return wire.NSGenericResp{Err: err.Error()}
	}
	s.logOp(Op{Kind: OpRmdir, Path: path})
	return wire.NSGenericResp{OK: true}
}

// Create registers a new file entry.
func (s *Server) Create(path string, fileID ids.FileID, attrs wire.FileAttrs) wire.NSCreateResp {
	s.charge()
	now := time.Now()
	entry := wire.FileEntry{
		Path:     path,
		FileID:   fileID,
		Version:  0,
		Attrs:    attrs,
		Created:  now,
		Modified: now,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := entry
	if err := s.createLocked(path, &e); err != nil {
		return wire.NSCreateResp{Err: err.Error()}
	}
	s.logOp(Op{Kind: OpCreate, Path: path, Entry: entry})
	return wire.NSCreateResp{OK: true, Entry: entry}
}

// Lookup resolves a path.
func (s *Server) Lookup(path string) wire.NSLookupResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := s.lookupNode(path)
	if n == nil || n.isDir() {
		return wire.NSLookupResp{}
	}
	return wire.NSLookupResp{OK: true, Entry: *n.entry}
}

// Remove unlinks a file, returning its final entry so the client can
// eagerly delete replicas.
func (s *Server) Remove(path string) wire.NSRemoveResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, err := s.removeLocked(path)
	if err != nil {
		return wire.NSRemoveResp{Err: err.Error()}
	}
	s.logOp(Op{Kind: OpRemove, Path: path})
	delete(s.commits, entry.FileID)
	delete(s.leases, path)
	return wire.NSRemoveResp{OK: true, Entry: entry}
}

// ReadDir lists a directory.
func (s *Server) ReadDir(path string) wire.NSReadDirResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := s.lookupNode(path)
	if n == nil || !n.isDir() {
		return wire.NSReadDirResp{Err: fmt.Sprintf("readdir: %q not a directory", path)}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]wire.DirEntry, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		de := wire.DirEntry{Name: name, IsDir: c.isDir()}
		if !c.isDir() {
			e := *c.entry
			de.Entry = &e
		}
		out = append(out, de)
	}
	return wire.NSReadDirResp{OK: true, Entries: out}
}

// CommitBegin grants an exclusive commit window when the base version
// matches the latest (paper §3.5): a lower base means another process
// committed first — an update conflict.
func (s *Server) CommitBegin(req wire.NSCommitBegin) wire.NSCommitBeginResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := s.lookupNode(req.Path)
	if n == nil || n.isDir() {
		return wire.NSCommitBeginResp{}
	}
	e := n.entry
	if e.Version > req.BaseVer {
		s.conflicts.Inc()
		return wire.NSCommitBeginResp{Conflict: true, LatestVer: e.Version}
	}
	now := s.clock.Now()
	if w, ok := s.commits[e.FileID]; ok && now < w.expiry {
		s.blocked.Inc()
		return wire.NSCommitBeginResp{Blocked: true, LatestVer: e.Version}
	}
	s.nextTicket++
	s.commits[e.FileID] = &commitWindow{ticket: s.nextTicket, expiry: now + s.cfg.CommitWindow}
	return wire.NSCommitBeginResp{OK: true, LatestVer: e.Version, Ticket: s.nextTicket}
}

// CommitComplete finalizes a commit under a valid ticket, advancing the
// file's latest version.
func (s *Server) CommitComplete(req wire.NSCommitComplete) wire.NSGenericResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := s.lookupNode(req.Path)
	if n == nil || n.isDir() {
		return wire.NSGenericResp{Err: "commit: no such file"}
	}
	w, ok := s.commits[n.entry.FileID]
	if !ok || w.ticket != req.Ticket {
		return wire.NSGenericResp{Err: "commit: invalid ticket"}
	}
	delete(s.commits, n.entry.FileID)
	n.entry.Version = req.NewVer
	n.entry.Size = req.NewSize
	n.entry.Modified = time.Now()
	s.logOp(Op{Kind: OpCommit, Path: req.Path, NewVer: req.NewVer, Size: req.NewSize})
	return wire.NSGenericResp{OK: true}
}

// CommitAbort releases a commit window.
func (s *Server) CommitAbort(req wire.NSCommitAbort) wire.NSGenericResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := s.lookupNode(req.Path)
	if n == nil || n.isDir() {
		return wire.NSGenericResp{Err: "abort: no such file"}
	}
	if w, ok := s.commits[n.entry.FileID]; ok && w.ticket == req.Ticket {
		delete(s.commits, n.entry.FileID)
	}
	return wire.NSGenericResp{OK: true}
}

// LeaseAcquire grants a write-lock lease when free, held by the same owner,
// or expired.
func (s *Server) LeaseAcquire(req wire.NSLeaseAcquire) wire.NSLeaseAcquireResp {
	s.charge()
	ttl := time.Duration(req.TTLSec * float64(time.Second))
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	if l, ok := s.leases[req.Path]; ok && l.owner != req.Owner && now < l.expiry {
		return wire.NSLeaseAcquireResp{Holder: l.owner}
	}
	s.leases[req.Path] = lease{owner: req.Owner, expiry: now + ttl}
	return wire.NSLeaseAcquireResp{OK: true}
}

// LeaseRelease releases a lease held by owner.
func (s *Server) LeaseRelease(req wire.NSLeaseRelease) wire.NSGenericResp {
	s.charge()
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.leases[req.Path]; ok && l.owner == req.Owner {
		delete(s.leases, req.Path)
	}
	return wire.NSGenericResp{OK: true}
}

// Handle dispatches a wire message to the corresponding method — the
// adapter both the simulated fabric and the TCP daemon use. When the server
// is instrumented, each op's latency and estimated message sizes are
// recorded under the logical node "ns".
func (s *Server) Handle(req any) (any, error) {
	if s.rec == nil {
		return s.handle(req)
	}
	start := s.clock.Now()
	resp, err := s.handle(req)
	s.rec.Observe(req, wire.SizeOf(resp), wire.SizeOf(req), s.clock.Now()-start, err)
	return resp, err
}

func (s *Server) handle(req any) (any, error) {
	switch m := req.(type) {
	case wire.NSLookup:
		return s.Lookup(m.Path), nil
	case wire.NSCreate:
		return s.Create(m.Path, m.FileID, m.Attrs), nil
	case wire.NSRemove:
		return s.Remove(m.Path), nil
	case wire.NSMkdir:
		return s.Mkdir(m.Path), nil
	case wire.NSRmdir:
		return s.Rmdir(m.Path), nil
	case wire.NSReadDir:
		return s.ReadDir(m.Path), nil
	case wire.NSCommitBegin:
		return s.CommitBegin(m), nil
	case wire.NSCommitComplete:
		return s.CommitComplete(m), nil
	case wire.NSCommitAbort:
		return s.CommitAbort(m), nil
	case wire.NSLeaseAcquire:
		return s.LeaseAcquire(m), nil
	case wire.NSLeaseRelease:
		return s.LeaseRelease(m), nil
	default:
		return nil, fmt.Errorf("namespace: unknown request %T", req)
	}
}
