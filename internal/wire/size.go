package wire

// On-wire sizes, used by the simulated fabric to charge NIC transmission
// time. Registered wire messages report their exact binary-codec size plus
// a fixed envelope estimate, so the fabric charges for the same bytes the
// TCP transport actually frames. Unregistered types (test handlers,
// baseline-system messages without a Sizer) fall back to a first-order
// header estimate.
const (
	// frameOverhead approximates transport framing around one message: the
	// 4-byte length prefix plus the call envelope (sender, trace/span ids).
	frameOverhead = 40
	// headerBytes approximates transport framing plus small struct fields
	// for types without a binary codec.
	headerBytes = 96
)

// Sizer lets message types outside this package (the baseline systems')
// report their own wire size.
type Sizer interface {
	WireSize() int
}

// SizeOf returns the serialized size of a message in bytes: exact (codec
// bytes plus frame overhead) for registered wire messages, estimated for
// everything else.
func SizeOf(msg any) int {
	if s, ok := msg.(Sizer); ok {
		return s.WireSize()
	}
	if n, ok := EncodedSize(msg); ok {
		return frameOverhead + n
	}
	return headerBytes
}
