package wire

// Approximate on-wire sizes, used by the simulated fabric to charge NIC
// transmission time. Sizes only need to be right to first order: control
// messages are ~a hundred bytes, data messages are dominated by payload.
const (
	// headerBytes approximates transport framing plus small struct fields.
	headerBytes = 96
	// entryBytes approximates one serialized LocEntry / OwnerInfo / DirEntry.
	entryBytes = 48
)

// Sizer lets message types outside this package (the baseline systems')
// report their own wire size.
type Sizer interface {
	WireSize() int
}

// SizeOf estimates the serialized size of a message in bytes.
func SizeOf(msg any) int {
	if s, ok := msg.(Sizer); ok {
		return s.WireSize()
	}
	switch m := msg.(type) {
	case SegWrite:
		return headerBytes + len(m.Data)
	case *SegWrite:
		return headerBytes + len(m.Data)
	case SegReadResp:
		return headerBytes + len(m.Data) + len(m.Owners)*entryBytes
	case *SegReadResp:
		return headerBytes + len(m.Data) + len(m.Owners)*entryBytes
	case SegCreate:
		return headerBytes + len(m.Data)
	case *SegCreate:
		return headerBytes + len(m.Data)
	case SegFetchResp:
		return headerBytes + len(m.Data)
	case *SegFetchResp:
		return headerBytes + len(m.Data)
	case SegFetchDeltaResp:
		n := headerBytes + len(m.Full)
		for _, r := range m.Ranges {
			n += len(r.Data) + 16
		}
		return n
	case *SegFetchDeltaResp:
		n := headerBytes + len(m.Full)
		for _, r := range m.Ranges {
			n += len(r.Data) + 16
		}
		return n
	case LocRefresh:
		return headerBytes + len(m.Entries)*entryBytes
	case *LocRefresh:
		return headerBytes + len(m.Entries)*entryBytes
	case LocQueryResp:
		return headerBytes + len(m.Owners)*entryBytes
	case *LocQueryResp:
		return headerBytes + len(m.Owners)*entryBytes
	case NSReadDirResp:
		return headerBytes + len(m.Entries)*entryBytes
	case *NSReadDirResp:
		return headerBytes + len(m.Entries)*entryBytes
	default:
		return headerBytes
	}
}
