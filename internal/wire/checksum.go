// Integrity checksums for segment payloads. CRC32C (Castagnoli) is
// hardware-accelerated by hash/crc32 on amd64/arm64, making per-block sums
// cheap enough to verify on every read. Sums live in the wire package so
// every consumer of segment bytes — segstore, provider, core client, proxy —
// shares one definition without import cycles.
//
// Checksums are computed once, at commit time, over the bytes the writer
// intended, and stored as metadata separate from the data. They are NEVER
// recomputed from stored bytes when serving: a sum regenerated from rotten
// data would validate the rot. Verification therefore catches any divergence
// between what was committed and what the media (or the network) returns.
package wire

import "hash/crc32"

// SumBlock is the checksum granularity. 64 KiB keeps sum metadata at 1/16384
// of data size while letting partial reads verify only covering blocks.
const SumBlock = 64 << 10

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SumOf returns the CRC32C of an arbitrary byte slice. Used for whole-slice
// sums on partial-read replies, where block alignment is not available.
func SumOf(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// SumsOf returns per-SumBlock CRC32C sums covering data. A zero-length
// buffer has no blocks and returns nil.
func SumsOf(data []byte) []uint32 {
	if len(data) == 0 {
		return nil
	}
	sums := make([]uint32, (len(data)+SumBlock-1)/SumBlock)
	for i := range sums {
		end := (i + 1) * SumBlock
		if end > len(data) {
			end = len(data)
		}
		sums[i] = crc32.Checksum(data[i*SumBlock:end], castagnoli)
	}
	return sums
}

// VerifySums checks data against per-block sums and returns the index of the
// first mismatching block, or -1 when everything (including the block count)
// matches. A nil sums slice with non-empty data means "unverified" and is
// reported as block 0 — callers that allow unsummed data must check for nil
// themselves before calling.
func VerifySums(data []byte, sums []uint32) int {
	want := 0
	if len(data) > 0 {
		want = (len(data) + SumBlock - 1) / SumBlock
	}
	if len(sums) != want {
		return 0
	}
	for i, s := range sums {
		end := (i + 1) * SumBlock
		if end > len(data) {
			end = len(data)
		}
		if crc32.Checksum(data[i*SumBlock:end], castagnoli) != s {
			return i
		}
	}
	return -1
}

// VerifyRange checks only the blocks of data covering [off, off+n) against
// the stored per-block sums, returning the first bad block index or -1.
// Partial reads pay only for the blocks they touch.
func VerifyRange(data []byte, sums []uint32, off, n int64) int {
	if n <= 0 || len(data) == 0 {
		return -1
	}
	want := (len(data) + SumBlock - 1) / SumBlock
	if len(sums) != want {
		return 0
	}
	first := int(off / SumBlock)
	last := int((off + n - 1) / SumBlock)
	if first < 0 {
		first = 0
	}
	if last >= want {
		last = want - 1
	}
	for i := first; i <= last; i++ {
		end := (i + 1) * SumBlock
		if end > len(data) {
			end = len(data)
		}
		if crc32.Checksum(data[i*SumBlock:end], castagnoli) != sums[i] {
			return i
		}
	}
	return -1
}
