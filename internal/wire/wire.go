// Package wire defines the shared on-the-wire schema of the Sorrento
// protocols: node identities, file/segment metadata, and every RPC message
// exchanged between clients, storage providers, and namespace servers. All
// message types are plain data (gob-encodable) so the same protocol code
// runs over the in-process simulated fabric and the real TCP transport.
//
// By convention messages are immutable once sent: senders must not retain
// and mutate payload buffers, and receivers must treat payloads (e.g.
// SegReadResp.Data) as read-only — over the in-process fabric a response
// may alias the provider's committed segment bytes, so a receiver that
// needs a private mutable copy must make one.
package wire

import (
	"encoding/gob"
	"time"

	"repro/internal/ids"
)

// NodeID names a cluster node. Over the simulated fabric it is a symbolic
// name ("p3"); over TCP it is a host:port address.
type NodeID string

// LayoutMode selects how a logical file's byte array maps onto data
// segments (paper §3.2, Figure 3).
type LayoutMode uint8

const (
	// Linear concatenates variable-length segments; suited to sequential
	// access. Segment sizes grow per the paper's sizing formula.
	Linear LayoutMode = iota
	// Striped spreads fixed-size stripes RAID-0 style across a fixed number
	// of equal segments; file size must be declared at creation.
	Striped
	// Hybrid concatenates groups of striped segments, combining parallel
	// I/O with open-ended growth.
	Hybrid
)

func (m LayoutMode) String() string {
	switch m {
	case Linear:
		return "linear"
	case Striped:
		return "striped"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// PlacementPolicy selects how new segment locations are chosen (paper §3.7).
type PlacementPolicy uint8

const (
	// PlaceLoadAware uses the weighted-random f_l/f_s scheme.
	PlaceLoadAware PlacementPolicy = iota
	// PlaceRandom places uniformly at random (the Sorrento-random baseline
	// in Figure 14).
	PlaceRandom
	// PlaceLocal places new segments on the creating client's node when it
	// is a provider, falling back to load-aware placement.
	PlaceLocal
)

func (p PlacementPolicy) String() string {
	switch p {
	case PlaceLoadAware:
		return "load-aware"
	case PlaceRandom:
		return "random"
	case PlaceLocal:
		return "local"
	default:
		return "unknown"
	}
}

// FileAttrs carries the per-file tuning knobs applications can set through
// the extended API (paper §2.3, §3.6, §3.7.2).
type FileAttrs struct {
	// ReplDeg is the replication degree; 1 means unreplicated.
	ReplDeg int
	// Alpha in [0,1] biases placement toward load (1) or space (0).
	Alpha float64
	// Mode is the data organization mode.
	Mode LayoutMode
	// StripeCount is the number of segments per stripe group (Striped and
	// Hybrid modes).
	StripeCount int
	// StripeUnit is the striping block size in bytes (Striped and Hybrid).
	StripeUnit int64
	// DeclaredSize is the file size required by Striped mode.
	DeclaredSize int64
	// Policy selects the placement policy.
	Policy PlacementPolicy
	// VersioningOff disables version-based consistency for this file;
	// reads and writes then apply in place and replication is disabled
	// (paper §3.5, used by the byte-range sharing primitive).
	VersioningOff bool
	// LocalityThreshold, when > 0.5, enables locality-driven migration for
	// the file's segments: a segment migrates to a node contributing more
	// than this fraction of its recent traffic (paper §3.7.2).
	LocalityThreshold float64
}

// DefaultAttrs are the attributes files get when the application does not
// customize them.
func DefaultAttrs() FileAttrs {
	return FileAttrs{ReplDeg: 1, Alpha: 0.5, Mode: Linear}
}

// FileEntry is the namespace server's per-file record — Sorrento's inode
// equivalent (paper §3.1). It deliberately contains no physical locations.
type FileEntry struct {
	Path     string
	FileID   ids.FileID
	Version  uint64 // latest committed version of the index segment
	Size     int64  // logical size as of the latest commit
	Attrs    FileAttrs
	Created  time.Time
	Modified time.Time
	// Attached holds small-file data embedded in the namespace entry's
	// index segment record when the whole file fits (≤ MaxAttachSize)...
	// kept in the index segment itself, not here; see layout.Index.
}

// DirEntry is one row of a directory listing.
type DirEntry struct {
	Name  string
	IsDir bool
	Entry *FileEntry // nil for directories
}

// LoadInfo is the load/space state gossiped in heartbeats (paper §3.3).
type LoadInfo struct {
	// Rack labels the node's failure domain for rack-aware replica
	// placement (paper §3.7.2's planned GoogleFS-style extension). Empty
	// means unlabeled.
	Rack string
	// Load is the node's CPU and I/O wait utilization l in [0,1].
	Load float64
	// IOWaitEWMA is the exponentially weighted I/O wait percentage used by
	// the migration trigger.
	IOWaitEWMA float64
	// FreeBytes and TotalBytes describe storage availability.
	FreeBytes  int64
	TotalBytes int64
	// Draining marks a provider that is migrating its segments away ahead
	// of retirement: it still serves reads and open shadows, and it keeps
	// its home-host role, but placement must not choose it for new data.
	Draining bool
}

// UsedFrac returns the fraction of storage consumed.
func (l LoadInfo) UsedFrac() float64 {
	if l.TotalBytes <= 0 {
		return 0
	}
	return 1 - float64(l.FreeBytes)/float64(l.TotalBytes)
}

// OwnerInfo names one replica holder of a segment with its version.
type OwnerInfo struct {
	Node    NodeID
	Version uint64
}

// ---------------------------------------------------------------------------
// Membership (multicast)

// Heartbeat is the periodic multicast announcement from each provider.
type Heartbeat struct {
	From NodeID
	Seq  uint64
	Load LoadInfo
}

// Hello introduces a peer on a freshly dialed transport connection so the
// receiver can learn the dialer's canonical address (TCP peer discovery).
type Hello struct {
	From NodeID
}

// ---------------------------------------------------------------------------
// Namespace server RPCs

// NSLookup resolves a path to its file entry.
type NSLookup struct{ Path string }

// NSLookupResp returns the entry; OK=false when the path does not exist.
type NSLookupResp struct {
	OK    bool
	Entry FileEntry
}

// NSCreate creates a file entry. Fails if it exists.
type NSCreate struct {
	Path   string
	FileID ids.FileID
	Attrs  FileAttrs
}

// NSCreateResp acknowledges creation.
type NSCreateResp struct {
	OK    bool
	Err   string
	Entry FileEntry
}

// NSRemove unlinks a file entry.
type NSRemove struct{ Path string }

// NSRemoveResp returns the removed entry so the client can eagerly delete
// replicas (paper §4.1.1: "Sorrento eagerly removes all replicas when a file
// is unlinked").
type NSRemoveResp struct {
	OK    bool
	Err   string
	Entry FileEntry
}

// NSMkdir creates a directory.
type NSMkdir struct{ Path string }

// NSRmdir removes an empty directory.
type NSRmdir struct{ Path string }

// NSReadDir lists a directory.
type NSReadDir struct{ Path string }

// NSReadDirResp returns the listing.
type NSReadDirResp struct {
	OK      bool
	Err     string
	Entries []DirEntry
}

// NSGenericResp is a bare ok/err response.
type NSGenericResp struct {
	OK  bool
	Err string
}

// NSCommitBegin asks for approval to commit a new version whose base is
// BaseVersion (paper §3.5 step 7). The server grants a short exclusive
// commit window; a base version older than the latest is a conflict.
type NSCommitBegin struct {
	FileID  ids.FileID
	Path    string
	BaseVer uint64
}

// NSCommitBeginResp grants or rejects the commit window.
type NSCommitBeginResp struct {
	OK        bool
	Conflict  bool   // base version stale: another process committed first
	Blocked   bool   // another commit window is open; retry
	LatestVer uint64 // the server's current latest version
	Ticket    uint64 // commit window ticket to present at complete/abort
}

// NSCommitComplete finalizes a commit, advancing the latest version
// (paper §3.5 step 9).
type NSCommitComplete struct {
	FileID  ids.FileID
	Path    string
	NewVer  uint64
	Ticket  uint64
	NewSize int64
}

// NSCommitAbort releases a commit window without advancing the version.
type NSCommitAbort struct {
	FileID ids.FileID
	Path   string
	Ticket uint64
}

// NSLeaseAcquire requests a write-lock lease so cooperating processes can
// avoid commit conflicts (paper §3.5).
type NSLeaseAcquire struct {
	Path   string
	Owner  string
	TTLSec float64
}

// NSLeaseAcquireResp grants or denies the lease.
type NSLeaseAcquireResp struct {
	OK     bool
	Holder string // current holder when denied
}

// NSLeaseRelease releases a write-lock lease.
type NSLeaseRelease struct {
	Path  string
	Owner string
}

// ---------------------------------------------------------------------------
// Provider segment I/O RPCs

// SegRead asks a node for segment bytes. Clients address the segment's home
// host first; a home host that does not own the segment answers with a
// redirect carrying the owner set (paper §3.4, Figure 7 step 3).
type SegRead struct {
	Seg     ids.SegID
	Version uint64 // 0 means latest
	Offset  int64
	Length  int64
}

// SegReadResp returns data, a redirect, or an error.
type SegReadResp struct {
	OK       bool
	Err      string
	Redirect bool
	Owners   []OwnerInfo // set when Redirect
	Version  uint64
	Data     []byte
	EOF      bool
	// Sum is the CRC32C of Data, computed by the provider after its own
	// block-level verification against commit-time sums, so the client can
	// detect corruption end to end. Zero with empty Data.
	Sum uint32
}

// SegCreate materializes a brand-new segment (version 1) on a provider.
type SegCreate struct {
	Seg     ids.SegID
	Version uint64
	Data    []byte
	// ReplDeg and Home let the owner register the segment and its desired
	// replication degree with the home host.
	ReplDeg int
	// LocalityThreshold propagates the file's locality-driven policy.
	LocalityThreshold float64
	// Direct marks the segment versioning-off: subsequent writes apply in
	// place and replication is disabled (paper §3.5).
	Direct bool
}

// SegCreateResp acknowledges creation.
type SegCreateResp struct {
	OK  bool
	Err string
}

// SegShadow creates a copy-on-write shadow of Base (paper §3.5): a blank
// segment truncated to the base's size whose unmodified regions resolve to
// the base version. Owner identifies the writing session; each session gets
// its own shadow so concurrent writers only conflict at commit time.
type SegShadow struct {
	Owner   string
	Seg     ids.SegID
	BaseVer uint64
	TTLSec  float64 // shadow expiration; must commit or renew before then
	// ReplDeg and LocalityThreshold seed the segment's policies when the
	// shadow creates a brand-new segment.
	ReplDeg           int
	LocalityThreshold float64
}

// SegShadowResp acknowledges shadow creation.
type SegShadowResp struct {
	OK      bool
	Err     string
	NewVer  uint64 // the version the shadow will commit as
	Size    int64
	Created bool // false when a shadow already existed (renewed instead)
}

// SegWrite writes into an open shadow (or directly, for versioning-off
// segments).
type SegWrite struct {
	Owner  string
	Seg    ids.SegID
	Offset int64
	Data   []byte
	Direct bool // versioning disabled: apply in place
}

// SegShadowRead reads back a session's own uncommitted shadow view
// (read-your-writes within a write session).
type SegShadowRead struct {
	Owner  string
	Seg    ids.SegID
	Offset int64
	Length int64
}

// SegWriteResp acknowledges the write.
type SegWriteResp struct {
	OK  bool
	Err string
	N   int
}

// SegTruncate resizes an open shadow.
type SegTruncate struct {
	Owner string
	Seg   ids.SegID
	Size  int64
}

// SegRenew resets a shadow's expiration timer.
type SegRenew struct {
	Owner  string
	Seg    ids.SegID
	TTLSec float64
}

// SegDrop discards an uncommitted shadow.
type SegDrop struct {
	Owner string
	Seg   ids.SegID
}

// SegDelete removes a segment and all its versions.
type SegDelete struct{ Seg ids.SegID }

// SegPin marks (or releases) a committed segment version as a milestone
// that version consolidation must never reclaim.
type SegPin struct {
	Seg     ids.SegID
	Version uint64 // 0 = latest
	Unpin   bool
}

// SegStat asks for a segment's local state.
type SegStat struct{ Seg ids.SegID }

// SegStatResp describes the local copy.
type SegStatResp struct {
	OK      bool
	Version uint64
	Size    int64
	Shadow  bool // an uncommitted shadow exists
}

// SegFetch retrieves a whole segment version (replica sync, repair,
// migration).
type SegFetch struct {
	Seg     ids.SegID
	Version uint64 // 0 = latest committed
}

// SegFetchResp carries the full segment payload.
type SegFetchResp struct {
	OK      bool
	Err     string
	Version uint64
	Data    []byte
	// ReplDeg and LocalityThreshold travel with the payload so the new
	// owner inherits the segment's policies.
	ReplDeg           int
	LocalityThreshold float64
	// Sums are the commit-time per-SumBlock CRC32C sums of Data. Receivers
	// verify before installing so corruption never propagates, and store
	// these sums (not recomputed ones) with the replica. Nil for direct
	// (versioning-off) segments, which carry no integrity metadata.
	Sums []uint32
}

// DeltaRange is one changed byte range shipped by delta replica sync.
type DeltaRange struct {
	Off  int64
	Data []byte
}

// SegFetchDelta asks an owner for the changes needed to advance a replica
// from HaveVer to the latest version (delta sync, paper §3.6: stale
// replicas "retrieve the updates").
type SegFetchDelta struct {
	Seg     ids.SegID
	HaveVer uint64
}

// SegFetchDeltaResp carries the update ranges, or a full payload when the
// intermediate change sets are no longer retained.
type SegFetchDeltaResp struct {
	OK                bool
	Err               string
	Version           uint64
	Size              int64
	Ranges            []DeltaRange
	FullFallback      bool
	Full              []byte
	ReplDeg           int
	LocalityThreshold float64
	// Sums are the commit-time per-SumBlock CRC32C sums of the FULL target
	// version (whether delivered as ranges or as Full). The receiver applies
	// the delta, then verifies the resulting buffer against these sums before
	// committing it.
	Sums []uint32
}

// GenericResp is a bare ok/err response shared by simple provider RPCs.
type GenericResp struct {
	OK  bool
	Err string
}

// ---------------------------------------------------------------------------
// Two-phase commit (paper §3.5, Figure 7 step 8)

// Prepare2PC asks a provider to prepare a session's shadow segments for
// commit. Preparing locks each segment's commit slot and fixes the version
// the shadow will commit as.
type Prepare2PC struct {
	Owner string
	Segs  []ids.SegID
}

// Prepare2PCResp votes; PlannedVers[i] is the version Segs[i] will become.
type Prepare2PCResp struct {
	OK          bool
	Err         string
	PlannedVers []uint64
	Sizes       []int64
}

// Commit2PC finalizes prepared shadows, making them the latest committed
// versions. Planned[i] (when present) is the version Segs[i] was prepared
// to become; it makes the commit idempotent — a participant that already
// applied the commit but whose response was lost can recognize the retry
// and acknowledge instead of failing with "no shadow".
type Commit2PC struct {
	Owner   string
	Segs    []ids.SegID
	Planned []uint64
}

// Abort2PC rolls prepared shadows back and discards them.
type Abort2PC struct {
	Owner string
	Segs  []ids.SegID
}

// ---------------------------------------------------------------------------
// Data location (paper §3.4)

// LocEntry is one owner record pushed to a home host.
type LocEntry struct {
	Seg               ids.SegID
	Version           uint64
	Size              int64
	ReplDeg           int
	LocalityThreshold float64
}

// LocRefresh is the periodic (or event-driven) content refresh: an owner
// tells a home host which of its local segments the home tracks.
type LocRefresh struct {
	From    NodeID
	Entries []LocEntry
}

// LocUpdate is the fast-path single-segment update on creation, deletion,
// version advance, or home-host change (paper §3.4.1 event 4).
type LocUpdate struct {
	From    NodeID
	Entry   LocEntry
	Removed bool
}

// LocQuery asks a home host who owns a segment.
type LocQuery struct{ Seg ids.SegID }

// LocQueryResp lists the owners known to the home host.
type LocQueryResp struct {
	OK     bool
	Owners []OwnerInfo
}

// LocProbe is the multicast backup scheme (paper §3.4.2): every provider
// that owns the segment responds directly to the asker.
type LocProbe struct {
	Seg   ids.SegID
	Asker NodeID
	Nonce uint64
}

// LocProbeResp is a unicast answer to a LocProbe.
type LocProbeResp struct {
	Seg     ids.SegID
	Nonce   uint64
	Owner   NodeID
	Version uint64
}

// ---------------------------------------------------------------------------
// Replication control (paper §3.6)

// SyncNotify tells a stale owner to pull the latest version from Source.
type SyncNotify struct {
	Seg     ids.SegID
	Version uint64
	Source  NodeID
}

// ReplicateNotify tells a chosen node to become a new replica site by
// fetching from Source.
//
// Handoff marks a migration-class transfer: the source will ERASE its copy
// once this request acks OK, so the receiver must read-back-verify the
// installed bytes against their checksums before acknowledging. Ordinary
// repair replication leaves Handoff false — a lying media write there is
// caught by the background scrubber, with the source copy still available.
type ReplicateNotify struct {
	Seg               ids.SegID
	Version           uint64
	Source            NodeID
	ReplDeg           int
	LocalityThreshold float64
	Handoff           bool
}

// MigrateRequest tells a provider to hand a segment to Dest and erase the
// local copy once Dest has it (migration = replicate + erase, §3.7.1).
type MigrateRequest struct {
	Seg  ids.SegID
	Dest NodeID
}

// ---------------------------------------------------------------------------
// Thin client protocol (proxy gateway tier)
//
// Thin clients address files by path and byte offset only: no membership
// tracking, no location cache, no 2PC. A stateless proxy terminates these
// requests and speaks the full Sorrento protocol to providers on the
// client's behalf. Sess names a write session; the proxy keeps only soft
// per-session state (an open shadow handle) that a client can always
// recreate by reopening after a proxy restart.

// PRead reads Length bytes at Offset from the file at Path.
type PRead struct {
	Path    string
	Offset  int64
	Length  int64
	Version uint64 // 0 means latest committed
}

// PReadResp returns the data (short when EOF).
type PReadResp struct {
	OK      bool
	Err     string
	Version uint64
	Data    []byte
	EOF     bool
}

// PWrite writes Data at Offset into the write session Sess for Path. The
// first PWrite of a session opens it on the proxy: with Create set the file
// is created when absent (ReplDeg > 0 overrides the default replication
// degree for new files).
type PWrite struct {
	Sess    string
	Path    string
	Offset  int64
	Data    []byte
	Create  bool
	ReplDeg int
}

// PWriteResp acknowledges the write.
type PWriteResp struct {
	OK  bool
	Err string
	N   int
}

// PCommit atomically publishes session Sess's writes to Path as a new file
// version. Data is durable on providers only after PCommitResp.OK.
type PCommit struct {
	Sess string
	Path string
}

// PCommitResp carries the committed version.
type PCommitResp struct {
	OK      bool
	Err     string
	Version uint64
	Size    int64
}

// PAbort discards session Sess's uncommitted writes to Path.
type PAbort struct {
	Sess string
	Path string
}

// PStat resolves Path to its file entry.
type PStat struct{ Path string }

// PStatResp returns the entry; OK=false with Err when the path is absent.
type PStatResp struct {
	OK    bool
	Err   string
	Entry FileEntry
}

// PMkdir creates a directory.
type PMkdir struct{ Path string }

// PRemove unlinks a file.
type PRemove struct{ Path string }

// ---------------------------------------------------------------------------
// Admin plane (sorrento-admin → proxies and providers)

// AdminDrain marks the receiving provider draining (or aborts a drain when
// Abort is set): placement stops choosing it and a background worker
// migrates its segments to the remaining providers.
type AdminDrain struct {
	Node  NodeID // sanity check: must match the receiver
	Abort bool
}

// AdminStatus asks a provider for its drain/storage state.
type AdminStatus struct{ Node NodeID }

// AdminStatusResp describes the provider's local state.
type AdminStatusResp struct {
	OK         bool
	Err        string
	Node       NodeID
	Draining   bool
	Segments   int // committed segments still held locally
	Shadows    int // open (uncommitted) shadow sessions
	FreeBytes  int64
	TotalBytes int64
}

// AdminRetire asks a drained provider to leave the cluster: it must be
// draining and hold no segments or shadows, otherwise the request fails.
type AdminRetire struct{ Node NodeID }

// ProxyStatus asks a proxy for its serving statistics.
type ProxyStatus struct{ Node NodeID }

// ProxyStatusResp describes a proxy's soft state and traffic counters.
type ProxyStatusResp struct {
	OK        bool
	Err       string
	Node      NodeID
	Sessions  int    // open write sessions (soft state)
	Reads     int    // cached read handles (soft state)
	Requests  uint64 // thin-protocol requests served
	Errors    uint64 // thin-protocol requests failed
	Providers int    // live providers in the proxy's membership view
}

func init() {
	for _, m := range []any{
		Heartbeat{}, Hello{},
		NSLookup{}, NSLookupResp{}, NSCreate{}, NSCreateResp{},
		NSRemove{}, NSRemoveResp{}, NSMkdir{}, NSRmdir{},
		NSReadDir{}, NSReadDirResp{}, NSGenericResp{},
		NSCommitBegin{}, NSCommitBeginResp{}, NSCommitComplete{}, NSCommitAbort{},
		NSLeaseAcquire{}, NSLeaseAcquireResp{}, NSLeaseRelease{},
		SegRead{}, SegReadResp{}, SegCreate{}, SegCreateResp{},
		SegShadow{}, SegShadowResp{}, SegWrite{}, SegWriteResp{}, SegShadowRead{},
		SegTruncate{}, SegRenew{}, SegDrop{}, SegDelete{},
		SegStat{}, SegStatResp{}, SegFetch{}, SegFetchResp{}, GenericResp{}, SegPin{},
		SegFetchDelta{}, SegFetchDeltaResp{},
		Prepare2PC{}, Prepare2PCResp{}, Commit2PC{}, Abort2PC{},
		LocRefresh{}, LocUpdate{}, LocQuery{}, LocQueryResp{},
		LocProbe{}, LocProbeResp{},
		SyncNotify{}, ReplicateNotify{}, MigrateRequest{},
		PRead{}, PReadResp{}, PWrite{}, PWriteResp{},
		PCommit{}, PCommitResp{}, PAbort{}, PStat{}, PStatResp{},
		PMkdir{}, PRemove{},
		AdminDrain{}, AdminStatus{}, AdminStatusResp{}, AdminRetire{},
		ProxyStatus{}, ProxyStatusResp{},
	} {
		gob.Register(m)
	}
}
