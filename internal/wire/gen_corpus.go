//go:build ignore

// gen_corpus writes seed corpus entries for FuzzDecode covering every
// registered message type: one plain frame, one envelope, and one reply per
// type, each in the `go test fuzz v1` format the fuzzer reads from
// testdata/fuzz/FuzzDecode. Regenerate after adding message types with
//
//	go run gen_corpus.go
//
// from internal/wire (entries are content-addressed, so reruns only add
// files for new or changed encodings).
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	n := 0
	emit := func(b []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		name := fmt.Sprintf("%x", sha256.Sum256([]byte(body)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		n++
	}
	for _, zero := range wire.Messages() {
		// A zero-value frame exercises the canonical empty encodings; a
		// second frame with lightly perturbed scalar bytes exercises the
		// non-empty paths without depending on test-internal fillers.
		enc, err := wire.Append(nil, zero)
		if err != nil {
			log.Fatal(err)
		}
		emit(enc)
		if len(enc) > 2 {
			mut := append([]byte(nil), enc...)
			for i := 2; i < len(mut); i++ {
				if rng.Intn(3) == 0 {
					mut[i] ^= byte(1 + rng.Intn(255))
				}
			}
			emit(mut)
		}
		env, err := wire.AppendEnvelope(nil, "p1", 1, 2, zero)
		if err != nil {
			log.Fatal(err)
		}
		emit(env)
		rep, err := wire.AppendReply(nil, zero, "err")
		if err != nil {
			log.Fatal(err)
		}
		emit(rep)
	}
	fmt.Printf("wrote %d corpus entries to %s\n", n, dir)
}
