package wire

// Hand-rolled binary codec for every wire message. encoding/gob costs
// per-call reflection and allocations on the RPC hot path; this codec is
// explicit, allocation-free on encode (append into a caller buffer, exact
// EncodedSize for pre-sizing from internal/bufpool), and allocation-free on
// decode in steady state (DecodeInto reuses the target's slice capacity and
// interned strings). It is shared by both transports: the TCP transport
// frames real bytes with it, and the simulated fabric charges NIC time for
// exactly the bytes it would produce (SizeOf). Gob remains for the cold
// paths — namespace WAL records and trace files — where schema flexibility
// beats speed.
//
// Wire format: 2-byte little-endian type tag, then the message's fields in
// declaration order. Fixed-width little-endian integers, IEEE-754 bit
// patterns for floats, u32 length prefixes for strings/byte slices/element
// counts, raw 16 bytes for SegIDs, and a presence byte for pointers and
// times. Tag values are stable: new types append to the end of the list.
//
// Decode semantics deliberately match gob's: a zero-length slice or string
// decodes as nil/empty exactly as gob's omitted zero fields do, so the two
// codecs are interchangeable (codec_test.go proves it differentially).

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/ids"
)

// readerPool recycles wireReaders: a stack-allocated reader would escape
// through the decodeWire interface call, costing one allocation per decode.
var readerPool = sync.Pool{New: func() any { return new(wireReader) }}

// Message type tags. Stable on the wire: append, never reorder.
const (
	tagInvalid uint16 = iota
	tagHeartbeat
	tagHello
	tagNSLookup
	tagNSLookupResp
	tagNSCreate
	tagNSCreateResp
	tagNSRemove
	tagNSRemoveResp
	tagNSMkdir
	tagNSRmdir
	tagNSReadDir
	tagNSReadDirResp
	tagNSGenericResp
	tagNSCommitBegin
	tagNSCommitBeginResp
	tagNSCommitComplete
	tagNSCommitAbort
	tagNSLeaseAcquire
	tagNSLeaseAcquireResp
	tagNSLeaseRelease
	tagSegRead
	tagSegReadResp
	tagSegCreate
	tagSegCreateResp
	tagSegShadow
	tagSegShadowResp
	tagSegWrite
	tagSegWriteResp
	tagSegShadowRead
	tagSegTruncate
	tagSegRenew
	tagSegDrop
	tagSegDelete
	tagSegPin
	tagSegStat
	tagSegStatResp
	tagSegFetch
	tagSegFetchResp
	tagGenericResp
	tagSegFetchDelta
	tagSegFetchDeltaResp
	tagPrepare2PC
	tagPrepare2PCResp
	tagCommit2PC
	tagAbort2PC
	tagLocRefresh
	tagLocUpdate
	tagLocQuery
	tagLocQueryResp
	tagLocProbe
	tagLocProbeResp
	tagSyncNotify
	tagReplicateNotify
	tagMigrateRequest
	tagPRead
	tagPReadResp
	tagPWrite
	tagPWriteResp
	tagPCommit
	tagPCommitResp
	tagPAbort
	tagPStat
	tagPStatResp
	tagPMkdir
	tagPRemove
	tagAdminDrain
	tagAdminStatus
	tagAdminStatusResp
	tagAdminRetire
	tagProxyStatus
	tagProxyStatusResp
	tagMax
)

// marshaler is implemented (with value receivers, so both T and *T satisfy
// it) by every registered message type.
type marshaler interface {
	wireTag() uint16
	encodedSize() int // fields only, excluding the 2-byte tag
	appendWire(b []byte) []byte
}

// unmarshaler is the pointer-receiver decode side.
type unmarshaler interface {
	marshaler
	decodeWire(r *wireReader)
}

// ---------------------------------------------------------------------------
// Exported API

// Encodable reports whether msg has a hand-rolled binary codec (every
// registered wire message type, as value or pointer).
func Encodable(msg any) bool {
	_, ok := msg.(marshaler)
	return ok
}

// EncodedSize returns the exact number of bytes Append would produce for
// msg (including the type tag), computed without encoding or allocating.
func EncodedSize(msg any) (int, bool) {
	m, ok := msg.(marshaler)
	if !ok {
		return 0, false
	}
	return 2 + m.encodedSize(), true
}

// Append appends msg's binary encoding to b and returns the extended slice.
// It allocates nothing beyond what append itself may grow; pre-size b with
// EncodedSize (e.g. from bufpool) for zero-allocation encoding.
func Append(b []byte, msg any) ([]byte, error) {
	m, ok := msg.(marshaler)
	if !ok {
		return b, fmt.Errorf("wire: no binary codec for %T", msg)
	}
	b = appendU16(b, m.wireTag())
	return m.appendWire(b), nil
}

// Decode decodes one message produced by Append. The result is
// self-contained: payload bytes are copied out of data, so the caller may
// recycle data immediately. Trailing bytes are an error.
func Decode(data []byte) (any, error) {
	r := wireReader{b: data}
	msg, err := decodeTagged(&r)
	if err != nil {
		return nil, err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %T", len(r.b)-r.off, msg)
	}
	return msg, nil
}

// DecodeInto decodes one message into dst, which must be a pointer to the
// same registered type the data encodes. Slice fields reuse dst's existing
// capacity and unchanged strings are kept, so a steady-state loop decoding
// into the same struct allocates nothing.
func DecodeInto(data []byte, dst any) error {
	u, ok := dst.(unmarshaler)
	if !ok {
		return fmt.Errorf("wire: no binary codec for %T", dst)
	}
	r := readerPool.Get().(*wireReader)
	r.b, r.off, r.bad = data, 0, false
	var err error
	if tag := r.u16(); tag != u.wireTag() {
		err = fmt.Errorf("wire: tag %d does not match %T", tag, dst)
	} else {
		u.decodeWire(r)
		if r.bad {
			err = fmt.Errorf("wire: truncated or corrupt %T", dst)
		} else if r.off != len(r.b) {
			err = fmt.Errorf("wire: %d trailing bytes after %T", len(r.b)-r.off, dst)
		}
	}
	*r = wireReader{}
	readerPool.Put(r)
	return err
}

// Messages returns a zero value of every registered message type, in tag
// order. Tests iterate it to prove codec properties hold for all types.
func Messages() []any {
	out := make([]any, 0, tagMax-1)
	for tag := uint16(1); tag < tagMax; tag++ {
		if codecTable[tag].zero != nil {
			out = append(out, codecTable[tag].zero())
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Envelope framing (shared by the TCP request path and UDP multicast)

// AppendEnvelope appends a call envelope: sender, span context, message.
func AppendEnvelope(b []byte, from NodeID, trace, span uint64, msg any) ([]byte, error) {
	b = appendStr(b, string(from))
	b = appendU64(b, trace)
	b = appendU64(b, span)
	return Append(b, msg)
}

// EnvelopeSize is the exact size AppendEnvelope would produce.
func EnvelopeSize(from NodeID, msg any) (int, bool) {
	n, ok := EncodedSize(msg)
	if !ok {
		return 0, false
	}
	return 4 + len(from) + 8 + 8 + n, true
}

// DecodeEnvelope decodes a call envelope. The message is self-contained
// (payloads copied), so the caller may recycle data.
func DecodeEnvelope(data []byte) (from NodeID, trace, span uint64, msg any, err error) {
	r := wireReader{b: data}
	from = NodeID(r.str(""))
	trace = r.u64()
	span = r.u64()
	msg, err = decodeTagged(&r)
	if err != nil {
		return "", 0, 0, nil, err
	}
	if r.off != len(r.b) {
		return "", 0, 0, nil, fmt.Errorf("wire: %d trailing bytes in envelope", len(r.b)-r.off)
	}
	return from, trace, span, msg, nil
}

// AppendReply appends a reply envelope: error string plus optional message
// (nil msg encodes as absent, e.g. an error-only reply).
func AppendReply(b []byte, msg any, errStr string) ([]byte, error) {
	b = appendStr(b, errStr)
	if msg == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	return Append(b, msg)
}

// ReplySize is the exact size AppendReply would produce.
func ReplySize(msg any, errStr string) (int, bool) {
	n := 4 + len(errStr) + 1
	if msg == nil {
		return n, true
	}
	m, ok := EncodedSize(msg)
	if !ok {
		return 0, false
	}
	return n + m, true
}

// DecodeReply decodes a reply envelope.
func DecodeReply(data []byte) (msg any, errStr string, err error) {
	r := wireReader{b: data}
	errStr = r.str("")
	present := r.flag()
	if r.bad {
		return nil, "", fmt.Errorf("wire: truncated reply envelope")
	}
	if present == 0 {
		if r.off != len(r.b) {
			return nil, "", fmt.Errorf("wire: trailing bytes in reply")
		}
		return nil, errStr, nil
	}
	msg, err = decodeTagged(&r)
	if err != nil {
		return nil, "", err
	}
	if r.off != len(r.b) {
		return nil, "", fmt.Errorf("wire: trailing bytes in reply")
	}
	return msg, errStr, nil
}

func decodeTagged(r *wireReader) (any, error) {
	tag := r.u16()
	if r.bad || tag == tagInvalid || tag >= tagMax || codecTable[tag].dec == nil {
		return nil, fmt.Errorf("wire: unknown message tag %d", tag)
	}
	msg := codecTable[tag].dec(r)
	if r.bad {
		return nil, fmt.Errorf("wire: truncated or corrupt %s", codecTable[tag].name)
	}
	return msg, nil
}

// ---------------------------------------------------------------------------
// Registry

type codecEntry struct {
	name string
	dec  func(*wireReader) any
	zero func() any
}

var codecTable [tagMax]codecEntry

func reg[T any, PT interface {
	*T
	unmarshaler
}](tag uint16, name string) {
	codecTable[tag] = codecEntry{
		name: name,
		dec: func(r *wireReader) any {
			var m T
			PT(&m).decodeWire(r)
			return m
		},
		zero: func() any { var m T; return m },
	}
}

func init() {
	reg[Heartbeat](tagHeartbeat, "Heartbeat")
	reg[Hello](tagHello, "Hello")
	reg[NSLookup](tagNSLookup, "NSLookup")
	reg[NSLookupResp](tagNSLookupResp, "NSLookupResp")
	reg[NSCreate](tagNSCreate, "NSCreate")
	reg[NSCreateResp](tagNSCreateResp, "NSCreateResp")
	reg[NSRemove](tagNSRemove, "NSRemove")
	reg[NSRemoveResp](tagNSRemoveResp, "NSRemoveResp")
	reg[NSMkdir](tagNSMkdir, "NSMkdir")
	reg[NSRmdir](tagNSRmdir, "NSRmdir")
	reg[NSReadDir](tagNSReadDir, "NSReadDir")
	reg[NSReadDirResp](tagNSReadDirResp, "NSReadDirResp")
	reg[NSGenericResp](tagNSGenericResp, "NSGenericResp")
	reg[NSCommitBegin](tagNSCommitBegin, "NSCommitBegin")
	reg[NSCommitBeginResp](tagNSCommitBeginResp, "NSCommitBeginResp")
	reg[NSCommitComplete](tagNSCommitComplete, "NSCommitComplete")
	reg[NSCommitAbort](tagNSCommitAbort, "NSCommitAbort")
	reg[NSLeaseAcquire](tagNSLeaseAcquire, "NSLeaseAcquire")
	reg[NSLeaseAcquireResp](tagNSLeaseAcquireResp, "NSLeaseAcquireResp")
	reg[NSLeaseRelease](tagNSLeaseRelease, "NSLeaseRelease")
	reg[SegRead](tagSegRead, "SegRead")
	reg[SegReadResp](tagSegReadResp, "SegReadResp")
	reg[SegCreate](tagSegCreate, "SegCreate")
	reg[SegCreateResp](tagSegCreateResp, "SegCreateResp")
	reg[SegShadow](tagSegShadow, "SegShadow")
	reg[SegShadowResp](tagSegShadowResp, "SegShadowResp")
	reg[SegWrite](tagSegWrite, "SegWrite")
	reg[SegWriteResp](tagSegWriteResp, "SegWriteResp")
	reg[SegShadowRead](tagSegShadowRead, "SegShadowRead")
	reg[SegTruncate](tagSegTruncate, "SegTruncate")
	reg[SegRenew](tagSegRenew, "SegRenew")
	reg[SegDrop](tagSegDrop, "SegDrop")
	reg[SegDelete](tagSegDelete, "SegDelete")
	reg[SegPin](tagSegPin, "SegPin")
	reg[SegStat](tagSegStat, "SegStat")
	reg[SegStatResp](tagSegStatResp, "SegStatResp")
	reg[SegFetch](tagSegFetch, "SegFetch")
	reg[SegFetchResp](tagSegFetchResp, "SegFetchResp")
	reg[GenericResp](tagGenericResp, "GenericResp")
	reg[SegFetchDelta](tagSegFetchDelta, "SegFetchDelta")
	reg[SegFetchDeltaResp](tagSegFetchDeltaResp, "SegFetchDeltaResp")
	reg[Prepare2PC](tagPrepare2PC, "Prepare2PC")
	reg[Prepare2PCResp](tagPrepare2PCResp, "Prepare2PCResp")
	reg[Commit2PC](tagCommit2PC, "Commit2PC")
	reg[Abort2PC](tagAbort2PC, "Abort2PC")
	reg[LocRefresh](tagLocRefresh, "LocRefresh")
	reg[LocUpdate](tagLocUpdate, "LocUpdate")
	reg[LocQuery](tagLocQuery, "LocQuery")
	reg[LocQueryResp](tagLocQueryResp, "LocQueryResp")
	reg[LocProbe](tagLocProbe, "LocProbe")
	reg[LocProbeResp](tagLocProbeResp, "LocProbeResp")
	reg[SyncNotify](tagSyncNotify, "SyncNotify")
	reg[ReplicateNotify](tagReplicateNotify, "ReplicateNotify")
	reg[MigrateRequest](tagMigrateRequest, "MigrateRequest")
	reg[PRead](tagPRead, "PRead")
	reg[PReadResp](tagPReadResp, "PReadResp")
	reg[PWrite](tagPWrite, "PWrite")
	reg[PWriteResp](tagPWriteResp, "PWriteResp")
	reg[PCommit](tagPCommit, "PCommit")
	reg[PCommitResp](tagPCommitResp, "PCommitResp")
	reg[PAbort](tagPAbort, "PAbort")
	reg[PStat](tagPStat, "PStat")
	reg[PStatResp](tagPStatResp, "PStatResp")
	reg[PMkdir](tagPMkdir, "PMkdir")
	reg[PRemove](tagPRemove, "PRemove")
	reg[AdminDrain](tagAdminDrain, "AdminDrain")
	reg[AdminStatus](tagAdminStatus, "AdminStatus")
	reg[AdminStatusResp](tagAdminStatusResp, "AdminStatusResp")
	reg[AdminRetire](tagAdminRetire, "AdminRetire")
	reg[ProxyStatus](tagProxyStatus, "ProxyStatus")
	reg[ProxyStatusResp](tagProxyStatusResp, "ProxyStatusResp")
}

// ---------------------------------------------------------------------------
// Encode primitives (append-style, fixed-width little-endian)

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }
func appendInt(b []byte, v int) []byte   { return appendI64(b, int64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendID(b []byte, id ids.SegID) []byte { return append(b, id[:]...) }

func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendI64(b, t.UnixNano())
}

const (
	idSize   = 16
	numSize  = 8
	boolSize = 1
)

func strSize(s string) int   { return 4 + len(s) }
func bytesSize(p []byte) int { return 4 + len(p) }
func timeSize(t time.Time) int {
	if t.IsZero() {
		return 1
	}
	return 1 + numSize
}

// ---------------------------------------------------------------------------
// Decode primitives

// wireReader walks an encoded buffer. Truncation or corruption sets bad and
// makes every subsequent read return zero values — callers check bad once.
type wireReader struct {
	b   []byte
	off int
	bad bool
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) take(n int) []byte {
	if n < 0 || n > r.remaining() {
		r.bad = true
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *wireReader) u8() byte {
	s := r.take(1)
	if r.bad {
		return 0
	}
	return s[0]
}

func (r *wireReader) u16() uint16 {
	s := r.take(2)
	if r.bad {
		return 0
	}
	return uint16(s[0]) | uint16(s[1])<<8
}

func (r *wireReader) u32() uint32 {
	s := r.take(4)
	if r.bad {
		return 0
	}
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}

func (r *wireReader) u64() uint64 {
	s := r.take(8)
	if r.bad {
		return 0
	}
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

func (r *wireReader) i64() int64   { return int64(r.u64()) }
func (r *wireReader) int_() int    { return int(r.i64()) }
func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

// flag reads a strict 0/1 presence byte; any other value marks the buffer
// corrupt, which keeps the encoding canonical (decode∘encode = identity).
func (r *wireReader) flag() byte {
	b := r.u8()
	if b > 1 {
		r.bad = true
		return 0
	}
	return b
}

func (r *wireReader) bool_() bool { return r.flag() == 1 }

// str decodes a string, returning old when the bytes are unchanged so
// steady-state decoding of repeated identifiers allocates nothing (the
// string(b) == old comparison does not allocate).
func (r *wireReader) str(old string) string {
	s := r.take(int(r.u32()))
	if r.bad || len(s) == 0 {
		return ""
	}
	if string(s) == old {
		return old
	}
	return string(s)
}

// bytes decodes a byte slice into old's capacity when it fits; a zero
// length decodes as nil, matching gob's omitted-zero-field semantics.
func (r *wireReader) bytes(old []byte) []byte {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	s := r.take(n)
	if r.bad {
		return nil
	}
	return append(old[:0], s...)
}

func (r *wireReader) id() ids.SegID {
	var id ids.SegID
	copy(id[:], r.take(idSize))
	return id
}

func (r *wireReader) time_() time.Time {
	if r.flag() == 0 {
		return time.Time{}
	}
	return time.Unix(0, r.i64())
}

// count reads a u32 element count, bounding it by the remaining bytes so a
// corrupt count cannot trigger a huge allocation (each element encodes to
// at least one byte).
func (r *wireReader) count() int {
	n := int(r.u32())
	if n == 0 || r.bad {
		return 0
	}
	if n < 0 || n > r.remaining() {
		r.bad = true
		return 0
	}
	return n
}

// sliceFor reuses old's capacity for n elements, keeping existing element
// values visible so in-place decodes can intern their strings.
func sliceFor[T any](old []T, n int) []T {
	if cap(old) >= n {
		return old[:n]
	}
	return make([]T, n)
}

// ---------------------------------------------------------------------------
// Shared sub-struct codecs

func attrsSize() int {
	// ReplDeg, Alpha, Mode, StripeCount, StripeUnit, DeclaredSize, Policy,
	// VersioningOff, LocalityThreshold
	return numSize + numSize + 1 + numSize + numSize + numSize + 1 + boolSize + numSize
}

func appendAttrs(b []byte, a FileAttrs) []byte {
	b = appendInt(b, a.ReplDeg)
	b = appendF64(b, a.Alpha)
	b = append(b, byte(a.Mode))
	b = appendInt(b, a.StripeCount)
	b = appendI64(b, a.StripeUnit)
	b = appendI64(b, a.DeclaredSize)
	b = append(b, byte(a.Policy))
	b = appendBool(b, a.VersioningOff)
	return appendF64(b, a.LocalityThreshold)
}

func (r *wireReader) attrs() FileAttrs {
	var a FileAttrs
	a.ReplDeg = r.int_()
	a.Alpha = r.f64()
	a.Mode = LayoutMode(r.u8())
	a.StripeCount = r.int_()
	a.StripeUnit = r.i64()
	a.DeclaredSize = r.i64()
	a.Policy = PlacementPolicy(r.u8())
	a.VersioningOff = r.bool_()
	a.LocalityThreshold = r.f64()
	return a
}

func loadInfoSize(l *LoadInfo) int {
	return strSize(l.Rack) + numSize*4 + boolSize
}

func appendLoadInfo(b []byte, l *LoadInfo) []byte {
	b = appendStr(b, l.Rack)
	b = appendF64(b, l.Load)
	b = appendF64(b, l.IOWaitEWMA)
	b = appendI64(b, l.FreeBytes)
	b = appendI64(b, l.TotalBytes)
	return appendBool(b, l.Draining)
}

func (r *wireReader) loadInfo(old *LoadInfo) LoadInfo {
	var l LoadInfo
	l.Rack = r.str(old.Rack)
	l.Load = r.f64()
	l.IOWaitEWMA = r.f64()
	l.FreeBytes = r.i64()
	l.TotalBytes = r.i64()
	l.Draining = r.bool_()
	return l
}

func fileEntrySize(e *FileEntry) int {
	return strSize(e.Path) + idSize + numSize + numSize + attrsSize() +
		timeSize(e.Created) + timeSize(e.Modified)
}

func appendFileEntry(b []byte, e *FileEntry) []byte {
	b = appendStr(b, e.Path)
	b = appendID(b, e.FileID)
	b = appendU64(b, e.Version)
	b = appendI64(b, e.Size)
	b = appendAttrs(b, e.Attrs)
	b = appendTime(b, e.Created)
	return appendTime(b, e.Modified)
}

func (r *wireReader) fileEntry(old *FileEntry) FileEntry {
	var e FileEntry
	e.Path = r.str(old.Path)
	e.FileID = r.id()
	e.Version = r.u64()
	e.Size = r.i64()
	e.Attrs = r.attrs()
	e.Created = r.time_()
	e.Modified = r.time_()
	return e
}

func ownersSize(os []OwnerInfo) int {
	n := 4
	for i := range os {
		n += strSize(string(os[i].Node)) + numSize
	}
	return n
}

func appendOwners(b []byte, os []OwnerInfo) []byte {
	b = appendU32(b, uint32(len(os)))
	for i := range os {
		b = appendStr(b, string(os[i].Node))
		b = appendU64(b, os[i].Version)
	}
	return b
}

func (r *wireReader) owners(old []OwnerInfo) []OwnerInfo {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := sliceFor(old, n)
	for i := range out {
		o := &out[i]
		o.Node = NodeID(r.str(string(o.Node)))
		o.Version = r.u64()
	}
	return out
}

const locEntrySize = idSize + numSize*4

func appendLocEntry(b []byte, e *LocEntry) []byte {
	b = appendID(b, e.Seg)
	b = appendU64(b, e.Version)
	b = appendI64(b, e.Size)
	b = appendInt(b, e.ReplDeg)
	return appendF64(b, e.LocalityThreshold)
}

func (r *wireReader) locEntry() LocEntry {
	var e LocEntry
	e.Seg = r.id()
	e.Version = r.u64()
	e.Size = r.i64()
	e.ReplDeg = r.int_()
	e.LocalityThreshold = r.f64()
	return e
}

func segIDsSize(s []ids.SegID) int { return 4 + len(s)*idSize }

func appendSegIDs(b []byte, s []ids.SegID) []byte {
	b = appendU32(b, uint32(len(s)))
	for i := range s {
		b = appendID(b, s[i])
	}
	return b
}

func (r *wireReader) segIDs(old []ids.SegID) []ids.SegID {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := sliceFor(old, n)
	for i := range out {
		out[i] = r.id()
	}
	return out
}

func u64sSize(s []uint64) int { return 4 + len(s)*numSize }

func appendU64s(b []byte, s []uint64) []byte {
	b = appendU32(b, uint32(len(s)))
	for _, v := range s {
		b = appendU64(b, v)
	}
	return b
}

func u32sSize(s []uint32) int { return 4 + len(s)*4 }

func appendU32s(b []byte, s []uint32) []byte {
	b = appendU32(b, uint32(len(s)))
	for _, v := range s {
		b = appendU32(b, v)
	}
	return b
}

func (r *wireReader) u32s(old []uint32) []uint32 {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := sliceFor(old, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

func (r *wireReader) u64s(old []uint64) []uint64 {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := sliceFor(old, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

func i64sSize(s []int64) int { return 4 + len(s)*numSize }

func appendI64s(b []byte, s []int64) []byte {
	b = appendU32(b, uint32(len(s)))
	for _, v := range s {
		b = appendI64(b, v)
	}
	return b
}

func (r *wireReader) i64s(old []int64) []int64 {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := sliceFor(old, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-message codecs (tag order)

func (Heartbeat) wireTag() uint16 { return tagHeartbeat }
func (m Heartbeat) encodedSize() int {
	return strSize(string(m.From)) + numSize + loadInfoSize(&m.Load)
}
func (m Heartbeat) appendWire(b []byte) []byte {
	b = appendStr(b, string(m.From))
	b = appendU64(b, m.Seq)
	return appendLoadInfo(b, &m.Load)
}
func (m *Heartbeat) decodeWire(r *wireReader) {
	m.From = NodeID(r.str(string(m.From)))
	m.Seq = r.u64()
	m.Load = r.loadInfo(&m.Load)
}

func (Hello) wireTag() uint16              { return tagHello }
func (m Hello) encodedSize() int           { return strSize(string(m.From)) }
func (m Hello) appendWire(b []byte) []byte { return appendStr(b, string(m.From)) }
func (m *Hello) decodeWire(r *wireReader)  { m.From = NodeID(r.str(string(m.From))) }

func (NSLookup) wireTag() uint16              { return tagNSLookup }
func (m NSLookup) encodedSize() int           { return strSize(m.Path) }
func (m NSLookup) appendWire(b []byte) []byte { return appendStr(b, m.Path) }
func (m *NSLookup) decodeWire(r *wireReader)  { m.Path = r.str(m.Path) }

func (NSLookupResp) wireTag() uint16 { return tagNSLookupResp }
func (m NSLookupResp) encodedSize() int {
	return boolSize + fileEntrySize(&m.Entry)
}
func (m NSLookupResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendFileEntry(b, &m.Entry)
}
func (m *NSLookupResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Entry = r.fileEntry(&m.Entry)
}

func (NSCreate) wireTag() uint16 { return tagNSCreate }
func (m NSCreate) encodedSize() int {
	return strSize(m.Path) + idSize + attrsSize()
}
func (m NSCreate) appendWire(b []byte) []byte {
	b = appendStr(b, m.Path)
	b = appendID(b, m.FileID)
	return appendAttrs(b, m.Attrs)
}
func (m *NSCreate) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
	m.FileID = r.id()
	m.Attrs = r.attrs()
}

func (NSCreateResp) wireTag() uint16 { return tagNSCreateResp }
func (m NSCreateResp) encodedSize() int {
	return boolSize + strSize(m.Err) + fileEntrySize(&m.Entry)
}
func (m NSCreateResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	return appendFileEntry(b, &m.Entry)
}
func (m *NSCreateResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Entry = r.fileEntry(&m.Entry)
}

func (NSRemove) wireTag() uint16              { return tagNSRemove }
func (m NSRemove) encodedSize() int           { return strSize(m.Path) }
func (m NSRemove) appendWire(b []byte) []byte { return appendStr(b, m.Path) }
func (m *NSRemove) decodeWire(r *wireReader)  { m.Path = r.str(m.Path) }

func (NSRemoveResp) wireTag() uint16 { return tagNSRemoveResp }
func (m NSRemoveResp) encodedSize() int {
	return boolSize + strSize(m.Err) + fileEntrySize(&m.Entry)
}
func (m NSRemoveResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	return appendFileEntry(b, &m.Entry)
}
func (m *NSRemoveResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Entry = r.fileEntry(&m.Entry)
}

func (NSMkdir) wireTag() uint16              { return tagNSMkdir }
func (m NSMkdir) encodedSize() int           { return strSize(m.Path) }
func (m NSMkdir) appendWire(b []byte) []byte { return appendStr(b, m.Path) }
func (m *NSMkdir) decodeWire(r *wireReader)  { m.Path = r.str(m.Path) }

func (NSRmdir) wireTag() uint16              { return tagNSRmdir }
func (m NSRmdir) encodedSize() int           { return strSize(m.Path) }
func (m NSRmdir) appendWire(b []byte) []byte { return appendStr(b, m.Path) }
func (m *NSRmdir) decodeWire(r *wireReader)  { m.Path = r.str(m.Path) }

func (NSReadDir) wireTag() uint16              { return tagNSReadDir }
func (m NSReadDir) encodedSize() int           { return strSize(m.Path) }
func (m NSReadDir) appendWire(b []byte) []byte { return appendStr(b, m.Path) }
func (m *NSReadDir) decodeWire(r *wireReader)  { m.Path = r.str(m.Path) }

func (NSReadDirResp) wireTag() uint16 { return tagNSReadDirResp }
func (m NSReadDirResp) encodedSize() int {
	n := boolSize + strSize(m.Err) + 4
	for i := range m.Entries {
		e := &m.Entries[i]
		n += strSize(e.Name) + boolSize + 1
		if e.Entry != nil {
			n += fileEntrySize(e.Entry)
		}
	}
	return n
}
func (m NSReadDirResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU32(b, uint32(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		b = appendStr(b, e.Name)
		b = appendBool(b, e.IsDir)
		if e.Entry == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = appendFileEntry(b, e.Entry)
		}
	}
	return b
}
func (m *NSReadDirResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	n := r.count()
	if n == 0 {
		m.Entries = nil
		return
	}
	out := sliceFor(m.Entries, n)
	for i := range out {
		e := &out[i]
		e.Name = r.str(e.Name)
		e.IsDir = r.bool_()
		if r.flag() == 0 {
			e.Entry = nil
			continue
		}
		if e.Entry == nil {
			e.Entry = new(FileEntry)
		}
		*e.Entry = r.fileEntry(e.Entry)
	}
	m.Entries = out
}

func (NSGenericResp) wireTag() uint16 { return tagNSGenericResp }
func (m NSGenericResp) encodedSize() int {
	return boolSize + strSize(m.Err)
}
func (m NSGenericResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendStr(b, m.Err)
}
func (m *NSGenericResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
}

func (NSCommitBegin) wireTag() uint16 { return tagNSCommitBegin }
func (m NSCommitBegin) encodedSize() int {
	return idSize + strSize(m.Path) + numSize
}
func (m NSCommitBegin) appendWire(b []byte) []byte {
	b = appendID(b, m.FileID)
	b = appendStr(b, m.Path)
	return appendU64(b, m.BaseVer)
}
func (m *NSCommitBegin) decodeWire(r *wireReader) {
	m.FileID = r.id()
	m.Path = r.str(m.Path)
	m.BaseVer = r.u64()
}

func (NSCommitBeginResp) wireTag() uint16 { return tagNSCommitBeginResp }
func (m NSCommitBeginResp) encodedSize() int {
	return boolSize*3 + numSize*2
}
func (m NSCommitBeginResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendBool(b, m.Conflict)
	b = appendBool(b, m.Blocked)
	b = appendU64(b, m.LatestVer)
	return appendU64(b, m.Ticket)
}
func (m *NSCommitBeginResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Conflict = r.bool_()
	m.Blocked = r.bool_()
	m.LatestVer = r.u64()
	m.Ticket = r.u64()
}

func (NSCommitComplete) wireTag() uint16 { return tagNSCommitComplete }
func (m NSCommitComplete) encodedSize() int {
	return idSize + strSize(m.Path) + numSize*3
}
func (m NSCommitComplete) appendWire(b []byte) []byte {
	b = appendID(b, m.FileID)
	b = appendStr(b, m.Path)
	b = appendU64(b, m.NewVer)
	b = appendU64(b, m.Ticket)
	return appendI64(b, m.NewSize)
}
func (m *NSCommitComplete) decodeWire(r *wireReader) {
	m.FileID = r.id()
	m.Path = r.str(m.Path)
	m.NewVer = r.u64()
	m.Ticket = r.u64()
	m.NewSize = r.i64()
}

func (NSCommitAbort) wireTag() uint16 { return tagNSCommitAbort }
func (m NSCommitAbort) encodedSize() int {
	return idSize + strSize(m.Path) + numSize
}
func (m NSCommitAbort) appendWire(b []byte) []byte {
	b = appendID(b, m.FileID)
	b = appendStr(b, m.Path)
	return appendU64(b, m.Ticket)
}
func (m *NSCommitAbort) decodeWire(r *wireReader) {
	m.FileID = r.id()
	m.Path = r.str(m.Path)
	m.Ticket = r.u64()
}

func (NSLeaseAcquire) wireTag() uint16 { return tagNSLeaseAcquire }
func (m NSLeaseAcquire) encodedSize() int {
	return strSize(m.Path) + strSize(m.Owner) + numSize
}
func (m NSLeaseAcquire) appendWire(b []byte) []byte {
	b = appendStr(b, m.Path)
	b = appendStr(b, m.Owner)
	return appendF64(b, m.TTLSec)
}
func (m *NSLeaseAcquire) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
	m.Owner = r.str(m.Owner)
	m.TTLSec = r.f64()
}

func (NSLeaseAcquireResp) wireTag() uint16 { return tagNSLeaseAcquireResp }
func (m NSLeaseAcquireResp) encodedSize() int {
	return boolSize + strSize(m.Holder)
}
func (m NSLeaseAcquireResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendStr(b, m.Holder)
}
func (m *NSLeaseAcquireResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Holder = r.str(m.Holder)
}

func (NSLeaseRelease) wireTag() uint16 { return tagNSLeaseRelease }
func (m NSLeaseRelease) encodedSize() int {
	return strSize(m.Path) + strSize(m.Owner)
}
func (m NSLeaseRelease) appendWire(b []byte) []byte {
	b = appendStr(b, m.Path)
	return appendStr(b, m.Owner)
}
func (m *NSLeaseRelease) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
	m.Owner = r.str(m.Owner)
}

func (SegRead) wireTag() uint16 { return tagSegRead }
func (m SegRead) encodedSize() int {
	return idSize + numSize*3
}
func (m SegRead) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendU64(b, m.Version)
	b = appendI64(b, m.Offset)
	return appendI64(b, m.Length)
}
func (m *SegRead) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Version = r.u64()
	m.Offset = r.i64()
	m.Length = r.i64()
}

func (SegReadResp) wireTag() uint16 { return tagSegReadResp }
func (m SegReadResp) encodedSize() int {
	return boolSize + strSize(m.Err) + boolSize + ownersSize(m.Owners) +
		numSize + bytesSize(m.Data) + boolSize + 4
}
func (m SegReadResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendBool(b, m.Redirect)
	b = appendOwners(b, m.Owners)
	b = appendU64(b, m.Version)
	b = appendBytes(b, m.Data)
	b = appendBool(b, m.EOF)
	return appendU32(b, m.Sum)
}
func (m *SegReadResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Redirect = r.bool_()
	m.Owners = r.owners(m.Owners)
	m.Version = r.u64()
	m.Data = r.bytes(m.Data)
	m.EOF = r.bool_()
	m.Sum = r.u32()
}

func (SegCreate) wireTag() uint16 { return tagSegCreate }
func (m SegCreate) encodedSize() int {
	return idSize + numSize + bytesSize(m.Data) + numSize + numSize + boolSize
}
func (m SegCreate) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendU64(b, m.Version)
	b = appendBytes(b, m.Data)
	b = appendInt(b, m.ReplDeg)
	b = appendF64(b, m.LocalityThreshold)
	return appendBool(b, m.Direct)
}
func (m *SegCreate) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Version = r.u64()
	m.Data = r.bytes(m.Data)
	m.ReplDeg = r.int_()
	m.LocalityThreshold = r.f64()
	m.Direct = r.bool_()
}

func (SegCreateResp) wireTag() uint16 { return tagSegCreateResp }
func (m SegCreateResp) encodedSize() int {
	return boolSize + strSize(m.Err)
}
func (m SegCreateResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendStr(b, m.Err)
}
func (m *SegCreateResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
}

func (SegShadow) wireTag() uint16 { return tagSegShadow }
func (m SegShadow) encodedSize() int {
	return strSize(m.Owner) + idSize + numSize*4
}
func (m SegShadow) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	b = appendID(b, m.Seg)
	b = appendU64(b, m.BaseVer)
	b = appendF64(b, m.TTLSec)
	b = appendInt(b, m.ReplDeg)
	return appendF64(b, m.LocalityThreshold)
}
func (m *SegShadow) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Seg = r.id()
	m.BaseVer = r.u64()
	m.TTLSec = r.f64()
	m.ReplDeg = r.int_()
	m.LocalityThreshold = r.f64()
}

func (SegShadowResp) wireTag() uint16 { return tagSegShadowResp }
func (m SegShadowResp) encodedSize() int {
	return boolSize + strSize(m.Err) + numSize*2 + boolSize
}
func (m SegShadowResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU64(b, m.NewVer)
	b = appendI64(b, m.Size)
	return appendBool(b, m.Created)
}
func (m *SegShadowResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.NewVer = r.u64()
	m.Size = r.i64()
	m.Created = r.bool_()
}

func (SegWrite) wireTag() uint16 { return tagSegWrite }
func (m SegWrite) encodedSize() int {
	return strSize(m.Owner) + idSize + numSize + bytesSize(m.Data) + boolSize
}
func (m SegWrite) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	b = appendID(b, m.Seg)
	b = appendI64(b, m.Offset)
	b = appendBytes(b, m.Data)
	return appendBool(b, m.Direct)
}
func (m *SegWrite) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Seg = r.id()
	m.Offset = r.i64()
	m.Data = r.bytes(m.Data)
	m.Direct = r.bool_()
}

func (SegWriteResp) wireTag() uint16 { return tagSegWriteResp }
func (m SegWriteResp) encodedSize() int {
	return boolSize + strSize(m.Err) + numSize
}
func (m SegWriteResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	return appendInt(b, m.N)
}
func (m *SegWriteResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.N = r.int_()
}

func (SegShadowRead) wireTag() uint16 { return tagSegShadowRead }
func (m SegShadowRead) encodedSize() int {
	return strSize(m.Owner) + idSize + numSize*2
}
func (m SegShadowRead) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	b = appendID(b, m.Seg)
	b = appendI64(b, m.Offset)
	return appendI64(b, m.Length)
}
func (m *SegShadowRead) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Seg = r.id()
	m.Offset = r.i64()
	m.Length = r.i64()
}

func (SegTruncate) wireTag() uint16 { return tagSegTruncate }
func (m SegTruncate) encodedSize() int {
	return strSize(m.Owner) + idSize + numSize
}
func (m SegTruncate) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	b = appendID(b, m.Seg)
	return appendI64(b, m.Size)
}
func (m *SegTruncate) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Seg = r.id()
	m.Size = r.i64()
}

func (SegRenew) wireTag() uint16 { return tagSegRenew }
func (m SegRenew) encodedSize() int {
	return strSize(m.Owner) + idSize + numSize
}
func (m SegRenew) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	b = appendID(b, m.Seg)
	return appendF64(b, m.TTLSec)
}
func (m *SegRenew) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Seg = r.id()
	m.TTLSec = r.f64()
}

func (SegDrop) wireTag() uint16 { return tagSegDrop }
func (m SegDrop) encodedSize() int {
	return strSize(m.Owner) + idSize
}
func (m SegDrop) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	return appendID(b, m.Seg)
}
func (m *SegDrop) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Seg = r.id()
}

func (SegDelete) wireTag() uint16              { return tagSegDelete }
func (m SegDelete) encodedSize() int           { return idSize }
func (m SegDelete) appendWire(b []byte) []byte { return appendID(b, m.Seg) }
func (m *SegDelete) decodeWire(r *wireReader)  { m.Seg = r.id() }

func (SegPin) wireTag() uint16 { return tagSegPin }
func (m SegPin) encodedSize() int {
	return idSize + numSize + boolSize
}
func (m SegPin) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendU64(b, m.Version)
	return appendBool(b, m.Unpin)
}
func (m *SegPin) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Version = r.u64()
	m.Unpin = r.bool_()
}

func (SegStat) wireTag() uint16              { return tagSegStat }
func (m SegStat) encodedSize() int           { return idSize }
func (m SegStat) appendWire(b []byte) []byte { return appendID(b, m.Seg) }
func (m *SegStat) decodeWire(r *wireReader)  { m.Seg = r.id() }

func (SegStatResp) wireTag() uint16 { return tagSegStatResp }
func (m SegStatResp) encodedSize() int {
	return boolSize + numSize*2 + boolSize
}
func (m SegStatResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendU64(b, m.Version)
	b = appendI64(b, m.Size)
	return appendBool(b, m.Shadow)
}
func (m *SegStatResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Version = r.u64()
	m.Size = r.i64()
	m.Shadow = r.bool_()
}

func (SegFetch) wireTag() uint16 { return tagSegFetch }
func (m SegFetch) encodedSize() int {
	return idSize + numSize
}
func (m SegFetch) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	return appendU64(b, m.Version)
}
func (m *SegFetch) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Version = r.u64()
}

func (SegFetchResp) wireTag() uint16 { return tagSegFetchResp }
func (m SegFetchResp) encodedSize() int {
	return boolSize + strSize(m.Err) + numSize + bytesSize(m.Data) + numSize + numSize +
		u32sSize(m.Sums)
}
func (m SegFetchResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU64(b, m.Version)
	b = appendBytes(b, m.Data)
	b = appendInt(b, m.ReplDeg)
	b = appendF64(b, m.LocalityThreshold)
	return appendU32s(b, m.Sums)
}
func (m *SegFetchResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Version = r.u64()
	m.Data = r.bytes(m.Data)
	m.ReplDeg = r.int_()
	m.LocalityThreshold = r.f64()
	m.Sums = r.u32s(m.Sums)
}

func (GenericResp) wireTag() uint16 { return tagGenericResp }
func (m GenericResp) encodedSize() int {
	return boolSize + strSize(m.Err)
}
func (m GenericResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendStr(b, m.Err)
}
func (m *GenericResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
}

func (SegFetchDelta) wireTag() uint16 { return tagSegFetchDelta }
func (m SegFetchDelta) encodedSize() int {
	return idSize + numSize
}
func (m SegFetchDelta) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	return appendU64(b, m.HaveVer)
}
func (m *SegFetchDelta) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.HaveVer = r.u64()
}

func (SegFetchDeltaResp) wireTag() uint16 { return tagSegFetchDeltaResp }
func (m SegFetchDeltaResp) encodedSize() int {
	n := boolSize + strSize(m.Err) + numSize*2 + 4
	for i := range m.Ranges {
		n += numSize + bytesSize(m.Ranges[i].Data)
	}
	return n + boolSize + bytesSize(m.Full) + numSize + numSize + u32sSize(m.Sums)
}
func (m SegFetchDeltaResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU64(b, m.Version)
	b = appendI64(b, m.Size)
	b = appendU32(b, uint32(len(m.Ranges)))
	for i := range m.Ranges {
		b = appendI64(b, m.Ranges[i].Off)
		b = appendBytes(b, m.Ranges[i].Data)
	}
	b = appendBool(b, m.FullFallback)
	b = appendBytes(b, m.Full)
	b = appendInt(b, m.ReplDeg)
	b = appendF64(b, m.LocalityThreshold)
	return appendU32s(b, m.Sums)
}
func (m *SegFetchDeltaResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Version = r.u64()
	m.Size = r.i64()
	n := r.count()
	if n == 0 {
		m.Ranges = nil
	} else {
		out := sliceFor(m.Ranges, n)
		for i := range out {
			e := &out[i]
			e.Off = r.i64()
			e.Data = r.bytes(e.Data)
		}
		m.Ranges = out
	}
	m.FullFallback = r.bool_()
	m.Full = r.bytes(m.Full)
	m.ReplDeg = r.int_()
	m.LocalityThreshold = r.f64()
	m.Sums = r.u32s(m.Sums)
}

func (Prepare2PC) wireTag() uint16 { return tagPrepare2PC }
func (m Prepare2PC) encodedSize() int {
	return strSize(m.Owner) + segIDsSize(m.Segs)
}
func (m Prepare2PC) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	return appendSegIDs(b, m.Segs)
}
func (m *Prepare2PC) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Segs = r.segIDs(m.Segs)
}

func (Prepare2PCResp) wireTag() uint16 { return tagPrepare2PCResp }
func (m Prepare2PCResp) encodedSize() int {
	return boolSize + strSize(m.Err) + u64sSize(m.PlannedVers) + i64sSize(m.Sizes)
}
func (m Prepare2PCResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU64s(b, m.PlannedVers)
	return appendI64s(b, m.Sizes)
}
func (m *Prepare2PCResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.PlannedVers = r.u64s(m.PlannedVers)
	m.Sizes = r.i64s(m.Sizes)
}

func (Commit2PC) wireTag() uint16 { return tagCommit2PC }
func (m Commit2PC) encodedSize() int {
	return strSize(m.Owner) + segIDsSize(m.Segs) + u64sSize(m.Planned)
}
func (m Commit2PC) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	b = appendSegIDs(b, m.Segs)
	return appendU64s(b, m.Planned)
}
func (m *Commit2PC) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Segs = r.segIDs(m.Segs)
	m.Planned = r.u64s(m.Planned)
}

func (Abort2PC) wireTag() uint16 { return tagAbort2PC }
func (m Abort2PC) encodedSize() int {
	return strSize(m.Owner) + segIDsSize(m.Segs)
}
func (m Abort2PC) appendWire(b []byte) []byte {
	b = appendStr(b, m.Owner)
	return appendSegIDs(b, m.Segs)
}
func (m *Abort2PC) decodeWire(r *wireReader) {
	m.Owner = r.str(m.Owner)
	m.Segs = r.segIDs(m.Segs)
}

func (LocRefresh) wireTag() uint16 { return tagLocRefresh }
func (m LocRefresh) encodedSize() int {
	return strSize(string(m.From)) + 4 + len(m.Entries)*locEntrySize
}
func (m LocRefresh) appendWire(b []byte) []byte {
	b = appendStr(b, string(m.From))
	b = appendU32(b, uint32(len(m.Entries)))
	for i := range m.Entries {
		b = appendLocEntry(b, &m.Entries[i])
	}
	return b
}
func (m *LocRefresh) decodeWire(r *wireReader) {
	m.From = NodeID(r.str(string(m.From)))
	n := r.count()
	if n == 0 {
		m.Entries = nil
		return
	}
	out := sliceFor(m.Entries, n)
	for i := range out {
		out[i] = r.locEntry()
	}
	m.Entries = out
}

func (LocUpdate) wireTag() uint16 { return tagLocUpdate }
func (m LocUpdate) encodedSize() int {
	return strSize(string(m.From)) + locEntrySize + boolSize
}
func (m LocUpdate) appendWire(b []byte) []byte {
	b = appendStr(b, string(m.From))
	b = appendLocEntry(b, &m.Entry)
	return appendBool(b, m.Removed)
}
func (m *LocUpdate) decodeWire(r *wireReader) {
	m.From = NodeID(r.str(string(m.From)))
	m.Entry = r.locEntry()
	m.Removed = r.bool_()
}

func (LocQuery) wireTag() uint16              { return tagLocQuery }
func (m LocQuery) encodedSize() int           { return idSize }
func (m LocQuery) appendWire(b []byte) []byte { return appendID(b, m.Seg) }
func (m *LocQuery) decodeWire(r *wireReader)  { m.Seg = r.id() }

func (LocQueryResp) wireTag() uint16 { return tagLocQueryResp }
func (m LocQueryResp) encodedSize() int {
	return boolSize + ownersSize(m.Owners)
}
func (m LocQueryResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendOwners(b, m.Owners)
}
func (m *LocQueryResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Owners = r.owners(m.Owners)
}

func (LocProbe) wireTag() uint16 { return tagLocProbe }
func (m LocProbe) encodedSize() int {
	return idSize + strSize(string(m.Asker)) + numSize
}
func (m LocProbe) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendStr(b, string(m.Asker))
	return appendU64(b, m.Nonce)
}
func (m *LocProbe) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Asker = NodeID(r.str(string(m.Asker)))
	m.Nonce = r.u64()
}

func (LocProbeResp) wireTag() uint16 { return tagLocProbeResp }
func (m LocProbeResp) encodedSize() int {
	return idSize + numSize + strSize(string(m.Owner)) + numSize
}
func (m LocProbeResp) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendU64(b, m.Nonce)
	b = appendStr(b, string(m.Owner))
	return appendU64(b, m.Version)
}
func (m *LocProbeResp) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Nonce = r.u64()
	m.Owner = NodeID(r.str(string(m.Owner)))
	m.Version = r.u64()
}

func (SyncNotify) wireTag() uint16 { return tagSyncNotify }
func (m SyncNotify) encodedSize() int {
	return idSize + numSize + strSize(string(m.Source))
}
func (m SyncNotify) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendU64(b, m.Version)
	return appendStr(b, string(m.Source))
}
func (m *SyncNotify) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Version = r.u64()
	m.Source = NodeID(r.str(string(m.Source)))
}

func (ReplicateNotify) wireTag() uint16 { return tagReplicateNotify }
func (m ReplicateNotify) encodedSize() int {
	return idSize + numSize + strSize(string(m.Source)) + numSize + numSize + boolSize
}
func (m ReplicateNotify) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	b = appendU64(b, m.Version)
	b = appendStr(b, string(m.Source))
	b = appendInt(b, m.ReplDeg)
	b = appendF64(b, m.LocalityThreshold)
	return appendBool(b, m.Handoff)
}
func (m *ReplicateNotify) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Version = r.u64()
	m.Source = NodeID(r.str(string(m.Source)))
	m.ReplDeg = r.int_()
	m.LocalityThreshold = r.f64()
	m.Handoff = r.bool_()
}

func (MigrateRequest) wireTag() uint16 { return tagMigrateRequest }
func (m MigrateRequest) encodedSize() int {
	return idSize + strSize(string(m.Dest))
}
func (m MigrateRequest) appendWire(b []byte) []byte {
	b = appendID(b, m.Seg)
	return appendStr(b, string(m.Dest))
}
func (m *MigrateRequest) decodeWire(r *wireReader) {
	m.Seg = r.id()
	m.Dest = NodeID(r.str(string(m.Dest)))
}

func (PRead) wireTag() uint16 { return tagPRead }
func (m PRead) encodedSize() int {
	return strSize(m.Path) + numSize*3
}
func (m PRead) appendWire(b []byte) []byte {
	b = appendStr(b, m.Path)
	b = appendI64(b, m.Offset)
	b = appendI64(b, m.Length)
	return appendU64(b, m.Version)
}
func (m *PRead) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
	m.Offset = r.i64()
	m.Length = r.i64()
	m.Version = r.u64()
}

func (PReadResp) wireTag() uint16 { return tagPReadResp }
func (m PReadResp) encodedSize() int {
	return boolSize + strSize(m.Err) + numSize + bytesSize(m.Data) + boolSize
}
func (m PReadResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU64(b, m.Version)
	b = appendBytes(b, m.Data)
	return appendBool(b, m.EOF)
}
func (m *PReadResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Version = r.u64()
	m.Data = r.bytes(m.Data)
	m.EOF = r.bool_()
}

func (PWrite) wireTag() uint16 { return tagPWrite }
func (m PWrite) encodedSize() int {
	return strSize(m.Sess) + strSize(m.Path) + numSize + bytesSize(m.Data) +
		boolSize + numSize
}
func (m PWrite) appendWire(b []byte) []byte {
	b = appendStr(b, m.Sess)
	b = appendStr(b, m.Path)
	b = appendI64(b, m.Offset)
	b = appendBytes(b, m.Data)
	b = appendBool(b, m.Create)
	return appendInt(b, m.ReplDeg)
}
func (m *PWrite) decodeWire(r *wireReader) {
	m.Sess = r.str(m.Sess)
	m.Path = r.str(m.Path)
	m.Offset = r.i64()
	m.Data = r.bytes(m.Data)
	m.Create = r.bool_()
	m.ReplDeg = r.int_()
}

func (PWriteResp) wireTag() uint16 { return tagPWriteResp }
func (m PWriteResp) encodedSize() int {
	return boolSize + strSize(m.Err) + numSize
}
func (m PWriteResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	return appendInt(b, m.N)
}
func (m *PWriteResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.N = r.int_()
}

func (PCommit) wireTag() uint16 { return tagPCommit }
func (m PCommit) encodedSize() int {
	return strSize(m.Sess) + strSize(m.Path)
}
func (m PCommit) appendWire(b []byte) []byte {
	b = appendStr(b, m.Sess)
	return appendStr(b, m.Path)
}
func (m *PCommit) decodeWire(r *wireReader) {
	m.Sess = r.str(m.Sess)
	m.Path = r.str(m.Path)
}

func (PCommitResp) wireTag() uint16 { return tagPCommitResp }
func (m PCommitResp) encodedSize() int {
	return boolSize + strSize(m.Err) + numSize*2
}
func (m PCommitResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendU64(b, m.Version)
	return appendI64(b, m.Size)
}
func (m *PCommitResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Version = r.u64()
	m.Size = r.i64()
}

func (PAbort) wireTag() uint16 { return tagPAbort }
func (m PAbort) encodedSize() int {
	return strSize(m.Sess) + strSize(m.Path)
}
func (m PAbort) appendWire(b []byte) []byte {
	b = appendStr(b, m.Sess)
	return appendStr(b, m.Path)
}
func (m *PAbort) decodeWire(r *wireReader) {
	m.Sess = r.str(m.Sess)
	m.Path = r.str(m.Path)
}

func (PStat) wireTag() uint16 { return tagPStat }
func (m PStat) encodedSize() int {
	return strSize(m.Path)
}
func (m PStat) appendWire(b []byte) []byte {
	return appendStr(b, m.Path)
}
func (m *PStat) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
}

func (PStatResp) wireTag() uint16 { return tagPStatResp }
func (m PStatResp) encodedSize() int {
	return boolSize + strSize(m.Err) + fileEntrySize(&m.Entry)
}
func (m PStatResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	return appendFileEntry(b, &m.Entry)
}
func (m *PStatResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Entry = r.fileEntry(&m.Entry)
}

func (PMkdir) wireTag() uint16 { return tagPMkdir }
func (m PMkdir) encodedSize() int {
	return strSize(m.Path)
}
func (m PMkdir) appendWire(b []byte) []byte {
	return appendStr(b, m.Path)
}
func (m *PMkdir) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
}

func (PRemove) wireTag() uint16 { return tagPRemove }
func (m PRemove) encodedSize() int {
	return strSize(m.Path)
}
func (m PRemove) appendWire(b []byte) []byte {
	return appendStr(b, m.Path)
}
func (m *PRemove) decodeWire(r *wireReader) {
	m.Path = r.str(m.Path)
}

func (AdminDrain) wireTag() uint16 { return tagAdminDrain }
func (m AdminDrain) encodedSize() int {
	return strSize(string(m.Node)) + boolSize
}
func (m AdminDrain) appendWire(b []byte) []byte {
	b = appendStr(b, string(m.Node))
	return appendBool(b, m.Abort)
}
func (m *AdminDrain) decodeWire(r *wireReader) {
	m.Node = NodeID(r.str(string(m.Node)))
	m.Abort = r.bool_()
}

func (AdminStatus) wireTag() uint16 { return tagAdminStatus }
func (m AdminStatus) encodedSize() int {
	return strSize(string(m.Node))
}
func (m AdminStatus) appendWire(b []byte) []byte {
	return appendStr(b, string(m.Node))
}
func (m *AdminStatus) decodeWire(r *wireReader) {
	m.Node = NodeID(r.str(string(m.Node)))
}

func (AdminStatusResp) wireTag() uint16 { return tagAdminStatusResp }
func (m AdminStatusResp) encodedSize() int {
	return boolSize + strSize(m.Err) + strSize(string(m.Node)) + boolSize +
		numSize*4
}
func (m AdminStatusResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendStr(b, string(m.Node))
	b = appendBool(b, m.Draining)
	b = appendInt(b, m.Segments)
	b = appendInt(b, m.Shadows)
	b = appendI64(b, m.FreeBytes)
	return appendI64(b, m.TotalBytes)
}
func (m *AdminStatusResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Node = NodeID(r.str(string(m.Node)))
	m.Draining = r.bool_()
	m.Segments = r.int_()
	m.Shadows = r.int_()
	m.FreeBytes = r.i64()
	m.TotalBytes = r.i64()
}

func (AdminRetire) wireTag() uint16 { return tagAdminRetire }
func (m AdminRetire) encodedSize() int {
	return strSize(string(m.Node))
}
func (m AdminRetire) appendWire(b []byte) []byte {
	return appendStr(b, string(m.Node))
}
func (m *AdminRetire) decodeWire(r *wireReader) {
	m.Node = NodeID(r.str(string(m.Node)))
}

func (ProxyStatus) wireTag() uint16 { return tagProxyStatus }
func (m ProxyStatus) encodedSize() int {
	return strSize(string(m.Node))
}
func (m ProxyStatus) appendWire(b []byte) []byte {
	return appendStr(b, string(m.Node))
}
func (m *ProxyStatus) decodeWire(r *wireReader) {
	m.Node = NodeID(r.str(string(m.Node)))
}

func (ProxyStatusResp) wireTag() uint16 { return tagProxyStatusResp }
func (m ProxyStatusResp) encodedSize() int {
	return boolSize + strSize(m.Err) + strSize(string(m.Node)) + numSize*5
}
func (m ProxyStatusResp) appendWire(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendStr(b, m.Err)
	b = appendStr(b, string(m.Node))
	b = appendInt(b, m.Sessions)
	b = appendInt(b, m.Reads)
	b = appendU64(b, m.Requests)
	b = appendU64(b, m.Errors)
	return appendInt(b, m.Providers)
}
func (m *ProxyStatusResp) decodeWire(r *wireReader) {
	m.OK = r.bool_()
	m.Err = r.str(m.Err)
	m.Node = NodeID(r.str(string(m.Node)))
	m.Sessions = r.int_()
	m.Reads = r.int_()
	m.Requests = r.u64()
	m.Errors = r.u64()
	m.Providers = r.int_()
}
