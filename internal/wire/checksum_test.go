package wire

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

func TestSumsOfRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, SumBlock - 1, SumBlock, SumBlock + 1, 3*SumBlock + 17} {
		data := make([]byte, n)
		rng.Read(data)
		sums := SumsOf(data)
		if n == 0 {
			if sums != nil {
				t.Fatalf("SumsOf(empty) = %v, want nil", sums)
			}
			continue
		}
		want := (n + SumBlock - 1) / SumBlock
		if len(sums) != want {
			t.Fatalf("len(SumsOf(%d)) = %d, want %d", n, len(sums), want)
		}
		if got := VerifySums(data, sums); got != -1 {
			t.Fatalf("VerifySums(clean %d bytes) = %d, want -1", n, got)
		}
	}
}

func TestSumOfMatchesCastagnoli(t *testing.T) {
	data := []byte("sorrento")
	want := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	if got := SumOf(data); got != want {
		t.Fatalf("SumOf = %#x, want %#x", got, want)
	}
}

func TestVerifySumsDetectsFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 2*SumBlock+100)
	rng.Read(data)
	sums := SumsOf(data)

	// Flip one bit in each block in turn; VerifySums must name that block.
	for block := 0; block < len(sums); block++ {
		pos := block*SumBlock + rng.Intn(minInt(SumBlock, len(data)-block*SumBlock))
		data[pos] ^= 0x10
		if got := VerifySums(data, sums); got != block {
			t.Fatalf("flip in block %d: VerifySums = %d", block, got)
		}
		data[pos] ^= 0x10
	}

	// Wrong sum count is itself a corruption signal.
	if got := VerifySums(data, sums[:len(sums)-1]); got != 0 {
		t.Fatalf("VerifySums(short sums) = %d, want 0", got)
	}
}

func TestVerifyRangeCoversOnlyTouchedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 4*SumBlock)
	rng.Read(data)
	sums := SumsOf(data)

	// Corrupt block 3 only; a read confined to blocks 0-1 stays clean.
	data[3*SumBlock+5] ^= 0x80
	if got := VerifyRange(data, sums, 0, 2*SumBlock); got != -1 {
		t.Fatalf("VerifyRange(clean window) = %d, want -1", got)
	}
	// A read touching block 3 trips.
	if got := VerifyRange(data, sums, 3*SumBlock-10, 20); got != 3 {
		t.Fatalf("VerifyRange(dirty window) = %d, want 3", got)
	}
	// Zero-length and empty-data reads are vacuously clean.
	if got := VerifyRange(data, sums, SumBlock, 0); got != -1 {
		t.Fatalf("VerifyRange(n=0) = %d, want -1", got)
	}
	if got := VerifyRange(nil, sums, 0, 10); got != -1 {
		t.Fatalf("VerifyRange(empty data) = %d, want -1", got)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
