package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/ids"
)

func TestGobRoundTrip(t *testing.T) {
	// Every message type must survive a gob round trip through an interface
	// value, since that is how the TCP transport ships them.
	msgs := []any{
		Heartbeat{From: "p1", Seq: 7, Load: LoadInfo{Load: 0.5, FreeBytes: 10, TotalBytes: 20}},
		NSLookup{Path: "/a/b"},
		NSCreate{Path: "/f", FileID: ids.New(), Attrs: DefaultAttrs()},
		SegRead{Seg: ids.New(), Offset: 4096, Length: 12288},
		SegReadResp{OK: true, Data: []byte("hello"), Owners: []OwnerInfo{{Node: "p2", Version: 3}}, Redirect: true},
		SegWrite{Seg: ids.New(), Offset: 1, Data: []byte{1, 2, 3}},
		LocRefresh{From: "p9", Entries: []LocEntry{{Seg: ids.New(), Version: 2, Size: 100, ReplDeg: 3}}},
		Prepare2PC{Owner: "sess-1", Segs: []ids.SegID{ids.New(), ids.New()}},
		SyncNotify{Seg: ids.New(), Version: 5, Source: "p3"},
		SegPin{Seg: ids.New(), Version: 3},
		SegFetchDelta{Seg: ids.New(), HaveVer: 2},
		SegFetchDeltaResp{OK: true, Version: 4, Size: 100, Ranges: []DeltaRange{{Off: 10, Data: []byte("xy")}}},
	}
	for _, in := range msgs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("encode %T: %v", in, err)
		}
		var out any
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T did not round-trip: %+v vs %+v", in, in, out)
		}
	}
}

func TestSizeOfDataDominates(t *testing.T) {
	data := make([]byte, 1<<20)
	if got := SizeOf(SegWrite{Data: data}); got < len(data) {
		t.Errorf("SizeOf(1MB write) = %d", got)
	}
	if got := SizeOf(SegRead{}); got > 1024 {
		t.Errorf("SizeOf(control msg) = %d, want small", got)
	}
	if SizeOf(&SegWrite{Data: data}) != SizeOf(SegWrite{Data: data}) {
		t.Error("pointer and value sizes differ")
	}
}

func TestSizeOfScalesWithEntries(t *testing.T) {
	small := SizeOf(LocRefresh{Entries: make([]LocEntry, 1)})
	big := SizeOf(LocRefresh{Entries: make([]LocEntry, 1000)})
	if big <= small {
		t.Errorf("LocRefresh size does not scale: %d vs %d", small, big)
	}
}

func TestUsedFrac(t *testing.T) {
	l := LoadInfo{FreeBytes: 25, TotalBytes: 100}
	if got := l.UsedFrac(); got != 0.75 {
		t.Errorf("UsedFrac = %v", got)
	}
	if (LoadInfo{}).UsedFrac() != 0 {
		t.Error("zero LoadInfo UsedFrac != 0")
	}
}

func TestModeAndPolicyStrings(t *testing.T) {
	if Linear.String() != "linear" || Striped.String() != "striped" || Hybrid.String() != "hybrid" {
		t.Error("LayoutMode strings wrong")
	}
	if LayoutMode(99).String() != "unknown" {
		t.Error("unknown mode string")
	}
	if PlaceLoadAware.String() != "load-aware" || PlaceRandom.String() != "random" || PlaceLocal.String() != "local" {
		t.Error("policy strings wrong")
	}
	if PlacementPolicy(99).String() != "unknown" {
		t.Error("unknown policy string")
	}
}

func TestDefaultAttrs(t *testing.T) {
	a := DefaultAttrs()
	if a.ReplDeg != 1 || a.Alpha != 0.5 || a.Mode != Linear || a.VersioningOff {
		t.Errorf("DefaultAttrs = %+v", a)
	}
}
