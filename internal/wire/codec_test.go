package wire

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/ids"
)

// fillRandom populates v with deterministic pseudo-random content covering
// the codec's edge cases: empty and non-empty strings/slices, nil and
// non-nil pointers, zero and non-zero times.
func fillRandom(rng *rand.Rand, v reflect.Value, depth int) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 0)
	case reflect.Int, reflect.Int64:
		v.SetInt(rng.Int63() - rng.Int63())
	case reflect.Uint8:
		v.SetUint(uint64(rng.Intn(3)))
	case reflect.Uint32:
		v.SetUint(uint64(rng.Uint32()))
	case reflect.Uint64:
		v.SetUint(rng.Uint64())
	case reflect.Float64:
		v.SetFloat(rng.NormFloat64()) // never NaN
	case reflect.String:
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		v.SetString(string(b))
	case reflect.Slice:
		n := rng.Intn(4)
		if n == 0 {
			v.Set(reflect.Zero(v.Type())) // nil, like gob's omitted zero field
			return
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fillRandom(rng, s.Index(i), depth+1)
		}
		v.Set(s)
	case reflect.Array: // ids.SegID
		for i := 0; i < v.Len(); i++ {
			v.Index(i).SetUint(uint64(rng.Intn(256)))
		}
	case reflect.Ptr:
		if depth > 3 || rng.Intn(2) == 0 {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		v.Set(reflect.New(v.Type().Elem()))
		fillRandom(rng, v.Elem(), depth+1)
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(time.Time{}) {
			if rng.Intn(3) == 0 {
				v.Set(reflect.ValueOf(time.Time{}))
			} else {
				v.Set(reflect.ValueOf(time.Unix(rng.Int63n(1<<33), rng.Int63n(1e9))))
			}
			return
		}
		for i := 0; i < v.NumField(); i++ {
			fillRandom(rng, v.Field(i), depth+1)
		}
	default:
		panic("fillRandom: unhandled kind " + v.Kind().String())
	}
}

// semanticEqual compares two messages with gob's equivalences: nil and
// empty slices are equal, and times compare by instant rather than by
// internal representation.
func semanticEqual(a, b reflect.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Slice:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !semanticEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Ptr:
		if a.IsNil() != b.IsNil() {
			return false
		}
		if a.IsNil() {
			return true
		}
		return semanticEqual(a.Elem(), b.Elem())
	case reflect.Struct:
		if a.Type() == reflect.TypeOf(time.Time{}) {
			return a.Interface().(time.Time).Equal(b.Interface().(time.Time))
		}
		for i := 0; i < a.NumField(); i++ {
			if !semanticEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Array:
		return a.Interface() == b.Interface()
	default:
		return a.Interface() == b.Interface()
	}
}

// TestCodecDifferentialVsGob is the correctness backstop for the binary
// codec: for every registered message type and many random instances, the
// binary round trip must agree with the gob round trip (the previous wire
// format) and with the original value, and EncodedSize must be exact.
func TestCodecDifferentialVsGob(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, zero := range Messages() {
		typ := reflect.TypeOf(zero)
		for trial := 0; trial < 50; trial++ {
			mv := reflect.New(typ).Elem()
			if trial > 0 { // trial 0 keeps the zero value itself
				fillRandom(rng, mv, 0)
			}
			in := mv.Interface()

			// Binary round trip, with exact-size check.
			enc, err := Append(nil, in)
			if err != nil {
				t.Fatalf("%s: Append: %v", typ, err)
			}
			if want, _ := EncodedSize(in); want != len(enc) {
				t.Fatalf("%s: EncodedSize %d but Append produced %d bytes", typ, want, len(enc))
			}
			if pn, _ := EncodedSize(mv.Addr().Interface()); pn != len(enc) {
				t.Fatalf("%s: pointer EncodedSize %d != value %d", typ, pn, len(enc))
			}
			binOut, err := Decode(enc)
			if err != nil {
				t.Fatalf("%s: Decode: %v", typ, err)
			}

			// DecodeInto must agree with Decode.
			into := reflect.New(typ)
			if err := DecodeInto(enc, into.Interface()); err != nil {
				t.Fatalf("%s: DecodeInto: %v", typ, err)
			}
			if !semanticEqual(reflect.ValueOf(binOut), into.Elem()) {
				t.Fatalf("%s: Decode and DecodeInto disagree:\n%+v\n%+v", typ, binOut, into.Elem())
			}

			// Gob round trip of the same value (through an interface, as the
			// old transport shipped it).
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
				t.Fatalf("%s: gob encode: %v", typ, err)
			}
			var gobOut any
			if err := gob.NewDecoder(&buf).Decode(&gobOut); err != nil {
				t.Fatalf("%s: gob decode: %v", typ, err)
			}

			if !semanticEqual(reflect.ValueOf(binOut), reflect.ValueOf(gobOut)) {
				t.Fatalf("%s: binary and gob round trips disagree:\nbinary: %+v\ngob:    %+v",
					typ, binOut, gobOut)
			}
			if !semanticEqual(reflect.ValueOf(binOut), mv) {
				t.Fatalf("%s: binary round trip changed the message:\nin:  %+v\nout: %+v",
					typ, in, binOut)
			}
		}
	}
}

func TestCodecDecodeIntoReusesMemory(t *testing.T) {
	// Steady-state DecodeInto of same-shaped messages must not allocate:
	// strings are interned against the previous value and slices reuse
	// capacity.
	// Box the message once: converting a value type to `any` per call would
	// itself allocate, and real call sites already hold messages as `any`.
	var msg any = SegWrite{Owner: "sess-42", Seg: [16]byte{1, 2}, Offset: 4096,
		Data: bytes.Repeat([]byte{0xAB}, 8192)}
	enc, err := Append(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	var dst SegWrite
	if err := DecodeInto(enc, &dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(enc, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeInto allocates %v per op, want 0", allocs)
	}

	buf := make([]byte, 0, len(enc))
	allocs = testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		var err error
		buf, err = Append(buf, msg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Append allocates %v per op, want 0", allocs)
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	enc, _ := Append(nil, SegWrite{Owner: "s", Data: []byte("abcdef")})
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated message decoded without error")
	}
	if _, err := Decode(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	if _, err := Decode([]byte{0xFF, 0xFF}); err == nil {
		t.Error("unknown tag decoded without error")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty input decoded without error")
	}
	var dst SegRead
	if err := DecodeInto(enc, &dst); err == nil {
		t.Error("DecodeInto with mismatched type succeeded")
	}
	// A corrupt element count must not cause a huge allocation: flip the
	// count field of a Prepare2PC segs list to 2^32-1.
	p2pc, _ := Append(nil, Prepare2PC{Owner: "o", Segs: make([]ids.SegID, 1)})
	copy(p2pc[len(p2pc)-16-4:len(p2pc)-16], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Decode(p2pc); err == nil {
		t.Error("absurd element count decoded without error")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	msg := SegRead{Seg: [16]byte{9}, Version: 3, Offset: 100, Length: 200}
	b, err := AppendEnvelope(nil, "n1:9000", 111, 222, msg)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := EnvelopeSize("n1:9000", msg); !ok || n != len(b) {
		t.Fatalf("EnvelopeSize = %d,%v; encoded %d bytes", n, ok, len(b))
	}
	from, trace, span, out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if from != "n1:9000" || trace != 111 || span != 222 || !reflect.DeepEqual(out, msg) {
		t.Fatalf("envelope round trip: %q %d %d %+v", from, trace, span, out)
	}

	// Reply with a message.
	rb, err := AppendReply(nil, SegReadResp{OK: true, Data: []byte("xyz")}, "")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := ReplySize(SegReadResp{OK: true, Data: []byte("xyz")}, ""); !ok || n != len(rb) {
		t.Fatalf("ReplySize = %d,%v; encoded %d bytes", n, ok, len(rb))
	}
	rmsg, errStr, err := DecodeReply(rb)
	if err != nil || errStr != "" {
		t.Fatalf("reply round trip: %v %q", err, errStr)
	}
	if rr, ok := rmsg.(SegReadResp); !ok || !rr.OK || string(rr.Data) != "xyz" {
		t.Fatalf("reply message: %+v", rmsg)
	}

	// Error-only reply.
	rb, err = AppendReply(nil, nil, "boom")
	if err != nil {
		t.Fatal(err)
	}
	rmsg, errStr, err = DecodeReply(rb)
	if err != nil || rmsg != nil || errStr != "boom" {
		t.Fatalf("error reply round trip: %v %v %q", rmsg, err, errStr)
	}
}

// FuzzDecode asserts the decoder never panics or over-allocates on
// arbitrary input, seeded with valid encodings of every message type.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for _, zero := range Messages() {
		mv := reflect.New(reflect.TypeOf(zero)).Elem()
		fillRandom(rng, mv, 0)
		enc, err := Append(nil, mv.Interface())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		env, _ := AppendEnvelope(nil, "p1", 1, 2, mv.Interface())
		f.Add(env)
		rep, _ := AppendReply(nil, mv.Interface(), "err")
		f.Add(rep)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		if msg, err := Decode(data); err == nil {
			// Anything that decodes must re-encode to the same bytes.
			re, err := Append(nil, msg)
			if err != nil {
				t.Fatalf("re-encode of decoded %T: %v", msg, err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("decode/re-encode of %T not canonical:\nin:  %x\nout: %x", msg, data, re)
			}
		}
		_, _, _, _, _ = DecodeEnvelope(data)
		_, _, _ = DecodeReply(data)
	})
}

// ---------------------------------------------------------------------------
// Benchmarks: gob (previous wire format) vs binary codec, encode+decode per
// op on the top-traffic message types.

func benchMsgs() map[string]any {
	return map[string]any{
		"SegRead":  SegRead{Seg: [16]byte{1, 2, 3}, Version: 9, Offset: 1 << 20, Length: 1 << 16},
		"SegWrite": SegWrite{Owner: "sess-7", Seg: [16]byte{4, 5}, Offset: 4096, Data: bytes.Repeat([]byte{0xCD}, 4096)},
		"Heartbeat": Heartbeat{From: "p17", Seq: 12345,
			Load: LoadInfo{Rack: "r2", Load: 0.42, IOWaitEWMA: 0.1, FreeBytes: 1 << 36, TotalBytes: 1 << 37}},
		"LocRefresh": LocRefresh{From: "p17", Entries: func() []LocEntry {
			es := make([]LocEntry, 16)
			for i := range es {
				es[i] = LocEntry{Seg: [16]byte{byte(i)}, Version: uint64(i), Size: 1 << 20, ReplDeg: 2}
			}
			return es
		}()},
	}
}

func BenchmarkCodecBinary(b *testing.B) {
	for name, msg := range benchMsgs() {
		b.Run(name, func(b *testing.B) {
			enc, err := Append(nil, msg)
			if err != nil {
				b.Fatal(err)
			}
			dst := reflect.New(reflect.TypeOf(msg)).Interface()
			buf := make([]byte, 0, len(enc))
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				buf, err = Append(buf, msg)
				if err != nil {
					b.Fatal(err)
				}
				if err := DecodeInto(buf, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCodecGob(b *testing.B) {
	for name, msg := range benchMsgs() {
		b.Run(name, func(b *testing.B) {
			// Persistent encoder/decoder over one stream: gob's best case
			// (type info transmitted once), matching a long-lived connection.
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			dec := gob.NewDecoder(&buf)
			sz, _ := EncodedSize(msg)
			b.SetBytes(int64(sz))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := msg
				if err := enc.Encode(&in); err != nil {
					b.Fatal(err)
				}
				var out any
				if err := dec.Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
