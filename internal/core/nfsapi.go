package core

// The paper's basic API layer "exports an NFS-style interface, in which
// operations are based on opaque file and directory handles" (§2.3), with
// the UNIX-style calls built on top. This file provides that handle-based
// layer: handles are opaque tokens resolved step by step from the root,
// and every operation takes a handle rather than a pathname.

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Handle is an opaque reference to a file or directory, as NFSv3 handles
// are. It embeds no client state; any client of the same volume can use it.
type Handle struct {
	// path is the resolved canonical path. Opaque to callers; handles must
	// be treated as tokens (the NFS contract), not parsed.
	path string
	// fileID pins file handles to the entry they resolved to, so a handle
	// goes stale when the file is removed and recreated — NFS's
	// stale-handle semantics.
	fileID ids.FileID
	isDir  bool
}

// IsDir reports whether the handle names a directory.
func (h Handle) IsDir() bool { return h.isDir }

// ErrStaleHandle reports a handle whose object was removed or replaced.
var ErrStaleHandle = errors.New("core: stale file handle")

// RootHandle returns the volume root directory handle.
func (c *Client) RootHandle() Handle {
	return Handle{path: "/", isDir: true}
}

// LookupHandle resolves one name within a directory handle (NFS LOOKUP).
func (c *Client) LookupHandle(dir Handle, name string) (Handle, error) {
	if !dir.isDir {
		return Handle{}, fmt.Errorf("core: lookup in non-directory handle")
	}
	if strings.ContainsRune(name, '/') {
		return Handle{}, fmt.Errorf("core: lookup name %q must be a single component", name)
	}
	path := joinPath(dir.path, name)
	entries, err := c.ReadDir(dir.path)
	if err != nil {
		return Handle{}, err
	}
	for _, e := range entries {
		if e.Name != name {
			continue
		}
		if e.IsDir {
			return Handle{path: path, isDir: true}, nil
		}
		return Handle{path: path, fileID: e.Entry.FileID}, nil
	}
	return Handle{}, ErrNotFound
}

// GetAttr returns the current attributes of a file handle (NFS GETATTR).
func (c *Client) GetAttr(h Handle) (wire.FileEntry, error) {
	if h.isDir {
		return wire.FileEntry{Path: h.path}, nil
	}
	entry, err := c.Stat(h.path)
	if err != nil {
		return wire.FileEntry{}, err
	}
	if entry.FileID != h.fileID {
		return wire.FileEntry{}, ErrStaleHandle
	}
	return entry, nil
}

// ReadHandle reads up to len(p) bytes at off through a file handle (NFS
// READ). Each call opens the latest committed version, as NFS's stateless
// reads do.
func (c *Client) ReadHandle(h Handle, p []byte, off int64) (int, error) {
	if h.isDir {
		return 0, fmt.Errorf("core: read on directory handle")
	}
	f, err := c.openHandle(h, false)
	if err != nil {
		return 0, err
	}
	return f.ReadAt(p, off)
}

// WriteHandle writes p at off through a file handle and commits (NFS
// WRITE with stable storage semantics: when the call returns, the write is
// a committed version).
func (c *Client) WriteHandle(h Handle, p []byte, off int64) (int, error) {
	if h.isDir {
		return 0, fmt.Errorf("core: write on directory handle")
	}
	f, err := c.openHandle(h, true)
	if err != nil {
		return 0, err
	}
	n, err := f.WriteAt(p, off)
	if err != nil {
		f.Drop()
		return 0, err
	}
	if err := f.Commit(CommitOptions{}); err != nil {
		f.Drop()
		return 0, err
	}
	return n, nil
}

// CreateHandle creates a file in dir and returns its handle (NFS CREATE).
func (c *Client) CreateHandle(dir Handle, name string, attrs wire.FileAttrs) (Handle, error) {
	if !dir.isDir {
		return Handle{}, fmt.Errorf("core: create in non-directory handle")
	}
	path := joinPath(dir.path, name)
	f, err := c.Create(path, attrs)
	if err != nil {
		return Handle{}, err
	}
	if err := f.Close(); err != nil {
		return Handle{}, err
	}
	entry, err := c.Stat(path)
	if err != nil {
		return Handle{}, err
	}
	return Handle{path: path, fileID: entry.FileID}, nil
}

// MkdirHandle creates a directory in dir (NFS MKDIR).
func (c *Client) MkdirHandle(dir Handle, name string) (Handle, error) {
	if !dir.isDir {
		return Handle{}, fmt.Errorf("core: mkdir in non-directory handle")
	}
	path := joinPath(dir.path, name)
	if err := c.Mkdir(path); err != nil {
		return Handle{}, err
	}
	return Handle{path: path, isDir: true}, nil
}

// RemoveHandle unlinks a name within dir (NFS REMOVE).
func (c *Client) RemoveHandle(dir Handle, name string) error {
	if !dir.isDir {
		return fmt.Errorf("core: remove in non-directory handle")
	}
	return c.Remove(joinPath(dir.path, name))
}

// ReadDirHandle lists a directory handle (NFS READDIR).
func (c *Client) ReadDirHandle(dir Handle) ([]wire.DirEntry, error) {
	if !dir.isDir {
		return nil, fmt.Errorf("core: readdir on file handle")
	}
	return c.ReadDir(dir.path)
}

// openHandle opens the handle's file, validating handle freshness.
func (c *Client) openHandle(h Handle, writable bool) (*File, error) {
	var (
		f   *File
		err error
	)
	if writable {
		f, err = c.OpenWrite(h.path)
	} else {
		f, err = c.Open(h.path)
	}
	if err != nil {
		return nil, err
	}
	if f.entry.FileID != h.fileID {
		if writable {
			f.Drop()
		}
		return nil, ErrStaleHandle
	}
	return f, nil
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}
