package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/layout"
	"repro/internal/wire"
)

// dirtySeg tracks an open shadow for one data segment of a write session.
type dirtySeg struct {
	node      wire.NodeID   // provider holding the shadow
	isNew     bool          // no committed base version exists yet
	renewedAt time.Duration // last lease grant (modeled clock)
}

// File is an open handle on a Sorrento file. A writable handle works on
// shadow copies invisible to other processes until Commit (paper §3.5);
// reads see the version current at open time plus the session's own writes.
type File struct {
	c        *Client
	path     string
	entry    wire.FileEntry
	attrs    wire.FileAttrs
	idx      *layout.Index
	baseVer  uint64
	writable bool
	owner    string // shadow-session token

	mu         sync.Mutex
	dirty      map[ids.SegID]*dirtySeg
	inflight   map[ids.SegID]chan struct{} // singleflight for shadow opens
	indexDirty bool
	owners     map[ids.SegID][]wire.OwnerInfo // owner cache for reads
	segHome    map[ids.SegID]wire.NodeID      // direct-mode owner pin
	closed     bool

	// journal retains this session's data writes (bounded by
	// Config.MaxCommitJournal) so a commit that loses a participant
	// mid-2PC can abort, re-place the lost shadows, replay the writes,
	// and try again. journalOff marks a session that outgrew the cap and
	// reverted to fail-fast commits.
	journal     map[ids.SegID]*segJournal
	journalSize int64
	journalOff  bool
}

// segJournal is the replayable write log for one data segment.
type segJournal struct {
	segIdx int
	writes []jwrite
}

type jwrite struct {
	off  int64
	data []byte
}

// Create registers a new file with the given attributes and returns a
// writable handle at version 0 (no data committed yet). Versioning-off
// files (attrs.VersioningOff) are materialized immediately: their segments
// are placed and created, and the index commits as version 1.
func (c *Client) Create(path string, attrs wire.FileAttrs) (*File, error) {
	if attrs.ReplDeg <= 0 {
		attrs.ReplDeg = 1
	}
	if attrs.VersioningOff {
		// Replication depends on versioning (paper §3.5): disabling
		// versioning disables replication.
		attrs.ReplDeg = 1
	}
	fid := ids.New()
	resp, err := c.ns(wire.NSCreate{Path: path, FileID: fid, Attrs: attrs})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(wire.NSCreateResp)
	if !ok || !r.OK {
		return nil, fmt.Errorf("core: create %s: %s", path, r.Err)
	}
	idx, err := layout.NewIndex(attrs, c.cfg.Sizing, ids.New)
	if err != nil {
		return nil, err
	}
	f := &File{
		c:        c,
		path:     path,
		entry:    r.Entry,
		attrs:    attrs,
		idx:      idx,
		writable: true,
		owner:    fmt.Sprintf("%s#%d", c.name, c.sessSeq.Add(1)),
		dirty:    make(map[ids.SegID]*dirtySeg),
		inflight: make(map[ids.SegID]chan struct{}),
		owners:   make(map[ids.SegID][]wire.OwnerInfo),
		segHome:  make(map[ids.SegID]wire.NodeID),
	}
	if attrs.VersioningOff {
		if err := f.materializeDirect(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Open returns a read-only handle on the file's latest committed version.
func (c *Client) Open(path string) (*File, error) { return c.open(path, false, 0) }

// OpenVersion returns a read-only handle on a specific committed version —
// usable for any version still retained, including pinned milestones.
func (c *Client) OpenVersion(path string, ver uint64) (*File, error) {
	return c.open(path, false, ver)
}

// OpenWrite returns a writable handle: a shadow session based on the latest
// committed version.
func (c *Client) OpenWrite(path string) (*File, error) { return c.open(path, true, 0) }

func (c *Client) open(path string, writable bool, ver uint64) (*File, error) {
	entry, err := c.Stat(path)
	if err != nil {
		return nil, err
	}
	if ver != 0 {
		if writable {
			return nil, fmt.Errorf("core: cannot open an old version for writing")
		}
		if ver > entry.Version {
			return nil, fmt.Errorf("core: %s has no version %d (latest %d)", path, ver, entry.Version)
		}
		entry.Version = ver
	}
	f := &File{
		c:        c,
		path:     path,
		entry:    entry,
		attrs:    entry.Attrs,
		baseVer:  entry.Version,
		writable: writable,
		owner:    fmt.Sprintf("%s#%d", c.name, c.sessSeq.Add(1)),
		dirty:    make(map[ids.SegID]*dirtySeg),
		inflight: make(map[ids.SegID]chan struct{}),
		owners:   make(map[ids.SegID][]wire.OwnerInfo),
		segHome:  make(map[ids.SegID]wire.NodeID),
	}
	if entry.Attrs.VersioningOff {
		f.writable = true // direct files are always writable in place
	}
	if entry.Version == 0 {
		idx, ierr := layout.NewIndex(entry.Attrs, c.cfg.Sizing, ids.New)
		if ierr != nil {
			return nil, ierr
		}
		f.idx = idx
		return f, nil
	}
	idx, srcOwners, err := c.fetchIndex(entry)
	if err != nil {
		return nil, err
	}
	f.idx = idx
	f.owners[entry.FileID] = srcOwners
	return f, nil
}

// fetchIndex retrieves and decodes the index segment for a committed file.
func (c *Client) fetchIndex(entry wire.FileEntry) (*layout.Index, []wire.OwnerInfo, error) {
	data, owners, err := c.readWhole(entry.FileID, entry.Version, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("core: fetch index of %s: %w", entry.Path, err)
	}
	idx, err := layout.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	return idx, owners, nil
}

// readWhole fetches an entire segment version via SegFetch, using the
// location protocol (home first, multicast backup).
func (c *Client) readWhole(seg ids.SegID, ver uint64, cached []wire.OwnerInfo) ([]byte, []wire.OwnerInfo, error) {
	owners := cached
	if len(owners) == 0 {
		var err error
		owners, err = c.locate(seg)
		if err != nil {
			return nil, nil, err
		}
	}
	var lastErr error
	for _, o := range orderOwners(owners, c.ep.Host()) {
		resp, err := c.call(o.Node, wire.SegFetch{Seg: seg, Version: ver})
		if err != nil {
			lastErr = err
			c.noteDead(o.Node, err)
			continue
		}
		if r, ok := resp.(wire.SegFetchResp); ok && r.OK {
			if !fetchRespIntact(r) {
				lastErr = fmt.Errorf("core: fetch %s from %s: checksum mismatch", seg.Short(), o.Node)
				c.readMismatches.Inc()
				continue
			}
			if lastErr != nil {
				c.failovers.Inc()
			}
			return r.Data, owners, nil
		}
	}
	if lastErr == nil {
		lastErr = ErrUnlocatable
	}
	return nil, owners, lastErr
}

// orderOwners prefers a co-located owner, otherwise keeps the newest-first
// order the location table provides.
func orderOwners(owners []wire.OwnerInfo, host wire.NodeID) []wire.OwnerInfo {
	if host == "" {
		return owners
	}
	out := make([]wire.OwnerInfo, 0, len(owners))
	for _, o := range owners {
		if o.Node == host {
			out = append(out, o)
		}
	}
	for _, o := range owners {
		if o.Node != host {
			out = append(out, o)
		}
	}
	return out
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Size returns the logical file size including uncommitted writes.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.idx.IsAttached() {
		return int64(len(f.idx.Attached))
	}
	return f.idx.Size
}

// Version returns the committed version this handle is based on.
func (f *File) Version() uint64 { return f.baseVer }

// Attrs returns the file's attributes.
func (f *File) Attrs() wire.FileAttrs { return f.attrs }

// ---------------------------------------------------------------------------
// Reads

// ReadAt reads len(p) bytes at offset off, returning io.EOF at or past end
// of file. The view is the open version plus this session's own writes.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosed
	}
	if f.idx.IsAttached() {
		n := copy(p, f.idx.Attached[min64(off, int64(len(f.idx.Attached))):])
		f.mu.Unlock()
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	size := f.idx.Size
	if off >= size {
		f.mu.Unlock()
		return 0, io.EOF
	}
	n := int64(len(p))
	atEOF := false
	if off+n > size {
		n = size - off
		atEOF = true
	}
	pieces, err := f.idx.Map(off, n)
	if err != nil {
		f.mu.Unlock()
		return 0, err
	}
	// Snapshot what each piece needs under the lock.
	type job struct {
		piece layout.Piece
		ref   layout.SegRef
		dirty *dirtySeg
		dst   []byte
	}
	jobs := make([]job, 0, len(pieces))
	cursor := int64(0)
	for _, piece := range pieces {
		ref := f.idx.Segs[piece.SegIdx]
		jobs = append(jobs, job{piece: piece, ref: ref, dirty: f.dirty[ref.ID], dst: p[cursor : cursor+piece.N]})
		cursor += piece.N
	}
	f.mu.Unlock()

	// Fan the pieces out across segments (the point of striping, §3.2):
	// pieces of the same segment stay in submission order within one
	// worker, distinct segments proceed concurrently. Each job writes only
	// its own disjoint dst subslice, so a failed fan-out cannot corrupt
	// bytes owned by other pieces.
	groups := make([][]job, 0, len(jobs))
	segGroup := make(map[int]int)
	for _, j := range jobs {
		gi, ok := segGroup[j.piece.SegIdx]
		if !ok {
			gi = len(groups)
			segGroup[j.piece.SegIdx] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], j)
	}
	err = fanout(len(groups), f.c.parallelism(), func(gi int) error {
		for _, j := range groups[gi] {
			var data []byte
			var rerr error
			switch {
			case j.dirty != nil:
				data, rerr = f.readShadowPiece(j.dirty.node, j.ref.ID, j.piece)
			default:
				data, rerr = f.readCommittedPiece(j.ref, j.piece)
			}
			if rerr != nil {
				return rerr
			}
			copy(j.dst, data)
			// Short reads (sparse regions of direct segments) leave zeros.
		}
		return nil
	})
	if err != nil {
		return int(cursor - int64(len(p))), err
	}
	if atEOF {
		return int(n), io.EOF
	}
	return int(n), nil
}

func (f *File) readShadowPiece(node wire.NodeID, seg ids.SegID, piece layout.Piece) ([]byte, error) {
	resp, err := f.c.call(node, wire.SegShadowRead{Owner: f.owner, Seg: seg, Offset: piece.Off, Length: piece.N})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(wire.SegReadResp)
	if !ok || !r.OK {
		return nil, fmt.Errorf("core: shadow read: %s", r.Err)
	}
	return r.Data, nil
}

// readCommittedPiece reads a piece of a committed segment: cached owners
// first, then the home host (which serves directly or redirects), then the
// multicast probe.
func (f *File) readCommittedPiece(ref layout.SegRef, piece layout.Piece) ([]byte, error) {
	ver := ref.Version
	if f.attrs.VersioningOff {
		ver = 0 // direct segments serve their single in-place version
	}
	f.mu.Lock()
	cached := f.owners[ref.ID]
	f.mu.Unlock()
	if len(cached) > 0 {
		if data, err := f.tryOwnersRead(cached, ref.ID, ver, piece); err == nil {
			return data, nil
		}
		f.mu.Lock()
		delete(f.owners, ref.ID)
		f.mu.Unlock()
	}
	// Home host: may serve directly or redirect (Figure 7 steps 2–3).
	if home := f.c.members.HomeOf(ref.ID); home != "" {
		resp, err := f.c.call(home, wire.SegRead{Seg: ref.ID, Version: ver, Offset: piece.Off, Length: piece.N})
		if err != nil {
			f.c.noteDead(home, err)
		}
		if err == nil {
			if r, ok := resp.(wire.SegReadResp); ok && r.OK {
				if !r.Redirect {
					f.cacheOwner(ref.ID, []wire.OwnerInfo{{Node: home, Version: r.Version}})
					return r.Data, nil
				}
				f.cacheOwner(ref.ID, r.Owners)
				if data, err := f.tryOwnersRead(r.Owners, ref.ID, ver, piece); err == nil {
					return data, nil
				}
			}
		}
	}
	// Backup scheme.
	owners, err := f.c.probe(ref.ID)
	if err != nil {
		return nil, err
	}
	f.cacheOwner(ref.ID, owners)
	return f.tryOwnersRead(owners, ref.ID, ver, piece)
}

func (f *File) cacheOwner(seg ids.SegID, owners []wire.OwnerInfo) {
	f.mu.Lock()
	f.owners[seg] = owners
	f.mu.Unlock()
}

// dropCachedOwner removes one failed node from a segment's cached owner
// list, so the next read goes straight to the surviving replicas instead
// of re-timing-out on the dead one.
func (f *File) dropCachedOwner(seg ids.SegID, node wire.NodeID) {
	f.mu.Lock()
	cached := f.owners[seg]
	kept := cached[:0]
	for _, o := range cached {
		if o.Node != node {
			kept = append(kept, o)
		}
	}
	if len(kept) == 0 {
		delete(f.owners, seg)
	} else {
		f.owners[seg] = kept
	}
	f.mu.Unlock()
}

// tryOwnersRead reads one piece, failing over across the replica sites. A
// site whose RPC fails is dropped from the owner cache on the spot (and,
// on timeout, evicted from the membership view), so one dead replica costs
// one timeout — not one per subsequent read.
func (f *File) tryOwnersRead(owners []wire.OwnerInfo, seg ids.SegID, ver uint64, piece layout.Piece) ([]byte, error) {
	var lastErr error
	for _, o := range orderOwners(owners, f.c.ep.Host()) {
		resp, err := f.c.call(o.Node, wire.SegRead{Seg: seg, Version: ver, Offset: piece.Off, Length: piece.N})
		if err != nil {
			lastErr = err
			f.dropCachedOwner(seg, o.Node)
			f.c.noteDead(o.Node, err)
			continue
		}
		r, ok := resp.(wire.SegReadResp)
		if !ok || !r.OK || r.Redirect {
			lastErr = fmt.Errorf("core: read %s from %s: %s", seg.Short(), o.Node, r.Err)
			continue
		}
		if !readRespIntact(r) {
			lastErr = fmt.Errorf("core: read %s from %s: checksum mismatch", seg.Short(), o.Node)
			f.c.readMismatches.Inc()
			f.dropCachedOwner(seg, o.Node)
			continue
		}
		if lastErr != nil {
			f.c.failovers.Inc()
		}
		return r.Data, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no owner served %s v%d", ErrUnlocatable, seg.Short(), ver)
	}
	return nil, lastErr
}

// ---------------------------------------------------------------------------
// Writes

// WriteAt writes p at offset off into the session's shadow copies, growing
// the file as needed. Nothing is visible to other processes until Commit.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosed
	}
	if !f.writable {
		f.mu.Unlock()
		return 0, ErrReadOnly
	}
	f.mu.Unlock()
	if f.attrs.VersioningOff {
		return f.writeDirect(p, off)
	}
	return f.writeShadow(p, off)
}

func (f *File) writeShadow(p []byte, off int64) (int, error) {
	f.mu.Lock()
	// Small files live attached inside the index segment until they
	// outgrow the limit.
	if f.idx.IsAttached() {
		if f.attrs.Mode == wire.Linear && off+int64(len(p)) <= layout.MaxAttach {
			f.growAttachedLocked(off, p)
			f.indexDirty = true
			f.mu.Unlock()
			return len(p), nil
		}
		// Spill: detach the payload, then flush it into real segments
		// before applying the new write.
		old := f.idx.Attached
		f.idx.HasAttached = false
		f.idx.Attached = nil
		f.mu.Unlock()
		if len(old) > 0 {
			if _, err := f.writeShadowRange(old, 0); err != nil {
				return 0, err
			}
		}
		return f.writeShadowRange(p, off)
	}
	f.mu.Unlock()
	return f.writeShadowRange(p, off)
}

func (f *File) growAttachedLocked(off int64, p []byte) {
	end := off + int64(len(p))
	if int64(len(f.idx.Attached)) < end {
		nb := make([]byte, end)
		copy(nb, f.idx.Attached)
		f.idx.Attached = nb
	}
	copy(f.idx.Attached[off:end], p)
}

func (f *File) writeShadowRange(p []byte, off int64) (int, error) {
	f.mu.Lock()
	pieces, err := f.idx.Plan(off, int64(len(p)), ids.New)
	if err != nil {
		f.mu.Unlock()
		return 0, err
	}
	type job struct {
		piece layout.Piece
		ref   layout.SegRef
		data  []byte
	}
	jobs := make([]job, 0, len(pieces))
	cursor := int64(0)
	for _, piece := range pieces {
		jobs = append(jobs, job{piece: piece, ref: f.idx.Segs[piece.SegIdx], data: p[cursor : cursor+piece.N]})
		cursor += piece.N
	}
	f.indexDirty = true
	f.mu.Unlock()

	f.renewStaleShadows()
	// Same grouping as ReadAt: per-segment write order is preserved (later
	// pieces of a segment must land after earlier ones), distinct segments
	// — including their shadow placement + creation — fan out concurrently.
	groups := make([][]job, 0, len(jobs))
	segGroup := make(map[int]int)
	for _, j := range jobs {
		gi, ok := segGroup[j.piece.SegIdx]
		if !ok {
			gi = len(groups)
			segGroup[j.piece.SegIdx] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], j)
	}
	err = fanout(len(groups), f.c.parallelism(), func(gi int) error {
		for _, j := range groups[gi] {
			node, err := f.ensureShadow(j.ref, j.piece.SegIdx)
			if err != nil {
				return err
			}
			// Shadow writes are absolute-offset and therefore idempotent;
			// a lost response is safely retried.
			resp, err := f.c.callRetry(context.Background(), node, wire.SegWrite{Owner: f.owner, Seg: j.ref.ID, Offset: j.piece.Off, Data: j.data})
			if err != nil {
				return err
			}
			if r, ok := resp.(wire.SegWriteResp); !ok || !r.OK {
				return fmt.Errorf("core: write %s on %s: %s", j.ref.ID.Short(), node, r.Err)
			}
			f.journalWrite(j.piece.SegIdx, j.ref.ID, j.piece.Off, j.data)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// journalWrite retains a copy of one successful shadow write for commit
// retry, until the session's cap is hit.
func (f *File) journalWrite(segIdx int, seg ids.SegID, off int64, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.journalOff {
		return
	}
	if f.journalSize+int64(len(data)) > f.c.cfg.MaxCommitJournal {
		f.journalOff = true
		f.journal = nil
		f.journalSize = 0
		return
	}
	if f.journal == nil {
		f.journal = make(map[ids.SegID]*segJournal)
	}
	js := f.journal[seg]
	if js == nil {
		js = &segJournal{segIdx: segIdx}
		f.journal[seg] = js
	}
	js.writes = append(js.writes, jwrite{off: off, data: append([]byte(nil), data...)})
	f.journalSize += int64(len(data))
}

func (f *File) clearJournal() {
	f.mu.Lock()
	f.journal = nil
	f.journalSize = 0
	f.mu.Unlock()
}

// replayJournal rebuilds the session's shadows after an aborted commit
// round: every journaled segment gets a fresh shadow — placed away from
// dead nodes, or failed over to a surviving replica site — and its writes
// re-applied in original order.
func (f *File) replayJournal(ctx context.Context) error {
	f.mu.Lock()
	segs := make([]ids.SegID, 0, len(f.journal))
	for seg := range f.journal {
		segs = append(segs, seg)
	}
	f.mu.Unlock()
	return fanout(len(segs), f.c.parallelism(), func(i int) error {
		seg := segs[i]
		f.mu.Lock()
		js := f.journal[seg]
		ref := f.idx.Segs[js.segIdx]
		segIdx := js.segIdx
		writes := js.writes
		f.mu.Unlock()
		node, err := f.ensureShadow(ref, segIdx)
		if err != nil {
			return err
		}
		for _, w := range writes {
			resp, err := f.c.callRetry(ctx, node, wire.SegWrite{Owner: f.owner, Seg: seg, Offset: w.off, Data: w.data})
			if err != nil {
				return err
			}
			if r, ok := resp.(wire.SegWriteResp); !ok || !r.OK {
				return fmt.Errorf("core: replay write %s on %s: %s", seg.Short(), node, r.Err)
			}
		}
		return nil
	})
}

// ensureShadow opens (once) the shadow for a data segment, creating the
// segment on a freshly placed provider when it is new. Concurrent callers
// for the same segment coalesce on a singleflight channel so exactly one
// SegShadow RPC is issued per segment per session.
func (f *File) ensureShadow(ref layout.SegRef, segIdx int) (wire.NodeID, error) {
	for {
		f.mu.Lock()
		if d, ok := f.dirty[ref.ID]; ok {
			f.mu.Unlock()
			return d.node, nil
		}
		ch, busy := f.inflight[ref.ID]
		if !busy {
			ch = make(chan struct{})
			f.inflight[ref.ID] = ch
		}
		f.mu.Unlock()
		if busy {
			<-ch // another goroutine is opening this shadow; wait and re-check
			continue
		}
		node, err := f.openShadow(ref, segIdx)
		f.mu.Lock()
		if err == nil {
			f.dirty[ref.ID] = &dirtySeg{node: node, isNew: ref.Version == 0, renewedAt: f.c.clock.Now()}
		}
		delete(f.inflight, ref.ID)
		f.mu.Unlock()
		close(ch)
		return node, err
	}
}

// openShadow places (for new segments) and opens a shadow copy, returning
// the provider holding it. For an existing segment the shadow fails over
// across the replica sites holding the newest version; a new segment whose
// placed node won't answer is re-placed on an alternate.
func (f *File) openShadow(ref layout.SegRef, segIdx int) (wire.NodeID, error) {
	isNew := ref.Version == 0
	var cands []wire.NodeID
	if isNew {
		// Potential maximum size per the sizing scheme (paper footnote 2).
		// Data segments are placed purely by the file's policy; the
		// home-host 3N bias applies to index segments (the paper's
		// motivating "particular case"), where the extra hop dominates.
		maxSize := f.idx.Sizing.SegmentSize(segIdx)
		exclude := make(map[wire.NodeID]bool)
		for try := 0; try < 2; try++ {
			n, err := f.c.place(f.attrs, maxSize, "", false, exclude)
			if err != nil {
				if len(cands) > 0 {
					break // fewer candidates than tries; use what we have
				}
				return "", err
			}
			cands = append(cands, n)
			exclude[n] = true
		}
	} else {
		// Only replicas already at the version our index references can
		// base the shadow correctly; a stale replica would fork history.
		var maxVer uint64
		owners, err := f.segOwners(ref.ID)
		if err != nil {
			return "", err
		}
		for _, o := range owners {
			if o.Version > maxVer {
				maxVer = o.Version
			}
		}
		for _, o := range orderOwners(owners, f.c.ep.Host()) {
			if o.Version == maxVer && o.Version >= ref.Version {
				cands = append(cands, o.Node)
			}
		}
		if len(cands) == 0 {
			return "", fmt.Errorf("%w: no current replica of %s", ErrUnlocatable, ref.ID.Short())
		}
	}
	var lastErr error
	for i, node := range cands {
		if i > 0 && !f.c.members.IsLive(node) {
			continue // don't fail over onto a known-dead alternate
		}
		resp, err := f.c.call(node, wire.SegShadow{
			Owner:             f.owner,
			Seg:               ref.ID,
			BaseVer:           0,
			TTLSec:            f.c.cfg.ShadowTTL.Seconds(),
			ReplDeg:           f.attrs.ReplDeg,
			LocalityThreshold: f.attrs.LocalityThreshold,
		})
		if err != nil {
			lastErr = err
			f.dropCachedOwner(ref.ID, node)
			f.c.noteDead(node, err)
			continue
		}
		if r, ok := resp.(wire.SegShadowResp); !ok || !r.OK {
			lastErr = fmt.Errorf("core: shadow %s on %s: %s", ref.ID.Short(), node, r.Err)
			continue
		}
		if i > 0 {
			f.c.failovers.Inc()
		}
		return node, nil
	}
	return "", lastErr
}

// renewStaleShadows resets the expiration timer of every shadow in this
// session that is past a third of its TTL (paper §3.5: the application
// must commit or reset the timer before it expires). Long write sessions —
// populating a large file under contention — keep all their shadows alive
// this way, not just the one currently being written.
func (f *File) renewStaleShadows() {
	now := f.c.clock.Now()
	type renewal struct {
		node wire.NodeID
		seg  ids.SegID
	}
	var due []renewal
	f.mu.Lock()
	for seg, d := range f.dirty {
		if now-d.renewedAt >= f.c.cfg.ShadowTTL/3 {
			d.renewedAt = now
			due = append(due, renewal{node: d.node, seg: seg})
		}
	}
	f.mu.Unlock()
	// Renewals are independent control messages; push them out in parallel
	// so a wide session doesn't pay one round-trip per shadow.
	fanout(len(due), f.c.parallelism(), func(i int) error {
		r := due[i]
		f.c.call(r.node, wire.SegRenew{Owner: f.owner, Seg: r.seg, TTLSec: f.c.cfg.ShadowTTL.Seconds()})
		return nil
	})
}

func (f *File) segOwners(seg ids.SegID) ([]wire.OwnerInfo, error) {
	f.mu.Lock()
	cached := f.owners[seg]
	f.mu.Unlock()
	if len(cached) > 0 {
		return cached, nil
	}
	owners, err := f.c.locate(seg)
	if err != nil {
		return nil, err
	}
	f.cacheOwner(seg, owners)
	return owners, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
