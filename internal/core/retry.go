package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// RetryPolicy governs how the client handles transient RPC failures:
// per-RPC deadlines come from Config.CallTimeout; failed attempts back off
// exponentially with deterministic seeded jitter charged against the
// modeled clock, so retry schedules replay exactly under a pinned seed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per retryable operation
	// (1 disables retries).
	MaxAttempts int
	// Backoff is the base delay before the second attempt; it doubles per
	// attempt up to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.Backoff <= 0 {
		r.Backoff = 200 * time.Millisecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 5 * time.Second
	}
	return r
}

// retrier holds the client's seeded jitter source.
type retrier struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newRetrier(seed int64) *retrier {
	if seed == 0 {
		seed = 1
	}
	return &retrier{rng: rand.New(rand.NewSource(seed))}
}

// isTransient reports whether an RPC error is worth retrying: timeouts
// (lost messages, dead or partitioned peers) and expired deadlines. Typed
// application errors (conflict, not-found, ...) are not transient.
func isTransient(err error) bool {
	return errors.Is(err, transport.ErrTimeout) || errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay computes the jittered modeled delay before attempt+2.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.cfg.Retry.Backoff << uint(attempt)
	if d > c.cfg.Retry.MaxBackoff || d <= 0 {
		d = c.cfg.Retry.MaxBackoff
	}
	c.retry.mu.Lock()
	j := d/2 + time.Duration(c.retry.rng.Int63n(int64(d)))
	c.retry.mu.Unlock()
	return j
}

// sleepBackoff sleeps the jittered backoff for the given attempt on the
// modeled clock, honoring ctx.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.clock.After(c.backoffDelay(attempt)):
		return nil
	}
}

// callRetry performs an idempotent RPC with the retry policy: each attempt
// gets its own CallTimeout deadline; transient failures back off and retry.
// After the final timeout the target is marked dead in the client's
// membership view, so placement and home-host resolution stop routing to
// it before heartbeat expiry catches up.
func (c *Client) callRetry(ctx context.Context, to wire.NodeID, req any) (any, error) {
	var resp any
	var err error
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if serr := c.sleepBackoff(ctx, attempt-1); serr != nil {
				return nil, err
			}
		}
		resp, err = c.callCtx(ctx, to, req)
		if err == nil || !isTransient(err) {
			return resp, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
	}
	c.noteDead(to, err)
	return nil, err
}

// noteDead evicts a provider from the client's membership view after a
// timeout-class failure. Heartbeat expiry would get there eventually; doing
// it at the point of failure keeps placement and failover from re-selecting
// a node we just watched die.
func (c *Client) noteDead(node wire.NodeID, err error) {
	if node == "" || node == c.cfg.Namespace || !errors.Is(err, transport.ErrTimeout) {
		return
	}
	c.members.MarkDead(node)
}
