package core
