package core

// White-box tests for the parallel data path: the fanout helper, the
// owner-cache behavior the concurrent read path relies on, fan-out error
// semantics on striped files, and shadow-open singleflight. They drive a
// miniature deployment assembled directly from namespace + provider +
// simnet (the cluster harness sits above core and cannot be imported
// without a cycle).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/ids"
	"repro/internal/namespace"
	"repro/internal/provider"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// fanout helper

func TestFanoutRunsAllJobs(t *testing.T) {
	for _, width := range []int{1, 3, 8, 100} {
		var mu sync.Mutex
		seen := make(map[int]bool)
		err := fanout(17, width, func(i int) error {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("width %d: err = %v", width, err)
		}
		if len(seen) != 17 {
			t.Fatalf("width %d: ran %d/17 jobs", width, len(seen))
		}
	}
	if err := fanout(0, 4, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatalf("empty fanout: %v", err)
	}
}

func TestFanoutFirstErrorByIndex(t *testing.T) {
	// Every job fails with an index-tagged error. Job 0 is always picked
	// first, so the lowest-index failure is deterministic.
	errs := make([]error, 8)
	for i := range errs {
		errs[i] = fmt.Errorf("job %d", i)
	}
	got := fanout(8, 4, func(i int) error { return errs[i] })
	if got != errs[0] {
		t.Fatalf("returned %v, want %v", got, errs[0])
	}
}

func TestFanoutWidthOneIsSequential(t *testing.T) {
	var order []int
	sentinel := errors.New("stop")
	err := fanout(6, 1, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

func TestFanoutStopsAfterFailure(t *testing.T) {
	// With width 1 past the failure nothing runs; with wider pools at most
	// the already-started jobs complete. Either way the tail must not all
	// run: job 0 fails immediately and 63 jobs follow it.
	var ran int32
	var mu sync.Mutex
	err := fanout(64, 2, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	mu.Lock()
	n := ran
	mu.Unlock()
	if n > 8 {
		t.Fatalf("%d jobs ran after an immediate failure", n)
	}
}

// ---------------------------------------------------------------------------
// mini deployment

type testNSHandler struct{ s *namespace.Server }

func (h testNSHandler) HandleCall(_ context.Context, _ wire.NodeID, req any) (any, error) {
	return h.s.Handle(req)
}
func (h testNSHandler) HandleCast(wire.NodeID, any) {}

type miniCluster struct {
	clock     *simtime.Clock
	fabric    *simnet.Fabric
	providers map[wire.NodeID]*provider.Provider
}

func newMiniCluster(t *testing.T, nProviders int) *miniCluster {
	t.Helper()
	clock := simtime.NewClock(0.001)
	fabric := simnet.New(clock, simnet.Config{})
	ns, err := namespace.NewServer(clock, namespace.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.Join("ns", testNSHandler{ns}); err != nil {
		t.Fatal(err)
	}
	mc := &miniCluster{clock: clock, fabric: fabric, providers: make(map[wire.NodeID]*provider.Provider)}
	for i := 0; i < nProviders; i++ {
		id := wire.NodeID(fmt.Sprintf("p%02d", i))
		cfg := provider.Config{Seed: int64(i + 1)}
		d := disk.New(clock, string(id), disk.SCSI10K(), 8<<30)
		p, err := provider.New(id, clock, cfg, fabric, d)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		mc.providers[id] = p
	}
	t.Cleanup(func() {
		for _, p := range mc.providers {
			p.Stop()
		}
	})
	return mc
}

func (mc *miniCluster) client(t *testing.T, name string, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{Namespace: "ns"}
	if mutate != nil {
		mutate(&cfg)
	}
	cl, err := NewClient(name, mc.clock, mc.fabric, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.WaitForProviders(len(mc.providers), 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return cl
}

func stripedAttrs(segs int, unit, size int64) wire.FileAttrs {
	return wire.FileAttrs{
		Mode: wire.Striped, StripeCount: segs, StripeUnit: unit,
		DeclaredSize: size, ReplDeg: 1, Alpha: 0.5,
	}
}

// pattern fills b with a position-dependent byte so corruption is visible.
func pattern(b []byte, base int64) {
	for i := range b {
		b[i] = byte((base + int64(i)) * 131 % 251)
	}
}

// writeStriped creates and commits a striped file covering size bytes.
func writeStriped(t *testing.T, cl *Client, path string, attrs wire.FileAttrs) []byte {
	t.Helper()
	f, err := cl.Create(path, attrs)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, attrs.DeclaredSize)
	pattern(data, 0)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return data
}

// ---------------------------------------------------------------------------
// owner cache (satellite: cache hit, stale invalidation, home fallback)

func TestOwnerCacheReadPath(t *testing.T) {
	mc := newMiniCluster(t, 4)
	cl := mc.client(t, "c0", nil)
	attrs := stripedAttrs(4, 4096, 4*2*4096)
	want := writeStriped(t, cl, "/cache", attrs)

	f, err := cl.Open("/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seg := f.idx.Segs[0].ID

	// First read resolves and caches the data segments' owners.
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("first read returned wrong bytes")
	}
	f.mu.Lock()
	cached := f.owners[seg]
	f.mu.Unlock()
	if len(cached) == 0 {
		t.Fatal("owner cache not populated by read")
	}

	// Cache hit: a second read must serve from the cached entry without
	// replacing it (the map value survives untouched).
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	after := f.owners[seg]
	f.mu.Unlock()
	if len(after) != len(cached) || &after[0] != &cached[0] {
		t.Fatal("cache-hit read replaced the owner cache entry")
	}

	// Stale entry: poison the cache with a node that does not exist. The
	// read must invalidate the entry (delete(f.owners, ...)), fall back to
	// the home host's serve-or-redirect, and still return correct bytes.
	f.mu.Lock()
	f.owners[seg] = []wire.OwnerInfo{{Node: "ghost", Version: 1}}
	f.mu.Unlock()
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read after stale cache returned wrong bytes")
	}
	f.mu.Lock()
	repaired := f.owners[seg]
	f.mu.Unlock()
	if len(repaired) == 0 {
		t.Fatal("stale entry not re-resolved")
	}
	for _, o := range repaired {
		if o.Node == "ghost" {
			t.Fatalf("stale owner survived invalidation: %v", repaired)
		}
	}
}

// ---------------------------------------------------------------------------
// fan-out error semantics (satellite: first error, no corruption, no leaks)

func TestStripedReadProviderErrorMidFanout(t *testing.T) {
	mc := newMiniCluster(t, 4)
	cl := mc.client(t, "c0", nil)
	attrs := stripedAttrs(4, 4096, 4*2*4096)
	want := writeStriped(t, cl, "/readfail", attrs)

	f, err := cl.Open("/readfail")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Vaporize one data segment everywhere: reads of its pieces fail after
	// exhausting cache, home redirect, and the multicast probe, while the
	// other three segments keep serving.
	// (The location tables may still name the dead owner; the read path
	// must survive the redirect-to-nowhere and fail only after the
	// multicast probe also comes up empty.)
	victim := f.idx.Segs[1].ID
	for _, p := range mc.providers {
		p.Store().Delete(victim)
	}

	before := runtime.NumGoroutine()
	const sentinel = 0xAA
	got := make([]byte, len(want))
	for i := range got {
		got[i] = sentinel
	}
	_, err = f.ReadAt(got, 0)
	if err == nil {
		t.Fatal("read of vaporized segment succeeded")
	}
	// No partial-buffer corruption: every byte is either untouched
	// sentinel (its piece failed or never ran) or the correct file byte.
	for i, b := range got {
		if b != sentinel && b != want[i] {
			t.Fatalf("byte %d corrupted: %#x (want %#x or sentinel)", i, b, want[i])
		}
	}
	// Workers exit after the error: the goroutine count settles back.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStripedWriteProviderErrorMidFanout(t *testing.T) {
	mc := newMiniCluster(t, 4)
	cl := mc.client(t, "c0", nil)
	attrs := stripedAttrs(4, 4096, 4*2*4096)

	f, err := cl.Create("/writefail", attrs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, attrs.DeclaredSize)
	pattern(buf, 0)
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	// Kill one segment's shadow behind the session's back: the next write
	// to it fails with ErrNoShadow from the provider, mid-fan-out.
	f.mu.Lock()
	victim := f.idx.Segs[2].ID
	node := f.dirty[victim].node
	owner := f.owner
	f.mu.Unlock()
	if err := mc.providers[node].Store().Drop(owner, victim); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	n, err := f.WriteAt(buf, 0)
	if err == nil {
		t.Fatal("write to dropped shadow succeeded")
	}
	if n != 0 {
		t.Fatalf("failed write reported %d bytes", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.Drop()
}

// ---------------------------------------------------------------------------
// shadow-open singleflight under concurrent WriteAt

func TestConcurrentWriteAtSingleShadowPerSegment(t *testing.T) {
	mc := newMiniCluster(t, 4)
	cl := mc.client(t, "c0", nil)
	const segs, unit = 4, 4096
	attrs := stripedAttrs(segs, unit, segs*4*unit)

	f, err := cl.Create("/concurrent", attrs)
	if err != nil {
		t.Fatal(err)
	}
	// 8 writers × disjoint 8 KB slices; every writer's range strides the
	// stripe so all four segments race their first ensureShadow.
	want := make([]byte, attrs.DeclaredSize)
	pattern(want, 0)
	var wg sync.WaitGroup
	werrs := make([]error, 8)
	chunk := int64(len(want)) / 8
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := int64(w) * chunk
			_, werrs[w] = f.WriteAt(want[off:off+chunk], off)
		}(w)
	}
	wg.Wait()
	for _, err := range werrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Exactly one shadow exists per data segment across the cluster: the
	// singleflight collapsed concurrent ensureShadow calls, leaving no
	// orphan shadows on doubly-placed providers.
	f.mu.Lock()
	if len(f.dirty) != segs {
		t.Fatalf("dirty segments = %d, want %d", len(f.dirty), segs)
	}
	segIDs := make([]ids.SegID, 0, segs)
	for _, ref := range f.idx.Segs {
		segIDs = append(segIDs, ref.ID)
	}
	f.mu.Unlock()
	for _, seg := range segIDs {
		holders := 0
		for _, p := range mc.providers {
			if p.Store().Stat(seg).HasShadow {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("segment %s has shadows on %d providers", seg.Short(), holders)
		}
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := cl.Open("/concurrent")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got := make([]byte, len(want))
	if _, err := rf.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent writes committed wrong bytes")
	}
}
