package core

// White-box unit tests for the client library's pure logic. The end-to-end
// behaviour (commits, conflicts, replication) is covered by
// internal/cluster's integration tests; these pin the local invariants.

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Namespace: "ns"}.withDefaults()
	if c.ShadowTTL <= 0 || c.ProbeTimeout <= 0 || c.CallTimeout <= 0 {
		t.Errorf("zero durations not defaulted: %+v", c)
	}
	if c.Sizing.Unit == 0 || c.Seed == 0 {
		t.Errorf("sizing/seed not defaulted: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Namespace: "ns", ShadowTTL: time.Hour, Seed: 42}.withDefaults()
	if c2.ShadowTTL != time.Hour || c2.Seed != 42 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestOrderOwnersPrefersHost(t *testing.T) {
	owners := []wire.OwnerInfo{
		{Node: "p1", Version: 3},
		{Node: "p2", Version: 3},
		{Node: "p3", Version: 2},
	}
	got := orderOwners(owners, "p2")
	if got[0].Node != "p2" {
		t.Errorf("co-located owner not first: %v", got)
	}
	if len(got) != 3 {
		t.Errorf("owners lost: %v", got)
	}
	// Without a host the order is preserved.
	got = orderOwners(owners, "")
	if got[0].Node != "p1" || got[2].Node != "p3" {
		t.Errorf("order changed without host: %v", got)
	}
	// Host not among owners: order preserved.
	got = orderOwners(owners, "elsewhere")
	if got[0].Node != "p1" {
		t.Errorf("order changed for absent host: %v", got)
	}
}

func TestNsErr(t *testing.T) {
	if err := nsErr(wire.NSGenericResp{OK: true}, nil); err != nil {
		t.Errorf("ok response produced error %v", err)
	}
	if err := nsErr(wire.NSGenericResp{Err: "boom"}, nil); err == nil {
		t.Error("error response produced nil")
	}
	if err := nsErr(nil, ErrNotFound); err != ErrNotFound {
		t.Errorf("transport error not propagated: %v", err)
	}
	if err := nsErr("wat", nil); err == nil {
		t.Error("unexpected response type accepted")
	}
}

func TestNewClientRequiresNamespace(t *testing.T) {
	if _, err := NewClient("c", nil, nil, Config{}); err == nil {
		t.Fatal("client without namespace constructed")
	}
}

func TestFSAdapterLabel(t *testing.T) {
	fs := NewFS(nil, wire.FileAttrs{ReplDeg: 3}, "custom")
	if fs.Name() != "custom" {
		t.Errorf("Name = %q", fs.Name())
	}
	fs2 := NewFS(nil, wire.FileAttrs{}, "")
	if fs2.Name() == "" {
		t.Error("default label empty")
	}
	if fs2.attrs.ReplDeg != 1 {
		t.Errorf("zero ReplDeg not defaulted: %d", fs2.attrs.ReplDeg)
	}
}

func TestCommitOptionsZeroValueIsLazy(t *testing.T) {
	var opts CommitOptions
	if opts.Sync {
		t.Error("zero CommitOptions must be lazy")
	}
}

func TestMin64(t *testing.T) {
	if min64(3, 5) != 3 || min64(5, 3) != 3 || min64(4, 4) != 4 {
		t.Error("min64 wrong")
	}
}
