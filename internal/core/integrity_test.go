package core

import (
	"testing"

	"repro/internal/wire"
)

func TestReadRespIntact(t *testing.T) {
	data := []byte("piece of a segment")
	good := wire.SegReadResp{OK: true, Data: data, Sum: wire.SumOf(data)}
	if !readRespIntact(good) {
		t.Fatal("clean reply rejected")
	}
	bad := good
	bad.Data = append([]byte(nil), data...)
	bad.Data[3] ^= 0x40 // damaged after the provider summed it
	if readRespIntact(bad) {
		t.Fatal("damaged reply accepted")
	}
	empty := wire.SegReadResp{OK: true}
	if !readRespIntact(empty) {
		t.Fatal("empty reply rejected")
	}
	empty.Sum = 7 // sum without payload: something is lying
	if readRespIntact(empty) {
		t.Fatal("empty reply with nonzero sum accepted")
	}
}

func TestFetchRespIntact(t *testing.T) {
	data := make([]byte, wire.SumBlock+100)
	for i := range data {
		data[i] = byte(i)
	}
	good := wire.SegFetchResp{OK: true, Data: data, Sums: wire.SumsOf(data)}
	if !fetchRespIntact(good) {
		t.Fatal("clean fetch rejected")
	}
	bad := good
	bad.Data = append([]byte(nil), data...)
	bad.Data[wire.SumBlock+1] ^= 0x01
	if fetchRespIntact(bad) {
		t.Fatal("damaged fetch accepted")
	}
	// Direct segments carry no checksum metadata; nil sums pass through.
	direct := wire.SegFetchResp{OK: true, Data: data}
	if !fetchRespIntact(direct) {
		t.Fatal("direct fetch rejected")
	}
}
