package core

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/layout"
	"repro/internal/wire"
)

// PinMilestone marks a committed file version as a milestone: the index
// segment version and every data segment version it references are pinned
// on all their owners, so the milestone stays readable regardless of later
// commits and version consolidation. ver 0 pins the latest committed
// version. (Paper §3.5 plans exactly this, citing the Elephant file
// system.)
func (c *Client) PinMilestone(path string, ver uint64) error {
	return c.pin(path, ver, false)
}

// UnpinMilestone releases a milestone pinned with PinMilestone.
func (c *Client) UnpinMilestone(path string, ver uint64) error {
	return c.pin(path, ver, true)
}

func (c *Client) pin(path string, ver uint64, unpin bool) error {
	entry, err := c.Stat(path)
	if err != nil {
		return err
	}
	if entry.Version == 0 {
		return fmt.Errorf("core: %s has no committed version to pin", path)
	}
	if ver == 0 {
		ver = entry.Version
	}
	// Fetch the index *at the milestone version* to learn the data segment
	// versions it references.
	data, _, err := c.readWhole(entry.FileID, ver, nil)
	if err != nil {
		return fmt.Errorf("core: pin %s v%d: %w", path, ver, err)
	}
	idx, err := layout.Decode(data)
	if err != nil {
		return err
	}
	// Pin the index segment itself plus every referenced data segment, on
	// every owner.
	targets := []struct {
		seg ids.SegID
		ver uint64
	}{{entry.FileID, ver}}
	for _, ref := range idx.Segs {
		targets = append(targets, struct {
			seg ids.SegID
			ver uint64
		}{ref.ID, ref.Version})
	}
	for _, tgt := range targets {
		owners, lerr := c.locate(tgt.seg)
		if lerr != nil {
			return fmt.Errorf("core: pin %s: locate %s: %w", path, tgt.seg.Short(), lerr)
		}
		for _, o := range owners {
			resp, cerr := c.call(o.Node, wire.SegPin{Seg: tgt.seg, Version: tgt.ver, Unpin: unpin})
			if cerr != nil {
				return cerr
			}
			if g, ok := resp.(wire.GenericResp); !ok || !g.OK {
				// An owner that no longer holds this version cannot pin it;
				// surface the first hard failure.
				if !unpin {
					return fmt.Errorf("core: pin %s v%d on %s: %s", tgt.seg.Short(), tgt.ver, o.Node, g.Err)
				}
			}
		}
	}
	return nil
}
