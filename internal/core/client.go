// Package core is Sorrento's client library — the programming interface
// applications use to access a volume (paper §2.3). It provides a
// UNIX-flavored file API (Create/Open/ReadAt/WriteAt/Commit/Close) on top
// of the versioned-consistency protocol: copy-on-write shadow segments,
// two-phase commit across providers, commit-window arbitration at the
// namespace server, and the extended per-file knobs (replication degree,
// layout mode, placement α, locality-driven policy).
//
// A Client holds the complete view of the live providers via the membership
// manager, so it resolves every SegID's home host locally and falls back to
// the multicast probe only when the soft state is stale (§3.4.2).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/layout"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client errors.
var (
	// ErrConflict reports a commit rejected because another process
	// committed a newer version first (paper §3.5).
	ErrConflict = errors.New("core: update conflict")
	// ErrNotFound reports a missing path.
	ErrNotFound = errors.New("core: file not found")
	// ErrReadOnly reports a write on a read-only handle.
	ErrReadOnly = errors.New("core: file opened read-only")
	// ErrClosed reports use of a closed handle.
	ErrClosed = errors.New("core: file closed")
	// ErrNoProviders reports an empty live provider set.
	ErrNoProviders = errors.New("core: no live storage providers")
	// ErrUnlocatable reports a segment whose owners could not be found even
	// via the multicast backup scheme.
	ErrUnlocatable = errors.New("core: segment not locatable")
)

// Config tunes a client.
type Config struct {
	// Namespace is the namespace server's node ID.
	Namespace wire.NodeID
	// Host co-locates the client on an existing provider node (shares its
	// NIC; reads/writes to that provider are local). Empty means the client
	// runs on its own machine.
	Host wire.NodeID
	// ShadowTTL is the expiration granted to shadow copies.
	ShadowTTL time.Duration
	// ProbeTimeout bounds the multicast backup location scheme.
	ProbeTimeout time.Duration
	// CallTimeout bounds individual RPCs.
	CallTimeout time.Duration
	// Sizing overrides the segment sizing formula (zero value = paper's).
	Sizing layout.Sizing
	// Membership tunes the client's provider view.
	Membership membership.Config
	// Seed seeds placement decisions and retry jitter.
	Seed int64
	// Retry governs transient-failure handling: per-RPC deadlines with
	// exponential, seeded-jitter backoff on the modeled clock, read
	// failover across replica sites, and 2PC abort-and-retry.
	Retry RetryPolicy
	// MaxCommitJournal caps the bytes of written data the client keeps
	// per write session to make 2PC retryable: when a participant dies
	// mid-commit, journaled writes are replayed onto freshly placed
	// shadows. Sessions that exceed the cap fall back to fail-fast
	// commits. Default 16 MiB.
	MaxCommitJournal int64
	// MaxParallelIO bounds the client's concurrent piece RPCs per file
	// operation: striped reads/writes, shadow creation, commit rounds and
	// segment deletion all fan out on at most this many workers. The
	// default (8) matches the paper's stripe width across an 8-provider
	// group; 1 restores strictly sequential piece I/O.
	MaxParallelIO int
	// Obs enables client-side observability: commit latency/conflict
	// metrics, location-probe counts, heartbeat-gap tracking, and a root
	// span per commit so the transport's RPC spans attach under it. Nil
	// disables all of it.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.ShadowTTL <= 0 {
		c.ShadowTTL = 5 * time.Minute
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 60 * time.Second
	}
	if c.Sizing.Unit == 0 {
		c.Sizing = layout.DefaultSizing()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxParallelIO <= 0 {
		c.MaxParallelIO = 8
	}
	c.Retry = c.Retry.withDefaults()
	if c.MaxCommitJournal <= 0 {
		c.MaxCommitJournal = 16 << 20
	}
	return c
}

// Client is one application's attachment to a Sorrento volume.
type Client struct {
	name    string
	clock   *simtime.Clock
	cfg     Config
	ep      transport.Endpoint
	members *membership.Manager
	sel     *placement.Selector

	sessSeq  atomic.Uint64
	nonceSeq atomic.Uint64

	retry *retrier

	// Metric handles, resolved once at construction (nil handles no-op).
	commitLat       *obs.Histogram
	commitsOK       *obs.Counter
	commitConflicts *obs.Counter
	probesSent      *obs.Counter
	retries         *obs.Counter
	failovers       *obs.Counter
	readMismatches  *obs.Counter
	commitRetries   *obs.Counter
	commitAborts    *obs.Counter

	mu     sync.Mutex
	probes map[uint64]chan wire.LocProbeResp

	// fallback, when set, receives every incoming call the client itself
	// does not handle. It lets a co-located service — the proxy gateway —
	// serve its own request protocol on the client's endpoint instead of
	// occupying a second node identity.
	fallback atomic.Pointer[transport.Handler]
}

// SetRequestHandler installs h as the fallback for incoming calls the
// client does not consume (everything but probe responses). Install before
// traffic arrives; passing nil removes the fallback.
func (c *Client) SetRequestHandler(h transport.Handler) {
	if h == nil {
		c.fallback.Store(nil)
		return
	}
	c.fallback.Store(&h)
}

// Name returns the node name the client joined the network as.
func (c *Client) Name() string { return c.name }

// Clock returns the client's modeled clock.
func (c *Client) Clock() *simtime.Clock { return c.clock }

// NewClient joins the network as node `name` and begins tracking provider
// membership.
func NewClient(name string, clock *simtime.Clock, network transport.Network, cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Namespace == "" {
		return nil, fmt.Errorf("core: Config.Namespace required")
	}
	c := &Client{
		name:    name,
		clock:   clock,
		cfg:     cfg,
		members: membership.NewManager(clock, cfg.Membership),
		sel:     placement.NewSelector(cfg.Seed),
		retry:   newRetrier(cfg.Seed),
		probes:  make(map[uint64]chan wire.LocProbeResp),
	}
	if reg := cfg.Obs.Reg(); reg != nil {
		node := obs.L("node", name)
		c.commitLat = reg.Histogram("sorrento_client_commit_seconds", nil, node)
		c.commitsOK = reg.Counter("sorrento_client_commits_total", node)
		c.commitConflicts = reg.Counter("sorrento_client_commit_conflicts_total", node)
		c.probesSent = reg.Counter("sorrento_client_probes_total", node)
		c.retries = reg.Counter("sorrento_client_retries_total", node)
		c.failovers = reg.Counter("sorrento_client_failovers_total", node)
		c.readMismatches = reg.Counter("sorrento_integrity_read_mismatch_total", node)
		c.commitRetries = reg.Counter("sorrento_client_commit_retries_total", node)
		c.commitAborts = reg.Counter("sorrento_client_commit_aborts_total", node)
		c.members.Instrument(reg, name)
	}
	var (
		ep  transport.Endpoint
		err error
	)
	if cfg.Host != "" {
		ep, err = network.JoinAt(wire.NodeID(name), cfg.Host, clientHandler{c})
	} else {
		ep, err = network.Join(wire.NodeID(name), clientHandler{c})
	}
	if err != nil {
		return nil, err
	}
	c.ep = ep
	c.members.Start()
	return c, nil
}

// Close detaches the client.
func (c *Client) Close() {
	c.members.Stop()
	c.ep.Close()
}

// Members exposes the client's provider view (used by experiments).
func (c *Client) Members() *membership.Manager { return c.members }

// clientHandler receives probe responses and heartbeats.
type clientHandler struct{ c *Client }

func (h clientHandler) HandleCall(ctx context.Context, from wire.NodeID, req any) (any, error) {
	if pr, ok := req.(wire.LocProbeResp); ok {
		h.c.mu.Lock()
		ch := h.c.probes[pr.Nonce]
		h.c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- pr:
			default:
			}
		}
		return wire.GenericResp{OK: true}, nil
	}
	if fb := h.c.fallback.Load(); fb != nil {
		return (*fb).HandleCall(ctx, from, req)
	}
	return nil, transport.ErrNoHandler
}

func (h clientHandler) HandleCast(from wire.NodeID, msg any) {
	if hb, ok := msg.(wire.Heartbeat); ok {
		h.c.members.ObserveHeartbeat(hb)
		return
	}
	if fb := h.c.fallback.Load(); fb != nil {
		(*fb).HandleCast(from, msg)
	}
}

// call performs one RPC with the configured timeout.
func (c *Client) call(to wire.NodeID, req any) (any, error) {
	return c.callCtx(context.Background(), to, req)
}

// callCtx is call with a caller context, so operations that open a span
// (Commit) propagate it into the transport's per-RPC tracing.
func (c *Client) callCtx(ctx context.Context, to wire.NodeID, req any) (any, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	return c.ep.Call(ctx, to, req)
}

func (c *Client) ns(req any) (any, error) { return c.call(c.cfg.Namespace, req) }

func (c *Client) nsCtx(ctx context.Context, req any) (any, error) {
	return c.callCtx(ctx, c.cfg.Namespace, req)
}

// parallelism is the fan-out width for piece-level RPCs.
func (c *Client) parallelism() int { return c.cfg.MaxParallelIO }

// WaitForProviders blocks until at least n providers are visible or the
// (modeled) timeout elapses.
func (c *Client) WaitForProviders(n int, timeout time.Duration) error {
	deadline := c.clock.Now() + timeout
	for c.members.Len() < n {
		if c.clock.Now() > deadline {
			return fmt.Errorf("core: only %d/%d providers visible", c.members.Len(), n)
		}
		c.clock.Sleep(100 * time.Millisecond)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Namespace operations

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	resp, err := c.ns(wire.NSMkdir{Path: path})
	return nsErr(resp, err)
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	resp, err := c.ns(wire.NSRmdir{Path: path})
	return nsErr(resp, err)
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]wire.DirEntry, error) {
	resp, err := c.ns(wire.NSReadDir{Path: path})
	if err != nil {
		return nil, err
	}
	r, ok := resp.(wire.NSReadDirResp)
	if !ok || !r.OK {
		return nil, fmt.Errorf("core: readdir %s: %s", path, r.Err)
	}
	return r.Entries, nil
}

// Stat resolves a path to its file entry.
func (c *Client) Stat(path string) (wire.FileEntry, error) {
	resp, err := c.ns(wire.NSLookup{Path: path})
	if err != nil {
		return wire.FileEntry{}, err
	}
	r, ok := resp.(wire.NSLookupResp)
	if !ok || !r.OK {
		return wire.FileEntry{}, ErrNotFound
	}
	return r.Entry, nil
}

func nsErr(resp any, err error) error {
	if err != nil {
		return err
	}
	if r, ok := resp.(wire.NSGenericResp); ok {
		if r.OK {
			return nil
		}
		return errors.New("core: " + r.Err)
	}
	return fmt.Errorf("core: unexpected namespace response %T", resp)
}

// AcquireLease takes the file's write-lock lease for this client, letting
// cooperating processes avoid commit conflicts (paper §3.5). It fails with
// the current holder's name when the lease is taken.
func (c *Client) AcquireLease(path string, ttl time.Duration) error {
	resp, err := c.ns(wire.NSLeaseAcquire{Path: path, Owner: c.name, TTLSec: ttl.Seconds()})
	if err != nil {
		return err
	}
	r, ok := resp.(wire.NSLeaseAcquireResp)
	if !ok {
		return fmt.Errorf("core: unexpected lease response %T", resp)
	}
	if !r.OK {
		return fmt.Errorf("core: lease on %s held by %s", path, r.Holder)
	}
	return nil
}

// ReleaseLease releases a lease held by this client.
func (c *Client) ReleaseLease(path string) error {
	resp, err := c.ns(wire.NSLeaseRelease{Path: path, Owner: c.name})
	return nsErr(resp, err)
}

// SegmentsOf returns the SegIDs of a committed file's data segments (the
// index segment excluded). Diagnostics and experiments use it to inspect
// physical placement.
func (c *Client) SegmentsOf(path string) ([]ids.SegID, error) {
	entry, err := c.Stat(path)
	if err != nil {
		return nil, err
	}
	if entry.Version == 0 {
		return nil, nil
	}
	idx, _, err := c.fetchIndex(entry)
	if err != nil {
		return nil, err
	}
	out := make([]ids.SegID, 0, len(idx.Segs))
	for _, ref := range idx.Segs {
		out = append(out, ref.ID)
	}
	return out, nil
}

// Remove unlinks a file and eagerly deletes all replicas of its segments
// (paper §4.1.1). Unlocatable segments are skipped; their location-table
// entries age out.
func (c *Client) Remove(path string) error {
	entry, err := c.Stat(path)
	if err != nil {
		return err
	}
	var segs []ids.SegID
	if entry.Version > 0 {
		idx, _, ierr := c.fetchIndex(entry)
		if ierr == nil && idx != nil {
			for _, ref := range idx.Segs {
				segs = append(segs, ref.ID)
			}
		}
		segs = append(segs, entry.FileID)
	}
	resp, err := c.ns(wire.NSRemove{Path: path})
	if err != nil {
		return err
	}
	if r, ok := resp.(wire.NSRemoveResp); !ok || !r.OK {
		return fmt.Errorf("core: remove %s: %s", path, r.Err)
	}
	// Eager removal (paper §4.1.1): every replica of every segment is
	// deleted before Remove returns. Distinct segments are deleted in
	// parallel, but a segment's replicas go one at a time — which is why
	// unlink latency grows with the replication degree in Figure 9.
	fanout(len(segs), c.parallelism(), func(i int) error {
		seg := segs[i]
		owners, lerr := c.locate(seg)
		if lerr != nil {
			return nil
		}
		for _, o := range owners {
			c.call(o.Node, wire.SegDelete{Seg: seg})
		}
		return nil
	})
	return nil
}

// ---------------------------------------------------------------------------
// Data location (paper §3.4)

// locate returns a segment's owners: home host first, multicast probe as
// the backup scheme.
func (c *Client) locate(seg ids.SegID) ([]wire.OwnerInfo, error) {
	if home := c.members.HomeOf(seg); home != "" {
		resp, err := c.call(home, wire.LocQuery{Seg: seg})
		if err == nil {
			if r, ok := resp.(wire.LocQueryResp); ok && r.OK && len(r.Owners) > 0 {
				return r.Owners, nil
			}
		}
	}
	return c.probe(seg)
}

// probe issues the multicast backup query (paper §3.4.2) and collects the
// first answer.
func (c *Client) probe(seg ids.SegID) ([]wire.OwnerInfo, error) {
	nonce := c.nonceSeq.Add(1)
	ch := make(chan wire.LocProbeResp, 8)
	c.mu.Lock()
	c.probes[nonce] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.probes, nonce)
		c.mu.Unlock()
	}()
	c.probesSent.Inc()
	c.ep.Multicast(wire.LocProbe{Seg: seg, Asker: c.ep.ID(), Nonce: nonce})
	// At compressed time scales the modeled timeout can shrink below real
	// scheduling noise; floor it at ~50 ms of wall time.
	probeWait := c.cfg.ProbeTimeout
	if floor := c.clock.Modeled(50 * time.Millisecond); floor > probeWait {
		probeWait = floor
	}
	timeout := c.clock.After(probeWait)
	select {
	case pr := <-ch:
		// The first owner answers the query; any further responses drain
		// into the buffered channel and are discarded. Waiting to collect
		// more would add a full think-time to every backup lookup.
		owners := []wire.OwnerInfo{{Node: pr.Owner, Version: pr.Version}}
		for {
			select {
			case pr2 := <-ch:
				owners = append(owners, wire.OwnerInfo{Node: pr2.Owner, Version: pr2.Version})
			default:
				return owners, nil
			}
		}
	case <-timeout:
		return nil, fmt.Errorf("%w: probe for %s got no answers", ErrUnlocatable, seg.Short())
	}
}

// candidates snapshots live providers for placement. Draining providers
// (admin plane: being evacuated ahead of retirement) are excluded so no new
// data lands on them, unless every live provider is draining — then placing
// on a draining node still beats failing the write.
func (c *Client) candidates() []placement.Candidate {
	loads := c.members.Loads()
	out := make([]placement.Candidate, 0, len(loads))
	var all []placement.Candidate
	for node, l := range loads {
		cand := placement.Candidate{Node: node, Load: l.Load, FreeBytes: l.FreeBytes}
		all = append(all, cand)
		if l.Draining {
			continue
		}
		out = append(out, cand)
	}
	if len(out) == 0 {
		return all
	}
	return out
}

// place chooses a provider for a new segment per the file's policy.
func (c *Client) place(attrs wire.FileAttrs, segSize int64, home wire.NodeID, small bool, exclude map[wire.NodeID]bool) (wire.NodeID, error) {
	cands := c.candidates()
	if len(cands) == 0 {
		return "", ErrNoProviders
	}
	switch attrs.Policy {
	case wire.PlaceRandom:
		return c.sel.ChooseUniform(cands, exclude)
	case wire.PlaceLocal:
		host := c.ep.Host()
		if host != wire.NodeID(c.name) && c.members.IsLive(host) && !exclude[host] {
			return host, nil
		}
		fallthrough
	default:
		return c.sel.Choose(cands, placement.Options{
			Alpha:        attrs.Alpha,
			SegSize:      segSize,
			Exclude:      exclude,
			Home:         home,
			SmallSegment: small,
		})
	}
}
