package core

import "repro/internal/wire"

// Client-side verify-on-read: every successful read/fetch reply carries the
// checksum(s) the provider computed, and the client re-sums the payload
// before trusting it. The provider already verified against the commit-time
// sums before the bytes left the store, so a mismatch here means the bytes
// were damaged after that check — in the provider's send path, on the wire,
// or by a buggy/compromised node. The client treats the reply exactly like
// an RPC failure: count it, drop the owner from the cache, fail over to
// another replica.

// readRespIntact reports whether a successful SegReadResp's payload matches
// the checksum the provider attached. Empty payloads carry sum 0.
func readRespIntact(r wire.SegReadResp) bool {
	if len(r.Data) == 0 {
		return r.Sum == 0
	}
	return wire.SumOf(r.Data) == r.Sum
}

// fetchRespIntact reports whether a successful SegFetchResp's full payload
// matches the commit-time block sums it carries. Nil sums mark a direct
// (versioning-off) segment, which has no checksum metadata to verify.
func fetchRespIntact(r wire.SegFetchResp) bool {
	if r.Sums == nil {
		return true
	}
	return wire.VerifySums(r.Data, r.Sums) < 0
}
