package core

import (
	"fmt"

	"repro/internal/fsapi"
	"repro/internal/wire"
)

// FS adapts a Client to the fsapi.System interface the benchmark harness
// drives, applying a fixed attribute template to every created file.
type FS struct {
	client *Client
	attrs  wire.FileAttrs
	label  string
}

// NewFS wraps client; attrs apply to all files it creates, and label names
// the configuration in reports (e.g. "sorrento-(8,2)").
func NewFS(client *Client, attrs wire.FileAttrs, label string) *FS {
	if attrs.ReplDeg <= 0 {
		attrs.ReplDeg = 1
	}
	if label == "" {
		label = fmt.Sprintf("sorrento-(?,%d)", attrs.ReplDeg)
	}
	return &FS{client: client, attrs: attrs, label: label}
}

// Client returns the wrapped client.
func (s *FS) Client() *Client { return s.client }

// Name implements fsapi.System.
func (s *FS) Name() string { return s.label }

// Mkdir implements fsapi.System.
func (s *FS) Mkdir(path string) error { return s.client.Mkdir(path) }

// Create implements fsapi.System.
func (s *FS) Create(path string) (fsapi.File, error) {
	f, err := s.client.Create(path, s.attrs)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Open implements fsapi.System.
func (s *FS) Open(path string) (fsapi.File, error) {
	f, err := s.client.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenWrite implements fsapi.System.
func (s *FS) OpenWrite(path string) (fsapi.File, error) {
	f, err := s.client.OpenWrite(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Remove implements fsapi.System.
func (s *FS) Remove(path string) error { return s.client.Remove(path) }

var _ fsapi.System = (*FS)(nil)
