package core

import (
	"context"
	"fmt"

	"repro/internal/ids"
	"repro/internal/wire"
)

// materializeDirect provisions a versioning-off file (paper §3.5's option
// for applications implementing their own consistency, used by the parallel
// byte-range sharing primitive): every data segment is placed and created
// immediately, the index is pinned at version 1, and subsequent reads and
// writes apply to the segments in place without commits.
func (f *File) materializeDirect() error {
	if f.attrs.Mode != wire.Striped {
		return fmt.Errorf("core: versioning-off files require Striped mode with a declared size")
	}
	f.mu.Lock()
	f.idx.Size = f.attrs.DeclaredSize
	refs := make([]ids.SegID, len(f.idx.Segs))
	for i := range f.idx.Segs {
		f.idx.Segs[i].Version = 1
		refs[i] = f.idx.Segs[i].ID
	}
	f.mu.Unlock()

	// Place and create each data segment (empty; they grow in place).
	for _, seg := range refs {
		node, err := f.c.place(f.attrs, f.idx.Segs[0].Size, "", false, nil)
		if err != nil {
			return err
		}
		resp, err := f.c.call(node, wire.SegCreate{Seg: seg, Version: 1, ReplDeg: 1, Direct: true})
		if err != nil {
			return err
		}
		if r, ok := resp.(wire.SegCreateResp); !ok || !r.OK {
			return fmt.Errorf("core: create direct segment on %s: %s", node, r.Err)
		}
		f.mu.Lock()
		f.segHome[seg] = node
		f.owners[seg] = []wire.OwnerInfo{{Node: node, Version: 1}}
		f.mu.Unlock()
	}

	// Commit the index once (version 1) so other processes can open the
	// file and find the segments.
	begin, err := f.commitBegin(context.Background())
	if err != nil {
		return err
	}
	f.mu.Lock()
	encoded, eerr := f.idx.Encode()
	f.mu.Unlock()
	if eerr != nil {
		return eerr
	}
	indexNode, err := f.writeIndexShadow(context.Background(), encoded)
	if err != nil {
		return err
	}
	resp, err := f.c.call(indexNode, wire.Prepare2PC{Owner: f.owner, Segs: []ids.SegID{f.entry.FileID}})
	if err != nil {
		return err
	}
	pr, ok := resp.(wire.Prepare2PCResp)
	if !ok || !pr.OK {
		return fmt.Errorf("core: prepare direct index: %s", pr.Err)
	}
	if cr, err := f.c.call(indexNode, wire.Commit2PC{Owner: f.owner, Segs: []ids.SegID{f.entry.FileID}}); err != nil {
		return err
	} else if g, ok := cr.(wire.GenericResp); !ok || !g.OK {
		return fmt.Errorf("core: commit direct index: %s", g.Err)
	}
	if cresp, err := f.c.ns(wire.NSCommitComplete{
		FileID: f.entry.FileID, Path: f.path, NewVer: pr.PlannedVers[0],
		Ticket: begin.Ticket, NewSize: f.attrs.DeclaredSize,
	}); err != nil {
		return err
	} else if g, ok := cresp.(wire.NSGenericResp); !ok || !g.OK {
		return fmt.Errorf("core: complete direct create: %s", g.Err)
	}
	f.mu.Lock()
	f.baseVer = pr.PlannedVers[0]
	f.entry.Version = f.baseVer
	f.dirty = make(map[ids.SegID]*dirtySeg)
	f.indexDirty = false
	f.mu.Unlock()
	return nil
}

// writeDirect applies in-place writes to a versioning-off file's segments.
func (f *File) writeDirect(p []byte, off int64) (int, error) {
	f.mu.Lock()
	pieces, err := f.idx.Map(off, int64(len(p)))
	if err != nil {
		f.mu.Unlock()
		return 0, err
	}
	type job struct {
		seg  ids.SegID
		off  int64
		data []byte
	}
	jobs := make([]job, 0, len(pieces))
	cursor := int64(0)
	for _, piece := range pieces {
		jobs = append(jobs, job{seg: f.idx.Segs[piece.SegIdx].ID, off: piece.Off, data: p[cursor : cursor+piece.N]})
		cursor += piece.N
	}
	f.mu.Unlock()
	for _, j := range jobs {
		owners, err := f.segOwners(j.seg)
		if err != nil {
			return 0, err
		}
		node := orderOwners(owners, f.c.ep.Host())[0].Node
		resp, err := f.c.call(node, wire.SegWrite{Seg: j.seg, Offset: j.off, Data: j.data, Direct: true})
		if err != nil {
			return 0, err
		}
		if r, ok := resp.(wire.SegWriteResp); !ok || !r.OK {
			return 0, fmt.Errorf("core: direct write on %s: %s", node, r.Err)
		}
	}
	return len(p), nil
}
