package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/wire"
)

// CommitOptions tune a commit.
type CommitOptions struct {
	// Sync waits until every replica of the committed segments has caught
	// up before returning (the synchronous-commitment option, paper §3.6).
	// The default lazy mode lets update propagation run in the background.
	Sync bool
}

// Commit atomically publishes the session's changes as the file's next
// version (paper §3.5, Figure 6): the namespace server approves the commit
// window (detecting conflicts by base version), the modified segments and
// the rewritten index segment commit via two-phase commitment, and the
// namespace records the new version.
func (f *File) Commit(opts CommitOptions) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if !f.writable {
		f.mu.Unlock()
		return ErrReadOnly
	}
	if f.attrs.VersioningOff {
		f.mu.Unlock()
		return nil // direct files have no versions to commit
	}
	if !f.indexDirty && len(f.dirty) == 0 && f.baseVer > 0 {
		f.mu.Unlock()
		return nil // nothing to publish
	}
	// A never-committed file publishes version 1 even when empty, so a
	// create/close pair leaves a committed (empty) file behind.
	f.mu.Unlock()

	// Snapshot the segments this commit touches (for the synchronous
	// propagation option).
	f.mu.Lock()
	touched := make([]ids.SegID, 0, len(f.dirty)+1)
	for seg := range f.dirty {
		touched = append(touched, seg)
	}
	touched = append(touched, f.entry.FileID)
	f.mu.Unlock()

	// The commit protocol proper is what gets measured: a root span (every
	// RPC below it becomes a child span in the transport) and a whole-commit
	// latency histogram, with conflicts counted separately.
	ctx, sp := f.c.cfg.Obs.Tr().Start(context.Background(), f.c.name, "commit")
	start := f.c.clock.Now()
	err := f.runCommit(ctx, opts, touched)
	sp.SetError(err)
	sp.End()
	f.c.commitLat.ObserveDuration(f.c.clock.Now() - start)
	switch {
	case err == nil:
		f.c.commitsOK.Inc()
	case errors.Is(err, ErrConflict):
		f.c.commitConflicts.Inc()
	}
	return err
}

// runCommit drives the commit with abort-and-retry self-healing: a round
// that loses a participant (timeout-class failure) is rolled back — shadows
// aborted, commit window released — then the journaled writes are replayed
// onto freshly placed or failed-over shadows and the whole round runs
// again, with jittered backoff between attempts. Non-transient failures
// (conflicts, application errors) and sessions whose journal overflowed
// fail exactly as before.
func (f *File) runCommit(ctx context.Context, opts CommitOptions, touched []ids.SegID) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = f.commitOnce(ctx, opts, touched)
		if err == nil || attempt+1 >= f.c.cfg.Retry.MaxAttempts || !f.commitRetryable(err) {
			return err
		}
		f.c.commitRetries.Inc()
		if f.c.sleepBackoff(ctx, attempt) != nil {
			return err
		}
		if rerr := f.replayJournal(ctx); rerr != nil {
			return err
		}
	}
}

// commitRetryable reports whether a failed round is worth re-running: the
// failure must be timeout-class (a died or partitioned participant) and
// the journal must still cover every write of the session.
func (f *File) commitRetryable(err error) bool {
	if !isTransient(err) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.journalOff
}

// commitOnce is one full commit round: window, 2PC, namespace record.
func (f *File) commitOnce(ctx context.Context, opts CommitOptions, touched []ids.SegID) error {
	// (7) Ask the namespace server for commit approval.
	begin, err := f.commitBegin(ctx)
	if err != nil {
		return err
	}

	if err := f.commitBody(ctx, begin); err != nil {
		// Roll everything back: prepared shadows and the commit window.
		f.c.commitAborts.Inc()
		f.abortAll()
		f.c.nsCtx(ctx, wire.NSCommitAbort{FileID: f.entry.FileID, Path: f.path, Ticket: begin.Ticket})
		return err
	}
	if opts.Sync {
		f.syncReplicas(touched)
	}
	return nil
}

func (f *File) commitBegin(ctx context.Context) (wire.NSCommitBeginResp, error) {
	// Bound the wait on a blocked window so a crashed holder (or our own
	// abandoned ticket from a round whose abort was lost) cannot wedge the
	// commit: windows expire server-side, so the bounded wait resolves.
	deadline := f.c.clock.Now() + f.c.cfg.CallTimeout
	for {
		resp, err := f.c.nsCtx(ctx, wire.NSCommitBegin{FileID: f.entry.FileID, Path: f.path, BaseVer: f.baseVer})
		if err != nil {
			return wire.NSCommitBeginResp{}, err
		}
		r, ok := resp.(wire.NSCommitBeginResp)
		if !ok {
			return wire.NSCommitBeginResp{}, fmt.Errorf("core: unexpected commit response %T", resp)
		}
		switch {
		case r.OK:
			return r, nil
		case r.Conflict:
			return r, ErrConflict
		case r.Blocked:
			if f.c.clock.Now() > deadline {
				return r, fmt.Errorf("core: commit window on %s blocked: %w", f.path, transport.ErrTimeout)
			}
			// Another process holds the commit window; wait briefly.
			f.c.clock.Sleep(f.c.cfg.ProbeTimeout / 4)
		default:
			return r, fmt.Errorf("core: commit begin rejected for %s", f.path)
		}
	}
}

// commitBody runs steps (8)–(9): prepare data shadows, rewrite the index
// shadow, prepare it, commit everything, and complete at the namespace.
func (f *File) commitBody(ctx context.Context, begin wire.NSCommitBeginResp) error {
	// Group dirty data segments by their shadow's provider.
	f.mu.Lock()
	byNode := make(map[wire.NodeID][]ids.SegID)
	for seg, d := range f.dirty {
		byNode[d.node] = append(byNode[d.node], seg)
	}
	f.mu.Unlock()
	nodes := make([]wire.NodeID, 0, len(byNode))
	for n := range byNode {
		sort.Slice(byNode[n], func(i, j int) bool { return byNode[n][i].Less(byNode[n][j]) })
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	// Phase one on data segments, one round-trip per participant in
	// parallel: each worker collects its own response, results merge after
	// the barrier so the shared map sees no concurrent writes.
	// Prepare and commit RPCs ride the retry policy: same-owner re-prepare
	// is idempotent on the participant, so a lost response is safe to
	// resend.
	prepared := make([]wire.Prepare2PCResp, len(nodes))
	err := fanout(len(nodes), f.c.parallelism(), func(i int) error {
		node := nodes[i]
		resp, err := f.c.callRetry(ctx, node, wire.Prepare2PC{Owner: f.owner, Segs: byNode[node]})
		if err != nil {
			return err
		}
		r, ok := resp.(wire.Prepare2PCResp)
		if !ok || !r.OK {
			return fmt.Errorf("core: prepare on %s: %s", node, r.Err)
		}
		prepared[i] = r
		return nil
	})
	if err != nil {
		return err
	}
	planned := make(map[ids.SegID]struct {
		ver  uint64
		size int64
	})
	for i, node := range nodes {
		for j, seg := range byNode[node] {
			planned[seg] = struct {
				ver  uint64
				size int64
			}{prepared[i].PlannedVers[j], prepared[i].Sizes[j]}
		}
	}

	// Fold the planned versions into the index and write its shadow.
	f.mu.Lock()
	for i := range f.idx.Segs {
		if pl, ok := planned[f.idx.Segs[i].ID]; ok {
			f.idx.Segs[i].Version = pl.ver
			if pl.size > f.idx.Segs[i].Size {
				f.idx.Segs[i].Size = pl.size
			}
		}
	}
	encoded, err := f.idx.Encode()
	size := f.idx.Size
	if f.idx.IsAttached() {
		size = int64(len(f.idx.Attached))
	}
	f.mu.Unlock()
	if err != nil {
		return err
	}
	indexNode, err := f.writeIndexShadow(ctx, encoded)
	if err != nil {
		return err
	}

	// Phase one on the index segment: its planned version is the file's
	// next version.
	resp, err := f.c.callRetry(ctx, indexNode, wire.Prepare2PC{Owner: f.owner, Segs: []ids.SegID{f.entry.FileID}})
	if err != nil {
		return err
	}
	pr, ok := resp.(wire.Prepare2PCResp)
	if !ok || !pr.OK {
		return fmt.Errorf("core: prepare index on %s: %s", indexNode, pr.Err)
	}
	newVer := pr.PlannedVers[0]

	// Phase two everywhere: data participants in parallel, then the index
	// segment last — its commit is what makes the new version reachable.
	err = fanout(len(nodes), f.c.parallelism(), func(i int) error {
		node := nodes[i]
		plannedVers := make([]uint64, len(byNode[node]))
		for j, seg := range byNode[node] {
			plannedVers[j] = planned[seg].ver
		}
		resp, err := f.c.callRetry(ctx, node, wire.Commit2PC{Owner: f.owner, Segs: byNode[node], Planned: plannedVers})
		if err != nil {
			return err
		}
		if r, ok := resp.(wire.GenericResp); !ok || !r.OK {
			return fmt.Errorf("core: commit on %s: %s", node, r.Err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	resp, err = f.c.callRetry(ctx, indexNode, wire.Commit2PC{Owner: f.owner, Segs: []ids.SegID{f.entry.FileID}, Planned: []uint64{newVer}})
	if err != nil {
		return err
	}
	if r, ok := resp.(wire.GenericResp); !ok || !r.OK {
		return fmt.Errorf("core: commit index on %s: %s", indexNode, r.Err)
	}

	// (9) Complete at the namespace server.
	cresp, err := f.c.nsCtx(ctx, wire.NSCommitComplete{
		FileID: f.entry.FileID, Path: f.path, NewVer: newVer,
		Ticket: begin.Ticket, NewSize: size,
	})
	if err != nil {
		return err
	}
	if r, ok := cresp.(wire.NSGenericResp); !ok || !r.OK {
		return fmt.Errorf("core: commit complete: %s", r.Err)
	}

	// Session state rolls forward onto the new version; the journal has
	// served its purpose once the commit is acknowledged.
	f.mu.Lock()
	f.baseVer = newVer
	f.entry.Version = newVer
	f.dirty = make(map[ids.SegID]*dirtySeg)
	f.indexDirty = false
	f.owners = make(map[ids.SegID][]wire.OwnerInfo)
	f.journal = nil
	f.journalSize = 0
	f.mu.Unlock()
	return nil
}

// writeIndexShadow places (on first commit) or shadows the index segment
// and rewrites its content.
func (f *File) writeIndexShadow(ctx context.Context, encoded []byte) (wire.NodeID, error) {
	fid := f.entry.FileID
	f.mu.Lock()
	d := f.dirty[fid]
	f.mu.Unlock()
	var node wire.NodeID
	if d != nil {
		node = d.node
	} else {
		if f.baseVer == 0 {
			// First commit: place the index segment. Index segments are
			// small, so the home host gets the 3N bias (paper §3.7.2).
			home := f.c.members.HomeOf(fid)
			n, err := f.c.place(f.attrs, int64(len(encoded)), home, true, nil)
			if err != nil {
				return "", err
			}
			node = n
		} else {
			owners, err := f.segOwners(fid)
			if err != nil {
				return "", err
			}
			// Prefer a live owner so a commit retry after an index-site
			// death lands on a surviving replica.
			ordered := orderOwners(owners, f.c.ep.Host())
			node = ordered[0].Node
			for _, o := range ordered {
				if f.c.members.IsLive(o.Node) {
					node = o.Node
					break
				}
			}
		}
		resp, err := f.c.callRetry(ctx, node, wire.SegShadow{
			Owner:             f.owner,
			Seg:               fid,
			BaseVer:           0,
			TTLSec:            f.c.cfg.ShadowTTL.Seconds(),
			ReplDeg:           f.attrs.ReplDeg,
			LocalityThreshold: 0, // index segments follow reads, not locality policy
		})
		if err != nil {
			f.dropCachedOwner(fid, node)
			return "", err
		}
		if r, ok := resp.(wire.SegShadowResp); !ok || !r.OK {
			return "", fmt.Errorf("core: index shadow on %s: %s", node, r.Err)
		}
		f.mu.Lock()
		f.dirty[fid] = &dirtySeg{node: node, isNew: f.baseVer == 0}
		f.mu.Unlock()
	}
	resp, err := f.c.callRetry(ctx, node, wire.SegWrite{Owner: f.owner, Seg: fid, Offset: 0, Data: encoded})
	if err != nil {
		return "", err
	}
	if r, ok := resp.(wire.SegWriteResp); !ok || !r.OK {
		return "", fmt.Errorf("core: index write: %s", r.Err)
	}
	resp, err = f.c.callRetry(ctx, node, wire.SegTruncate{Owner: f.owner, Seg: fid, Size: int64(len(encoded))})
	if err != nil {
		return "", err
	}
	if r, ok := resp.(wire.GenericResp); !ok || !r.OK {
		return "", fmt.Errorf("core: index truncate: %s", r.Err)
	}
	return node, nil
}

// abortAll rolls back every open shadow of the session.
func (f *File) abortAll() {
	f.mu.Lock()
	byNode := make(map[wire.NodeID][]ids.SegID)
	for seg, d := range f.dirty {
		byNode[d.node] = append(byNode[d.node], seg)
	}
	f.dirty = make(map[ids.SegID]*dirtySeg)
	f.indexDirty = false
	f.mu.Unlock()
	nodes := make([]wire.NodeID, 0, len(byNode))
	for node := range byNode {
		nodes = append(nodes, node)
	}
	fanout(len(nodes), f.c.parallelism(), func(i int) error {
		f.c.call(nodes[i], wire.Abort2PC{Owner: f.owner, Segs: byNode[nodes[i]]})
		return nil
	})
}

// syncReplicas pushes the just-committed versions of the touched segments
// to stale replicas and waits — the synchronous commitment option
// (paper §3.6).
func (f *File) syncReplicas(refs []ids.SegID) {
	fanout(len(refs), f.c.parallelism(), func(i int) error {
		seg := refs[i]
		owners, err := f.c.locate(seg)
		if err != nil {
			return nil
		}
		var latest uint64
		var source wire.NodeID
		for _, o := range owners {
			if o.Version > latest {
				latest, source = o.Version, o.Node
			}
		}
		var stale []wire.OwnerInfo
		for _, o := range owners {
			if o.Version < latest {
				stale = append(stale, o)
			}
		}
		// The stale replicas of one segment each pull from the same source;
		// pushing the notifications in parallel lets their catch-up
		// transfers overlap.
		fanout(len(stale), f.c.parallelism(), func(j int) error {
			f.c.call(stale[j].Node, wire.SyncNotify{Seg: seg, Version: latest, Source: source})
			return nil
		})
		return nil
	})
}

// Drop discards the session's uncommitted changes (Figure 4's conflict
// path).
func (f *File) Drop() {
	f.abortAll()
	f.clearJournal()
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
}

// Close commits pending changes (the implicit commit on close, §3.5) and
// invalidates the handle.
func (f *File) Close() error {
	err := func() error {
		f.mu.Lock()
		writable := f.writable && !f.closed
		f.mu.Unlock()
		if !writable {
			return nil
		}
		return f.Commit(CommitOptions{})
	}()
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return err
}

// Sync commits pending changes and keeps the handle open for further
// writes based on the new version (a sync call creates a fresh shadow
// session, §3.5).
func (f *File) Sync() error {
	return f.Commit(CommitOptions{})
}

// AtomicAppend appends a record to a file with retry-on-conflict — the
// application-level primitive of Figure 4.
func (c *Client) AtomicAppend(path string, record []byte) error {
	for {
		f, err := c.OpenWrite(path)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(record, f.Size()); err != nil {
			f.Drop()
			return err
		}
		err = f.Commit(CommitOptions{})
		if err == nil {
			f.mu.Lock()
			f.closed = true
			f.mu.Unlock()
			return nil
		}
		f.Drop()
		if !errors.Is(err, ErrConflict) {
			return err
		}
		// Conflict: delete the shadow copy and retry (Figure 4).
	}
}
