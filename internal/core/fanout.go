package core

import (
	"sync"
	"sync/atomic"
)

// fanout runs fn(0..n-1) on at most width concurrent workers and returns
// the error of the lowest-indexed failed job, or nil if all succeed. Once
// any job fails, workers stop picking up new jobs (already-started jobs
// run to completion), so a mid-stream provider error cancels the remaining
// fan-out promptly while keeping first-error-by-index semantics
// deterministic.
//
// With n <= 1 or width <= 1 the jobs run inline on the caller's goroutine
// in index order, preserving the exact behavior (and stack traces) of the
// old sequential loops for unstriped files and MaxParallelIO=1.
func fanout(n, width int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if n == 1 || width <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if width > n {
		width = n
	}
	errs := make([]error, n)
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() != 0 {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
